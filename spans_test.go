package pimdsm

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestSpanSumInvariant is the tentpole acceptance check: across a full
// Figure 6 batch, every retired transaction's per-phase buckets sum exactly
// to its end-to-end latency, and no span is ever discarded for an
// attribution failure (Spans.End counts any mismatch as bad).
func TestSpanSumInvariant(t *testing.T) {
	opt := Options{Scale: 0.05, Threads: 16, Apps: []string{"ocean"}}.withDefaults()
	cs := figure6Configs("ocean", opt)
	cfgs := make([]Config, len(cs))
	recs := make([]*Spans, len(cs))
	for i := range cs {
		cfgs[i] = cs[i].cfg
		recs[i] = NewSpans(1 << 16)
		cfgs[i].Spans = recs[i]
	}
	if _, err := RunMany(cfgs); err != nil {
		t.Fatal(err)
	}
	for i, s := range recs {
		if s.Retired() == 0 {
			t.Errorf("%s: no spans retired", cs[i].label)
		}
		if s.Bad() != 0 {
			t.Errorf("%s: %d bad spans: %v", cs[i].label, s.Bad(), s.BadSamples())
		}
		for _, sp := range s.Kept() {
			if sp.PhaseSum() != sp.Latency() {
				t.Fatalf("%s: span %d phases sum %d != latency %d",
					cs[i].label, sp.ID, sp.PhaseSum(), sp.Latency())
			}
		}
	}
}

// TestSpansDoNotChangeResults is the determinism regression for the span and
// audit paths: both are record-only, so a run with them on must be
// bit-identical to the same run with them off.
func TestSpansDoNotChangeResults(t *testing.T) {
	plain, err := Run(fig6AGGConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fig6AGGConfig()
	cfg.Spans = NewSpans(0)
	cfg.Audit = true
	observed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Breakdown != observed.Breakdown {
		t.Fatalf("breakdown differs with spans on: %+v vs %+v", plain.Breakdown, observed.Breakdown)
	}
	if !reflect.DeepEqual(plain.Machine, observed.Machine) {
		t.Fatal("stats.Machine differs with spans on")
	}
	if !reflect.DeepEqual(plain.Mesh, observed.Mesh) {
		t.Fatal("mesh stats differ with spans on")
	}
	if observed.AuditViolations != 0 {
		t.Fatalf("audit reported %d violations: %v", observed.AuditViolations, observed.AuditSamples)
	}

	// And spans themselves are deterministic: run again, same aggregates.
	cfg2 := fig6AGGConfig()
	cfg2.Spans = NewSpans(0)
	if _, err := Run(cfg2); err != nil {
		t.Fatal(err)
	}
	if cfg.Spans.Retired() != cfg2.Spans.Retired() {
		t.Fatalf("span counts differ between identical runs: %d vs %d",
			cfg.Spans.Retired(), cfg2.Spans.Retired())
	}
	if !reflect.DeepEqual(cfg.Spans.Kept(), cfg2.Spans.Kept()) {
		t.Fatal("kept spans differ between identical runs")
	}
}

// TestAuditCleanAllMachines runs the coherence auditor on every workload on
// all three machine types: zero protocol-invariant violations anywhere.
func TestAuditCleanAllMachines(t *testing.T) {
	var cfgs []Config
	var labels []string
	for _, arch := range []Arch{AGG, NUMA, COMA} {
		for _, app := range Apps() {
			cfgs = append(cfgs, Config{
				Arch: arch, App: AppSpec{Name: app, Scale: 0.03},
				Threads: 8, Pressure: 0.75, DRatio: 1,
				Audit: true,
			})
			labels = append(labels, string(arch)+"/"+app)
		}
	}
	results, err := RunMany(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.AuditViolations != 0 {
			t.Errorf("%s: %d coherence violations: %v", labels[i], res.AuditViolations, res.AuditSamples)
		}
	}
}

// TestSweepOnResult checks the streaming result hook fires exactly once per
// run with the run's actual result, in both pool shapes.
func TestSweepOnResult(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfgs := make([]Config, 6)
		for i := range cfgs {
			cfgs[i] = Config{
				Arch: AGG, App: AppSpec{Name: "fft", Scale: 0.02},
				Threads: 4, Pressure: 0.75, DRatio: 1,
			}
		}
		got := make(map[int]*Result)
		s := Sweep{Workers: workers, OnResult: func(i int, r *Result) {
			if _, dup := got[i]; dup {
				t.Fatalf("workers=%d: OnResult fired twice for %d", workers, i)
			}
			got[i] = r
		}}
		results, err := s.RunMany(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(cfgs) {
			t.Fatalf("workers=%d: OnResult fired %d times over %d runs", workers, len(got), len(cfgs))
		}
		for i, r := range results {
			if got[i] != r {
				t.Fatalf("workers=%d: OnResult saw a different *Result for %d", workers, i)
			}
		}
	}
}

// TestDecompose runs the aggregated report on one small application and
// checks the rows are internally consistent: phases average to the average
// latency, nothing bad, and the formatter renders every row.
func TestDecompose(t *testing.T) {
	rows, err := Decompose(Options{Scale: 0.03, Threads: 8, Apps: []string{"fft"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want the 7 Figure 6 configurations", len(rows))
	}
	for _, row := range rows {
		if row.Bad != 0 {
			t.Errorf("%s/%s: %d bad spans", row.App, row.Label, row.Bad)
		}
		if row.Retired == 0 || row.AvgLat <= 0 {
			t.Errorf("%s/%s: empty row %+v", row.App, row.Label, row)
			continue
		}
		var sum float64
		for _, v := range row.Phase {
			sum += v
		}
		if math.Abs(sum-row.AvgLat) > 1e-6*row.AvgLat {
			t.Errorf("%s/%s: phase averages sum %.6f != avg latency %.6f", row.App, row.Label, sum, row.AvgLat)
		}
	}
	text := FormatDecompose(rows)
	for _, want := range []string{"dir-occ", "net-reply", "NUMA", "1/1AGG75", "fft"} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatDecompose output missing %q:\n%s", want, text)
		}
	}
}
