module pimdsm

go 1.23
