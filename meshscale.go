package pimdsm

import (
	"fmt"
	"strings"
	"time"

	"pimdsm/internal/mesh"
)

// MeshScalePoint is one (mesh size, shard count) measurement of the
// partitioned event-driven mesh: wall time, event throughput, and whether the
// run reproduced the single-shard oracle bit-for-bit.
type MeshScalePoint struct {
	Width, Height int
	Shards        int // partitions actually used (engine may clamp)
	Horizon       Time

	Wall      time.Duration
	Events    uint64  // engine events dispatched
	EventRate float64 // events per wall-clock second

	Fingerprint uint64 // order-sensitive digest of every delivery
	Identical   bool   // equals the K=1 oracle's fingerprint and stats
	Stats       mesh.EventStats
	CrossShard  uint64 // cross-shard messages exchanged at window barriers
	Windows     uint64 // synchronization windows executed
	Lookahead   Time   // window width = mesh.Config.MinLinkLatency()
}

// MeshScale runs the event-driven mesh (mesh.Events) at beyond-paper scales
// across shard counts and cross-checks every partitioned run against its own
// K=1 oracle. sizes lists square mesh edge lengths (16 → 256 nodes, 32 →
// 1024); shard counts are the powers of two from 1 to maxShards. The traffic
// is the directory-protocol shape: uniform requests with data responses.
//
// The returned points carry measured wall time and events/second — on a
// single-core host K>1 only measures window-barrier overhead, so interpret
// the rate column together with the host's core count (cmd/figures prints
// GOMAXPROCS alongside the table).
func MeshScale(sizes []int, maxShards int, until Time) ([]MeshScalePoint, error) {
	if len(sizes) == 0 {
		sizes = []int{16, 32}
	}
	if maxShards < 1 {
		maxShards = 1
	}
	if until <= 0 {
		until = 20_000
	}
	var out []MeshScalePoint
	for _, sz := range sizes {
		var refFP uint64
		var refStats mesh.EventStats
		for k := 1; k <= maxShards; k *= 2 {
			p, err := meshScaleRun(sz, k, until)
			if err != nil {
				return nil, err
			}
			if k == 1 {
				refFP, refStats = p.Fingerprint, p.Stats
			}
			p.Identical = p.Fingerprint == refFP && p.Stats == refStats
			if !p.Identical {
				return out, fmt.Errorf(
					"meshscale: %dx%d K=%d diverged from serial oracle (fp %#x vs %#x)",
					sz, sz, k, p.Fingerprint, refFP)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

func meshScaleRun(sz, shards int, until Time) (MeshScalePoint, error) {
	tr := mesh.Traffic{Pattern: mesh.Uniform, Period: 30, ResponseBytes: 128, Seed: 11}
	e, err := mesh.NewEvents(mesh.DefaultConfig(sz, sz), shards, tr)
	if err != nil {
		return MeshScalePoint{}, err
	}
	start := time.Now()
	e.Run(until)
	wall := time.Since(start)
	es := e.EngineStats()
	rate := 0.0
	if s := wall.Seconds(); s > 0 {
		rate = float64(es.Dispatched) / s
	}
	return MeshScalePoint{
		Width: sz, Height: sz, Shards: e.Shards(), Horizon: until,
		Wall: wall, Events: es.Dispatched, EventRate: rate,
		Fingerprint: e.Fingerprint(), Stats: e.Stats(),
		CrossShard: es.CrossShard, Windows: es.Windows,
		Lookahead: e.Lookahead(),
	}, nil
}

// FormatMeshScale renders the measurement table. Each size block shares one
// oracle; the identical column is the bit-identity cross-check against it.
func FormatMeshScale(points []MeshScalePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mesh scaling: partitioned event-driven mesh, uniform request/response traffic\n")
	fmt.Fprintf(&b, "%-10s %2s %9s %10s %12s %11s %9s %9s %s\n",
		"mesh", "K", "horizon", "wall", "events/s", "deliveries", "xshard", "windows", "identical")
	last := 0
	for _, p := range points {
		if p.Width != last && last != 0 {
			b.WriteByte('\n')
		}
		last = p.Width
		fmt.Fprintf(&b, "%-10s %2d %9d %10s %12.3g %11d %9d %9d %v\n",
			fmt.Sprintf("%dx%d", p.Width, p.Height), p.Shards, uint64(p.Horizon),
			p.Wall.Round(time.Millisecond), p.EventRate, p.Stats.Delivered,
			p.CrossShard, p.Windows, p.Identical)
	}
	b.WriteString(`
Every row's fingerprint (delivery digest) and aggregate stats match its size's
K=1 oracle; "identical true" is asserted, not observed-by-luck. The lookahead
window is the mesh's minimum link latency (router head delay), derived from
the link parameters at construction. On a single-core host the K>1 rows
measure window-barrier overhead only; parallel speedup needs real cores.
`)
	return b.String()
}
