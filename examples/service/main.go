// Service walkthrough: the full aggsimd round trip in one process.
//
// A production deployment runs `aggsimd` as a daemon and talks to it with
// the `pimdsm submit/status/result/jobs` subcommands; this example embeds
// the same server in-process so the whole lifecycle — submit, progress,
// cache hit, admission-window rejection, graceful drain — runs as one
// self-contained program:
//
//	go run ./examples/service
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"pimdsm"
)

func main() {
	// 1. Start the service: 1 concurrent job, an admission window of 2, a
	// persistent cache index. This is exactly what `aggsimd -workers 1
	// -queue 2 -cache-file ...` wires, minus the signal handling.
	cacheFile := "service-example.cache"
	defer os.Remove(cacheFile)
	// sweep-workers 1 runs each job's configurations serially, so a job's
	// wall time is the sum of its runs — which is what lets the submit
	// storm below actually fill the queue on a fast machine.
	srv, err := pimdsm.NewServer(pimdsm.ServerOptions{
		Workers:    1,
		QueueLimit: 2,
		CachePath:  cacheFile,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Expose it over HTTP next to the live dashboard and talk to it
	// through the same client the CLI uses.
	dash := pimdsm.NewDashboard()
	addr, closeHTTP, err := pimdsm.NewServiceAPI(srv, dash).ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer closeHTTP()
	fmt.Printf("aggsimd (embedded) listening on http://%s/\n\n", addr)
	client := pimdsm.NewServiceClient(addr)

	// 3. Submit the paper's Figure 6 batch for FFT at a demo scale and
	// stream its progress while it simulates.
	job := pimdsm.JobSpec{Name: "fig6-fft", Metrics: true,
		Configs: pimdsm.Figure6Specs("fft", 8, 0.1)}
	st, err := client.Submit(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (%d configurations):\n", st.ID, st.Total)
	if err := client.StreamProgress(context.Background(), st.ID, os.Stdout); err != nil {
		log.Fatal(err)
	}
	first, results, err := client.Result(st.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=> %d results, %d simulated, %d bytes of canonical JSON\n\n",
		len(results), first.Simulated, len(results[0]))

	// 4. Resubmit the identical batch: every configuration is served from
	// the content-addressed cache, byte-identical, with zero simulation.
	st2, err := client.Submit(job)
	if err != nil {
		log.Fatal(err)
	}
	fin, err := client.Wait(context.Background(), st2.ID, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	stats, _ := client.Stats()
	fmt.Printf("resubmission %s: %d cache hits, %d simulated (server total: %d runs, %d engine cycles)\n\n",
		fin.ID, fin.CacheHits, fin.Simulated, stats.SimulatedRuns, stats.SimulatedCycles)

	// 5. Overload the admission window to see bounded-queue rejection: the
	// server answers 429 with a Retry-After hint instead of queueing
	// without bound. A long multi-run job pins the single worker first so
	// the storm can only queue behind it.
	var blockerCfgs []pimdsm.ConfigSpec
	for p := 0; p < 8; p++ {
		blockerCfgs = append(blockerCfgs, pimdsm.ConfigSpec{
			Arch: "agg", App: "ocean", Scale: 0.5, Threads: 16,
			Pressure: 0.10 + 0.1*float64(p), DRatio: 1,
		})
	}
	if _, err := client.Submit(pimdsm.JobSpec{Name: "blocker", Configs: blockerCfgs}); err != nil {
		log.Fatal(err)
	}
	// The storm arrives as a concurrent burst, the way N impatient clients
	// would hit a shared daemon.
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			_, err := client.Submit(pimdsm.JobSpec{
				Name: fmt.Sprintf("storm-%d", i),
				Configs: []pimdsm.ConfigSpec{{
					Arch: "agg", App: "ocean", Scale: 0.2, Threads: 8,
					Pressure: 0.10 + 0.1*float64(i), DRatio: 1,
				}},
			})
			errs <- err
		}(i)
	}
	rejections := 0
	var retryAfter time.Duration
	for i := 0; i < 8; i++ {
		err := <-errs
		if err == nil {
			continue
		}
		var busy *pimdsm.BusyError
		if !errors.As(err, &busy) {
			log.Fatal(err)
		}
		rejections++
		retryAfter = busy.RetryAfter
	}
	fmt.Printf("submit storm: %d of 8 rejected by admission control (retry after %s)\n\n",
		rejections, retryAfter)

	// 6. Graceful drain: running jobs finish, queued jobs abort, and the
	// cache index lands on disk for the next start.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if fi, err := os.Stat(cacheFile); err == nil {
		fmt.Printf("drained; cache index persisted to %s (%d bytes)\n", cacheFile, fi.Size())
	}
}
