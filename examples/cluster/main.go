// Cluster walkthrough: a 3-node aggsimd cluster in one process.
//
// A production deployment runs `aggsimd -cluster-name ... -peers ...` on N
// machines; this example embeds three nodes in-process so the whole cluster
// story — gossip membership, consistent-hash ownership, compute-at-owner
// forwarding, replication, and exactly-once across a node death — runs as
// one self-contained program:
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"pimdsm"
)

// node bundles one in-process daemon: the server, its membership node, and
// the function that tears its HTTP front door down.
type node struct {
	addr      string
	srv       *pimdsm.Server
	peer      *pimdsm.ClusterNode
	closeHTTP func()
}

func (n *node) kill() {
	// HTTP first, the way a crash looks to peers, then drain the server.
	n.closeHTTP()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = n.srv.Shutdown(ctx)
}

func main() {
	// 1. Bind every listener before starting any node, so each one knows the
	// full seed slate from its first heartbeat. This mirrors what a static
	// -peers list gives real daemons.
	const N = 3
	lns := make([]net.Listener, N)
	addrs := make([]string, N)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i], addrs[i] = ln, ln.Addr().String()
	}

	// 2. Start the nodes: each is a complete aggsimd (workers, queue, cache)
	// plus a membership node gossiping over the shared seed list. A fast
	// heartbeat keeps the demo snappy; real daemons default to 500ms.
	nodes := make([]*node, N)
	start := func(i int) *node {
		srv, err := pimdsm.NewServer(pimdsm.ServerOptions{Workers: 1, QueueLimit: 8}, 1)
		if err != nil {
			log.Fatal(err)
		}
		peer, err := pimdsm.NewClusterNode(pimdsm.ClusterConfig{
			Name: "demo", Self: addrs[i], Seeds: addrs,
			Replicas: 2, HeartbeatEvery: 25 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		closeHTTP := pimdsm.NewServiceAPI(srv, nil).Serve(lns[i])
		srv.AttachCluster(peer) // starts the heartbeat loop
		return &node{addr: addrs[i], srv: srv, peer: peer, closeHTTP: closeHTTP}
	}
	for i := range nodes {
		nodes[i] = start(i)
	}
	waitAlive := func(live []*node, want int) {
		for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(10 * time.Millisecond) {
			ok := true
			for _, n := range live {
				ok = ok && n.peer.Stats().Alive == want
			}
			if ok {
				return
			}
			if time.Now().After(deadline) {
				log.Fatalf("cluster never converged to %d members", want)
			}
		}
	}
	waitAlive(nodes, N)
	fmt.Printf("cluster %q up: %d members converged by gossip\n", "demo", N)
	for _, m := range nodes[0].peer.Members() {
		fmt.Printf("  %-21s %s\n", m.Addr, m.State)
	}

	// 3. Submit the Figure 6 batch through door 0. Keys the door does not
	// own are computed at their ring owners (compute-at-owner forwarding);
	// the cluster-wide engine-run total still equals the number of distinct
	// configurations — the owner's singleflight is the cluster lock.
	batch := pimdsm.JobSpec{Name: "fig6-fft", Configs: pimdsm.Figure6Specs("fft", 4, 0.02)}
	submit := func(addr string) (pimdsm.JobStatus, [][]byte) {
		c := pimdsm.NewServiceClient(addr)
		st, err := c.Submit(batch)
		if err != nil {
			log.Fatal(err)
		}
		fin, err := c.Wait(context.Background(), st.ID, 20*time.Millisecond)
		if err != nil {
			log.Fatal(err)
		}
		_, raw, err := c.Result(fin.ID)
		if err != nil {
			log.Fatal(err)
		}
		out := make([][]byte, len(raw))
		for i, r := range raw {
			out[i] = []byte(r)
		}
		return fin, out
	}
	runsAcross := func(live []*node) (total uint64) {
		for _, n := range live {
			total += n.srv.Stats().SimulatedRuns
		}
		return total
	}
	fin, ref := submit(nodes[0].addr)
	fmt.Printf("\ndoor %s: job %s done — %d configs, %d forwarded to owners, cluster-wide runs %d\n",
		nodes[0].addr, fin.ID, fin.Total, fin.Forwarded, runsAcross(nodes))

	// 4. Resubmit the identical batch through a DIFFERENT door: replication
	// pushed every completed result to its key's ring successors, and the
	// forwarding path cached the bytes at the first front door, so this is
	// answered without a single new simulation — byte-identical.
	fin2, again := submit(nodes[2].addr)
	for i := range ref {
		if !bytes.Equal(ref[i], again[i]) {
			log.Fatalf("config %d: bytes differ across doors", i)
		}
	}
	fmt.Printf("door %s: job %s — %d cache hits, cluster-wide runs still %d, bytes identical\n",
		nodes[2].addr, fin2.ID, fin2.CacheHits, runsAcross(nodes))

	// 5. Kill a node and resubmit through a survivor. The dead node's ring
	// arcs fall to its successors — exactly where the replicas already live —
	// so the batch completes with zero new simulations and the same bytes.
	victim := 1
	runsBefore := runsAcross([]*node{nodes[0], nodes[2]})
	nodes[victim].kill()
	survivors := []*node{nodes[0], nodes[2]}
	waitAlive(survivors, N-1)
	fmt.Printf("\nkilled %s; survivors converged to %d members\n", addrs[victim], N-1)
	fin3, after := submit(nodes[0].addr)
	for i := range ref {
		if !bytes.Equal(ref[i], after[i]) {
			log.Fatalf("config %d: bytes differ after node death", i)
		}
	}
	fmt.Printf("door %s: job %s — served from survivors' caches, runs %d (was %d), bytes identical\n",
		nodes[0].addr, fin3.ID, runsAcross(survivors), runsBefore)

	// 6. The operator's view: the serve-layer cluster counters.
	st := nodes[0].srv.Stats()
	if st.Cluster != nil {
		fmt.Printf("\nnode %s cluster stats: forwards sent %d / served %d, replicas sent %d / received %d, redirects %d\n",
			nodes[0].addr, st.Cluster.ForwardsSent, st.Cluster.ForwardsServed,
			st.Cluster.ReplicasSent, st.Cluster.ReplicasReceived, st.Cluster.Redirects)
	}

	for _, n := range survivors {
		n.kill()
	}
	fmt.Println("\ndone: every byte identical across doors, owners and a node death")
}
