// Quickstart: simulate one application on the paper's three architectures
// and compare their execution-time breakdowns — a miniature of Figure 6.
package main

import (
	"fmt"
	"log"

	"pimdsm"
)

func main() {
	app := pimdsm.App("swim", 0.5) // half-size Swim for a fast demo

	fmt.Println("Swim (SPEC95), 32 threads, 75% memory pressure:")
	var numa float64
	for _, arch := range []pimdsm.Arch{pimdsm.NUMA, pimdsm.COMA, pimdsm.AGG} {
		res, err := pimdsm.Run(pimdsm.Config{
			Arch:     arch,
			App:      app,
			Threads:  32,
			Pressure: 0.75,
			DRatio:   1, // AGG: one D-node per P-node (1/1AGG)
		})
		if err != nil {
			log.Fatal(err)
		}
		bd := res.Breakdown
		if arch == pimdsm.NUMA {
			numa = float64(bd.Exec)
		}
		fmt.Printf("  %-5s exec %9d cycles (%.2fx NUMA)  memory %3.0f%%  processor %3.0f%%",
			arch, bd.Exec, float64(bd.Exec)/numa,
			100*float64(bd.Memory)/float64(bd.Exec),
			100*float64(bd.Processor)/float64(bd.Exec))
		if arch == pimdsm.AGG {
			c := res.Census
			fmt.Printf("  [D-nodes: %d/%d slots used]", c.SlotCap-c.FreeSlots, c.SlotCap)
		}
		fmt.Println()
	}

	// The same AGG machine with a quarter of the D-nodes (1/4AGG) — the
	// paper's cost-effective sweet spot: slightly slower, much less
	// hardware.
	res, err := pimdsm.Run(pimdsm.Config{
		Arch: pimdsm.AGG, App: app, Threads: 32, Pressure: 0.75, DRatio: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  1/4AGG (8 fatter D-nodes): exec %d cycles (%.2fx NUMA)\n",
		res.Breakdown.Exec, float64(res.Breakdown.Exec)/numa)
}
