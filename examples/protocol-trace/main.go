// Protocol-trace: drive a tiny AGG machine (2 P-nodes, 1 D-node) through the
// paper's coherence protocol one access at a time, narrating the directory
// state, the home's Data-slot usage, and the FreeList/SharedList after each
// transaction (§2.2.2). A good way to see the shared-master state and the
// "dirty lines need no home place holder" rule in action.
package main

import (
	"fmt"

	"pimdsm/internal/cache"
	"pimdsm/internal/core"
	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

func main() {
	cfg := core.DefaultConfig(2, 1, 4096, 64, 1024, 4096)
	m, err := core.New(cfg)
	if err != nil {
		panic(err)
	}

	var now sim.Time
	step := func(p int, addr uint64, write bool, what string) {
		kind := "load "
		if write {
			kind = "store"
		}
		done, class := m.Access(now, p, addr, write)
		dm := m.DMemOf(0)
		e := dm.Entry(addr)
		fmt.Printf("P%d %s %#06x  -> %-6s %4d cycles   %s\n", p, kind, addr, class, done-now, what)
		fmt.Printf("   directory: state=%-6s master=%2d homeCopy=%-5v  P0=%s P1=%s  free=%d shared=%d\n",
			e.State, e.Master, e.HasCopy(), pstate(m, 0, addr), pstate(m, 1, addr), dm.FreeLen(), dm.SharedLen())
		now = done
	}

	fmt.Println("AGG protocol walk-through (2 P-nodes, 1 D-node, one line at 0x1000):")
	step(0, 0x1000, true, "first touch: zero-fill, dirty at P0, NO home slot consumed")
	step(1, 0x1000, false, "3-hop: P0 downgrades to shared-master, sharing WB gives home a droppable copy")
	step(1, 0x1000, false, "hits P1's SRAM caches now")
	step(1, 0x1000, true, "upgrade: invalidate P0's master copy, home frees its slot")
	step(0, 0x1000, false, "3-hop again: P1 owns it")

	fmt.Println("\nmastership hand-out on a fresh line (0x2000):")
	step(0, 0x2000, false, "first read: home allocates a slot, P0 receives the shared-master copy")
	step(1, 0x2000, false, "2-hop from the home's copy; P1 is a plain sharer")

	if err := m.CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Println("\nall machine invariants hold.")
}

func pstate(m *core.Machine, p int, addr uint64) string {
	st, hit, _ := m.PMemOf(p).Lookup(addr)
	if !hit {
		return "-"
	}
	return st.String()
}

var _ = proto.LatMem
var _ = cache.Shared
