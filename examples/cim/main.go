// CIM: computation in memory (§2.4, §4.3, Figure 10b). Because AGG's
// D-nodes are full processors running software handlers, they can also
// pre-process data: instead of a P-node streaming a database table across
// the network to find the few records that satisfy a selection, the home
// D-node scans the table in place and ships back only the selected records.
package main

import (
	"fmt"
	"log"

	"pimdsm"
)

func main() {
	fmt.Println("Dbase (TPC-D Q3) on AGG at 75% pressure:")
	fmt.Printf("  %8s %14s %14s %10s\n", "P&D", "Plain", "Opt (CIM)", "reduction")
	for _, pd := range [][2]int{{8, 8}, {16, 16}, {28, 4}} {
		var exec [2]pimdsm.Time
		for i, name := range []string{"dbase", "dbase-opt"} {
			res, err := pimdsm.Run(pimdsm.Config{
				Arch:     pimdsm.AGG,
				App:      pimdsm.App(name, 0.5),
				Threads:  pd[0],
				Pressure: 0.75,
				DNodes:   pd[1],
			})
			if err != nil {
				log.Fatal(err)
			}
			exec[i] = res.Breakdown.Exec
			if i == 1 && res.Machine.Scans == 0 {
				log.Fatal("opt run issued no D-node scans")
			}
		}
		fmt.Printf("  %4d&%-3d %14d %14d %9.1f%%\n",
			pd[0], pd[1], exec[0], exec[1], 100*(1-float64(exec[1])/float64(exec[0])))
	}
	fmt.Println("\n(Plain: P-nodes traverse the tables; Opt: home D-nodes scan and")
	fmt.Println(" return selected records — the paper reports ~70% reduction.)")
}
