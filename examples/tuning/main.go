// Tuning: the paper's §2.3 static-reconfiguration procedure. Because
// P-nodes and D-nodes are the same hardware, the machine can be repartitioned
// per application — but the right split isn't known a priori. The paper's
// recipe: run once with a wasteful number of D-nodes, record the D-node
// processor utilization, and use it as the hint for the next run. This
// example applies the recipe to two applications with opposite needs and
// cross-checks the hint against an exhaustive sweep of one machine size
// (the paper's Figure 4 design space).
package main

import (
	"fmt"
	"log"

	"pimdsm"
)

func main() {
	for _, app := range []string{"swim", "dbase"} {
		spec := pimdsm.App(app, 0.25)
		tr, err := pimdsm.TuneDRatio(spec, 0.75, 16, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: profiling 16P&16D run -> D-node utilization %.1f%%, hint: %d D-nodes\n",
			app, 100*tr.Utilization, tr.SuggestedD)

		pts, best, err := pimdsm.OptimalSplit(spec, 0.75, 24, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  exhaustive sweep of a 24-node machine:\n")
		for i, pt := range pts {
			mark := "  "
			if i == best {
				mark = "<-- best"
			}
			fmt.Printf("    %2dP & %2dD: %9d cycles %s\n", pt.P, pt.D, pt.Result.Breakdown.Exec, mark)
		}
	}
	fmt.Println("\n(protocol-hungry applications earn more D-nodes; compute-hungry ones more P-nodes)")
}
