// Reconfig: the paper's dynamic reconfigurability experiment (§4.2,
// Figure 10a). Dbase's hash phase wants many D-nodes (it hammers the
// directories and synchronizes constantly); its join phase wants many
// P-nodes (it reuses chunks in the big local memories). A machine that
// reconfigures 12 D-nodes into P-nodes at the phase boundary captures the
// best of both, minus the modeled reconfiguration overhead.
package main

import (
	"fmt"
	"log"

	"pimdsm"
)

func main() {
	r, err := pimdsm.RunReconfig(pimdsm.App("dbase", 0.5), 0.75, 16, 16, 28, 4)
	if err != nil {
		log.Fatal(err)
	}
	norm := float64(r.StaticA())
	pct := func(t pimdsm.Time) float64 { return 100 * float64(t) / norm }

	fmt.Println("Dbase (TPC-D Q3) on AGG at 75% pressure, 32 nodes total:")
	fmt.Printf("  static 16P&16D: %6.1f%%   (hash %5.1f%% + join %5.1f%%)  <- good hash, poor join\n",
		pct(r.StaticA()), pct(r.Phase1A), pct(r.Phase2A))
	fmt.Printf("  static 28P&4D : %6.1f%%   (hash %5.1f%% + join %5.1f%%)  <- poor hash, good join\n",
		pct(r.StaticB()), pct(r.Phase1B), pct(r.Phase2B))
	fmt.Printf("  dynamic       : %6.1f%%   (hash %5.1f%% + reconf %4.1f%% + join %5.1f%%)\n",
		pct(r.Dynamic), pct(r.Phase1A), pct(r.Reconf), pct(r.Phase2B))
	fmt.Printf("  reconfiguration migrated %d lines and %d pages\n", r.LinesMoved, r.PagesMoved)

	best := r.StaticA()
	if r.StaticB() < best {
		best = r.StaticB()
	}
	fmt.Printf("  dynamic vs best static: %+.1f%%\n", 100*(float64(r.Dynamic)/float64(best)-1))
}
