// Command aggsim runs a single DSM simulation and prints its measurements:
// the execution-time breakdown, the read-latency classification, protocol
// event counters, and (for AGG) the D-node memory census.
//
// Usage:
//
//	aggsim -arch agg|numa|coma -app fft -pressure 0.75 -dratio 1
//	       [-threads 32] [-scale 1.0] [-dnodes n] [-shards n]
//	       [-trace f.json] [-trace-bin f.bin] [-trace-buf n]
//	       [-metrics-out f.json] [-progress]
//	       [-spans] [-spans-out f.bin] [-audit] [-http addr]
//	       [-profile] [-folded f.folded]
//	       [-cpuprofile f] [-memprofile f]
//
// -trace records the run's protocol events and writes them as Chrome
// trace_event JSON (open in chrome://tracing or https://ui.perfetto.dev);
// -trace-bin writes the compact binary form instead (see `pimdsm trace`).
// Tracing never changes simulation results.
// -metrics-out writes the run's counters, gauges and latency histograms as
// JSON. -progress prints a phase-by-phase status line to stderr.
// -spans records per-transaction phase spans and prints the miss-latency
// breakdown; -spans-out writes the recorder in the PDS1 binary form (see
// `pimdsm spans dump`). -audit runs the per-transaction coherence auditor
// and exits nonzero if any protocol invariant is violated.
// -profile attaches the sim-time accounting profiler and prints the
// bottleneck report (per-node cycle accounting by handler class, mesh link
// heatmap, queue-wait percentiles); -folded writes the cycle attribution as
// collapsed stacks for speedscope / inferno / flamegraph.pl. Profiling never
// changes simulation results.
// -http serves a live dashboard (in-flight span table, metrics, profile,
// expvar, pprof) on the given address (e.g. localhost:8080); after the run
// finishes it keeps serving the final sections until interrupted (Ctrl-C).
// -cpuprofile / -memprofile write pprof profiles covering the run (see
// README.md, "Profiling").
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"pimdsm"
	"pimdsm/internal/proto"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	arch := flag.String("arch", "agg", "architecture: agg, numa or coma")
	app := flag.String("app", "fft", "application (fft radix ocean barnes swim tomcatv dbase dbase-opt)")
	pressure := flag.Float64("pressure", 0.75, "memory pressure: footprint / total DRAM")
	threads := flag.Int("threads", 32, "application threads (= P-nodes)")
	dratio := flag.Int("dratio", 1, "AGG P:D ratio denominator (1, 2 or 4)")
	dnodes := flag.Int("dnodes", 0, "explicit AGG D-node count (overrides -dratio)")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	shards := flag.Int("shards", 1, "partitioned-engine shard count (recorded; coherence path is serial, see DESIGN.md)")
	tracePath := flag.String("trace", "", "write Chrome trace_event JSON to file")
	traceBin := flag.String("trace-bin", "", "write compact binary trace to file")
	traceBuf := flag.Int("trace-buf", 1<<20, "trace ring capacity in events (rounded to a power of two)")
	metricsOut := flag.String("metrics-out", "", "write metrics registry JSON to file")
	progress := flag.Bool("progress", false, "print phase progress to stderr")
	spansOn := flag.Bool("spans", false, "record transaction spans and print the phase breakdown")
	spansOut := flag.String("spans-out", "", "write the span recorder in PDS1 binary form to file")
	audit := flag.Bool("audit", false, "audit coherence invariants per transaction; exit 1 on violations")
	profileOn := flag.Bool("profile", false, "attach the sim-time profiler and print the bottleneck report")
	folded := flag.String("folded", "", "write folded-stack cycle attribution (flamegraph input) to file")
	httpAddr := flag.String("http", "", "serve a live dashboard on this address while running")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file on exit")
	flag.Parse()

	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer stop()

	cfg := pimdsm.Config{
		Arch:     pimdsm.Arch(*arch),
		App:      pimdsm.App(*app, *scale),
		Threads:  *threads,
		Pressure: *pressure,
		DRatio:   *dratio,
		DNodes:   *dnodes,
		Shards:   *shards,
	}
	var tr *pimdsm.Trace
	if *tracePath != "" || *traceBin != "" {
		tr = pimdsm.NewTrace(*traceBuf)
		cfg.Trace = tr
	}
	var reg *pimdsm.Metrics
	if *metricsOut != "" || *httpAddr != "" {
		reg = pimdsm.NewMetrics()
		cfg.Metrics = reg
	}
	var spans *pimdsm.Spans
	if *spansOn || *spansOut != "" || *httpAddr != "" {
		spans = pimdsm.NewSpans(0)
		cfg.Spans = spans
	}
	var prof *pimdsm.Profile
	if *profileOn || *folded != "" || *httpAddr != "" {
		prof = pimdsm.NewProfile()
		cfg.Profile = prof
	}
	cfg.Audit = *audit
	if *progress {
		cfg.PhaseProgress = func(phase int, at pimdsm.Time) {
			fmt.Fprintf(os.Stderr, "phase %d done at cycle %d\n", phase, at)
		}
	}
	var dash *pimdsm.Dashboard
	if *httpAddr != "" {
		dash = pimdsm.NewDashboard()
		addr, err := dash.ListenAndServe(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "http:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "dashboard: http://%s/\n", addr)
		spans.SetMirror(dash, "spans", 0)
	}
	res, err := pimdsm.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := writeObservers(tr, reg, *tracePath, *traceBin, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Printf("%s / %s: %d P-nodes", res.Arch, res.App, res.PNodes)
	if res.DNodes > 0 {
		fmt.Printf(" + %d D-nodes", res.DNodes)
	}
	fmt.Printf(", %.1f MB DRAM (pressure %.0f%%)\n",
		float64(res.TotalDRAM)/(1<<20), res.EffPressure*100)
	bd := res.Breakdown
	fmt.Printf("execution time: %d cycles (Memory %d = %.0f%%, Processor %d)\n",
		bd.Exec, bd.Memory, 100*float64(bd.Memory)/float64(bd.Exec), bd.Processor)

	m := &res.Machine
	fmt.Printf("reads by level:\n")
	for c := proto.LatClass(0); c < proto.NumLatClasses; c++ {
		if m.ReadCount[c] == 0 {
			continue
		}
		fmt.Printf("  %-7s %9d reads, avg %5d cycles\n",
			c, m.ReadCount[c], uint64(m.ReadLatSum[c])/m.ReadCount[c])
	}
	fmt.Printf("events: %d invalidations, %d write-backs, %d upgrades\n",
		m.Invalidations, m.WriteBacks, m.Upgrades)
	if m.Pageouts+m.DiskFaults > 0 {
		fmt.Printf("paging: %d pageouts, %d recalls, %d disk faults\n",
			m.Pageouts, m.Recalls, m.DiskFaults)
	}
	if m.Injections > 0 {
		fmt.Printf("COMA: %d injections (avg cascade %.1f hops), %d overflows\n",
			m.Injections, float64(m.InjectionHops)/float64(m.Injections), m.Overflows)
	}
	if m.Scans > 0 {
		fmt.Printf("computation in memory: %d scans over %d lines\n", m.Scans, m.ScanLines)
	}
	if res.Arch == pimdsm.AGG {
		c := res.Census
		fmt.Printf("D-node census: %d dirty-in-P, %d shared-in-P, %d D-node-only, %d free of %d slots\n",
			c.DirtyInP, c.SharedInP, c.DNodeOnly, c.FreeSlots, c.SlotCap)
	}
	net := res.Mesh
	fmt.Printf("mesh: %d messages, %.1f MB, avg queueing %d cycles\n",
		net.Messages, float64(net.Bytes)/(1<<20), uint64(net.Queued)/max64(net.Messages, 1))
	if *spansOn {
		fmt.Printf("\nspan breakdown (%d transactions, %d bad):\n", spans.Retired(), spans.Bad())
		spans.WriteBreakdown(os.Stdout)
		for _, d := range spans.BadSamples() {
			fmt.Printf("  BAD: %s\n", d)
		}
	}
	if *profileOn {
		fmt.Printf("\nbottleneck report:\n")
		prof.WriteReport(os.Stdout)
		if spans != nil {
			fmt.Printf("%s\n", pimdsm.CriticalPath(spans))
		}
	}
	if *folded != "" {
		if err := pimdsm.WriteFileAtomic(*folded, func(w io.Writer) error { return pimdsm.WriteFoldedProfile(w, prof) }); err != nil {
			fmt.Fprintln(os.Stderr, "folded:", err)
			return 1
		}
	}
	if *spansOut != "" {
		if err := pimdsm.WriteFileAtomic(*spansOut, func(w io.Writer) error { return pimdsm.WriteBinarySpans(w, spans) }); err != nil {
			fmt.Fprintln(os.Stderr, "spans-out:", err)
			return 1
		}
	}
	if *audit {
		if res.AuditViolations > 0 {
			fmt.Fprintf(os.Stderr, "audit: %d coherence-invariant violations\n", res.AuditViolations)
			for _, d := range res.AuditSamples {
				fmt.Fprintf(os.Stderr, "  %s\n", d)
			}
			return 1
		}
		fmt.Printf("audit: no coherence-invariant violations\n")
	}
	if dash != nil {
		// A single run is often over in milliseconds; keep the dashboard up
		// so the final spans/metrics are inspectable until interrupted.
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err == nil {
			dash.Publish("metrics", buf.String())
		}
		var sb strings.Builder
		spans.WriteBreakdown(&sb)
		dash.Publish("spans", sb.String())
		var pb strings.Builder
		prof.WriteReport(&pb)
		fmt.Fprintf(&pb, "%s\n", pimdsm.CriticalPath(spans))
		dash.Publish("profile", pb.String())
		fmt.Fprintln(os.Stderr, "run complete; dashboard still serving (Ctrl-C to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
	return 0
}

// writeObservers flushes the trace and metrics outputs that were requested.
// Every artifact is written atomically (temp file + rename), so a failed or
// interrupted writer never truncates a previous good artifact.
func writeObservers(tr *pimdsm.Trace, reg *pimdsm.Metrics, tracePath, traceBin, metricsOut string) error {
	if tracePath != "" {
		if err := pimdsm.WriteFileAtomic(tracePath, func(w io.Writer) error { return pimdsm.WriteChromeTrace(w, tr) }); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if d := tr.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "trace: ring full, oldest %d of %d events dropped (raise -trace-buf)\n", d, tr.Total())
		}
	}
	if traceBin != "" {
		if err := pimdsm.WriteFileAtomic(traceBin, func(w io.Writer) error { return pimdsm.WriteBinaryTrace(w, tr) }); err != nil {
			return fmt.Errorf("trace-bin: %w", err)
		}
	}
	if metricsOut != "" {
		if err := pimdsm.WriteFileAtomic(metricsOut, func(w io.Writer) error { return reg.WriteJSON(w) }); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
	}
	return nil
}

// startProfiles starts the requested pprof profiles and returns a function
// that flushes them; it must run before the process exits (so main returns an
// exit code instead of calling os.Exit directly).
func startProfiles(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
