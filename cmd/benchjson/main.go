// Command benchjson measures wall-clock simulator throughput on the full
// evaluation matrix — every application on every machine organization — and
// emits one JSON document to stdout. `make bench-json` redirects it into
// BENCH_<date>.json; committing those snapshots over time builds the
// performance trajectory of the simulator itself. Throughput is
// host-dependent, so the date, Go version, CPU count, GOMAXPROCS and the
// requested shard count are recorded alongside every snapshot, and each run
// carries its own shards/gomaxprocs pair so later analysis never has to
// guess a row's provenance.
//
// Usage:
//
//	benchjson [-scale 1.0] [-threads 32] [-repeat 2] [-shards 1]
//
// The machines' coherence path executes serially at any -shards value (see
// DESIGN.md, "Conservative-window PDES"): the flag exists so snapshots taken
// while the partitioned engine spreads to more subsystems stay comparable,
// not because it changes these numbers today.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"pimdsm"
)

// gitCommit resolves the working tree's HEAD, "-dirty" suffixed when the
// tree has uncommitted changes. Best-effort: any failure returns "".
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	commit := strings.TrimSpace(string(out))
	if commit == "" {
		return ""
	}
	if status, err := exec.Command("git", "status", "--porcelain").Output(); err == nil &&
		len(strings.TrimSpace(string(status))) > 0 {
		commit += "-dirty"
	}
	return commit
}

type benchRun struct {
	Arch         string  `json:"arch"`
	App          string  `json:"app"`
	Shards       int     `json:"shards"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	WallMs       float64 `json:"wall_ms"`
	ExecCycles   uint64  `json:"exec_cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

type benchDoc struct {
	Date string `json:"date"`
	// Commit ties the snapshot to the exact tree it measured (best-effort:
	// empty when git or the repo is unavailable, e.g. a tarball build).
	Commit     string     `json:"commit,omitempty"`
	Go         string     `json:"go"`
	CPUs       int        `json:"cpus"`
	GoMaxProcs int        `json:"gomaxprocs"`
	Scale      float64    `json:"scale"`
	Threads    int        `json:"threads"`
	Shards     int        `json:"shards"`
	Repeat     int        `json:"repeat"`
	Runs       []benchRun `json:"runs"`
}

func main() {
	os.Exit(realMain())
}

func realMain() int {
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	threads := flag.Int("threads", 32, "application threads")
	repeat := flag.Int("repeat", 2, "runs per configuration (best wall time wins)")
	shards := flag.Int("shards", 1, "partitioned-engine shard count recorded per run")
	flag.Parse()

	doc := benchDoc{
		Date:       time.Now().Format("2006-01-02"),
		Commit:     gitCommit(),
		Go:         runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      *scale,
		Threads:    *threads,
		Shards:     *shards,
		Repeat:     *repeat,
	}
	for _, app := range pimdsm.Apps() {
		for _, arch := range []pimdsm.Arch{pimdsm.NUMA, pimdsm.COMA, pimdsm.AGG} {
			cfg := pimdsm.Config{
				Arch: arch, App: pimdsm.App(app, *scale),
				Threads: *threads, Pressure: 0.75, DRatio: 1,
				Shards: *shards,
			}
			var res *pimdsm.Result
			best := time.Duration(1<<63 - 1)
			for n := 0; n < *repeat; n++ {
				start := time.Now()
				r, err := pimdsm.Run(cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchjson:", err)
					return 1
				}
				if d := time.Since(start); d < best {
					best = d
				}
				res = r
			}
			exec := uint64(res.Breakdown.Exec)
			doc.Runs = append(doc.Runs, benchRun{
				Arch: string(arch), App: app,
				Shards: res.Shards, GoMaxProcs: runtime.GOMAXPROCS(0),
				WallMs:       float64(best.Microseconds()) / 1000,
				ExecCycles:   exec,
				CyclesPerSec: float64(exec) / best.Seconds(),
			})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	return 0
}
