// Command benchjson measures wall-clock simulator throughput on a small
// fixed matrix and emits one JSON document to stdout. `make bench-json`
// redirects it into BENCH_<date>.json; committing those snapshots over time
// builds the performance trajectory of the simulator itself (host-dependent,
// so the date and Go version are recorded alongside).
//
// Usage:
//
//	benchjson [-scale 0.1] [-threads 8] [-repeat 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pimdsm"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	scale := flag.Float64("scale", 0.1, "workload scale factor")
	threads := flag.Int("threads", 8, "application threads")
	repeat := flag.Int("repeat", 3, "runs per configuration (best wall time wins)")
	flag.Parse()

	type run struct {
		arch pimdsm.Arch
		app  string
	}
	matrix := []run{
		{pimdsm.AGG, "fft"}, {pimdsm.NUMA, "fft"}, {pimdsm.COMA, "fft"},
		{pimdsm.AGG, "ocean"},
	}

	fmt.Printf("{\"date\":%q,\"go\":%q,\"cpus\":%d,\"scale\":%g,\"threads\":%d,\"runs\":[",
		time.Now().Format("2006-01-02"), runtime.Version(), runtime.NumCPU(), *scale, *threads)
	for i, r := range matrix {
		cfg := pimdsm.Config{
			Arch: r.arch, App: pimdsm.App(r.app, *scale),
			Threads: *threads, Pressure: 0.75, DRatio: 1,
		}
		var exec pimdsm.Time
		best := time.Duration(1<<63 - 1)
		for n := 0; n < *repeat; n++ {
			start := time.Now()
			res, err := pimdsm.Run(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				return 1
			}
			if d := time.Since(start); d < best {
				best = d
			}
			exec = res.Breakdown.Exec
		}
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Printf("{\"arch\":%q,\"app\":%q,\"wall_ms\":%.2f,\"exec_cycles\":%d,\"cycles_per_sec\":%.0f}",
			r.arch, r.app, float64(best.Microseconds())/1000,
			exec, float64(exec)/best.Seconds())
	}
	fmt.Println("]}")
	return 0
}
