// Command checkstats is the perf-regression gate: it runs the fixed
// deterministic baseline matrix (see pimdsm.CollectBaseline) and compares
// the measurements against the committed golden with per-metric tolerances.
//
// Usage:
//
//	checkstats [-golden testdata/golden_stats.json] [-update]
//	           [-inject 0.05] [-parallel n]
//
// -update regenerates the golden from the current build instead of
// comparing (commit the result deliberately). -inject multiplies every
// cycle/latency metric by 1+f before comparing — a self-test hook: CI runs
// `checkstats -inject 0.05` and requires it to FAIL, proving the gate would
// catch a 5% latency regression.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pimdsm"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	golden := flag.String("golden", "testdata/golden_stats.json", "golden baseline JSON path")
	update := flag.Bool("update", false, "regenerate the golden instead of comparing")
	inject := flag.Float64("inject", 0, "multiply cycle/latency metrics by 1+f (regression self-test)")
	parallel := flag.Int("parallel", 0, "max simulations in flight (0 = one per CPU)")
	flag.Parse()

	got, err := pimdsm.CollectBaseline(*parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkstats:", err)
		return 1
	}
	if *inject != 0 {
		for name, v := range got.Metrics {
			if strings.HasSuffix(name, "_cycles") || strings.HasSuffix(name, "_lat") {
				got.Metrics[name] = v * (1 + *inject)
			}
		}
	}
	if *update {
		f, err := os.Create(*golden)
		if err == nil {
			err = pimdsm.WriteBaseline(f, got)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkstats:", err)
			return 1
		}
		fmt.Printf("checkstats: wrote %d metrics to %s\n", len(got.Metrics), *golden)
		return 0
	}
	f, err := os.Open(*golden)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkstats:", err)
		fmt.Fprintln(os.Stderr, "checkstats: no golden — generate one with -update and commit it")
		return 1
	}
	want, err := pimdsm.ReadBaseline(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkstats:", err)
		return 1
	}
	if bad := pimdsm.CompareBaselines(got, want); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "checkstats: %d metric(s) out of tolerance vs %s:\n", len(bad), *golden)
		for _, line := range bad {
			fmt.Fprintln(os.Stderr, " ", line)
		}
		return 1
	}
	fmt.Printf("checkstats: %d metrics within tolerance of %s\n", len(want.Metrics), *golden)
	return 0
}
