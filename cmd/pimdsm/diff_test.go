package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pimdsm"
)

// TestAnalyzeProm: `pimdsm analyze` on a Prometheus text exposition (as
// scraped from /metrics.prom) validates it strictly and prints the family
// table; a malformed exposition exits 1.
func TestAnalyzeProm(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "scrape.prom")
	exposition := strings.Join([]string{
		"# HELP aggsimd_jobs_submitted_total Jobs accepted.",
		"# TYPE aggsimd_jobs_submitted_total counter",
		"aggsimd_jobs_submitted_total 5",
		"# TYPE aggsimd_queue_depth gauge",
		`aggsimd_queue_depth{pool="default"} 2`,
		"# TYPE aggsimd_job_wall_seconds histogram",
		`aggsimd_job_wall_seconds_bucket{le="1"} 3`,
		`aggsimd_job_wall_seconds_bucket{le="+Inf"} 5`,
		"aggsimd_job_wall_seconds_sum 6.5",
		"aggsimd_job_wall_seconds_count 5",
		"",
	}, "\n")
	if err := os.WriteFile(good, []byte(exposition), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := capture(t, func() int { return realMain([]string{"analyze", good}) })
	if code != 0 {
		t.Fatalf("analyze .prom exited %d:\n%s", code, out)
	}
	for _, want := range []string{"3 metric families", "aggsimd_jobs_submitted_total", "pool=default", "histogram", "p99 <=+Inf"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze .prom output missing %q:\n%s", want, out)
		}
	}

	// A sample without its # TYPE declaration is corrupt: exit 1, exactly
	// like a corrupt metrics JSON or span file.
	bad := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(bad, []byte("# comment\norphan_metric 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"analyze", bad}) }); code != 1 {
		t.Errorf("analyze corrupt .prom exited %d, want 1", code)
	}
	// Comments only — no families — is not a healthy scrape either.
	empty := filepath.Join(dir, "empty.prom")
	if err := os.WriteFile(empty, []byte("# just a comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"analyze", empty}) }); code != 1 {
		t.Errorf("analyze family-less .prom exited %d, want 1", code)
	}
}

// benchFile writes a minimal BENCH snapshot and returns its path.
func benchFile(t *testing.T, dir, date string, cyclesPerSec float64) string {
	t.Helper()
	doc := map[string]any{
		"date": date, "go": "go1.23", "cpus": 8, "scale": 0.1, "threads": 16,
		"runs": []map[string]any{
			{"arch": "agg", "app": "fft", "wall_ms": 100.0, "exec_cycles": 1000000, "cycles_per_sec": cyclesPerSec},
		},
	}
	b, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_"+date+".json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffBench: `pimdsm diff -bench` renders the throughput trajectory over
// two snapshots, flags a drop beyond the threshold, stays advisory (exit 0)
// about the regression itself, and fails loudly (exit 1) on a malformed
// snapshot.
func TestDiffBench(t *testing.T) {
	dir := t.TempDir()
	older := benchFile(t, dir, "2026-08-01", 2.0e9)
	newer := benchFile(t, dir, "2026-08-07", 1.0e9) // a 50% throughput drop

	code, out := capture(t, func() int { return realMain([]string{"diff", "-bench", older, newer}) })
	if code != 0 {
		t.Fatalf("diff -bench exited %d:\n%s", code, out)
	}
	for _, want := range []string{"bench timeline", "agg", "fft", "REGRESSED", "advisory"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff -bench output missing %q:\n%s", want, out)
		}
	}
	// The typed JSON report round-trips.
	code, out = capture(t, func() int { return realMain([]string{"diff", "-bench", "-json", older, newer}) })
	if code != 0 {
		t.Fatalf("diff -bench -json exited %d:\n%s", code, out)
	}
	var rep pimdsm.TimelineReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("diff -bench -json output is not a TimelineReport: %v\n%s", err, out)
	}
	if len(rep.Regressions) != 1 || len(rep.Series) != 1 {
		t.Fatalf("report: %+v, want 1 series with 1 regression", rep)
	}
	// Raising the threshold above the drop un-flags it.
	code, out = capture(t, func() int { return realMain([]string{"diff", "-bench", "-threshold", "0.9", older, newer}) })
	if code != 0 || strings.Contains(out, "REGRESSED") {
		t.Fatalf("diff -bench -threshold 0.9 exited %d:\n%s", code, out)
	}

	// Malformed snapshots are exit 1; wrong operand counts are usage (2).
	corrupt := filepath.Join(dir, "BENCH_corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"date":""}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"diff", "-bench", older, corrupt}) }); code != 1 {
		t.Errorf("diff -bench with a corrupt snapshot exited %d, want 1", code)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"diff", "-bench", older}) }); code != 2 {
		t.Errorf("diff -bench with one operand exited %d, want 2", code)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"diff"}) }); code != 2 {
		t.Errorf("diff with no operands exited %d, want 2", code)
	}
}

// TestDiffJobs drives `pimdsm diff <jobA> <jobB>` against a live in-process
// service: two telemetry jobs on different architectures diff into a report
// that names the dominant phase; a job without flight-recorder artifacts is
// an actionable error.
func TestDiffJobs(t *testing.T) {
	srv, err := pimdsm.NewServer(pimdsm.ServerOptions{Workers: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	addr, closeHTTP, err := pimdsm.NewServiceAPI(srv, nil).ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		closeHTTP()
		srv.Shutdown(context.Background())
	}()
	c := pimdsm.NewServiceClient(addr)

	submit := func(spec pimdsm.JobSpec) string {
		st, err := c.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		fin, err := c.Wait(ctx, st.ID, 20*time.Millisecond)
		if err != nil || fin.State != pimdsm.JobDone {
			t.Fatalf("job %s: %+v, %v", st.ID, fin, err)
		}
		return st.ID
	}
	idA := submit(pimdsm.JobSpec{Telemetry: true, Configs: []pimdsm.ConfigSpec{
		{Arch: "agg", App: "fft", Scale: 0.02, Threads: 4, Pressure: 0.75, DRatio: 1}}})
	idB := submit(pimdsm.JobSpec{Telemetry: true, Configs: []pimdsm.ConfigSpec{
		{Arch: "numa", App: "fft", Scale: 0.02, Threads: 4, Pressure: 0.75}}})

	code, out := capture(t, func() int { return realMain([]string{"diff", "-addr", addr, idA, idB}) })
	if code != 0 {
		t.Fatalf("diff exited %d:\n%s", code, out)
	}
	for _, want := range []string{"perf diff: " + idA + " -> " + idB, "phase decomposition", "dominant"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	code, out = capture(t, func() int { return realMain([]string{"diff", "-addr", addr, "-json", idA, idB}) })
	if code != 0 {
		t.Fatalf("diff -json exited %d:\n%s", code, out)
	}
	var rep pimdsm.CompareReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("diff -json output is not a CompareReport: %v\n%s", err, out)
	}
	if rep.DominantPhase == "" || rep.Verdict == "" {
		t.Fatalf("diff of agg vs numa named no dominant phase: %+v", rep)
	}

	// A plain job has no flight record: the diff fails with the hint.
	idPlain := submit(pimdsm.JobSpec{Configs: []pimdsm.ConfigSpec{
		{Arch: "agg", App: "radix", Scale: 0.02, Threads: 4, Pressure: 0.75, DRatio: 1}}})
	if code, _ := capture(t, func() int { return realMain([]string{"diff", "-addr", addr, idA, idPlain}) }); code != 1 {
		t.Errorf("diff with a telemetry-less job exited %d, want 1", code)
	}
}
