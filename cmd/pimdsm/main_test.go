package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimdsm/internal/obs"
	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() int) (int, string) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return code, string(out)
}

// sampleTrace builds a small deterministic trace with several event kinds.
func sampleTrace() *obs.Trace {
	tr := obs.NewTrace(64)
	tr.Emit(obs.EvRunStart, 0, 0, -1, 16, 2)
	tr.Emit(obs.EvRead, 100, 298, 3, 0x1000, 3)
	tr.Emit(obs.EvWrite, 500, 383, 5, 0x2080, 4)
	tr.Emit(obs.EvInval, 600, 0, 7, 0x2080, 0)
	tr.Emit(obs.EvMsg, 700, 74, 5, 9, 2<<32|144)
	tr.Emit(obs.EvPageout, 900, 0, 33, 0x4000, 12)
	return tr
}

// TestTraceDumpConvertRoundTrip drives the CLI end to end: a PDT1 file is
// dumped (every event visible, per-kind totals correct) and converted to
// Chrome JSON that is byte-identical to exporting the original events —
// the binary format loses nothing.
func TestTraceDumpConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.bin")
	tr := sampleTrace()
	f, err := os.Create(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The binary file reads back as the identical event sequence.
	rf, err := os.Open(bin)
	if err != nil {
		t.Fatal(err)
	}
	events, total, err := obs.ReadBinary(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if total != tr.Total() || len(events) != tr.Len() {
		t.Fatalf("read %d/%d events, want %d/%d", len(events), total, tr.Len(), tr.Total())
	}
	orig := tr.Events()
	for i := range orig {
		if events[i] != orig[i] {
			t.Fatalf("event %d differs after binary round trip: %+v vs %+v", i, events[i], orig[i])
		}
	}

	code, out := capture(t, func() int { return realMain([]string{"trace", "dump", bin}) })
	if code != 0 {
		t.Fatalf("trace dump exited %d:\n%s", code, out)
	}
	for _, want := range []string{"run-start", "read", "write", "inval", "msg", "pageout", "6 events held"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace dump output missing %q:\n%s", want, out)
		}
	}

	jsonPath := filepath.Join(dir, "t.json")
	code, out = capture(t, func() int { return realMain([]string{"trace", "convert", bin, jsonPath}) })
	if code != 0 {
		t.Fatalf("trace convert exited %d:\n%s", code, out)
	}
	got, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := obs.WriteChromeJSONEvents(&direct, orig); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, direct.Bytes()) {
		t.Fatalf("converted JSON differs from direct export:\n%s\nvs\n%s", got, direct.Bytes())
	}
	if !json.Valid(got) {
		t.Fatalf("converted JSON invalid:\n%s", got)
	}
}

// TestSpansDumpCLI: a PDS1 file written by the recorder prints its breakdown
// and retained spans through `pimdsm spans dump`.
func TestSpansDumpCLI(t *testing.T) {
	s := obs.NewSpans(8)
	s.Begin(100, 3, 0x1000, false)
	s.Mark(obs.PhaseNetRequest, 150)
	s.Mark(obs.PhaseDirOcc, 220)
	s.Mark(obs.PhaseNetReply, 300)
	s.End(340, proto.Lat2Hop)
	s.Begin(400, 5, 0x2000, true)
	s.End(sim.Time(440), proto.LatMem)

	path := filepath.Join(t.TempDir(), "s.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, out := capture(t, func() int { return realMain([]string{"spans", "dump", path}) })
	if code != 0 {
		t.Fatalf("spans dump exited %d:\n%s", code, out)
	}
	for _, want := range []string{"2 transactions retired, 0 bad", "dir-occ", "2Hop", "retained spans", "0x1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("spans dump output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIUsageErrors: unknown commands and missing files exit nonzero.
func TestCLIUsageErrors(t *testing.T) {
	if code, _ := capture(t, func() int { return realMain(nil) }); code != 2 {
		t.Errorf("no args exited %d, want 2", code)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"bogus"}) }); code != 2 {
		t.Errorf("unknown command exited %d, want 2", code)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"spans", "dump", "/no/such/file"}) }); code != 1 {
		t.Errorf("missing spans file exited %d, want 1", code)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"trace", "dump", "/no/such/file"}) }); code != 1 {
		t.Errorf("missing trace file exited %d, want 1", code)
	}
}
