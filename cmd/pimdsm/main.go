// Command pimdsm is the simulator's introspection toolbox. Its command
// groups work with the compact binary artifacts the simulators record:
//
//	pimdsm trace dump f.bin [-kind read] [-node 3] [-limit 100]
//	pimdsm trace convert f.bin f.json
//	pimdsm spans dump f.bin [-limit 100]
//	pimdsm analyze metrics.json|spans.pds1|metrics.prom
//
// and its service group is the client of the aggsimd daemon:
//
//	pimdsm submit [-addr host:port] [-figure6] -app fft [-wait] [-progress]
//	pimdsm status [-addr host:port] <job-id>
//	pimdsm result [-addr host:port] <job-id> [-o out.json]
//	pimdsm jobs   [-addr host:port]
//	pimdsm watch  [-addr host:port] [-job id] [-tenant name]
//	pimdsm events [-addr host:port] <job-id> [-json]
//	pimdsm usage  [-addr host:port] [-key k] [tenant]
//	pimdsm diff   [-addr host:port] <jobA> <jobB>
//	pimdsm diff   -bench BENCH_a.json BENCH_b.json
//
// `diff` is the perf-diff engine's front end: it fetches two telemetry jobs'
// flight-recorder artifacts (profile, folded, decompose — recorded when a
// job is submitted with "telemetry": true or head-sampled by the daemon's
// -telemetry-sample) and names the dominant regressed phase; with -bench it
// diffs two committed BENCH snapshots into a throughput trajectory instead.
//
// `watch` tails the daemon's live job-lifecycle event stream (SSE) and
// reconnects with Last-Event-ID after a dropped connection, so no events are
// missed across daemon hiccups. `events` prints one finished job's complete
// lifecycle chain. With -wait, `submit` honors the daemon's Retry-After
// pushback instead of giving up on a full admission window.
//
// Against a daemon running with -tenants-file, every service command sends
// the tenant API key from -key (default $PIMDSM_API_KEY), and `usage` prints
// per-tenant quotas, live scheduling state and the cumulative usage ledger.
//
// `trace dump` pretty-prints events recorded by `aggsim -trace-bin` in
// sim-time order with per-kind totals; `trace convert` rewrites a binary
// trace as Chrome trace_event JSON (loadable in chrome://tracing or
// https://ui.perfetto.dev). `spans dump` prints the per-phase miss-latency
// breakdown and the retained transaction spans of a PDS1 file recorded by
// `aggsim -spans-out`. `analyze` sniffs the artifact format and prints a
// bottleneck report: phase breakdown plus critical-path verdict for span
// files, per-class latencies and histogram percentiles for metrics dumps,
// and a family table for Prometheus text expositions (.prom, as scraped
// from the daemon's /metrics.prom).
package main

import (
	"flag"
	"fmt"
	"os"

	"pimdsm/internal/obs"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

func realMain(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	switch args[0] {
	case "trace":
		return traceCmd(args[1:])
	case "spans":
		return spansCmd(args[1:])
	case "analyze":
		return analyzeCmd(args[1:])
	case "submit":
		return submitCmd(args[1:])
	case "status":
		return statusCmd(args[1:])
	case "result":
		return resultCmd(args[1:])
	case "jobs":
		return jobsCmd(args[1:])
	case "watch":
		return watchCmd(args[1:])
	case "events":
		return eventsCmd(args[1:])
	case "usage":
		return usageCmd(args[1:])
	case "diff":
		return diffCmd(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "pimdsm: unknown command %q\n", args[0])
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pimdsm trace dump <f.bin> [-kind k] [-node n] [-limit n]")
	fmt.Fprintln(os.Stderr, "       pimdsm trace convert <f.bin> <f.json>")
	fmt.Fprintln(os.Stderr, "       pimdsm spans dump <f.bin> [-limit n]")
	fmt.Fprintln(os.Stderr, "       pimdsm analyze <metrics.json|spans.pds1>")
	fmt.Fprintln(os.Stderr, "       pimdsm submit [-addr host:port] [-figure6] -app a [-wait]")
	fmt.Fprintln(os.Stderr, "       pimdsm status [-addr host:port] <job-id>")
	fmt.Fprintln(os.Stderr, "       pimdsm result [-addr host:port] <job-id> [-o out.json]")
	fmt.Fprintln(os.Stderr, "       pimdsm jobs   [-addr host:port]")
	fmt.Fprintln(os.Stderr, "       pimdsm watch  [-addr host:port] [-job id]")
	fmt.Fprintln(os.Stderr, "       pimdsm events [-addr host:port] <job-id> [-json]")
	fmt.Fprintln(os.Stderr, "       pimdsm usage  [-addr host:port] [-key k] [tenant] [-json]")
	fmt.Fprintln(os.Stderr, "       pimdsm diff   [-addr host:port] [-json] <jobA> <jobB>")
	fmt.Fprintln(os.Stderr, "       pimdsm diff   -bench [-threshold 0.10] <BENCH_a.json> <BENCH_b.json>")
}

func traceCmd(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	switch args[0] {
	case "dump":
		return traceDump(args[1:])
	case "convert":
		return traceConvert(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "pimdsm trace: unknown subcommand %q\n", args[0])
		usage()
		return 2
	}
}

// readTrace loads a binary trace file.
func readTrace(path string) ([]obs.Event, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return obs.ReadBinary(f)
}

func traceDump(args []string) int {
	fs := flag.NewFlagSet("trace dump", flag.ContinueOnError)
	kind := fs.String("kind", "", "only events of this kind (read, write, inval, ...)")
	node := fs.Int("node", -2, "only events at this node ID")
	limit := fs.Int("limit", 0, "print at most this many events (0 = all)")
	// Accept the file before or after the flags.
	var path string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		path, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if path == "" && fs.NArg() > 0 {
		path = fs.Arg(0)
	}
	if path == "" {
		fmt.Fprintln(os.Stderr, "pimdsm trace dump: need a trace file")
		return 2
	}
	events, total, err := readTrace(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	var wantKind obs.EventKind
	if *kind != "" {
		k, ok := kindByName(*kind)
		if !ok {
			fmt.Fprintf(os.Stderr, "pimdsm trace dump: unknown kind %q\n", *kind)
			return 2
		}
		wantKind = k
	}

	counts := make([]int, obs.NumEventKinds)
	printed := 0
	for _, e := range events {
		counts[e.Kind]++
		if *kind != "" && e.Kind != wantKind {
			continue
		}
		if *node != -2 && e.Node != int32(*node) {
			continue
		}
		if *limit > 0 && printed >= *limit {
			continue
		}
		printed++
		fmt.Printf("%12d %-10s node=%-4d addr=%#-12x", e.At, e.Kind, e.Node, e.Addr)
		if e.Kind.Span() {
			fmt.Printf(" dur=%-8d", e.Dur)
		}
		if e.Arg != 0 {
			fmt.Printf(" arg=%d", e.Arg)
		}
		fmt.Println()
	}

	fmt.Printf("\n%d events held", len(events))
	if dropped := total - uint64(len(events)); dropped > 0 {
		fmt.Printf(" (%d more emitted but dropped by the ring)", dropped)
	}
	fmt.Println(", by kind:")
	for k := obs.EventKind(0); k < obs.NumEventKinds; k++ {
		if counts[k] > 0 {
			fmt.Printf("  %-10s %d\n", k, counts[k])
		}
	}
	return 0
}

func traceConvert(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: pimdsm trace convert <f.bin> <f.json>")
		return 2
	}
	events, _, err := readTrace(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	out, err := os.Create(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := obs.WriteChromeJSONEvents(out, events); err != nil {
		out.Close()
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := out.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%d events -> %s\n", len(events), args[1])
	return 0
}

func spansCmd(args []string) int {
	if len(args) < 1 || args[0] != "dump" {
		usage()
		return 2
	}
	return spansDump(args[1:])
}

func spansDump(args []string) int {
	fs := flag.NewFlagSet("spans dump", flag.ContinueOnError)
	limit := fs.Int("limit", 16, "print at most this many retained spans (0 = all)")
	// Accept the file before or after the flags, like trace dump.
	var path string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		path, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if path == "" && fs.NArg() > 0 {
		path = fs.Arg(0)
	}
	if path == "" {
		fmt.Fprintln(os.Stderr, "pimdsm spans dump: need a spans file")
		return 2
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	s, err := obs.ReadSpansBinary(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	fmt.Printf("%d transactions retired, %d bad\n", s.Retired(), s.Bad())
	s.WriteBreakdown(os.Stdout)

	kept := s.Kept()
	if *limit > 0 && len(kept) > *limit {
		kept = kept[len(kept)-*limit:]
	}
	if len(kept) == 0 {
		return 0
	}
	fmt.Printf("\nretained spans (most recent %d):\n", len(kept))
	fmt.Printf("%10s %6s %2s %-6s %12s %8s %8s", "id", "node", "rw", "class", "addr", "start", "latency")
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		fmt.Printf(" %9s", p)
	}
	fmt.Println()
	for i := range kept {
		sp := &kept[i]
		rw := "r"
		if sp.Write {
			rw = "w"
		}
		fmt.Printf("%10d %6d %2s %-6s %#12x %8d %8d", sp.ID, sp.Node, rw, sp.Class, sp.Addr, sp.Start, sp.Latency())
		for _, v := range sp.Phases {
			fmt.Printf(" %9d", v)
		}
		fmt.Println()
	}
	return 0
}

// kindByName resolves an event-kind display name.
func kindByName(name string) (obs.EventKind, bool) {
	for k := obs.EventKind(0); k < obs.NumEventKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}
