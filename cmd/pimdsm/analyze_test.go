package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimdsm/internal/obs"
	"pimdsm/internal/proto"
)

// TestAnalyzeSpans: `pimdsm analyze` on a PDS1 file prints the breakdown and
// the critical-path verdict.
func TestAnalyzeSpans(t *testing.T) {
	s := obs.NewSpans(8)
	s.Begin(100, 3, 0x1000, false)
	s.Mark(obs.PhaseNetRequest, 150)
	s.Mark(obs.PhaseDirOcc, 400)
	s.Mark(obs.PhaseNetReply, 450)
	s.End(470, proto.Lat2Hop)

	path := filepath.Join(t.TempDir(), "s.pds1")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, out := capture(t, func() int { return realMain([]string{"analyze", path}) })
	if code != 0 {
		t.Fatalf("analyze exited %d:\n%s", code, out)
	}
	for _, want := range []string{"1 transactions retired", "critical path:", "directory occupancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeMetrics: `pimdsm analyze` on a metrics registry JSON dump prints
// per-class latencies, histogram percentiles and the event table.
func TestAnalyzeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("read.count.2Hop").Add(10)
	reg.Counter("read.lat.2Hop").Add(5000)
	reg.Counter("write.count.2Hop").Add(4)
	reg.Counter("write.lat.2Hop").Add(1200)
	reg.Counter("invalidations").Add(42)
	h := reg.Histogram("read.lat.hist", obs.Pow2Bounds(19))
	for i := 0; i < 100; i++ {
		h.Observe(512)
	}

	path := filepath.Join(t.TempDir(), "m.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, out := capture(t, func() int { return realMain([]string{"analyze", path}) })
	if code != 0 {
		t.Fatalf("analyze exited %d:\n%s", code, out)
	}
	for _, want := range []string{"2Hop", "500.0", "read.lat.hist", "p99<=511", "invalidations", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

// TestAnalyzeErrors: missing arguments and missing/corrupt inputs exit
// nonzero with the documented codes.
func TestAnalyzeErrors(t *testing.T) {
	if code, _ := capture(t, func() int { return realMain([]string{"analyze"}) }); code != 2 {
		t.Errorf("analyze with no file exited %d, want 2", code)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"analyze", "/no/such/file"}) }); code != 1 {
		t.Errorf("analyze missing file exited %d, want 1", code)
	}
	junk := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(junk, []byte("not a span file and not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"analyze", junk}) }); code != 1 {
		t.Errorf("analyze corrupt file exited %d, want 1", code)
	}
	// A PDS1 magic with a truncated body is corrupt, not silently accepted.
	trunc := filepath.Join(t.TempDir(), "trunc.pds1")
	if err := os.WriteFile(trunc, []byte("PDS1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"analyze", trunc}) }); code != 1 {
		t.Errorf("analyze truncated span file exited %d, want 1", code)
	}
	// Valid JSON without a metrics object is rejected too.
	noMetrics := filepath.Join(t.TempDir(), "no.json")
	if err := os.WriteFile(noMetrics, []byte(`{"other":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := capture(t, func() int { return realMain([]string{"analyze", noMetrics}) }); code != 1 {
		t.Errorf("analyze metrics-less JSON exited %d, want 1", code)
	}
}
