package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pimdsm"
)

// apiKeyFlag registers the shared -key flag: the tenant API key sent with
// every request to a daemon running with -tenants-file. It defaults to
// $PIMDSM_API_KEY so scripts set the key once in the environment.
func apiKeyFlag(fs *flag.FlagSet) *string {
	return fs.String("key", os.Getenv("PIMDSM_API_KEY"), "tenant API key (default $PIMDSM_API_KEY)")
}

// newClient builds a service client carrying the tenant API key.
func newClient(addr, key string) *pimdsm.ServiceClient {
	c := pimdsm.NewServiceClient(addr)
	c.APIKey = key
	return c
}

// submitCmd posts a job to an aggsimd daemon: either the standard Figure-6
// batch for an application (-figure6) or a single configuration described
// by the same flags aggsim takes.
func submitCmd(args []string) int {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8977", "aggsimd address")
	key := apiKeyFlag(fs)
	name := fs.String("name", "", "job name (shown in listings)")
	priority := fs.Int("priority", 0, "scheduling priority (higher runs first)")
	seed := fs.Uint64("seed", 0, "cache-key seed (reserved; 0 is fine)")
	metrics := fs.Bool("metrics", false, "attach a per-job metrics artifact")
	spans := fs.Bool("spans", false, "attach a per-job span artifact (runs serial)")
	telemetry := fs.Bool("telemetry", false, "flight recorder: record profile/folded/decompose artifacts (implies -metrics -spans)")
	wait := fs.Bool("wait", false, "poll until the job finishes and print the final status")
	busyRetries := fs.Int("busy-retries", 10, "with -wait: resubmissions absorbed on 429 pushback (honoring Retry-After)")
	progress := fs.Bool("progress", false, "stream job progress to stderr (implies -wait)")
	fig6 := fs.Bool("figure6", false, "submit the paper's Figure 6 batch for -app")
	arch := fs.String("arch", "agg", "architecture: agg, numa or coma")
	app := fs.String("app", "fft", "application")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	threads := fs.Int("threads", 32, "application threads")
	pressure := fs.Float64("pressure", 0.75, "memory pressure")
	dratio := fs.Int("dratio", 1, "AGG P:D ratio denominator")
	dnodes := fs.Int("dnodes", 0, "explicit AGG D-node count (overrides -dratio)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	spec := pimdsm.JobSpec{
		Name:      *name,
		Priority:  *priority,
		Seed:      *seed,
		Metrics:   *metrics,
		Spans:     *spans,
		Telemetry: *telemetry,
	}
	if *fig6 {
		spec.Configs = pimdsm.Figure6Specs(*app, *threads, *scale)
		if spec.Name == "" {
			spec.Name = "figure6-" + *app
		}
	} else {
		spec.Configs = []pimdsm.ConfigSpec{pimdsm.SpecOfConfig(pimdsm.Config{
			Arch:     pimdsm.Arch(*arch),
			App:      pimdsm.App(*app, *scale),
			Threads:  *threads,
			Pressure: *pressure,
			DRatio:   *dratio,
			DNodes:   *dnodes,
		})}
	}

	c := newClient(*addr, *key)
	var st pimdsm.JobStatus
	var err error
	if *wait || *progress {
		// A waiting submit honors the daemon's admission pushback: sleep
		// the Retry-After the 429 carried and resubmit, rather than making
		// the caller script the backoff loop.
		var retries int
		st, retries, err = c.SubmitRetry(context.Background(), spec, *busyRetries, 0)
		if retries > 0 && err == nil {
			fmt.Fprintf(os.Stderr, "pimdsm submit: admitted after %d busy retries\n", retries)
		}
	} else {
		st, err = c.Submit(spec)
	}
	if err != nil {
		if be, ok := err.(*pimdsm.BusyError); ok {
			fmt.Fprintf(os.Stderr, "pimdsm submit: server busy, retry in %s\n", be.RetryAfter)
			return 1
		}
		fmt.Fprintln(os.Stderr, "pimdsm submit:", err)
		return 1
	}
	fmt.Printf("%s %s (%d configs)\n", st.ID, st.State, st.Total)
	if !*wait && !*progress {
		return 0
	}
	if *progress {
		if err := c.StreamProgress(context.Background(), st.ID, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "pimdsm submit:", err)
			return 1
		}
	}
	final, err := c.Wait(context.Background(), st.ID, 200*time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdsm submit:", err)
		return 1
	}
	printStatus(final)
	if final.State != pimdsm.JobDone {
		return 1
	}
	return 0
}

func printStatus(st pimdsm.JobStatus) {
	fmt.Printf("%s %-8s %d/%d done, %d cached, %d simulated, %d joined",
		st.ID, st.State, st.Done, st.Total, st.CacheHits, st.Simulated, st.Joins)
	if st.Name != "" {
		fmt.Printf("  (%s)", st.Name)
	}
	if st.Error != "" {
		fmt.Printf("  error: %s", st.Error)
	}
	fmt.Println()
}

// addrAndID parses the common "[-addr host:port] [-key k] <job-id>" shape,
// accepting the id before or after the flags.
func addrAndID(cmd string, args []string) (addr, key, id string, ok bool) {
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	a := fs.String("addr", "localhost:8977", "aggsimd address")
	k := apiKeyFlag(fs)
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		id, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return "", "", "", false
	}
	if id == "" && fs.NArg() > 0 {
		id = fs.Arg(0)
	}
	if id == "" {
		fmt.Fprintf(os.Stderr, "pimdsm %s: need a job id\n", cmd)
		return "", "", "", false
	}
	return *a, *k, id, true
}

func statusCmd(args []string) int {
	addr, key, id, ok := addrAndID("status", args)
	if !ok {
		return 2
	}
	st, err := newClient(addr, key).Status(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdsm status:", err)
		return 1
	}
	printStatus(st)
	return 0
}

func resultCmd(args []string) int {
	fs := flag.NewFlagSet("result", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8977", "aggsimd address")
	key := apiKeyFlag(fs)
	out := fs.String("o", "", "write the result envelope JSON to this file (atomic) instead of stdout")
	// Accept the job id anywhere among the flags (the flag package stops at
	// the first non-flag argument, so re-parse whatever follows the id).
	var id string
	for len(args) > 0 {
		if err := fs.Parse(args); err != nil {
			return 2
		}
		if fs.NArg() == 0 {
			break
		}
		if id == "" {
			id = fs.Arg(0)
		}
		args = fs.Args()[1:]
	}
	if id == "" {
		fmt.Fprintln(os.Stderr, "pimdsm result: need a job id")
		return 2
	}
	st, results, err := newClient(*addr, *key).Result(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdsm result:", err)
		return 1
	}
	env := struct {
		Job     pimdsm.JobStatus  `json:"job"`
		Results []json.RawMessage `json:"results"`
	}{Job: st, Results: results}
	writeOut := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(env)
	}
	if *out != "" {
		if err := pimdsm.WriteFileAtomic(*out, writeOut); err != nil {
			fmt.Fprintln(os.Stderr, "pimdsm result:", err)
			return 1
		}
		fmt.Printf("%s: %d results -> %s\n", st.ID, len(results), *out)
		return 0
	}
	if err := writeOut(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pimdsm result:", err)
		return 1
	}
	return 0
}

// watchCmd tails the daemon's live lifecycle event stream. The SSE
// connection is re-established with Last-Event-ID after any drop, so the
// daemon replays what the watcher missed and no transition is lost.
func watchCmd(args []string) int {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8977", "aggsimd address")
	key := apiKeyFlag(fs)
	job := fs.String("job", "", "only this job's events (default: all jobs)")
	tenant := fs.String("tenant", "", "only this tenant's events (default: all tenants)")
	reconnect := fs.Duration("reconnect", time.Second, "wait between reconnect attempts (0 = exit on disconnect)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	c := newClient(*addr, *key)
	var last uint64
	for {
		got, err := c.StreamEvents(context.Background(), last, *job, *tenant, printEvent)
		if got > last {
			last = got
		}
		if *reconnect <= 0 {
			if err != nil {
				fmt.Fprintln(os.Stderr, "pimdsm watch:", err)
				return 1
			}
			return 0
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimdsm watch: %v; reconnecting after seq %d\n", err, last)
		}
		time.Sleep(*reconnect)
	}
}

// eventsCmd prints one job's complete lifecycle event chain.
func eventsCmd(args []string) int {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8977", "aggsimd address")
	key := apiKeyFlag(fs)
	asJSON := fs.Bool("json", false, "print the raw event JSON")
	// Accept the job id anywhere among the flags (the flag package stops at
	// the first non-flag argument, so re-parse whatever follows the id).
	var id string
	for len(args) > 0 {
		if err := fs.Parse(args); err != nil {
			return 2
		}
		if fs.NArg() == 0 {
			break
		}
		if id == "" {
			id = fs.Arg(0)
		}
		args = fs.Args()[1:]
	}
	if id == "" {
		fmt.Fprintln(os.Stderr, "pimdsm events: need a job id")
		return 2
	}
	events, err := newClient(*addr, *key).JobEvents(id)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdsm events:", err)
		return 1
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Events []pimdsm.JobEvent `json:"events"`
		}{events})
		return 0
	}
	for _, ev := range events {
		printEvent(ev)
	}
	return 0
}

func printEvent(ev pimdsm.JobEvent) {
	line := fmt.Sprintf("%6d %s %-10s +%dus  queue %d running %d",
		ev.Seq, ev.Job, ev.Kind, ev.SinceSubmitUS, ev.QueueDepth, ev.Running)
	if ev.Config >= 0 {
		line += fmt.Sprintf("  config %d", ev.Config)
	}
	if ev.Cycles > 0 {
		line += fmt.Sprintf("  %d cycles", ev.Cycles)
	}
	if ev.Detail != "" {
		line += "  " + ev.Detail
	}
	fmt.Println(line)
}

func jobsCmd(args []string) int {
	fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8977", "aggsimd address")
	key := apiKeyFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	c := newClient(*addr, *key)
	jobs, err := c.Jobs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdsm jobs:", err)
		return 1
	}
	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return 0
	}
	for _, st := range jobs {
		printStatus(st)
	}
	if st, err := c.Stats(); err == nil {
		fmt.Printf("server: queue %d/%d, running %d; cache %d/%d (%d hits, %d misses); %d runs simulated\n",
			st.Queued, st.QueueLimit, st.Running,
			st.Cache.Entries, st.Cache.Limit, st.Cache.Hits, st.Cache.Misses, st.SimulatedRuns)
	}
	return 0
}

// usageCmd prints tenant usage from a multi-tenant daemon: every tenant, or
// one tenant's cumulative ledger when a name is given.
func usageCmd(args []string) int {
	fs := flag.NewFlagSet("usage", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8977", "aggsimd address")
	key := apiKeyFlag(fs)
	asJSON := fs.Bool("json", false, "print the raw snapshot JSON")
	// Accept the tenant name before or after the flags.
	var name string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		name, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if name == "" && fs.NArg() > 0 {
		name = fs.Arg(0)
	}
	c := newClient(*addr, *key)
	var snaps []pimdsm.TenantSnapshot
	if name != "" {
		snap, err := c.Usage(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimdsm usage:", err)
			return 1
		}
		snaps = []pimdsm.TenantSnapshot{snap}
	} else {
		var err error
		snaps, err = c.Tenants()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimdsm usage:", err)
			return 1
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Tenants []pimdsm.TenantSnapshot `json:"tenants"`
		}{snaps}); err != nil {
			fmt.Fprintln(os.Stderr, "pimdsm usage:", err)
			return 1
		}
		return 0
	}
	for _, t := range snaps {
		printTenant(t)
	}
	return 0
}

// printTenant renders one tenant snapshot: live state, then the cumulative
// (restart-surviving) bill.
func printTenant(t pimdsm.TenantSnapshot) {
	fmt.Printf("%s: %d queued, %d running", t.Name, t.Queued, t.Running)
	if t.RatePerSec > 0 {
		fmt.Printf("  (rate %.3g/s burst %d)", t.RatePerSec, t.Burst)
	}
	if t.MaxQueued > 0 || t.MaxActive > 0 {
		fmt.Printf("  (quota queued %d active %d)", t.MaxQueued, t.MaxActive)
	}
	fmt.Println()
	u := t.Total
	fmt.Printf("  jobs:   %d submitted, %d done, %d failed, %d aborted, %d rejected\n",
		u.JobsSubmitted, u.JobsDone, u.JobsFailed, u.JobsAborted, u.Rejected())
	fmt.Printf("  cache:  %d hits, %d misses, %d joins\n", u.CacheHits, u.CacheMisses, u.Joins)
	fmt.Printf("  engine: %d runs, %d cycles\n", u.SimulatedRuns, u.EngineCycles)
	fmt.Printf("  bytes:  %d result, %d artifact\n", u.ResultBytes, u.ArtifactBytes)
}
