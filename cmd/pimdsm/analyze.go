package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pimdsm/internal/obs"
	"pimdsm/internal/obs/svclog"
	"pimdsm/internal/stats"
)

// analyzeCmd implements `pimdsm analyze <metrics.json|spans.pds1>`: a
// bottleneck report over a recorded artifact. The format is sniffed from the
// content — a PDS1 span file gets the phase breakdown plus the critical-path
// verdict; a metrics registry JSON dump gets per-class average latencies,
// histogram percentiles and the protocol counter table.
func analyzeCmd(args []string) int {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	// Accept the file before or after the flags, like trace dump.
	var path string
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		path, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if path == "" && fs.NArg() > 0 {
		path = fs.Arg(0)
	}
	if path == "" {
		fmt.Fprintln(os.Stderr, "pimdsm analyze: need a metrics.json, spans.pds1 or metrics.prom file")
		usage()
		return 2
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	trimmed := bytes.TrimSpace(data)
	switch {
	case bytes.HasPrefix(data, []byte("PDS1")):
		return analyzeSpans(data)
	case len(trimmed) > 0 && trimmed[0] == '{':
		return analyzeMetrics(data)
	case strings.HasSuffix(path, ".prom") || bytes.HasPrefix(trimmed, []byte("#")):
		return analyzeProm(data)
	default:
		fmt.Fprintf(os.Stderr, "pimdsm analyze: %s is not a PDS1 span file, a metrics JSON dump, or a Prometheus text exposition\n", path)
		return 1
	}
}

// analyzeProm validates and summarizes a Prometheus text exposition (as
// scraped from the daemon's /metrics.prom) through the same strict parser
// the soak harness uses: a malformed file is an error, not a shrug.
func analyzeProm(data []byte) int {
	fams, err := svclog.ParsePromText(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdsm analyze: bad Prometheus exposition:", err)
		return 1
	}
	if len(fams) == 0 {
		fmt.Fprintln(os.Stderr, "pimdsm analyze: exposition has no metric families")
		return 1
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%d metric families\n\n", len(fams))
	for _, name := range names {
		fam := fams[name]
		if fam.Type == "histogram" {
			// Histograms summarize: total count, sum, and the smallest
			// bucket bound covering ~p99 per label set.
			fmt.Printf("%-44s %s\n", fam.Name, fam.Type)
			writePromHistogram(fam)
			continue
		}
		fmt.Printf("%-44s %s\n", fam.Name, fam.Type)
		for _, s := range fam.Samples {
			fmt.Printf("  %-42s %14g\n", promLabelString(s.Labels), s.Value)
		}
	}
	return 0
}

// promLabelString renders a sample's labels compactly ("-" when none).
func promLabelString(labels map[string]string) string {
	if len(labels) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+labels[k])
	}
	return strings.Join(parts, ",")
}

// writePromHistogram prints count/sum plus a p99 upper-bound estimate from
// the cumulative le buckets, grouped by the non-le label set.
func writePromHistogram(fam *svclog.PromFamily) {
	type series struct {
		count, sum float64
		buckets    []svclog.PromSample // _bucket samples in input (ascending) order
	}
	groups := map[string]*series{}
	var order []string
	get := func(labels map[string]string) *series {
		stripped := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				stripped[k] = v
			}
		}
		key := promLabelString(stripped)
		g, ok := groups[key]
		if !ok {
			g = &series{}
			groups[key] = g
			order = append(order, key)
		}
		return g
	}
	for _, s := range fam.Samples {
		g := get(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_count"):
			g.count = s.Value
		case strings.HasSuffix(s.Name, "_sum"):
			g.sum = s.Value
		case strings.HasSuffix(s.Name, "_bucket"):
			g.buckets = append(g.buckets, s)
		}
	}
	for _, key := range order {
		g := groups[key]
		p99 := "n/a"
		if g.count > 0 {
			target := 0.99 * g.count
			for _, b := range g.buckets {
				if b.Value >= target {
					p99 = "<=" + b.Labels["le"]
					break
				}
			}
		}
		avg := 0.0
		if g.count > 0 {
			avg = g.sum / g.count
		}
		fmt.Printf("  %-42s count %10g  avg %12.1f  p99 %s\n", key, g.count, avg, p99)
	}
}

func analyzeSpans(data []byte) int {
	s, err := obs.ReadSpansBinary(bytes.NewReader(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("%d transactions retired, %d bad\n", s.Retired(), s.Bad())
	s.WriteBreakdown(os.Stdout)
	fmt.Printf("\n%s\n", obs.CriticalPathOf(s))
	return 0
}

// metricsDump mirrors Registry.WriteJSON's document shape.
type metricsDump struct {
	Metrics map[string]json.RawMessage `json:"metrics"`
}

type histDump struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []uint64 `json:"buckets"`
}

func analyzeMetrics(data []byte) int {
	var dump metricsDump
	if err := json.Unmarshal(data, &dump); err != nil {
		fmt.Fprintln(os.Stderr, "pimdsm analyze: bad metrics JSON:", err)
		return 1
	}
	if len(dump.Metrics) == 0 {
		fmt.Fprintln(os.Stderr, "pimdsm analyze: metrics JSON has no \"metrics\" object")
		return 1
	}
	counter := func(name string) (uint64, bool) {
		raw, ok := dump.Metrics[name]
		if !ok {
			return 0, false
		}
		var v uint64
		if json.Unmarshal(raw, &v) != nil {
			return 0, false
		}
		return v, true
	}

	// Per satisfaction class: average read/write latency from the paired
	// count/latency-sum counters CollectMachine records.
	fmt.Println("average latency by satisfaction class (cycles):")
	fmt.Printf("  %-12s %12s %10s %12s %10s\n", "class", "reads", "avg-read", "writes", "avg-write")
	for _, name := range sortedKeys(dump.Metrics) {
		if !strings.HasPrefix(name, "read.count.") {
			continue
		}
		class := strings.TrimPrefix(name, "read.count.")
		rc, _ := counter("read.count." + class)
		rl, _ := counter("read.lat." + class)
		wc, _ := counter("write.count." + class)
		wl, _ := counter("write.lat." + class)
		if rc == 0 && wc == 0 {
			continue
		}
		avg := func(sum, n uint64) float64 {
			if n == 0 {
				return 0
			}
			return float64(sum) / float64(n)
		}
		fmt.Printf("  %-12s %12d %10.1f %12d %10.1f\n", class, rc, avg(rl, rc), wc, avg(wl, wc))
	}

	// Latency histograms: fold the bucket dump back into a stats.LatHist so
	// the same percentile machinery the live profiler uses applies here.
	for _, name := range sortedKeys(dump.Metrics) {
		var h histDump
		if err := json.Unmarshal(dump.Metrics[name], &h); err != nil || h.Buckets == nil {
			continue
		}
		var lh stats.LatHist
		for i := 0; i < len(h.Buckets) && i < len(lh); i++ {
			lh[i] = h.Buckets[i]
		}
		if lh.Total() == 0 {
			continue
		}
		fmt.Printf("\n%s: %d samples, p50<=%d p90<=%d p99<=%d cycles\n",
			name, lh.Total(), lh.Percentile(0.50), lh.Percentile(0.90), lh.Percentile(0.99))
	}

	// Protocol event counters, largest first — the quick "what is this run
	// doing" table.
	type kv struct {
		name string
		v    uint64
	}
	var events []kv
	for _, name := range sortedKeys(dump.Metrics) {
		if strings.ContainsRune(name, '.') {
			continue
		}
		if v, ok := counter(name); ok {
			events = append(events, kv{name, v})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].v > events[j].v })
	if len(events) > 0 {
		fmt.Println("\nprotocol events:")
		for _, e := range events {
			fmt.Printf("  %-16s %12d\n", e.name, e.v)
		}
	}
	return 0
}

func sortedKeys(m map[string]json.RawMessage) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
