package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pimdsm"
	"pimdsm/internal/obs"
)

// diffCmd is the perf-diff front end:
//
//	pimdsm diff [-addr host:port] [-json] <jobA> <jobB>
//	pimdsm diff -bench [-threshold 0.10] [-json] <BENCH_a.json> <BENCH_b.json>
//
// The first form fetches two telemetry jobs' flight-recorder artifacts from
// the daemon and prints obs.Compare's report naming the dominant regressed
// phase. The second parses two committed BENCH snapshots and prints
// obs.Timeline's per-(arch,app) throughput trajectory with regression
// flagging — advisory by design: only a parse error or malformed snapshot
// fails the command.
func diffCmd(args []string) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8977", "aggsimd address")
	key := apiKeyFlag(fs)
	bench := fs.Bool("bench", false, "diff two BENCH_*.json snapshots instead of two jobs")
	threshold := fs.Float64("threshold", 0.10, "with -bench: relative cycles/sec drop flagged as a regression")
	asJSON := fs.Bool("json", false, "print the typed report as JSON instead of text")
	// Accept the two operands anywhere among the flags, like result/events.
	var operands []string
	for len(args) > 0 {
		if err := fs.Parse(args); err != nil {
			return 2
		}
		if fs.NArg() == 0 {
			break
		}
		operands = append(operands, fs.Arg(0))
		args = fs.Args()[1:]
	}
	if len(operands) != 2 {
		fmt.Fprintln(os.Stderr, "pimdsm diff: need exactly two jobs (or two BENCH files with -bench)")
		return 2
	}
	if *bench {
		return diffBench(operands[0], operands[1], *threshold, *asJSON)
	}
	return diffJobs(*addr, *key, operands[0], operands[1], *asJSON)
}

// fetchRunDump pulls one job's flight-recorder artifacts into an
// obs.RunDump. Partial records are tolerated — a section both sides lack is
// skipped by Compare — but a job with no artifacts at all is an error.
func fetchRunDump(c *pimdsm.ServiceClient, id string) (obs.RunDump, error) {
	dump := obs.RunDump{Label: id}
	got := 0
	if b, err := c.Decompose(id); err == nil {
		var sb obs.SpanBreakdown
		if err := json.Unmarshal(b, &sb); err != nil {
			return dump, fmt.Errorf("job %s: bad decompose artifact: %w", id, err)
		}
		dump.Spans = &sb
		got++
	}
	if b, err := c.Profile(id); err == nil {
		var ps obs.ProfileSnapshot
		if err := json.Unmarshal(b, &ps); err != nil {
			return dump, fmt.Errorf("job %s: bad profile artifact: %w", id, err)
		}
		dump.Profile = &ps
		got++
	}
	if b, err := c.Metrics(id); err == nil {
		m, err := obs.ParseMetricsJSON(b)
		if err != nil {
			return dump, fmt.Errorf("job %s: bad metrics artifact: %w", id, err)
		}
		dump.Metrics = m
		got++
	}
	if got == 0 {
		return dump, fmt.Errorf("job %s has no flight-recorder artifacts (submit with \"telemetry\": true)", id)
	}
	return dump, nil
}

func diffJobs(addr, key, idA, idB string, asJSON bool) int {
	c := newClient(addr, key)
	a, err := fetchRunDump(c, idA)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdsm diff:", err)
		return 1
	}
	b, err := fetchRunDump(c, idB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pimdsm diff:", err)
		return 1
	}
	rep := obs.Compare(a, b, obs.CompareOptions{})
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "pimdsm diff:", err)
			return 1
		}
		return 0
	}
	rep.WriteText(os.Stdout)
	return 0
}

func diffBench(pathA, pathB string, threshold float64, asJSON bool) int {
	var docs []*obs.BenchDoc
	for _, p := range []string{pathA, pathB} {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pimdsm diff:", err)
			return 1
		}
		doc, err := obs.ParseBenchDoc(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimdsm diff: %s: %v\n", p, err)
			return 1
		}
		docs = append(docs, doc)
	}
	rep := obs.Timeline(docs, threshold)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "pimdsm diff:", err)
			return 1
		}
		return 0
	}
	rep.WriteText(os.Stdout)
	return 0
}
