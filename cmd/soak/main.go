// Command soak storms a running aggsimd daemon with concurrent clients and
// audits the daemon's answers: p99 submit/status latency SLOs, bounded
// admission pushback (429s absorbed by honoring Retry-After), an
// exactly-once simulation proof from the engine cycle counters, complete and
// ordered job lifecycle event chains, and a parseable /metrics.prom
// exposition. Exit status 0 means every assertion held.
//
// Usage:
//
//	soak -addr localhost:8977 [-clients 4] [-jobs 4]
//	     [-app fft] [-threads 8] [-scale 0.05]
//	     [-submit-slo 0] [-status-slo 0] [-json]
//	     [-key K] [-noisy-key K2] [-noisy-jobs 32] [-require-throttle]
//
// Jobs cycle through the paper's Figure 6 configuration batch for -app plus
// smaller single-config batches carved from it, so the storm exercises the
// cache, singleflight and admission paths at once. SLO flags of 0 skip the
// latency assertions (useful for a first calibration run; feed the reported
// p99s back in as budgets).
//
// Against a multi-tenant daemon (-tenants-file), -key authenticates the
// storm, and -noisy-key runs the isolation scenario: a second tenant floods
// the daemon with -noisy-jobs submissions while the quiet storm's SLOs are
// asserted unchanged — the noisy tenant is expected to absorb bounded 429
// pushback (-require-throttle asserts it actually did).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"pimdsm"
)

func main() {
	addr := flag.String("addr", "localhost:8977", "aggsimd daemon address")
	clients := flag.Int("clients", 4, "concurrent submitting clients")
	jobs := flag.Int("jobs", 4, "jobs per client")
	app := flag.String("app", "fft", "workload for the configuration batch")
	threads := flag.Int("threads", 8, "threads per configuration")
	scale := flag.Float64("scale", 0.05, "problem-size scale for the batch")
	submitSLO := flag.Duration("submit-slo", 0, "p99 submit latency budget (0 = report only)")
	statusSLO := flag.Duration("status-slo", 0, "p99 status latency budget (0 = report only)")
	wait := flag.Duration("wait", 2*time.Minute, "per-job completion timeout")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of text")
	key := flag.String("key", os.Getenv("PIMDSM_API_KEY"), "tenant API key for the quiet storm (default $PIMDSM_API_KEY)")
	noisyKey := flag.String("noisy-key", "", "enable the noisy-tenant isolation scenario with this second tenant key")
	noisyJobs := flag.Int("noisy-jobs", 32, "noisy tenant's submission count")
	requireThrottle := flag.Bool("require-throttle", false, "fail unless the noisy tenant was throttled at least once")
	flag.Parse()

	batch := pimdsm.Figure6Specs(*app, *threads, *scale)
	if len(batch) == 0 {
		fmt.Fprintln(os.Stderr, "soak: empty configuration batch")
		os.Exit(2)
	}
	// Whole batch, plus per-config singles: overlapping payloads are what
	// drive the cache-hit and singleflight paths under contention.
	specs := []pimdsm.JobSpec{{Configs: batch}}
	for _, cs := range batch {
		specs = append(specs, pimdsm.JobSpec{Configs: []pimdsm.ConfigSpec{cs}})
	}

	rep, err := pimdsm.RunSoak(*addr, pimdsm.SoakOptions{
		Clients:         *clients,
		JobsPerClient:   *jobs,
		Specs:           specs,
		SubmitSLO:       *submitSLO,
		StatusSLO:       *statusSLO,
		Wait:            *wait,
		APIKey:          *key,
		NoisyKey:        *noisyKey,
		NoisyJobs:       *noisyJobs,
		RequireThrottle: *requireThrottle,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		fmt.Print(rep.Summary())
	}
	if !rep.OK() {
		os.Exit(1)
	}
}
