// Command figures regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index).
//
// Usage:
//
//	figures [-exp all|table1|table2|table3|fig6|fig7|fig8|fig9|fig10a|fig10b|decompose|bottleneck|meshscale|timeline]
//	        [-scale f] [-threads n] [-apps fft,radix,...] [-quick] [-shards n]
//	        [-parallel n] [-progress] [-http addr]
//	        [-trace f.json] [-trace-buf n]
//	        [-metrics-out f.json] [-cpuprofile f] [-memprofile f]
//
// -quick shrinks problem sizes and the Figure 9 grid for a fast smoke pass.
// -parallel bounds the simulations in flight (default: one per CPU).
// -shards selects the partitioned-engine shard count: the machine figures
// record it in their results (their coherence path is serial; see DESIGN.md),
// and -exp meshscale sweeps the event-driven mesh over shard counts up to it.
// -progress renders a live per-batch status line on stderr.
// -http serves a live dashboard (batch progress, expvar, pprof) on the given
// address (e.g. localhost:8080) while the figures regenerate.
// -trace records every run's protocol events into one shared ring and writes
// Chrome trace_event JSON; -metrics-out accumulates every run's counters.
// Either forces the runs serial (same results, just slower).
// -cpuprofile / -memprofile write pprof profiles covering the whole
// regeneration (see README.md, "Profiling").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"pimdsm"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	exp := flag.String("exp", "all", "experiment to regenerate (all, table1-3, fig6-10b, decompose, bottleneck, meshscale, timeline)")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	threads := flag.Int("threads", 32, "application threads")
	apps := flag.String("apps", "", "comma-separated app subset")
	quick := flag.Bool("quick", false, "small scale and coarse grids")
	shards := flag.Int("shards", 1, "partitioned-engine shard count (meshscale sweeps 1..n)")
	parallel := flag.Int("parallel", 0, "max simulations in flight (0 = one per CPU)")
	progress := flag.Bool("progress", false, "render a live status line per batch on stderr")
	httpAddr := flag.String("http", "", "serve a live dashboard on this address while running")
	tracePath := flag.String("trace", "", "write Chrome trace_event JSON covering every run to file")
	traceBuf := flag.Int("trace-buf", 1<<20, "trace ring capacity in events (rounded to a power of two)")
	metricsOut := flag.String("metrics-out", "", "write accumulated metrics registry JSON to file")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file on exit")
	flag.Parse()

	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer stop()

	opt := pimdsm.Options{Scale: *scale, Threads: *threads, Parallel: *parallel, Shards: *shards}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}
	if *progress {
		opt.Progress = pimdsm.StatusLine(os.Stderr, "runs")
	}
	if *httpAddr != "" {
		dash := pimdsm.NewDashboard()
		addr, err := dash.ListenAndServe(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "http:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "dashboard: http://%s/\n", addr)
		web := dash.ProgressFunc("progress")
		if prev := opt.Progress; prev != nil {
			opt.Progress = func(done, total, i int) { prev(done, total, i); web(done, total, i) }
		} else {
			opt.Progress = web
		}
	}
	if *tracePath != "" {
		opt.Trace = pimdsm.NewTrace(*traceBuf)
	}
	if *metricsOut != "" {
		opt.Metrics = pimdsm.NewMetrics()
	}
	ps, ds := []int{2, 4, 8, 16, 32}, []int{2, 4, 8, 16, 32}
	combos := [][2]int{{2, 2}, {4, 4}, {8, 8}, {16, 16}, {28, 4}}
	if *quick {
		if *scale == 1.0 {
			opt.Scale = 0.25
		}
		ps, ds = []int{2, 8, 32}, []int{2, 8, 32}
		combos = [][2]int{{2, 2}, {8, 8}, {28, 4}}
	}

	code := 0
	run := func(name string, fn func() error) {
		want := code == 0 && (*exp == "all" || *exp == name)
		if !want {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			code = 1
			return
		}
		fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() error { fmt.Print(pimdsm.Table1()); return nil })
	run("table2", func() error { fmt.Print(pimdsm.Table2()); return nil })
	run("table3", func() error {
		s, err := pimdsm.Table3(opt)
		if err != nil {
			return err
		}
		fmt.Print(s)
		return nil
	})

	var fig6 []pimdsm.AppBars
	need6 := code == 0 && (*exp == "all" || *exp == "fig6" || *exp == "fig7")
	if need6 {
		var err error
		fig6, err = pimdsm.Figure6(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig6:", err)
			return 1
		}
	}
	run("fig6", func() error { fmt.Print(pimdsm.FormatFigure6(fig6)); return nil })
	run("fig7", func() error { fmt.Print(pimdsm.FormatFigure7(pimdsm.Figure7(fig6))); return nil })
	run("fig8", func() error {
		bars, err := pimdsm.Figure8(opt)
		if err != nil {
			return err
		}
		fmt.Print(pimdsm.FormatFigure8(bars))
		return nil
	})
	run("fig9", func() error {
		rows, err := pimdsm.Figure9(opt, ps, ds)
		if err != nil {
			return err
		}
		fmt.Print(pimdsm.FormatFigure9(rows))
		return nil
	})
	run("fig10a", func() error {
		r, err := pimdsm.Figure10a(opt)
		if err != nil {
			return err
		}
		fmt.Print(pimdsm.FormatFigure10a(r))
		return nil
	})
	run("fig10b", func() error {
		pts, err := pimdsm.Figure10b(opt, combos)
		if err != nil {
			return err
		}
		fmt.Print(pimdsm.FormatFigure10b(pts))
		return nil
	})
	// Opt-in only (-exp decompose): re-runs the Figure 6 batch with span
	// recorders to print the per-phase miss-latency decomposition.
	if code == 0 && *exp == "decompose" {
		start := time.Now()
		rows, err := pimdsm.Decompose(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "decompose:", err)
			return 1
		}
		fmt.Print(pimdsm.FormatDecompose(rows))
		fmt.Printf("[decompose regenerated in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	// Opt-in only (-exp meshscale): runs the partitioned event-driven mesh at
	// 256- and 1024-node scales across shard counts, cross-checking each
	// against its K=1 oracle and measuring wall time and event throughput.
	if code == 0 && *exp == "meshscale" {
		start := time.Now()
		sizes := []int{16, 32}
		horizon := pimdsm.Time(20_000)
		if *quick {
			sizes, horizon = []int{16}, 5_000
		}
		pts, err := pimdsm.MeshScale(sizes, *shards, horizon)
		if err != nil {
			fmt.Fprintln(os.Stderr, "meshscale:", err)
			return 1
		}
		fmt.Print(pimdsm.FormatMeshScale(pts))
		fmt.Printf("[GOMAXPROCS=%d]\n", runtime.GOMAXPROCS(0))
		fmt.Printf("[meshscale regenerated in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	// Opt-in only (-exp bottleneck): re-runs the Figure 6 batch with the
	// sim-time profiler to print per-node cycle accounting, mesh heatmaps and
	// the critical-path verdict per configuration.
	if code == 0 && *exp == "bottleneck" {
		start := time.Now()
		rows, err := pimdsm.Bottleneck(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bottleneck:", err)
			return 1
		}
		fmt.Print(pimdsm.FormatBottleneck(rows))
		fmt.Printf("[bottleneck regenerated in %v]\n\n", time.Since(start).Round(time.Millisecond))
	}

	// Opt-in only (-exp timeline): parses every committed BENCH_*.json in the
	// working directory into the per-(arch,app) throughput trajectory, with
	// regressions beyond 10% flagged. Advisory: the report prints either way;
	// only a missing or malformed snapshot fails the run.
	if code == 0 && *exp == "timeline" {
		paths, _ := filepath.Glob("BENCH_*.json")
		sort.Strings(paths)
		if len(paths) == 0 {
			fmt.Fprintln(os.Stderr, "timeline: no BENCH_*.json snapshots in the working directory")
			return 1
		}
		var docs []*pimdsm.BenchDoc
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "timeline:", err)
				return 1
			}
			doc, err := pimdsm.ParseBenchDoc(data)
			if err != nil {
				fmt.Fprintf(os.Stderr, "timeline: %s: %v\n", p, err)
				return 1
			}
			docs = append(docs, doc)
		}
		rep := pimdsm.BenchTimeline(docs, 0.10)
		rep.WriteText(os.Stdout)
	}

	if code == 0 {
		if err := writeObservers(opt, *tracePath, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	return code
}

// writeObservers flushes the shared trace / metrics outputs, if requested.
// Artifacts are written atomically (temp file + rename): a failed batch
// never truncates the previous good trace or metrics dump.
func writeObservers(opt pimdsm.Options, tracePath, metricsOut string) error {
	if tracePath != "" {
		err := pimdsm.WriteFileAtomic(tracePath, func(w io.Writer) error { return pimdsm.WriteChromeTrace(w, opt.Trace) })
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if d := opt.Trace.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "trace: ring full, oldest %d of %d events dropped (raise -trace-buf)\n",
				d, opt.Trace.Total())
		}
	}
	if metricsOut != "" {
		if err := pimdsm.WriteFileAtomic(metricsOut, func(w io.Writer) error { return opt.Metrics.WriteJSON(w) }); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
	}
	return nil
}

// startProfiles starts the requested pprof profiles and returns a function
// that flushes them; it must run before the process exits (so main returns an
// exit code instead of calling os.Exit directly).
func startProfiles(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
