// Command figures regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md for the experiment index).
//
// Usage:
//
//	figures [-exp all|table1|table2|table3|fig6|fig7|fig8|fig9|fig10a|fig10b]
//	        [-scale f] [-threads n] [-apps fft,radix,...] [-quick]
//	        [-parallel n] [-cpuprofile f] [-memprofile f]
//
// -quick shrinks problem sizes and the Figure 9 grid for a fast smoke pass.
// -parallel bounds the simulations in flight (default: one per CPU).
// -cpuprofile / -memprofile write pprof profiles covering the whole
// regeneration (see README.md, "Profiling").
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pimdsm"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	exp := flag.String("exp", "all", "experiment to regenerate")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	threads := flag.Int("threads", 32, "application threads")
	apps := flag.String("apps", "", "comma-separated app subset")
	quick := flag.Bool("quick", false, "small scale and coarse grids")
	parallel := flag.Int("parallel", 0, "max simulations in flight (0 = one per CPU)")
	cpuprofile := flag.String("cpuprofile", "", "write CPU profile to file")
	memprofile := flag.String("memprofile", "", "write heap profile to file on exit")
	flag.Parse()

	stop, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer stop()

	opt := pimdsm.Options{Scale: *scale, Threads: *threads, Parallel: *parallel}
	if *apps != "" {
		opt.Apps = strings.Split(*apps, ",")
	}
	ps, ds := []int{2, 4, 8, 16, 32}, []int{2, 4, 8, 16, 32}
	combos := [][2]int{{2, 2}, {4, 4}, {8, 8}, {16, 16}, {28, 4}}
	if *quick {
		if *scale == 1.0 {
			opt.Scale = 0.25
		}
		ps, ds = []int{2, 8, 32}, []int{2, 8, 32}
		combos = [][2]int{{2, 2}, {8, 8}, {28, 4}}
	}

	code := 0
	run := func(name string, fn func() error) {
		want := code == 0 && (*exp == "all" || *exp == name)
		if !want {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			code = 1
			return
		}
		fmt.Printf("[%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", func() error { fmt.Print(pimdsm.Table1()); return nil })
	run("table2", func() error { fmt.Print(pimdsm.Table2()); return nil })
	run("table3", func() error {
		s, err := pimdsm.Table3(opt)
		if err != nil {
			return err
		}
		fmt.Print(s)
		return nil
	})

	var fig6 []pimdsm.AppBars
	need6 := code == 0 && (*exp == "all" || *exp == "fig6" || *exp == "fig7")
	if need6 {
		var err error
		fig6, err = pimdsm.Figure6(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig6:", err)
			return 1
		}
	}
	run("fig6", func() error { fmt.Print(pimdsm.FormatFigure6(fig6)); return nil })
	run("fig7", func() error { fmt.Print(pimdsm.FormatFigure7(pimdsm.Figure7(fig6))); return nil })
	run("fig8", func() error {
		bars, err := pimdsm.Figure8(opt)
		if err != nil {
			return err
		}
		fmt.Print(pimdsm.FormatFigure8(bars))
		return nil
	})
	run("fig9", func() error {
		rows, err := pimdsm.Figure9(opt, ps, ds)
		if err != nil {
			return err
		}
		fmt.Print(pimdsm.FormatFigure9(rows))
		return nil
	})
	run("fig10a", func() error {
		r, err := pimdsm.Figure10a(opt)
		if err != nil {
			return err
		}
		fmt.Print(pimdsm.FormatFigure10a(r))
		return nil
	})
	run("fig10b", func() error {
		pts, err := pimdsm.Figure10b(opt, combos)
		if err != nil {
			return err
		}
		fmt.Print(pimdsm.FormatFigure10b(pts))
		return nil
	})
	return code
}

// startProfiles starts the requested pprof profiles and returns a function
// that flushes them; it must run before the process exits (so main returns an
// exit code instead of calling os.Exit directly).
func startProfiles(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
