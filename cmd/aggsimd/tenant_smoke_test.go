package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pimdsm"
	"pimdsm/internal/obs/svclog"
)

const (
	quietKey = "quiet-key-000001"
	noisyKey = "noisy-key-000001"
)

// writeTenantsFile declares a permissive quiet tenant and a noisy tenant
// pinned to one job in flight at a time.
func writeTenantsFile(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "tenants.json")
	body := fmt.Sprintf(`{"tenants": [
		{"name": "quiet", "key": %q, "max_priority": 5},
		{"name": "noisy", "key": %q, "max_queued": 1, "max_active": 1}
	]}`, quietKey, noisyKey)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func tenantClient(addr, key string) *pimdsm.ServiceClient {
	c := pimdsm.NewServiceClient(addr)
	c.APIKey = key
	return c
}

// promCounter sums every sample of one family (all label combinations).
func promCounter(t *testing.T, fams map[string]*svclog.PromFamily, name string) float64 {
	t.Helper()
	fam := fams[name]
	if fam == nil {
		t.Fatalf("family %s missing from exposition", name)
	}
	var sum float64
	for _, s := range fam.Samples {
		sum += s.Value
	}
	return sum
}

// TestTenantSmoke is the `make tenant-smoke` body: the multi-tenant service
// edge end to end through a real daemon — auth rejection, quota isolation
// between a noisy and a quiet tenant (including under the soak harness),
// per-tenant metrics summing exactly to the global counters under the strict
// Prometheus parser, cross-tenant byte-identical cache serving, and a usage
// ledger that survives a daemon restart.
func TestTenantSmoke(t *testing.T) {
	tmp := t.TempDir()
	tenantsFile := writeTenantsFile(t, tmp)
	usageFile := filepath.Join(tmp, "aggsimd.usage")
	flags := []string{
		"-addr", "127.0.0.1:0",
		"-workers", "1",
		"-sweep-workers", "1",
		"-queue", "8",
		"-tenants-file", tenantsFile,
		"-usage-file", usageFile,
		"-log", "off",
	}
	d := startDaemon(t, flags...)
	quiet := tenantClient(d.addr, quietKey)
	noisy := tenantClient(d.addr, noisyKey)

	// 1. Authentication: anonymous and wrong-key requests bounce with 401
	// before touching the job table; /healthz and /metrics.prom stay open.
	for _, key := range []string{"", "wrong-key-000001"} {
		req, _ := http.NewRequest("GET", "http://"+d.addr+"/api/v1/jobs", nil)
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: %d, want 401", key, resp.StatusCode)
		}
		if resp.Header.Get("X-Request-Id") == "" {
			t.Fatal("401 response lost its request id")
		}
	}
	// SubmitRetry must not retry an auth failure.
	bad := tenantClient(d.addr, "wrong-key-000001")
	if _, retries, err := bad.SubmitRetry(context.Background(), pimdsm.JobSpec{
		Configs: pimdsm.Figure6Specs("fft", 4, 0.02),
	}, 5, 0); err == nil || retries != 0 {
		t.Fatalf("401 SubmitRetry: err=%v retries=%d, want error with 0 retries", err, retries)
	}

	// 2. The quiet tenant simulates a real batch; every surface attributes
	// it: job status, lifecycle events.
	fig6 := pimdsm.JobSpec{Name: "fig6-fft", Configs: pimdsm.Figure6Specs("fft", 4, 0.02)}
	n := len(fig6.Configs)
	first, err := quiet.Submit(fig6)
	if err != nil {
		t.Fatal(err)
	}
	fin := wait(t, quiet, first.ID)
	if fin.State != pimdsm.JobDone || fin.Simulated != n || fin.Tenant != "quiet" {
		t.Fatalf("quiet batch: %+v, want %d simulated with tenant=quiet", fin, n)
	}
	_, quietRaw, err := quiet.Result(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	events, err := quiet.JobEvents(first.ID)
	if err != nil || len(events) == 0 {
		t.Fatalf("quiet job events: %d, %v", len(events), err)
	}
	for _, ev := range events {
		if ev.Tenant != "quiet" {
			t.Fatalf("event %d (%s) tenant = %q, want quiet", ev.Seq, ev.Kind, ev.Tenant)
		}
	}
	// The SSE stream's ?tenant= filter replays only quiet's events.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	streamed := 0
	_, serr := quiet.StreamEvents(ctx, 0, "", "quiet", func(ev pimdsm.JobEvent) {
		streamed++
		if ev.Tenant != "quiet" {
			t.Errorf("tenant-filtered stream leaked event for %q", ev.Tenant)
		}
		if streamed >= len(events) {
			cancel()
		}
	})
	cancel()
	if streamed < len(events) && !errors.Is(serr, context.Canceled) && !errors.Is(serr, context.DeadlineExceeded) {
		t.Fatalf("tenant-filtered stream: %d events, %v", streamed, serr)
	}

	// 3. Authorization: the noisy tenant's priority ceiling is 0.
	over := fig6
	over.Priority = 1
	if _, err := noisy.Submit(over); err == nil {
		t.Fatal("over-ceiling priority accepted")
	}

	// 4. Quota isolation: a long blocker pins noisy's MaxActive=1 quota, so
	// noisy's next submission bounces with a per-tenant 429 — while the
	// quiet tenant keeps submitting freely past it.
	var blockerCfgs []pimdsm.ConfigSpec
	for p := 0; p < 6; p++ {
		blockerCfgs = append(blockerCfgs, pimdsm.ConfigSpec{
			Arch: "agg", App: "ocean", Scale: 0.5, Threads: 16,
			Pressure: 0.30 + 0.04*float64(p), DRatio: 1,
		})
	}
	blocker, err := noisy.Submit(pimdsm.JobSpec{Name: "noisy-blocker", Configs: blockerCfgs})
	if err != nil {
		t.Fatal(err)
	}
	_, err = noisy.Submit(pimdsm.JobSpec{Name: "noisy-extra", Configs: []pimdsm.ConfigSpec{{
		Arch: "agg", App: "ocean", Scale: 0.1, Threads: 8, Pressure: 0.9, DRatio: 1,
	}}})
	var be *pimdsm.BusyError
	if !errors.As(err, &be) || be.Tenant != "noisy" || be.RetryAfter < time.Second {
		t.Fatalf("noisy over quota: %v, want a per-tenant BusyError with Retry-After", err)
	}
	quietSingle, err := quiet.Submit(pimdsm.JobSpec{Name: "quiet-single", Configs: []pimdsm.ConfigSpec{{
		Arch: "numa", App: "fft", Scale: 0.02, Threads: 4, Pressure: 0.75,
	}}})
	if err != nil {
		t.Fatalf("quiet tenant blocked by noisy's quota: %v", err)
	}
	wait(t, quiet, blocker.ID)
	wait(t, quiet, quietSingle.ID)

	// 5. Cross-tenant cache: noisy resubmits quiet's batch and is served the
	// identical bytes from cache, billed to noisy as hits.
	resub, err := noisy.Submit(fig6)
	if err != nil {
		t.Fatal(err)
	}
	if st := wait(t, noisy, resub.ID); st.CacheHits != n || st.Simulated != 0 || st.Tenant != "noisy" {
		t.Fatalf("noisy resubmission: %+v, want %d cache hits for tenant=noisy", st, n)
	}
	_, noisyRaw, err := noisy.Result(resub.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range quietRaw {
		if !bytes.Equal(quietRaw[i], noisyRaw[i]) {
			t.Fatalf("config %d: cache served a different byte stream across tenants", i)
		}
	}

	// 6. The multi-tenant soak: quiet's submit SLO must hold while noisy
	// storms its one-job quota and absorbs bounded 429 pushback.
	batch := pimdsm.Figure6Specs("radix", 4, 0.02)
	specs := []pimdsm.JobSpec{{Configs: batch}}
	for _, cs := range batch {
		specs = append(specs, pimdsm.JobSpec{Configs: []pimdsm.ConfigSpec{cs}})
	}
	rep, err := pimdsm.RunSoak(d.addr, pimdsm.SoakOptions{
		Clients:         2,
		JobsPerClient:   2,
		Specs:           specs,
		SubmitSLO:       5 * time.Second,
		StatusSLO:       5 * time.Second,
		Wait:            90 * time.Second,
		APIKey:          quietKey,
		NoisyKey:        noisyKey,
		NoisyJobs:       6,
		RequireThrottle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Summary())
	if !rep.OK() {
		t.Fatalf("soak violations:\n%s", rep.Summary())
	}
	if rep.NoisyThrottled+rep.NoisyRejected == 0 {
		t.Fatal("noisy tenant was never throttled")
	}

	// 7. Per-tenant metrics: the exposition passes the strict parser, and
	// every per-tenant family sums exactly to its global counterpart — all
	// traffic was authenticated, so nothing may fall outside the tenant
	// label dimension.
	resp, err := http.Get("http://" + d.addr + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	var promBuf bytes.Buffer
	if _, err := promBuf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	fams, err := svclog.ParsePromText(promBuf.String())
	if err != nil {
		t.Fatalf("/metrics.prom does not parse strictly: %v", err)
	}
	for tenantFam, globalFam := range map[string]string{
		"aggsimd_tenant_jobs_submitted_total":   "aggsimd_jobs_submitted_total",
		"aggsimd_tenant_jobs_done_total":        "aggsimd_jobs_done_total",
		"aggsimd_tenant_jobs_failed_total":      "aggsimd_jobs_failed_total",
		"aggsimd_tenant_rejected_total":         "aggsimd_jobs_rejected_total",
		"aggsimd_tenant_cache_hits_total":       "aggsimd_cache_hits_total",
		"aggsimd_tenant_cache_misses_total":     "aggsimd_cache_misses_total",
		"aggsimd_tenant_cache_joins_total":      "aggsimd_cache_joins_total",
		"aggsimd_tenant_simulated_runs_total":   "aggsimd_simulated_runs_total",
		"aggsimd_tenant_simulated_cycles_total": "aggsimd_simulated_cycles_total",
	} {
		ts, gs := promCounter(t, fams, tenantFam), promCounter(t, fams, globalFam)
		if ts != gs {
			t.Errorf("%s sums to %v, global %s is %v", tenantFam, ts, globalFam, gs)
		}
	}
	for _, s := range fams["aggsimd_tenant_rejected_total"].Samples {
		switch s.Labels["reason"] {
		case "rate", "queue_quota", "concurrency_quota", "window":
		default:
			t.Errorf("unknown rejection reason label %q", s.Labels["reason"])
		}
	}

	// 8. The usage ledger survives a restart: totals carry over, process
	// usage starts at zero.
	beforeQuiet, err := quiet.Usage("quiet")
	if err != nil {
		t.Fatal(err)
	}
	beforeNoisy, err := quiet.Usage("noisy")
	if err != nil {
		t.Fatal(err)
	}
	if beforeNoisy.Usage.CacheHits < uint64(n) {
		t.Fatalf("noisy cache hits = %d, want at least %d from the resubmission", beforeNoisy.Usage.CacheHits, n)
	}
	d.shutdown(t)
	if _, err := os.Stat(usageFile); err != nil {
		t.Fatalf("usage ledger not persisted: %v", err)
	}

	d2 := startDaemon(t, flags...)
	quiet2 := tenantClient(d2.addr, quietKey)
	afterQuiet, err := quiet2.Usage("quiet")
	if err != nil {
		t.Fatal(err)
	}
	if afterQuiet.Usage.JobsDone != 0 {
		t.Fatalf("restart leaked ledger into process usage: %+v", afterQuiet.Usage)
	}
	if afterQuiet.Total.JobsDone < beforeQuiet.Total.JobsDone ||
		afterQuiet.Total.EngineCycles < beforeQuiet.Total.EngineCycles {
		t.Fatalf("ledger lost across restart:\nbefore %+v\nafter  %+v", beforeQuiet.Total, afterQuiet.Total)
	}
	d2.shutdown(t)
}

// TestTenantFlagHygiene: startup flag validation fails fast with nonzero
// exits instead of silently degrading (an unknown log level falling back to
// info, or a broken tenants file running the daemon open).
func TestTenantFlagHygiene(t *testing.T) {
	run := func(args ...string) (int, string) {
		t.Helper()
		var logs bytes.Buffer
		stop := make(chan os.Signal, 1)
		code := realMain(args, &logs, stop)
		return code, logs.String()
	}

	if code, out := run("-log-level", "loud"); code == 0 {
		t.Fatalf("unknown -log-level accepted (exit 0):\n%s", out)
	}
	if code, out := run("-tenants-file", filepath.Join(t.TempDir(), "missing.json")); code == 0 {
		t.Fatalf("missing -tenants-file accepted (exit 0):\n%s", out)
	}
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "tenants.json")
	os.WriteFile(corrupt, []byte("{not json"), 0o644)
	if code, out := run("-tenants-file", corrupt); code == 0 {
		t.Fatalf("corrupt -tenants-file accepted (exit 0):\n%s", out)
	}
	shortKey := filepath.Join(dir, "short.json")
	os.WriteFile(shortKey, []byte(`{"tenants":[{"name":"a","key":"short"}]}`), 0o644)
	if code, out := run("-tenants-file", shortKey); code == 0 {
		t.Fatalf("short tenant key accepted (exit 0):\n%s", out)
	}
	if code, out := run("-usage-file", filepath.Join(dir, "usage.json")); code == 0 {
		t.Fatalf("-usage-file without -tenants-file accepted (exit 0):\n%s", out)
	}
}
