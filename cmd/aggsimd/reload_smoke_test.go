package main

import (
	"fmt"
	"os"
	"syscall"
	"testing"
	"time"

	"pimdsm"
)

// writeTenantsAtomic replaces the tenants file via rename, the way a careful
// operator (or config-management agent) would, so the daemon's mtime poll
// never reads a half-written file.
func writeTenantsAtomic(t *testing.T, path, body string) {
	t.Helper()
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// authOK reports whether the client's key authenticates right now.
func authOK(c *pimdsm.ServiceClient) bool {
	_, err := c.Jobs()
	return err == nil
}

func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for deadline := time.Now().Add(10 * time.Second); ; {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never happened", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTenantsReloadPoll drives the -tenants-reload mtime poll end to end
// through a real daemon: a revoked key 401s on its next request after the
// swap, an added key starts working, and a malformed rewrite is rejected
// with the previous registry still serving.
func TestTenantsReloadPoll(t *testing.T) {
	tmp := t.TempDir()
	tenantsFile := writeTenantsFile(t, tmp) // quiet + noisy
	d := startDaemon(t,
		"-addr", "127.0.0.1:0", "-workers", "1", "-sweep-workers", "1",
		"-tenants-file", tenantsFile, "-tenants-reload", "20ms", "-log", "off")
	defer d.shutdown(t)

	quiet := tenantClient(d.addr, quietKey)
	noisy := tenantClient(d.addr, noisyKey)
	fresh := tenantClient(d.addr, "fresh-key-000001")
	if !authOK(quiet) || !authOK(noisy) {
		t.Fatal("declared tenants must authenticate before any reload")
	}
	if authOK(fresh) {
		t.Fatal("undeclared key authenticated")
	}

	// Revoke noisy, add fresh; the poll picks up the new mtime.
	writeTenantsAtomic(t, tenantsFile, fmt.Sprintf(`{"tenants": [
		{"name": "quiet", "key": %q, "max_priority": 5},
		{"name": "fresh", "key": "fresh-key-000001"}
	]}`, quietKey))
	for deadline := time.Now().Add(10 * time.Second); ; {
		if !authOK(noisy) && authOK(fresh) {
			break
		}
		if time.Now().After(deadline) {
			fi, statErr := os.Stat(tenantsFile)
			body, _ := os.ReadFile(tenantsFile)
			t.Fatalf("poll reload (revoke noisy, add fresh) never happened; test-side stat: %+v (err %v), contents:\n%s\ndaemon stderr:\n%s",
				fi, statErr, body, d.logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !authOK(quiet) {
		t.Fatal("retained tenant lost access across the reload")
	}

	// A malformed rewrite is rejected; the running registry keeps serving
	// the last good tenant set.
	writeTenantsAtomic(t, tenantsFile, `{"tenants": [{"name": "broken"`)
	time.Sleep(200 * time.Millisecond) // several poll periods
	if !authOK(quiet) || !authOK(fresh) {
		t.Fatal("malformed reload must keep the previous registry live")
	}
	if authOK(noisy) {
		t.Fatal("malformed reload resurrected a revoked key")
	}
}

// TestTenantsReloadSIGHUP covers the signal path on a daemon running without
// the poll: rewriting the file alone changes nothing, SIGHUP swaps it.
func TestTenantsReloadSIGHUP(t *testing.T) {
	tmp := t.TempDir()
	tenantsFile := writeTenantsFile(t, tmp) // quiet + noisy
	d := startDaemon(t,
		"-addr", "127.0.0.1:0", "-workers", "1", "-sweep-workers", "1",
		"-tenants-file", tenantsFile, "-log", "off")
	defer d.shutdown(t)

	quiet := tenantClient(d.addr, quietKey)
	noisy := tenantClient(d.addr, noisyKey)
	writeTenantsAtomic(t, tenantsFile, fmt.Sprintf(`{"tenants": [
		{"name": "quiet", "key": %q}
	]}`, quietKey))
	time.Sleep(100 * time.Millisecond)
	if !authOK(noisy) {
		t.Fatal("without -tenants-reload, a file rewrite alone must not swap the registry")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "SIGHUP reload", func() bool { return !authOK(noisy) })
	if !authOK(quiet) {
		t.Fatal("retained tenant lost access across the SIGHUP reload")
	}
}
