package main

import (
	"testing"
	"time"

	"pimdsm"
)

// TestSoakSmoke is the `make soak-smoke` body: a concurrent client storm
// through the real daemon, audited end to end by the soak harness — latency
// SLOs from the pow2 histograms, bounded 429 pushback, the exactly-once
// simulation proof from the engine counters, complete ordered lifecycle
// event chains for every job, and a parseable /metrics.prom exposition.
func TestSoakSmoke(t *testing.T) {
	d := startDaemon(t,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-queue", "4",
		"-log", "off",
	)
	defer d.shutdown(t)

	// Tiny real simulations with heavy overlap across jobs: the whole
	// Figure 6 fft batch plus singles carved from it.
	batch := pimdsm.Figure6Specs("fft", 4, 0.02)
	specs := []pimdsm.JobSpec{{Configs: batch}}
	for _, cs := range batch {
		specs = append(specs, pimdsm.JobSpec{Configs: []pimdsm.ConfigSpec{cs}})
	}

	// SLO budgets are deliberately generous: this asserts "no pathological
	// stall under -race on a loaded CI box", not production latency.
	rep, err := pimdsm.RunSoak(d.addr, pimdsm.SoakOptions{
		Clients:       3,
		JobsPerClient: 3,
		Specs:         specs,
		SubmitSLO:     5 * time.Second,
		StatusSLO:     5 * time.Second,
		Wait:          90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Summary())
	if !rep.OK() {
		t.Fatalf("soak violations:\n%s", rep.Summary())
	}
	if rep.Done != rep.Jobs {
		t.Fatalf("%d/%d jobs done", rep.Done, rep.Jobs)
	}
	if rep.EventChains != rep.Jobs {
		t.Fatalf("validated %d event chains for %d jobs", rep.EventChains, rep.Jobs)
	}
	// The storm has far more submissions than distinct configurations, so
	// the exactly-once bound must actually bite.
	if rep.SimulatedRuns > uint64(rep.DistinctConfigs) {
		t.Fatalf("%d simulated runs for %d distinct configs", rep.SimulatedRuns, rep.DistinctConfigs)
	}
}
