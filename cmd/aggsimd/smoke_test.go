package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pimdsm"
)

// daemon runs realMain in a goroutine, exactly as a deployment would run
// the binary: flags in, signal to stop, exit code out.
type daemon struct {
	addr string
	stop chan os.Signal
	exit chan int
	logs *bytes.Buffer
}

func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	addrCh := make(chan string, 1)
	prev := notifyListening
	notifyListening = func(addr string) { addrCh <- addr }
	t.Cleanup(func() { notifyListening = prev })

	d := &daemon{stop: make(chan os.Signal, 1), exit: make(chan int, 1), logs: &bytes.Buffer{}}
	logs := d.logs
	go func() { d.exit <- realMain(args, logs, d.stop) }()
	select {
	case d.addr = <-addrCh:
	case code := <-d.exit:
		t.Fatalf("daemon exited %d before listening:\n%s", code, logs.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never started listening:\n%s", logs.String())
	}
	// Listening is not serving: gate on readiness, like a deployment's
	// health check would, so tests never race the daemon's startup.
	for deadline := time.Now().Add(10 * time.Second); ; {
		resp, err := http.Get("http://" + d.addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready: err=%v\n%s", err, logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return d
}

// shutdown delivers the signal a SIGTERM would and waits for a clean exit.
func (d *daemon) shutdown(t *testing.T) {
	t.Helper()
	d.stop <- os.Interrupt
	select {
	case code := <-d.exit:
		if code != 0 {
			t.Fatalf("daemon exited %d, want graceful 0", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never exited after the stop signal")
	}
}

func wait(t *testing.T, c *pimdsm.ServiceClient, id string) pimdsm.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.Wait(ctx, id, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return st
}

// TestServeSmoke is the `make serve-smoke` body and the E2E acceptance run:
// real simulations through the daemon, byte-identical cache serving proven
// by the engine-cycle counters, a 4x-admission-window submit storm bounded
// by typed rejections, graceful shutdown, and a cache index that survives a
// daemon restart.
func TestServeSmoke(t *testing.T) {
	const window = 2
	cacheFile := filepath.Join(t.TempDir(), "aggsimd.cache")
	// -sweep-workers 1 keeps each job's runs serial, so a storm job's wall
	// time is the sum of its simulations — the queue genuinely fills even
	// on a machine with many cores.
	d := startDaemon(t,
		"-addr", "127.0.0.1:0",
		"-workers", "1",
		"-sweep-workers", "1",
		"-queue", fmt.Sprint(window),
		"-cache-file", cacheFile,
	)
	c := pimdsm.NewServiceClient(d.addr)

	// 1. A small Figure 6 batch, simulated for real.
	fig6 := pimdsm.JobSpec{Name: "fig6-fft", Configs: pimdsm.Figure6Specs("fft", 4, 0.02)}
	n := len(fig6.Configs)
	first, err := c.Submit(fig6)
	if err != nil {
		t.Fatal(err)
	}
	if st := wait(t, c, first.ID); st.State != pimdsm.JobDone || st.Simulated != n {
		t.Fatalf("first batch: %+v, want %d simulated", st, n)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	runsAfterFirst, cyclesAfterFirst := stats.SimulatedRuns, stats.SimulatedCycles
	if runsAfterFirst != uint64(n) || cyclesAfterFirst == 0 {
		t.Fatalf("engine counters after first batch: %d runs, %d cycles", runsAfterFirst, cyclesAfterFirst)
	}
	_, firstRaw, err := c.Result(first.ID)
	if err != nil {
		t.Fatal(err)
	}

	// 2. The identical resubmission is served entirely from cache: same
	// bytes, and the engine-cycle counters do not move.
	second, err := c.Submit(fig6)
	if err != nil {
		t.Fatal(err)
	}
	if st := wait(t, c, second.ID); st.CacheHits != n || st.Simulated != 0 {
		t.Fatalf("resubmission: %+v, want %d cache hits and 0 simulated", st, n)
	}
	_, secondRaw, err := c.Result(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range firstRaw {
		if !bytes.Equal(firstRaw[i], secondRaw[i]) {
			t.Fatalf("config %d: cache served different bytes than the original run", i)
		}
	}
	stats, _ = c.Stats()
	if stats.SimulatedRuns != runsAfterFirst || stats.SimulatedCycles != cyclesAfterFirst {
		t.Fatalf("resubmission re-simulated: %d runs %d cycles, was %d/%d",
			stats.SimulatedRuns, stats.SimulatedCycles, runsAfterFirst, cyclesAfterFirst)
	}

	// 3. Submit storm: 4x the admission window of distinct (uncached) jobs.
	// A slower blocker job pins the single worker first, so the storm can
	// only queue — and past the window it must be rejected immediately with
	// a typed retry-after.
	// The blocker is a 10-run serial batch, long enough that it is still
	// simulating while the whole storm below is submitted.
	var blockerCfgs []pimdsm.ConfigSpec
	for p := 0; p < 10; p++ {
		blockerCfgs = append(blockerCfgs, pimdsm.ConfigSpec{
			Arch: "agg", App: "ocean", Scale: 0.5, Threads: 16,
			Pressure: 0.30 + 0.04*float64(p), DRatio: 1,
		})
	}
	blocker, err := c.Submit(pimdsm.JobSpec{Name: "blocker", Configs: blockerCfgs})
	if err != nil {
		t.Fatal(err)
	}
	// Don't start the storm until the blocker provably holds the worker.
	for deadline := time.Now().Add(10 * time.Second); ; {
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Running >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The storm is a concurrent burst: all submissions hit the daemon while
	// the blocker still holds the one worker, so nothing can drain between
	// them and the window bound is exact.
	storm := 4 * window
	type outcome struct {
		id  string
		err error
	}
	outcomes := make(chan outcome, storm)
	for i := 0; i < storm; i++ {
		go func(i int) {
			st, err := c.Submit(pimdsm.JobSpec{
				Name: fmt.Sprintf("storm-%d", i),
				Configs: []pimdsm.ConfigSpec{{
					Arch: "agg", App: "ocean", Scale: 0.1, Threads: 8,
					Pressure: 0.30 + 0.01*float64(i), DRatio: 1,
				}},
			})
			outcomes <- outcome{id: st.ID, err: err}
		}(i)
	}
	accepted, rejected := []string{}, 0
	for i := 0; i < storm; i++ {
		o := <-outcomes
		if o.err == nil {
			accepted = append(accepted, o.id)
			continue
		}
		var be *pimdsm.BusyError
		if !errors.As(o.err, &be) {
			t.Fatalf("storm submit: %v, want *BusyError", o.err)
		}
		if be.RetryAfter < time.Second {
			t.Fatalf("storm submit: retry-after %v below the 1s floor", be.RetryAfter)
		}
		rejected++
	}
	// The blocker holds the worker for the whole burst, so at most the
	// window can be accepted (one slot of slack if the blocker retires
	// mid-burst and a queued job is popped).
	if rejected < storm-window-1 || len(accepted) > window+1 {
		st, _ := c.Stats()
		t.Fatalf("storm of %d: %d accepted, %d rejected — admission window not bounding the queue (stats %+v)",
			storm, len(accepted), rejected, st)
	}
	stats, _ = c.Stats()
	if stats.JobsRejected < uint64(rejected) {
		t.Fatalf("server counted %d rejections, client saw %d", stats.JobsRejected, rejected)
	}
	for _, id := range append(accepted, blocker.ID) {
		wait(t, c, id)
	}

	// 4. Graceful shutdown persists the cache index.
	d.shutdown(t)
	if _, err := os.Stat(cacheFile); err != nil {
		t.Fatalf("cache index not persisted: %v", err)
	}

	// 5. A restarted daemon serves the same batch from the reloaded index
	// without simulating anything.
	d2 := startDaemon(t, "-addr", "127.0.0.1:0", "-workers", "1", "-cache-file", cacheFile)
	c2 := pimdsm.NewServiceClient(d2.addr)
	third, err := c2.Submit(fig6)
	if err != nil {
		t.Fatal(err)
	}
	if st := wait(t, c2, third.ID); st.CacheHits != n || st.Simulated != 0 {
		t.Fatalf("post-restart batch: %+v, want %d hits from the persisted index", st, n)
	}
	_, thirdRaw, err := c2.Result(third.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := range firstRaw {
		if !bytes.Equal(firstRaw[i], thirdRaw[i]) {
			t.Fatalf("config %d: restarted daemon served different bytes", i)
		}
	}
	stats2, _ := c2.Stats()
	if stats2.SimulatedRuns != 0 {
		t.Fatalf("restarted daemon simulated %d runs for a fully cached batch", stats2.SimulatedRuns)
	}
	d2.shutdown(t)
}

// TestSmokeMetricsArtifact: a metrics job serves a registry artifact over
// HTTP even when every result came from the cache.
func TestSmokeMetricsArtifact(t *testing.T) {
	d := startDaemon(t, "-addr", "127.0.0.1:0", "-workers", "1")
	defer d.shutdown(t)
	c := pimdsm.NewServiceClient(d.addr)
	spec := pimdsm.JobSpec{
		Metrics: true,
		Configs: []pimdsm.ConfigSpec{{Arch: "numa", App: "fft", Scale: 0.02, Threads: 4, Pressure: 0.75}},
	}
	st, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	wait(t, c, st.ID)
	mb, err := c.Metrics(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(mb) || len(mb) == 0 {
		t.Fatalf("metrics artifact invalid: %.80s", mb)
	}

	// Same config again (cache hit): metrics are folded from the cached
	// result, so the artifact is identical.
	spec.Metrics = true
	st2, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fin := wait(t, c, st2.ID); fin.CacheHits != 1 {
		t.Fatalf("second metrics job: %+v", fin)
	}
	mb2, err := c.Metrics(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb, mb2) {
		t.Fatal("metrics folded from a cached result differ from the simulated run's")
	}
}

// TestTelemetrySmoke is the `make telemetry-smoke` body: the flight recorder
// end to end through a real daemon. Every job is head-sampled into the
// recorder (-telemetry-sample 1), results stay byte-identical to a direct
// run with the recorder on, all three artifacts serve over HTTP, the
// perf-diff engine names a dominant phase between two architectures, and a
// daemon restart with the same artifact dir still serves the original flight
// record for a resubmission that is a pure cache hit.
func TestTelemetrySmoke(t *testing.T) {
	tmp := t.TempDir()
	cacheFile := filepath.Join(tmp, "aggsimd.cache")
	artDir := filepath.Join(tmp, "artifacts")
	flags := []string{
		"-addr", "127.0.0.1:0", "-workers", "1",
		"-telemetry-sample", "1",
		"-cache-file", cacheFile, "-artifact-dir", artDir,
	}
	d := startDaemon(t, flags...)
	c := pimdsm.NewServiceClient(d.addr)

	// Two runs of the same workload on different architectures: the pair the
	// perf diff should tell apart by protocol-phase composition.
	cfgA := pimdsm.ConfigSpec{Arch: "agg", App: "fft", Scale: 0.02, Threads: 4, Pressure: 0.75, DRatio: 1}
	cfgB := pimdsm.ConfigSpec{Arch: "numa", App: "fft", Scale: 0.02, Threads: 4, Pressure: 0.75}
	submitOne := func(name string, cfg pimdsm.ConfigSpec) pimdsm.JobStatus {
		st, err := c.Submit(pimdsm.JobSpec{Name: name, Configs: []pimdsm.ConfigSpec{cfg}})
		if err != nil {
			t.Fatal(err)
		}
		fin := wait(t, c, st.ID)
		if fin.State != pimdsm.JobDone || !fin.Telemetry {
			t.Fatalf("%s: %+v, want done with head-sampled telemetry", name, fin)
		}
		return fin
	}
	a := submitOne("flight-a", cfgA)
	b := submitOne("flight-b", cfgB)

	// Record-only, end to end: the daemon's served bytes with the recorder on
	// are identical to a direct in-process run without any observers.
	direct, err := pimdsm.Sweep{Workers: 1}.RunMany([]pimdsm.Config{cfgA.Config()})
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, err := json.Marshal(direct[0])
	if err != nil {
		t.Fatal(err)
	}
	_, rawA, err := c.Result(a.ID)
	if err != nil || len(rawA) != 1 {
		t.Fatalf("result: %d raws, %v", len(rawA), err)
	}
	if !bytes.Equal(rawA[0], wantRaw) {
		t.Fatalf("flight recorder changed the result bytes:\n%s\nvs direct\n%s", rawA[0], wantRaw)
	}

	// All three artifacts serve, and the diff names a dominant phase.
	fetchDump := func(st pimdsm.JobStatus) pimdsm.RunDump {
		dump := pimdsm.RunDump{Label: st.ID}
		pb, err := c.Profile(st.ID)
		if err != nil {
			t.Fatalf("%s profile: %v", st.ID, err)
		}
		dump.Profile = &pimdsm.ProfileSnapshot{}
		if err := json.Unmarshal(pb, dump.Profile); err != nil {
			t.Fatalf("%s profile artifact: %v", st.ID, err)
		}
		if dump.Profile.ExecCycles == 0 {
			t.Fatalf("%s profile attributed no cycles", st.ID)
		}
		if fb, err := c.Folded(st.ID); err != nil || len(fb) == 0 {
			t.Fatalf("%s folded: %d bytes, %v", st.ID, len(fb), err)
		}
		db, err := c.Decompose(st.ID)
		if err != nil {
			t.Fatalf("%s decompose: %v", st.ID, err)
		}
		dump.Spans = &pimdsm.SpanBreakdown{}
		if err := json.Unmarshal(db, dump.Spans); err != nil {
			t.Fatalf("%s decompose artifact: %v", st.ID, err)
		}
		if dump.Spans.Retired == 0 {
			t.Fatalf("%s decompose retired no transactions", st.ID)
		}
		return dump
	}
	rep := pimdsm.CompareRuns(fetchDump(a), fetchDump(b), pimdsm.CompareOptions{})
	if rep.DominantPhase == "" || !strings.Contains(rep.Verdict, "dominant") {
		t.Fatalf("diff of agg vs numa named no dominant phase: %+v", rep)
	}

	// Restart with the same stores: the resubmission is a pure cache hit —
	// which records nothing — yet the restored artifact store still serves
	// the original flight record, byte for byte.
	profA, err := c.Profile(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	d.shutdown(t)
	d2 := startDaemon(t, flags...)
	c2 := pimdsm.NewServiceClient(d2.addr)
	st2, err := c2.Submit(pimdsm.JobSpec{Name: "flight-a-again", Configs: []pimdsm.ConfigSpec{cfgA}})
	if err != nil {
		t.Fatal(err)
	}
	if fin := wait(t, c2, st2.ID); fin.CacheHits != 1 || fin.Simulated != 0 || !fin.Telemetry {
		t.Fatalf("post-restart resubmission: %+v, want a pure telemetry cache hit", fin)
	}
	profA2, err := c2.Profile(st2.ID)
	if err != nil {
		t.Fatalf("restarted daemon lost the flight record: %v", err)
	}
	if !bytes.Equal(profA, profA2) {
		t.Fatal("restarted daemon served a different flight record than the original run's")
	}
	stats, err := c2.Stats()
	if err != nil || stats.Artifacts.Count == 0 || stats.Artifacts.Hits == 0 {
		t.Fatalf("artifact store counters after restart: %+v, %v", stats.Artifacts, err)
	}
	d2.shutdown(t)
}
