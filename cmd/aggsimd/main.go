// Command aggsimd is the simulation service daemon: a long-running process
// that accepts simulation jobs over a JSON/HTTP API, deduplicates them
// through a content-addressed result cache, schedules them on a bounded
// worker pool behind an admission window, and serves results, metrics and
// span artifacts — so repeated evaluations of the paper's configuration
// matrix stop paying for re-simulation.
//
// Usage:
//
//	aggsimd [-addr localhost:8977] [-workers 2] [-sweep-workers 0]
//	        [-queue 16] [-cache-entries 512] [-cache-file aggsimd.cache]
//	        [-telemetry-sample 0] [-artifact-dir DIR] [-artifact-bytes 64MiB]
//	        [-drain-timeout 30s] [-log stderr|off|PATH] [-log-level info]
//	        [-tenants-file tenants.json] [-usage-file aggsimd.usage]
//	        [-tenants-reload 0] [-cluster-name NAME -peers host:port,...]
//	        [-advertise host:port] [-replicas 2]
//
// -workers bounds concurrently running jobs; -sweep-workers bounds the
// simulations one job runs in parallel (0 = GOMAXPROCS divided across the
// job workers). Every simulation is a CPU-bound serial coherence run —
// Config.Shards parallelizes only the event-driven mesh engine, never a
// machine run — so the daemon keeps workers × sweep-workers ≤ GOMAXPROCS:
// explicit values that oversubscribe are capped with a startup warning.
// -queue is the admission window: submissions beyond it receive HTTP 429
// with a Retry-After hint instead of queueing without bound. -cache-file
// persists the result-cache index across restarts (written atomically on
// graceful shutdown, verified and reloaded on start).
//
// The flight recorder: jobs submitted with "telemetry": true — or every Nth
// job when -telemetry-sample N is set — record deep telemetry (metrics,
// spans, per-config cycle-attribution profiles) and persist the merged
// record as content-addressed profile/folded/decompose artifacts, served
// under GET /api/v1/jobs/{id}/profile|folded|decompose and diffed by
// `pimdsm diff`. With -artifact-dir the records live in a bounded on-disk
// store (-artifact-bytes, LRU eviction) whose index survives restarts like
// the result cache's. Recording is record-only: results stay byte-identical
// with it on or off.
//
// Multi-tenant mode (-tenants-file, DESIGN.md §14): the file declares the
// tenant set — name, API key, priority ceiling, token-bucket rate limit and
// queue/concurrency quotas (see examples/tenants.json). Every /api/v1
// request must then carry a registered key (Authorization: Bearer or
// X-API-Key; 401/403 otherwise), each tenant's submissions are gated by its
// own bucket and quotas in front of the shared admission window (per-tenant
// 429 with its own Retry-After), and all observability surfaces attribute
// work to tenants: tenant= in logs and lifecycle events, a bounded `tenant`
// label dimension on /metrics.prom (summing exactly to the global
// counters), GET /api/v1/tenants and /api/v1/tenants/{name}/usage, and
// `pimdsm usage`. -usage-file persists the cumulative per-tenant ledger
// across restarts, atomically on graceful shutdown like the cache index.
// Tenancy is record-only for the simulator: results stay byte-identical
// with it on or off.
//
// The tenants file hot-reloads without a restart: SIGHUP re-reads it
// immediately, and -tenants-reload N polls its mtime every N (for process
// managers that cannot signal). A reload is all-or-nothing — a malformed
// file is rejected loudly and the old registry keeps serving; a revoked key
// gets 401 on its next request after a successful swap.
//
// Cluster mode (-cluster-name NAME -peers a:1,b:2, DESIGN.md §15): N
// daemons form a named cluster — gossip membership over the seed list,
// consistent-hash ownership of the content-addressed key space, forwarding
// of non-owned keys to their owner, replication of completed results to
// -replicas ring successors, and work stealing by idle nodes. Any node is a
// full front door: submit anywhere, the cluster routes. -advertise overrides
// the address peers use to reach this node (default: the bound -addr).
// Without -cluster-name the daemon is byte-identical to a single-node build;
// membership changes never change result bytes, only where they compute.
//
// The daemon serves the obs dashboard routes (/, /debug/vars,
// /debug/pprof/) next to the API; /healthz reports liveness and /readyz
// readiness (503 while draining or with a saturated admission window).
// Every request is logged as one structured JSON line (-log selects the
// destination, -log-level the floor), tagged with an X-Request-ID that is
// also echoed to clients. Job lifecycle events stream over
// GET /api/v1/events (SSE; resume with Last-Event-ID) and per-job under
// /api/v1/jobs/{id}/events (add ?format=chrome for a chrome://tracing
// export); GET /metrics.prom exposes Prometheus text metrics. SIGINT or
// SIGTERM starts a graceful drain: running jobs finish (up to
// -drain-timeout), queued jobs abort, the cache index is persisted, then
// the process exits.
//
// Submit with the pimdsm tool:
//
//	pimdsm submit -addr localhost:8977 -figure6 -app fft -scale 0.1 -wait
//	pimdsm jobs   -addr localhost:8977
//	pimdsm result -addr localhost:8977 j-000001
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pimdsm"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	os.Exit(realMain(os.Args[1:], os.Stderr, stop))
}

// notifyListening is a test seam: the smoke test reads the bound address
// from here instead of scraping stderr.
var notifyListening = func(addr string) {}

// effectiveSweepWorkers resolves the per-job simulation parallelism so the
// pool never oversubscribes the host: each of `workers` jobs runs up to the
// returned count of simulations at once, and every simulation is one
// CPU-bound goroutine (the coherence path is serial at any Config.Shards),
// so the product is kept ≤ maxProcs. sweepWorkers 0 asks for the automatic
// split; an explicit value that oversubscribes is capped and the returned
// warning explains what happened (empty when nothing was changed).
//
// The previous behavior — 0 meant one sweep worker per CPU in *each* job
// worker — ran workers × NumCPU simulations on NumCPU cores, a 2× default
// oversubscription that showed up as pure scheduler churn on loaded hosts.
func effectiveSweepWorkers(workers, sweepWorkers, maxProcs int) (int, string) {
	if workers < 1 {
		workers = 1
	}
	fair := maxProcs / workers
	if fair < 1 {
		fair = 1
	}
	if sweepWorkers <= 0 {
		return fair, ""
	}
	if workers*sweepWorkers > maxProcs && sweepWorkers > fair {
		return fair, fmt.Sprintf(
			"%d jobs x %d simulations oversubscribes GOMAXPROCS=%d; capping -sweep-workers to %d",
			workers, sweepWorkers, maxProcs, fair)
	}
	return sweepWorkers, ""
}

// realMain runs the daemon until a signal arrives on stop (tests send one
// instead of raising a real signal).
func realMain(args []string, stderr io.Writer, stop <-chan os.Signal) int {
	fs := flag.NewFlagSet("aggsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8977", "listen address (host:port, :0 for an ephemeral port)")
	workers := fs.Int("workers", 2, "jobs simulated concurrently")
	sweepWorkers := fs.Int("sweep-workers", 0, "parallel simulations within one job (0 = GOMAXPROCS split across -workers)")
	queue := fs.Int("queue", 16, "admission window: max jobs waiting to run")
	cacheEntries := fs.Int("cache-entries", 512, "result cache LRU bound")
	cacheFile := fs.String("cache-file", "", "persist the cache index to this file across restarts")
	telemetrySample := fs.Int("telemetry-sample", 0, "head-sample every Nth job into the flight recorder (0 = off)")
	artifactDir := fs.String("artifact-dir", "", "persist flight-recorder artifacts in this directory (bounded, survives restarts)")
	artifactBytes := fs.Int64("artifact-bytes", 64<<20, "artifact store byte bound (LRU eviction past it)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max wait for running jobs on shutdown")
	logDest := fs.String("log", "stderr", "structured JSON log destination: stderr, off, or a file path")
	logLevel := fs.String("log-level", "info", "log floor: debug, info, warn, error")
	tenantsFile := fs.String("tenants-file", "", "enable multi-tenant mode: JSON file declaring tenants, keys and quotas")
	usageFile := fs.String("usage-file", "", "persist the per-tenant usage ledger to this file across restarts")
	tenantsReload := fs.Duration("tenants-reload", 0, "poll the tenants file for changes at this interval and hot-reload it (0 = SIGHUP only)")
	clusterName := fs.String("cluster-name", "", "join the named cluster (requires -peers)")
	peers := fs.String("peers", "", "comma-separated seed peer addresses (host:port) for cluster bootstrap")
	advertise := fs.String("advertise", "", "address peers reach this node at (default: the bound -addr)")
	replicas := fs.Int("replicas", 2, "ring successors receiving a copy of each completed result")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Flag hygiene: a typo'd -log-level silently falling back to info would
	// hide the debug lines the operator asked for. Reject it up front.
	if err := pimdsm.ValidateLogLevel(*logLevel); err != nil {
		fmt.Fprintln(stderr, "aggsimd: -log-level:", err)
		return 2
	}
	if (*clusterName == "") != (*peers == "") {
		fmt.Fprintln(stderr, "aggsimd: -cluster-name and -peers must be set together")
		return 2
	}
	if *clusterName == "" && *advertise != "" {
		fmt.Fprintln(stderr, "aggsimd: -advertise requires -cluster-name and -peers")
		return 2
	}
	if *tenantsReload != 0 && *tenantsFile == "" {
		fmt.Fprintln(stderr, "aggsimd: -tenants-reload requires -tenants-file")
		return 2
	}

	var tenants *pimdsm.TenantRegistry
	var tenantsFi os.FileInfo
	if *tenantsFile != "" {
		var err error
		tenants, err = pimdsm.LoadTenants(*tenantsFile)
		if err != nil {
			// A missing or malformed tenants file must never mean "run open":
			// fail loudly instead of silently disabling authentication.
			fmt.Fprintln(stderr, "aggsimd: -tenants-file:", err)
			return 1
		}
		// The reload poll's baseline must be captured here, next to the load
		// it describes — capturing it after the server is up would swallow a
		// rewrite that lands between readiness and the first poll.
		tenantsFi, _ = os.Stat(*tenantsFile)
	} else if *usageFile != "" {
		fmt.Fprintln(stderr, "aggsimd: -usage-file requires -tenants-file")
		return 2
	}

	var svcLog *slog.Logger
	switch *logDest {
	case "off":
		// Options default to a no-op logger.
	case "stderr", "":
		svcLog = pimdsm.NewServiceLogger(stderr, *logLevel, false)
	default:
		f, err := os.OpenFile(*logDest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(stderr, "aggsimd: -log:", err)
			return 1
		}
		defer f.Close()
		svcLog = pimdsm.NewServiceLogger(f, *logLevel, false)
	}

	sw, warn := effectiveSweepWorkers(*workers, *sweepWorkers, runtime.GOMAXPROCS(0))
	if warn != "" {
		fmt.Fprintln(stderr, "aggsimd:", warn)
	}

	srv, err := pimdsm.NewServer(pimdsm.ServerOptions{
		Workers:         *workers,
		QueueLimit:      *queue,
		CacheEntries:    *cacheEntries,
		CachePath:       *cacheFile,
		TelemetrySample: *telemetrySample,
		ArtifactDir:     *artifactDir,
		ArtifactBytes:   *artifactBytes,
		Log:             svcLog,
		Events:          pimdsm.NewEventLog(0),
		Tenants:         tenants,
		UsagePath:       *usageFile,
	}, sw)
	if err != nil {
		fmt.Fprintln(stderr, "aggsimd:", err)
		return 1
	}
	if *cacheFile != "" {
		fmt.Fprintf(stderr, "aggsimd: cache index %s: %d entries restored\n",
			*cacheFile, srv.Cache().Len())
	}
	if store := srv.ArtifactStore(); store != nil {
		fmt.Fprintf(stderr, "aggsimd: artifact store %s: %d artifacts restored\n",
			store.Dir(), store.Stats().Count)
	}
	if tenants != nil {
		fmt.Fprintf(stderr, "aggsimd: multi-tenant mode: %d tenants from %s\n",
			tenants.Len(), *tenantsFile)
	}

	dash := pimdsm.NewDashboard()
	api := pimdsm.NewServiceAPI(srv, dash)
	bound, closeHTTP, err := api.ListenAndServe(*addr)
	if err != nil {
		fmt.Fprintln(stderr, "aggsimd:", err)
		return 1
	}
	fmt.Fprintf(stderr, "aggsimd: listening on http://%s/ (API under /api/v1/)\n", bound)

	// Cluster mode: the membership node advertises the bound address unless
	// the operator gave a reachable override (NAT, DNS). Attached after the
	// listener is up so the first heartbeat a seed sends back finds a live
	// endpoint.
	if *clusterName != "" {
		self := *advertise
		if self == "" {
			self = bound
		}
		var seeds []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				seeds = append(seeds, p)
			}
		}
		node, err := pimdsm.NewClusterNode(pimdsm.ClusterConfig{
			Name:     *clusterName,
			Self:     self,
			Seeds:    seeds,
			Replicas: *replicas,
			Log:      svcLog,
		})
		if err != nil {
			fmt.Fprintln(stderr, "aggsimd: cluster:", err)
			closeHTTP()
			return 1
		}
		srv.AttachCluster(node)
		fmt.Fprintf(stderr, "aggsimd: cluster %q: advertising %s, %d seeds, %d replicas\n",
			*clusterName, self, len(node.Members())-1, *replicas)
	}
	notifyListening(bound)

	// Mirror the service counters into the dashboard index page.
	statsDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			st := srv.Stats()
			dash.Publish("service", fmt.Sprintf(
				"jobs: %d submitted, %d done, %d failed, %d rejected; queue %d/%d, running %d\n"+
					"cache: %d/%d entries, %d hits, %d misses, %d joins, %d evictions\n"+
					"simulated: %d runs, %d engine cycles\n",
				st.JobsSubmitted, st.JobsDone, st.JobsFailed, st.JobsRejected,
				st.Queued, st.QueueLimit, st.Running,
				st.Cache.Entries, st.Cache.Limit, st.Cache.Hits, st.Cache.Misses,
				st.Cache.Joins, st.Cache.Evictions,
				st.SimulatedRuns, st.SimulatedCycles))
			dash.Publish("artifacts", srv.ArtifactsStatus())
			if len(st.Tenants) > 0 {
				var b strings.Builder
				for _, t := range st.Tenants {
					fmt.Fprintf(&b, "%-12s %d queued, %d running; %d submitted, %d done, %d failed, %d rejected; %d cache hits, %d runs\n",
						t.Name, t.Queued, t.Running,
						t.Usage.JobsSubmitted, t.Usage.JobsDone, t.Usage.JobsFailed, t.Usage.Rejected(),
						t.Usage.CacheHits, t.Usage.SimulatedRuns)
				}
				dash.Publish("tenants", b.String())
			}
			select {
			case <-statsDone:
				return
			case <-tick.C:
			}
		}
	}()

	// Tenants hot-reload: SIGHUP always works in tenant mode; -tenants-reload
	// adds an mtime poll for platforms and process managers that cannot
	// signal. Reload is all-or-nothing — a malformed file is rejected loudly
	// and the running registry keeps serving the old tenant set; a revoked
	// key stops authenticating on the request after a successful swap.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	reloadTenants := func(trigger string) {
		if tenants == nil {
			return
		}
		if err := tenants.ReloadFile(*tenantsFile); err != nil {
			fmt.Fprintf(stderr, "aggsimd: tenants reload (%s) rejected, keeping previous registry: %v\n", trigger, err)
			srv.Log().Error("tenants_reload_rejected", "trigger", trigger, "err", err.Error())
			return
		}
		fmt.Fprintf(stderr, "aggsimd: tenants reloaded (%s): %d tenants, generation %d\n",
			trigger, tenants.Len(), tenants.Generation())
		srv.Log().Info("tenants_reloaded", "trigger", trigger,
			"tenants", tenants.Len(), "generation", tenants.Generation())
	}
	var pollC <-chan time.Time
	lastFi := tenantsFi
	if *tenantsReload > 0 && tenants != nil {
		poll := time.NewTicker(*tenantsReload)
		defer poll.Stop()
		pollC = poll.C
	}

	var sig os.Signal
wait:
	for {
		select {
		case <-hup:
			reloadTenants("SIGHUP")
		case <-pollC:
			fi, err := os.Stat(*tenantsFile)
			if err != nil {
				fmt.Fprintf(stderr, "aggsimd: tenants reload (poll): %v\n", err)
				continue
			}
			// mtime alone is not enough: an atomic rename can land within
			// the same coarse-clock tick as the previous write, leaving the
			// timestamp (and even the size) unchanged. The inode identity
			// (os.SameFile) catches every rename-style replacement.
			if lastFi != nil && os.SameFile(lastFi, fi) &&
				fi.ModTime().Equal(lastFi.ModTime()) && fi.Size() == lastFi.Size() {
				continue
			}
			lastFi = fi
			reloadTenants("poll")
		case sig = <-stop:
			break wait
		}
	}
	fmt.Fprintf(stderr, "aggsimd: %v, draining (timeout %s)\n", sig, *drainTimeout)
	close(statsDone)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = srv.Shutdown(ctx)
	closeHTTP()
	if err != nil {
		fmt.Fprintln(stderr, "aggsimd: shutdown:", err)
		return 1
	}
	if *cacheFile != "" {
		fmt.Fprintf(stderr, "aggsimd: cache index persisted to %s\n", *cacheFile)
	}
	fmt.Fprintln(stderr, "aggsimd: bye")
	return 0
}
