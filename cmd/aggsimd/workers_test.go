package main

import "testing"

// TestEffectiveSweepWorkers pins the oversubscription guard: the product of
// job workers and per-job sweep workers never exceeds GOMAXPROCS, whether the
// per-job count was automatic (0) or explicit (capped with a warning).
func TestEffectiveSweepWorkers(t *testing.T) {
	cases := []struct {
		workers, sweep, procs int
		want                  int
		warns                 bool
	}{
		{2, 0, 8, 4, false},  // automatic split
		{2, 0, 1, 1, false},  // 1-CPU host: serial within each job
		{2, 4, 8, 4, false},  // explicit fit is kept
		{2, 8, 8, 4, true},   // explicit oversubscription capped
		{4, 16, 4, 1, true},  // heavy oversubscription capped to the floor
		{0, 0, 8, 8, false},  // degenerate workers treated as one job
		{16, 1, 8, 1, false}, // workers alone > procs: sweep already minimal
	}
	for _, c := range cases {
		got, warn := effectiveSweepWorkers(c.workers, c.sweep, c.procs)
		if got != c.want || (warn != "") != c.warns {
			t.Errorf("effectiveSweepWorkers(%d, %d, %d) = %d, %q; want %d, warn=%v",
				c.workers, c.sweep, c.procs, got, warn, c.want, c.warns)
		}
	}
}
