package pimdsm

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// smallFig6Specs is a shrunken Figure 6 batch: real simulations, small
// enough for the test suite.
func smallFig6Specs(t *testing.T) []ConfigSpec {
	t.Helper()
	specs := Figure6Specs("fft", 4, 0.02)
	if len(specs) < 3 {
		t.Fatalf("Figure6Specs returned %d configs", len(specs))
	}
	return specs
}

func waitService(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s never finished", id)
	}
	return s.Status(j)
}

// TestServiceByteIdenticalToDirectRun is the cache-correctness contract:
// results served by the service — on the simulating miss AND on the cache
// hit — are byte-identical to encoding a direct Sweep.RunMany of the same
// configurations.
func TestServiceByteIdenticalToDirectRun(t *testing.T) {
	specs := smallFig6Specs(t)

	cfgs := make([]Config, len(specs))
	for i, sp := range specs {
		cfgs[i] = sp.Config()
	}
	direct, err := Sweep{Workers: 2}.RunMany(cfgs)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewServer(ServerOptions{Workers: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	check := func(label string, wantHits, wantSim int) {
		st, err := s.Submit(JobSpec{Name: label, Configs: specs})
		if err != nil {
			t.Fatal(err)
		}
		fin := waitService(t, s, st.ID)
		if fin.State != JobDone || fin.CacheHits != wantHits || fin.Simulated != wantSim {
			t.Fatalf("%s: %+v, want %d hits / %d simulated", label, fin, wantHits, wantSim)
		}
		j, _ := s.Job(st.ID)
		_, js, ok := s.Results(j)
		if !ok || len(js) != len(direct) {
			t.Fatalf("%s: %d served results vs %d direct", label, len(js), len(direct))
		}
		for i, r := range direct {
			want, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			if string(js[i]) != string(want) {
				t.Fatalf("%s: config %d (%s/%s) served bytes differ from direct run",
					label, i, specs[i].Arch, specs[i].App)
			}
		}
	}
	check("miss-path", 0, len(specs))
	check("hit-path", len(specs), 0)

	if st := s.Stats(); st.SimulatedRuns != uint64(len(specs)) {
		t.Fatalf("second job re-simulated: %d runs for %d configs", st.SimulatedRuns, len(specs))
	}
}

// TestServiceSpansJob: a spans job records per-phase transaction spans for
// the runs it actually simulates.
func TestServiceSpansJob(t *testing.T) {
	s, err := NewServer(ServerOptions{Workers: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	spec := JobSpec{
		Spans:   true,
		Configs: []ConfigSpec{{Arch: "agg", App: "fft", Scale: 0.02, Threads: 4, Pressure: 0.75, DRatio: 1}},
	}
	st, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitService(t, s, st.ID); fin.State != JobDone {
		t.Fatalf("spans job: %+v", fin)
	}
	j, _ := s.Job(st.ID)
	sp := s.Spans(j)
	if sp == nil || sp.Retired() == 0 {
		t.Fatal("spans job recorded no spans")
	}
}
