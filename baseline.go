package pimdsm

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Baseline is a flat map of named measurements from a fixed, deterministic
// run matrix. `make check-stats` collects a fresh baseline and compares it
// against the committed golden (testdata/golden_stats.json) with per-metric
// tolerances, so a protocol or timing change that silently shifts results
// fails CI instead of drifting in.
type Baseline struct {
	// Schema versions the metric set; bump it when metrics are added or
	// renamed so stale goldens fail loudly instead of half-matching.
	Schema  int                `json:"schema"`
	Metrics map[string]float64 `json:"metrics"`
}

// BaselineSchema is the current metric-set version.
const BaselineSchema = 1

// baselineApps is the fixed collection matrix: small enough for CI, broad
// enough to cover all three architectures and both pressures (each app runs
// its seven Figure 6 configurations).
var baselineApps = []string{"fft", "ocean"}

// CollectBaseline runs the fixed matrix (fft and ocean at scale 0.05 with 8
// threads, seven Figure 6 configurations each) and returns the measurement
// map. parallel bounds concurrent simulations (0 = one per CPU); parallelism
// never changes results.
func CollectBaseline(parallel int) (*Baseline, error) {
	opt := Options{Scale: 0.05, Threads: 8, Apps: baselineApps, Parallel: parallel}.withDefaults()
	b := &Baseline{Schema: BaselineSchema, Metrics: make(map[string]float64)}
	for _, app := range opt.Apps {
		cs := figure6Configs(app, opt)
		cfgs := make([]Config, len(cs))
		for i := range cs {
			cfgs[i] = cs[i].cfg
		}
		results, err := opt.runMany(cfgs)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			prefix := app + "/" + cs[i].label + "/"
			m := &res.Machine
			var reads, latSum uint64
			for c := range m.ReadCount {
				reads += m.ReadCount[c]
				latSum += uint64(m.ReadLatSum[c])
			}
			b.Metrics[prefix+"exec_cycles"] = float64(res.Breakdown.Exec)
			b.Metrics[prefix+"memory_cycles"] = float64(res.Breakdown.Memory)
			if reads > 0 {
				b.Metrics[prefix+"avg_read_lat"] = float64(latSum) / float64(reads)
			}
			b.Metrics[prefix+"read_count"] = float64(reads)
			b.Metrics[prefix+"invalidations"] = float64(m.Invalidations)
			b.Metrics[prefix+"writebacks"] = float64(m.WriteBacks)
			b.Metrics[prefix+"mesh_messages"] = float64(res.Mesh.Messages)
		}
	}
	return b, nil
}

// BaselineTolerance returns the allowed relative deviation for a metric:
// cycle and latency measures get 2% (headroom for deliberate timing-model
// tweaks, still far below a real regression), event counts get 0.5% (the
// simulator is deterministic; counts should barely move).
func BaselineTolerance(name string) float64 {
	if strings.HasSuffix(name, "_cycles") || strings.HasSuffix(name, "_lat") {
		return 0.02
	}
	return 0.005
}

// CompareBaselines reports every metric of want that got misses or exceeds
// tolerance on, one human-readable line per violation (empty = pass).
// Metrics present only in got are reported too: a changed metric set needs a
// schema bump and a regenerated golden.
func CompareBaselines(got, want *Baseline) []string {
	var bad []string
	if got.Schema != want.Schema {
		bad = append(bad, fmt.Sprintf("schema %d != golden schema %d (regenerate the golden with -update)",
			got.Schema, want.Schema))
		return bad
	}
	names := make([]string, 0, len(want.Metrics))
	for name := range want.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w := want.Metrics[name]
		g, ok := got.Metrics[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing (golden %g)", name, w))
			continue
		}
		tol := BaselineTolerance(name)
		base := w
		if base < 0 {
			base = -base
		}
		diff := g - w
		if diff < 0 {
			diff = -diff
		}
		if diff > base*tol {
			bad = append(bad, fmt.Sprintf("%s: got %g, golden %g (%+.2f%%, tolerance ±%.1f%%)",
				name, g, w, 100*(g-w)/base, 100*tol))
		}
	}
	for name := range got.Metrics {
		if _, ok := want.Metrics[name]; !ok {
			bad = append(bad, fmt.Sprintf("%s: not in golden (regenerate with -update)", name))
		}
	}
	sort.Strings(bad)
	return bad
}

// WriteBaseline writes b as indented JSON (keys sorted, so goldens diff
// cleanly).
func WriteBaseline(w io.Writer, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadBaseline parses a golden written by WriteBaseline.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, err
	}
	if b.Metrics == nil {
		return nil, fmt.Errorf("baseline: no metrics object")
	}
	return &b, nil
}
