package pimdsm

// Ablation experiments for the design choices DESIGN.md calls out. Each
// ablation is both a test (the qualitative claim must hold) and a benchmark
// (the sweep is regenerable with -bench).

import (
	"testing"
)

func ablRun(t testing.TB, cfg Config) *Result {
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAblationOnChipFraction checks §3's claim: "given that the difference
// in latency between an on- and off-chip local memory access is small, the
// fraction of local memory that is on-chip has only a modest impact on
// execution time."
func TestAblationOnChipFraction(t *testing.T) {
	base := Config{Arch: AGG, App: App("swim", 0.25), Threads: 16, Pressure: 0.75, DRatio: 1}
	var execs []float64
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		cfg := base
		cfg.OnChipFraction = frac
		execs = append(execs, float64(ablRun(t, cfg).Breakdown.Exec))
	}
	// More on-chip memory must not hurt, and the whole sweep must stay
	// within a modest band (we allow 25%).
	lo, hi := execs[0], execs[0]
	for _, e := range execs {
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	if hi/lo > 1.25 {
		t.Fatalf("on-chip fraction has a non-modest impact: %v", execs)
	}
}

// TestAblationSharedListThreshold checks §2.2.2's caution: reusing the
// SharedList freely (threshold ~0) trades home copies for space — more
// 3-hop reads — while a very high threshold forces paging instead.
func TestAblationSharedListThreshold(t *testing.T) {
	base := Config{Arch: AGG, App: App("fft", 0.25), Threads: 16, Pressure: 0.75, DRatio: 1}
	low := base
	low.SharedMinFrac = 0.01
	high := base
	high.SharedMinFrac = 0.9 // hoard shared copies; page out instead
	rl := ablRun(t, low)
	rh := ablRun(t, high)
	if rh.Machine.Pageouts < rl.Machine.Pageouts {
		t.Fatalf("hoarding threshold paged out less (%d) than the reusing one (%d)",
			rh.Machine.Pageouts, rl.Machine.Pageouts)
	}
}

// TestAblationHandlerCosts checks the software-vs-hardware protocol gap the
// paper quantifies at 70%: cheaper handlers must not slow AGG down. (The
// sweep uses a barrier-only streaming app; lock-heavy codes like radix are
// timing-sensitive enough that any perturbation can reshape their lock
// convoys.)
func TestAblationHandlerCosts(t *testing.T) {
	base := Config{Arch: AGG, App: App("swim", 0.25), Threads: 16, Pressure: 0.75, DRatio: 1}
	hw := base
	hw.HandlerScale = 0.7
	soft := ablRun(t, base)
	hard := ablRun(t, hw)
	// Allow a few percent of timing-perturbation noise: changing handler
	// latency reshapes queueing in this closed-loop system, so individual
	// runs jitter even though the trend is monotone.
	if float64(hard.Breakdown.Exec) > 1.05*float64(soft.Breakdown.Exec) {
		t.Fatalf("hardware-cost handlers significantly slower (%d) than software (%d)",
			hard.Breakdown.Exec, soft.Breakdown.Exec)
	}
}

// BenchmarkAblationOnChipFraction sweeps the on-chip fraction.
func BenchmarkAblationOnChipFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, frac := range []float64{0.25, 0.5, 1.0} {
			cfg := Config{Arch: AGG, App: App("swim", 0.1), Threads: 8, Pressure: 0.75, DRatio: 1, OnChipFraction: frac}
			ablRun(b, cfg)
		}
	}
}

// BenchmarkAblationHandlerCosts sweeps the handler-cost scale (the
// software-protocol overhead the paper prices at 30%).
func BenchmarkAblationHandlerCosts(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		base := Config{Arch: AGG, App: App("swim", 0.1), Threads: 8, Pressure: 0.75, DRatio: 1}
		soft := ablRun(b, base)
		base.HandlerScale = 0.7
		hard := ablRun(b, base)
		ratio = float64(soft.Breakdown.Exec) / float64(hard.Breakdown.Exec)
	}
	b.ReportMetric(ratio, "software/hardware")
}

// TestAblationSetAssociativeDMem exercises §2.2.2's rejected design: when
// the D-node Data arrays are managed set-associatively, incoming lines can
// find their set full even though the memory has room elsewhere, so the
// machine suffers set conflicts and pages out under loads the paper's
// fully-associative organization absorbs without either.
func TestAblationSetAssociativeDMem(t *testing.T) {
	base := Config{Arch: AGG, App: App("fft", 0.25), Threads: 16, Pressure: 0.75, DRatio: 1}
	fa := ablRun(t, base)
	sa4 := base
	sa4.DMemSetAssoc = 4
	saRes := ablRun(t, sa4)
	if fa.DMem.SetConflicts != 0 {
		t.Fatalf("fully-associative D-memory reported %d set conflicts", fa.DMem.SetConflicts)
	}
	if saRes.DMem.SetConflicts == 0 {
		t.Fatal("set-associative D-memory at 75% pressure had no set conflicts")
	}
	if saRes.Machine.Pageouts+saRes.Machine.CrisisPauses <= fa.Machine.Pageouts+fa.Machine.CrisisPauses {
		t.Fatalf("set-associative organization did not increase paging/crises: SA %d+%d vs FA %d+%d",
			saRes.Machine.Pageouts, saRes.Machine.CrisisPauses, fa.Machine.Pageouts, fa.Machine.CrisisPauses)
	}
}

// BenchmarkAblationSetAssociativeDMem sweeps D-memory associativity.
func BenchmarkAblationSetAssociativeDMem(b *testing.B) {
	var conflicts float64
	for i := 0; i < b.N; i++ {
		for _, assoc := range []int{0, 8, 4} {
			cfg := Config{Arch: AGG, App: App("fft", 0.1), Threads: 8, Pressure: 0.75, DRatio: 1, DMemSetAssoc: assoc}
			res := ablRun(b, cfg)
			conflicts = float64(res.DMem.SetConflicts)
		}
	}
	b.ReportMetric(conflicts, "4way-set-conflicts")
}
