package pimdsm

import (
	"reflect"
	"strings"
	"testing"
)

// TestProfileCycleInvariant is the tentpole acceptance check: across a full
// Figure 6 batch of every application, each profiled run's cycle buckets sum
// exactly — P-node busy/mem-stall/sync-spin/idle to the engine's execution
// time, and D-node handler classes to each covered resource's busy time.
func TestProfileCycleInvariant(t *testing.T) {
	rows, err := Bottleneck(Options{Scale: 0.05, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := 7 * len(Apps()); len(rows) != want {
		t.Fatalf("%d rows, want %d (7 Figure 6 configurations x %d apps)", len(rows), want, len(Apps()))
	}
	for _, row := range rows {
		if row.Profile.Exec() == 0 {
			t.Errorf("%s/%s: no execution time recorded", row.App, row.Label)
			continue
		}
		if bad := row.Profile.CheckInvariants(); len(bad) != 0 {
			t.Errorf("%s/%s: cycle accounting does not balance:\n  %s",
				row.App, row.Label, strings.Join(bad, "\n  "))
		}
	}
	text := FormatBottleneck(rows[:7])
	for _, want := range []string{"P-nodes", "critical path:", "heatmap", rows[0].App} {
		if !strings.Contains(text, want) {
			t.Errorf("FormatBottleneck output missing %q", want)
		}
	}
}

// TestProfileDoesNotChangeResults extends the determinism regression to the
// profiler: it is record-only, so a profiled run must be bit-identical to an
// unprofiled one, and two profiled runs must record identical profiles.
func TestProfileDoesNotChangeResults(t *testing.T) {
	plain, err := Run(fig6AGGConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fig6AGGConfig()
	cfg.Profile = NewProfile()
	profiled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Breakdown != profiled.Breakdown {
		t.Fatalf("breakdown differs with profiling on: %+v vs %+v", plain.Breakdown, profiled.Breakdown)
	}
	if !reflect.DeepEqual(plain.Machine, profiled.Machine) {
		t.Fatal("stats.Machine differs with profiling on")
	}
	if !reflect.DeepEqual(plain.Mesh, profiled.Mesh) {
		t.Fatal("mesh stats differ with profiling on")
	}

	cfg2 := fig6AGGConfig()
	cfg2.Profile = NewProfile()
	if _, err := Run(cfg2); err != nil {
		t.Fatal(err)
	}
	if a, b := foldedText(t, cfg.Profile), foldedText(t, cfg2.Profile); a != b {
		t.Fatalf("profiles differ between identical runs:\n%s\nvs\n%s", a, b)
	}
	if !reflect.DeepEqual(cfg.Profile.Samples(), cfg2.Profile.Samples()) {
		t.Fatal("mesh queue-depth samples differ between identical runs")
	}
}

// TestProfileSweepDeterminism: per-run profiles — including the every-64th
// mesh queue-depth samples — are identical whether the batch runs on one
// sweep worker or several.
func TestProfileSweepDeterminism(t *testing.T) {
	collect := func(workers int) []*Profile {
		cfgs := make([]Config, 4)
		profs := make([]*Profile, len(cfgs))
		for i := range cfgs {
			cfgs[i] = fig6AGGConfig()
			cfgs[i].Arch = []Arch{AGG, NUMA, COMA, AGG}[i]
			profs[i] = NewProfile()
			cfgs[i].Profile = profs[i]
		}
		if _, err := (Sweep{Workers: workers}).RunMany(cfgs); err != nil {
			t.Fatal(err)
		}
		return profs
	}
	one := collect(1)
	four := collect(4)
	for i := range one {
		if a, b := foldedText(t, one[i]), foldedText(t, four[i]); a != b {
			t.Fatalf("config %d: folded profile differs between 1 and 4 workers:\n%s\nvs\n%s", i, a, b)
		}
		if !reflect.DeepEqual(one[i].Samples(), four[i].Samples()) {
			t.Fatalf("config %d: mesh samples differ between 1 and 4 workers", i)
		}
	}
}

func foldedText(t *testing.T, p *Profile) string {
	t.Helper()
	var b strings.Builder
	if err := WriteFoldedProfile(&b, p); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestBaselineRoundTrip: the regression harness compares a baseline against
// itself cleanly, catches an injected latency regression, and survives a
// JSON round trip.
func TestBaselineRoundTrip(t *testing.T) {
	b := &Baseline{Schema: BaselineSchema, Metrics: map[string]float64{
		"fft/NUMA/exec_cycles":   100000,
		"fft/NUMA/avg_read_lat":  250,
		"fft/NUMA/invalidations": 400,
	}}
	if bad := CompareBaselines(b, b); len(bad) != 0 {
		t.Fatalf("baseline does not match itself: %v", bad)
	}

	hot := &Baseline{Schema: BaselineSchema, Metrics: map[string]float64{
		"fft/NUMA/exec_cycles":   105000, // +5% > 2% tolerance
		"fft/NUMA/avg_read_lat":  250,
		"fft/NUMA/invalidations": 401, // +0.25% < 0.5% tolerance
	}}
	bad := CompareBaselines(hot, b)
	if len(bad) != 1 || !strings.Contains(bad[0], "exec_cycles") {
		t.Fatalf("injected regression not isolated: %v", bad)
	}

	var buf strings.Builder
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadBaseline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rt, b) {
		t.Fatalf("baseline JSON round trip changed it: %+v vs %+v", rt, b)
	}

	if _, err := ReadBaseline(strings.NewReader("{}")); err == nil {
		t.Fatal("metrics-less baseline accepted")
	}
	stale := &Baseline{Schema: BaselineSchema + 1, Metrics: b.Metrics}
	if bad := CompareBaselines(stale, b); len(bad) == 0 || !strings.Contains(bad[0], "schema") {
		t.Fatalf("schema mismatch not reported: %v", bad)
	}
}
