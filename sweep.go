package pimdsm

import (
	"runtime"
	"sync"
)

// Sweep executes batches of independent simulations on a bounded worker pool.
// Every figure in the paper is built from such a batch: the runs share no
// state, each is internally deterministic, and only the slowest run gates the
// wall-clock time, so the natural shape is a fixed set of workers pulling
// configurations from a queue.
//
// The zero value uses one worker per CPU. A Sweep may be reused and is safe
// for concurrent use; each RunMany call gets its own pool.
type Sweep struct {
	// Workers bounds the number of simulations in flight (and the number of
	// goroutines created — workers pull jobs, jobs do not spawn goroutines).
	// Zero or negative means runtime.NumCPU().
	Workers int

	// Progress, when non-nil, is called after each run completes with the
	// number of finished runs, the batch size, and the index of the run that
	// just finished. Calls are serialized (a mutex in the parallel path), so
	// the callback needs no locking of its own; see obs.StatusLine for a
	// ready-made live status line.
	Progress func(done, total, i int)

	// OnResult, when non-nil, is called with each run's index and result as
	// it completes (nil when that run failed) — a streaming hook for live
	// reporting before the whole batch finishes. Calls are serialized under
	// the same lock as Progress and arrive in completion order, which is not
	// input order in the parallel case.
	OnResult func(i int, r *Result)
}

// runSim is stubbed by tests to observe pool behavior.
var runSim = Run

// RunMany runs every configuration and returns the results in input order.
// The assignment of runs to workers does not affect the results: each run is
// deterministic given its Config, so results[i] depends only on cfgs[i].
//
// If any run fails, RunMany returns the error of the failing configuration
// with the smallest index (again independent of scheduling); the remaining
// runs still complete.
func (s Sweep) RunMany(cfgs []Config) ([]*Result, error) {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	if workers <= 1 {
		for i := range cfgs {
			results[i], errs[i] = runSim(cfgs[i])
			if s.OnResult != nil {
				s.OnResult(i, results[i])
			}
			if s.Progress != nil {
				s.Progress(i+1, len(cfgs), i)
			}
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		var mu sync.Mutex
		done := 0
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					results[i], errs[i] = runSim(cfgs[i])
					if s.OnResult != nil || s.Progress != nil {
						mu.Lock()
						done++
						if s.OnResult != nil {
							s.OnResult(i, results[i])
						}
						if s.Progress != nil {
							s.Progress(done, len(cfgs), i)
						}
						mu.Unlock()
					}
				}
			}()
		}
		for i := range cfgs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunMany runs every configuration on a default Sweep (one worker per CPU).
func RunMany(cfgs []Config) ([]*Result, error) {
	return Sweep{}.RunMany(cfgs)
}
