package workload

import (
	"testing"

	"pimdsm/internal/cpu"
)

func drain(t *testing.T, s cpu.Stream, limit int) []cpu.Op {
	t.Helper()
	var ops []cpu.Op
	for {
		op, ok := s.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
		if len(ops) > limit {
			t.Fatalf("stream exceeded %d ops", limit)
		}
	}
}

func allApps(t *testing.T) []App {
	t.Helper()
	var apps []App
	for _, n := range Names() {
		a, err := New(Spec{Name: n, Scale: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, a)
	}
	a, err := New(Spec{Name: "dbase-opt", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return append(apps, a)
}

func TestUnknownAppRejected(t *testing.T) {
	if _, err := New(Spec{Name: "doom"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := New(Spec{Name: "fft", Scale: -1}); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestStreamsAreDeterministic(t *testing.T) {
	for _, name := range []string{"fft", "radix", "barnes", "dbase"} {
		a1 := MustNew(Spec{Name: name, Scale: 0.05})
		a2 := MustNew(Spec{Name: name, Scale: 0.05})
		s1 := a1.Streams(4)
		s2 := a2.Streams(4)
		for tid := 0; tid < 4; tid++ {
			o1 := drain(t, s1[tid], 1<<22)
			o2 := drain(t, s2[tid], 1<<22)
			if len(o1) != len(o2) {
				t.Fatalf("%s thread %d: lengths %d vs %d", name, tid, len(o1), len(o2))
			}
			for i := range o1 {
				if o1[i] != o2[i] {
					t.Fatalf("%s thread %d op %d differs: %+v vs %+v", name, tid, i, o1[i], o2[i])
				}
			}
		}
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, a := range allApps(t) {
		fp := a.Footprint()
		for tid, s := range a.Streams(3) {
			for _, op := range drain(t, s, 1<<22) {
				switch op.Kind {
				case cpu.OpLoad, cpu.OpStore, cpu.OpAcquire, cpu.OpRelease, cpu.OpScan:
					if op.Addr >= fp {
						t.Fatalf("%s thread %d: address %#x outside footprint %#x (op %+v)", a.Name(), tid, op.Addr, fp, op)
					}
				}
			}
		}
	}
}

func TestBarriersBalancedAcrossThreads(t *testing.T) {
	const threads = 3
	for _, a := range allApps(t) {
		var barCount [threads]int
		for tid, s := range a.Streams(threads) {
			for _, op := range drain(t, s, 1<<22) {
				if op.Kind == cpu.OpBarrier {
					if int(op.N) != threads {
						t.Fatalf("%s: barrier with %d participants, want %d", a.Name(), op.N, threads)
					}
					barCount[tid]++
				}
			}
		}
		for tid := 1; tid < threads; tid++ {
			if barCount[tid] != barCount[0] {
				t.Fatalf("%s: thread %d has %d barriers, thread 0 has %d — deadlock", a.Name(), tid, barCount[tid], barCount[0])
			}
		}
		if barCount[0] == 0 {
			t.Fatalf("%s: no barriers at all", a.Name())
		}
	}
}

func TestLocksBalanced(t *testing.T) {
	for _, a := range allApps(t) {
		for tid, s := range a.Streams(2) {
			held := map[uint64]int{}
			acquires := 0
			for _, op := range drain(t, s, 1<<22) {
				switch op.Kind {
				case cpu.OpAcquire:
					held[op.Addr]++
					acquires++
				case cpu.OpRelease:
					held[op.Addr]--
					if held[op.Addr] < 0 {
						t.Fatalf("%s thread %d: release before acquire on %#x", a.Name(), tid, op.Addr)
					}
				}
			}
			for addr, n := range held {
				if n != 0 {
					t.Fatalf("%s thread %d: lock %#x left held", a.Name(), tid, addr)
				}
			}
			_ = acquires
		}
	}
}

func TestMeasuredPhaseMarkerPresent(t *testing.T) {
	for _, a := range allApps(t) {
		for tid, s := range a.Streams(2) {
			found := false
			for _, op := range drain(t, s, 1<<22) {
				if op.Kind == cpu.OpPhase && op.N == PhaseMeasured {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s thread %d: no PhaseMeasured marker", a.Name(), tid)
			}
		}
	}
}

func TestDbaseVariantsShareStructure(t *testing.T) {
	plain := MustNew(Spec{Name: "dbase", Scale: 0.05})
	opt := MustNew(Spec{Name: "dbase-opt", Scale: 0.05})
	if plain.Footprint() != opt.Footprint() {
		t.Fatalf("footprints differ: %d vs %d", plain.Footprint(), opt.Footprint())
	}
	// Opt replaces table traversal loads with scans.
	scans, loads := 0, 0
	for _, s := range opt.Streams(2) {
		for _, op := range drain(t, s, 1<<22) {
			switch op.Kind {
			case cpu.OpScan:
				scans++
			case cpu.OpLoad:
				loads++
			}
		}
	}
	if scans == 0 {
		t.Fatal("dbase-opt emits no scans")
	}
	plainLoads := 0
	for _, s := range plain.Streams(2) {
		for _, op := range drain(t, s, 1<<22) {
			if op.Kind == cpu.OpLoad {
				plainLoads++
			}
		}
	}
	if loads >= plainLoads {
		t.Fatalf("opt loads (%d) not fewer than plain loads (%d)", loads, plainLoads)
	}
}

func TestDbaseHasSecondPhase(t *testing.T) {
	a := MustNew(Spec{Name: "dbase", Scale: 0.05})
	for tid, s := range a.Streams(2) {
		found := false
		for _, op := range drain(t, s, 1<<22) {
			if op.Kind == cpu.OpPhase && op.N == PhaseSecond {
				found = true
			}
		}
		if !found {
			t.Fatalf("thread %d: no PhaseSecond marker", tid)
		}
	}
}

func TestScaleShrinksFootprint(t *testing.T) {
	big := MustNew(Spec{Name: "fft", Scale: 1})
	small := MustNew(Spec{Name: "fft", Scale: 0.1})
	if small.Footprint() >= big.Footprint() {
		t.Fatalf("scale 0.1 footprint %d not below scale 1 footprint %d", small.Footprint(), big.Footprint())
	}
}

func TestNonPowerOfTwoThreads(t *testing.T) {
	// The reconfiguration experiments run Dbase with 28 threads.
	a := MustNew(Spec{Name: "dbase", Scale: 0.05})
	streams := a.Streams(7)
	total := 0
	for _, s := range streams {
		total += len(drain(t, s, 1<<22))
	}
	if total == 0 {
		t.Fatal("no ops for 7 threads")
	}
}
