package workload

import (
	"math/rand/v2"

	"pimdsm/internal/cpu"
)

// barnes models the SPLASH-2 Barnes-Hut N-body code (Table 3: 16K bodies,
// 8K/32K caches). Tree build inserts each thread's bodies along short,
// pseudo-random, lock-protected paths (irregular write sharing); the force
// phase walks the read-mostly shared tree with *dependent* loads — pointer
// chasing that exposes full memory latency, making Barnes the
// latency-sensitive counterpoint to the streaming codes.
type barnes struct {
	bodies uint64 // 64 B each
	iters  int
	walk   int // tree nodes visited per body in the force phase
}

func newBarnes(scale float64) *barnes {
	return &barnes{bodies: scaleCount(16384, scale, 512), iters: 3, walk: 12}
}

func (b *barnes) Name() string { return "barnes" }

func (b *barnes) Footprint() uint64 {
	// Hot: body records + tree cells (2 per body). Cold but resident: the
	// remaining per-body state (velocities, accelerations, old positions)
	// that the real code keeps but the force loop does not stream over.
	return b.bodies*64 + 2*b.bodies*64 + b.coldBytes() + 1024*LineBytes
}

func (b *barnes) coldBytes() uint64 { return 6 * b.bodies * 64 }

func (b *barnes) Caches() (uint64, uint64) {
	return scaledCaches(b.Footprint(), 9<<20, 8<<10, 32<<10)
}

func (b *barnes) Streams(threads int) []cpu.Stream {
	var lay Layout
	bodies := lay.Region(b.bodies * 64)
	tree := lay.Region(2 * b.bodies * 64)
	cold := lay.Region(b.coldBytes())
	// The real code locks individual cells; model a large lock array so
	// contention stays low and spreads across many homes.
	const nLocks = 1024
	locks := lay.Region(nLocks * LineBytes)
	treeNodes := 2 * b.bodies

	streams := make([]cpu.Stream, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		streams[tid] = newStream(func(e *E) {
			rng := rand.New(rand.NewPCG(0xba57e5, uint64(tid)))
			blo, bhi := lineRange(b.bodies, tid, threads) // body index range

			for i := blo; i < bhi; i++ {
				e.Store(bodies + i*64)
				e.Compute(2)
			}
			initRegionCyclic(e, tree, treeNodes*64/LineBytes, tid, threads)
			initRegion(e, cold, b.coldBytes()/LineBytes, tid, threads)
			e.Barrier(threads)
			e.Phase(PhaseMeasured)

			// Walks concentrate near the root: the hot top ~0.5% of cells
			// absorb most steps and get replicated into every node's local
			// memory; deep visits cluster in a window that tracks the
			// body's spatial region (nearby bodies open the same cells).
			top := treeNodes / 200
			if top == 0 {
				top = 1
			}
			const window = 512
			for it := 0; it < b.iters; it++ {
				// Tree build: insert each owned body along a path from the
				// root (hot top cells) down to a leaf near the body's
				// region; the leaf update is lock-protected.
				for i := blo; i < bhi; i++ {
					wbase := (i * 2) % (treeNodes - window)
					for d := 0; d < 3; d++ {
						e.Load(tree + rng.Uint64N(top)*64) // dependent: path traversal
						e.Compute(15)
					}
					leaf := wbase + rng.Uint64N(window)
					e.Load(tree + leaf*64)
					lk := locks + (leaf%nLocks)*LineBytes
					e.Acquire(lk)
					e.Store(tree + leaf*64)
					e.Release(lk)
				}
				e.Barrier(threads)
				// Force computation: walk the shared tree (read-mostly,
				// dependent loads), then update the owned body.
				for i := blo; i < bhi; i++ {
					e.LoadI(bodies + i*64)
					wbase := (i * 2) % (treeNodes - window)
					for d := 0; d < b.walk; d++ {
						var node uint64
						if d%4 != 3 {
							node = rng.Uint64N(top)
						} else {
							node = wbase + rng.Uint64N(window)
						}
						e.Load(tree + node*64)
						e.Compute(25) // force contribution arithmetic
					}
					e.Store(bodies + i*64)
				}
				e.Barrier(threads)
			}
		})
	}
	return streams
}
