package workload

import "pimdsm/internal/cpu"

// fft models the SPLASH-2 complex 1-D FFT (Table 3: 64K points, scaled; 4K/16K
// caches): alternating local butterfly passes over each thread's chunk of the
// working arrays and all-to-all blocked transposes, separated by barriers.
// The transpose is the communication phase: every thread reads one sub-block
// from every other thread's partition — regular all-to-all traffic with
// independent (overlappable) accesses.
//
// Like the real code, only part of the resident footprint is hot: the data
// and transpose arrays are iterated every stage, while the preserved input
// and the twiddle/scratch arrays are written during initialization, read
// once, and then sit resident (they still occupy memory, which is what the
// memory-pressure experiments measure).
type fft struct {
	points uint64 // complex points, 16 B each, per hot array
	stages int
}

func newFFT(scale float64) *fft {
	return &fft{points: scaleCount(65536, scale, 256), stages: 3}
}

func (f *fft) Name() string { return "fft" }

func (f *fft) Footprint() uint64 {
	// data + trans (hot) + input copy + two scratch/twiddle arrays (cold).
	return 5 * f.points * 16
}

func (f *fft) Caches() (uint64, uint64) {
	return scaledCaches(f.Footprint(), 5<<20, 4<<10, 16<<10)
}

// lineRange splits lines among threads at line granularity (works for any
// thread count, including the non-power-of-two configurations the
// reconfiguration experiments use).
func lineRange(lines uint64, t, threads int) (lo, hi uint64) {
	return lines * uint64(t) / uint64(threads), lines * uint64(t+1) / uint64(threads)
}

func (f *fft) Streams(threads int) []cpu.Stream {
	var lay Layout
	arrBytes := f.points * 16
	data := lay.Region(arrBytes)
	trans := lay.Region(arrBytes)
	input := lay.Region(arrBytes)
	scratch1 := lay.Region(arrBytes)
	scratch2 := lay.Region(arrBytes)
	totalLines := arrBytes / LineBytes

	streams := make([]cpu.Stream, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		streams[tid] = newStream(func(e *E) {
			lo, hi := lineRange(totalLines, tid, threads)
			for _, base := range []uint64{data, trans, input, scratch1, scratch2} {
				initRegionCyclic(e, base, totalLines, tid, threads)
			}
			e.Barrier(threads)
			e.Phase(PhaseMeasured)

			// Read the preserved input once into the working array.
			for l := lo; l < hi; l++ {
				e.LoadI(input + l*LineBytes)
				e.Compute(4)
				e.Store(data + l*LineBytes)
			}
			e.Barrier(threads)

			cur, oth := data, trans
			for s := 0; s < f.stages; s++ {
				// Local butterfly passes over the owned chunk (two passes:
				// the chunk is the reused hot set).
				for pass := 0; pass < 2; pass++ {
					for l := lo; l < hi; l++ {
						e.LoadI(cur + l*LineBytes)
						e.Compute(64) // ~16 butterflies of ~16 issue slots
						e.Store(cur + l*LineBytes)
					}
				}
				e.Barrier(threads)
				// Blocked transpose: read sub-block tid of every thread's
				// chunk, write it into the owned rows of the other array.
				myLines := hi - lo
				for j := 0; j < threads; j++ {
					jlo, jhi := lineRange(totalLines, j, threads)
					slo, shi := lineRange(jhi-jlo, tid, threads)
					if shi == slo {
						shi = slo + 1 // tiny chunks: at least one line
					}
					w := lo
					for l := jlo + slo; l < jlo+shi && l < jhi; l++ {
						e.LoadI(cur + l*LineBytes)
						e.Compute(10)
						e.Store(oth + w*LineBytes)
						w++
						if w >= lo+myLines {
							w = lo
						}
					}
				}
				e.Barrier(threads)
				cur, oth = oth, cur
			}
		})
	}
	return streams
}
