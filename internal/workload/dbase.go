package workload

import (
	"math/rand/v2"

	"pimdsm/internal/cpu"
)

// dbase models TPC-D query 3 on a stand-alone system of tables (Table 3:
// 1 GB database scaled down, 64K/512K caches), parallelized by hand like the
// paper's version. It has the two phases §4.2 describes:
//
//   - Hash phase (D-node intensive): every thread streams a chunk of the
//     orders table with no reuse — record-at-a-time processing exposes the
//     miss latency — and inserts selected records into a shared hash table
//     under fine-grained locks, synchronizing often.
//   - Join phase (P-node friendly): threads take chunks of the lineitem
//     table, reuse each chunk across the two joins, and probe the shared
//     (read-mostly) hash table.
//
// The opt variant is the computation-in-memory optimization of §4.3: instead
// of P-nodes traversing the tables to find selectable records, the home
// D-nodes scan them and return only the selected records (OpScan), after
// which the P-node performs the join and invokes the D-node again.
type dbase struct {
	ordLines uint64 // orders table, in memory lines
	liLines  uint64 // lineitem table, in memory lines
	hashB    uint64 // hash table bytes
	opt      bool
}

func newDbase(scale float64, opt bool) *dbase {
	// Default ~14 MB total: the 1 GB database of Table 3 scaled 1/64ish,
	// preserving the orders:lineitem:hash proportions.
	return &dbase{
		ordLines: scaleCount(4<<20, scale, PageBytes) / LineBytes,
		liLines:  scaleCount(8<<20, scale, PageBytes) / LineBytes,
		hashB:    scaleCount(2<<20, scale, PageBytes),
		opt:      opt,
	}
}

func (d *dbase) Name() string {
	if d.opt {
		return "dbase-opt"
	}
	return "dbase"
}

func (d *dbase) Footprint() uint64 {
	out := d.liLines * LineBytes / 4
	return d.ordLines*LineBytes + d.liLines*LineBytes + d.hashB + out + PageBytes
}

func (d *dbase) Caches() (uint64, uint64) {
	return scaledCaches(d.Footprint(), 14<<20, 16<<10, 128<<10)
}

const (
	dbLocks      = 32 // one lock per memory line of the locks page
	linesPerScan = PageBytes / LineBytes
	selPerLine   = 4 // insert one record per 4 scanned lines
	hashSelBytes = PageBytes / 10
	joinSelBytes = PageBytes / 2
)

func (d *dbase) Streams(threads int) []cpu.Stream {
	var lay Layout
	orders := lay.Region(d.ordLines * LineBytes)
	lineitem := lay.Region(d.liLines * LineBytes)
	hash := lay.Region(d.hashB)
	locks := lay.Region(PageBytes)
	output := lay.Region(d.liLines * LineBytes / 4)

	hashLines := d.hashB / LineBytes

	streams := make([]cpu.Stream, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		streams[tid] = newStream(func(e *E) {
			rng := rand.New(rand.NewPCG(0xdba5e, uint64(tid)))

			// Warm-up: load the database (first-touch partitions the
			// tables round robin over the threads' homes).
			olo, ohi := lineRange(d.ordLines, tid, threads)
			llo, lhi := lineRange(d.liLines, tid, threads)
			initRegionCyclic(e, orders, d.ordLines, tid, threads)
			initRegionCyclic(e, lineitem, d.liLines, tid, threads)
			initRegionCyclic(e, hash, hashLines, tid, threads)
			e.Barrier(threads)
			e.Phase(PhaseMeasured)

			insert := func() {
				b := rng.Uint64N(hashLines)
				lk := locks + (b%dbLocks)*LineBytes
				e.Acquire(lk)
				e.Load(hash + b*LineBytes)
				e.Store(hash + b*LineBytes)
				e.Release(lk)
			}

			// --- Hash phase over the orders table ---
			if d.opt {
				for l := olo; l < ohi; l += linesPerScan {
					n := uint64(linesPerScan)
					if l+n > ohi {
						n = ohi - l
					}
					e.Scan(orders+l*LineBytes, int(n), hashSelBytes)
					e.Compute(uint32(n) * 10)
					for k := uint64(0); k < n/selPerLine; k++ {
						insert()
					}
				}
			} else {
				for l := olo; l < ohi; l++ {
					e.LoadI(orders + l*LineBytes)
					e.Compute(50) // parse 4 records, evaluate predicates
					if l%selPerLine == 0 {
						insert()
					}
				}
			}
			e.Barrier(threads)
			e.Phase(PhaseSecond)

			// --- Join phase over the lineitem table ---
			// Probes skew toward the hot buckets (recent order dates in
			// Q3): 3 of 4 probes land in the hottest 3% of the table,
			// which each node's local memory retains cheaply.
			hot := hashLines / 32
			probe := func() {
				var b uint64
				if rng.Uint64N(4) != 0 {
					b = rng.Uint64N(hot)
				} else {
					b = rng.Uint64N(hashLines)
				}
				e.Load(hash + b*LineBytes)
				e.Compute(40)
			}
			if d.opt {
				for l := llo; l < lhi; l += linesPerScan {
					n := uint64(linesPerScan)
					if l+n > lhi {
						n = lhi - l
					}
					e.Scan(lineitem+l*LineBytes, int(n), joinSelBytes)
					for pass := 0; pass < 2; pass++ {
						for k := uint64(0); k < n/2; k++ {
							probe()
							if k%4 == 0 {
								e.Store(output + (l+k)*LineBytes/4)
							}
						}
					}
					e.Compute(uint32(n) * 150) // join + aggregate the selected records
				}
			} else {
				for pass := 0; pass < 2; pass++ {
					for l := llo; l < lhi; l++ {
						e.LoadI(lineitem + l*LineBytes)
						e.Compute(500) // join processing: 4 records x ~500 instr
						probe()
						if l%4 == 0 {
							e.Store(output + l*LineBytes/4)
						}
					}
				}
				// Final aggregation/sort pass over the (now local) chunk:
				// Q3 groups and orders the join output.
				for l := llo; l < lhi; l++ {
					e.LoadI(lineitem + l*LineBytes)
					e.Compute(250) // aggregation and sort contribution
				}
			}
			e.Barrier(threads)
		})
	}
	return streams
}
