package workload

import (
	"math/rand/v2"

	"pimdsm/internal/cpu"
)

// radix models the SPLASH-2 integer radix sort (Table 3: 1M keys, 1K radix,
// 8K/32K caches). Each digit iteration has three phases: a local histogram
// pass over the thread's keys (streaming, independent loads), a
// lock-protected accumulation into the shared global histogram (heavy
// synchronization), and the permutation phase that scatters each thread's
// keys across the whole destination array — the irregular all-to-all *write*
// traffic that makes Radix the most coherence-intensive SPLASH-2 code.
type radix struct {
	keys   uint64 // 4 B each
	rdx    uint64 // radix buckets
	digits int
}

func newRadix(scale float64) *radix {
	return &radix{keys: scaleCount(1<<20, scale, 1024), rdx: 1024, digits: 2}
}

func (r *radix) Name() string { return "radix" }

func (r *radix) Footprint() uint64 {
	// keys + destination + global histogram (+ locks page).
	return 2*r.keys*4 + r.rdx*4 + PageBytes
}

func (r *radix) Caches() (uint64, uint64) {
	return scaledCaches(r.Footprint(), 8<<20, 8<<10, 32<<10)
}

func (r *radix) Streams(threads int) []cpu.Stream {
	var lay Layout
	keys := lay.Region(r.keys * 4)
	dst := lay.Region(r.keys * 4)
	hist := lay.Region(r.rdx * 4)
	locks := lay.Region(PageBytes)
	const nLocks = 16

	keyLines := r.keys * 4 / LineBytes
	histLines := (r.rdx*4 + LineBytes - 1) / LineBytes

	streams := make([]cpu.Stream, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		streams[tid] = newStream(func(e *E) {
			rng := rand.New(rand.NewPCG(0xad1c5, uint64(tid)))
			lo, hi := lineRange(keyLines, tid, threads)
			initRegionCyclic(e, keys, keyLines, tid, threads)
			initRegionCyclic(e, dst, keyLines, tid, threads)
			initRegionCyclic(e, hist, histLines, tid, threads)
			e.Barrier(threads)
			e.Phase(PhaseMeasured)

			from, to := keys, dst
			for d := 0; d < r.digits; d++ {
				// Local histogram over the owned keys (private counters
				// stay cache-resident: modeled as compute).
				for l := lo; l < hi; l++ {
					e.LoadI(from + l*LineBytes)
					e.Compute(40) // 32 keys: extract digit, bump counter
				}
				e.Barrier(threads)
				// Global accumulation: lock-protected sections of the
				// shared histogram, staggered to avoid total convoying.
				for s := 0; s < nLocks; s++ {
					sec := (tid + s) % nLocks
					e.Acquire(locks + uint64(sec)*LineBytes)
					slo, shi := lineRange(histLines, sec, nLocks)
					if shi == slo {
						shi = slo + 1
					}
					for l := slo; l < shi && l < histLines; l++ {
						e.Load(hist + l*LineBytes)
						e.Store(hist + l*LineBytes)
					}
					e.Release(locks + uint64(sec)*LineBytes)
					e.Compute(4)
				}
				e.Barrier(threads)
				// Permutation: every owned key line scatters to
				// pseudo-random destination lines across the whole array.
				for l := lo; l < hi; l++ {
					e.LoadI(from + l*LineBytes)
					e.Compute(30)
					for k := 0; k < 4; k++ {
						target := rng.Uint64N(keyLines)
						e.Store(to + target*LineBytes)
					}
				}
				e.Barrier(threads)
				from, to = to, from
			}
		})
	}
	return streams
}
