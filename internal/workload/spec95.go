package workload

import "pimdsm/internal/cpu"

// swim models SPEC95 Swim (Table 3: reference problem, 32K/128K caches): a
// shallow-water finite-difference code auto-parallelized by SUIF. Threads
// stream over block-row partitions of several large grids with very high
// memory-level parallelism, almost no sharing beyond block boundaries, and a
// barrier per time step. Its secondary working set does not fit in the L2
// (Table 3), so it exercises the local-memory level hard.
type swim struct {
	g      uint64 // grid dimension (doubles)
	arrays int
	iters  int
}

func newSwim(scale float64) *swim {
	g := uint64(512)
	switch {
	case scale >= 4:
		g = 1024
	case scale >= 1:
		g = 512
	case scale >= 0.25:
		g = 256
	default:
		g = 128
	}
	return &swim{g: g, arrays: 8, iters: 5}
}

func (s *swim) Name() string      { return "swim" }
func (s *swim) Footprint() uint64 { return uint64(s.arrays) * s.g * s.g * 8 }
func (s *swim) Caches() (uint64, uint64) {
	return scaledCaches(s.Footprint(), 16<<20, 32<<10, 128<<10)
}

func (s *swim) Streams(threads int) []cpu.Stream {
	return gridStreams(threads, s.g, s.arrays, s.iters, 90, 2)
}

// tomcatv models SPEC95 Tomcatv (Table 3: reference problem, 64K/256K
// caches): a vectorized mesh-generation code, similar streaming structure to
// Swim but with more computation per element and fewer arrays.
type tomcatv struct {
	g      uint64
	arrays int
	iters  int
}

func newTomcatv(scale float64) *tomcatv {
	g := uint64(512)
	switch {
	case scale >= 4:
		g = 1024
	case scale >= 1:
		g = 512
	case scale >= 0.25:
		g = 256
	default:
		g = 128
	}
	return &tomcatv{g: g, arrays: 7, iters: 5}
}

func (t *tomcatv) Name() string      { return "tomcatv" }
func (t *tomcatv) Footprint() uint64 { return uint64(t.arrays) * t.g * t.g * 8 }
func (t *tomcatv) Caches() (uint64, uint64) {
	return scaledCaches(t.Footprint(), 14<<20, 32<<10, 128<<10)
}

func (t *tomcatv) Streams(threads int) []cpu.Stream {
	return gridStreams(threads, t.g, t.arrays, t.iters, 110, 1)
}

// gridStreams builds the common SPEC95 pattern: arrays block-row partitioned
// grids; each iteration streams every owned row of every array (reads from
// two source arrays, writes one), with computePerLine cycles of work and
// srcReads independent loads per written line, and a barrier per iteration.
func gridStreams(threads int, g uint64, arrays, iters int, computePerLine uint32, srcReads int) []cpu.Stream {
	var lay Layout
	bases := make([]uint64, arrays)
	for i := range bases {
		bases[i] = lay.Region(g * g * 8)
	}
	rowBytes := g * 8
	rowLines := rowBytes / LineBytes

	streams := make([]cpu.Stream, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		streams[tid] = newStream(func(e *E) {
			rlo, rhi := lineRange(g, tid, threads)

			// SUIF parallelizes the initialization loops on a different
			// schedule than the compute loops, so first-touch placement is
			// effectively scattered: page k of each grid lands on thread
			// k mod threads. This is the "programs that certainly do not
			// exhibit good locality" case motivating the paper — a plain
			// CC-NUMA keeps paying remote accesses for it, while AGG/COMA
			// attract the rows into the local memory once.
			for _, base := range bases {
				initRegionCyclic(e, base, g*g*8/LineBytes, tid, threads)
			}
			e.Barrier(threads)
			e.Phase(PhaseMeasured)

			for it := 0; it < iters; it++ {
				// The same few grids are updated every time step (u, v, p in
				// the real codes); the remaining arrays are resident but
				// cold after initialization.
				dst := bases[0]
				for k := rlo; k < rhi; k++ {
					r := k
					// The block's first row touches a neighbour's row of
					// the first source array.
					if k == rlo && r > 0 {
						for l := uint64(0); l < rowLines; l += 4 {
							e.LoadI(bases[1] + (r-1)*rowBytes + l*LineBytes)
						}
					}
					for l := uint64(0); l < rowLines; l++ {
						for sr := 0; sr < srcReads; sr++ {
							src := bases[1+sr]
							e.LoadI(src + r*rowBytes + l*LineBytes)
						}
						e.Compute(computePerLine)
						e.Store(dst + r*rowBytes + l*LineBytes)
					}
				}
				e.Barrier(threads)
			}
		})
	}
	return streams
}
