// Package workload provides synthetic versions of the seven applications in
// the paper's evaluation (Table 3): FFT, Radix, Ocean and Barnes from
// SPLASH-2; Swim and Tomcatv from SPEC95; and Dbase (TPC-D query 3).
//
// The real binaries were run under a MINT-based execution-driven simulator;
// here each application is a deterministic generator of per-thread operation
// streams that reproduces its documented phase structure, sharing pattern
// and locality — the properties that differentiate the architectures under
// study. Problem sizes follow Table 3, scaled by a Spec.Scale factor so a
// full figure regeneration finishes in minutes (scaling preserves the
// footprint/DRAM ratio, i.e. memory pressure, which is the evaluation's
// controlled variable).
//
// Every application begins with a parallel initialization phase in which
// each thread writes its partition of the data (the standard SPLASH first-
// touch warm-up); the measured region starts at the OpPhase marker
// PhaseMeasured.
package workload

import (
	"fmt"
	"iter"

	"pimdsm/internal/cpu"
)

// Phase numbers every app uses.
const (
	// PhaseMeasured marks the end of warm-up initialization: measurement
	// (and Figure 6/7 accounting) starts here.
	PhaseMeasured = 1
	// PhaseSecond marks the second application phase where one exists
	// (Dbase: hash -> join), used by the reconfiguration experiments.
	PhaseSecond = 2
)

// App is one benchmark application.
type App interface {
	// Name returns the Table 3 name.
	Name() string
	// Footprint returns the shared-data footprint in bytes; memory
	// pressure = Footprint / total machine DRAM.
	Footprint() uint64
	// Caches returns the Table 3 L1 and L2 capacities in bytes.
	Caches() (l1, l2 uint64)
	// Streams returns one deterministic op stream per thread.
	Streams(threads int) []cpu.Stream
}

// Spec selects and sizes an application.
type Spec struct {
	Name string
	// Scale multiplies the default (Table 3-derived) problem size.
	// 1.0 is the calibrated default used by the figure harness.
	Scale float64
}

// New builds the named application. Valid names are in Names.
func New(spec Spec) (App, error) {
	s := spec.Scale
	if s == 0 {
		s = 1.0
	}
	if s < 0 {
		return nil, fmt.Errorf("workload: negative scale %v", s)
	}
	switch spec.Name {
	case "fft":
		return newFFT(s), nil
	case "radix":
		return newRadix(s), nil
	case "ocean":
		return newOcean(s), nil
	case "barnes":
		return newBarnes(s), nil
	case "swim":
		return newSwim(s), nil
	case "tomcatv":
		return newTomcatv(s), nil
	case "dbase":
		return newDbase(s, false), nil
	case "dbase-opt":
		// Computation-in-memory variant (§2.4): D-nodes traverse the tables.
		return newDbase(s, true), nil
	}
	return nil, fmt.Errorf("workload: unknown application %q", spec.Name)
}

// Names lists the available applications in the paper's order.
func Names() []string {
	return []string{"fft", "radix", "ocean", "barnes", "swim", "tomcatv", "dbase"}
}

// MustNew is New, panicking on error.
func MustNew(spec Spec) App {
	a, err := New(spec)
	if err != nil {
		panic(err)
	}
	return a
}

// --- stream plumbing ---

type stopGen struct{}

// batchOps is how many ops cross the generator coroutine boundary at once.
// iter.Pull costs a goroutine switch per pull; batching amortizes it to a
// switch per batchOps ops, which takes the stream plumbing out of the
// simulator's profile.
const batchOps = 256

type pullStream struct {
	buf  []cpu.Op
	i    int
	next func() ([]cpu.Op, bool)
}

func (p *pullStream) Next() (cpu.Op, bool) {
	if p.i >= len(p.buf) {
		buf, ok := p.next()
		if !ok {
			return cpu.Op{}, false
		}
		p.buf, p.i = buf, 0
	}
	op := p.buf[p.i]
	p.i++
	return op, true
}

// newStream converts a generator function into a lazily-pulled cpu.Stream.
// The generator writes ops through the emitter; if the consumer abandons the
// stream, emission panics internally with stopGen and unwinds cleanly.
//
// The same batch buffer is yielded every time: the generator only resumes
// when the consumer pulls again, i.e. after the previous batch is fully
// drained, so refilling in place is safe.
func newStream(gen func(e *E)) cpu.Stream {
	seq := iter.Seq[[]cpu.Op](func(yield func([]cpu.Op) bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopGen); !ok {
					panic(r)
				}
			}
		}()
		e := &E{yield: yield, buf: make([]cpu.Op, 0, batchOps)}
		gen(e)
		if len(e.buf) > 0 {
			yield(e.buf)
		}
	})
	next, _ := iter.Pull(seq)
	return &pullStream{next: next}
}

// E emits operations from a workload generator.
type E struct {
	yield func([]cpu.Op) bool
	buf   []cpu.Op
}

func (e *E) emit(op cpu.Op) {
	e.buf = append(e.buf, op)
	if len(e.buf) == batchOps {
		if !e.yield(e.buf) {
			panic(stopGen{})
		}
		e.buf = e.buf[:0]
	}
}

// Load emits a blocking (dependent) load.
func (e *E) Load(addr uint64) { e.emit(cpu.Op{Kind: cpu.OpLoad, Addr: addr}) }

// LoadI emits an independent (overlappable) load.
func (e *E) LoadI(addr uint64) { e.emit(cpu.Op{Kind: cpu.OpLoad, Addr: addr, Indep: true}) }

// Store emits a buffered store.
func (e *E) Store(addr uint64) { e.emit(cpu.Op{Kind: cpu.OpStore, Addr: addr}) }

// Compute emits n cycles of instruction execution.
func (e *E) Compute(n uint32) {
	if n > 0 {
		e.emit(cpu.Op{Kind: cpu.OpCompute, N: n})
	}
}

// Barrier emits a barrier among parts threads.
func (e *E) Barrier(parts int) { e.emit(cpu.Op{Kind: cpu.OpBarrier, N: uint32(parts)}) }

// Acquire emits a lock acquire on addr.
func (e *E) Acquire(addr uint64) { e.emit(cpu.Op{Kind: cpu.OpAcquire, Addr: addr}) }

// Release emits the matching release.
func (e *E) Release(addr uint64) { e.emit(cpu.Op{Kind: cpu.OpRelease, Addr: addr}) }

// Phase emits a phase marker.
func (e *E) Phase(n int) { e.emit(cpu.Op{Kind: cpu.OpPhase, N: uint32(n)}) }

// Scan emits a computation-in-memory scan of lines memory lines at addr
// returning selBytes of selected records.
func (e *E) Scan(addr uint64, lines int, selBytes uint32) {
	e.emit(cpu.Op{Kind: cpu.OpScan, Addr: addr, N: uint32(lines), SelBytes: selBytes})
}

// --- address-space layout ---

const (
	// LineBytes is the machine's memory line size (Table 1).
	LineBytes = 128
	// PageBytes is the OS page size.
	PageBytes = 4096
)

// Layout hands out page-aligned regions of the shared address space.
type Layout struct{ next uint64 }

// Region reserves bytes (rounded up to whole pages) and returns its base.
func (l *Layout) Region(bytes uint64) uint64 {
	base := l.next
	pages := (bytes + PageBytes - 1) / PageBytes
	l.next += pages * PageBytes
	return base
}

// Size returns the total bytes reserved so far.
func (l *Layout) Size() uint64 { return l.next }

// initRegion first-touch writes a thread's block partition of a region:
// pages end up homed at their compute owner (the placement-friendly case).
func initRegion(e *E, base, lines uint64, tid, threads int) {
	lo, hi := lineRange(lines, tid, threads)
	for l := lo; l < hi; l++ {
		e.Store(base + l*LineBytes)
		e.Compute(2)
	}
}

// initRegionCyclic first-touch writes a region page-cyclically: page k is
// touched by thread k mod threads, so first-touch placement spreads the
// region round robin over the machine. This models SPLASH-2's shared global
// structures, whose unoptimized placement is what hurts the paper's simple
// CC-NUMA: a thread's compute partition then spans pages homed (almost)
// everywhere, while AGG and COMA simply attract the lines into the local
// memory on first use.
func initRegionCyclic(e *E, base, lines uint64, tid, threads int) {
	linesPerPage := uint64(PageBytes / LineBytes)
	pages := (lines + linesPerPage - 1) / linesPerPage
	for p := uint64(tid); p < pages; p += uint64(threads) {
		for l := p * linesPerPage; l < (p+1)*linesPerPage && l < lines; l++ {
			e.Store(base + l*LineBytes)
		}
		e.Compute(8)
	}
}

// scaledCaches shrinks an application's Table 3 cache sizes when the
// problem is scaled below its calibrated footprint, preserving the paper's
// fit relations (the local memory at 75% pressure must stay larger than the
// L2, and the L2 smaller than a thread's working set).
func scaledCaches(fp, calibratedFP, l1, l2 uint64) (uint64, uint64) {
	for fp < calibratedFP && l2 > 4096 {
		calibratedFP /= 2
		l1 /= 2
		l2 /= 2
	}
	if l1 < 1024 {
		l1 = 1024
	}
	return l1, l2
}

// roundPow2 returns the largest power of two ≤ v (v ≥ 1).
func roundPow2(v uint64) uint64 {
	p := uint64(1)
	for p*2 <= v {
		p *= 2
	}
	return p
}

// scaleCount scales a count, keeping it a positive multiple of quantum.
func scaleCount(base uint64, scale float64, quantum uint64) uint64 {
	v := uint64(float64(base) * scale)
	if v < quantum {
		return quantum
	}
	return v / quantum * quantum
}
