package workload

import "pimdsm/internal/cpu"

// ocean models the SPLASH-2 Ocean current simulation (Table 3: 256x256 grid,
// 8K/32K caches). Real Ocean keeps ~25 per-point grids; we model 8. Each
// iteration sweeps the block-row partition reading two source grids and
// writing a third (rotating through the set), reads only the boundary rows
// of the two neighbour threads — classic nearest-neighbour sharing — and
// ends with a lock-protected global error reduction and a barrier.
type ocean struct {
	g      uint64 // grid is g x g doubles
	arrays int
	iters  int
}

func newOcean(scale float64) *ocean {
	g := uint64(256)
	switch {
	case scale >= 4:
		g = 512
	case scale >= 1:
		g = 256
	case scale >= 0.25:
		g = 128
	default:
		g = 64
	}
	return &ocean{g: g, arrays: 12, iters: 6}
}

func (o *ocean) Name() string      { return "ocean" }
func (o *ocean) Footprint() uint64 { return uint64(o.arrays)*o.g*o.g*8 + PageBytes }
func (o *ocean) Caches() (uint64, uint64) {
	return scaledCaches(o.Footprint(), 6<<20, 8<<10, 32<<10)
}

func (o *ocean) Streams(threads int) []cpu.Stream {
	var lay Layout
	bases := make([]uint64, o.arrays)
	for i := range bases {
		bases[i] = lay.Region(o.g * o.g * 8)
	}
	shared := lay.Region(PageBytes) // global reduction scalar + its lock
	redLock := shared
	redVal := shared + LineBytes

	rowBytes := o.g * 8
	rowLines := rowBytes / LineBytes

	streams := make([]cpu.Stream, threads)
	for tid := 0; tid < threads; tid++ {
		tid := tid
		streams[tid] = newStream(func(e *E) {
			rlo, rhi := lineRange(o.g, tid, threads)
			row := func(base uint64, r uint64) uint64 { return base + r*rowBytes }

			for _, base := range bases {
				for r := rlo; r < rhi; r++ {
					for l := uint64(0); l < rowLines; l++ {
						e.Store(row(base, r) + l*LineBytes)
					}
					e.Compute(uint32(rowLines))
				}
			}
			e.Barrier(threads)
			e.Phase(PhaseMeasured)

			for it := 0; it < o.iters; it++ {
				// The solver updates the same few grids every iteration;
				// the other fields stay resident but cold.
				rd1 := bases[0]
				rd2 := bases[1]
				wr := bases[2]
				for r := rlo; r < rhi; r++ {
					// Boundary rows read one row owned by a neighbour.
					if r == rlo && r > 0 {
						for l := uint64(0); l < rowLines; l++ {
							e.LoadI(row(rd1, r-1) + l*LineBytes)
						}
					}
					if r == rhi-1 && r+1 < o.g {
						for l := uint64(0); l < rowLines; l++ {
							e.LoadI(row(rd1, r+1) + l*LineBytes)
						}
					}
					for l := uint64(0); l < rowLines; l++ {
						e.LoadI(row(rd1, r) + l*LineBytes)
						e.LoadI(row(rd2, r) + l*LineBytes)
						e.Compute(50) // 16-point stencil update
						e.Store(row(wr, r) + l*LineBytes)
					}
				}
				// Global error reduction: one hot lock-protected line.
				e.Acquire(redLock)
				e.Load(redVal)
				e.Store(redVal)
				e.Release(redLock)
				e.Barrier(threads)
			}
		})
	}
	return streams
}
