package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"pimdsm/internal/obs"
)

// telemetrySpec is spec1 with the flight recorder opted in.
func telemetrySpec(app string) JobSpec {
	spec := spec1(app)
	spec.Telemetry = true
	return spec
}

// TestTelemetryJobRecordsArtifacts: a telemetry job finishes with all three
// flight-recorder artifacts fetchable (in-memory path, no store configured),
// while a plain job 404s with ErrArtifactNotRecorded — the metrics/spans
// parity behavior.
func TestTelemetryJobRecordsArtifacts(t *testing.T) {
	fr := &fakeRunner{}
	s, err := New(Options{Workers: 1, Run: fr.run})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	st, err := s.Submit(telemetrySpec("fft"))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, s, st.ID)
	if !fin.Telemetry || fin.State != JobDone {
		t.Fatalf("telemetry job status: %+v", fin)
	}
	j, _ := s.Job(st.ID)
	prof, err := s.Artifact(j, ArtifactProfile)
	if err != nil {
		t.Fatalf("profile artifact: %v", err)
	}
	var snap obs.ProfileSnapshot
	if err := json.Unmarshal(prof, &snap); err != nil {
		t.Fatalf("profile artifact is not a snapshot: %v\n%s", err, prof)
	}
	if _, err := s.Artifact(j, ArtifactFolded); err != nil {
		t.Fatalf("folded artifact: %v", err)
	}
	dec, err := s.Artifact(j, ArtifactDecompose)
	if err != nil {
		t.Fatalf("decompose artifact: %v", err)
	}
	var sb obs.SpanBreakdown
	if err := json.Unmarshal(dec, &sb); err != nil {
		t.Fatalf("decompose artifact is not a breakdown: %v\n%s", err, dec)
	}
	if sb.Label != st.ID {
		t.Fatalf("decompose label %q, want the job id %s", sb.Label, st.ID)
	}

	// A job that never opted in has nothing recorded.
	plain, err := s.Submit(spec1("radix"))
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitJob(t, s, plain.ID); fin.Telemetry {
		t.Fatalf("plain job reports telemetry: %+v", fin)
	}
	jp, _ := s.Job(plain.ID)
	if _, err := s.Artifact(jp, ArtifactProfile); err != ErrArtifactNotRecorded {
		t.Fatalf("plain job artifact: %v, want ErrArtifactNotRecorded", err)
	}
	if _, err := s.Artifact(j, "bogus"); err == nil {
		t.Fatal("unknown artifact kind did not error")
	}
}

// TestTelemetryHeadSampling: -telemetry-sample N records every Nth
// submission as if it had asked for telemetry itself.
func TestTelemetryHeadSampling(t *testing.T) {
	fr := &fakeRunner{}
	s, err := New(Options{Workers: 1, Run: fr.run, TelemetrySample: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	want := map[int]bool{1: false, 2: true, 3: false, 4: true}
	for i := 1; i <= 4; i++ {
		st, err := s.Submit(spec1([]string{"fft", "radix", "lu", "ocean"}[i-1]))
		if err != nil {
			t.Fatal(err)
		}
		if fin := waitJob(t, s, st.ID); fin.Telemetry != want[i] {
			t.Fatalf("submission %d: telemetry=%v, want %v", i, fin.Telemetry, want[i])
		}
	}
}

// TestHTTPArtifactEndpoints: the three endpoints serve a telemetry job's
// record with the right content types, and the 404 bodies tell the caller
// exactly how to get the artifact to exist — same actionable shape as the
// metrics/spans 404s.
func TestHTTPArtifactEndpoints(t *testing.T) {
	fr := &fakeRunner{}
	_, c := startAPI(t, Options{Workers: 1, Run: fr.run})

	st, err := c.Submit(telemetrySpec("fft"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil || !fin.Telemetry {
		t.Fatalf("wait: %+v, %v", fin, err)
	}
	if b, err := c.Profile(st.ID); err != nil || !json.Valid(b) {
		t.Fatalf("profile over HTTP: %v, %.60s", err, b)
	}
	if _, err := c.Folded(st.ID); err != nil {
		t.Fatalf("folded over HTTP: %v", err)
	}
	if b, err := c.Decompose(st.ID); err != nil || !json.Valid(b) {
		t.Fatalf("decompose over HTTP: %v, %.60s", err, b)
	}

	// Parity 404 for a job that never asked for telemetry.
	plain, err := c.Submit(spec1("radix"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, plain.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	code, body := httpBody(t, c, "/api/v1/jobs/"+plain.ID+"/profile")
	if code != http.StatusNotFound || !bytes.Contains(body, []byte(`submit with \"telemetry\": true`)) {
		t.Fatalf("plain job profile: %d %s, want an actionable 404", code, body)
	}
}

func httpBody(t *testing.T, c *Client, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + c.Base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestHTTPArtifactEvicted: with a store configured the store is
// authoritative; an artifact the byte bound evicted 404s with the
// "not in the artifact store" body instead of silently falling back.
func TestHTTPArtifactEvicted(t *testing.T) {
	fr := &fakeRunner{}
	// A 1-byte bound: after recordFlight's three puts only the last written
	// artifact is resident, the other two are evicted.
	s, c := startAPI(t, Options{
		Workers: 1, Run: fr.run,
		ArtifactDir: t.TempDir(), ArtifactBytes: 1,
	})
	st, err := c.Submit(telemetrySpec("fft"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	served, evicted := 0, 0
	for _, kind := range []string{ArtifactProfile, ArtifactFolded, ArtifactDecompose} {
		code, body := httpBody(t, c, "/api/v1/jobs/"+st.ID+"/"+kind)
		switch code {
		case http.StatusOK:
			served++
		case http.StatusNotFound:
			if !bytes.Contains(body, []byte("not in the artifact store")) {
				t.Fatalf("%s 404 body not actionable: %s", kind, body)
			}
			evicted++
		default:
			t.Fatalf("%s: unexpected status %d: %s", kind, code, body)
		}
	}
	if served != 1 || evicted != 2 {
		t.Fatalf("%d served, %d evicted, want 1/2 under a 1-byte bound", served, evicted)
	}
	ast := s.ArtifactStore().Stats()
	if ast.Puts != 3 || ast.Evictions != 2 || ast.Count != 1 {
		t.Fatalf("store stats: %+v", ast)
	}
	// The store counters surface through the stats endpoint too.
	stats, err := c.Stats()
	if err != nil || stats.Artifacts.Puts != 3 {
		t.Fatalf("stats over HTTP: %+v, %v", stats.Artifacts, err)
	}
}

// TestTelemetryStoreSurvivesRestart: the flight record is content-addressed
// and the store index persists on Shutdown — a restarted server serves the
// original record for a resubmission even though every config is now a cache
// hit (which records nothing and must not overwrite the real record).
func TestTelemetryStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cache := dir + "/cache.json"
	art := dir + "/artifacts"
	fr := &fakeRunner{}
	opt := Options{Workers: 1, Run: fr.run, CachePath: cache, ArtifactDir: art}

	s1, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s1.Submit(telemetrySpec("fft"))
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitJob(t, s1, st.ID); fin.Simulated != 1 {
		t.Fatalf("first run: %+v", fin)
	}
	j1, _ := s1.Job(st.ID)
	prof1, err := s1.Artifact(j1, ArtifactProfile)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	if got := s2.ArtifactStore().Stats().Count; got != 3 {
		t.Fatalf("restored store holds %d artifacts, want 3", got)
	}
	st2, err := s2.Submit(telemetrySpec("fft"))
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitJob(t, s2, st2.ID); fin.CacheHits != 1 || fin.Simulated != 0 {
		t.Fatalf("post-restart resubmission: %+v, want a pure cache hit", fin)
	}
	j2, _ := s2.Job(st2.ID)
	prof2, err := s2.Artifact(j2, ArtifactProfile)
	if err != nil {
		t.Fatalf("restarted server lost the flight record: %v", err)
	}
	if !bytes.Equal(prof1, prof2) {
		t.Fatal("restarted server served a different flight record than the original run's")
	}
	if got := fr.calls.Load(); got != 1 {
		t.Fatalf("runner called %d times across the restart, want 1", got)
	}
}

// TestTelemetryRecordOnly is the record-only gate at the serve layer, with
// real simulations: the result bytes a telemetry job serves are identical to
// a plain job's for the same configuration, and the record itself is rich
// (real cycles attributed, real transactions decomposed) — proof the
// recorder observed the run without perturbing it.
func TestTelemetryRecordOnly(t *testing.T) {
	cfg := ConfigSpec{Arch: "agg", App: "fft", Scale: 0.02, Threads: 4, Pressure: 0.75, DRatio: 1}

	plain, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Shutdown(context.Background())
	stP, err := plain.Submit(JobSpec{Configs: []ConfigSpec{cfg}})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, plain, stP.ID)
	jP, _ := plain.Job(stP.ID)
	_, jsP, ok := plain.Results(jP)
	if !ok {
		t.Fatal("plain job results unavailable")
	}

	tele, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Shutdown(context.Background())
	stT, err := tele.Submit(JobSpec{Telemetry: true, Configs: []ConfigSpec{cfg}})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, tele, stT.ID)
	jT, _ := tele.Job(stT.ID)
	_, jsT, ok := tele.Results(jT)
	if !ok {
		t.Fatal("telemetry job results unavailable")
	}

	if len(jsP) != 1 || len(jsT) != 1 || !bytes.Equal(jsP[0], jsT[0]) {
		t.Fatalf("flight recorder changed the result bytes:\n%s\nvs\n%s", jsP[0], jsT[0])
	}

	prof, err := tele.Artifact(jT, ArtifactProfile)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.ProfileSnapshot
	if err := json.Unmarshal(prof, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ExecCycles == 0 || snap.PNodes == 0 || len(snap.PCycles) == 0 {
		t.Fatalf("profile snapshot of a real run is empty: %+v", snap)
	}
	folded, err := tele.Artifact(jT, ArtifactFolded)
	if err != nil || len(folded) == 0 {
		t.Fatalf("folded artifact of a real run: %d bytes, %v", len(folded), err)
	}
	dec, err := tele.Artifact(jT, ArtifactDecompose)
	if err != nil {
		t.Fatal(err)
	}
	var sb obs.SpanBreakdown
	if err := json.Unmarshal(dec, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Retired == 0 || sb.AvgLat <= 0 {
		t.Fatalf("decompose of a real run is empty: %+v", sb)
	}
}
