package serve

import (
	"testing"

	"pimdsm/internal/machine"
	"pimdsm/internal/obs"
	"pimdsm/internal/workload"
)

// TestKeyGolden pins the cache-key derivation: these exact values are what
// a persisted cache index is verified against, so they may change only
// together with a KeyVersion bump (which invalidates persisted indexes
// deliberately). If this test fails, you changed the key contract.
func TestKeyGolden(t *testing.T) {
	cases := []struct {
		name string
		spec ConfigSpec
		seed uint64
		want uint64
	}{
		{
			name: "fig6-numa",
			spec: ConfigSpec{Arch: "numa", App: "fft", Scale: 1.0, Threads: 32, Pressure: 0.75},
			want: 0xbe307a4db1904cbd,
		},
		{
			name: "fig6-agg11",
			spec: ConfigSpec{Arch: "agg", App: "fft", Scale: 1.0, Threads: 32, Pressure: 0.75, DRatio: 1},
			want: 0xe076f3f61cf24050,
		},
		{
			name: "seeded",
			spec: ConfigSpec{Arch: "agg", App: "ocean", Scale: 0.5, Threads: 16, Pressure: 0.25, DRatio: 2},
			seed: 7,
			want: 0x64fc84615db634a1,
		},
	}
	for _, c := range cases {
		if got := c.spec.Key(c.seed); got != c.want {
			t.Errorf("%s: key = %#016x, want %#016x (KEY CONTRACT BROKEN — bump KeyVersion)",
				c.name, got, c.want)
		}
	}
}

func TestKeyCanonicalEquivalence(t *testing.T) {
	// Zero scale means 1.0; zero DRatio means 1 on AGG; DNodes overrides
	// DRatio; NUMA/COMA ignore the split entirely.
	base := ConfigSpec{Arch: "agg", App: "fft", Threads: 32, Pressure: 0.75}
	a := base
	a.Scale, a.DRatio = 1.0, 1
	if base.Key(0) != a.Key(0) {
		t.Error("zero-default spec and explicit-default spec hash differently")
	}
	b, c := base, base
	b.DNodes, b.DRatio = 8, 1
	c.DNodes, c.DRatio = 8, 4
	if b.Key(0) != c.Key(0) {
		t.Error("DRatio must be irrelevant when DNodes is set")
	}
	n1 := ConfigSpec{Arch: "numa", App: "fft", Threads: 32, Pressure: 0.75}
	n2 := n1
	n2.DRatio, n2.DNodes, n2.DMemTotal = 4, 8, 1<<20
	if n1.Key(0) != n2.Key(0) {
		t.Error("NUMA must ignore the D-node split in its key")
	}
}

func TestKeyDiscriminates(t *testing.T) {
	base := ConfigSpec{Arch: "agg", App: "fft", Scale: 1.0, Threads: 32, Pressure: 0.75, DRatio: 1}
	seen := map[uint64]string{base.Key(0): "base"}
	add := func(name string, s ConfigSpec, seed uint64) {
		k := s.Key(seed)
		if prev, dup := seen[k]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}
	m := base
	m.App = "radix"
	add("app", m, 0)
	m = base
	m.Threads = 16
	add("threads", m, 0)
	m = base
	m.Pressure = 0.25
	add("pressure", m, 0)
	m = base
	m.DRatio = 4
	add("dratio", m, 0)
	m = base
	m.HandlerScale = 0.7
	add("handler-scale", m, 0)
	add("seed", base, 1)
}

// TestSpecOfIgnoresObservers: two configs differing only in record-only
// attachments are the same simulation, hence the same cache key.
func TestSpecOfIgnoresObservers(t *testing.T) {
	cfg := machine.Config{
		Arch: machine.AGG, App: workload.Spec{Name: "fft", Scale: 1},
		Threads: 32, Pressure: 0.75, DRatio: 1,
	}
	plain := SpecOf(cfg)
	cfg.Trace = obs.NewTrace(0)
	cfg.Metrics = obs.NewRegistry()
	cfg.Spans = obs.NewSpans(0)
	cfg.Profile = obs.NewProfile()
	cfg.Audit = true
	if SpecOf(cfg) != plain {
		t.Fatal("observer attachments leaked into the wire spec")
	}
	if SpecOf(cfg).Key(0) != plain.Key(0) {
		t.Fatal("observer attachments changed the cache key")
	}
}

func TestSpecConfigRoundTrip(t *testing.T) {
	s := ConfigSpec{
		Arch: "agg", App: "ocean", Scale: 0.5, Threads: 16, Pressure: 0.25,
		DRatio: 2, DNodes: 0, PMemBytes: 1 << 20, DMemTotal: 1 << 22,
		OnChipFraction: 0.3, SharedMinFrac: 0.1, HandlerScale: 0.7, DMemSetAssoc: 4,
	}
	if got := SpecOf(s.Config()); got != s {
		t.Fatalf("round trip: got %+v want %+v", got, s)
	}
}
