package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"pimdsm/internal/hashmap"
	"pimdsm/internal/obs"
)

// The flight recorder: a telemetry job carries every deep observer at once —
// metrics registry, span recorder, and a per-config profiler — and persists
// the merged record as three artifacts when the job finishes:
//
//	profile.json    obs.ProfileSnapshot — cycle attribution (P-node classes,
//	                D-node handler classes, mesh busy/queued), merged across
//	                the configurations this job simulated
//	folded.txt      folded flamegraph stacks (concatenation is valid folded
//	                input, so multi-config jobs collapse naturally)
//	decompose.json  obs.SpanBreakdown — per-phase latency decomposition
//
// Artifacts are content-addressed by the job's configuration keys plus seed,
// not by job id: the record outlives the job table, survives daemon restarts
// through the ArtifactStore index, and resubmitting the same configurations
// after a restart finds the original flight record even though every result
// came from the cache. Like spans, the record only covers configurations the
// job actually simulated — cache hits recorded nothing, which is exactly
// what "record-only" means.

// Artifact kinds, as they appear in endpoint paths.
const (
	ArtifactProfile   = "profile"
	ArtifactFolded    = "folded"
	ArtifactDecompose = "decompose"
)

// artifactFile maps an endpoint kind to the stored file suffix.
func artifactFile(kind string) (string, bool) {
	switch kind {
	case ArtifactProfile:
		return "profile.json", true
	case ArtifactFolded:
		return "folded.txt", true
	case ArtifactDecompose:
		return "decompose.json", true
	}
	return "", false
}

// artifactDigest content-addresses a job's flight record: the sorted config
// keys plus the seed. Sorting makes the address insensitive to batch order —
// the merged record is, too.
func artifactDigest(spec JobSpec) uint64 {
	keys := make([]uint64, len(spec.Configs))
	for i, cs := range spec.Configs {
		keys[i] = cs.Key(spec.Seed)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	var d hashmap.Digest
	d.WriteUint64(KeyVersion)
	d.WriteUint64(spec.Seed)
	for _, k := range keys {
		d.WriteUint64(k)
	}
	return d.Sum64()
}

// artifactName is the stored object name for one kind of a job's record.
func artifactName(spec JobSpec, kind string) string {
	file, _ := artifactFile(kind)
	return fmt.Sprintf("%016x-%s", artifactDigest(spec), file)
}

// Artifact fetch errors, mapped to actionable 404 bodies by the HTTP layer.
var (
	// ErrArtifactNotRecorded: the job never opted into telemetry, or has not
	// finished yet — the parity twin of the metrics/spans 404s.
	ErrArtifactNotRecorded = errors.New("serve: job has no flight-recorder artifact")
	// ErrArtifactUnavailable: the job was telemetry but the artifact is not
	// in the store — evicted by the byte bound, or the job simulated nothing
	// (every config was a cache hit) so there was nothing to record.
	ErrArtifactUnavailable = errors.New("serve: flight-recorder artifact not in store")
)

// Artifact returns one of a finished telemetry job's flight-recorder
// artifacts. With an ArtifactStore configured the store is authoritative
// (every read exercises the LRU, and a restarted daemon serves records for
// re-submitted configurations); without one, artifacts live on the Job.
func (s *Server) Artifact(j *Job, kind string) ([]byte, error) {
	if _, ok := artifactFile(kind); !ok {
		return nil, fmt.Errorf("serve: unknown artifact kind %q", kind)
	}
	s.mu.Lock()
	telemetry, done := j.telemetry, j.state == JobDone
	// Presence is the map key, not slice length: a legitimately empty record
	// (say, a folded file when nothing simulated) is still a recorded one.
	mem, memOK := j.artifacts[kind]
	s.mu.Unlock()
	if !telemetry || !done {
		return nil, ErrArtifactNotRecorded
	}
	if s.artifacts != nil {
		b, ok, err := s.artifacts.Get(artifactName(j.spec, kind))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, ErrArtifactUnavailable
		}
		return b, nil
	}
	if !memOK {
		return nil, ErrArtifactUnavailable
	}
	return mem, nil
}

// ArtifactStore exposes the bounded on-disk store (nil when not configured).
func (s *Server) ArtifactStore() *ArtifactStore { return s.artifacts }

// recordFlight builds a finished telemetry job's three artifacts and either
// persists them to the store (when configured and the job simulated at least
// one configuration — a pure cache-hit job would overwrite a real record
// with an empty one) or parks them on the Job. Called from runJob after a
// successful run, before the job flips to done; j's telemetry fields are no
// longer written by anyone else at that point.
func (s *Server) recordFlight(j *Job) {
	snap := j.profSnap
	if snap == nil {
		snap = &obs.ProfileSnapshot{}
	}
	breakdown := obs.SnapshotSpans(j.spans)
	breakdown.Label = j.id

	encode := map[string]func(io.Writer) error{
		ArtifactProfile: func(w io.Writer) error {
			return json.NewEncoder(w).Encode(snap)
		},
		ArtifactFolded: func(w io.Writer) error {
			_, err := w.Write(j.folded)
			return err
		},
		ArtifactDecompose: func(w io.Writer) error {
			return json.NewEncoder(w).Encode(breakdown)
		},
	}

	// Artifact bytes are part of the tenant's bill: count what actually got
	// written, whichever home the record ends up in.
	var artifactBytes uint64

	if s.artifacts != nil {
		if j.simulated == 0 {
			return
		}
		for kind, enc := range encode {
			name := artifactName(j.spec, kind)
			written := func(w io.Writer) error {
				cw := &countingWriter{w: w}
				err := enc(cw)
				artifactBytes += cw.n
				return err
			}
			if err := s.artifacts.Put(name, written); err != nil {
				s.opt.Log.Error("artifact_write_failed", "job", j.id, "artifact", name, "err", err.Error())
			}
		}
		s.tenantAccount(j, func(u *TenantUsage) { u.ArtifactBytes += artifactBytes })
		return
	}
	arts := make(map[string][]byte, len(encode))
	for kind, enc := range encode {
		var buf bytes.Buffer
		if err := enc(&buf); err != nil {
			s.opt.Log.Error("artifact_encode_failed", "job", j.id, "kind", kind, "err", err.Error())
			continue
		}
		arts[kind] = buf.Bytes()
		artifactBytes += uint64(buf.Len())
	}
	s.mu.Lock()
	j.artifacts = arts
	s.mu.Unlock()
	s.tenantAccount(j, func(u *TenantUsage) { u.ArtifactBytes += artifactBytes })
}

// countingWriter counts bytes on their way through to w.
type countingWriter struct {
	w io.Writer
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

// ArtifactsStatus renders the store listing for the dashboard's artifacts
// section: counters plus the resident records, most recently used first.
func (s *Server) ArtifactsStatus() string {
	if s.artifacts == nil {
		return "artifact store disabled (run with -artifact-dir)\n"
	}
	st := s.artifacts.Stats()
	var b bytes.Buffer
	fmt.Fprintf(&b, "flight-recorder artifacts: %d resident, %d/%d bytes (%d puts, %d hits, %d misses, %d evicted)\n",
		st.Count, st.Bytes, st.Limit, st.Puts, st.Hits, st.Misses, st.Evictions)
	for _, a := range s.artifacts.List() {
		fmt.Fprintf(&b, "  %-44s %8d bytes\n", a.Name, a.Size)
	}
	return b.String()
}
