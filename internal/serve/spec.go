// Package serve turns the simulator into a long-running service: a priority
// job queue with a bounded admission window, a content-addressed LRU result
// cache with singleflight collapsing of identical in-flight work, a worker
// pool that drains jobs through the library's Sweep/RunMany machinery (so
// determinism guarantees carry over), and a JSON/HTTP API mounted alongside
// the obs.Dashboard handlers. Shutdown is graceful: running jobs drain and
// the cache index persists to disk for the next daemon instance.
//
// The package deliberately depends only on internal packages; the root
// pimdsm package re-exports the public surface and wires the batch runner to
// its Sweep pool (serve cannot import the root package without a cycle).
package serve

import (
	"pimdsm/internal/hashmap"
	"pimdsm/internal/machine"
	"pimdsm/internal/workload"
)

// KeyVersion versions the cache-key derivation (canonical field order plus
// the hashmap.Digest encoding). Bump it whenever either changes: persisted
// cache indexes carry the version and stale entries are dropped on load
// instead of being served under a colliding key.
const KeyVersion = 1

// ConfigSpec is the wire form of one simulation configuration: exactly the
// result-determining fields of machine.Config, none of the observer
// attachments (Trace, Metrics, Spans, Profile, Audit, PhaseProgress — all
// record-only, so two configs differing only there produce byte-identical
// results and deliberately share a cache key). Config.Shards is dropped for
// the same reason: the machines' coherence path executes serially at every
// shard count (zero protocol lookahead — see machine.Config.Shards), so the
// value never changes a result and is provenance only.
type ConfigSpec struct {
	Arch     string  `json:"arch"`
	App      string  `json:"app"`
	Scale    float64 `json:"scale,omitempty"`
	Threads  int     `json:"threads"`
	Pressure float64 `json:"pressure"`
	DRatio   int     `json:"dratio,omitempty"`
	DNodes   int     `json:"dnodes,omitempty"`

	PMemBytes uint64 `json:"pmem_bytes,omitempty"`
	DMemTotal uint64 `json:"dmem_total,omitempty"`

	OnChipFraction float64 `json:"on_chip_fraction,omitempty"`
	SharedMinFrac  float64 `json:"shared_min_frac,omitempty"`
	HandlerScale   float64 `json:"handler_scale,omitempty"`
	DMemSetAssoc   int     `json:"dmem_set_assoc,omitempty"`
}

// SpecOf extracts the wire spec from a machine config, dropping the
// observer attachments.
func SpecOf(cfg machine.Config) ConfigSpec {
	return ConfigSpec{
		Arch:           string(cfg.Arch),
		App:            cfg.App.Name,
		Scale:          cfg.App.Scale,
		Threads:        cfg.Threads,
		Pressure:       cfg.Pressure,
		DRatio:         cfg.DRatio,
		DNodes:         cfg.DNodes,
		PMemBytes:      cfg.PMemBytesOverride,
		DMemTotal:      cfg.DMemTotalOverride,
		OnChipFraction: cfg.OnChipFraction,
		SharedMinFrac:  cfg.SharedMinFrac,
		HandlerScale:   cfg.HandlerScale,
		DMemSetAssoc:   cfg.DMemSetAssoc,
	}
}

// Config builds the machine config a worker will run.
func (s ConfigSpec) Config() machine.Config {
	return machine.Config{
		Arch:              machine.Arch(s.Arch),
		App:               workload.Spec{Name: s.App, Scale: s.Scale},
		Threads:           s.Threads,
		Pressure:          s.Pressure,
		DRatio:            s.DRatio,
		DNodes:            s.DNodes,
		PMemBytesOverride: s.PMemBytes,
		DMemTotalOverride: s.DMemTotal,
		OnChipFraction:    s.OnChipFraction,
		SharedMinFrac:     s.SharedMinFrac,
		HandlerScale:      s.HandlerScale,
		DMemSetAssoc:      s.DMemSetAssoc,
	}
}

// canonical resolves the "zero means default" conventions the simulator
// applies, so that e.g. Scale 0 and Scale 1.0 — which run the identical
// simulation — also hash to the identical key.
func (s ConfigSpec) canonical() ConfigSpec {
	if s.Scale == 0 {
		s.Scale = 1.0
	}
	if s.Arch == string(machine.AGG) {
		if s.DNodes != 0 {
			s.DRatio = 0 // DNodes overrides DRatio; its value is irrelevant
		} else if s.DRatio == 0 {
			s.DRatio = 1
		}
	} else {
		// NUMA/COMA ignore the D-node split entirely.
		s.DRatio, s.DNodes = 0, 0
		s.DMemTotal = 0
	}
	return s
}

// Key derives the 64-bit content address of this configuration (canonical
// form) plus a seed. The seed is reserved for future stochastic workloads;
// today every run is deterministic from the config alone, so distinct seeds
// merely shard the cache.
//
// STABILITY CONTRACT: field order and encodings here are frozen for
// KeyVersion 1 (see key_test.go's golden values). Add fields only at the
// end, and only together with a KeyVersion bump.
func (s ConfigSpec) Key(seed uint64) uint64 {
	c := s.canonical()
	var d hashmap.Digest
	d.WriteUint64(KeyVersion)
	d.WriteString(c.Arch)
	d.WriteString(c.App)
	d.WriteFloat64(c.Scale)
	d.WriteInt(c.Threads)
	d.WriteFloat64(c.Pressure)
	d.WriteInt(c.DRatio)
	d.WriteInt(c.DNodes)
	d.WriteUint64(c.PMemBytes)
	d.WriteUint64(c.DMemTotal)
	d.WriteFloat64(c.OnChipFraction)
	d.WriteFloat64(c.SharedMinFrac)
	d.WriteFloat64(c.HandlerScale)
	d.WriteInt(c.DMemSetAssoc)
	d.WriteUint64(seed)
	return d.Sum64()
}
