package serve

import (
	"context"
	"testing"
	"time"

	"pimdsm/internal/obs/svclog"
)

// TestHTTPSSEResumeAfterRingEviction: a consumer reconnecting with a
// Last-Event-ID that the bounded replay ring has already rotated past gets a
// clean restart from the oldest event still held — the stream neither hangs
// nor errors, and the consumer can detect the gap from the first replayed
// sequence number (exactly the cache-restart behavior `pimdsm watch` relies
// on after a long disconnect).
func TestHTTPSSEResumeAfterRingEviction(t *testing.T) {
	fr := &fakeRunner{}
	// A 4-event ring: any one job's lifecycle already overflows it.
	_, c := startAPI(t, Options{
		Workers: 1, Run: fr.run,
		Events: svclog.NewEventLog(4),
	})

	var lastJob string
	for _, app := range []string{"a", "b", "c", "d"} {
		st, err := c.Submit(spec1(app))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		lastJob = st.ID
	}

	// Resume from a cursor long evicted from the ring.
	const staleCursor = 1
	var got []svclog.JobEvent
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := c.StreamEvents(ctx, staleCursor, "", "", func(ev svclog.JobEvent) {
		got = append(got, ev)
		if ev.Job == lastJob && ev.Kind == svclog.EvDone {
			cancel()
		}
	})
	if err != nil && err != context.Canceled {
		t.Fatalf("stream after ring eviction: %v, want a clean restart", err)
	}
	if len(got) == 0 {
		t.Fatal("evicted-cursor resume replayed nothing")
	}
	// The ring rotated: the restart begins past the gap, not at cursor+1.
	if got[0].Seq <= staleCursor+1 {
		t.Fatalf("replay starts at seq %d — the ring should have rotated past %d", got[0].Seq, staleCursor+1)
	}
	// What is replayed is dense: the gap is only at the front, never inside.
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("sequence gap inside the restart: %d -> %d", got[i-1].Seq, got[i].Seq)
		}
	}
	if got[len(got)-1].Kind != svclog.EvDone || got[len(got)-1].Job != lastJob {
		t.Fatalf("restart never reached the newest event: last got %+v", got[len(got)-1])
	}
}
