package serve

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func putBytes(t *testing.T, s *ArtifactStore, name string, b []byte) {
	t.Helper()
	err := s.Put(name, func(w io.Writer) error { _, err := w.Write(b); return err })
	if err != nil {
		t.Fatalf("put %s: %v", name, err)
	}
}

func getHit(t *testing.T, s *ArtifactStore, name string) []byte {
	t.Helper()
	b, ok, err := s.Get(name)
	if err != nil || !ok {
		t.Fatalf("get %s: ok=%v err=%v, want a hit", name, ok, err)
	}
	return b
}

// TestArtifactStoreLRUEviction: the byte bound evicts least-recently-used —
// and a Get refreshes recency, so the touched artifact survives the next Put.
func TestArtifactStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := NewArtifactStore(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("x"), 40)
	putBytes(t, s, "a", blob)
	putBytes(t, s, "b", blob)
	// Touch a: b becomes the eviction candidate.
	getHit(t, s, "a")
	// 120 bytes > 100: the put evicts b, not the just-touched a.
	putBytes(t, s, "c", blob)

	if _, ok, err := s.Get("b"); ok || err != nil {
		t.Fatalf("b after eviction: ok=%v err=%v, want a clean miss", ok, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); !os.IsNotExist(err) {
		t.Fatalf("evicted artifact still on disk: %v", err)
	}
	if got := getHit(t, s, "a"); !bytes.Equal(got, blob) {
		t.Fatalf("a read back %d bytes, want %d", len(got), len(blob))
	}
	getHit(t, s, "c")

	st := s.Stats()
	if st.Count != 2 || st.Bytes != 80 || st.Limit != 100 {
		t.Fatalf("stats after eviction: %+v", st)
	}
	if st.Puts != 3 || st.Evictions != 1 || st.Misses != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestArtifactStoreOversizedPutSurvives: an artifact bigger than the whole
// bound is never evicted by its own Put — the record the operator just asked
// for stays retrievable at least once.
func TestArtifactStoreOversizedPutSurvives(t *testing.T) {
	s, err := NewArtifactStore(t.TempDir(), 10)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("y"), 64)
	putBytes(t, s, "big", big)
	if got := getHit(t, s, "big"); !bytes.Equal(got, big) {
		t.Fatal("oversized artifact not retrievable after its own put")
	}
	// The next put does evict it: the bound is real, just not retroactive
	// against the artifact being written.
	putBytes(t, s, "next", []byte("z"))
	if _, ok, _ := s.Get("big"); ok {
		t.Fatal("oversized artifact survived a later put over the bound")
	}
	getHit(t, s, "next")
}

// TestArtifactStoreRestart: SaveIndex + NewArtifactStore round-trips both the
// resident set and the LRU order, and entries whose backing file vanished are
// dropped individually rather than failing the load.
func TestArtifactStoreRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := NewArtifactStore(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("x"), 40)
	putBytes(t, s, "a", blob)
	putBytes(t, s, "b", blob)
	getHit(t, s, "a") // LRU order after this: b is the candidate
	if err := s.SaveIndex(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewArtifactStore(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Count != 2 || st.Bytes != 80 {
		t.Fatalf("restored stats: %+v", st)
	}
	if got := getHit(t, s2, "b"); !bytes.Equal(got, blob) {
		t.Fatal("restored store served wrong bytes")
	}
	// Recency survived the restart — but the Get above just touched b, so
	// now a is the candidate and the next over-bound put must evict a.
	putBytes(t, s2, "c", blob)
	if _, ok, _ := s2.Get("a"); ok {
		t.Fatal("restart lost the LRU order: a should have been the eviction candidate")
	}
	getHit(t, s2, "b")

	// A vanished backing file drops only its own entry on the next load.
	if err := s2.SaveIndex(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "c")); err != nil {
		t.Fatal(err)
	}
	s3, err := NewArtifactStore(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.Count != 1 || st.Bytes != 40 {
		t.Fatalf("stats after dropping the vanished entry: %+v", st)
	}
	getHit(t, s3, "b")
}

// TestArtifactStoreCorruptIndex: a corrupt index is a loud error, not a
// silent fresh start — the operator moves it aside deliberately.
func TestArtifactStoreCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, artifactIndexName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := NewArtifactStore(dir, 0)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt index: %v, want a corrupt-index error", err)
	}
}

// TestArtifactStoreRewrite: re-putting a name replaces the entry and the
// byte accounting, never double-counting.
func TestArtifactStoreRewrite(t *testing.T) {
	s, err := NewArtifactStore(t.TempDir(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	putBytes(t, s, "a", bytes.Repeat([]byte("x"), 40))
	putBytes(t, s, "a", bytes.Repeat([]byte("y"), 25))
	if st := s.Stats(); st.Count != 1 || st.Bytes != 25 {
		t.Fatalf("stats after rewrite: %+v", st)
	}
	if got := getHit(t, s, "a"); len(got) != 25 || got[0] != 'y' {
		t.Fatalf("rewrite served stale bytes: %q", got)
	}
}
