package serve

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// Tenant identity and attribution (DESIGN.md §14). A Tenants registry is the
// service's multi-tenant edge: API-key authentication (constant-time), a
// per-tenant token bucket and concurrency/queue quotas gating admission in
// front of the shared window, and per-tenant usage accounting feeding the
// /metrics.prom tenant label dimension and the persisted usage ledger.
//
// The tenant set is fixed at startup from the tenants file, which is what
// bounds the `tenant` label cardinality in the Prometheus exposition: labels
// only ever take values from that finite, operator-controlled list.

// Tenant is one registered identity, as declared in the tenants file.
type Tenant struct {
	// Name is the tenant's stable identifier; it becomes the `tenant` label
	// value in metrics, the tenant= key in logs and events, and the path
	// element of /api/v1/tenants/{name}/usage.
	Name string `json:"name"`
	// Key is the tenant's API key (Authorization: Bearer <key> or
	// X-API-Key). Compared in constant time; never exposed by any endpoint.
	Key string `json:"key"`
	// MaxPriority caps JobSpec.Priority: a submission above the ceiling is
	// rejected with 403 (0 = only priority 0 allowed; negative priorities
	// always pass).
	MaxPriority int `json:"max_priority,omitempty"`
	// RatePerSec refills the tenant's token bucket: sustained submissions
	// per second (0 = no rate limit).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (default: RatePerSec rounded up, minimum
	// 1). Ignored when RatePerSec is 0.
	Burst int `json:"burst,omitempty"`
	// MaxQueued bounds the tenant's jobs waiting to run (0 = only the shared
	// admission window applies).
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxActive bounds the tenant's queued+running jobs (0 = unbounded).
	MaxActive int `json:"max_active,omitempty"`
}

// TenantUsage is one tenant's resource-consumption counters. The same shape
// serves two horizons: the process-lifetime counters behind the per-tenant
// Prometheus families (which sum exactly to the global counters), and the
// cumulative ledger persisted across restarts.
type TenantUsage struct {
	Requests uint64 `json:"requests"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsAborted   uint64 `json:"jobs_aborted"`

	RejectedRate        uint64 `json:"rejected_rate"`
	RejectedQueueQuota  uint64 `json:"rejected_queue_quota"`
	RejectedActiveQuota uint64 `json:"rejected_active_quota"`
	RejectedWindow      uint64 `json:"rejected_window"`

	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Joins       uint64 `json:"singleflight_joins"`

	SimulatedRuns uint64 `json:"simulated_runs"`
	EngineCycles  uint64 `json:"engine_cycles"`

	ResultBytes   uint64 `json:"result_bytes"`
	ArtifactBytes uint64 `json:"artifact_bytes"`
}

// add accumulates o into u (ledger merge).
func (u *TenantUsage) add(o TenantUsage) {
	u.Requests += o.Requests
	u.JobsSubmitted += o.JobsSubmitted
	u.JobsDone += o.JobsDone
	u.JobsFailed += o.JobsFailed
	u.JobsAborted += o.JobsAborted
	u.RejectedRate += o.RejectedRate
	u.RejectedQueueQuota += o.RejectedQueueQuota
	u.RejectedActiveQuota += o.RejectedActiveQuota
	u.RejectedWindow += o.RejectedWindow
	u.CacheHits += o.CacheHits
	u.CacheMisses += o.CacheMisses
	u.Joins += o.Joins
	u.SimulatedRuns += o.SimulatedRuns
	u.EngineCycles += o.EngineCycles
	u.ResultBytes += o.ResultBytes
	u.ArtifactBytes += o.ArtifactBytes
}

// Rejected is the tenant's total rejection count across all reasons.
func (u TenantUsage) Rejected() uint64 {
	return u.RejectedRate + u.RejectedQueueQuota + u.RejectedActiveQuota + u.RejectedWindow
}

// TenantSnapshot is the wire view of one tenant: declared quotas, live
// scheduling state, and both usage horizons. The key is never included.
type TenantSnapshot struct {
	Name        string  `json:"name"`
	MaxPriority int     `json:"max_priority,omitempty"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	Burst       int     `json:"burst,omitempty"`
	MaxQueued   int     `json:"max_queued,omitempty"`
	MaxActive   int     `json:"max_active,omitempty"`

	Queued  int `json:"queued"`
	Running int `json:"running"`

	// Usage counts this daemon process's activity; these are the counters
	// behind the per-tenant Prometheus families, and across all tenants they
	// sum exactly to the global counters. Total adds the ledger restored
	// from a previous process: the tenant's cumulative, restart-surviving
	// consumption.
	Usage TenantUsage `json:"usage"`
	Total TenantUsage `json:"total"`
}

// Admission-rejection reasons, used as BusyError.Reason and as the `reason`
// label on aggsimd_tenant_rejected_total.
const (
	RejectWindow      = "admission window full"
	RejectRate        = "rate limited"
	RejectQueueQuota  = "queue quota exceeded"
	RejectActiveQuota = "concurrency quota exceeded"
)

// ForbiddenError rejects a submission the tenant is authenticated but not
// authorized to make (today: priority above the tenant's ceiling). The HTTP
// layer maps it to 403.
type ForbiddenError struct {
	Tenant string
	Msg    string
}

func (e *ForbiddenError) Error() string {
	return fmt.Sprintf("serve: tenant %s: %s", e.Tenant, e.Msg)
}

// tenantState is one tenant's live scheduling and accounting state, guarded
// by the registry mutex.
type tenantState struct {
	t Tenant

	queued     int
	running    int
	ewmaJobSec float64

	// Token bucket: tokens refill continuously at RatePerSec up to Burst;
	// each admitted submission consumes one.
	tokens     float64
	lastRefill time.Time

	usage TenantUsage // this process
	base  TenantUsage // restored ledger from previous processes
}

// Tenants is the registry: the tenant set plus per-tenant live state. The
// set is fixed between reloads — Reload swaps in a revalidated tenants file
// atomically (generation counts the swaps), which is what bounds the
// `tenant` label cardinality in the Prometheus exposition: labels only ever
// take values from the operator-controlled file.
// Lock order: Server.mu may be held when registry methods are called, never
// the reverse.
type Tenants struct {
	mu         sync.Mutex
	order      []string
	states     map[string]*tenantState
	generation uint64
	now        func() time.Time // test seam for the token bucket
}

// tenantsFile is the on-disk shape of the -tenants-file.
type tenantsFile struct {
	Tenants []Tenant `json:"tenants"`
}

// LoadTenants reads and validates a tenants file: {"tenants":[{...}]}.
func LoadTenants(path string) (*Tenants, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: tenants file: %w", err)
	}
	var tf tenantsFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("serve: tenants file %s: %w", path, err)
	}
	if len(tf.Tenants) == 0 {
		return nil, fmt.Errorf("serve: tenants file %s declares no tenants", path)
	}
	reg, err := NewTenants(tf.Tenants)
	if err != nil {
		return nil, fmt.Errorf("serve: tenants file %s: %w", path, err)
	}
	return reg, nil
}

// normalizeTenants validates a declared tenant list and applies defaults:
// names and keys must be unique, names non-empty, keys at least 8
// characters, every quota non-negative, and a rate-limited tenant with no
// declared burst gets RatePerSec rounded up (minimum 1). Shared by NewTenants
// and Reload so a reloaded file passes exactly the startup checks.
func normalizeTenants(list []Tenant) ([]Tenant, error) {
	out := make([]Tenant, 0, len(list))
	names := make(map[string]bool, len(list))
	keys := make(map[string]string, len(list))
	for i, t := range list {
		if t.Name == "" {
			return nil, fmt.Errorf("tenant %d: empty name", i)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("tenant %q: duplicate name", t.Name)
		}
		names[t.Name] = true
		if len(t.Key) < 8 {
			return nil, fmt.Errorf("tenant %q: key shorter than 8 characters", t.Name)
		}
		if other, dup := keys[t.Key]; dup {
			return nil, fmt.Errorf("tenant %q: key duplicates tenant %q", t.Name, other)
		}
		keys[t.Key] = t.Name
		if t.RatePerSec < 0 || t.Burst < 0 || t.MaxQueued < 0 || t.MaxActive < 0 {
			return nil, fmt.Errorf("tenant %q: negative quota", t.Name)
		}
		if t.RatePerSec > 0 && t.Burst == 0 {
			t.Burst = int(t.RatePerSec)
			if float64(t.Burst) < t.RatePerSec {
				t.Burst++
			}
			if t.Burst < 1 {
				t.Burst = 1
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// NewTenants builds a registry from a validated tenant list (see
// normalizeTenants for the rules).
func NewTenants(list []Tenant) (*Tenants, error) {
	list, err := normalizeTenants(list)
	if err != nil {
		return nil, err
	}
	r := &Tenants{
		states: make(map[string]*tenantState, len(list)),
		now:    time.Now,
	}
	for _, t := range list {
		st := &tenantState{t: t}
		if t.RatePerSec > 0 {
			st.tokens = float64(t.Burst) // a fresh tenant starts with a full bucket
		}
		r.states[t.Name] = st
		r.order = append(r.order, t.Name)
	}
	return r, nil
}

// Reload swaps the registry's tenant set for a new declared list, atomically
// and all-or-nothing: a list that fails validation changes NOTHING (the old
// registry keeps serving) and the error says why. Tenants present in both
// sets keep their live scheduling state and usage counters under the new
// declaration (tokens clamp to a shrunk burst; a newly rate-limited tenant
// starts with a full bucket). Removed tenants drop out — their keys stop
// authenticating on the next request, and their in-flight jobs finish
// normally (the accounting paths tolerate an unregistered name). Added
// tenants start fresh.
func (r *Tenants) Reload(list []Tenant) error {
	list, err := normalizeTenants(list)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	states := make(map[string]*tenantState, len(list))
	order := make([]string, 0, len(list))
	for _, t := range list {
		st := r.states[t.Name]
		if st == nil {
			st = &tenantState{t: t}
			if t.RatePerSec > 0 {
				st.tokens = float64(t.Burst)
			}
		} else {
			wasLimited := st.t.RatePerSec > 0
			st.t = t
			switch {
			case t.RatePerSec <= 0:
				st.tokens, st.lastRefill = 0, time.Time{}
			case !wasLimited:
				st.tokens = float64(t.Burst) // newly limited: full bucket
				st.lastRefill = time.Time{}
			case st.tokens > float64(t.Burst):
				st.tokens = float64(t.Burst) // burst shrank: clamp
			}
		}
		states[t.Name] = st
		order = append(order, t.Name)
	}
	r.states = states
	r.order = order
	r.generation++
	return nil
}

// ReloadFile re-reads a tenants file into the registry via Reload (same
// all-or-nothing contract; a missing or malformed file leaves the registry
// untouched).
func (r *Tenants) ReloadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve: tenants file: %w", err)
	}
	var tf tenantsFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("serve: tenants file %s: %w", path, err)
	}
	if len(tf.Tenants) == 0 {
		return fmt.Errorf("serve: tenants file %s declares no tenants", path)
	}
	if err := r.Reload(tf.Tenants); err != nil {
		return fmt.Errorf("serve: tenants file %s: %w", path, err)
	}
	return nil
}

// Generation counts successful Reloads (0 until the first).
func (r *Tenants) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.generation
}

// Len returns the number of registered tenants.
func (r *Tenants) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// Names returns the tenant names in file order.
func (r *Tenants) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// Authenticate resolves an API key to a tenant name. Every registered key is
// compared with crypto/subtle regardless of earlier matches, so the scan's
// timing does not depend on which tenant (if any) matched; only key lengths
// are observable, and keys are not secrets of each other's length. A hit
// counts toward the tenant's request usage.
func (r *Tenants) Authenticate(key string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	kb := []byte(key)
	match := ""
	for _, name := range r.order {
		if subtle.ConstantTimeCompare(kb, []byte(r.states[name].t.Key)) == 1 && match == "" {
			match = name
		}
	}
	if match == "" {
		return "", false
	}
	r.states[match].usage.Requests++
	return match, true
}

// refillLocked advances the token bucket to now.
func (st *tenantState) refillLocked(now time.Time) {
	if st.t.RatePerSec <= 0 {
		return
	}
	if !st.lastRefill.IsZero() {
		st.tokens += now.Sub(st.lastRefill).Seconds() * st.t.RatePerSec
		if max := float64(st.t.Burst); st.tokens > max {
			st.tokens = max
		}
	}
	st.lastRefill = now
}

// retryAfterLocked estimates when the tenant's own backlog frees a slot:
// its queued+running jobs per shared worker times its EWMA job duration
// (falling back to the server-wide EWMA, then 1s), floored at one second.
// This is the per-tenant Retry-After — a noisy tenant's pushback grows with
// its own backlog, independent of the shared window's estimate.
func (st *tenantState) retryAfterLocked(workers int, globalEwma float64) time.Duration {
	per := st.ewmaJobSec
	if per <= 0 {
		per = globalEwma
	}
	if per <= 0 {
		per = 1
	}
	if workers < 1 {
		workers = 1
	}
	backlog := float64(st.queued+st.running+1) / float64(workers)
	d := time.Duration(per * backlog * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return d.Round(time.Second)
}

// gate checks the tenant's admission constraints without committing
// anything: priority ceiling (403), token bucket, queue quota, concurrency
// quota (each a per-tenant 429 carrying the tenant's own Retry-After).
// Rejections are counted; a nil return means the submission may proceed to
// the shared window, after which the caller commits.
func (r *Tenants) gate(name string, priority, workers int, globalEwma float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.states[name]
	if !ok {
		return fmt.Errorf("serve: unknown tenant %q", name)
	}
	if priority > st.t.MaxPriority {
		return &ForbiddenError{
			Tenant: name,
			Msg:    fmt.Sprintf("priority %d above ceiling %d", priority, st.t.MaxPriority),
		}
	}
	now := r.now()
	st.refillLocked(now)
	if st.t.RatePerSec > 0 && st.tokens < 1 {
		st.usage.RejectedRate++
		// Time until the bucket holds one token again.
		wait := time.Duration((1 - st.tokens) / st.t.RatePerSec * float64(time.Second))
		if wait < time.Second {
			wait = time.Second
		}
		return &BusyError{RetryAfter: wait.Round(time.Second), Tenant: name, Reason: RejectRate}
	}
	if st.t.MaxQueued > 0 && st.queued >= st.t.MaxQueued {
		st.usage.RejectedQueueQuota++
		return &BusyError{
			RetryAfter: st.retryAfterLocked(workers, globalEwma),
			Tenant:     name, Reason: RejectQueueQuota,
		}
	}
	if st.t.MaxActive > 0 && st.queued+st.running >= st.t.MaxActive {
		st.usage.RejectedActiveQuota++
		return &BusyError{
			RetryAfter: st.retryAfterLocked(workers, globalEwma),
			Tenant:     name, Reason: RejectActiveQuota,
		}
	}
	return nil
}

// commit records an admission that passed both the tenant gate and the
// shared window: consumes one token, counts the job as queued.
func (r *Tenants) commit(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.states[name]
	if st == nil {
		return
	}
	if st.t.RatePerSec > 0 {
		st.refillLocked(r.now())
		if st.tokens >= 1 {
			st.tokens--
		} else {
			st.tokens = 0
		}
	}
	st.queued++
	st.usage.JobsSubmitted++
}

// rejectedWindow counts a shared-window (or draining) rejection against the
// tenant that caused it.
func (r *Tenants) rejectedWindow(name string) {
	r.account(name, func(u *TenantUsage) { u.RejectedWindow++ })
}

// started moves one of the tenant's jobs from queued to running.
func (r *Tenants) started(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.states[name]; st != nil {
		st.queued--
		st.running++
	}
}

// finished retires one running job and folds its wall time into the
// tenant's EWMA (the basis of its personal Retry-After).
func (r *Tenants) finished(name string, failed bool, sec float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.states[name]
	if st == nil {
		return
	}
	st.running--
	if failed {
		st.usage.JobsFailed++
	} else {
		st.usage.JobsDone++
	}
	if st.ewmaJobSec == 0 {
		st.ewmaJobSec = sec
	} else {
		st.ewmaJobSec = 0.7*st.ewmaJobSec + 0.3*sec
	}
}

// aborted retires one still-queued job during a drain.
func (r *Tenants) aborted(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.states[name]; st != nil {
		st.queued--
		st.usage.JobsAborted++
	}
}

// requeued moves a job back from running to queued (a stolen job whose thief
// went silent).
func (r *Tenants) requeued(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.states[name]; st != nil {
		st.running--
		st.queued++
	}
}

// abortedRunning retires one running job during a drain (a stolen job the
// shutdown could not wait for).
func (r *Tenants) abortedRunning(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.states[name]; st != nil {
		st.running--
		st.usage.JobsAborted++
	}
}

// account applies fn to the tenant's process-lifetime usage counters.
func (r *Tenants) account(name string, fn func(u *TenantUsage)) {
	if name == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.states[name]; st != nil {
		fn(&st.usage)
	}
}

// Snapshot copies every tenant's state in file order.
func (r *Tenants) Snapshot() []TenantSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.snapshotLocked(r.states[name]))
	}
	return out
}

// Get snapshots one tenant by name.
func (r *Tenants) Get(name string) (TenantSnapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.states[name]
	if !ok {
		return TenantSnapshot{}, false
	}
	return r.snapshotLocked(st), true
}

func (r *Tenants) snapshotLocked(st *tenantState) TenantSnapshot {
	total := st.base
	total.add(st.usage)
	return TenantSnapshot{
		Name:        st.t.Name,
		MaxPriority: st.t.MaxPriority,
		RatePerSec:  st.t.RatePerSec,
		Burst:       st.t.Burst,
		MaxQueued:   st.t.MaxQueued,
		MaxActive:   st.t.MaxActive,
		Queued:      st.queued,
		Running:     st.running,
		Usage:       st.usage,
		Total:       total,
	}
}

// exportUsage returns each tenant's cumulative usage (restored base plus
// this process), the shape the usage ledger persists.
func (r *Tenants) exportUsage() map[string]TenantUsage {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]TenantUsage, len(r.states))
	for name, st := range r.states {
		total := st.base
		total.add(st.usage)
		out[name] = total
	}
	return out
}

// restoreUsage installs a previously persisted ledger as each tenant's
// base. Ledger entries for tenants no longer in the file are dropped (their
// history ends with their registration).
func (r *Tenants) restoreUsage(ledger map[string]TenantUsage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, u := range ledger {
		if st := r.states[name]; st != nil {
			st.base = u
		}
	}
}

// sortedUsageNames returns ledger keys in stable order (deterministic
// persistence output).
func sortedUsageNames(m map[string]TenantUsage) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
