package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func twoTenants(t *testing.T, list []Tenant) *Tenants {
	t.Helper()
	reg, err := NewTenants(list)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestNewTenantsValidation(t *testing.T) {
	ok := Tenant{Name: "a", Key: "key-aaaaaaaa"}
	bad := []struct {
		name string
		list []Tenant
	}{
		{"empty name", []Tenant{{Key: "key-aaaaaaaa"}}},
		{"duplicate name", []Tenant{ok, {Name: "a", Key: "key-bbbbbbbb"}}},
		{"short key", []Tenant{{Name: "a", Key: "short"}}},
		{"duplicate key", []Tenant{ok, {Name: "b", Key: "key-aaaaaaaa"}}},
		{"negative rate", []Tenant{{Name: "a", Key: "key-aaaaaaaa", RatePerSec: -1}}},
		{"negative quota", []Tenant{{Name: "a", Key: "key-aaaaaaaa", MaxQueued: -1}}},
	}
	for _, tc := range bad {
		if _, err := NewTenants(tc.list); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	reg := twoTenants(t, []Tenant{{Name: "a", Key: "key-aaaaaaaa", RatePerSec: 2.5}})
	if snap, _ := reg.Get("a"); snap.Burst != 3 {
		t.Fatalf("default burst = %d, want ceil(2.5) = 3", snap.Burst)
	}
}

func TestLoadTenantsErrors(t *testing.T) {
	if _, err := LoadTenants(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing tenants file accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"tenants":[]}`), 0o644)
	if _, err := LoadTenants(empty); err == nil {
		t.Fatal("tenants file with no tenants accepted")
	}
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"tenants":[{"name":"a","key":"key-aaaaaaaa"}]}`), 0o644)
	reg, err := LoadTenants(good)
	if err != nil || reg.Len() != 1 {
		t.Fatalf("good tenants file: %v, %d tenants", err, reg.Len())
	}
}

func TestAuthenticate(t *testing.T) {
	reg := twoTenants(t, []Tenant{
		{Name: "a", Key: "key-aaaaaaaa"},
		{Name: "b", Key: "key-bbbbbbbb"},
	})
	if name, ok := reg.Authenticate("key-bbbbbbbb"); !ok || name != "b" {
		t.Fatalf("Authenticate(b's key) = %q, %v", name, ok)
	}
	if _, ok := reg.Authenticate("key-cccccccc"); ok {
		t.Fatal("unknown key authenticated")
	}
	if _, ok := reg.Authenticate(""); ok {
		t.Fatal("empty key authenticated")
	}
	if snap, _ := reg.Get("b"); snap.Usage.Requests != 1 {
		t.Fatalf("b's request count = %d, want 1", snap.Usage.Requests)
	}
}

// TestTenantTokenBucket drives the bucket through a fake clock: burst spends
// down to rate rejection, elapsed time refills fractionally, and the refill
// never exceeds the burst cap.
func TestTenantTokenBucket(t *testing.T) {
	reg := twoTenants(t, []Tenant{{Name: "a", Key: "key-aaaaaaaa", RatePerSec: 2, Burst: 2}})
	now := time.Unix(1000, 0)
	reg.now = func() time.Time { return now }

	admit := func() error {
		err := reg.gate("a", 0, 1, 0)
		if err == nil {
			reg.commit("a")
		}
		return err
	}
	if err := admit(); err != nil {
		t.Fatalf("first (burst) admission: %v", err)
	}
	if err := admit(); err != nil {
		t.Fatalf("second (burst) admission: %v", err)
	}
	err := admit()
	var be *BusyError
	if !errors.As(err, &be) || be.Reason != RejectRate || be.Tenant != "a" {
		t.Fatalf("drained bucket: %v, want rate-limited BusyError", err)
	}
	if be.RetryAfter <= 0 {
		t.Fatalf("rate rejection carries no Retry-After: %+v", be)
	}

	now = now.Add(500 * time.Millisecond) // 2/s x 0.5s = 1 token
	if err := admit(); err != nil {
		t.Fatalf("refilled admission: %v", err)
	}
	if err := admit(); !errors.As(err, &be) {
		t.Fatalf("bucket should be dry again: %v", err)
	}

	now = now.Add(time.Hour) // refill is capped at Burst, not an hour of rate
	for i := 0; i < 2; i++ {
		if err := admit(); err != nil {
			t.Fatalf("post-idle admission %d: %v", i, err)
		}
	}
	if err := admit(); !errors.As(err, &be) {
		t.Fatalf("idle refill exceeded burst: %v", err)
	}
	if snap, _ := reg.Get("a"); snap.Usage.RejectedRate != 3 {
		t.Fatalf("rate rejections = %d, want 3", snap.Usage.RejectedRate)
	}
}

func TestTenantQuotasAndCeiling(t *testing.T) {
	reg := twoTenants(t, []Tenant{
		{Name: "a", Key: "key-aaaaaaaa", MaxPriority: 2, MaxQueued: 1},
		{Name: "b", Key: "key-bbbbbbbb", MaxActive: 2},
	})

	// Priority above the ceiling is authorization, not load: ForbiddenError.
	err := reg.gate("a", 3, 1, 0)
	var fe *ForbiddenError
	if !errors.As(err, &fe) || fe.Tenant != "a" {
		t.Fatalf("over-ceiling priority: %v, want ForbiddenError", err)
	}

	if err := reg.gate("a", 2, 1, 0); err != nil {
		t.Fatalf("at-ceiling priority: %v", err)
	}
	reg.commit("a") // queued=1, the queue quota

	err = reg.gate("a", 0, 1, 0)
	var be *BusyError
	if !errors.As(err, &be) || be.Reason != RejectQueueQuota {
		t.Fatalf("queue quota: %v", err)
	}
	reg.started("a") // queued=0 running=1: the queue quota frees up
	if err := reg.gate("a", 0, 1, 0); err != nil {
		t.Fatalf("after start: %v", err)
	}

	// b's quota is active = queued+running: one queued plus one running
	// saturates MaxActive 2 regardless of the split.
	reg.commit("b")
	reg.started("b")
	reg.commit("b")
	err = reg.gate("b", 0, 1, 0)
	if !errors.As(err, &be) || be.Reason != RejectActiveQuota || be.Tenant != "b" {
		t.Fatalf("active quota: %v", err)
	}

	// gate never consumed what commit did not: drain the backlog and
	// admission works again.
	reg.started("b")
	reg.finished("b", false, 0.1)
	reg.finished("b", false, 0.1)
	if err := reg.gate("b", 0, 1, 0); err != nil {
		t.Fatalf("after drain: %v", err)
	}
	snapA, _ := reg.Get("a")
	snapB, _ := reg.Get("b")
	if snapA.Usage.RejectedQueueQuota != 1 || snapB.Usage.RejectedActiveQuota != 1 || snapB.Usage.JobsDone != 2 {
		t.Fatalf("usage after the dance: a=%+v b=%+v", snapA.Usage, snapB.Usage)
	}
}

// TestUsageLedgerRoundTrip persists a ledger through a Server, restarts into
// a fresh registry, and checks base+usage arithmetic plus byte-determinism.
func TestUsageLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "usage.json")
	list := []Tenant{
		{Name: "b-second", Key: "key-bbbbbbbb"},
		{Name: "a-first", Key: "key-aaaaaaaa"},
	}

	fr := &fakeRunner{}
	reg1 := twoTenants(t, list)
	s1, err := New(Options{Workers: 1, Run: fr.run, Tenants: reg1, UsagePath: path})
	if err != nil {
		t.Fatal(err)
	}
	spec := spec1("fft")
	spec.Tenant = "a-first"
	reg1.commit("a-first") // what Submit would do after the gate
	st, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, s1, st.ID)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Restart: the ledger becomes base; process usage starts at zero.
	reg2 := twoTenants(t, list)
	s2, err := New(Options{Workers: 1, Run: fr.run, Tenants: reg2, UsagePath: path})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := reg2.Get("a-first")
	if snap.Usage.JobsDone != 0 {
		t.Fatalf("restart leaked ledger into process usage: %+v", snap.Usage)
	}
	if snap.Total.JobsDone != 1 || snap.Total.SimulatedRuns != 1 || snap.Total.EngineCycles == 0 {
		t.Fatalf("restored totals: %+v", snap.Total)
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// No new work happened, so an identical ledger must serialize to
	// identical bytes (sorted names, not map order).
	if string(first) != string(second) {
		t.Fatalf("ledger bytes not deterministic:\n%s\nvs\n%s", first, second)
	}

	// A corrupt ledger must fail construction loudly, not run with a silent
	// zero bill.
	os.WriteFile(path, []byte("{not json"), 0o644)
	if _, err := New(Options{Workers: 1, Run: fr.run, Tenants: twoTenants(t, list), UsagePath: path}); err == nil {
		t.Fatal("corrupt usage ledger accepted")
	}
}

// startTenantAPI boots an authenticated server with one permissive and one
// tightly quota'd tenant.
func startTenantAPI(t *testing.T, opt Options) (*Server, *Client) {
	t.Helper()
	opt.Tenants = twoTenants(t, []Tenant{
		{Name: "quiet", Key: "quiet-key-000001", MaxPriority: 5},
		{Name: "noisy", Key: "noisy-key-000001", MaxActive: 1},
	})
	return startAPI(t, opt)
}

func TestHTTPAuthRequired(t *testing.T) {
	fr := &fakeRunner{}
	_, c := startTenantAPI(t, Options{Workers: 1, Run: fr.run})

	status := func(key, method, path string, body string) (int, errorBody) {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, _ := http.NewRequest(method, "http://"+c.Base+path, rd)
		if key != "" {
			req.Header.Set("Authorization", "Bearer "+key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb
	}

	// Missing and wrong keys: 401 with a typed body carrying the request id.
	for _, key := range []string{"", "wrong-key-000001"} {
		code, eb := status(key, "GET", "/api/v1/jobs", "")
		if code != http.StatusUnauthorized {
			t.Fatalf("key %q: %d, want 401", key, code)
		}
		if eb.Error == "" || eb.RequestID == "" {
			t.Fatalf("401 body lacks error/request_id: %+v", eb)
		}
	}

	// The open endpoints stay open.
	for _, path := range []string{"/healthz", "/metrics.prom"} {
		if code, _ := status("", "GET", path, ""); code != http.StatusOK {
			t.Fatalf("%s: %d, want 200 without a key", path, code)
		}
	}

	// X-API-Key works as the fallback header.
	req, _ := http.NewRequest("GET", "http://"+c.Base+"/api/v1/jobs", nil)
	req.Header.Set("X-API-Key", "quiet-key-000001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("X-API-Key: %d, want 200", resp.StatusCode)
	}

	// Over-ceiling priority: 403 with tenant and reason in the body.
	code, eb := status("quiet-key-000001", "POST", "/api/v1/jobs",
		`{"priority": 6, "configs": [{"arch":"agg","app":"fft","threads":8,"pressure":0.75,"dratio":1}]}`)
	if code != http.StatusForbidden {
		t.Fatalf("over-ceiling priority: %d, want 403", code)
	}
	if eb.Tenant != "quiet" || eb.Reason == "" {
		t.Fatalf("403 body: %+v", eb)
	}
}

func TestClientAuthAndRetrySemantics(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, c := startTenantAPI(t, Options{Workers: 1, Run: fr.run})

	// SubmitRetry must NOT retry a 401 — it is not load, and retrying would
	// hammer the daemon with a bad key.
	c.APIKey = "wrong-key-000001"
	_, retries, err := c.SubmitRetry(context.Background(), spec1("fft"), 5, 0)
	if err == nil || retries != 0 {
		t.Fatalf("401 submit: err=%v retries=%d, want error with 0 retries", err, retries)
	}

	// The noisy tenant's quota (MaxActive 1) produces a per-tenant 429
	// carrying tenant, reason and a Retry-After.
	c.APIKey = "noisy-key-000001"
	st1, err := c.Submit(spec1("a"))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	_, err = c.Submit(spec1("b"))
	var be *BusyError
	if !errors.As(err, &be) || be.Tenant != "noisy" || be.Reason != RejectActiveQuota || be.RetryAfter <= 0 {
		t.Fatalf("quota 429: %v", err)
	}

	// The quiet tenant is not touched by noisy's quota.
	qc := NewClient(c.Base)
	qc.APIKey = "quiet-key-000001"
	st2, err := qc.Submit(spec1("c"))
	if err != nil {
		t.Fatalf("quiet tenant blocked by noisy's quota: %v", err)
	}

	// SubmitRetry absorbs the per-tenant 429 and gets in once the quota
	// frees up.
	done := make(chan struct{})
	var st3 JobStatus
	var retried int
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		st3, retried, err = c.SubmitRetry(ctx, spec1("d"), 100, 50*time.Millisecond)
	}()
	time.Sleep(100 * time.Millisecond) // let it hit the quota at least once
	close(fr.gate)
	<-done
	if err != nil || retried == 0 {
		t.Fatalf("SubmitRetry through quota: err=%v retries=%d", err, retried)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range []string{st1.ID, st2.ID, st3.ID} {
		if _, err := qc.Wait(ctx, id, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	// Statuses carry the submitting tenant; ?tenant= filters the listing.
	if st, _ := qc.Status(st1.ID); st.Tenant != "noisy" {
		t.Fatalf("job %s tenant = %q, want noisy", st1.ID, st.Tenant)
	}
	var filtered struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := qc.get("/api/v1/jobs?tenant=quiet", &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Jobs) != 1 || filtered.Jobs[0].ID != st2.ID {
		t.Fatalf("?tenant=quiet listing: %+v", filtered.Jobs)
	}

	// Tenant snapshots over the wire: names, attribution, no keys.
	snaps, err := qc.Tenants()
	if err != nil || len(snaps) != 2 {
		t.Fatalf("tenants: %v, %v", snaps, err)
	}
	usage, err := qc.Usage("noisy")
	if err != nil || usage.Usage.JobsSubmitted != 2 || usage.Usage.RejectedActiveQuota == 0 {
		t.Fatalf("noisy usage: %+v, %v", usage.Usage, err)
	}
	if _, err := qc.Usage("nobody"); err == nil {
		t.Fatal("unknown tenant usage should 404")
	}
}

func TestTenancyDisabled404(t *testing.T) {
	fr := &fakeRunner{}
	_, c := startAPI(t, Options{Workers: 1, Run: fr.run})
	if _, err := c.Tenants(); err == nil {
		t.Fatal("tenants listing on an anonymous daemon should 404")
	}
	// Anonymous mode ignores any key sent and keeps working.
	c.APIKey = "whatever-key-0001"
	if _, err := c.Jobs(); err != nil {
		t.Fatalf("anonymous daemon rejected a keyed request: %v", err)
	}
}
