package serve

import (
	"testing"
)

// TestKeyDistributionUniform bucket-tests the frozen job-key digest: the
// consistent-hash ring (and the replica placement on it) assumes
// ConfigSpec.Key spreads real configuration sweeps evenly over the 64-bit
// space. A chi-square test over the top 6 bits of several thousand generated
// specs catches a digest regression that would silently skew cluster
// ownership long before any routing test would.
func TestKeyDistributionUniform(t *testing.T) {
	const buckets = 64
	var counts [buckets]int
	n := 0
	bucket := func(cs ConfigSpec, seed uint64) {
		counts[cs.Key(seed)>>58]++
		n++
	}

	// A realistic sweep grid: the Figure 6 families crossed with thread
	// counts, pressures, scales and seeds — the shape of keys an aggsimd
	// cluster actually partitions.
	for _, arch := range []string{"numa", "coma", "agg", "agg-split"} {
		for _, app := range []string{"fft", "radix", "ocean", "lu", "barnes", "water"} {
			for _, threads := range []int{1, 2, 4, 8, 16, 32} {
				for _, pressure := range []float64{0, 0.25, 0.5, 0.75} {
					for _, scale := range []float64{0.02, 0.1, 1} {
						cs := ConfigSpec{
							Arch: arch, App: app, Threads: threads,
							Pressure: pressure, Scale: scale,
						}
						bucket(cs, 0)
						bucket(cs, 1)
						cs.DRatio, cs.DNodes = 4, 8
						bucket(cs, 0)
					}
				}
			}
		}
	}
	if n < 4096 {
		t.Fatalf("only %d generated specs; the grid is supposed to produce >= 4096", n)
	}

	exp := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	// df = 63; the p=0.001 critical value is ~106. The digest is frozen
	// (KeyVersion 1), so this is deterministic — a failure means the digest
	// or the spec canonicalization changed, not bad luck.
	if chi2 > 106 {
		t.Fatalf("chi-square = %.1f over %d buckets (n=%d), exceeds the df=63 p=0.001 critical value 106 — key distribution is skewed", chi2, buckets, n)
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("bucket %d empty over %d keys", i, n)
		}
	}
}
