package serve

// Load/soak harness for the service edge. RunSoak storms a live daemon with
// concurrent clients and then audits the daemon's own answers: submit/status
// latency SLOs from pow2 histograms, bounded admission pushback, an
// exactly-once simulation proof from the engine cycle counters, complete and
// ordered lifecycle event chains, and a parseable Prometheus exposition.
// Everything it asserts is observable from outside the process, so the same
// harness runs against an in-test httptest server (make soak-smoke) or a
// long-lived production daemon (cmd/soak).

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pimdsm/internal/obs/svclog"
	"pimdsm/internal/sim"
	"pimdsm/internal/stats"
)

// SoakOptions configures a soak run.
type SoakOptions struct {
	// Clients is the number of concurrent submitters (default 4).
	Clients int
	// JobsPerClient is how many jobs each client submits (default 4).
	JobsPerClient int
	// Specs are the job payloads, assigned round-robin across submissions.
	// Overlap between jobs is deliberate: it exercises the cache and the
	// singleflight path, and the exactly-once audit counts distinct
	// configurations across the whole storm.
	Specs []JobSpec

	// SubmitSLO caps the p99 submit round-trip (0 disables the assertion).
	SubmitSLO time.Duration
	// StatusSLO caps the p99 status-poll round-trip (0 disables).
	StatusSLO time.Duration
	// MaxRetries bounds how many 429s one submission absorbs before the
	// run counts it as a violation (default 100).
	MaxRetries int
	// RetrySleepCap caps the honored Retry-After sleep so a soak against a
	// slow daemon still terminates (default 250ms; the header is still the
	// signal — the cap only bounds the wait).
	RetrySleepCap time.Duration
	// Wait bounds how long the run waits for any one job to finish
	// (default 2 minutes).
	Wait time.Duration
	// Poll is the status poll interval (default 20ms).
	Poll time.Duration

	// APIKey authenticates the storm against a daemon running with
	// -tenants-file (empty = anonymous daemon).
	APIKey string
	// NoisyKey enables the multi-tenant isolation scenario: a second,
	// quota-bounded "noisy" tenant storms the daemon concurrently with
	// NoisyJobs submissions, and the report's SLO assertions still apply to
	// the main (quiet) tenant only — proof the quiet tenant's latency holds
	// while the noisy one absorbs bounded 429 pushback.
	NoisyKey string
	// NoisyJobs is the noisy tenant's submission count (default 32).
	NoisyJobs int
	// RequireThrottle asserts the noisy tenant was throttled at least once
	// (429 absorbed or submission finally rejected) — proof its quota
	// actually bit during the storm.
	RequireThrottle bool
}

func (o SoakOptions) withDefaults() SoakOptions {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.JobsPerClient <= 0 {
		o.JobsPerClient = 4
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 100
	}
	if o.RetrySleepCap <= 0 {
		o.RetrySleepCap = 250 * time.Millisecond
	}
	if o.Wait <= 0 {
		o.Wait = 2 * time.Minute
	}
	if o.Poll <= 0 {
		o.Poll = 20 * time.Millisecond
	}
	if o.NoisyKey != "" && o.NoisyJobs <= 0 {
		o.NoisyJobs = 32
	}
	return o
}

// SoakReport is the audited outcome of a soak run. Violations lists every
// failed assertion; an empty list means the daemon held its SLOs.
type SoakReport struct {
	Jobs      int `json:"jobs"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Rejected  int `json:"rejected_final"` // submissions that never got in
	Retry429s int `json:"retry_429s"`     // 429s absorbed and retried

	SubmitP99US int64 `json:"submit_p99_us"`
	StatusP99US int64 `json:"status_p99_us"`

	// DistinctConfigs is the number of distinct cache keys across every
	// submitted job; SimulatedRuns is the daemon's engine-run counter delta
	// over the storm. SimulatedRuns <= DistinctConfigs is the exactly-once
	// proof: no configuration was ever simulated twice.
	DistinctConfigs int    `json:"distinct_configs"`
	SimulatedRuns   uint64 `json:"simulated_runs"`

	EventChains int `json:"event_chains_validated"`

	// Noisy-tenant scenario counters (NoisyKey set): the noisy tenant's
	// submissions, how many completed, and how often the daemon pushed it
	// back (429s absorbed plus submissions that never got in). The quiet
	// tenant's SLOs above are asserted regardless of these.
	NoisyJobs      int `json:"noisy_jobs,omitempty"`
	NoisyDone      int `json:"noisy_done,omitempty"`
	NoisyThrottled int `json:"noisy_throttled,omitempty"`
	NoisyRejected  int `json:"noisy_rejected,omitempty"`

	Violations []string `json:"violations,omitempty"`
}

// OK reports whether every assertion held.
func (r *SoakReport) OK() bool { return len(r.Violations) == 0 }

func (r *SoakReport) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// Summary renders the report as a short human-readable block.
func (r *SoakReport) Summary() string {
	s := fmt.Sprintf(
		"soak: %d jobs (%d done, %d failed, %d rejected), %d retried 429s\n"+
			"      submit p99 %dus, status p99 %dus\n"+
			"      %d distinct configs, %d simulated runs, %d event chains validated\n",
		r.Jobs, r.Done, r.Failed, r.Rejected, r.Retry429s,
		r.SubmitP99US, r.StatusP99US,
		r.DistinctConfigs, r.SimulatedRuns, r.EventChains)
	if r.NoisyJobs > 0 {
		s += fmt.Sprintf("      noisy tenant: %d jobs (%d done, %d rejected), throttled %d times\n",
			r.NoisyJobs, r.NoisyDone, r.NoisyRejected, r.NoisyThrottled)
	}
	if r.OK() {
		return s + "      SLOs held\n"
	}
	for _, v := range r.Violations {
		s += "      VIOLATION: " + v + "\n"
	}
	return s
}

// RunSoak storms the daemon at addr and audits the outcome. The error return
// covers harness-level failures (daemon unreachable); SLO and correctness
// failures land in the report's Violations instead.
func RunSoak(addr string, opt SoakOptions) (*SoakReport, error) {
	opt = opt.withDefaults()
	if len(opt.Specs) == 0 {
		return nil, fmt.Errorf("soak: no job specs")
	}
	c := NewClient(addr)
	c.APIKey = opt.APIKey
	before, err := c.Stats()
	if err != nil {
		return nil, fmt.Errorf("soak: daemon unreachable: %w", err)
	}

	rep := &SoakReport{Jobs: opt.Clients * opt.JobsPerClient}

	var (
		mu         sync.Mutex
		submitHist stats.LatHist
		statusHist stats.LatHist
		jobIDs     []string
		jobTotals  = map[string]int{}
	)
	ctx, cancel := context.WithTimeout(context.Background(), opt.Wait)
	defer cancel()

	// The noisy tenant storms concurrently with the quiet clients below; its
	// latencies never touch the quiet histograms, so the SLO assertions
	// measure isolation, not the noise itself. Quota pushback (429 after 429)
	// is the expected outcome for it — only non-Busy failures are violations.
	var noisyWG sync.WaitGroup
	if opt.NoisyKey != "" {
		rep.NoisyJobs = opt.NoisyJobs
		nc := NewClient(addr)
		nc.APIKey = opt.NoisyKey
		noisyWG.Add(1)
		go func() {
			defer noisyWG.Done()
			var ids []string
			for j := 0; j < opt.NoisyJobs; j++ {
				spec := opt.Specs[j%len(opt.Specs)]
				spec.Name = fmt.Sprintf("soak-noisy-%d", j)
				st, retries, err := nc.SubmitRetry(ctx, spec, opt.MaxRetries, opt.RetrySleepCap)
				mu.Lock()
				rep.NoisyThrottled += retries
				if err != nil {
					rep.NoisyRejected++
					var be *BusyError
					if !errors.As(err, &be) && ctx.Err() == nil {
						rep.violate("noisy submit %s: %v", spec.Name, err)
					}
					mu.Unlock()
					continue
				}
				mu.Unlock()
				ids = append(ids, st.ID)
			}
			for _, id := range ids {
				if st, err := nc.Wait(ctx, id, opt.Poll); err == nil && st.State == JobDone {
					mu.Lock()
					rep.NoisyDone++
					mu.Unlock()
				}
			}
		}()
	}

	var wg sync.WaitGroup
	for cl := 0; cl < opt.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for j := 0; j < opt.JobsPerClient; j++ {
				spec := opt.Specs[(cl*opt.JobsPerClient+j)%len(opt.Specs)]
				spec.Name = fmt.Sprintf("soak-c%d-j%d", cl, j)
				t0 := time.Now()
				st, retries, err := c.SubmitRetry(ctx, spec, opt.MaxRetries, opt.RetrySleepCap)
				d := time.Since(t0)
				mu.Lock()
				rep.Retry429s += retries
				if err != nil {
					rep.Rejected++
					rep.violate("submit %s failed after %d retries: %v", spec.Name, retries, err)
					mu.Unlock()
					continue
				}
				// Submit latency is the last successful round-trip, not
				// the retry backoff the server itself asked for.
				submitHist.Observe(sim.Time(d.Microseconds()))
				jobIDs = append(jobIDs, st.ID)
				jobTotals[st.ID] = len(spec.Configs)
				mu.Unlock()

				final, err := waitTimed(ctx, c, st.ID, opt.Poll, &mu, &statusHist)
				mu.Lock()
				switch {
				case err != nil:
					rep.violate("job %s never finished: %v", st.ID, err)
				case final.State == JobDone:
					rep.Done++
					if got := final.CacheHits + final.Simulated + final.Joins; got != final.Total {
						rep.violate("job %s accounting: hits %d + simulated %d + joins %d != total %d",
							st.ID, final.CacheHits, final.Simulated, final.Joins, final.Total)
					}
				default:
					rep.Failed++
					rep.violate("job %s finished %s: %s", st.ID, final.State, final.Error)
				}
				mu.Unlock()
			}
		}(cl)
	}
	wg.Wait()
	noisyWG.Wait()

	if opt.RequireThrottle && rep.NoisyThrottled+rep.NoisyRejected == 0 {
		rep.violate("noisy tenant was never throttled (%d jobs all admitted first try)", rep.NoisyJobs)
	}

	rep.SubmitP99US = int64(submitHist.Percentile(0.99))
	rep.StatusP99US = int64(statusHist.Percentile(0.99))
	if opt.SubmitSLO > 0 && rep.SubmitP99US > opt.SubmitSLO.Microseconds() {
		rep.violate("submit p99 %dus exceeds SLO %s", rep.SubmitP99US, opt.SubmitSLO)
	}
	if opt.StatusSLO > 0 && rep.StatusP99US > opt.StatusSLO.Microseconds() {
		rep.violate("status p99 %dus exceeds SLO %s", rep.StatusP99US, opt.StatusSLO)
	}

	// Exactly-once proof: the daemon's engine-run counter moved by at most
	// the number of distinct cache keys in the storm. Every extra run would
	// mean a configuration was simulated twice despite the cache and
	// singleflight layers.
	distinct := map[uint64]struct{}{}
	for _, spec := range opt.Specs {
		for _, cs := range spec.Configs {
			distinct[cs.Key(spec.Seed)] = struct{}{}
		}
	}
	rep.DistinctConfigs = len(distinct)
	after, err := c.Stats()
	if err != nil {
		return rep, fmt.Errorf("soak: stats after storm: %w", err)
	}
	rep.SimulatedRuns = after.SimulatedRuns - before.SimulatedRuns
	if rep.SimulatedRuns > uint64(rep.DistinctConfigs) {
		rep.violate("exactly-once broken: %d simulated runs for %d distinct configs",
			rep.SimulatedRuns, rep.DistinctConfigs)
	}

	// Lifecycle audit: every job's event chain must be complete and ordered.
	sort.Strings(jobIDs)
	for _, id := range jobIDs {
		events, err := c.JobEvents(id)
		if err != nil {
			rep.violate("job %s events: %v", id, err)
			continue
		}
		if err := ValidateEventChain(events, jobTotals[id]); err != nil {
			rep.violate("job %s event chain: %v", id, err)
			continue
		}
		rep.EventChains++
	}

	// The metrics endpoint must expose a well-formed Prometheus text format
	// while under (post-)load.
	prom, err := c.raw("/metrics.prom")
	if err != nil {
		rep.violate("/metrics.prom: %v", err)
	} else if _, err := svclog.ParsePromText(string(prom)); err != nil {
		rep.violate("/metrics.prom does not parse: %v", err)
	}
	return rep, nil
}

// waitTimed polls the job to a terminal state, feeding each status
// round-trip into hist (under mu).
func waitTimed(ctx context.Context, c *Client, id string, poll time.Duration, mu *sync.Mutex, hist *stats.LatHist) (JobStatus, error) {
	for {
		t0 := time.Now()
		st, err := c.Status(id)
		d := time.Since(t0)
		if err != nil {
			return st, err
		}
		mu.Lock()
		hist.Observe(sim.Time(d.Microseconds()))
		mu.Unlock()
		switch st.State {
		case JobDone, JobFailed, JobAborted:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// ValidateEventChain checks one job's lifecycle events for completeness and
// order: submitted → queued → started, then per-config resolution events
// covering every one of nConfigs configurations (cache_hit, joined, or
// simulated followed by persisted), then exactly one terminal event last.
// Sequence numbers must be strictly increasing and wall-time attribution
// non-decreasing.
func ValidateEventChain(events []svclog.JobEvent, nConfigs int) error {
	if len(events) == 0 {
		return fmt.Errorf("empty chain")
	}
	var lastSeq uint64
	var lastSince int64
	for i, ev := range events {
		if ev.Seq <= lastSeq {
			return fmt.Errorf("event %d: seq %d not increasing (prev %d)", i, ev.Seq, lastSeq)
		}
		if ev.SinceSubmitUS < lastSince {
			return fmt.Errorf("event %d (%s): since_submit_us %d went backward (prev %d)",
				i, ev.Kind, ev.SinceSubmitUS, lastSince)
		}
		lastSeq, lastSince = ev.Seq, ev.SinceSubmitUS
	}
	if events[0].Kind != svclog.EvSubmitted {
		return fmt.Errorf("chain starts with %s, want %s", events[0].Kind, svclog.EvSubmitted)
	}
	term := events[len(events)-1]
	switch term.Kind {
	case svclog.EvDone, svclog.EvFailed, svclog.EvAborted:
	default:
		return fmt.Errorf("chain ends with %s, not a terminal event", term.Kind)
	}
	if term.Kind == svclog.EvAborted {
		// A drained job legitimately never starts; submitted → queued →
		// aborted is a complete chain.
		return nil
	}
	if len(events) < 2 || events[1].Kind != svclog.EvQueued {
		return fmt.Errorf("no %s event after %s", svclog.EvQueued, svclog.EvSubmitted)
	}
	started := false
	covered := map[int]bool{}
	simulated := map[int]bool{}
	persisted := map[int]bool{}
	for i, ev := range events[2 : len(events)-1] {
		switch ev.Kind {
		case svclog.EvStarted:
			if started {
				return fmt.Errorf("duplicate %s event", svclog.EvStarted)
			}
			started = true
		case svclog.EvCacheHit, svclog.EvJoined, svclog.EvSimulated, svclog.EvPersisted:
			if !started {
				return fmt.Errorf("%s before %s", ev.Kind, svclog.EvStarted)
			}
			if ev.Config < 0 || ev.Config >= nConfigs {
				return fmt.Errorf("event %d (%s): config %d out of range [0,%d)", i+2, ev.Kind, ev.Config, nConfigs)
			}
			switch ev.Kind {
			case svclog.EvSimulated:
				simulated[ev.Config] = true
			case svclog.EvPersisted:
				if !simulated[ev.Config] {
					return fmt.Errorf("config %d persisted without a %s event", ev.Config, svclog.EvSimulated)
				}
				persisted[ev.Config] = true
			default:
				covered[ev.Config] = true
			}
		default:
			return fmt.Errorf("event %d: unexpected mid-chain kind %s", i+2, ev.Kind)
		}
	}
	if !started {
		return fmt.Errorf("no %s event", svclog.EvStarted)
	}
	if term.Kind == svclog.EvDone {
		for cfg := 0; cfg < nConfigs; cfg++ {
			if !covered[cfg] && !simulated[cfg] {
				return fmt.Errorf("config %d has no resolution event", cfg)
			}
		}
		for cfg := range simulated {
			if !persisted[cfg] {
				return fmt.Errorf("config %d simulated but never persisted", cfg)
			}
		}
	}
	return nil
}
