package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"pimdsm/internal/obs"
	"pimdsm/internal/obs/svclog"
)

// API is the service's JSON/HTTP surface over a Server, optionally mounted
// alongside an obs.Dashboard (which keeps its routes: /, /spans, /metrics,
// /profile, /debug/vars, /debug/pprof/). Every route passes through the
// svclog middleware: requests are stamped with X-Request-ID, logged as
// structured JSON, and fed into per-endpoint latency histograms.
//
// Routes:
//
//	POST /api/v1/jobs               submit a JobSpec  (202, or 429 + Retry-After)
//	GET  /api/v1/jobs               list jobs
//	GET  /api/v1/jobs/{id}          job status
//	GET  /api/v1/jobs/{id}/result   results (canonical JSON, input order)
//	GET  /api/v1/jobs/{id}/metrics  job metrics registry JSON
//	GET  /api/v1/jobs/{id}/spans    job span recorder (PDS1 binary)
//	GET  /api/v1/jobs/{id}/progress plain-text progress stream until done
//	GET  /api/v1/jobs/{id}/events   lifecycle event chain (?format=chrome)
//	GET  /api/v1/events             SSE stream of all lifecycle events
//	                                (Last-Event-ID resume, ?job= / ?tenant= filter)
//	GET  /api/v1/stats              server + cache + event counters
//	GET  /api/v1/tenants            tenant quotas and live usage (keys never shown)
//	GET  /api/v1/tenants/{name}/usage  one tenant's usage (process + cumulative)
//	GET  /metrics.prom              Prometheus text exposition
//	GET  /healthz                   pure liveness (always 200 while serving)
//	GET  /readyz                    readiness: 503 while draining/saturated
//
// With a tenant registry configured (Options.Tenants), every /api/v1 route
// requires an API key (Authorization: Bearer <key> or X-API-Key): a missing
// or unknown key gets a typed 401 body carrying the request ID, a
// submission above the tenant's priority ceiling a typed 403. Probe and
// scrape paths (/healthz, /readyz, /metrics.prom) and the dashboard stay
// open. Without a registry every route is anonymous — the pre-tenancy
// behavior, byte for byte.
type API struct {
	srv  *Server
	dash *obs.Dashboard
	log  *slog.Logger
	hs   *svclog.HTTPStats

	// sseKeepalive is the comment-frame interval on the SSE stream
	// (keeps idle proxies from reaping the connection; test seam).
	sseKeepalive time.Duration
}

// NewAPI wraps a server; dash may be nil. The API logs through the server's
// logger (Options.Log) so one flag configures the whole edge.
func NewAPI(srv *Server, dash *obs.Dashboard) *API {
	return &API{
		srv:          srv,
		dash:         dash,
		log:          srv.Log(),
		hs:           svclog.NewHTTPStats(),
		sseKeepalive: 15 * time.Second,
	}
}

// HTTPStats exposes the per-endpoint request histograms (fed by the
// middleware, drained by /metrics.prom and tests).
func (a *API) HTTPStats() *svclog.HTTPStats { return a.hs }

// resultEnvelope is the GET .../result payload. Results holds each run's
// canonical JSON verbatim, so the bytes a client extracts are exactly the
// bytes the cache stores.
type resultEnvelope struct {
	Job     JobStatus         `json:"job"`
	Results []json.RawMessage `json:"results"`
}

// errorBody is every non-2xx JSON payload. RequestID echoes the request's
// X-Request-ID so a client-reported error correlates with exactly one
// "http_request" log line.
type errorBody struct {
	Error         string `json:"error"`
	RequestID     string `json:"request_id,omitempty"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
	// Tenant and Reason attribute tenant-gated rejections (429/403): who was
	// pushed back and which gate did it.
	Tenant string `json:"tenant,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Peer names the cluster node a 421 Misdirected Request points at: the
	// owner of the submission's keys (or any alive peer while this node
	// drains). Clients resubmit there with X-Aggsimd-Forwarded set.
	Peer string `json:"peer,omitempty"`
}

// writeJSON encodes v; an encode/write failure (client gone, marshal bug)
// is logged instead of silently dropped.
func (a *API) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		a.log.Error("response_encode_failed",
			"request_id", svclog.RequestID(r.Context()),
			"route", r.Pattern, "status", code, "err", err.Error())
	}
}

func (a *API) writeError(w http.ResponseWriter, r *http.Request, code int, msg string) {
	a.writeJSON(w, r, code, errorBody{Error: msg, RequestID: svclog.RequestID(r.Context())})
}

// apiKey extracts the request's API key: Authorization: Bearer <key> takes
// precedence, X-API-Key is the fallback.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); len(h) > 7 && strings.EqualFold(h[:7], "Bearer ") {
		return strings.TrimSpace(h[7:])
	}
	return r.Header.Get("X-API-Key")
}

// auth guards one API handler with tenant authentication. Anonymous mode
// (no registry) is a pass-through. On success the tenant name is recorded
// in the request context, where the submit handler stamps it into the
// JobSpec and the svclog middleware picks it up for the request log line.
// The wrapper runs inside the mux, so 401 responses carry the real route
// pattern in logs and histograms.
func (a *API) auth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reg := a.srv.Tenants()
		if reg == nil {
			h(w, r)
			return
		}
		key := apiKey(r)
		if key == "" {
			a.writeError(w, r, http.StatusUnauthorized,
				"missing API key (send Authorization: Bearer <key> or X-API-Key)")
			return
		}
		name, ok := reg.Authenticate(key)
		if !ok {
			a.writeError(w, r, http.StatusUnauthorized, "invalid API key")
			return
		}
		svclog.SetTenant(r.Context(), name)
		h(w, r)
	}
}

// Handler returns the API handler: the route mux wrapped in the request
// middleware; dashboard routes (when a dashboard was given) serve everything
// outside the API and health/metrics paths.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", a.auth(a.submit))
	mux.HandleFunc("GET /api/v1/jobs", a.auth(a.list))
	mux.HandleFunc("GET /api/v1/jobs/{id}", a.auth(a.status))
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", a.auth(a.result))
	mux.HandleFunc("GET /api/v1/jobs/{id}/metrics", a.auth(a.metrics))
	mux.HandleFunc("GET /api/v1/jobs/{id}/spans", a.auth(a.spans))
	mux.HandleFunc("GET /api/v1/jobs/{id}/profile", a.auth(a.artifact(ArtifactProfile, "application/json")))
	mux.HandleFunc("GET /api/v1/jobs/{id}/folded", a.auth(a.artifact(ArtifactFolded, "text/plain; charset=utf-8")))
	mux.HandleFunc("GET /api/v1/jobs/{id}/decompose", a.auth(a.artifact(ArtifactDecompose, "application/json")))
	mux.HandleFunc("GET /api/v1/jobs/{id}/progress", a.auth(a.progress))
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", a.auth(a.jobEvents))
	mux.HandleFunc("GET /api/v1/events", a.auth(a.eventsSSE))
	mux.HandleFunc("GET /api/v1/stats", a.auth(a.stats))
	mux.HandleFunc("GET /api/v1/tenants", a.auth(a.tenantsList))
	mux.HandleFunc("GET /api/v1/tenants/{name}/usage", a.auth(a.tenantUsage))
	// Cluster peer protocol (DESIGN.md §15): mounted outside tenant auth —
	// peers are not tenants; the shared cluster name (checked per request)
	// and the verify-don't-trust key checks admit them. Without an attached
	// node every route is an inert 404, so the single-node surface is
	// unchanged.
	mux.HandleFunc("POST /api/v1/cluster/heartbeat", a.clusterHeartbeat)
	mux.HandleFunc("POST /api/v1/cluster/compute", a.clusterCompute)
	mux.HandleFunc("GET /api/v1/cluster/lookup", a.clusterLookup)
	mux.HandleFunc("POST /api/v1/cluster/replicate", a.clusterReplicate)
	mux.HandleFunc("POST /api/v1/cluster/steal", a.clusterSteal)
	mux.HandleFunc("POST /api/v1/cluster/stolen", a.clusterStolen)
	mux.HandleFunc("GET /metrics.prom", a.metricsProm)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", a.readyz)
	if a.dash != nil {
		mux.Handle("/", a.dash.Handler())
	}
	return svclog.Middleware(a.log, a.hs, mux)
}

// Serve serves the API on an already-bound listener (hardened
// obs.NewHTTPServer, background goroutine) and returns a closer. The cluster
// harness uses this to know every node's address before any node starts.
func (a *API) Serve(ln net.Listener) func() {
	hs := obs.NewHTTPServer(a.Handler())
	go hs.Serve(ln)
	return func() { hs.Close() }
}

// ListenAndServe binds addr (":0" for an ephemeral port) and serves the API
// on a hardened obs.NewHTTPServer in the background, returning the bound
// address and a closer that shuts the HTTP listener down.
func (a *API) ListenAndServe(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	return ln.Addr().String(), a.Serve(ln), nil
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		a.writeError(w, r, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	// The tenant is the authenticated identity, never the client's claim: a
	// spec-supplied value is overwritten (tenant mode) or cleared (anonymous).
	spec.Tenant = svclog.TenantName(r.Context())
	// Cluster front door: when every key in the batch belongs to one other
	// node (and nothing is cached here), point the client straight at the
	// owner instead of proxying the whole job. One hop at most: a submission
	// that already followed a redirect is served here regardless.
	if r.Header.Get(forwardedHeader) == "" {
		if peer, reason, ok := a.srv.RedirectTarget(spec); ok {
			a.writeJSON(w, r, http.StatusMisdirectedRequest, errorBody{
				Error:     fmt.Sprintf("resubmit to cluster peer %s (%s)", peer, reason),
				RequestID: svclog.RequestID(r.Context()),
				Reason:    reason,
				Peer:      peer,
			})
			return
		}
	}
	st, err := a.srv.Submit(spec)
	if err != nil {
		var fe *ForbiddenError
		switch e := err.(type) {
		case *BusyError:
			sec := int(e.RetryAfter / time.Second)
			if sec < 1 {
				sec = 1
			}
			// Header and body must agree: clients honor either.
			w.Header().Set("Retry-After", strconv.Itoa(sec))
			a.writeJSON(w, r, http.StatusTooManyRequests, errorBody{
				Error:         err.Error(),
				RequestID:     svclog.RequestID(r.Context()),
				RetryAfterSec: sec,
				Tenant:        e.Tenant,
				Reason:        e.Reason,
			})
		default:
			if err == ErrDraining {
				a.writeError(w, r, http.StatusServiceUnavailable, err.Error())
				return
			}
			if errors.As(err, &fe) {
				a.writeJSON(w, r, http.StatusForbidden, errorBody{
					Error:     err.Error(),
					RequestID: svclog.RequestID(r.Context()),
					Tenant:    fe.Tenant,
					Reason:    fe.Msg,
				})
				return
			}
			a.writeError(w, r, http.StatusBadRequest, err.Error())
		}
		return
	}
	a.writeJSON(w, r, http.StatusAccepted, st)
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	jobs := a.srv.Jobs()
	if tenant := r.URL.Query().Get("tenant"); tenant != "" {
		kept := jobs[:0]
		for _, st := range jobs {
			if st.Tenant == tenant {
				kept = append(kept, st)
			}
		}
		jobs = kept
	}
	a.writeJSON(w, r, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: jobs})
}

// tenantsList serves every tenant's quotas, live scheduling state and usage
// (never the keys). 404 in anonymous mode, like the event endpoints when the
// event log is off.
func (a *API) tenantsList(w http.ResponseWriter, r *http.Request) {
	reg := a.srv.Tenants()
	if reg == nil {
		a.writeError(w, r, http.StatusNotFound, "tenancy disabled on this server (run with -tenants-file)")
		return
	}
	a.writeJSON(w, r, http.StatusOK, struct {
		Tenants []TenantSnapshot `json:"tenants"`
	}{Tenants: reg.Snapshot()})
}

// tenantUsage serves one tenant's usage: the process-lifetime counters that
// back the per-tenant Prometheus families, and the cumulative ledger that
// survives restarts.
func (a *API) tenantUsage(w http.ResponseWriter, r *http.Request) {
	reg := a.srv.Tenants()
	if reg == nil {
		a.writeError(w, r, http.StatusNotFound, "tenancy disabled on this server (run with -tenants-file)")
		return
	}
	name := r.PathValue("name")
	snap, ok := reg.Get(name)
	if !ok {
		a.writeError(w, r, http.StatusNotFound, "no such tenant "+name)
		return
	}
	a.writeJSON(w, r, http.StatusOK, snap)
}

// readyz is the readiness probe: 200 while the server accepts submissions,
// 503 with a JSON reason while draining or the admission window is
// saturated. Liveness stays on /healthz, which never flips.
func (a *API) readyz(w http.ResponseWriter, r *http.Request) {
	type clusterReadiness struct {
		Name    string `json:"name"`
		Self    string `json:"self"`
		Alive   int    `json:"alive"`
		Suspect int    `json:"suspect"`
		Dead    int    `json:"dead"`
	}
	type readiness struct {
		Ready     bool   `json:"ready"`
		Reason    string `json:"reason,omitempty"`
		RequestID string `json:"request_id,omitempty"`
		// Cluster summarizes membership when clustered (absent otherwise, so
		// the single-node body is unchanged). Membership never gates
		// readiness: a node alone in the ring still serves what it owns.
		Cluster *clusterReadiness `json:"cluster,omitempty"`
	}
	ok, reason := a.srv.Ready()
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	body := readiness{Ready: ok, Reason: reason, RequestID: svclog.RequestID(r.Context())}
	if node := a.srv.clusterNode(); node != nil {
		st := node.Stats()
		body.Cluster = &clusterReadiness{
			Name: st.Name, Self: st.Self,
			Alive: st.Alive, Suspect: st.Suspect, Dead: st.Dead,
		}
	}
	a.writeJSON(w, r, code, body)
}

// jobFor resolves {id} or writes a 404.
func (a *API) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := a.srv.Job(id)
	if !ok {
		a.writeError(w, r, http.StatusNotFound, "no such job "+id)
	}
	return j, ok
}

func (a *API) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := a.jobFor(w, r); ok {
		a.writeJSON(w, r, http.StatusOK, a.srv.Status(j))
	}
}

func (a *API) result(w http.ResponseWriter, r *http.Request) {
	j, ok := a.jobFor(w, r)
	if !ok {
		return
	}
	st := a.srv.Status(j)
	_, js, done := a.srv.Results(j)
	if !done {
		code := http.StatusConflict
		if st.State == JobFailed || st.State == JobAborted {
			a.writeError(w, r, code, fmt.Sprintf("job %s %s: %s", st.ID, st.State, st.Error))
			return
		}
		a.writeError(w, r, code, fmt.Sprintf("job %s is %s (%d/%d)", st.ID, st.State, st.Done, st.Total))
		return
	}
	env := resultEnvelope{Job: st, Results: make([]json.RawMessage, len(js))}
	for i, b := range js {
		env.Results[i] = json.RawMessage(b)
	}
	// No indentation here: an indenting encoder reformats the raw messages,
	// and this endpoint's contract is that each result is the cache's
	// canonical bytes verbatim.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := json.NewEncoder(w).Encode(env); err != nil {
		a.log.Error("response_encode_failed",
			"request_id", svclog.RequestID(r.Context()),
			"route", r.Pattern, "status", http.StatusOK, "err", err.Error())
	}
}

func (a *API) metrics(w http.ResponseWriter, r *http.Request) {
	j, ok := a.jobFor(w, r)
	if !ok {
		return
	}
	reg := a.srv.Metrics(j)
	if reg == nil {
		a.writeError(w, r, http.StatusNotFound, "job has no metrics artifact (submit with \"metrics\": true and wait for it to finish)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	reg.WriteJSON(w)
}

func (a *API) spans(w http.ResponseWriter, r *http.Request) {
	j, ok := a.jobFor(w, r)
	if !ok {
		return
	}
	sp := a.srv.Spans(j)
	if sp == nil {
		a.writeError(w, r, http.StatusNotFound, "job has no spans artifact (submit with \"spans\": true and wait for it to finish)")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	sp.WriteBinary(w)
}

// artifact serves one flight-recorder artifact. The 404 bodies are the
// same actionable shape as the metrics/spans ones: they say exactly how to
// get the artifact to exist.
func (a *API) artifact(kind, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := a.jobFor(w, r)
		if !ok {
			return
		}
		b, err := a.srv.Artifact(j, kind)
		switch {
		case err == ErrArtifactNotRecorded:
			a.writeError(w, r, http.StatusNotFound,
				fmt.Sprintf("job has no %s artifact (submit with \"telemetry\": true and wait for it to finish)", kind))
			return
		case err == ErrArtifactUnavailable:
			a.writeError(w, r, http.StatusNotFound,
				fmt.Sprintf("job's %s artifact is not in the artifact store (evicted, or every config was a cache hit; raise -artifact-bytes or resubmit with fresh configs)", kind))
			return
		case err != nil:
			a.writeError(w, r, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Write(b)
	}
}

// jobEvents serves one job's complete lifecycle event chain, as JSON by
// default or as Chrome trace_event JSON with ?format=chrome (loadable in
// chrome://tracing / Perfetto next to the simulator's protocol traces).
func (a *API) jobEvents(w http.ResponseWriter, r *http.Request) {
	el := a.srv.Events()
	if el == nil {
		a.writeError(w, r, http.StatusNotFound, "lifecycle event log disabled on this server")
		return
	}
	j, ok := a.jobFor(w, r)
	if !ok {
		return
	}
	events := el.Job(j.id)
	switch r.URL.Query().Get("format") {
	case "", "json":
		a.writeJSON(w, r, http.StatusOK, struct {
			Job    string            `json:"job"`
			Events []svclog.JobEvent `json:"events"`
		}{Job: j.id, Events: events})
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		if err := svclog.WriteChromeJSON(w, events); err != nil {
			a.log.Error("response_encode_failed",
				"request_id", svclog.RequestID(r.Context()),
				"route", r.Pattern, "status", http.StatusOK, "err", err.Error())
		}
	default:
		a.writeError(w, r, http.StatusBadRequest, "unknown format (want json or chrome)")
	}
}

// eventsSSE streams lifecycle events as Server-Sent Events: `id:` carries
// the global sequence number, so a reconnecting client sends Last-Event-ID
// and the ring replays everything it missed. ?job= filters to one job's
// events and ?tenant= to one tenant's (filters apply after sequencing — ids
// stay global, resume still works). This is the dashboard's scale path: one
// connection per watcher regardless of job count, where the plain-text
// long-poll held one connection per job.
func (a *API) eventsSSE(w http.ResponseWriter, r *http.Request) {
	el := a.srv.Events()
	if el == nil {
		a.writeError(w, r, http.StatusNotFound, "lifecycle event log disabled on this server")
		return
	}
	var last uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		last, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.URL.Query().Get("last_event_id"); v != "" {
		last, _ = strconv.ParseUint(v, 10, 64)
	}
	jobFilter := r.URL.Query().Get("job")
	tenantFilter := r.URL.Query().Get("tenant")

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl, canFlush := w.(http.Flusher)
	flush := func() {
		if canFlush {
			fl.Flush()
		}
	}

	emit := func(ev svclog.JobEvent) bool {
		if (jobFilter != "" && ev.Job != jobFilter) ||
			(tenantFilter != "" && ev.Tenant != tenantFilter) {
			last = ev.Seq // filtered events still advance the cursor
			return true
		}
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
			return false
		}
		last = ev.Seq
		return true
	}

	// Subscribe before replaying so no event falls between replay and live;
	// duplicates are suppressed by the Seq cursor.
	ch, cancel := el.Subscribe(256)
	defer cancel()
	replay, _ := el.Since(last)
	for _, ev := range replay {
		if ev.Seq > last && !emit(ev) {
			return
		}
	}
	flush()

	keepalive := a.sseKeepalive
	if keepalive <= 0 {
		keepalive = 15 * time.Second
	}
	tick := time.NewTicker(keepalive)
	defer tick.Stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if ev.Seq <= last {
				continue
			}
			if ev.Seq > last+1 {
				// The subscriber buffer dropped events; resync from the ring.
				missed, _ := el.Since(last)
				for _, m := range missed {
					if m.Seq > last && m.Seq < ev.Seq && !emit(m) {
						return
					}
				}
			}
			if !emit(ev) {
				return
			}
			// Drain whatever is already buffered before flushing once.
			for drained := false; !drained; {
				select {
				case more, open := <-ch:
					if !open {
						flush()
						return
					}
					if more.Seq > last && !emit(more) {
						return
					}
				default:
					drained = true
				}
			}
			flush()
		case <-tick.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// progress streams one "done/total state" line per change (plus a keepalive
// snapshot every second) until the job reaches a terminal state — the HTTP
// face of the Sweep.Progress/OnResult hooks that feed the job counters.
// Superseded by /api/v1/events (SSE) for watching many jobs at scale, kept
// for single-job CLI use.
func (a *API) progress(w http.ResponseWriter, r *http.Request) {
	j, ok := a.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	fl, canFlush := w.(http.Flusher)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	last := ""
	emit := func(force bool) JobStatus {
		st := a.srv.Status(j)
		line := fmt.Sprintf("%d/%d %s\n", st.Done, st.Total, st.State)
		if force || line != last {
			fmt.Fprint(w, line)
			if canFlush {
				fl.Flush()
			}
			last = line
		}
		return st
	}
	emit(true)
	for {
		select {
		case <-j.Done():
			st := emit(true)
			if st.Error != "" {
				fmt.Fprintf(w, "error: %s\n", st.Error)
			}
			return
		case <-tick.C:
			emit(false)
		case <-r.Context().Done():
			return
		}
	}
}

func (a *API) stats(w http.ResponseWriter, r *http.Request) {
	a.writeJSON(w, r, http.StatusOK, a.srv.Stats())
}

// metricsProm is the Prometheus text-format exposition: server, cache,
// queue and event-log counters plus the per-endpoint HTTP histograms. All
// hand-rolled (no client_golang); the soak harness parses and validates the
// output with svclog.ParsePromText.
func (a *API) metricsProm(w http.ResponseWriter, r *http.Request) {
	st := a.srv.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := svclog.NewPromWriter(w)

	counter := func(name, help string, v uint64) {
		p.Family(name, "counter", help)
		p.Sample(name, nil, float64(v))
	}
	gauge := func(name, help string, v float64) {
		p.Family(name, "gauge", help)
		p.Sample(name, nil, v)
	}

	counter("aggsimd_jobs_submitted_total", "Jobs admitted past the admission window.", st.JobsSubmitted)
	counter("aggsimd_jobs_rejected_total", "Submissions rejected (window full or draining).", st.JobsRejected)
	counter("aggsimd_jobs_done_total", "Jobs finished successfully.", st.JobsDone)
	counter("aggsimd_jobs_failed_total", "Jobs finished with an error.", st.JobsFailed)
	counter("aggsimd_jobs_aborted_total", "Queued jobs aborted by shutdown.", st.JobsAborted)
	counter("aggsimd_simulated_runs_total", "Real simulations executed (cache hits and joins excluded).", st.SimulatedRuns)
	counter("aggsimd_simulated_cycles_total", "Engine cycles across all real simulations.", st.SimulatedCycles)

	gauge("aggsimd_queue_depth", "Jobs waiting to run.", float64(st.Queued))
	gauge("aggsimd_queue_limit", "Admission window size.", float64(st.QueueLimit))
	gauge("aggsimd_jobs_running", "Jobs currently simulating.", float64(st.Running))
	gauge("aggsimd_workers", "Worker pool size.", float64(st.Workers))
	draining := 0.0
	if st.Draining {
		draining = 1
	}
	gauge("aggsimd_draining", "1 while the server is shutting down.", draining)

	gauge("aggsimd_cache_entries", "Result cache entries resident.", float64(st.Cache.Entries))
	gauge("aggsimd_cache_limit", "Result cache LRU bound.", float64(st.Cache.Limit))
	gauge("aggsimd_cache_inflight", "Simulations currently in flight (singleflight).", float64(st.Cache.InFlight))
	counter("aggsimd_cache_hits_total", "Result cache hits.", st.Cache.Hits)
	counter("aggsimd_cache_misses_total", "Result cache misses.", st.Cache.Misses)
	counter("aggsimd_cache_joins_total", "Singleflight joins on in-flight simulations.", st.Cache.Joins)
	counter("aggsimd_cache_evictions_total", "Result cache LRU evictions.", st.Cache.Evictions)

	gauge("aggsimd_artifacts_resident", "Flight-recorder artifacts resident in the store.", float64(st.Artifacts.Count))
	gauge("aggsimd_artifacts_bytes", "Flight-recorder store bytes resident.", float64(st.Artifacts.Bytes))
	gauge("aggsimd_artifacts_bytes_limit", "Flight-recorder store byte bound.", float64(st.Artifacts.Limit))
	counter("aggsimd_artifacts_puts_total", "Flight-recorder artifacts written.", st.Artifacts.Puts)
	counter("aggsimd_artifacts_hits_total", "Flight-recorder artifact fetches served.", st.Artifacts.Hits)
	counter("aggsimd_artifacts_misses_total", "Flight-recorder artifact fetches missed (evicted or never recorded).", st.Artifacts.Misses)
	counter("aggsimd_artifacts_evictions_total", "Flight-recorder artifacts evicted by the byte bound.", st.Artifacts.Evictions)

	counter("aggsimd_events_appended_total", "Lifecycle events recorded.", st.Events.Appended)
	counter("aggsimd_events_dropped_total", "Lifecycle events dropped on slow subscribers.", st.Events.Dropped)
	gauge("aggsimd_event_subscribers", "Live SSE/event subscribers.", float64(st.Events.Subscribers))

	// Per-tenant families, only with a registry configured — the anonymous
	// exposition stays byte-identical to the pre-tenancy daemon. The label
	// cardinality is bounded by the tenants file: the fixed tenant set is
	// the only source of `tenant` values. Per-tenant job/cache/cycle
	// counters sum exactly to the globals above when all traffic is
	// authenticated, because each increments at the same point as its
	// global counterpart.
	if len(st.Tenants) > 0 {
		tc := func(name, help string, pick func(TenantSnapshot) uint64) {
			p.Family(name, "counter", help)
			for _, t := range st.Tenants {
				p.Sample(name, []svclog.Label{{K: "tenant", V: t.Name}}, float64(pick(t)))
			}
		}
		tg := func(name, help string, pick func(TenantSnapshot) float64) {
			p.Family(name, "gauge", help)
			for _, t := range st.Tenants {
				p.Sample(name, []svclog.Label{{K: "tenant", V: t.Name}}, pick(t))
			}
		}
		tc("aggsimd_tenant_http_requests_total", "Authenticated API requests by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.Requests })
		tc("aggsimd_tenant_jobs_submitted_total", "Jobs admitted by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.JobsSubmitted })
		tc("aggsimd_tenant_jobs_done_total", "Jobs finished successfully by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.JobsDone })
		tc("aggsimd_tenant_jobs_failed_total", "Jobs finished with an error by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.JobsFailed })
		tc("aggsimd_tenant_jobs_aborted_total", "Queued jobs aborted by shutdown, by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.JobsAborted })
		p.Family("aggsimd_tenant_rejected_total", "counter", "Submissions rejected by tenant and gate.")
		for _, t := range st.Tenants {
			for _, rr := range []struct {
				reason string
				v      uint64
			}{
				{"rate", t.Usage.RejectedRate},
				{"queue_quota", t.Usage.RejectedQueueQuota},
				{"concurrency_quota", t.Usage.RejectedActiveQuota},
				{"window", t.Usage.RejectedWindow},
			} {
				p.Sample("aggsimd_tenant_rejected_total",
					[]svclog.Label{{K: "tenant", V: t.Name}, {K: "reason", V: rr.reason}}, float64(rr.v))
			}
		}
		tc("aggsimd_tenant_cache_hits_total", "Result cache hits by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.CacheHits })
		tc("aggsimd_tenant_cache_misses_total", "Result cache misses by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.CacheMisses })
		tc("aggsimd_tenant_cache_joins_total", "Singleflight joins by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.Joins })
		tc("aggsimd_tenant_simulated_runs_total", "Real simulations executed by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.SimulatedRuns })
		tc("aggsimd_tenant_simulated_cycles_total", "Engine cycles consumed by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.EngineCycles })
		tc("aggsimd_tenant_result_bytes_total", "Canonical result bytes delivered by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.ResultBytes })
		tc("aggsimd_tenant_artifact_bytes_total", "Flight-recorder artifact bytes written by tenant.",
			func(t TenantSnapshot) uint64 { return t.Usage.ArtifactBytes })
		tg("aggsimd_tenant_queued", "Jobs waiting to run by tenant.",
			func(t TenantSnapshot) float64 { return float64(t.Queued) })
		tg("aggsimd_tenant_running", "Jobs currently simulating by tenant.",
			func(t TenantSnapshot) float64 { return float64(t.Running) })
	}

	// Cluster families, only with a node attached — the single-node
	// exposition stays byte-identical to the pre-cluster daemon.
	if cs := st.Cluster; cs != nil {
		gauge("aggsimd_cluster_members_alive", "Cluster members alive (including self).", float64(cs.Node.Alive))
		gauge("aggsimd_cluster_members_suspect", "Cluster members suspected (silent but still in the ring).", float64(cs.Node.Suspect))
		gauge("aggsimd_cluster_members_dead", "Cluster members declared dead (out of the ring).", float64(cs.Node.Dead))
		gauge("aggsimd_cluster_ring_members", "Members currently owning ring partitions.", float64(cs.Node.RingMembers))
		gauge("aggsimd_cluster_ring_version", "Ring rebuild count (bumps on every membership change).", float64(cs.Node.RingVersion))
		gauge("aggsimd_cluster_incarnation", "This node's gossip incarnation.", float64(cs.Node.Incarnation))
		gauge("aggsimd_cluster_stolen_inflight", "Jobs currently out on loan to thieves.", float64(cs.StolenInFlight))
		counter("aggsimd_cluster_heartbeats_sent_total", "Gossip heartbeats delivered to peers.", cs.Node.HeartbeatsSent)
		counter("aggsimd_cluster_heartbeats_received_total", "Gossip heartbeats received from peers.", cs.Node.HeartbeatsReceived)
		counter("aggsimd_cluster_heartbeat_failures_total", "Gossip heartbeats that failed to deliver.", cs.Node.HeartbeatFailures)
		counter("aggsimd_cluster_refutations_total", "Death rumors about this node it refuted.", cs.Node.Refutations)
		counter("aggsimd_cluster_forwards_sent_total", "Configs resolved through an owning peer.", cs.ForwardsSent)
		counter("aggsimd_cluster_forwards_failed_total", "Forwarded resolutions that failed over to the next target.", cs.ForwardsFailed)
		counter("aggsimd_cluster_forwards_served_total", "Forwarded computes served as owner.", cs.ForwardsServed)
		counter("aggsimd_cluster_lookups_served_total", "Replica-cache lookups served to peers.", cs.LookupsServed)
		counter("aggsimd_cluster_lookups_missed_total", "Replica-cache lookups that missed.", cs.LookupsMissed)
		counter("aggsimd_cluster_replicas_sent_total", "Result copies pushed to ring successors.", cs.ReplicasSent)
		counter("aggsimd_cluster_replicas_failed_total", "Result copies that failed to push.", cs.ReplicasFailed)
		counter("aggsimd_cluster_replicas_received_total", "Result copies received from peers.", cs.ReplicasReceived)
		counter("aggsimd_cluster_recoveries_total", "Simulations avoided by pulling a replica instead.", cs.Recoveries)
		counter("aggsimd_cluster_steals_given_total", "Queued jobs handed to thieves.", cs.StealsGiven)
		counter("aggsimd_cluster_steals_taken_total", "Jobs stolen from peers.", cs.StealsTaken)
		counter("aggsimd_cluster_steals_completed_total", "Stolen jobs completed and reported back.", cs.StealsCompleted)
		counter("aggsimd_cluster_steals_failed_total", "Stolen jobs that failed or could not report back.", cs.StealsFailed)
		counter("aggsimd_cluster_steals_requeued_total", "Stolen jobs requeued after the thief went silent.", cs.StealsRequeued)
		counter("aggsimd_cluster_redirects_total", "Submissions redirected to the owning peer (421).", cs.Redirects)
	}

	snap := a.hs.Snapshot()
	p.Family("aggsimd_http_requests_total", "counter", "HTTP requests by route and status code.")
	for _, ep := range snap {
		codes := make([]int, 0, len(ep.Status))
		for code := range ep.Status {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			p.Sample("aggsimd_http_requests_total",
				[]svclog.Label{{K: "route", V: ep.Route}, {K: "code", V: strconv.Itoa(code)}},
				float64(ep.Status[code]))
		}
	}
	p.Family("aggsimd_http_request_duration_us", "histogram", "Request latency in microseconds (power-of-two buckets).")
	for _, ep := range snap {
		h := ep.Hist
		p.Histogram("aggsimd_http_request_duration_us",
			[]svclog.Label{{K: "route", V: ep.Route}}, &h, float64(ep.SumUS))
	}
	if err := p.Flush(); err != nil {
		a.log.Error("response_encode_failed",
			"request_id", svclog.RequestID(r.Context()),
			"route", r.Pattern, "status", http.StatusOK, "err", err.Error())
	}
}
