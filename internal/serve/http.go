package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"pimdsm/internal/obs"
)

// API is the service's JSON/HTTP surface over a Server, optionally mounted
// alongside an obs.Dashboard (which keeps its routes: /, /spans, /metrics,
// /profile, /debug/vars, /debug/pprof/).
//
// Routes:
//
//	POST /api/v1/jobs              submit a JobSpec  (202, or 429 + Retry-After)
//	GET  /api/v1/jobs              list jobs
//	GET  /api/v1/jobs/{id}         job status
//	GET  /api/v1/jobs/{id}/result  results (canonical JSON, input order)
//	GET  /api/v1/jobs/{id}/metrics job metrics registry JSON
//	GET  /api/v1/jobs/{id}/spans   job span recorder (PDS1 binary)
//	GET  /api/v1/jobs/{id}/progress plain-text progress stream until done
//	GET  /api/v1/stats             server + cache counters
//	GET  /healthz                  liveness
type API struct {
	srv  *Server
	dash *obs.Dashboard
}

// NewAPI wraps a server; dash may be nil.
func NewAPI(srv *Server, dash *obs.Dashboard) *API { return &API{srv: srv, dash: dash} }

// resultEnvelope is the GET .../result payload. Results holds each run's
// canonical JSON verbatim, so the bytes a client extracts are exactly the
// bytes the cache stores.
type resultEnvelope struct {
	Job     JobStatus         `json:"job"`
	Results []json.RawMessage `json:"results"`
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error         string `json:"error"`
	RetryAfterSec int    `json:"retry_after_sec,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// Handler returns the API mux; dashboard routes (when a dashboard was
// given) serve everything outside /api/v1 and /healthz.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", a.submit)
	mux.HandleFunc("GET /api/v1/jobs", a.list)
	mux.HandleFunc("GET /api/v1/jobs/{id}", a.status)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", a.result)
	mux.HandleFunc("GET /api/v1/jobs/{id}/metrics", a.metrics)
	mux.HandleFunc("GET /api/v1/jobs/{id}/spans", a.spans)
	mux.HandleFunc("GET /api/v1/jobs/{id}/progress", a.progress)
	mux.HandleFunc("GET /api/v1/stats", a.stats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if a.dash != nil {
		mux.Handle("/", a.dash.Handler())
	}
	return mux
}

// ListenAndServe binds addr (":0" for an ephemeral port) and serves the API
// on a hardened obs.NewHTTPServer in the background, returning the bound
// address and a closer that shuts the HTTP listener down.
func (a *API) ListenAndServe(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	hs := obs.NewHTTPServer(a.Handler())
	go hs.Serve(ln)
	return ln.Addr().String(), func() { hs.Close() }, nil
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	st, err := a.srv.Submit(spec)
	if err != nil {
		switch e := err.(type) {
		case *BusyError:
			sec := int(e.RetryAfter / time.Second)
			if sec < 1 {
				sec = 1
			}
			w.Header().Set("Retry-After", fmt.Sprint(sec))
			writeJSON(w, http.StatusTooManyRequests,
				errorBody{Error: err.Error(), RetryAfterSec: sec})
		default:
			if err == ErrDraining {
				writeError(w, http.StatusServiceUnavailable, err.Error())
				return
			}
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (a *API) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []JobStatus `json:"jobs"`
	}{Jobs: a.srv.Jobs()})
}

// jobFor resolves {id} or writes a 404.
func (a *API) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := a.srv.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job "+id)
	}
	return j, ok
}

func (a *API) status(w http.ResponseWriter, r *http.Request) {
	if j, ok := a.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, a.srv.Status(j))
	}
}

func (a *API) result(w http.ResponseWriter, r *http.Request) {
	j, ok := a.jobFor(w, r)
	if !ok {
		return
	}
	st := a.srv.Status(j)
	_, js, done := a.srv.Results(j)
	if !done {
		code := http.StatusConflict
		if st.State == JobFailed || st.State == JobAborted {
			writeJSON(w, code, errorBody{Error: fmt.Sprintf("job %s %s: %s", st.ID, st.State, st.Error)})
			return
		}
		writeJSON(w, code, errorBody{Error: fmt.Sprintf("job %s is %s (%d/%d)", st.ID, st.State, st.Done, st.Total)})
		return
	}
	env := resultEnvelope{Job: st, Results: make([]json.RawMessage, len(js))}
	for i, b := range js {
		env.Results[i] = json.RawMessage(b)
	}
	// No indentation here: an indenting encoder reformats the raw messages,
	// and this endpoint's contract is that each result is the cache's
	// canonical bytes verbatim.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(env)
}

func (a *API) metrics(w http.ResponseWriter, r *http.Request) {
	j, ok := a.jobFor(w, r)
	if !ok {
		return
	}
	reg := a.srv.Metrics(j)
	if reg == nil {
		writeError(w, http.StatusNotFound, "job has no metrics artifact (submit with \"metrics\": true and wait for it to finish)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	reg.WriteJSON(w)
}

func (a *API) spans(w http.ResponseWriter, r *http.Request) {
	j, ok := a.jobFor(w, r)
	if !ok {
		return
	}
	sp := a.srv.Spans(j)
	if sp == nil {
		writeError(w, http.StatusNotFound, "job has no spans artifact (submit with \"spans\": true and wait for it to finish)")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	sp.WriteBinary(w)
}

// progress streams one "done/total state" line per change (plus a keepalive
// snapshot every second) until the job reaches a terminal state — the HTTP
// face of the Sweep.Progress/OnResult hooks that feed the job counters.
func (a *API) progress(w http.ResponseWriter, r *http.Request) {
	j, ok := a.jobFor(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	fl, canFlush := w.(http.Flusher)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	last := ""
	emit := func(force bool) JobStatus {
		st := a.srv.Status(j)
		line := fmt.Sprintf("%d/%d %s\n", st.Done, st.Total, st.State)
		if force || line != last {
			fmt.Fprint(w, line)
			if canFlush {
				fl.Flush()
			}
			last = line
		}
		return st
	}
	emit(true)
	for {
		select {
		case <-j.Done():
			st := emit(true)
			if st.Error != "" {
				fmt.Fprintf(w, "error: %s\n", st.Error)
			}
			return
		case <-tick.C:
			emit(false)
		case <-r.Context().Done():
			return
		}
	}
}

func (a *API) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.srv.Stats())
}
