package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"pimdsm/internal/cluster"
	"pimdsm/internal/machine"
	"pimdsm/internal/obs"
	"pimdsm/internal/obs/svclog"
)

// RunBatchFunc executes a batch of configurations and returns the results in
// input order, invoking onResult as each run completes (r is nil for a
// failed run). The root pimdsm package wires this to Sweep.RunMany, so the
// pool's determinism guarantee — results[i] depends only on cfgs[i], never
// on scheduling — carries over to the service.
type RunBatchFunc func(cfgs []machine.Config, onResult func(i int, r *machine.Result)) ([]*machine.Result, error)

// Options configures a Server.
type Options struct {
	// Workers is the number of jobs simulated concurrently (default 2).
	Workers int
	// QueueLimit is the admission window: the maximum number of jobs
	// waiting to run. Submissions past it are rejected immediately with a
	// retry-after hint instead of queueing without bound (default 16).
	QueueLimit int
	// CacheEntries bounds the LRU result cache (default 512).
	CacheEntries int
	// CachePath, when non-empty, persists the cache index there on
	// Shutdown and reloads it in NewServer.
	CachePath string
	// Run executes one batch; nil means a serial loop over machine.Run.
	// pimdsm.NewServer always wires the Sweep pool here.
	Run RunBatchFunc
	// Log receives the service's structured log lines (nil = discard).
	// Logging is record-only: results are byte-identical with it on or off.
	Log *slog.Logger
	// Events, when non-nil, records every job's lifecycle (submitted,
	// queued, started, per-config cache_hit/joined/simulated/persisted,
	// done/failed/aborted) with wall-time and queue-depth attribution. The
	// same log feeds GET /api/v1/jobs/{id}/events and the SSE stream.
	Events *svclog.EventLog
	// TelemetrySample head-samples every Nth submission into the flight
	// recorder (as if it had set JobSpec.Telemetry); 0 disables sampling.
	// Sampled jobs carry spans, so they run their simulations serially —
	// the always-on observability tax is bounded by picking N.
	TelemetrySample int
	// ArtifactDir, when non-empty, persists flight-recorder artifacts there
	// in a bounded on-disk store whose index (like the result cache's)
	// survives daemon restarts.
	ArtifactDir string
	// ArtifactBytes bounds the artifact store; least-recently-used records
	// are evicted past it (default 64 MiB).
	ArtifactBytes int64
	// Tenants, when non-nil, turns on the multi-tenant edge: every
	// submission must name a registered tenant (the HTTP layer stamps
	// JobSpec.Tenant from the API key), and the tenant's token bucket,
	// queue/concurrency quotas and priority ceiling gate admission in front
	// of the shared window. Nil means anonymous open access — the
	// pre-tenancy behavior, byte for byte.
	Tenants *Tenants
	// UsagePath, when non-empty (and Tenants is set), persists the
	// cumulative per-tenant usage ledger there on Shutdown and restores it
	// in New, like the cache index.
	UsagePath string
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 16
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 512
	}
	if o.Log == nil {
		o.Log = svclog.Nop()
	}
	if o.Run == nil {
		o.Run = func(cfgs []machine.Config, onResult func(int, *machine.Result)) ([]*machine.Result, error) {
			results := make([]*machine.Result, len(cfgs))
			var firstErr error
			for i := range cfgs {
				r, err := machine.Run(cfgs[i])
				if err != nil && firstErr == nil {
					firstErr = err
				}
				results[i] = r
				if onResult != nil {
					onResult(i, r)
				}
			}
			if firstErr != nil {
				return nil, firstErr
			}
			return results, nil
		}
	}
	return o
}

// JobSpec is a submission: a batch of configurations that runs as one unit
// of scheduling. Cached configurations are served without simulation;
// configurations already being simulated by another job are joined, not
// repeated (singleflight); only the remainder is run.
type JobSpec struct {
	Name     string `json:"name,omitempty"`
	Priority int    `json:"priority,omitempty"`
	// Seed is folded into every cache key; reserved for future stochastic
	// workloads (today results are deterministic from the config alone).
	Seed uint64 `json:"seed,omitempty"`
	// Metrics attaches a per-job metrics registry, folded deterministically
	// from every result (cached or simulated); fetch it as the job's
	// metrics artifact.
	Metrics bool `json:"metrics,omitempty"`
	// Spans attaches a per-job transaction-span recorder. Spans only cover
	// the configurations this job actually simulates (cache hits recorded
	// no spans), and force the job's own runs serial, exactly like the
	// figure drivers' shared-observer mode.
	Spans bool `json:"spans,omitempty"`
	// Telemetry opts the job into the flight recorder: metrics, spans and a
	// per-config profiler all attach (implying the spans' serial-run cost),
	// and the merged record persists as profile/folded/decompose artifacts.
	// All of it is record-only — results stay byte-identical.
	Telemetry bool `json:"telemetry,omitempty"`
	// Tenant attributes the job. With a tenant registry configured it names
	// a registered tenant and is stamped server-side from the API key (a
	// client-supplied value is overwritten); in anonymous mode it is cleared.
	Tenant string `json:"tenant,omitempty"`

	Configs []ConfigSpec `json:"configs"`
}

// JobState is the lifecycle of a job.
type JobState string

// Job lifecycle states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
	// JobAborted marks jobs still queued when the server shut down.
	JobAborted JobState = "aborted"
)

// Job is one admitted submission. All mutable fields are guarded by the
// server mutex; read them through Status.
type Job struct {
	id   string
	seq  uint64
	spec JobSpec

	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time

	done      int
	cacheHits int
	simulated int
	joins     int
	forwarded int    // configs resolved by a cluster peer (forward or replica recovery)
	stolenBy  string // peer executing this job after stealing it from our queue
	err       error

	results    []*machine.Result
	resultJSON [][]byte
	metrics    *obs.Registry
	spans      *obs.Spans

	// Flight-recorder state (telemetry jobs only): the merged profile
	// snapshot and folded stacks accumulate per simulated config under the
	// server mutex; artifacts holds the finished record when no on-disk
	// store is configured.
	telemetry bool
	profSnap  *obs.ProfileSnapshot
	folded    []byte
	artifacts map[string][]byte

	// doneCh closes when the job reaches a terminal state.
	doneCh chan struct{}
}

// JobStatus is the wire snapshot of a job.
type JobStatus struct {
	ID        string   `json:"id"`
	Name      string   `json:"name,omitempty"`
	State     JobState `json:"state"`
	Priority  int      `json:"priority,omitempty"`
	Total     int      `json:"total"`
	Done      int      `json:"done"`
	CacheHits int      `json:"cache_hits"`
	Simulated int      `json:"simulated"`
	Joins     int      `json:"singleflight_joins"`
	// Forwarded counts configs resolved by a cluster peer; StolenBy names the
	// peer that executed the whole job after stealing it. Both are zero-valued
	// (and absent from the JSON) outside cluster mode.
	Forwarded int      `json:"forwarded,omitempty"`
	StolenBy  string   `json:"stolen_by,omitempty"`
	Telemetry bool     `json:"telemetry,omitempty"`
	Tenant    string   `json:"tenant,omitempty"`
	Error     string   `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// BusyError is the admission-control rejection. RetryAfter estimates when a
// slot frees up (EWMA job time scaled by the backlog per worker). With a
// tenant registry configured, Tenant names who was pushed back and Reason
// which gate rejected — the shared window (RejectWindow) or one of the
// tenant's own limits (RejectRate, RejectQueueQuota, RejectActiveQuota),
// each carrying the tenant's personal Retry-After.
type BusyError struct {
	RetryAfter time.Duration
	Tenant     string
	Reason     string
}

func (e *BusyError) Error() string {
	reason := e.Reason
	if reason == "" {
		reason = RejectWindow
	}
	if e.Tenant != "" {
		return fmt.Sprintf("serve: tenant %s %s, retry after %s", e.Tenant, reason, e.RetryAfter)
	}
	return fmt.Sprintf("serve: %s, retry after %s", reason, e.RetryAfter)
}

// ErrDraining rejects submissions during shutdown.
var ErrDraining = errors.New("serve: server is shutting down")

// Server is the simulation service: admission control in Submit, a priority
// queue drained by a fixed worker pool, and the content-addressed cache.
type Server struct {
	opt       Options
	cache     *Cache
	artifacts *ArtifactStore

	mu       sync.Mutex
	cond     *sync.Cond
	queue    jobQueue
	jobs     map[string]*Job
	order    []string // submission order, for listing
	seq      uint64
	running  int
	draining bool
	wg       sync.WaitGroup

	submitted, rejected, jobsDone, jobsFailed, jobsAborted uint64
	simulatedRuns, simulatedCycles                         uint64
	ewmaJobSec                                             float64

	// Cluster mode (AttachCluster): the peer node, the counters behind the
	// aggsimd_cluster_* metric families, and the jobs currently stolen by
	// peers (keyed by job id, requeued past their deadline). All guarded by
	// mu like the rest; clusterWG tracks the steal loop and the async
	// replication goroutines so Shutdown can wait for them.
	cluster       *cluster.Node
	cl            clusterCounters
	stolen        map[string]*stolenRecord
	clusterStop   chan struct{}
	clusterWG     sync.WaitGroup
	clusterHTTP   *http.Client
	clusterClosed bool // set under mu before clusterWG.Wait; gates new Add calls
}

// New starts a server: restores the cache index from Options.CachePath when
// present (a missing file is a fresh start, a corrupt one an error) and
// launches the worker pool.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	s := &Server{
		opt:   opt,
		cache: NewCache(opt.CacheEntries),
		jobs:  make(map[string]*Job),
	}
	s.cond = sync.NewCond(&s.mu)
	if opt.CachePath != "" {
		if _, err := s.loadCache(opt.CachePath); err != nil {
			return nil, err
		}
	}
	if opt.ArtifactDir != "" {
		store, err := NewArtifactStore(opt.ArtifactDir, opt.ArtifactBytes)
		if err != nil {
			return nil, err
		}
		s.artifacts = store
	}
	if opt.Tenants != nil && opt.UsagePath != "" {
		if err := s.loadUsage(opt.UsagePath); err != nil {
			return nil, err
		}
	}
	s.wg.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Cache exposes the result cache (read-mostly: tests and stats).
func (s *Server) Cache() *Cache { return s.cache }

// Events exposes the lifecycle event log (nil when disabled).
func (s *Server) Events() *svclog.EventLog { return s.opt.Events }

// Tenants exposes the tenant registry (nil in anonymous mode).
func (s *Server) Tenants() *Tenants { return s.opt.Tenants }

// Log exposes the service logger (never nil after New).
func (s *Server) Log() *slog.Logger { return s.opt.Log }

// Ready reports whether the server can accept a submission right now: not
// draining, and the admission window has room. The reason names what is
// wrong ("draining" or "admission window saturated") for the /readyz body.
func (s *Server) Ready() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false, "draining"
	}
	if len(s.queue) >= s.opt.QueueLimit {
		return false, "admission window saturated"
	}
	return true, ""
}

// eventLocked appends one lifecycle event for j; s.mu must be held (the
// queue depth and running count attributions are read under it). config is
// -1 for job-level events.
func (s *Server) eventLocked(j *Job, kind svclog.JobEventKind, config int, cycles uint64, detail string) {
	if s.opt.Events == nil {
		return
	}
	now := time.Now()
	s.opt.Events.Append(svclog.JobEvent{
		Job: j.id, Kind: kind, At: now,
		SinceSubmitUS: now.Sub(j.submitted).Microseconds(),
		QueueDepth:    len(s.queue),
		Running:       s.running,
		Config:        config,
		Cycles:        cycles,
		Tenant:        j.spec.Tenant,
		Detail:        detail,
	})
}

// Submit admits spec or rejects it. Rejections are immediate and typed:
// *BusyError when the admission window (or a tenant quota) is full,
// *ForbiddenError for a submission above the tenant's priority ceiling,
// ErrDraining during shutdown, a validation error for an empty or malformed
// spec. With a tenant registry configured, spec.Tenant must name a
// registered tenant and the tenant's gates run before the shared window —
// a throttled tenant is pushed back with its own Retry-After and never
// consumes shared admission capacity; in anonymous mode it must be empty.
func (s *Server) Submit(spec JobSpec) (JobStatus, error) {
	if len(spec.Configs) == 0 {
		return JobStatus{}, errors.New("serve: job has no configurations")
	}
	for i, cs := range spec.Configs {
		if cs.Arch == "" || cs.App == "" {
			return JobStatus{}, fmt.Errorf("serve: config %d missing arch or app", i)
		}
	}
	reg := s.opt.Tenants
	if reg == nil {
		spec.Tenant = ""
	} else if spec.Tenant == "" {
		return JobStatus{}, errors.New("serve: submission names no tenant")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected++
		if reg != nil {
			reg.rejectedWindow(spec.Tenant)
			s.opt.Log.Warn("job_rejected", "reason", "draining", "name", spec.Name, "tenant", spec.Tenant)
		} else {
			s.opt.Log.Warn("job_rejected", "reason", "draining", "name", spec.Name)
		}
		return JobStatus{}, ErrDraining
	}
	if reg != nil {
		if err := reg.gate(spec.Tenant, spec.Priority, s.opt.Workers, s.ewmaJobSec); err != nil {
			var be *BusyError
			switch {
			case errors.As(err, &be):
				s.rejected++
				s.opt.Log.Warn("job_rejected", "reason", be.Reason, "tenant", spec.Tenant,
					"name", spec.Name, "retry_after_sec", int(be.RetryAfter/time.Second))
			default:
				s.opt.Log.Warn("job_rejected", "reason", "forbidden", "tenant", spec.Tenant,
					"name", spec.Name, "err", err.Error())
			}
			return JobStatus{}, err
		}
	}
	if len(s.queue) >= s.opt.QueueLimit {
		s.rejected++
		retry := s.retryAfterLocked()
		if reg != nil {
			reg.rejectedWindow(spec.Tenant)
			s.opt.Log.Warn("job_rejected", "reason", RejectWindow,
				"name", spec.Name, "tenant", spec.Tenant,
				"queue_depth", len(s.queue), "retry_after_sec", int(retry/time.Second))
			return JobStatus{}, &BusyError{RetryAfter: retry, Tenant: spec.Tenant, Reason: RejectWindow}
		}
		s.opt.Log.Warn("job_rejected", "reason", "admission window full",
			"name", spec.Name, "queue_depth", len(s.queue), "retry_after_sec", int(retry/time.Second))
		return JobStatus{}, &BusyError{RetryAfter: retry}
	}
	if reg != nil {
		reg.commit(spec.Tenant)
	}
	s.seq++
	j := &Job{
		id:        fmt.Sprintf("j-%06d", s.seq),
		seq:       s.seq,
		spec:      spec,
		state:     JobQueued,
		submitted: time.Now(),
		doneCh:    make(chan struct{}),
	}
	// Flight recorder: an explicit opt-in, or head-sampling every Nth
	// admission. A telemetry job carries every observer at once (the spans
	// imply the serial-run cost), and its merged record persists as
	// artifacts when it finishes.
	j.telemetry = spec.Telemetry ||
		(s.opt.TelemetrySample > 0 && s.seq%uint64(s.opt.TelemetrySample) == 0)
	if spec.Metrics || j.telemetry {
		j.metrics = obs.NewRegistry()
	}
	if spec.Spans || j.telemetry {
		j.spans = obs.NewSpans(0)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.eventLocked(j, svclog.EvSubmitted, -1, 0, spec.Name)
	s.queue.push(j)
	s.submitted++
	s.eventLocked(j, svclog.EvQueued, -1, 0, "")
	if spec.Tenant != "" {
		s.opt.Log.Info("job_submitted", "job", j.id, "name", spec.Name, "tenant", spec.Tenant,
			"configs", len(spec.Configs), "priority", spec.Priority, "queue_depth", len(s.queue))
	} else {
		s.opt.Log.Info("job_submitted", "job", j.id, "name", spec.Name,
			"configs", len(spec.Configs), "priority", spec.Priority, "queue_depth", len(s.queue))
	}
	s.cond.Signal()
	return s.statusLocked(j), nil
}

// retryAfterLocked estimates the wait for a queue slot: backlog per worker
// times the EWMA job duration, floored at one second.
func (s *Server) retryAfterLocked() time.Duration {
	per := s.ewmaJobSec
	if per <= 0 {
		per = 1
	}
	backlog := float64(len(s.queue)+s.running) / float64(s.opt.Workers)
	d := time.Duration(per * backlog * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	return d.Round(time.Second)
}

// Job returns the job with the given id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Status snapshots a job.
func (s *Server) Status(j *Job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j)
}

func (s *Server) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID:          j.id,
		Name:        j.spec.Name,
		State:       j.state,
		Priority:    j.spec.Priority,
		Total:       len(j.spec.Configs),
		Done:        j.done,
		CacheHits:   j.cacheHits,
		Simulated:   j.simulated,
		Joins:       j.joins,
		Forwarded:   j.forwarded,
		StolenBy:    j.stolenBy,
		Telemetry:   j.telemetry,
		Tenant:      j.spec.Tenant,
		SubmittedAt: j.submitted,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Results returns the job's results (input order) and their canonical JSON
// encodings, or false if the job is not done. The byte slices are the exact
// bytes a cache hit serves, so equality checks against a direct run are
// byte-for-byte.
func (s *Server) Results(j *Job) ([]*machine.Result, [][]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != JobDone {
		return nil, nil, false
	}
	return j.results, j.resultJSON, true
}

// Metrics returns the job's metrics registry (nil unless JobSpec.Metrics).
func (s *Server) Metrics(j *Job) *obs.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != JobDone {
		return nil
	}
	return j.metrics
}

// Spans returns the job's span recorder (nil unless JobSpec.Spans).
func (s *Server) Spans(j *Job) *obs.Spans {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != JobDone {
		return nil
	}
	return j.spans
}

// ServerStats is the service-wide counters snapshot.
type ServerStats struct {
	Workers    int  `json:"workers"`
	QueueLimit int  `json:"queue_limit"`
	Queued     int  `json:"queued"`
	Running    int  `json:"running"`
	Draining   bool `json:"draining"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsRejected  uint64 `json:"jobs_rejected"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsAborted   uint64 `json:"jobs_aborted"`

	// SimulatedRuns/SimulatedCycles count only real simulations — a cache
	// hit or singleflight join moves neither, which is how the smoke test
	// proves a resubmission never re-simulated.
	SimulatedRuns   uint64 `json:"simulated_runs"`
	SimulatedCycles uint64 `json:"simulated_cycles"`

	Cache CacheStats `json:"cache"`
	// Events is the lifecycle event log's traffic (zero when disabled).
	Events svclog.EventLogStats `json:"events"`
	// Artifacts is the flight-recorder store's state (zero when disabled).
	Artifacts ArtifactStats `json:"artifacts"`
	// Tenants is the per-tenant state (empty in anonymous mode).
	Tenants []TenantSnapshot `json:"tenants,omitempty"`
	// Cluster is the peer-layer state (absent outside cluster mode, which
	// keeps the single-node stats JSON byte-identical).
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		Workers:         s.opt.Workers,
		QueueLimit:      s.opt.QueueLimit,
		Queued:          len(s.queue),
		Running:         s.running,
		Draining:        s.draining,
		JobsSubmitted:   s.submitted,
		JobsRejected:    s.rejected,
		JobsDone:        s.jobsDone,
		JobsFailed:      s.jobsFailed,
		JobsAborted:     s.jobsAborted,
		SimulatedRuns:   s.simulatedRuns,
		SimulatedCycles: s.simulatedCycles,
	}
	if s.cluster != nil {
		st.Cluster = s.clusterStatsLocked()
	}
	s.mu.Unlock()
	st.Cache = s.cache.Stats()
	if s.opt.Events != nil {
		st.Events = s.opt.Events.Stats()
	}
	if s.artifacts != nil {
		st.Artifacts = s.artifacts.Stats()
	}
	if s.opt.Tenants != nil {
		st.Tenants = s.opt.Tenants.Snapshot()
	}
	return st
}

// tenantAccount applies fn to j's tenant's usage counters (no-op in
// anonymous mode). The per-tenant increments are made at the same points as
// their global counterparts, which is what makes the per-tenant Prometheus
// counters sum exactly to the globals when every job is tenant-attributed.
func (s *Server) tenantAccount(j *Job, fn func(u *TenantUsage)) {
	if s.opt.Tenants != nil && j.spec.Tenant != "" {
		s.opt.Tenants.account(j.spec.Tenant, fn)
	}
}

// worker pulls the highest-priority queued job and runs it to completion.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.draining {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		j := s.queue.pop()
		j.state = JobRunning
		j.started = time.Now()
		s.running++
		if s.opt.Tenants != nil && j.spec.Tenant != "" {
			s.opt.Tenants.started(j.spec.Tenant)
		}
		s.eventLocked(j, svclog.EvStarted, -1, 0, "")
		s.mu.Unlock()
		s.runJob(j)
	}
}

// runJob executes one job: resolve every config against the cache, simulate
// the misses this job owns through the batch runner, wait for flights owned
// by other running jobs, then finalize. In cluster mode, configs whose keys
// this node does not own are resolved through the owning peer (or its
// replicas) instead of simulated here — the front-door half of the
// compute-at-owner routing.
//
// Deadlock-freedom: flights are only ever owned by running jobs, and a job
// always finishes its own simulations (fulfilling its flights) before
// waiting on anyone else's, so waits form no cycle. Remote-owned configs
// never acquire local flights at all.
func (s *Server) runJob(j *Job) {
	n := len(j.spec.Configs)
	keys := make([]uint64, n)
	results := make([]*machine.Result, n)
	resJSON := make([][]byte, n)
	var toRun []int
	type join struct {
		i  int
		fl *flight
	}
	var joins []join
	var remote []int
	node := s.clusterNode()

	recordHit := func(i int, res *machine.Result, js []byte) {
		results[i], resJSON[i] = res, js
		s.mu.Lock()
		j.done++
		j.cacheHits++
		s.eventLocked(j, svclog.EvCacheHit, i, 0, "")
		s.mu.Unlock()
		s.tenantAccount(j, func(u *TenantUsage) {
			u.CacheHits++
			u.ResultBytes += uint64(len(js))
		})
	}

	for i, cs := range j.spec.Configs {
		keys[i] = cs.Key(j.spec.Seed)
		if node != nil {
			if _, self := node.Owner(keys[i]); !self {
				// A replicated or previously forwarded copy serves locally;
				// otherwise the owner resolves it (never a local flight).
				if res, js, ok := s.cache.Peek(keys[i]); ok {
					recordHit(i, res, js)
				} else {
					remote = append(remote, i)
				}
				continue
			}
		}
		res, js, hit, fl, owner := s.cache.Acquire(keys[i])
		switch {
		case hit:
			recordHit(i, res, js)
		case owner:
			if node != nil {
				// Owned key, no cached copy: ask the replica set before
				// burning a simulation — a restarted owner recovers the
				// results its successors kept (exactly-once across
				// kill/restart, even through its own front door).
				if res, js, ok := s.recoverFromReplicas(keys[i]); ok {
					s.cache.Fulfill(keys[i], j.spec.Seed, cs.canonical(), res, js)
					results[i], resJSON[i] = res, js
					s.mu.Lock()
					j.done++
					j.forwarded++
					s.eventLocked(j, svclog.EvCacheHit, i, 0, "cluster:recovered")
					s.mu.Unlock()
					s.tenantAccount(j, func(u *TenantUsage) { u.ResultBytes += uint64(len(js)) })
					continue
				}
			}
			toRun = append(toRun, i)
			s.tenantAccount(j, func(u *TenantUsage) { u.CacheMisses++ })
			_ = fl // resolved via cache.Fulfill/Abort below
		default:
			joins = append(joins, join{i: i, fl: fl})
			s.tenantAccount(j, func(u *TenantUsage) { u.Joins++ })
		}
	}

	var jobErr error
	if len(remote) > 0 {
		jobErr = s.resolveRemote(j, keys, remote, results, resJSON)
	}
	if len(toRun) > 0 {
		if err := s.simulate(j, keys, toRun, results, resJSON); err != nil && jobErr == nil {
			jobErr = err
		}
	}

	for _, w := range joins {
		<-w.fl.done
		if w.fl.err != nil {
			if jobErr == nil {
				jobErr = w.fl.err
			}
			continue
		}
		results[w.i], resJSON[w.i] = w.fl.res, w.fl.js
		s.mu.Lock()
		j.done++
		j.joins++
		s.eventLocked(j, svclog.EvJoined, w.i, 0, "")
		s.mu.Unlock()
		s.tenantAccount(j, func(u *TenantUsage) { u.ResultBytes += uint64(len(w.fl.js)) })
	}

	if jobErr == nil && j.metrics != nil {
		for _, r := range results {
			machine.CollectMetrics(j.metrics, r)
		}
	}
	if jobErr == nil && j.telemetry {
		// Persist the flight record before the job flips to done, so a
		// client that sees "done" can always fetch the artifacts.
		s.recordFlight(j)
	}

	s.mu.Lock()
	j.finished = time.Now()
	s.running--
	if jobErr != nil {
		j.state = JobFailed
		j.err = jobErr
		s.jobsFailed++
		s.eventLocked(j, svclog.EvFailed, -1, 0, jobErr.Error())
		args := []any{"job", j.id, "name", j.spec.Name,
			"err", jobErr.Error(), "wall_us", j.finished.Sub(j.submitted).Microseconds()}
		if j.spec.Tenant != "" {
			args = append(args, "tenant", j.spec.Tenant)
		}
		s.opt.Log.Error("job_failed", args...)
	} else {
		j.state = JobDone
		j.results = results
		j.resultJSON = resJSON
		s.jobsDone++
		s.eventLocked(j, svclog.EvDone, -1, 0, "")
		args := []any{"job", j.id, "name", j.spec.Name,
			"cache_hits", j.cacheHits, "simulated", j.simulated, "joins", j.joins,
			"wall_us", j.finished.Sub(j.submitted).Microseconds()}
		if j.spec.Tenant != "" {
			args = append(args, "tenant", j.spec.Tenant)
		}
		s.opt.Log.Info("job_done", args...)
	}
	// EWMA of job wall time feeds the retry-after estimate.
	sec := j.finished.Sub(j.started).Seconds()
	if s.ewmaJobSec == 0 {
		s.ewmaJobSec = sec
	} else {
		s.ewmaJobSec = 0.7*s.ewmaJobSec + 0.3*sec
	}
	s.mu.Unlock()
	if s.opt.Tenants != nil && j.spec.Tenant != "" {
		s.opt.Tenants.finished(j.spec.Tenant, jobErr != nil, sec)
	}
	close(j.doneCh)
}

// simulate runs the cache-missing configs this job owns and publishes each
// result into the cache (resolving the singleflight flights) as it lands.
// With spans attached the runs go one at a time: a span recorder is a shared
// observer, exactly like the figure drivers' shared-trace mode.
func (s *Server) simulate(j *Job, keys []uint64, toRun []int, results []*machine.Result, resJSON [][]byte) error {
	batches := [][]int{toRun}
	if j.spans != nil {
		batches = batches[:0]
		for _, i := range toRun {
			batches = append(batches, []int{i})
		}
	}
	var firstErr error
	for _, batch := range batches {
		cfgs := make([]machine.Config, len(batch))
		// Telemetry jobs attach a fresh profiler per config; machine.Run
		// folds the run's attribution into it before returning, so by the
		// time onResult fires the profile is complete and snapshot-safe.
		var profs []*obs.Profile
		if j.telemetry {
			profs = make([]*obs.Profile, len(batch))
		}
		for bi, i := range batch {
			cfg := j.spec.Configs[i].canonical().Config()
			cfg.Spans = j.spans
			if profs != nil {
				profs[bi] = obs.NewProfile()
				cfg.Profile = profs[bi]
			}
			cfgs[bi] = cfg
		}
		onResult := func(bi int, r *machine.Result) {
			if r == nil {
				return // failure; flight aborted after the batch returns
			}
			i := batch[bi]
			js, err := canonicalResultJSON(r)
			if err != nil {
				// Result not serializable: still serve it in-process but
				// never cache it (the flight resolves with the error).
				s.cache.Abort(keys[i], err)
				return
			}
			results[i], resJSON[i] = r, js
			s.cache.Fulfill(keys[i], j.spec.Seed, j.spec.Configs[i].canonical(), r, js)
			s.replicateAsync(keys[i], j.spec.Seed, j.spec.Configs[i].canonical(), js)
			if profs != nil && profs[bi] != nil {
				// Fold this config's cycle attribution into the job's
				// flight record: additive snapshot merge plus folded
				// flamegraph stacks (concatenation is valid folded input).
				snap := obs.SnapshotProfile(profs[bi])
				var fb bytes.Buffer
				profs[bi].WriteFolded(&fb)
				s.mu.Lock()
				if j.profSnap == nil {
					j.profSnap = snap
				} else {
					j.profSnap.Merge(snap)
				}
				j.folded = append(j.folded, fb.Bytes()...)
				s.mu.Unlock()
			}
			s.mu.Lock()
			j.done++
			j.simulated++
			s.simulatedRuns++
			s.simulatedCycles += uint64(r.Breakdown.Exec)
			s.eventLocked(j, svclog.EvSimulated, i, uint64(r.Breakdown.Exec), "")
			s.eventLocked(j, svclog.EvPersisted, i, 0, "")
			s.mu.Unlock()
			s.tenantAccount(j, func(u *TenantUsage) {
				u.SimulatedRuns++
				u.EngineCycles += uint64(r.Breakdown.Exec)
				u.ResultBytes += uint64(len(js))
			})
		}
		_, err := s.opt.Run(cfgs, onResult)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		// Any config that produced no result leaves an unresolved flight;
		// abort it so joined jobs unblock with the error.
		for _, i := range batch {
			if results[i] == nil {
				e := err
				if e == nil {
					e = errors.New("serve: run produced no result")
				}
				s.cache.Abort(keys[i], e)
				if firstErr == nil {
					firstErr = e
				}
			}
		}
	}
	return firstErr
}

// Shutdown drains the service: new submissions are rejected, queued jobs
// are aborted, running jobs finish (bounded by ctx), and the cache index is
// persisted to Options.CachePath. Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.opt.Log.Info("server_draining", "queued", len(s.queue), "running", s.running)
	for len(s.queue) > 0 {
		j := s.queue.pop()
		j.state = JobAborted
		j.err = ErrDraining
		j.finished = time.Now()
		s.jobsAborted++
		if s.opt.Tenants != nil && j.spec.Tenant != "" {
			s.opt.Tenants.aborted(j.spec.Tenant)
		}
		s.eventLocked(j, svclog.EvAborted, -1, 0, ErrDraining.Error())
		close(j.doneCh)
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var waitErr error
	select {
	case <-done:
	case <-ctx.Done():
		waitErr = ctx.Err()
	}
	s.stopCluster()
	if s.opt.CachePath != "" {
		if err := s.saveCache(s.opt.CachePath); err != nil && waitErr == nil {
			waitErr = err
		}
	}
	if s.artifacts != nil {
		if err := s.artifacts.SaveIndex(); err != nil && waitErr == nil {
			waitErr = err
		}
	}
	if s.opt.Tenants != nil && s.opt.UsagePath != "" {
		if err := s.saveUsage(s.opt.UsagePath); err != nil && waitErr == nil {
			waitErr = err
		}
	}
	return waitErr
}
