package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pimdsm/internal/obs"
)

// saveCache writes the cache index to path atomically (temp file + rename),
// so a crash mid-save never leaves a truncated index for the next daemon.
func (s *Server) saveCache(path string) error {
	idx := s.cache.Snapshot()
	err := obs.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(idx)
	})
	if err != nil {
		return fmt.Errorf("serve: save cache index: %w", err)
	}
	return nil
}

// loadCache restores a persisted index. A missing file is a fresh start; a
// file that does not parse is an error (the operator should move it aside
// deliberately rather than have it silently ignored). Entries that fail the
// key-derivation check are skipped individually.
func (s *Server) loadCache(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	var idx index
	if err := json.NewDecoder(f).Decode(&idx); err != nil {
		return 0, fmt.Errorf("serve: cache index %s is corrupt: %w", path, err)
	}
	return s.cache.LoadIndex(&idx), nil
}
