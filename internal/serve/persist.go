package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"pimdsm/internal/obs"
)

// saveCache writes the cache index to path atomically (temp file + rename),
// so a crash mid-save never leaves a truncated index for the next daemon.
func (s *Server) saveCache(path string) error {
	idx := s.cache.Snapshot()
	err := obs.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		return enc.Encode(idx)
	})
	if err != nil {
		return fmt.Errorf("serve: save cache index: %w", err)
	}
	return nil
}

// loadCache restores a persisted index. A missing file is a fresh start; a
// file that does not parse is an error (the operator should move it aside
// deliberately rather than have it silently ignored). Entries that fail the
// key-derivation check are skipped individually.
func (s *Server) loadCache(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	var idx index
	if err := json.NewDecoder(f).Decode(&idx); err != nil {
		return 0, fmt.Errorf("serve: cache index %s is corrupt: %w", path, err)
	}
	return s.cache.LoadIndex(&idx), nil
}

// usageLedgerVersion guards the usage-ledger file format.
const usageLedgerVersion = 1

// usageLedger is the persisted per-tenant cumulative usage: the tenant's
// restart-surviving bill, written like the cache index (atomic temp+rename
// on Shutdown, restored in New).
type usageLedger struct {
	Version int                    `json:"version"`
	Usage   map[string]TenantUsage `json:"usage"`
}

// saveUsage writes the cumulative per-tenant ledger to path atomically.
func (s *Server) saveUsage(path string) error {
	ledger := usageLedger{Version: usageLedgerVersion, Usage: s.opt.Tenants.exportUsage()}
	err := obs.WriteFileAtomic(path, func(w io.Writer) error {
		// Encode with stable key order so identical state produces identical
		// bytes (maps would otherwise randomize).
		ordered := struct {
			Version int               `json:"version"`
			Names   []string          `json:"names"`
			Rows    []json.RawMessage `json:"rows"`
		}{Version: ledger.Version}
		for _, name := range sortedUsageNames(ledger.Usage) {
			row, err := json.Marshal(ledger.Usage[name])
			if err != nil {
				return err
			}
			ordered.Names = append(ordered.Names, name)
			ordered.Rows = append(ordered.Rows, row)
		}
		return json.NewEncoder(w).Encode(ordered)
	})
	if err != nil {
		return fmt.Errorf("serve: save usage ledger: %w", err)
	}
	return nil
}

// loadUsage restores a persisted ledger as each tenant's base usage. A
// missing file is a fresh start; a corrupt or wrong-version one is an error,
// same policy as the cache index.
func (s *Server) loadUsage(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	var onDisk struct {
		Version int           `json:"version"`
		Names   []string      `json:"names"`
		Rows    []TenantUsage `json:"rows"`
	}
	if err := json.NewDecoder(f).Decode(&onDisk); err != nil {
		return fmt.Errorf("serve: usage ledger %s is corrupt: %w", path, err)
	}
	if onDisk.Version != usageLedgerVersion {
		return fmt.Errorf("serve: usage ledger %s has version %d, want %d", path, onDisk.Version, usageLedgerVersion)
	}
	if len(onDisk.Names) != len(onDisk.Rows) {
		return fmt.Errorf("serve: usage ledger %s is corrupt: %d names, %d rows", path, len(onDisk.Names), len(onDisk.Rows))
	}
	ledger := make(map[string]TenantUsage, len(onDisk.Names))
	for i, name := range onDisk.Names {
		ledger[name] = onDisk.Rows[i]
	}
	s.opt.Tenants.restoreUsage(ledger)
	return nil
}
