package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"pimdsm/internal/obs"
)

// ArtifactStore is the flight recorder's bounded on-disk home: telemetry
// artifacts (profile snapshots, folded flamegraphs, span decompositions) are
// written atomically next to the result cache and evicted least-recently-used
// by total byte size. Like the result cache, the store persists its index on
// Shutdown and restores it in New, so a restarted daemon still serves the
// flight records of every job whose configurations it has seen — artifact
// names are content addresses (config keys + seed), not job ids, exactly so
// they outlive the job table.
type ArtifactStore struct {
	dir   string
	limit int64

	mu      sync.Mutex
	entries map[string]*artEntry
	// LRU list: head is most recently used, tail is the eviction candidate.
	head, tail *artEntry
	bytes      int64

	puts, hits, misses, evictions uint64
}

type artEntry struct {
	name       string
	size       int64
	prev, next *artEntry
}

// artifactIndexName is the store's persisted index, living inside the
// artifact directory itself (the store owns the directory).
const artifactIndexName = "artifacts.index.json"

// artifactIndex is the persisted form: entries least to most recently used,
// the same convention as the result cache index.
type artifactIndex struct {
	Version int             `json:"version"`
	Entries []artIndexEntry `json:"entries"`
}

type artIndexEntry struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// NewArtifactStore opens (creating if needed) the store at dir with the
// given byte bound. A missing index is a fresh start; a corrupt one is an
// error (move it aside deliberately). Index entries whose backing file is
// missing or has changed size are dropped individually, not fatally.
func NewArtifactStore(dir string, limit int64) (*ArtifactStore, error) {
	if limit <= 0 {
		limit = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: artifact dir: %w", err)
	}
	s := &ArtifactStore{dir: dir, limit: limit, entries: make(map[string]*artEntry)}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *ArtifactStore) Dir() string { return s.dir }

func (s *ArtifactStore) loadIndex() error {
	f, err := os.Open(filepath.Join(s.dir, artifactIndexName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	var idx artifactIndex
	if err := json.NewDecoder(f).Decode(&idx); err != nil {
		return fmt.Errorf("serve: artifact index in %s is corrupt: %w", s.dir, err)
	}
	for _, e := range idx.Entries {
		fi, err := os.Stat(filepath.Join(s.dir, e.Name))
		if err != nil || fi.Size() != e.Size {
			continue // artifact vanished or was truncated; forget it
		}
		s.insertMRU(&artEntry{name: e.Name, size: e.Size})
		s.bytes += e.Size
	}
	return nil
}

// SaveIndex persists the LRU order atomically, mirroring the result cache's
// crash-safe index write.
func (s *ArtifactStore) SaveIndex() error {
	s.mu.Lock()
	idx := artifactIndex{Version: 1}
	for e := s.tail; e != nil; e = e.prev {
		idx.Entries = append(idx.Entries, artIndexEntry{Name: e.name, Size: e.size})
	}
	s.mu.Unlock()
	err := obs.WriteFileAtomic(filepath.Join(s.dir, artifactIndexName), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(idx)
	})
	if err != nil {
		return fmt.Errorf("serve: save artifact index: %w", err)
	}
	return nil
}

// insertMRU links e at the head. Caller holds s.mu (or is single-threaded
// setup).
func (s *ArtifactStore) insertMRU(e *artEntry) {
	s.entries[e.name] = e
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *ArtifactStore) unlink(e *artEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *ArtifactStore) touch(e *artEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// Put writes one artifact atomically and inserts it most-recently-used, then
// evicts from the tail until the store is back under its byte bound. The
// artifact just written is never evicted by its own Put, even when it alone
// exceeds the bound — a flight record the operator asked for is always
// retrievable at least once.
func (s *ArtifactStore) Put(name string, write func(io.Writer) error) error {
	path := filepath.Join(s.dir, name)
	if err := obs.WriteFileAtomic(path, write); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[name]; ok {
		s.bytes -= old.size
		s.unlink(old)
		delete(s.entries, name)
	}
	e := &artEntry{name: name, size: fi.Size()}
	s.insertMRU(e)
	s.bytes += e.size
	s.puts++
	for s.bytes > s.limit && s.tail != nil && s.tail != e {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.name)
		s.bytes -= victim.size
		s.evictions++
		os.Remove(filepath.Join(s.dir, victim.name))
	}
	return nil
}

// Get returns an artifact's bytes, marking it most recently used. A name the
// store does not know (never written, or evicted) is a miss, not an error;
// a file that fails to read drops its entry and counts as a miss too.
func (s *ArtifactStore) Get(name string) ([]byte, bool, error) {
	s.mu.Lock()
	e, ok := s.entries[name]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return nil, false, nil
	}
	s.touch(e)
	s.mu.Unlock()

	b, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		s.mu.Lock()
		if cur, still := s.entries[name]; still && cur == e {
			s.unlink(cur)
			delete(s.entries, name)
			s.bytes -= cur.size
		}
		s.misses++
		s.mu.Unlock()
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return b, true, nil
}

// ArtifactInfo is one resident artifact, for listings.
type ArtifactInfo struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// List returns resident artifacts most to least recently used.
func (s *ArtifactStore) List() []ArtifactInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ArtifactInfo, 0, len(s.entries))
	for e := s.head; e != nil; e = e.next {
		out = append(out, ArtifactInfo{Name: e.name, Size: e.size})
	}
	return out
}

// ArtifactStats is the store's counter snapshot.
type ArtifactStats struct {
	Count     int    `json:"count"`
	Bytes     int64  `json:"bytes"`
	Limit     int64  `json:"limit"`
	Puts      uint64 `json:"puts"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the store counters.
func (s *ArtifactStore) Stats() ArtifactStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ArtifactStats{
		Count:     len(s.entries),
		Bytes:     s.bytes,
		Limit:     s.limit,
		Puts:      s.puts,
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
	}
}
