package serve

// Cluster glue (DESIGN.md §15): this file builds the distributed service on
// top of internal/cluster's membership and ring. Three mechanisms, all
// byte-transparent to results:
//
//   - Compute-at-owner forwarding: a front door resolves configs whose keys
//     it does not own through the owning peer's /cluster/compute endpoint.
//     The owner's cache + singleflight act as the cluster-wide lock service,
//     so a key is simulated exactly once no matter how many doors it enters.
//   - Replication: a completed simulation is pushed to the key's R ring
//     successors, so any of R+1 nodes answers repeat queries after the owner
//     dies; a restarted owner checks its successors (replica recovery) before
//     burning a fresh simulation.
//   - Work stealing: an idle node polls a random alive peer for its worst
//     queued job, executes it (through the same owner-routing), and posts the
//     results back; the victim requeues the job if the thief goes silent.
//
// The peer endpoints sit outside tenant authentication; their admission check
// is the shared cluster name carried in the X-Aggsimd-Cluster header (and,
// for payload-bearing endpoints, the key-derivation check that also guards
// the persisted cache index). Without an attached node every cluster route is
// an inert 404 and no counter, stats field or metric family below exists —
// the single-node daemon stays byte-identical.

import (
	"bytes"
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"pimdsm/internal/cluster"
	"pimdsm/internal/machine"
	"pimdsm/internal/obs/svclog"
)

// Peer-protocol headers. clusterHeader names the cluster on every
// peer-to-peer request; forwardedHeader marks a submission that already
// followed one ownership redirect, so a front door never bounces a client a
// second time (no redirect loops).
const (
	clusterHeader   = "X-Aggsimd-Cluster"
	forwardedHeader = "X-Aggsimd-Forwarded"
)

// stealRequeueAfter is how long a stolen job may stay out before the victim
// assumes the thief died and requeues it locally. Generous on purpose: a
// premature requeue risks the same configs running twice (same bytes, wasted
// cycles), while a late one only delays a job whose thief crashed.
const stealRequeueAfter = 60 * time.Second

// clusterLoopEvery paces the background cluster loop (steal attempts and
// stolen-job requeue sweeps).
const clusterLoopEvery = 100 * time.Millisecond

// clusterCounters backs the aggsimd_cluster_* metric families. All fields
// are guarded by Server.mu.
type clusterCounters struct {
	forwardsSent, forwardsFailed, forwardsServed   uint64
	lookupsServed, lookupsMissed                   uint64
	replicasSent, replicasFailed, replicasReceived uint64
	recoveries                                     uint64
	stealsGiven, stealsTaken                       uint64
	stealsCompleted, stealsFailed, stealsRequeued  uint64
	redirects                                      uint64
}

// stolenRecord tracks one job a peer is executing for us.
type stolenRecord struct {
	job      *Job
	thief    string
	deadline time.Time
}

// ClusterStats is the peer-layer section of ServerStats: the membership
// node's own snapshot plus the serve-level routing counters.
type ClusterStats struct {
	Node     cluster.Stats `json:"node"`
	Replicas int           `json:"replicas"`

	// Forwards: configs this front door resolved through an owning peer
	// (sent/failed), and forwarded computes this node served as owner.
	ForwardsSent   uint64 `json:"forwards_sent"`
	ForwardsFailed uint64 `json:"forwards_failed"`
	ForwardsServed uint64 `json:"forwards_served"`

	// Lookups: replica-cache probes served to recovering owners.
	LookupsServed uint64 `json:"lookups_served"`
	LookupsMissed uint64 `json:"lookups_missed"`

	// Replication: copies pushed to successors and copies received. Summed
	// across the cluster, sent == received once replication has settled.
	ReplicasSent     uint64 `json:"replicas_sent"`
	ReplicasFailed   uint64 `json:"replicas_failed"`
	ReplicasReceived uint64 `json:"replicas_received"`
	// Recoveries counts simulations this node avoided by pulling the result
	// from a replica instead (the exactly-once-across-restart mechanism).
	Recoveries uint64 `json:"recoveries"`

	// Work stealing, from both sides of the exchange.
	StealsGiven     uint64 `json:"steals_given"`
	StealsTaken     uint64 `json:"steals_taken"`
	StealsCompleted uint64 `json:"steals_completed"`
	StealsFailed    uint64 `json:"steals_failed"`
	StealsRequeued  uint64 `json:"steals_requeued"`
	StolenInFlight  int    `json:"stolen_in_flight"`

	// Redirects counts 421 Misdirected Request responses steering clients to
	// the owning peer.
	Redirects uint64 `json:"redirects"`
}

// clusterStatsLocked snapshots the cluster section; s.mu must be held. The
// node has its own mutex ordered strictly after s.mu (the node never calls
// back into the server).
func (s *Server) clusterStatsLocked() *ClusterStats {
	return &ClusterStats{
		Node:             s.cluster.Stats(),
		Replicas:         s.cluster.Replicas(),
		ForwardsSent:     s.cl.forwardsSent,
		ForwardsFailed:   s.cl.forwardsFailed,
		ForwardsServed:   s.cl.forwardsServed,
		LookupsServed:    s.cl.lookupsServed,
		LookupsMissed:    s.cl.lookupsMissed,
		ReplicasSent:     s.cl.replicasSent,
		ReplicasFailed:   s.cl.replicasFailed,
		ReplicasReceived: s.cl.replicasReceived,
		Recoveries:       s.cl.recoveries,
		StealsGiven:      s.cl.stealsGiven,
		StealsTaken:      s.cl.stealsTaken,
		StealsCompleted:  s.cl.stealsCompleted,
		StealsFailed:     s.cl.stealsFailed,
		StealsRequeued:   s.cl.stealsRequeued,
		StolenInFlight:   len(s.stolen),
		Redirects:        s.cl.redirects,
	}
}

// AttachCluster joins the server to a cluster: the node's heartbeat loop
// starts and the background steal/requeue loop launches. Call once, before
// serving traffic; attaching after Shutdown began is a no-op.
func (s *Server) AttachCluster(node *cluster.Node) {
	s.mu.Lock()
	if s.cluster != nil || s.draining {
		s.mu.Unlock()
		return
	}
	s.cluster = node
	s.stolen = make(map[string]*stolenRecord)
	s.clusterStop = make(chan struct{})
	// Forwarded computes may simulate inline at the owner; the peer client
	// timeout must cover a full run, not just a cache probe.
	s.clusterHTTP = &http.Client{Timeout: 2 * time.Minute}
	s.mu.Unlock()
	s.opt.Log.Info("cluster_attached", "cluster", node.Name(), "self", node.Self(),
		"replicas", node.Replicas())
	node.Start()
	s.clusterWG.Add(1)
	go s.clusterLoop()
}

// clusterNode returns the attached node (nil outside cluster mode).
func (s *Server) clusterNode() *cluster.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cluster
}

func (s *Server) countCluster(fn func(*clusterCounters)) {
	s.mu.Lock()
	fn(&s.cl)
	s.mu.Unlock()
}

// stopCluster tears the peer layer down: the steal loop and heartbeats stop,
// in-flight replications drain, and jobs still held by thieves are aborted
// (their results, if any, were computed against the shared cache and are not
// lost — only this job's delivery is). Idempotent; called from Shutdown.
func (s *Server) stopCluster() {
	s.mu.Lock()
	node := s.cluster
	if node == nil || s.clusterClosed {
		s.mu.Unlock()
		return
	}
	s.clusterClosed = true
	s.mu.Unlock()
	close(s.clusterStop)
	node.Stop()
	s.clusterWG.Wait()
	s.mu.Lock()
	for id, rec := range s.stolen {
		delete(s.stolen, id)
		j := rec.job
		j.state = JobAborted
		j.err = ErrDraining
		j.finished = time.Now()
		s.jobsAborted++
		if s.opt.Tenants != nil && j.spec.Tenant != "" {
			s.opt.Tenants.abortedRunning(j.spec.Tenant)
		}
		s.eventLocked(j, svclog.EvAborted, -1, 0, "shutdown while stolen by "+rec.thief)
		close(j.doneCh)
	}
	s.mu.Unlock()
}

// clusterLoop is the node's background cluster duty cycle: requeue stolen
// jobs whose thieves went silent, then steal from a peer if we are idle.
func (s *Server) clusterLoop() {
	defer s.clusterWG.Done()
	t := time.NewTicker(clusterLoopEvery)
	defer t.Stop()
	for {
		select {
		case <-s.clusterStop:
			return
		case <-t.C:
			s.requeueStolen(time.Now())
			s.trySteal()
		}
	}
}

// ---------------------------------------------------------------------------
// Peer HTTP plumbing

// peerDo performs one cluster-internal exchange. The cluster-name header is
// the peer endpoints' admission check (they sit outside tenant auth).
func (s *Server) peerDo(method, peer, path string, body []byte) (int, []byte, error) {
	node := s.clusterNode()
	if node == nil {
		return 0, nil, errors.New("serve: not clustered")
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, "http://"+peer+path, rd)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set(clusterHeader, node.Name())
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := s.clusterHTTP.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}

// clip bounds an error payload for embedding in an error string.
func clip(b []byte) string {
	const max = 200
	if len(b) > max {
		b = b[:max]
	}
	return string(bytes.TrimSpace(b))
}

// ---------------------------------------------------------------------------
// Resolution: local (owner) and routed (front door)

// resolveLocal resolves one key on this node: cache hit, singleflight join,
// replica recovery, or a real simulation (which then replicates to the key's
// successors). how is "hit", "join", "recovered" or "simulated". This is the
// owner half of compute-at-owner routing — it never forwards.
func (s *Server) resolveLocal(key, seed uint64, cs ConfigSpec) (*machine.Result, []byte, string, error) {
	res, js, hit, fl, owner := s.cache.Acquire(key)
	if hit {
		return res, js, "hit", nil
	}
	if !owner {
		<-fl.done
		if fl.err != nil {
			return nil, nil, "", fl.err
		}
		return fl.res, fl.js, "join", nil
	}
	// We hold the flight. Before burning a simulation, ask the key's replica
	// set — a restarted owner finds the copy its successors kept, which is
	// what preserves exactly-once across a kill/restart.
	if rres, rjs, ok := s.recoverFromReplicas(key); ok {
		s.cache.Fulfill(key, seed, cs.canonical(), rres, rjs)
		return rres, rjs, "recovered", nil
	}
	cfg := cs.canonical().Config()
	rs, err := s.opt.Run([]machine.Config{cfg}, nil)
	if err == nil && (len(rs) == 0 || rs[0] == nil) {
		err = errors.New("serve: run produced no result")
	}
	if err != nil {
		s.cache.Abort(key, err)
		return nil, nil, "", err
	}
	sjs, err := canonicalResultJSON(rs[0])
	if err != nil {
		s.cache.Abort(key, err)
		return nil, nil, "", err
	}
	s.cache.Fulfill(key, seed, cs.canonical(), rs[0], sjs)
	s.mu.Lock()
	s.simulatedRuns++
	s.simulatedCycles += uint64(rs[0].Breakdown.Exec)
	s.mu.Unlock()
	s.replicateAsync(key, seed, cs.canonical(), sjs)
	return rs[0], sjs, "simulated", nil
}

// resolveAny resolves one key from anywhere in the cluster: local cache
// first, then the owner, then the owner's replica set, and — when every peer
// is unreachable — locally as a last resort (membership timeouts will
// reshuffle the ring shortly; result bytes are identical wherever computed).
// how adds "forward" to resolveLocal's vocabulary.
func (s *Server) resolveAny(key, seed uint64, cs ConfigSpec) (*machine.Result, []byte, string, error) {
	if res, js, ok := s.cache.Peek(key); ok {
		return res, js, "hit", nil
	}
	node := s.clusterNode()
	if node == nil {
		return s.resolveLocal(key, seed, cs)
	}
	owner, self := node.Owner(key)
	if self {
		return s.resolveLocal(key, seed, cs)
	}
	targets := append([]string{owner}, node.Successors(key, node.Replicas())...)
	var lastErr error
	for _, peer := range targets {
		if peer == node.Self() {
			// The ring moved under us; we are in the key's replica set.
			return s.resolveLocal(key, seed, cs)
		}
		s.countCluster(func(c *clusterCounters) { c.forwardsSent++ })
		res, js, err := s.forwardCompute(peer, key, seed, cs)
		if err != nil {
			lastErr = err
			s.countCluster(func(c *clusterCounters) { c.forwardsFailed++ })
			continue
		}
		// Keep a copy: the front door converges toward the hot set its own
		// clients ask for, so repeat queries stay local (LRU-bounded).
		s.cache.Fulfill(key, seed, cs.canonical(), res, js)
		return res, js, "forward", nil
	}
	res, js, how, err := s.resolveLocal(key, seed, cs)
	if err != nil && lastErr != nil {
		return nil, nil, "", fmt.Errorf("%w (after forward failure: %v)", err, lastErr)
	}
	return res, js, how, err
}

// clusterComputeRequest is the /cluster/compute wire format. Key is the
// sender's derivation in hex; the receiver re-derives and rejects a mismatch
// (version-skewed peers must fail loudly, not cache under colliding keys).
type clusterComputeRequest struct {
	Spec ConfigSpec `json:"spec"`
	Seed uint64     `json:"seed,omitempty"`
	Key  string     `json:"key"`
}

// forwardCompute asks peer to resolve one config; the response body is the
// canonical result JSON verbatim, so forwarding preserves byte identity.
func (s *Server) forwardCompute(peer string, key, seed uint64, cs ConfigSpec) (*machine.Result, []byte, error) {
	body, err := json.Marshal(clusterComputeRequest{
		Spec: cs, Seed: seed, Key: fmt.Sprintf("%016x", key),
	})
	if err != nil {
		return nil, nil, err
	}
	code, data, err := s.peerDo("POST", peer, "/api/v1/cluster/compute", body)
	if err != nil {
		return nil, nil, err
	}
	if code != http.StatusOK {
		return nil, nil, fmt.Errorf("serve: peer %s compute: HTTP %d: %s", peer, code, clip(data))
	}
	var res machine.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, nil, fmt.Errorf("serve: peer %s compute: %w", peer, err)
	}
	return &res, data, nil
}

// recoverFromReplicas probes the key's successor set for a replicated copy.
func (s *Server) recoverFromReplicas(key uint64) (*machine.Result, []byte, bool) {
	node := s.clusterNode()
	if node == nil {
		return nil, nil, false
	}
	for _, peer := range node.Successors(key, node.Replicas()) {
		if peer == node.Self() {
			continue
		}
		code, data, err := s.peerDo("GET", peer,
			fmt.Sprintf("/api/v1/cluster/lookup?key=%016x", key), nil)
		if err != nil || code != http.StatusOK {
			continue
		}
		var res machine.Result
		if err := json.Unmarshal(data, &res); err != nil {
			continue
		}
		s.countCluster(func(c *clusterCounters) { c.recoveries++ })
		return &res, data, true
	}
	return nil, nil, false
}

// replicateAsync pushes a completed result to the key's owner (when this node
// is not it) and successors, in the persisted-index wire shape so receivers
// run the same verify-before-trust key check as a cache-file load. Fire and
// forget: replication is an availability optimization, never correctness —
// a missed replica only costs a recovery miss later.
func (s *Server) replicateAsync(key, seed uint64, cs ConfigSpec, js []byte) {
	s.mu.Lock()
	node := s.cluster
	if node == nil || s.clusterClosed {
		s.mu.Unlock()
		return
	}
	s.clusterWG.Add(1)
	s.mu.Unlock()
	targets := make(map[string]bool)
	if owner, self := node.Owner(key); !self {
		targets[owner] = true
	}
	for _, p := range node.Successors(key, node.Replicas()) {
		if p != node.Self() {
			targets[p] = true
		}
	}
	body, err := json.Marshal(indexEntry{
		Key: fmt.Sprintf("%016x", key), Seed: seed, Spec: cs, Result: json.RawMessage(js),
	})
	if len(targets) == 0 || err != nil {
		s.clusterWG.Done()
		return
	}
	go func() {
		defer s.clusterWG.Done()
		for peer := range targets {
			code, _, err := s.peerDo("POST", peer, "/api/v1/cluster/replicate", body)
			if err != nil || code/100 != 2 {
				s.countCluster(func(c *clusterCounters) { c.replicasFailed++ })
				continue
			}
			s.countCluster(func(c *clusterCounters) { c.replicasSent++ })
		}
	}()
}

// resolveRemote resolves a job's peer-owned configs (bounded fan-out) and
// folds each outcome into the job's counters, events and tenant accounting.
func (s *Server) resolveRemote(j *Job, keys []uint64, remote []int, results []*machine.Result, resJSON [][]byte) error {
	var (
		rmu      sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, 4)
	for _, i := range remote {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			res, js, how, err := s.resolveAny(keys[i], j.spec.Seed, j.spec.Configs[i])
			rmu.Lock()
			defer rmu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			results[i], resJSON[i] = res, js
			s.accountResolved(j, i, res, js, how)
		}(i)
	}
	wg.Wait()
	return firstErr
}

// accountResolved attributes one cluster-resolved config to the job using
// only the pre-cluster lifecycle event kinds, so every chain still satisfies
// ValidateEventChain: peer-resolved configs surface as cache_hit events with
// a "cluster:…" detail (from this node's perspective, the cluster's
// replicated cache answered).
func (s *Server) accountResolved(j *Job, i int, res *machine.Result, js []byte, how string) {
	s.mu.Lock()
	j.done++
	switch how {
	case "hit":
		j.cacheHits++
		s.eventLocked(j, svclog.EvCacheHit, i, 0, "")
	case "join":
		j.joins++
		s.eventLocked(j, svclog.EvJoined, i, 0, "")
	case "simulated":
		j.simulated++
		s.eventLocked(j, svclog.EvSimulated, i, uint64(res.Breakdown.Exec), "")
		s.eventLocked(j, svclog.EvPersisted, i, 0, "")
	default: // "forward", "recovered"
		j.forwarded++
		s.eventLocked(j, svclog.EvCacheHit, i, 0, "cluster:"+how)
	}
	s.mu.Unlock()
	s.tenantAccount(j, func(u *TenantUsage) {
		u.ResultBytes += uint64(len(js))
		switch how {
		case "hit":
			u.CacheHits++
		case "join":
			u.Joins++
		case "simulated":
			u.CacheMisses++
			u.SimulatedRuns++
			u.EngineCycles += uint64(res.Breakdown.Exec)
		}
	})
}

// ---------------------------------------------------------------------------
// Ownership redirects (421)

// RedirectTarget decides whether a submission should bounce to a peer with
// 421 Misdirected Request: while draining, any alive peer keeps the cluster
// available through one node's restart; otherwise only when every config key
// has the same remote owner and none is cached here (a mixed-ownership batch
// is served better by this front door's fan-out). Submissions that already
// followed one redirect are never bounced again (the HTTP layer checks
// forwardedHeader before calling this).
func (s *Server) RedirectTarget(spec JobSpec) (peer, reason string, ok bool) {
	node := s.clusterNode()
	if node == nil {
		return "", "", false
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		peers := node.AlivePeers()
		if len(peers) == 0 {
			return "", "", false
		}
		s.countCluster(func(c *clusterCounters) { c.redirects++ })
		return peers[rand.Intn(len(peers))], "draining", true
	}
	owner := ""
	for _, cs := range spec.Configs {
		key := cs.Key(spec.Seed)
		if s.cache.Contains(key) {
			return "", "", false
		}
		o, self := node.Owner(key)
		if self {
			return "", "", false
		}
		if owner == "" {
			owner = o
		} else if owner != o {
			return "", "", false
		}
	}
	if owner == "" {
		return "", "", false
	}
	s.countCluster(func(c *clusterCounters) { c.redirects++ })
	return owner, "keys owned by peer", true
}

// ---------------------------------------------------------------------------
// Work stealing

// stealResponse hands one queued job to a thief.
type stealResponse struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
}

// stolenReport returns a stolen job's outcome to its victim. Results carry
// each config's canonical JSON verbatim; Hows says how the thief resolved
// each one (hit/join/forward/recovered/simulated).
type stolenReport struct {
	ID      string            `json:"id"`
	Error   string            `json:"error,omitempty"`
	Hows    []string          `json:"hows,omitempty"`
	Results []json.RawMessage `json:"results,omitempty"`
}

// stealJob pops the worst queued job (lowest priority, newest) for a thief.
// Jobs carrying run-time observers (spans, telemetry) are pinned: their
// artifacts must be recorded where the simulations execute. The job flips to
// running attributed to the thief; it does not occupy a local worker slot.
func (s *Server) stealJob(thief string) (stealResponse, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || thief == "" || len(s.queue) == 0 {
		return stealResponse{}, false
	}
	worst := -1
	for i, j := range s.queue {
		if j.spans != nil || j.telemetry {
			continue
		}
		if worst == -1 ||
			j.spec.Priority < s.queue[worst].spec.Priority ||
			(j.spec.Priority == s.queue[worst].spec.Priority && j.seq > s.queue[worst].seq) {
			worst = i
		}
	}
	if worst == -1 {
		return stealResponse{}, false
	}
	j := heap.Remove(&s.queue, worst).(*Job)
	j.state = JobRunning
	j.started = time.Now()
	j.stolenBy = thief
	s.stolen[j.id] = &stolenRecord{job: j, thief: thief, deadline: time.Now().Add(stealRequeueAfter)}
	s.cl.stealsGiven++
	if s.opt.Tenants != nil && j.spec.Tenant != "" {
		s.opt.Tenants.started(j.spec.Tenant)
	}
	s.eventLocked(j, svclog.EvStarted, -1, 0, "stolen by "+thief)
	s.opt.Log.Info("job_stolen", "job", j.id, "thief", thief, "queue_depth", len(s.queue))
	return stealResponse{ID: j.id, Spec: j.spec}, true
}

// takeStolen claims a stolen job for finalization; false when the job was
// already requeued (thief too slow) or is unknown.
func (s *Server) takeStolen(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.stolen[id]
	if !ok {
		return nil, false
	}
	delete(s.stolen, id)
	return rec.job, true
}

// completeStolen finalizes a job whose configs a thief resolved, mirroring
// runJob's tail: results install, metrics fold, events close the chain.
// Global simulation counters do NOT move here — they moved on the node that
// actually simulated, which is what makes the cluster-wide sum of
// simulated_runs the exactly-once proof.
func (s *Server) completeStolen(j *Job, rep stolenReport) {
	n := len(j.spec.Configs)
	results := make([]*machine.Result, n)
	resJSON := make([][]byte, n)
	var jobErr error
	switch {
	case rep.Error != "":
		jobErr = fmt.Errorf("serve: stolen by %s: %s", j.stolenBy, rep.Error)
	case len(rep.Results) != n || len(rep.Hows) != n:
		jobErr = fmt.Errorf("serve: thief %s returned %d results / %d hows for %d configs",
			j.stolenBy, len(rep.Results), len(rep.Hows), n)
	default:
		for i := range rep.Results {
			var res machine.Result
			if err := json.Unmarshal(rep.Results[i], &res); err != nil {
				jobErr = fmt.Errorf("serve: stolen result %d: %w", i, err)
				break
			}
			results[i] = &res
			resJSON[i] = append([]byte(nil), rep.Results[i]...)
		}
	}
	if jobErr == nil {
		for i := range results {
			s.cache.Fulfill(j.spec.Configs[i].Key(j.spec.Seed), j.spec.Seed,
				j.spec.Configs[i].canonical(), results[i], resJSON[i])
		}
		if j.metrics != nil {
			for _, r := range results {
				machine.CollectMetrics(j.metrics, r)
			}
		}
	}
	s.mu.Lock()
	j.finished = time.Now()
	if jobErr != nil {
		j.state = JobFailed
		j.err = jobErr
		s.jobsFailed++
		s.eventLocked(j, svclog.EvFailed, -1, 0, jobErr.Error())
		s.opt.Log.Error("job_failed", "job", j.id, "name", j.spec.Name, "thief", j.stolenBy,
			"err", jobErr.Error())
	} else {
		j.state = JobDone
		j.results = results
		j.resultJSON = resJSON
		j.done = n
		for i, how := range rep.Hows {
			switch how {
			case "simulated":
				j.simulated++
			case "join":
				j.joins++
			case "hit":
				j.cacheHits++
			default:
				j.forwarded++
			}
			s.eventLocked(j, svclog.EvCacheHit, i, 0, "stolen:"+how)
		}
		s.jobsDone++
		s.eventLocked(j, svclog.EvDone, -1, 0, "stolen by "+j.stolenBy)
		s.opt.Log.Info("job_done", "job", j.id, "name", j.spec.Name, "thief", j.stolenBy,
			"wall_us", j.finished.Sub(j.submitted).Microseconds())
	}
	sec := j.finished.Sub(j.started).Seconds()
	if s.ewmaJobSec == 0 {
		s.ewmaJobSec = sec
	} else {
		s.ewmaJobSec = 0.7*s.ewmaJobSec + 0.3*sec
	}
	s.mu.Unlock()
	if s.opt.Tenants != nil && j.spec.Tenant != "" {
		s.opt.Tenants.finished(j.spec.Tenant, jobErr != nil, sec)
	}
	if jobErr == nil {
		s.tenantAccount(j, func(u *TenantUsage) {
			for _, js := range resJSON {
				u.ResultBytes += uint64(len(js))
			}
		})
	}
	close(j.doneCh)
}

// requeueStolen returns jobs whose thieves blew the deadline to the local
// queue. A late thief report for a requeued job gets 410 Gone.
func (s *Server) requeueStolen(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, rec := range s.stolen {
		if now.Before(rec.deadline) {
			continue
		}
		delete(s.stolen, id)
		j := rec.job
		j.state = JobQueued
		j.stolenBy = ""
		j.started = time.Time{}
		s.queue.push(j)
		s.cl.stealsRequeued++
		if s.opt.Tenants != nil && j.spec.Tenant != "" {
			s.opt.Tenants.requeued(j.spec.Tenant)
		}
		s.eventLocked(j, svclog.EvQueued, -1, 0, "steal by "+rec.thief+" timed out; requeued")
		s.opt.Log.Warn("job_steal_requeued", "job", j.id, "thief", rec.thief)
		s.cond.Signal()
	}
}

// trySteal runs the thief side: when this node is fully idle, ask one random
// alive peer for work, resolve it through the normal owner routing, and post
// the results back.
func (s *Server) trySteal() {
	node := s.clusterNode()
	if node == nil {
		return
	}
	s.mu.Lock()
	idle := len(s.queue) == 0 && s.running == 0 && !s.draining
	s.mu.Unlock()
	if !idle {
		return
	}
	peers := node.AlivePeers()
	if len(peers) == 0 {
		return
	}
	victim := peers[rand.Intn(len(peers))]
	body, _ := json.Marshal(struct {
		Thief string `json:"thief"`
	}{Thief: node.Self()})
	code, data, err := s.peerDo("POST", victim, "/api/v1/cluster/steal", body)
	if err != nil || code != http.StatusOK {
		return // nothing to steal, or victim unreachable
	}
	var sj stealResponse
	if err := json.Unmarshal(data, &sj); err != nil {
		return
	}
	s.countCluster(func(c *clusterCounters) { c.stealsTaken++ })
	s.opt.Log.Info("job_steal_taken", "victim", victim, "job", sj.ID,
		"configs", len(sj.Spec.Configs))
	rep := stolenReport{
		ID:      sj.ID,
		Hows:    make([]string, len(sj.Spec.Configs)),
		Results: make([]json.RawMessage, len(sj.Spec.Configs)),
	}
	for i, cs := range sj.Spec.Configs {
		_, js, how, err := s.resolveAny(cs.Key(sj.Spec.Seed), sj.Spec.Seed, cs)
		if err != nil {
			rep.Error = err.Error()
			rep.Hows, rep.Results = nil, nil
			break
		}
		rep.Hows[i], rep.Results[i] = how, json.RawMessage(js)
	}
	rbody, err := json.Marshal(rep)
	if err != nil {
		s.countCluster(func(c *clusterCounters) { c.stealsFailed++ })
		return
	}
	code, _, err = s.peerDo("POST", victim, "/api/v1/cluster/stolen", rbody)
	if err != nil || code/100 != 2 || rep.Error != "" {
		s.countCluster(func(c *clusterCounters) { c.stealsFailed++ })
		return
	}
	s.countCluster(func(c *clusterCounters) { c.stealsCompleted++ })
}

// ---------------------------------------------------------------------------
// HTTP handlers (mounted in API.Handler, outside tenant auth)

// clusterGuard resolves the attached node and (for peer-to-peer payload
// endpoints) enforces the cluster-name header. Unclustered daemons answer 404
// on every cluster route.
func (a *API) clusterGuard(w http.ResponseWriter, r *http.Request, checkName bool) (*cluster.Node, bool) {
	node := a.srv.clusterNode()
	if node == nil {
		a.writeError(w, r, http.StatusNotFound,
			"this daemon is not clustered (run with -cluster-name and -peers)")
		return nil, false
	}
	if checkName {
		if got := r.Header.Get(clusterHeader); got != node.Name() {
			a.writeError(w, r, http.StatusForbidden,
				fmt.Sprintf("cluster name mismatch: got %q, this is %q", got, node.Name()))
			return nil, false
		}
	}
	return node, true
}

// clusterHeartbeat receives a peer's gossip view (name checked in the body by
// the node itself).
func (a *API) clusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	node, ok := a.clusterGuard(w, r, false)
	if !ok {
		return
	}
	node.HandleHeartbeat(w, r)
}

// clusterCompute resolves one config as this node (the owner side of
// forwarding). The response body is the canonical result JSON verbatim.
func (a *API) clusterCompute(w http.ResponseWriter, r *http.Request) {
	if _, ok := a.clusterGuard(w, r, true); !ok {
		return
	}
	var req clusterComputeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		a.writeError(w, r, http.StatusBadRequest, "bad compute request: "+err.Error())
		return
	}
	key := req.Spec.Key(req.Seed)
	if want := fmt.Sprintf("%016x", key); req.Key != want {
		a.writeError(w, r, http.StatusBadRequest, fmt.Sprintf(
			"key derivation mismatch: peer sent %s, this node derives %s (mixed KeyVersion deployment?)",
			req.Key, want))
		return
	}
	_, js, how, err := a.srv.resolveLocal(key, req.Seed, req.Spec)
	if err != nil {
		a.writeError(w, r, http.StatusInternalServerError, err.Error())
		return
	}
	a.srv.countCluster(func(c *clusterCounters) { c.forwardsServed++ })
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Aggsimd-How", how)
	w.Write(js)
}

// clusterLookup serves a cached result to a recovering owner (200 with the
// canonical bytes, 404 when not resident). Never computes.
func (a *API) clusterLookup(w http.ResponseWriter, r *http.Request) {
	if _, ok := a.clusterGuard(w, r, true); !ok {
		return
	}
	var key uint64
	if _, err := fmt.Sscanf(r.URL.Query().Get("key"), "%x", &key); err != nil {
		a.writeError(w, r, http.StatusBadRequest, "bad key: "+err.Error())
		return
	}
	_, js, ok := a.srv.Cache().Peek(key)
	if !ok {
		a.srv.countCluster(func(c *clusterCounters) { c.lookupsMissed++ })
		a.writeError(w, r, http.StatusNotFound, "key not resident")
		return
	}
	a.srv.countCluster(func(c *clusterCounters) { c.lookupsServed++ })
	w.Header().Set("Content-Type", "application/json")
	w.Write(js)
}

// clusterReplicate receives a pushed copy. The entry is verified exactly like
// a persisted cache index load: the key is re-derived from the spec, never
// trusted.
func (a *API) clusterReplicate(w http.ResponseWriter, r *http.Request) {
	if _, ok := a.clusterGuard(w, r, true); !ok {
		return
	}
	var ie indexEntry
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&ie); err != nil {
		a.writeError(w, r, http.StatusBadRequest, "bad replica: "+err.Error())
		return
	}
	want := ie.Spec.Key(ie.Seed)
	if fmt.Sprintf("%016x", want) != ie.Key {
		a.writeError(w, r, http.StatusBadRequest,
			"replica key does not match its spec (mixed KeyVersion deployment?)")
		return
	}
	var res machine.Result
	if err := json.Unmarshal(ie.Result, &res); err != nil {
		a.writeError(w, r, http.StatusBadRequest, "bad replica result: "+err.Error())
		return
	}
	a.srv.Cache().Fulfill(want, ie.Seed, ie.Spec, &res, append([]byte(nil), ie.Result...))
	a.srv.countCluster(func(c *clusterCounters) { c.replicasReceived++ })
	w.WriteHeader(http.StatusNoContent)
}

// clusterSteal hands one queued job to a thief (200 with the job, 204 when
// nothing is stealable).
func (a *API) clusterSteal(w http.ResponseWriter, r *http.Request) {
	if _, ok := a.clusterGuard(w, r, true); !ok {
		return
	}
	var req struct {
		Thief string `json:"thief"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		a.writeError(w, r, http.StatusBadRequest, "bad steal request: "+err.Error())
		return
	}
	sj, ok := a.srv.stealJob(req.Thief)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	a.writeJSON(w, r, http.StatusOK, sj)
}

// clusterStolen finalizes a stolen job with the thief's results; 410 when the
// job was already requeued (the thief's work is discarded — the shared cache
// still keeps whatever it computed).
func (a *API) clusterStolen(w http.ResponseWriter, r *http.Request) {
	if _, ok := a.clusterGuard(w, r, true); !ok {
		return
	}
	var rep stolenReport
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&rep); err != nil {
		a.writeError(w, r, http.StatusBadRequest, "bad stolen report: "+err.Error())
		return
	}
	j, ok := a.srv.takeStolen(rep.ID)
	if !ok {
		a.writeError(w, r, http.StatusGone, "job "+rep.ID+" is not out on loan (requeued or unknown)")
		return
	}
	a.srv.completeStolen(j, rep)
	w.WriteHeader(http.StatusNoContent)
}
