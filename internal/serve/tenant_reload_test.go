package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTenantsReload covers the hot-reload contract: retained tenants keep
// their live state and usage under the new declaration, removed tenants stop
// authenticating, added tenants start fresh, and the generation counts
// successful swaps.
func TestTenantsReload(t *testing.T) {
	reg := twoTenants(t, []Tenant{
		{Name: "a", Key: "key-aaaaaaaa", RatePerSec: 2, Burst: 4},
		{Name: "b", Key: "key-bbbbbbbb"},
	})
	// Give a some history to survive the swap.
	reg.Authenticate("key-aaaaaaaa")
	reg.states["a"].tokens = 3

	err := reg.Reload([]Tenant{
		{Name: "a", Key: "key-aaaaaaaa", RatePerSec: 2, Burst: 2}, // burst shrank
		{Name: "c", Key: "key-cccccccc"},                          // added
		// b removed
	})
	if err != nil {
		t.Fatal(err)
	}
	if g := reg.Generation(); g != 1 {
		t.Fatalf("generation = %d, want 1", g)
	}
	if _, ok := reg.Authenticate("key-bbbbbbbb"); ok {
		t.Fatal("removed tenant b still authenticates")
	}
	if name, ok := reg.Authenticate("key-cccccccc"); !ok || name != "c" {
		t.Fatalf("added tenant: Authenticate = %q, %v", name, ok)
	}
	if _, ok := reg.Authenticate("key-aaaaaaaa"); !ok {
		t.Fatal("retained tenant a stopped authenticating")
	}
	snap, ok := reg.Get("a")
	if !ok {
		t.Fatal("retained tenant a vanished")
	}
	if snap.Usage.Requests != 2 { // 1 before reload + 1 after
		t.Fatalf("a's usage did not survive reload: %d requests, want 2", snap.Usage.Requests)
	}
	if tok := reg.states["a"].tokens; tok != 2 {
		t.Fatalf("a's tokens = %v, want clamped to new burst 2", tok)
	}
}

// TestTenantsReloadTokenTransitions pins the bucket edge cases: gaining a
// rate limit grants a full fresh bucket, losing it zeroes the bucket.
func TestTenantsReloadTokenTransitions(t *testing.T) {
	reg := twoTenants(t, []Tenant{
		{Name: "free", Key: "key-ffffffff"},
		{Name: "limited", Key: "key-llllllll", RatePerSec: 1, Burst: 3},
	})
	reg.states["limited"].tokens = 1
	reg.states["limited"].lastRefill = time.Unix(1000, 0)

	if err := reg.Reload([]Tenant{
		{Name: "free", Key: "key-ffffffff", RatePerSec: 5, Burst: 5}, // newly limited
		{Name: "limited", Key: "key-llllllll"},                       // limit removed
	}); err != nil {
		t.Fatal(err)
	}
	if tok := reg.states["free"].tokens; tok != 5 {
		t.Fatalf("newly limited tenant starts with %v tokens, want full burst 5", tok)
	}
	if st := reg.states["limited"]; st.tokens != 0 || !st.lastRefill.IsZero() {
		t.Fatalf("unlimited tenant kept bucket state: tokens=%v lastRefill=%v", st.tokens, st.lastRefill)
	}
}

// TestTenantsReloadRejectsInvalid is the all-or-nothing half: a malformed
// list (or file) changes nothing — same tenants, same generation.
func TestTenantsReloadRejectsInvalid(t *testing.T) {
	reg := twoTenants(t, []Tenant{{Name: "a", Key: "key-aaaaaaaa"}})

	bad := [][]Tenant{
		{{Name: "", Key: "key-xxxxxxxx"}}, // empty name
		{{Name: "x", Key: "short"}},       // short key
		{{Name: "x", Key: "key-xxxxxxxx"}, {Name: "x", Key: "key-yyyyyyyy"}}, // dup name
	}
	for i, list := range bad {
		if err := reg.Reload(list); err == nil {
			t.Fatalf("bad list %d accepted", i)
		}
	}
	if g := reg.Generation(); g != 0 {
		t.Fatalf("failed reloads bumped generation to %d", g)
	}
	if _, ok := reg.Authenticate("key-aaaaaaaa"); !ok {
		t.Fatal("failed reload lost the previous registry")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.json")
	os.WriteFile(path, []byte(`{"tenants":[{"name":"a","key":`), 0o644)
	if err := reg.ReloadFile(path); err == nil || !strings.Contains(err.Error(), "tenants file") {
		t.Fatalf("malformed tenants file: err = %v", err)
	}
	os.WriteFile(path, []byte(`{"tenants":[]}`), 0o644)
	if err := reg.ReloadFile(path); err == nil {
		t.Fatal("empty tenants file accepted by ReloadFile")
	}
	if g := reg.Generation(); g != 0 {
		t.Fatalf("rejected files bumped generation to %d", g)
	}

	os.WriteFile(path, []byte(`{"tenants":[{"name":"z","key":"key-zzzzzzzz"}]}`), 0o644)
	if err := reg.ReloadFile(path); err != nil {
		t.Fatal(err)
	}
	if g, n := reg.Generation(), reg.Len(); g != 1 || n != 1 {
		t.Fatalf("good file: generation %d len %d, want 1 and 1", g, n)
	}
	if name, ok := reg.Authenticate("key-zzzzzzzz"); !ok || name != "z" {
		t.Fatalf("reloaded tenant: Authenticate = %q, %v", name, ok)
	}
}
