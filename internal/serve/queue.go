package serve

import "container/heap"

// jobQueue orders queued jobs by descending priority, FIFO within a
// priority (stable via the submission sequence number). It implements
// container/heap.
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	if q[i].spec.Priority != q[j].spec.Priority {
		return q[i].spec.Priority > q[j].spec.Priority
	}
	return q[i].seq < q[j].seq
}

func (q jobQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *jobQueue) Push(x any) { *q = append(*q, x.(*Job)) }

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// push/pop are typed wrappers so call sites read cleanly.
func (q *jobQueue) push(j *Job) { heap.Push(q, j) }
func (q *jobQueue) pop() *Job   { return heap.Pop(q).(*Job) }
