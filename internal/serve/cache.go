package serve

import (
	"encoding/json"
	"fmt"
	"sync"

	"pimdsm/internal/hashmap"
	"pimdsm/internal/machine"
)

// entry is one cached result on the LRU list (head = most recently used).
type entry struct {
	key        uint64
	seed       uint64
	spec       ConfigSpec
	res        *machine.Result
	js         []byte // canonical JSON of res, the byte-identity the API serves
	prev, next *entry
}

// flight is one in-progress simulation of a key. The owning job resolves it
// exactly once; every other job wanting the same key blocks on done instead
// of simulating again (singleflight).
type flight struct {
	done chan struct{}
	res  *machine.Result
	js   []byte
	err  error
}

// Cache is the content-addressed result store: an open-addressed index
// (internal/hashmap) over an intrusive LRU list bounded to max entries, plus
// the in-flight registry that collapses duplicate work.
type Cache struct {
	mu         sync.Mutex
	max        int
	m          hashmap.Map[*entry]
	inflight   hashmap.Map[*flight]
	head, tail *entry

	hits, misses, joins, evictions uint64
}

// NewCache returns a cache bounded to max entries (min 1).
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{max: max}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Len()
}

// touch moves e to the head of the LRU list. Caller holds mu.
func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.head == e {
		c.head = e.next
	}
	if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Acquire resolves key in one atomic step. Exactly one of three outcomes:
//
//   - cache hit: res/js returned, hit=true;
//   - join: another job is already simulating this key — fl is its flight,
//     owner=false; wait on fl.done, then read fl.res/fl.js/fl.err;
//   - own: the caller must simulate and then call Fulfill or Abort — fl is
//     the caller's own flight, owner=true.
func (c *Cache) Acquire(key uint64) (res *machine.Result, js []byte, hit bool, fl *flight, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m.Get(key); ok {
		c.hits++
		c.touch(e)
		return e.res, e.js, true, nil, false
	}
	if f, ok := c.inflight.Get(key); ok {
		c.joins++
		return nil, nil, false, f, false
	}
	c.misses++
	f := &flight{done: make(chan struct{})}
	c.inflight.Put(key, f)
	return nil, nil, false, f, true
}

// Peek returns the cached result for key without starting a flight: a hit
// counts (and refreshes LRU recency) like Acquire's, but a miss moves no
// counters and registers no in-flight work. Cluster routing uses it to ask
// "can this node answer right now?" before forwarding to the owner.
func (c *Cache) Peek(key uint64) (*machine.Result, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m.Get(key); ok {
		c.hits++
		c.touch(e)
		return e.res, e.js, true
	}
	return nil, nil, false
}

// Contains reports residency without touching counters or recency — a pure
// read for redirect decisions.
func (c *Cache) Contains(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.m.Get(key)
	return ok
}

// Fulfill resolves the caller-owned flight for key with a computed result
// and inserts it into the cache, evicting from the LRU tail past the bound.
func (c *Cache) Fulfill(key, seed uint64, spec ConfigSpec, res *machine.Result, js []byte) {
	c.mu.Lock()
	if f, ok := c.inflight.Get(key); ok {
		f.res, f.js = res, js
		c.inflight.Delete(key)
		defer close(f.done)
	}
	c.insert(key, seed, spec, res, js)
	c.mu.Unlock()
}

// Abort resolves the caller-owned flight for key with an error; nothing is
// cached, so a later submission retries the simulation.
func (c *Cache) Abort(key uint64, err error) {
	c.mu.Lock()
	if f, ok := c.inflight.Get(key); ok {
		f.err = err
		c.inflight.Delete(key)
		defer close(f.done)
	}
	c.mu.Unlock()
}

// insert adds (or refreshes) an entry. Caller holds mu.
func (c *Cache) insert(key, seed uint64, spec ConfigSpec, res *machine.Result, js []byte) {
	if e, ok := c.m.Get(key); ok {
		e.res, e.js = res, js
		c.touch(e)
		return
	}
	e := &entry{key: key, seed: seed, spec: spec, res: res, js: js}
	c.m.Put(key, e)
	c.touch(e)
	for c.m.Len() > c.max && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		c.m.Delete(victim.key)
		c.evictions++
	}
}

// CacheStats is a counters snapshot.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Limit     int    `json:"limit"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Joins     uint64 `json:"singleflight_joins"`
	Evictions uint64 `json:"evictions"`
	InFlight  int    `json:"in_flight"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.m.Len(),
		Limit:     c.max,
		Hits:      c.hits,
		Misses:    c.misses,
		Joins:     c.joins,
		Evictions: c.evictions,
		InFlight:  c.inflight.Len(),
	}
}

// keys returns the cached keys from least to most recently used (test and
// persistence order: reinserting in this order reproduces the LRU state).
func (c *Cache) keysLRU() []uint64 {
	var ks []uint64
	for e := c.tail; e != nil; e = e.prev {
		ks = append(ks, e.key)
	}
	return ks
}

// canonicalResultJSON is the one serialization every byte-identity claim in
// the service refers to: encoding/json with sorted map keys, no indentation.
func canonicalResultJSON(res *machine.Result) ([]byte, error) {
	return json.Marshal(res)
}

// indexEntry is the persisted form of one cache entry.
type indexEntry struct {
	Key    string          `json:"key"` // hex; recomputed and verified on load
	Seed   uint64          `json:"seed,omitempty"`
	Spec   ConfigSpec      `json:"spec"`
	Result json.RawMessage `json:"result"`
}

// index is the persisted cache file.
type index struct {
	Version int          `json:"version"`
	Entries []indexEntry `json:"entries"` // least to most recently used
}

// Snapshot serializes the cache index (least to most recently used, so a
// load replays into the same LRU order).
func (c *Cache) Snapshot() *index {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := &index{Version: KeyVersion}
	for e := c.tail; e != nil; e = e.prev {
		idx.Entries = append(idx.Entries, indexEntry{
			Key:    fmt.Sprintf("%016x", e.key),
			Seed:   e.seed,
			Spec:   e.spec,
			Result: json.RawMessage(e.js),
		})
	}
	return idx
}

// LoadIndex replays a persisted index into the cache. Entries whose stored
// key does not match the current derivation (version skew, hand-edited
// file) are skipped, not served: the key contract is verified, never
// trusted. Returns how many entries were restored.
func (c *Cache) LoadIndex(idx *index) int {
	if idx.Version != KeyVersion {
		return 0
	}
	n := 0
	for _, ie := range idx.Entries {
		want := ie.Spec.Key(ie.Seed)
		if fmt.Sprintf("%016x", want) != ie.Key {
			continue
		}
		var res machine.Result
		if err := json.Unmarshal(ie.Result, &res); err != nil {
			continue
		}
		js := append([]byte(nil), ie.Result...)
		c.mu.Lock()
		c.insert(want, ie.Seed, ie.Spec, &res, js)
		c.mu.Unlock()
		n++
	}
	return n
}
