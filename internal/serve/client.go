package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"pimdsm/internal/obs/svclog"
)

// Client talks to an aggsimd daemon over its JSON/HTTP API. Against a
// clustered daemon it follows ownership redirects transparently: a 421
// Misdirected Request repoints the client at the named peer, and all later
// requests (status, wait, result) go there too, so the job is watched on the
// node that actually holds it. Use by pointer, not value.
type Client struct {
	// Base is the daemon address: "host:port" or a full "http://..." URL.
	Base string
	// HTTP overrides the transport (nil means http.DefaultClient).
	HTTP *http.Client
	// APIKey, when non-empty, authenticates every request as a tenant
	// (Authorization: Bearer). Required against a daemon running with
	// -tenants-file; ignored by an anonymous daemon.
	APIKey string

	// mu guards peerBase, the sticky cluster-redirect target (empty until a
	// 421 arrives; reset to Base by ResetPeer).
	mu       sync.Mutex
	peerBase string

	// sleep and rnd are test seams for SubmitRetry's jittered backoff: sleep
	// replaces the context-aware wait, rnd the uniform [0,1) draw. Nil means
	// the real thing.
	sleep func(time.Duration)
	rnd   func() float64
}

// NewClient returns a client for the daemon at addr.
func NewClient(addr string) *Client { return &Client{Base: addr} }

// base returns the address requests go to: the last cluster redirect target,
// or Base before any redirect.
func (c *Client) base() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.peerBase != "" {
		return c.peerBase
	}
	return c.Base
}

// setPeer repoints the client at a cluster peer.
func (c *Client) setPeer(addr string) {
	c.mu.Lock()
	c.peerBase = addr
	c.mu.Unlock()
}

// ResetPeer forgets any cluster redirect, returning to Base.
func (c *Client) ResetPeer() { c.setPeer("") }

func (c *Client) url(path string) string {
	base := c.base()
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/") + path
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// newRequest builds a request with the client's API key attached (when set).
func (c *Client) newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	var req *http.Request
	var err error
	if ctx != nil {
		req, err = http.NewRequestWithContext(ctx, method, url, body)
	} else {
		req, err = http.NewRequest(method, url, body)
	}
	if err != nil {
		return nil, err
	}
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	return req, nil
}

// apiError decodes a non-2xx response into an error; 429 becomes *BusyError
// (carrying the server's tenant/reason attribution when present). 401/403
// stay plain errors, so SubmitRetry never retries an auth failure.
func apiError(resp *http.Response, body []byte) error {
	var eb errorBody
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		sec := eb.RetryAfterSec
		if sec < 1 {
			sec = 1
		}
		return &BusyError{
			RetryAfter: time.Duration(sec) * time.Second,
			Tenant:     eb.Tenant,
			Reason:     eb.Reason,
		}
	}
	return fmt.Errorf("serve: %s: %s", resp.Status, msg)
}

func (c *Client) get(path string, out any) error {
	req, err := c.newRequest(nil, "GET", c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp, body)
	}
	return json.Unmarshal(body, out)
}

// Submit posts a job. A full admission window surfaces as *BusyError with
// the server's retry-after hint. Cluster ownership redirects (421) are
// followed transparently, at most maxRedirectHops times; the follow-up
// submission carries X-Aggsimd-Forwarded so the receiving node serves it
// rather than bouncing again, and the redirect target sticks for the
// client's later status/result calls.
func (c *Client) Submit(spec JobSpec) (JobStatus, error) {
	var st JobStatus
	buf, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	const maxRedirectHops = 3
	forwarded := false
	for hop := 0; ; hop++ {
		req, err := c.newRequest(nil, "POST", c.url("/api/v1/jobs"), bytes.NewReader(buf))
		if err != nil {
			return st, err
		}
		req.Header.Set("Content-Type", "application/json")
		if forwarded {
			req.Header.Set(forwardedHeader, "1")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return st, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return st, err
		}
		if resp.StatusCode == http.StatusMisdirectedRequest && hop < maxRedirectHops {
			var eb errorBody
			if json.Unmarshal(body, &eb) == nil && eb.Peer != "" {
				c.setPeer(eb.Peer)
				forwarded = true
				continue
			}
		}
		if resp.StatusCode != http.StatusAccepted {
			return st, apiError(resp, body)
		}
		return st, json.Unmarshal(body, &st)
	}
}

// SubmitRetry posts a job, honoring admission-control pushback with capped
// exponential backoff and full jitter: on the nth consecutive 429 the client
// sleeps uniform(0, min(cap, hint·2ⁿ)) — the server's Retry-After hint is
// the base, maxSleep the cap (a non-positive maxSleep uses 30s) — then
// resubmits, up to maxRetries retries. Full jitter decorrelates a fleet of
// pushed-back clients: without it every client that got the same hint
// returns in the same instant and the window fills again before anyone
// lands. Any other error is returned immediately. The returned count is how
// many 429s were absorbed.
func (c *Client) SubmitRetry(ctx context.Context, spec JobSpec, maxRetries int, maxSleep time.Duration) (JobStatus, int, error) {
	cap := maxSleep
	if cap <= 0 {
		cap = 30 * time.Second
	}
	retries := 0
	for {
		st, err := c.Submit(spec)
		var be *BusyError
		if err == nil || !errors.As(err, &be) {
			return st, retries, err
		}
		if retries >= maxRetries {
			return st, retries, err
		}
		window := backoffWindow(be.RetryAfter, retries, cap)
		retries++
		rnd := c.rnd
		if rnd == nil {
			rnd = rand.Float64
		}
		sleep := time.Duration(rnd() * float64(window))
		if c.sleep != nil {
			c.sleep(sleep)
			if err := ctx.Err(); err != nil {
				return st, retries, err
			}
			continue
		}
		select {
		case <-ctx.Done():
			return st, retries, ctx.Err()
		case <-time.After(sleep):
		}
	}
}

// backoffWindow is the jitter window for the nth retry (0-based): the
// server's hint doubled n times, capped. The shift saturates instead of
// overflowing.
func backoffWindow(hint time.Duration, n int, cap time.Duration) time.Duration {
	if hint <= 0 {
		hint = time.Second
	}
	if n > 62 {
		n = 62
	}
	w := hint
	for i := 0; i < n; i++ {
		w *= 2
		if w >= cap || w < 0 {
			return cap
		}
	}
	if w > cap {
		return cap
	}
	return w
}

// Status fetches one job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	err := c.get("/api/v1/jobs/"+id, &st)
	return st, err
}

// Jobs lists every job on the daemon.
func (c *Client) Jobs() ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.get("/api/v1/jobs", &out)
	return out.Jobs, err
}

// Result fetches a finished job's results. The returned raw messages are
// the canonical result JSON, byte-identical to what a direct run encodes.
func (c *Client) Result(id string) (JobStatus, []json.RawMessage, error) {
	var env resultEnvelope
	if err := c.get("/api/v1/jobs/"+id+"/result", &env); err != nil {
		return JobStatus{}, nil, err
	}
	return env.Job, env.Results, nil
}

// Metrics fetches a finished job's metrics registry JSON.
func (c *Client) Metrics(id string) ([]byte, error) {
	return c.raw("/api/v1/jobs/" + id + "/metrics")
}

// Spans fetches a finished job's span recorder in PDS1 binary form.
func (c *Client) Spans(id string) ([]byte, error) {
	return c.raw("/api/v1/jobs/" + id + "/spans")
}

// Profile fetches a telemetry job's merged profile snapshot
// (obs.ProfileSnapshot JSON).
func (c *Client) Profile(id string) ([]byte, error) {
	return c.raw("/api/v1/jobs/" + id + "/profile")
}

// Folded fetches a telemetry job's folded flamegraph stacks.
func (c *Client) Folded(id string) ([]byte, error) {
	return c.raw("/api/v1/jobs/" + id + "/folded")
}

// Decompose fetches a telemetry job's span decomposition
// (obs.SpanBreakdown JSON).
func (c *Client) Decompose(id string) ([]byte, error) {
	return c.raw("/api/v1/jobs/" + id + "/decompose")
}

func (c *Client) raw(path string) ([]byte, error) {
	req, err := c.newRequest(nil, "GET", c.url(path), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp, body)
	}
	return body, nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (ServerStats, error) {
	var st ServerStats
	err := c.get("/api/v1/stats", &st)
	return st, err
}

// Tenants lists every tenant's quotas and usage (404 against an anonymous
// daemon).
func (c *Client) Tenants() ([]TenantSnapshot, error) {
	var out struct {
		Tenants []TenantSnapshot `json:"tenants"`
	}
	err := c.get("/api/v1/tenants", &out)
	return out.Tenants, err
}

// Usage fetches one tenant's usage: process-lifetime counters plus the
// cumulative restart-surviving ledger.
func (c *Client) Usage(name string) (TenantSnapshot, error) {
	var snap TenantSnapshot
	err := c.get("/api/v1/tenants/"+url.PathEscape(name)+"/usage", &snap)
	return snap, err
}

// Wait polls until the job reaches a terminal state (or ctx expires) and
// returns the final status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case JobDone, JobFailed, JobAborted:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// JobEvents fetches the complete lifecycle event chain for one job.
func (c *Client) JobEvents(id string) ([]svclog.JobEvent, error) {
	var out struct {
		Events []svclog.JobEvent `json:"events"`
	}
	err := c.get("/api/v1/jobs/"+id+"/events", &out)
	return out.Events, err
}

// StreamEvents subscribes to the daemon's SSE event stream and invokes fn
// for every lifecycle event received. lastID resumes after a previously seen
// sequence number (0 means from now on); job filters to one job and tenant
// to one tenant's jobs when non-empty. It returns the last sequence number
// delivered, so a caller can reconnect with it after a dropped connection.
// The stream ends when ctx is canceled or the server closes the connection.
func (c *Client) StreamEvents(ctx context.Context, lastID uint64, job, tenant string, fn func(svclog.JobEvent)) (uint64, error) {
	q := url.Values{}
	if job != "" {
		q.Set("job", job)
	}
	if tenant != "" {
		q.Set("tenant", tenant)
	}
	u := c.url("/api/v1/events")
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := c.newRequest(ctx, "GET", u, nil)
	if err != nil {
		return lastID, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return lastID, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(resp.Body)
		return lastID, apiError(resp, body)
	}

	// Minimal SSE frame parser: frames are separated by blank lines; we
	// care about "id:" and "data:" fields and ignore comment keepalives.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data strings.Builder
	var frameID string
	flush := func() error {
		defer func() { data.Reset(); frameID = "" }()
		if data.Len() == 0 {
			return nil
		}
		var ev svclog.JobEvent
		if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
			return fmt.Errorf("serve: bad SSE event payload: %w", err)
		}
		if id, err := strconv.ParseUint(frameID, 10, 64); err == nil {
			lastID = id
		} else if ev.Seq > 0 {
			lastID = ev.Seq
		}
		fn(ev)
		return nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return lastID, err
			}
		case strings.HasPrefix(line, ":"):
			// keepalive comment
		case strings.HasPrefix(line, "id:"):
			frameID = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimSpace(line[len("data:"):]))
		}
	}
	if err := flush(); err != nil {
		return lastID, err
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return lastID, err
	}
	return lastID, ctx.Err()
}

// StreamProgress copies the job's plain-text progress stream to w until the
// job finishes or ctx is canceled.
func (c *Client) StreamProgress(ctx context.Context, id string, w io.Writer) error {
	req, err := c.newRequest(ctx, "GET", c.url("/api/v1/jobs/"+id+"/progress"), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(resp.Body)
		return apiError(resp, body)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}
