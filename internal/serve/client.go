package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to an aggsimd daemon over its JSON/HTTP API.
type Client struct {
	// Base is the daemon address: "host:port" or a full "http://..." URL.
	Base string
	// HTTP overrides the transport (nil means http.DefaultClient).
	HTTP *http.Client
}

// NewClient returns a client for the daemon at addr.
func NewClient(addr string) *Client { return &Client{Base: addr} }

func (c *Client) url(path string) string {
	base := c.Base
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimRight(base, "/") + path
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes a non-2xx response into an error; 429 becomes *BusyError.
func apiError(resp *http.Response, body []byte) error {
	var eb errorBody
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		sec := eb.RetryAfterSec
		if sec < 1 {
			sec = 1
		}
		return &BusyError{RetryAfter: time.Duration(sec) * time.Second}
	}
	return fmt.Errorf("serve: %s: %s", resp.Status, msg)
}

func (c *Client) get(path string, out any) error {
	resp, err := c.httpClient().Get(c.url(path))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp, body)
	}
	return json.Unmarshal(body, out)
}

// Submit posts a job. A full admission window surfaces as *BusyError with
// the server's retry-after hint.
func (c *Client) Submit(spec JobSpec) (JobStatus, error) {
	var st JobStatus
	buf, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	resp, err := c.httpClient().Post(c.url("/api/v1/jobs"), "application/json", bytes.NewReader(buf))
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return st, apiError(resp, body)
	}
	return st, json.Unmarshal(body, &st)
}

// Status fetches one job's status.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	err := c.get("/api/v1/jobs/"+id, &st)
	return st, err
}

// Jobs lists every job on the daemon.
func (c *Client) Jobs() ([]JobStatus, error) {
	var out struct {
		Jobs []JobStatus `json:"jobs"`
	}
	err := c.get("/api/v1/jobs", &out)
	return out.Jobs, err
}

// Result fetches a finished job's results. The returned raw messages are
// the canonical result JSON, byte-identical to what a direct run encodes.
func (c *Client) Result(id string) (JobStatus, []json.RawMessage, error) {
	var env resultEnvelope
	if err := c.get("/api/v1/jobs/"+id+"/result", &env); err != nil {
		return JobStatus{}, nil, err
	}
	return env.Job, env.Results, nil
}

// Metrics fetches a finished job's metrics registry JSON.
func (c *Client) Metrics(id string) ([]byte, error) {
	return c.raw("/api/v1/jobs/" + id + "/metrics")
}

// Spans fetches a finished job's span recorder in PDS1 binary form.
func (c *Client) Spans(id string) ([]byte, error) {
	return c.raw("/api/v1/jobs/" + id + "/spans")
}

func (c *Client) raw(path string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.url(path))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp, body)
	}
	return body, nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (ServerStats, error) {
	var st ServerStats
	err := c.get("/api/v1/stats", &st)
	return st, err
}

// Wait polls until the job reaches a terminal state (or ctx expires) and
// returns the final status.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case JobDone, JobFailed, JobAborted:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// StreamProgress copies the job's plain-text progress stream to w until the
// job finishes or ctx is canceled.
func (c *Client) StreamProgress(ctx context.Context, id string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, "GET", c.url("/api/v1/jobs/"+id+"/progress"), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(resp.Body)
		return apiError(resp, body)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}
