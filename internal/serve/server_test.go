package serve

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pimdsm/internal/machine"
	"pimdsm/internal/obs/svclog"
	"pimdsm/internal/sim"
)

// fakeRunner synthesizes results instantly (optionally gated), recording
// every simulated config so tests can assert what actually ran.
type fakeRunner struct {
	mu    sync.Mutex
	gate  chan struct{} // nil = ungated; else every batch blocks until closed
	ran   []string      // app names in run order
	calls atomic.Int64
}

func (f *fakeRunner) run(cfgs []machine.Config, onResult func(int, *machine.Result)) ([]*machine.Result, error) {
	f.calls.Add(1)
	if f.gate != nil {
		<-f.gate
	}
	out := make([]*machine.Result, len(cfgs))
	for i, cfg := range cfgs {
		f.mu.Lock()
		f.ran = append(f.ran, cfg.App.Name)
		f.mu.Unlock()
		res := &machine.Result{Arch: cfg.Arch, App: cfg.App.Name, Threads: cfg.Threads}
		res.Breakdown.Exec = sim.Time(1000 + i)
		out[i] = res
		if onResult != nil {
			onResult(i, res)
		}
	}
	return out, nil
}

func spec1(app string) JobSpec {
	return JobSpec{Configs: []ConfigSpec{{Arch: "agg", App: app, Threads: 8, Pressure: 0.75, DRatio: 1}}}
}

func waitJob(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never finished", id)
	}
	return s.Status(j)
}

func TestServerRunsAndCaches(t *testing.T) {
	// The full observability layer is enabled here on purpose: logging and
	// lifecycle tracing are record-only, so the byte-identity assertions
	// below double as the proof that observing a job never changes what the
	// job returns.
	fr := &fakeRunner{}
	var logBuf bytes.Buffer
	events := svclog.NewEventLog(64)
	s, err := New(Options{
		Workers: 2, Run: fr.run,
		Log:    svclog.New(&logBuf, slog.LevelDebug, true),
		Events: events,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	st, err := s.Submit(spec1("fft"))
	if err != nil {
		t.Fatal(err)
	}
	fin := waitJob(t, s, st.ID)
	if fin.State != JobDone || fin.Simulated != 1 || fin.CacheHits != 0 {
		t.Fatalf("first run: %+v", fin)
	}
	st2, _ := s.Submit(spec1("fft"))
	fin2 := waitJob(t, s, st2.ID)
	if fin2.State != JobDone || fin2.CacheHits != 1 || fin2.Simulated != 0 {
		t.Fatalf("resubmission not served from cache: %+v", fin2)
	}
	if got := fr.calls.Load(); got != 1 {
		t.Fatalf("runner called %d times, want 1", got)
	}
	stats := s.Stats()
	if stats.SimulatedRuns != 1 || stats.SimulatedCycles != 1000 {
		t.Fatalf("engine-cycle counters moved on a cache hit: %+v", stats)
	}
	// Byte identity between the two jobs' served results.
	j1, _ := s.Job(st.ID)
	j2, _ := s.Job(st2.ID)
	_, js1, _ := s.Results(j1)
	_, js2, _ := s.Results(j2)
	if string(js1[0]) != string(js2[0]) {
		t.Fatal("cache hit served different bytes than the original run")
	}

	// Both jobs left complete, ordered lifecycle chains: the first one
	// simulated its config, the resubmission resolved it as a cache hit.
	if err := ValidateEventChain(events.Job(st.ID), 1); err != nil {
		t.Fatalf("first job chain: %v\n%+v", err, events.Job(st.ID))
	}
	if err := ValidateEventChain(events.Job(st2.ID), 1); err != nil {
		t.Fatalf("resubmission chain: %v\n%+v", err, events.Job(st2.ID))
	}
	var hit bool
	for _, ev := range events.Job(st2.ID) {
		if ev.Kind == svclog.EvCacheHit {
			hit = true
		}
		if ev.Kind == svclog.EvSimulated {
			t.Fatalf("resubmission chain claims a simulation: %+v", ev)
		}
	}
	if !hit {
		t.Fatal("resubmission chain has no cache_hit event")
	}
	// And the structured log recorded both jobs without leaking raw
	// timestamps (deterministic mode).
	logs := logBuf.String()
	if strings.Count(logs, `"msg":"job_done"`) != 2 {
		t.Fatalf("want 2 job_done log lines:\n%s", logs)
	}
	if strings.Contains(logs, `"time"`) {
		t.Fatalf("deterministic log mode leaked timestamps:\n%s", logs)
	}
}

func TestServerSingleflightAcrossJobs(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, err := New(Options{Workers: 2, Run: fr.run})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	a, _ := s.Submit(spec1("fft"))
	b, _ := s.Submit(spec1("fft"))
	// Wait until both jobs are running: A owns the flight (blocked in the
	// gated runner), B has joined it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.Running == 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(fr.gate)
	fa := waitJob(t, s, a.ID)
	fb := waitJob(t, s, b.ID)
	if fr.calls.Load() != 1 {
		t.Fatalf("identical concurrent submissions simulated %d times, want exactly 1", fr.calls.Load())
	}
	if fa.State != JobDone || fb.State != JobDone {
		t.Fatalf("states: %v %v", fa.State, fb.State)
	}
	if fa.Simulated+fb.Simulated != 1 || fa.Joins+fb.Joins != 1 {
		t.Fatalf("want one simulation and one join: %+v %+v", fa, fb)
	}
	ja, _ := s.Job(a.ID)
	jb, _ := s.Job(b.ID)
	_, ja1, _ := s.Results(ja)
	_, jb1, _ := s.Results(jb)
	if string(ja1[0]) != string(jb1[0]) {
		t.Fatal("joined job served different bytes")
	}
}

func TestServerAdmissionWindow(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, err := New(Options{Workers: 1, QueueLimit: 2, Run: fr.run})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	first, _ := s.Submit(spec1("a")) // taken by the worker, blocked on the gate
	waitRunning(t, s, 1)
	if _, err := s.Submit(spec1("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(spec1("c")); err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(spec1("d")) // window (2) full
	be, ok := err.(*BusyError)
	if !ok {
		t.Fatalf("over-window submit: err = %v, want *BusyError", err)
	}
	if be.RetryAfter < time.Second {
		t.Fatalf("retry-after %v < 1s floor", be.RetryAfter)
	}
	if s.Stats().JobsRejected != 1 {
		t.Fatalf("rejections: %+v", s.Stats())
	}
	close(fr.gate)
	waitJob(t, s, first.ID)
}

func waitRunning(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Running < n {
		if time.Now().After(deadline) {
			t.Fatalf("never reached %d running jobs", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerPriorityOrder(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, err := New(Options{Workers: 1, QueueLimit: 16, Run: fr.run})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	blocker, _ := s.Submit(spec1("blocker"))
	waitRunning(t, s, 1)
	low := spec1("low")
	lowJob, _ := s.Submit(low)
	hi := spec1("high")
	hi.Priority = 10
	hiJob, _ := s.Submit(hi)
	low2 := spec1("low2")
	low2Job, _ := s.Submit(low2)
	close(fr.gate)
	for _, id := range []string{blocker.ID, lowJob.ID, hiJob.ID, low2Job.ID} {
		waitJob(t, s, id)
	}
	fr.mu.Lock()
	order := append([]string(nil), fr.ran...)
	fr.mu.Unlock()
	want := []string{"blocker", "high", "low", "low2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v (priority first, FIFO within)", order, want)
	}
}

func TestServerShutdownDrainsAndAborts(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, err := New(Options{Workers: 1, QueueLimit: 8, Run: fr.run})
	if err != nil {
		t.Fatal(err)
	}
	running, _ := s.Submit(spec1("running"))
	waitRunning(t, s, 1)
	queued, _ := s.Submit(spec1("queued"))

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()

	// The queued job aborts immediately; the running one drains.
	qfin := waitJob(t, s, queued.ID)
	if qfin.State != JobAborted {
		t.Fatalf("queued job state %v, want aborted", qfin.State)
	}
	if _, err := s.Submit(spec1("late")); err != ErrDraining {
		t.Fatalf("submit during drain: %v, want ErrDraining", err)
	}
	close(fr.gate)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	rfin := waitJob(t, s, running.ID)
	if rfin.State != JobDone || rfin.Simulated != 1 {
		t.Fatalf("running job not drained: %+v", rfin)
	}
}

func TestServerPersistsCacheAcrossRestart(t *testing.T) {
	path := t.TempDir() + "/cache.json"
	fr := &fakeRunner{}
	s, err := New(Options{Workers: 1, CachePath: path, Run: fr.run})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := s.Submit(spec1("fft"))
	waitJob(t, s, st.ID)
	j, _ := s.Job(st.ID)
	_, js, _ := s.Results(j)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	fr2 := &fakeRunner{}
	s2, err := New(Options{Workers: 1, CachePath: path, Run: fr2.run})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	if s2.Cache().Len() != 1 {
		t.Fatalf("restored %d entries, want 1", s2.Cache().Len())
	}
	st2, _ := s2.Submit(spec1("fft"))
	fin := waitJob(t, s2, st2.ID)
	if fin.CacheHits != 1 || fin.Simulated != 0 || fr2.calls.Load() != 0 {
		t.Fatalf("restart did not serve from the persisted index: %+v, %d runner calls", fin, fr2.calls.Load())
	}
	j2, _ := s2.Job(st2.ID)
	_, js2, _ := s2.Results(j2)
	if string(js[0]) != string(js2[0]) {
		t.Fatal("persisted result bytes differ from the original run")
	}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(Options{Workers: 1, Run: (&fakeRunner{}).run})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	if _, err := s.Submit(JobSpec{}); err == nil {
		t.Fatal("empty job accepted")
	}
	if _, err := s.Submit(JobSpec{Configs: []ConfigSpec{{App: "fft"}}}); err == nil {
		t.Fatal("config without arch accepted")
	}
}
