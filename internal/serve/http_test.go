package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"pimdsm/internal/obs/svclog"
)

// startAPI boots a server on an ephemeral port and returns a client for it.
func startAPI(t *testing.T, opt Options) (*Server, *Client) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	addr, closeHTTP, err := NewAPI(s, nil).ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		closeHTTP()
		s.Shutdown(context.Background())
	})
	return s, NewClient(addr)
}

func TestHTTPSubmitWaitResult(t *testing.T) {
	fr := &fakeRunner{}
	s, c := startAPI(t, Options{Workers: 1, Run: fr.run})

	spec := spec1("fft")
	spec.Name = "http-roundtrip"
	spec.Metrics = true
	st, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Name != "http-roundtrip" {
		t.Fatalf("submit status: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil || fin.State != JobDone {
		t.Fatalf("wait: %+v, %v", fin, err)
	}

	_, raw, err := c.Result(st.ID)
	if err != nil || len(raw) != 1 {
		t.Fatalf("result: %d raws, %v", len(raw), err)
	}
	// The wire bytes must be the cache's canonical bytes, verbatim.
	j, _ := s.Job(st.ID)
	_, js, _ := s.Results(j)
	if string(raw[0]) != string(js[0]) {
		t.Fatalf("HTTP served different bytes than the cache holds:\n  %s\nvs\n  %s", raw[0], js[0])
	}

	mb, err := c.Metrics(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(mb) {
		t.Fatalf("metrics artifact is not JSON: %.80s", mb)
	}
	if _, err := c.Spans(st.ID); err == nil {
		t.Fatal("spans artifact should 404 when the job did not request spans")
	}

	jobs, err := c.Jobs()
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs: %v, %v", jobs, err)
	}
	stats, err := c.Stats()
	if err != nil || stats.SimulatedRuns != 1 {
		t.Fatalf("stats: %+v, %v", stats, err)
	}
}

func TestHTTPResultConflictWhileRunning(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, c := startAPI(t, Options{Workers: 1, Run: fr.run})
	st, err := c.Submit(spec1("fft"))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	resp, err := http.Get("http://" + c.Base + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result while running: %d, want 409", resp.StatusCode)
	}
	close(fr.gate)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Result(st.ID); err != nil {
		t.Fatalf("result after done: %v", err)
	}
}

func TestHTTPAdmissionRejection(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, c := startAPI(t, Options{Workers: 1, QueueLimit: 1, Run: fr.run})
	if _, err := c.Submit(spec1("a")); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	if _, err := c.Submit(spec1("b")); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(spec1("c"))
	be, ok := err.(*BusyError)
	if !ok {
		t.Fatalf("over-window submit via HTTP: %v, want *BusyError", err)
	}
	if be.RetryAfter < time.Second {
		t.Fatalf("retry-after hint %v lost on the wire", be.RetryAfter)
	}
	// The raw response carries the Retry-After header too.
	resp, err := http.Post("http://"+c.Base+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"configs":[{"arch":"agg","app":"d","threads":8}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	close(fr.gate)
}

func TestHTTPBadRequests(t *testing.T) {
	_, c := startAPI(t, Options{Workers: 1, Run: (&fakeRunner{}).run})
	post := func(body string) int {
		resp, err := http.Post("http://"+c.Base+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d", code)
	}
	if code := post(`{"bogus_field":1,"configs":[]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", code)
	}
	if code := post(`{"configs":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty config list: %d", code)
	}
	if _, err := c.Status("j-999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("missing job: %v", err)
	}
}

func TestHTTPHealthzAndProgress(t *testing.T) {
	fr := &fakeRunner{}
	_, c := startAPI(t, Options{Workers: 1, Run: fr.run})
	resp, err := http.Get("http://" + c.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	st, err := c.Submit(spec1("fft"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.StreamProgress(ctx, st.ID, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1/1 done") {
		t.Fatalf("progress stream never reported completion: %q", buf.String())
	}
}

// TestHTTP429HeaderBodyAgree: a rejected submission's Retry-After header and
// retry_after_sec body field must carry the same value — clients reading
// either get the same hint — and the body carries the request id.
func TestHTTP429HeaderBodyAgree(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, c := startAPI(t, Options{Workers: 1, QueueLimit: 1, Run: fr.run})
	defer close(fr.gate)
	if _, err := c.Submit(spec1("a")); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	if _, err := c.Submit(spec1("b")); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post("http://"+c.Base+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"configs":[{"arch":"agg","app":"c","threads":8}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	header, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || header < 1 {
		t.Fatalf("Retry-After header %q not a positive integer", resp.Header.Get("Retry-After"))
	}
	var eb struct {
		Error         string `json:"error"`
		RequestID     string `json:"request_id"`
		RetryAfterSec int    `json:"retry_after_sec"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("429 body is not JSON: %v: %s", err, body)
	}
	if eb.RetryAfterSec != header {
		t.Fatalf("header Retry-After %d != body retry_after_sec %d", header, eb.RetryAfterSec)
	}
	if eb.RequestID == "" || resp.Header.Get("X-Request-ID") != eb.RequestID {
		t.Fatalf("request id not threaded through: header %q body %q",
			resp.Header.Get("X-Request-ID"), eb.RequestID)
	}
	if eb.Error == "" {
		t.Fatalf("429 body has no error message: %s", body)
	}
}

// TestHTTPReadyz: /healthz is pure liveness (always 200 while serving);
// /readyz degrades to 503 with a JSON reason when the admission window is
// saturated or the server is draining.
func TestHTTPReadyz(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, c := startAPI(t, Options{Workers: 1, QueueLimit: 1, Run: fr.run})

	getReady := func() (int, string) {
		resp, err := http.Get("http://" + c.Base + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var rb struct {
			Ready  bool   `json:"ready"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(body, &rb); err != nil {
			t.Fatalf("readyz body not JSON: %v: %s", err, body)
		}
		return resp.StatusCode, rb.Reason
	}

	if code, reason := getReady(); code != http.StatusOK || reason != "" {
		t.Fatalf("idle readyz: %d %q, want 200", code, reason)
	}

	// Saturate: one running (gated), one queued = full window.
	if _, err := c.Submit(spec1("a")); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	if _, err := c.Submit(spec1("b")); err != nil {
		t.Fatal(err)
	}
	if code, reason := getReady(); code != http.StatusServiceUnavailable || reason == "" {
		t.Fatalf("saturated readyz: %d %q, want 503 with a reason", code, reason)
	}
	// Liveness is unaffected by saturation.
	resp, err := http.Get("http://" + c.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while saturated: %d", resp.StatusCode)
	}

	// Draining: readyz stays 503 even after the queue clears.
	close(fr.gate)
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, reason := getReady()
		if code == http.StatusServiceUnavailable && reason == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("readyz never reported draining: %d %q", code, reason)
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestHTTPSSEReplayAfterReconnect: an SSE consumer that disconnects and
// reconnects with Last-Event-ID receives exactly the events it missed — the
// sequence stays dense across the reconnect.
func TestHTTPSSEReplayAfterReconnect(t *testing.T) {
	fr := &fakeRunner{}
	_, c := startAPI(t, Options{
		Workers: 1, Run: fr.run,
		Events: svclog.NewEventLog(256),
	})

	// First connection: watch job A to completion, then drop the stream.
	a, err := c.Submit(spec1("a"))
	if err != nil {
		t.Fatal(err)
	}
	var first []svclog.JobEvent
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	last, err := c.StreamEvents(ctx, 0, "", "", func(ev svclog.JobEvent) {
		first = append(first, ev)
		if ev.Job == a.ID && ev.Kind == svclog.EvDone {
			cancel()
		}
	})
	cancel()
	if err != nil && err != context.Canceled {
		t.Fatal(err)
	}
	if len(first) == 0 || last == 0 {
		t.Fatalf("first connection saw %d events, cursor %d", len(first), last)
	}
	if err := ValidateEventChain(jobChain(first, a.ID), 1); err != nil {
		t.Fatalf("job A chain over SSE: %v", err)
	}

	// While disconnected, job B runs to completion.
	b, err := c.Submit(spec1("b"))
	if err != nil {
		t.Fatal(err)
	}
	ctxW, cancelW := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelW()
	if st, err := c.Wait(ctxW, b.ID, 5*time.Millisecond); err != nil || st.State != JobDone {
		t.Fatalf("job B: %+v, %v", st, err)
	}

	// Reconnect with the cursor: the daemon replays everything missed.
	var second []svclog.JobEvent
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	_, err = c.StreamEvents(ctx2, last, "", "", func(ev svclog.JobEvent) {
		second = append(second, ev)
		if ev.Job == b.ID && ev.Kind == svclog.EvDone {
			cancel2()
		}
	})
	cancel2()
	if err != nil && err != context.Canceled {
		t.Fatal(err)
	}
	if len(second) == 0 {
		t.Fatal("reconnect replayed nothing")
	}
	if second[0].Seq != last+1 {
		t.Fatalf("reconnect replay starts at seq %d, want %d", second[0].Seq, last+1)
	}
	for i := 1; i < len(second); i++ {
		if second[i].Seq != second[i-1].Seq+1 {
			t.Fatalf("sequence gap across reconnect: %d -> %d", second[i-1].Seq, second[i].Seq)
		}
	}
	if err := ValidateEventChain(jobChain(second, b.ID), 1); err != nil {
		t.Fatalf("job B chain from replay: %v", err)
	}
}

// TestHTTPSubmitRetryHonorsPushback: SubmitRetry (the `pimdsm submit -wait`
// path) absorbs 429s by sleeping the server's hint and resubmitting, and
// gets in once the window clears.
func TestHTTPSubmitRetryHonorsPushback(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, c := startAPI(t, Options{Workers: 1, QueueLimit: 1, Run: fr.run})
	if _, err := c.Submit(spec1("a")); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	if _, err := c.Submit(spec1("b")); err != nil {
		t.Fatal(err)
	}
	// Window is full: a plain submit must be rejected right now.
	if _, err := c.Submit(spec1("c")); err == nil {
		t.Fatal("over-window submit accepted")
	}
	// Free the worker shortly; the retrying submit should then get in.
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(fr.gate)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, retries, err := c.SubmitRetry(ctx, spec1("c"), 100, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("retrying submit never admitted: %v (after %d retries)", err, retries)
	}
	if retries == 0 {
		t.Fatal("retrying submit saw no pushback despite a full window")
	}
	if fin, err := c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil || fin.State != JobDone {
		t.Fatalf("retried job: %+v, %v", fin, err)
	}
}

func jobChain(events []svclog.JobEvent, id string) []svclog.JobEvent {
	var out []svclog.JobEvent
	for _, ev := range events {
		if ev.Job == id {
			out = append(out, ev)
		}
	}
	return out
}

// TestHTTPJobEventsEndpoint: the per-job endpoint serves the complete chain
// as JSON and as a Chrome trace_event document.
func TestHTTPJobEventsEndpoint(t *testing.T) {
	fr := &fakeRunner{}
	_, c := startAPI(t, Options{Workers: 1, Run: fr.run, Events: svclog.NewEventLog(64)})
	st, err := c.Submit(spec1("fft"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	events, err := c.JobEvents(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateEventChain(events, 1); err != nil {
		t.Fatalf("chain: %v\n%+v", err, events)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/api/v1/jobs/%s/events?format=chrome", c.Base, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("chrome export: %v, %d events: %.120s", err, len(doc.TraceEvents), body)
	}
}

// TestHTTPMetricsPromParses: the exposition endpoint output passes the
// strict parser, including after traffic on routes with {id} patterns.
func TestHTTPMetricsPromParses(t *testing.T) {
	fr := &fakeRunner{}
	_, c := startAPI(t, Options{Workers: 1, Run: fr.run, Events: svclog.NewEventLog(64)})
	st, err := c.Submit(spec1("fft"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Wait(ctx, st.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	body, err := c.raw("/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := svclog.ParsePromText(string(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	for _, want := range []string{
		"aggsimd_jobs_submitted_total",
		"aggsimd_simulated_runs_total",
		"aggsimd_queue_depth",
		"aggsimd_http_requests_total",
		"aggsimd_http_request_duration_us",
	} {
		if fams[want] == nil {
			t.Fatalf("family %s missing from exposition", want)
		}
	}
	if fams["aggsimd_jobs_submitted_total"].Samples[0].Value < 1 {
		t.Fatalf("submitted counter did not move: %+v", fams["aggsimd_jobs_submitted_total"])
	}
}
