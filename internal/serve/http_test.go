package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startAPI boots a server on an ephemeral port and returns a client for it.
func startAPI(t *testing.T, opt Options) (*Server, *Client) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	addr, closeHTTP, err := NewAPI(s, nil).ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		closeHTTP()
		s.Shutdown(context.Background())
	})
	return s, NewClient(addr)
}

func TestHTTPSubmitWaitResult(t *testing.T) {
	fr := &fakeRunner{}
	s, c := startAPI(t, Options{Workers: 1, Run: fr.run})

	spec := spec1("fft")
	spec.Name = "http-roundtrip"
	spec.Metrics = true
	st, err := c.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Name != "http-roundtrip" {
		t.Fatalf("submit status: %+v", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil || fin.State != JobDone {
		t.Fatalf("wait: %+v, %v", fin, err)
	}

	_, raw, err := c.Result(st.ID)
	if err != nil || len(raw) != 1 {
		t.Fatalf("result: %d raws, %v", len(raw), err)
	}
	// The wire bytes must be the cache's canonical bytes, verbatim.
	j, _ := s.Job(st.ID)
	_, js, _ := s.Results(j)
	if string(raw[0]) != string(js[0]) {
		t.Fatalf("HTTP served different bytes than the cache holds:\n  %s\nvs\n  %s", raw[0], js[0])
	}

	mb, err := c.Metrics(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(mb) {
		t.Fatalf("metrics artifact is not JSON: %.80s", mb)
	}
	if _, err := c.Spans(st.ID); err == nil {
		t.Fatal("spans artifact should 404 when the job did not request spans")
	}

	jobs, err := c.Jobs()
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs: %v, %v", jobs, err)
	}
	stats, err := c.Stats()
	if err != nil || stats.SimulatedRuns != 1 {
		t.Fatalf("stats: %+v, %v", stats, err)
	}
}

func TestHTTPResultConflictWhileRunning(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, c := startAPI(t, Options{Workers: 1, Run: fr.run})
	st, err := c.Submit(spec1("fft"))
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	resp, err := http.Get("http://" + c.Base + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result while running: %d, want 409", resp.StatusCode)
	}
	close(fr.gate)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Result(st.ID); err != nil {
		t.Fatalf("result after done: %v", err)
	}
}

func TestHTTPAdmissionRejection(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, c := startAPI(t, Options{Workers: 1, QueueLimit: 1, Run: fr.run})
	if _, err := c.Submit(spec1("a")); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, 1)
	if _, err := c.Submit(spec1("b")); err != nil {
		t.Fatal(err)
	}
	_, err := c.Submit(spec1("c"))
	be, ok := err.(*BusyError)
	if !ok {
		t.Fatalf("over-window submit via HTTP: %v, want *BusyError", err)
	}
	if be.RetryAfter < time.Second {
		t.Fatalf("retry-after hint %v lost on the wire", be.RetryAfter)
	}
	// The raw response carries the Retry-After header too.
	resp, err := http.Post("http://"+c.Base+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"configs":[{"arch":"agg","app":"d","threads":8}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	close(fr.gate)
}

func TestHTTPBadRequests(t *testing.T) {
	_, c := startAPI(t, Options{Workers: 1, Run: (&fakeRunner{}).run})
	post := func(body string) int {
		resp, err := http.Post("http://"+c.Base+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d", code)
	}
	if code := post(`{"bogus_field":1,"configs":[]}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", code)
	}
	if code := post(`{"configs":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty config list: %d", code)
	}
	if _, err := c.Status("j-999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("missing job: %v", err)
	}
}

func TestHTTPHealthzAndProgress(t *testing.T) {
	fr := &fakeRunner{}
	_, c := startAPI(t, Options{Workers: 1, Run: fr.run})
	resp, err := http.Get("http://" + c.Base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	st, err := c.Submit(spec1("fft"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.StreamProgress(ctx, st.ID, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1/1 done") {
		t.Fatalf("progress stream never reported completion: %q", buf.String())
	}
}
