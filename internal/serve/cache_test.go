package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pimdsm/internal/machine"
	"pimdsm/internal/sim"
)

func fakeResult(exec int64) (*machine.Result, []byte) {
	res := &machine.Result{Arch: machine.AGG, App: "fake"}
	res.Breakdown.Exec = sim.Time(exec)
	js, _ := canonicalResultJSON(res)
	return res, js
}

func TestCacheLRUBoundUnderRandomizedStorm(t *testing.T) {
	const bound = 32
	c := NewCache(bound)
	rng := rand.New(rand.NewSource(1))
	live := map[uint64]bool{}
	for i := 0; i < 4096; i++ {
		key := uint64(rng.Intn(256)) // enough reuse to exercise hits + evictions
		_, _, hit, _, owner := c.Acquire(key)
		if hit {
			live[key] = true
			continue
		}
		if !owner {
			t.Fatalf("no concurrency here, yet key %d is in flight", key)
		}
		res, js := fakeResult(int64(key))
		c.Fulfill(key, 0, ConfigSpec{Arch: "agg", App: "fake"}, res, js)
		if n := c.Len(); n > bound {
			t.Fatalf("after %d inserts cache holds %d > bound %d", i+1, n, bound)
		}
	}
	st := c.Stats()
	if st.Entries != bound {
		t.Fatalf("storm should leave a full cache: %d of %d", st.Entries, bound)
	}
	if st.Evictions == 0 || st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("storm exercised nothing: %+v", st)
	}
	if st.InFlight != 0 {
		t.Fatalf("%d flights leaked", st.InFlight)
	}
}

func TestCacheEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewCache(3)
	put := func(k uint64) {
		if _, _, hit, _, owner := c.Acquire(k); hit || !owner {
			t.Fatalf("Acquire(%d): hit=%v owner=%v", k, hit, owner)
		}
		res, js := fakeResult(int64(k))
		c.Fulfill(k, 0, ConfigSpec{}, res, js)
	}
	put(1)
	put(2)
	put(3)
	// Touch 1 so 2 becomes the LRU victim.
	if _, _, hit, _, _ := c.Acquire(1); !hit {
		t.Fatal("1 should be cached")
	}
	put(4) // evicts 2
	if _, _, hit, _, _ := c.Acquire(2); hit {
		t.Fatal("2 should have been evicted (LRU)")
	}
	c.Abort(2, errors.New("cleanup the flight the check above opened"))
	for _, k := range []uint64{1, 3, 4} {
		if _, _, hit, _, _ := c.Acquire(k); !hit {
			t.Fatalf("%d should have survived", k)
		}
	}
	if got := c.keysLRU(); len(got) != 3 {
		t.Fatalf("keysLRU = %v", got)
	}
}

func TestCacheSingleflightJoin(t *testing.T) {
	c := NewCache(8)
	_, _, hit, fl1, owner1 := c.Acquire(42)
	if hit || !owner1 {
		t.Fatalf("first acquire: hit=%v owner=%v", hit, owner1)
	}
	_, _, hit2, fl2, owner2 := c.Acquire(42)
	if hit2 || owner2 {
		t.Fatalf("second acquire should join: hit=%v owner=%v", hit2, owner2)
	}
	if fl1 != fl2 {
		t.Fatal("joiner got a different flight than the owner")
	}
	select {
	case <-fl2.done:
		t.Fatal("flight resolved before Fulfill")
	default:
	}
	res, js := fakeResult(1)
	c.Fulfill(42, 0, ConfigSpec{}, res, js)
	<-fl2.done
	if fl2.err != nil || fl2.res != res || string(fl2.js) != string(js) {
		t.Fatalf("flight carries wrong result: %+v", fl2)
	}
	if st := c.Stats(); st.Joins != 1 || st.InFlight != 0 {
		t.Fatalf("stats after join: %+v", st)
	}
	// And the result is now a plain hit.
	if got, _, hitNow, _, _ := c.Acquire(42); !hitNow || got != res {
		t.Fatal("fulfilled result not served as a hit")
	}
}

func TestCacheAbortPropagatesError(t *testing.T) {
	c := NewCache(8)
	_, _, _, _, owner := c.Acquire(7)
	if !owner {
		t.Fatal("expected ownership")
	}
	_, _, _, fl, _ := c.Acquire(7)
	boom := errors.New("boom")
	c.Abort(7, boom)
	<-fl.done
	if fl.err != boom {
		t.Fatalf("flight err = %v", fl.err)
	}
	// Nothing cached: the next acquire owns a fresh attempt.
	if _, _, hit, _, owner := c.Acquire(7); hit || !owner {
		t.Fatalf("after abort: hit=%v owner=%v", hit, owner)
	}
}

func TestCacheSnapshotRoundTrip(t *testing.T) {
	c := NewCache(8)
	specs := []ConfigSpec{
		{Arch: "agg", App: "fft", Scale: 1, Threads: 8, Pressure: 0.75, DRatio: 1},
		{Arch: "numa", App: "ocean", Scale: 0.5, Threads: 4, Pressure: 0.25},
	}
	for i, sp := range specs {
		k := sp.Key(0)
		c.Acquire(k)
		res := &machine.Result{Arch: machine.Arch(sp.Arch), App: sp.App, Threads: sp.Threads}
		js, _ := canonicalResultJSON(res)
		_ = i
		c.Fulfill(k, 0, sp, res, js)
	}
	idx := c.Snapshot()
	if len(idx.Entries) != 2 || idx.Version != KeyVersion {
		t.Fatalf("snapshot: %+v", idx)
	}
	// A JSON round trip of the index preserves the result bytes exactly.
	blob, err := json.Marshal(idx)
	if err != nil {
		t.Fatal(err)
	}
	var back index
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	fresh := NewCache(8)
	if n := fresh.LoadIndex(&back); n != 2 {
		t.Fatalf("restored %d of 2", n)
	}
	for _, sp := range specs {
		k := sp.Key(0)
		_, js, hit, _, _ := fresh.Acquire(k)
		if !hit {
			t.Fatalf("%s/%s lost across round trip", sp.Arch, sp.App)
		}
		want := mustFindEntry(t, idx, k)
		if string(js) != string(want) {
			t.Fatalf("result bytes changed across persistence:\n  %s\nvs\n  %s", js, want)
		}
	}
}

func mustFindEntry(t *testing.T, idx *index, key uint64) []byte {
	t.Helper()
	for _, e := range idx.Entries {
		if e.Spec.Key(e.Seed) == key {
			return e.Result
		}
	}
	t.Fatalf("key %#x not in snapshot", key)
	return nil
}

// TestLoadIndexVerifiesKeys: a tampered or version-skewed index entry is
// dropped, never served under a wrong key.
func TestLoadIndexVerifiesKeys(t *testing.T) {
	sp := ConfigSpec{Arch: "agg", App: "fft", Scale: 1, Threads: 8, Pressure: 0.75, DRatio: 1}
	res := &machine.Result{App: "fft"}
	js, _ := canonicalResultJSON(res)
	good := indexEntry{Key: keyHex(sp.Key(0)), Spec: sp, Result: js}
	tampered := good
	tampered.Spec.Threads = 16 // result no longer matches the claimed key
	badKey := good
	badKey.Key = "deadbeefdeadbeef"
	idx := &index{Version: KeyVersion, Entries: []indexEntry{good, tampered, badKey}}
	c := NewCache(8)
	if n := c.LoadIndex(idx); n != 1 {
		t.Fatalf("restored %d entries, want only the verified one", n)
	}
	if _, _, hit, _, _ := c.Acquire(sp.Key(0)); !hit {
		t.Fatal("verified entry missing")
	}
	stale := &index{Version: KeyVersion + 1, Entries: []indexEntry{good}}
	if n := NewCache(8).LoadIndex(stale); n != 0 {
		t.Fatalf("version-skewed index restored %d entries", n)
	}
}

func keyHex(k uint64) string { return fmt.Sprintf("%016x", k) }
