package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestBackoffWindow(t *testing.T) {
	cases := []struct {
		hint time.Duration
		n    int
		cap  time.Duration
		want time.Duration
	}{
		{time.Second, 0, 30 * time.Second, time.Second},
		{time.Second, 1, 30 * time.Second, 2 * time.Second},
		{time.Second, 3, 30 * time.Second, 8 * time.Second},
		{time.Second, 5, 30 * time.Second, 30 * time.Second}, // 32s capped
		{2 * time.Second, 2, 30 * time.Second, 8 * time.Second},
		{0, 0, 30 * time.Second, time.Second},                // hint floor
		{5 * time.Second, 0, 2 * time.Second, 2 * time.Second}, // hint above cap
		{time.Second, 1000, 30 * time.Second, 30 * time.Second}, // shift saturates
	}
	for _, tc := range cases {
		if got := backoffWindow(tc.hint, tc.n, tc.cap); got != tc.want {
			t.Errorf("backoffWindow(%v, %d, %v) = %v, want %v", tc.hint, tc.n, tc.cap, got, tc.want)
		}
	}
}

// busyServer always answers 429 with a 1s retry-after hint and counts the
// attempts.
func busyServer(t *testing.T) (*httptest.Server, *int) {
	t.Helper()
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"busy","retry_after_sec":1}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

// TestSubmitRetryBackoffCapAndDoubling pins the sleep sequence with the jitter
// draw forced to its upper bound: each retry sleeps the full window, so the
// recorded sleeps are exactly the doubling-then-capped schedule.
func TestSubmitRetryBackoffCapAndDoubling(t *testing.T) {
	srv, hits := busyServer(t)
	var slept []time.Duration
	c := NewClient(srv.URL)
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	c.rnd = func() float64 { return 1.0 }

	_, retries, err := c.SubmitRetry(context.Background(),
		JobSpec{Configs: []ConfigSpec{{Arch: "numa", App: "fft", Threads: 1}}},
		5, 4*time.Second)
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BusyError after retries exhausted", err)
	}
	if retries != 5 || *hits != 6 {
		t.Fatalf("retries = %d, hits = %d, want 5 and 6", retries, *hits)
	}
	want := []time.Duration{
		1 * time.Second, // 1s hint, retry 0
		2 * time.Second,
		4 * time.Second, // cap reached
		4 * time.Second,
		4 * time.Second,
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full schedule %v)", i, slept[i], want[i], slept)
		}
	}
}

// TestSubmitRetryBackoffJitterBounds checks the full-jitter draw scales the
// window: every sleep is rnd()·window, strictly inside [0, window].
func TestSubmitRetryBackoffJitterBounds(t *testing.T) {
	srv, _ := busyServer(t)
	var slept []time.Duration
	c := NewClient(srv.URL)
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	c.rnd = func() float64 { return 0.5 }

	_, retries, _ := c.SubmitRetry(context.Background(),
		JobSpec{Configs: []ConfigSpec{{Arch: "numa", App: "fft", Threads: 1}}},
		3, 30*time.Second)
	if retries != 3 {
		t.Fatalf("retries = %d, want 3", retries)
	}
	want := []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want half the window %v", i, slept[i], want[i])
		}
	}
	// And with a real [0,1) draw the sleep never exceeds the window.
	slept = nil
	c.rnd = nil
	c.SubmitRetry(context.Background(),
		JobSpec{Configs: []ConfigSpec{{Arch: "numa", App: "fft", Threads: 1}}},
		4, 8*time.Second)
	windows := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second}
	if len(slept) != len(windows) {
		t.Fatalf("%d sleeps recorded, want %d", len(slept), len(windows))
	}
	for i, d := range slept {
		if d < 0 || d >= windows[i] {
			t.Fatalf("sleep %d = %v outside jitter window [0, %v)", i, d, windows[i])
		}
	}
}

// TestSubmitRetryBackoffContextCancel: cancellation during the sleep stops
// the retry loop with the context's error.
func TestSubmitRetryBackoffContextCancel(t *testing.T) {
	srv, hits := busyServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	c := NewClient(srv.URL)
	c.sleep = func(time.Duration) { cancel() }
	c.rnd = func() float64 { return 1.0 }

	_, retries, err := c.SubmitRetry(ctx,
		JobSpec{Configs: []ConfigSpec{{Arch: "numa", App: "fft", Threads: 1}}},
		10, time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if retries != 1 || *hits != 1 {
		t.Fatalf("retries = %d, hits = %d, want 1 and 1", retries, *hits)
	}
}
