package numa

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

func testMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(DefaultConfig(4, 64*1024, 1024, 4096))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFirstTouchPlacesPageLocally(t *testing.T) {
	m := testMachine(t)
	_, class := m.Access(0, 2, 0x10000, false)
	if class != proto.LatMem {
		t.Fatalf("first touch class = %v, want Memory (local first-touch page)", class)
	}
	if h, _ := m.homes.Get(m.pageOf(0x10000)); h != 2 {
		t.Fatal("page not homed at first toucher")
	}
}

func TestRemoteReadIsTwoHop(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x1000, false) // homed at 0
	_, class := m.Access(t1, 1, 0x1000, false)
	if class != proto.Lat2Hop {
		t.Fatalf("remote clean read class = %v, want 2Hop", class)
	}
	// NUMA cannot cache remote lines in local memory: after the SRAM caches
	// lose the line, the next access is remote again (the paper's key
	// NUMA weakness).
	m.caches[1].Flush(nil)
	_, class = m.Access(t1+10000, 1, 0x1000, false)
	if class != proto.Lat2Hop {
		t.Fatalf("post-flush remote read class = %v, want 2Hop again", class)
	}
}

func TestRemoteDirtyReadIsThreeHop(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x2000, true)  // P0 homes and owns
	t2, _ := m.Access(t1, 1, 0x2080, true) // P1 dirties a line homed at 0
	if h, ok := m.homes.Get(m.pageOf(0x2080)); !ok || h != 0 {
		t.Fatal("test setup: page not homed at 0")
	}
	_, class := m.Access(t2, 2, 0x2080, false) // P2 reads P1's dirty line
	if class != proto.Lat3Hop {
		t.Fatalf("remote dirty read class = %v, want 3Hop", class)
	}
	// Owner was downgraded; its copy survives as shared.
	if hit, _, up := m.caches[1].Lookup(0x2080, true); hit || !up {
		t.Fatalf("owner not downgraded: hit=%v upgrade=%v", hit, up)
	}
}

func TestHomeOwnedDirtyReadIsTwoHop(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x3000, true)
	_, class := m.Access(t1, 1, 0x3000, false)
	if class != proto.Lat2Hop {
		t.Fatalf("read of home-owned dirty line = %v, want 2Hop", class)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x4000, false)
	t2, _ := m.Access(t1, 1, 0x4000, false)
	t3, _ := m.Access(t2, 2, 0x4000, false)
	before := m.Stats().Invalidations
	_, _ = m.Access(t3, 1, 0x4000, true) // upgrade; invalidates 0 and 2
	if got := m.Stats().Invalidations - before; got != 2 {
		t.Fatalf("invalidations = %d, want 2", got)
	}
	if m.Stats().Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", m.Stats().Upgrades)
	}
	for _, q := range []int{0, 2} {
		if m.caches[q].Holds(0x4000) {
			t.Fatalf("sharer %d still holds the line", q)
		}
	}
}

func TestLocalWriteAfterRemoteSharing(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x5000, false)  // home read
	t2, _ := m.Access(t1, 3, 0x5000, false) // remote sharer
	done, class := m.Access(t2, 0, 0x5000, true)
	if class != proto.LatMem {
		t.Fatalf("home write class = %v, want Memory", class)
	}
	if done <= t2 {
		t.Fatal("no time elapsed")
	}
	if m.caches[3].Holds(0x5000) {
		t.Fatal("remote sharer survived home write")
	}
}

func TestDirtyL2EvictionWritesBackRemote(t *testing.T) {
	// Tiny caches force evictions quickly.
	cfg := DefaultConfig(2, 64*1024, 128, 256)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Home all pages at node 0, then let node 1 dirty lines mapping to the
	// same (single) L2 set until it evicts.
	now, _ := m.Access(0, 0, 0x0, false)
	wb0 := m.Stats().WriteBacks
	for i := uint64(0); i < 4; i++ {
		now, _ = m.Access(now, 1, i*128, true)
	}
	if m.Stats().WriteBacks <= wb0 {
		t.Fatalf("no write-backs after dirty evictions (got %d)", m.Stats().WriteBacks)
	}
}

func TestOnChipLatencyDifference(t *testing.T) {
	// One node, no sharing: repeated local misses to distinct lines.
	cfg := DefaultConfig(1, 1<<20, 128, 256) // tiny SRAM caches
	cfg.OnChipBytes = 4 * 128 * 4            // 16 lines on chip
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Touch a line, flush SRAM, re-touch: should be on-chip (37 cycles).
	t1, _ := m.Access(0, 0, 0x0, false)
	m.caches[0].Flush(nil)
	t2, class := m.Access(t1, 0, 0x0, false)
	if class != proto.LatMem {
		t.Fatalf("class = %v", class)
	}
	if lat := t2 - t1; lat != 37 {
		t.Fatalf("hot local line latency = %d, want 37 (on-chip)", lat)
	}
}

// Property: random traffic keeps completion times monotonic and never
// panics; every load that hits a dirty remote line is 2 or 3 hops.
func TestNUMARandomProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		m, err := New(DefaultConfig(4, 64*1024, 512, 1024))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 5))
		clocks := make([]sim.Time, 4)
		for i := 0; i < 60+int(steps); i++ {
			p := rng.IntN(4)
			addr := uint64(rng.IntN(64)) * 128
			write := rng.IntN(3) == 0
			done, _ := m.Access(clocks[p], p, addr, write)
			if done < clocks[p] {
				return false
			}
			for q := range clocks {
				if clocks[q] < done {
					clocks[q] = done
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
