// Package numa implements the CC-NUMA baseline of the paper's evaluation
// (§3): each node has the same PIM processor chip as AGG but with the
// directory controller on chip, plain (untagged) local memory holding the
// pages placed there by first touch, and only the SRAM caches (L1/L2) for
// remote data. At the home node the directory access is overlapped with the
// memory access, so a locally-satisfied transaction pays no directory
// latency. The hardware protocol engine runs at 70% of AGG's software
// handler costs.
package numa

import (
	"fmt"

	"pimdsm/internal/cache"
	"pimdsm/internal/core"
	"pimdsm/internal/hashmap"
	"pimdsm/internal/mesh"
	"pimdsm/internal/obs"
	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
	"pimdsm/internal/stats"
)

// DirState is the home directory state of a memory line.
type dirState uint8

const (
	dirHome dirState = iota // no cached copies recorded
	dirShared
	dirDirty
)

type dirEntry struct {
	state   dirState
	owner   int32 // when dirDirty
	sharers proto.PtrVec
}

// Config describes a CC-NUMA machine.
type Config struct {
	Nodes int

	LineBytes uint64
	PageBytes uint64

	// MemBytes is each node's local DRAM; OnChipBytes of it is on chip and
	// is managed as a hardware cache of the node's own pages (the [18]
	// scheme), determining the 37- vs 57-cycle local latency.
	MemBytes    uint64
	OnChipBytes uint64

	Caches proto.CacheGeom
	Timing proto.Timing
	Costs  proto.HandlerCosts
	Mesh   mesh.Config
}

// DefaultConfig returns the Table 1 NUMA configuration: double-width links
// (same bisection bandwidth as a 1/1 AGG with twice the nodes) and hardware
// protocol costs.
func DefaultConfig(nodes int, memBytes uint64, l1, l2 uint64) Config {
	mc := mesh.DefaultConfig(0, 0)
	mc.BytesPerCycle *= 2
	return Config{
		Nodes:       nodes,
		LineBytes:   128,
		PageBytes:   4096,
		MemBytes:    memBytes,
		OnChipBytes: memBytes / 2,
		Caches:      proto.DefaultCacheGeom(l1, l2),
		Timing:      proto.DefaultTiming(128),
		Costs:       proto.AGGCosts().Scale(proto.HardwareScale),
		Mesh:        mc,
	}
}

// Machine is the CC-NUMA engine.
type Machine struct {
	cfg Config
	net *mesh.Mesh

	caches []*proto.CacheSet
	onchip []*cache.SetAssoc // presence tracker: which local lines are on chip
	hproc  []sim.Resource    // on-chip directory/protocol engine
	bank   []sim.Resource

	// dir is the open-addressed home directory (line -> entry); entries come
	// from a slab pool, so directory growth does not churn the allocator.
	dir     hashmap.Map[*dirEntry]
	dirPool hashmap.Pool[dirEntry]
	homes   hashmap.Map[int] // page -> home node (first touch)

	allNodes []int
	st       stats.Machine
	trace    *obs.Trace
	spans    *obs.Spans
	prof     *obs.Profile

	audit       bool
	auditViol   uint64
	auditSample []string
}

// New builds a NUMA machine.
func New(cfg Config) (*Machine, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("numa: need at least one node")
	}
	mc := cfg.Mesh
	if mc.Width == 0 || mc.Height == 0 {
		mc.Width = 8
		if cfg.Nodes < 8 {
			mc.Width = cfg.Nodes
		}
		mc.Height = (cfg.Nodes + mc.Width - 1) / mc.Width
	}
	net, err := mesh.New(mc)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		net:   net,
		trace: obs.Nop(),
		spans: obs.NopSpans(),
		prof:  obs.NopProfile(),
	}
	m.caches = make([]*proto.CacheSet, cfg.Nodes)
	m.onchip = make([]*cache.SetAssoc, cfg.Nodes)
	m.hproc = make([]sim.Resource, cfg.Nodes)
	m.bank = make([]sim.Resource, cfg.Nodes)
	for i := range m.caches {
		cs, err := proto.NewCacheSet(cfg.Caches, cfg.LineBytes)
		if err != nil {
			return nil, err
		}
		m.caches[i] = cs
		oc, err := cache.New(cfg.OnChipBytes, cfg.LineBytes, 4)
		if err != nil {
			return nil, err
		}
		m.onchip[i] = oc
	}
	m.allNodes = make([]int, cfg.Nodes)
	for i := range m.allNodes {
		m.allNodes[i] = i
	}
	return m, nil
}

// LineBytes returns the coherence unit size.
func (m *Machine) LineBytes() uint64 { return m.cfg.LineBytes }

// Stats returns the machine's counters.
func (m *Machine) Stats() *stats.Machine { return &m.st }

// Mesh returns the interconnect.
func (m *Machine) Mesh() *mesh.Mesh { return m.net }

// SetTrace routes protocol trace events to t; nil disables.
func (m *Machine) SetTrace(t *obs.Trace) {
	if t == nil {
		t = obs.Nop()
	}
	m.trace = t
	m.net.SetTrace(t)
}

// SetSpans routes transaction-span phase marks to s (nil disables), on the
// machine and its mesh.
func (m *Machine) SetSpans(s *obs.Spans) {
	if s == nil {
		s = obs.NopSpans()
	}
	m.spans = s
	m.net.SetSpans(s)
}

// SetProfile routes handler-class cycle attribution to p (nil disables), on
// the machine and its mesh. The home engine's occupancy is covered; local
// memory banks are not (they mostly serve the local CPU, not protocol duty).
func (m *Machine) SetProfile(p *obs.Profile) {
	if p == nil {
		p = obs.NopProfile()
	}
	p.EnsureNodes(m.cfg.Nodes)
	m.prof = p
	m.net.SetProfile(p)
}

// FinishProfile folds each home engine's resource accounting into the
// attached profile. Cold path, called once after a run.
func (m *Machine) FinishProfile() {
	if !m.prof.On() {
		return
	}
	for h := range m.hproc {
		b, a, w := m.hproc[h].Utilization()
		m.prof.SetResource(h, obs.ResProc, b, a, w, m.hproc[h].FreeAt())
	}
	m.net.FoldProfile(m.prof)
}

// SetAudit enables the per-transaction coherence audit of the accessed
// line's directory entry. Read-only: results stay bit-identical.
func (m *Machine) SetAudit(on bool) { m.audit = on }

// AuditReport returns the violation count and bounded diagnostics.
func (m *Machine) AuditReport() (uint64, []string) { return m.auditViol, m.auditSample }

const maxAuditSamples = 8

func (m *Machine) auditFail(format string, args ...any) {
	m.auditViol++
	if len(m.auditSample) < maxAuditSamples {
		m.auditSample = append(m.auditSample, fmt.Sprintf(format, args...))
	}
}

// auditAccess checks the accessed line's home directory entry against the
// protocol invariants. The dirty owner's caches are deliberately not
// cross-checked: after a partial L2 eviction the home frame is
// authoritative while the directory still records an owner (the degenerate
// case remoteRead folds into clean-at-home).
func (m *Machine) auditAccess(addr uint64) {
	line := m.alignLine(addr)
	e, ok := m.dir.Get(line)
	if !ok {
		m.auditFail("line %#x: no directory entry after access", line)
		return
	}
	switch e.state {
	case dirDirty:
		if e.owner < 0 || int(e.owner) >= m.cfg.Nodes {
			m.auditFail("dirty line %#x has invalid owner %d", line, e.owner)
		}
		if !e.sharers.Empty() {
			m.auditFail("dirty line %#x has sharers recorded", line)
		}
	case dirShared:
		if e.owner != -1 {
			m.auditFail("shared line %#x records owner %d", line, e.owner)
		}
		if e.sharers.Empty() {
			m.auditFail("shared line %#x has no sharers", line)
		}
	case dirHome:
		if e.owner != -1 || !e.sharers.Empty() {
			m.auditFail("idle line %#x retains owner %d or sharers", line, e.owner)
		}
	default:
		m.auditFail("line %#x in unknown directory state %d", line, e.state)
	}
}

func (m *Machine) alignLine(addr uint64) uint64 { return addr &^ (m.cfg.LineBytes - 1) }
func (m *Machine) pageOf(addr uint64) uint64    { return addr &^ (m.cfg.PageBytes - 1) }

func (m *Machine) homeFor(p int, addr uint64) int {
	page := m.pageOf(addr)
	h, ok := m.homes.Get(page)
	if !ok {
		h = p
		m.homes.Put(page, h)
		m.st.FirstTouches++
	}
	return h
}

func (m *Machine) entry(addr uint64) *dirEntry {
	line := m.alignLine(addr)
	e, ok := m.dir.Get(line)
	if !ok {
		e = m.dirPool.Get()
		e.owner = -1
		m.dir.Put(line, e)
	}
	return e
}

// memLat is node n's local-memory latency for a line, tracking the on-chip
// portion as a cache of the node's own pages.
func (m *Machine) memLat(n int, line uint64) sim.Time {
	if _, hit := m.onchip[n].Access(line); hit {
		return m.cfg.Timing.MemOnChip
	}
	m.onchip[n].Insert(line, cache.Shared, nil)
	return m.cfg.Timing.MemOffChip
}

// Access services a load or store by node p at time now.
func (m *Machine) Access(now sim.Time, p int, addr uint64, write bool) (sim.Time, proto.LatClass) {
	if m.spans.On() {
		m.spans.Begin(now, int32(p), m.alignLine(addr), write)
	}
	done, class := m.access(now, p, addr, write)
	if m.spans.On() {
		m.spans.End(done, class)
	}
	if m.audit {
		m.auditAccess(addr)
	}
	if write {
		m.st.Write(class, done-now)
	} else {
		m.st.Read(class, done-now)
	}
	if m.trace.On() {
		k := obs.EvRead
		if write {
			k = obs.EvWrite
		}
		m.trace.Emit(k, now, done-now, int32(p), m.alignLine(addr), uint64(class))
	}
	return done, class
}

func (m *Machine) access(now sim.Time, p int, addr uint64, write bool) (sim.Time, proto.LatClass) {
	if hit, class, _ := m.caches[p].Lookup(addr, write); hit {
		lat := m.cfg.Timing.L1Lat
		if class == proto.LatL2 {
			lat = m.cfg.Timing.L2Lat
		}
		return now + lat, class
	}
	line := m.alignLine(addr)
	home := m.homeFor(p, addr)
	e := m.entry(line)
	upgrade := m.caches[p].Holds(addr) // readable copy present; ownership only

	if home == p {
		return m.localAccess(now, p, addr, line, e, write, upgrade)
	}
	if write {
		return m.remoteWrite(now, p, home, addr, line, e, upgrade)
	}
	return m.remoteRead(now, p, home, addr, line, e)
}

// localAccess handles accesses whose home is the requesting node: the
// directory lookup is overlapped with the memory access and adds no latency
// unless remote copies must be acted on.
func (m *Machine) localAccess(now sim.Time, p int, addr, line uint64, e *dirEntry, write, upgrade bool) (sim.Time, proto.LatClass) {
	ctrl := m.net.ControlBytes()
	data := m.net.DataBytes(m.cfg.LineBytes)

	if !write {
		if e.state == dirDirty && int(e.owner) != p {
			// Fetch from the remote owner: two node hops (p -> owner -> p).
			q := int(e.owner)
			rq := m.net.Send(now, p, q, ctrl)
			qs := m.bank[q].Acquire(rq, m.cfg.Timing.MemBankOcc)
			if m.spans.On() {
				m.spans.Mark(obs.PhaseNetRequest, rq)
				m.spans.Mark(obs.PhaseOwnerFetch, qs+m.cfg.Timing.L2Lat)
			}
			done := m.net.Send(qs+m.cfg.Timing.L2Lat, q, p, data)
			if m.spans.On() {
				m.spans.Mark(obs.PhaseNetReply, done)
			}
			m.caches[q].DowngradeMemLine(line)
			m.bank[p].Acquire(done, m.cfg.Timing.MemBankOcc) // home memory update
			e.state = dirShared
			e.owner = -1
			e.sharers.Add(q)
			e.sharers.Add(p)
			m.fill(done, p, addr, false)
			return done, proto.Lat2Hop
		}
		bs := m.bank[p].Acquire(now, m.cfg.Timing.MemBankOcc)
		done := bs + m.memLat(p, line)
		if e.state != dirDirty {
			e.sharers.Add(p)
			if e.state == dirHome {
				e.state = dirShared
			}
		}
		m.fill(done, p, addr, e.state == dirDirty && int(e.owner) == p)
		return done, proto.LatMem
	}

	// Local write.
	switch {
	case e.state == dirDirty && int(e.owner) != p:
		// Transfer ownership from the remote owner (2 hops).
		q := int(e.owner)
		rq := m.net.Send(now, p, q, ctrl)
		qs := m.bank[q].Acquire(rq, m.cfg.Timing.MemBankOcc)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseNetRequest, rq)
			m.spans.Mark(obs.PhaseOwnerFetch, qs+m.cfg.Timing.L2Lat)
		}
		done := m.net.Send(qs+m.cfg.Timing.L2Lat, q, p, data)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseNetReply, done)
		}
		m.caches[q].InvalidateMemLine(line)
		m.st.Invalidations++
		if m.trace.On() {
			m.trace.Emit(obs.EvInval, rq, 0, int32(q), line, 0)
		}
		e.owner = int32(p)
		e.sharers.Clear()
		m.fill(done, p, addr, true)
		return done, proto.Lat2Hop
	default:
		bs := m.bank[p].Acquire(now, m.cfg.Timing.MemBankOcc)
		done := bs + m.memLat(p, line)
		if m.spans.On() {
			// Memory access is issue-side work; the ack wait below retires.
			m.spans.Mark(obs.PhaseIssue, done)
		}
		// Invalidate remote sharers; their acks bound completion.
		for _, q := range e.sharers.Targets(nil, m.allNodes, p) {
			iv := m.net.Send(now, p, q, ctrl)
			m.caches[q].InvalidateMemLine(line)
			m.st.Invalidations++
			if m.trace.On() {
				m.trace.Emit(obs.EvInval, iv, 0, int32(q), line, 0)
			}
			if ack := m.net.Send(iv, q, p, ctrl); ack > done {
				done = ack
			}
		}
		e.state = dirDirty
		e.owner = int32(p)
		e.sharers.Clear()
		m.fill(done, p, addr, true)
		return done, proto.LatMem
	}
}

// remoteRead handles a read whose home is another node.
func (m *Machine) remoteRead(now sim.Time, p, h int, addr, line uint64, e *dirEntry) (sim.Time, proto.LatClass) {
	ctrl := m.net.ControlBytes()
	data := m.net.DataBytes(m.cfg.LineBytes)
	arrive := m.net.Send(now, p, h, ctrl)
	if m.spans.On() {
		m.spans.Mark(obs.PhaseNetRequest, arrive)
	}
	hs := m.hproc[h].Acquire(arrive, m.cfg.Costs.ReadOcc)
	m.prof.Node(h, obs.ResProc, obs.HCDirLookup, m.cfg.Costs.ReadOcc)

	var done sim.Time
	var class proto.LatClass
	switch {
	case e.state == dirDirty && int(e.owner) == h:
		// The home's own caches hold the line dirty; it supplies and its
		// memory is updated in place.
		m.caches[h].DowngradeMemLine(line)
		m.bank[h].Acquire(hs, m.cfg.Timing.MemBankOcc)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, hs+m.cfg.Costs.ReadLat)
		}
		done = m.net.Send(hs+m.cfg.Costs.ReadLat, h, p, data)
		e.state = dirShared
		e.sharers.Add(h)
		class = proto.Lat2Hop
	case e.state == dirDirty && int(e.owner) != p:
		// 3-hop: forward to owner; owner supplies requester and writes the
		// line back to the home (sharing write-back).
		q := int(e.owner)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, hs+m.cfg.Costs.ReadLat)
		}
		fwd := m.net.Send(hs+m.cfg.Costs.ReadLat, h, q, ctrl)
		qs := m.bank[q].Acquire(fwd, m.cfg.Timing.MemBankOcc)
		sendT := qs + m.cfg.Timing.L2Lat
		if m.spans.On() {
			m.spans.Mark(obs.PhaseOwnerFetch, sendT)
		}
		done = m.net.Send(sendT, q, p, data)
		wb := m.net.Send(sendT, q, h, data)
		ws := m.hproc[h].Acquire(wb, m.cfg.Costs.AckOcc)
		m.prof.Node(h, obs.ResProc, obs.HCWriteBack, m.cfg.Costs.AckOcc)
		m.bank[h].Acquire(ws, m.cfg.Timing.MemBankOcc)
		m.caches[q].DowngradeMemLine(line)
		e.state = dirShared
		e.sharers.Add(q)
		class = proto.Lat3Hop
	default: // clean at home
		// Clean at home (covers the degenerate dirty-at-requester case
		// after a partial L2 eviction: the home's frame is authoritative
		// again). Directory access is overlapped with the memory access.
		m.bank[h].Acquire(hs, m.cfg.Timing.MemBankOcc)
		lat := m.memLat(h, line)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, hs+maxTime(m.cfg.Costs.ReadLat, lat))
		}
		done = m.net.Send(hs+maxTime(m.cfg.Costs.ReadLat, lat), h, p, data)
		if e.state == dirDirty {
			e.state = dirShared
		}
		if e.state == dirHome {
			e.state = dirShared
		}
		class = proto.Lat2Hop
	}
	if m.spans.On() {
		m.spans.Mark(obs.PhaseNetReply, done)
	}
	e.sharers.Add(p)
	e.owner = -1
	m.fill(done, p, addr, false)
	return done, class
}

// remoteWrite handles a write whose home is another node.
func (m *Machine) remoteWrite(now sim.Time, p, h int, addr, line uint64, e *dirEntry, upgrade bool) (sim.Time, proto.LatClass) {
	ctrl := m.net.ControlBytes()
	data := m.net.DataBytes(m.cfg.LineBytes)
	arrive := m.net.Send(now, p, h, ctrl)
	if m.spans.On() {
		m.spans.Mark(obs.PhaseNetRequest, arrive)
	}

	targets := e.sharers.Targets(nil, m.allNodes, p)
	occ := m.cfg.Costs.ReadExOcc + m.cfg.Costs.InvalPerNode*sim.Time(len(targets))
	hs := m.hproc[h].Acquire(arrive, occ)
	m.prof.Node(h, obs.ResProc, obs.HCDirLookup, m.cfg.Costs.ReadExOcc)
	m.prof.Node(h, obs.ResProc, obs.HCInval, occ-m.cfg.Costs.ReadExOcc)
	replyT := hs + m.cfg.Costs.ReadExLat
	if m.spans.On() {
		m.spans.Mark(obs.PhaseDirOcc, replyT)
	}

	var done sim.Time
	var class proto.LatClass
	switch {
	case e.state == dirDirty && int(e.owner) != p && int(e.owner) != h:
		// 3-hop ownership transfer.
		q := int(e.owner)
		fwd := m.net.Send(replyT, h, q, ctrl)
		qs := m.bank[q].Acquire(fwd, m.cfg.Timing.MemBankOcc)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseOwnerFetch, qs+m.cfg.Timing.L2Lat)
		}
		done = m.net.Send(qs+m.cfg.Timing.L2Lat, q, p, data)
		m.caches[q].InvalidateMemLine(line)
		m.st.Invalidations++
		if m.trace.On() {
			m.trace.Emit(obs.EvInval, fwd, 0, int32(q), line, 0)
		}
		class = proto.Lat3Hop
	case e.state == dirDirty && int(e.owner) == h:
		m.caches[h].InvalidateMemLine(line)
		m.st.Invalidations++
		if m.trace.On() {
			m.trace.Emit(obs.EvInval, hs, 0, int32(h), line, 0)
		}
		m.bank[h].Acquire(hs, m.cfg.Timing.MemBankOcc)
		done = m.net.Send(replyT, h, p, data)
		class = proto.Lat2Hop
	case upgrade:
		done = m.net.Send(replyT, h, p, ctrl)
		m.st.Upgrades++
		if m.trace.On() {
			m.trace.Emit(obs.EvUpgrade, replyT, 0, int32(p), line, 0)
		}
		class = proto.Lat2Hop
	default:
		m.bank[h].Acquire(hs, m.cfg.Timing.MemBankOcc)
		done = m.net.Send(replyT, h, p, data)
		class = proto.Lat2Hop
	}
	if m.spans.On() {
		// The data/grant reply ends here; ack collection below retires.
		m.spans.Mark(obs.PhaseNetReply, done)
	}
	for _, q := range targets {
		iv := m.net.Send(replyT, h, q, ctrl)
		m.caches[q].InvalidateMemLine(line)
		m.st.Invalidations++
		if m.trace.On() {
			m.trace.Emit(obs.EvInval, iv, 0, int32(q), line, 0)
		}
		if ack := m.net.Send(iv, q, p, ctrl); ack > done {
			done = ack
		}
	}
	e.state = dirDirty
	e.owner = int32(p)
	e.sharers.Clear()
	m.fill(done, p, addr, true)
	return done, class
}

// fill installs a fetched line into p's caches at time when, writing any
// displaced dirty lines back to their homes.
func (m *Machine) fill(when sim.Time, p int, addr uint64, writable bool) {
	m.handleVictims(when, p, m.caches[p].Fill(addr, writable))
}

// handleVictims writes displaced dirty L2 lines back to their homes. A dirty
// 64 B subline is only written back once its sibling subline has also left
// the cache (the memory line is the coherence unit).
func (m *Machine) handleVictims(when sim.Time, p int, victims []cache.Victim) {
	for _, v := range victims {
		if v.State != cache.Dirty {
			continue
		}
		sib := v.Addr ^ m.caches[p].L2.LineBytes()
		if st, ok := m.caches[p].L2.Lookup(sib); ok && st == cache.Dirty {
			continue // other half still dirty here; defer
		}
		line := m.alignLine(v.Addr)
		e := m.entry(line)
		h := m.homeFor(p, v.Addr)
		if e.state == dirDirty && int(e.owner) == p {
			e.state = dirHome
			e.owner = -1
			e.sharers.Clear()
		}
		m.st.WriteBacks++
		if m.trace.On() {
			m.trace.Emit(obs.EvWriteBack, when, 0, int32(p), line, 0)
		}
		if h == p {
			m.bank[p].Acquire(when, m.cfg.Timing.MemBankOcc)
			continue
		}
		// Background write-back message; it contends for links and the
		// home's protocol engine but nobody waits on it.
		wb := m.net.Send(when, p, h, m.net.DataBytes(m.cfg.LineBytes))
		ws := m.hproc[h].Acquire(wb, m.cfg.Costs.WBOcc)
		m.prof.Node(h, obs.ResProc, obs.HCWriteBack, m.cfg.Costs.WBOcc)
		m.bank[h].Acquire(ws, m.cfg.Timing.MemBankOcc)
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

// Placement is trivial for NUMA (node i at mesh index i) but exported for
// symmetry with the AGG engine.
func Placement(n int) []int {
	p, _ := core.Placement(n, n, 0)
	return p
}
