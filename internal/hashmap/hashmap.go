// Package hashmap provides the open-addressed hash table behind every
// directory structure in the simulator. Coherence-directory lookup is the hot
// path of all three machine models (the D-node arrays of §2.2.2, the NUMA and
// COMA home directories, the page tables), and a Go map probe there costs an
// interface-free but still hash-function-heavy runtime call plus pointer
// chasing. Map is a uint64-keyed linear-probing table with Fibonacci hashing
// and backward-shift deletion (no tombstones), so a lookup is a multiply, a
// shift and a short linear scan over two flat arrays.
//
// The companion Pool is a chunked slab allocator with a free list: directory
// entries are recycled across page map/unmap cycles instead of churning the
// garbage collector, while their addresses stay stable for the lifetime of
// the pool (entries live in fixed blocks that are never reallocated).
package hashmap

// fibMul is 2^64 / phi, the classic Fibonacci-hashing multiplier: it spreads
// line addresses (which share low zero bits from alignment) across the high
// bits that index the table.
const fibMul = 0x9E3779B97F4A7C15

// minCap is the smallest table allocated; must be a power of two.
const minCap = 16

// maxLoadNum/maxLoadDen cap the load factor at 13/16 ≈ 0.81 — linear probing
// stays short because Fibonacci hashing randomizes the high bits.
const (
	maxLoadNum = 13
	maxLoadDen = 16
)

// Map is an open-addressed hash table from uint64 keys to values of type V.
// The zero value is an empty map ready for use. It is not safe for concurrent
// use, matching the simulator's single-threaded-per-run discipline.
type Map[V any] struct {
	keys []uint64
	vals []V
	used []bool
	n    int
	// shift turns the 64-bit hash into a table index: idx = hash >> shift.
	shift uint
}

// Len returns the number of stored entries.
func (m *Map[V]) Len() int { return m.n }

func (m *Map[V]) home(k uint64) uint64 { return (k * fibMul) >> m.shift }

// Get returns the value stored for k.
func (m *Map[V]) Get(k uint64) (V, bool) {
	if m.n == 0 {
		var zero V
		return zero, false
	}
	mask := uint64(len(m.keys) - 1)
	for i := m.home(k); ; i = (i + 1) & mask {
		if !m.used[i] {
			var zero V
			return zero, false
		}
		if m.keys[i] == k {
			return m.vals[i], true
		}
	}
}

// Put stores v for k, replacing any previous value.
func (m *Map[V]) Put(k uint64, v V) {
	if (m.n+1)*maxLoadDen > len(m.keys)*maxLoadNum {
		m.grow()
	}
	mask := uint64(len(m.keys) - 1)
	for i := m.home(k); ; i = (i + 1) & mask {
		if !m.used[i] {
			m.used[i] = true
			m.keys[i] = k
			m.vals[i] = v
			m.n++
			return
		}
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
	}
}

// Delete removes k and reports whether it was present. Deletion shifts the
// following probe run backward instead of leaving a tombstone, so lookup cost
// never degrades with churn.
func (m *Map[V]) Delete(k uint64) bool {
	if m.n == 0 {
		return false
	}
	mask := uint64(len(m.keys) - 1)
	i := m.home(k)
	for {
		if !m.used[i] {
			return false
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	// Backward-shift: any entry later in the probe run that would still be
	// reachable from its home position after moving into the hole does move.
	j := i
	for {
		j = (j + 1) & mask
		if !m.used[j] {
			break
		}
		h := m.home(m.keys[j])
		if ((j - h) & mask) >= ((j - i) & mask) {
			m.keys[i] = m.keys[j]
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	var zero V
	m.used[i] = false
	m.keys[i] = 0
	m.vals[i] = zero
	m.n--
	return true
}

// Range calls fn for every entry until fn returns false. The iteration order
// is the table's probe order: deterministic for a deterministic operation
// history, but otherwise unspecified. fn must not add or delete entries.
func (m *Map[V]) Range(fn func(k uint64, v V) bool) {
	for i := range m.keys {
		if m.used[i] && !fn(m.keys[i], m.vals[i]) {
			return
		}
	}
}

// Reset drops every entry but keeps the allocated table for reuse.
func (m *Map[V]) Reset() {
	var zero V
	for i := range m.keys {
		if m.used[i] {
			m.used[i] = false
			m.keys[i] = 0
			m.vals[i] = zero
		}
	}
	m.n = 0
}

func (m *Map[V]) grow() {
	newCap := minCap
	if len(m.keys) > 0 {
		newCap = len(m.keys) * 2
	}
	oldKeys, oldVals, oldUsed := m.keys, m.vals, m.used
	m.keys = make([]uint64, newCap)
	m.vals = make([]V, newCap)
	m.used = make([]bool, newCap)
	m.n = 0
	m.shift = 64
	for c := newCap; c > 1; c >>= 1 {
		m.shift--
	}
	for i := range oldKeys {
		if oldUsed[i] {
			m.reinsert(oldKeys[i], oldVals[i])
		}
	}
}

// reinsert is Put without the growth check, for rehashing.
func (m *Map[V]) reinsert(k uint64, v V) {
	mask := uint64(len(m.keys) - 1)
	for i := m.home(k); ; i = (i + 1) & mask {
		if !m.used[i] {
			m.used[i] = true
			m.keys[i] = k
			m.vals[i] = v
			m.n++
			return
		}
	}
}

// Set is a uint64 set over the same open-addressed table.
type Set struct {
	m Map[struct{}]
}

// Len returns the number of members.
func (s *Set) Len() int { return s.m.Len() }

// Has reports membership.
func (s *Set) Has(k uint64) bool { _, ok := s.m.Get(k); return ok }

// Add inserts k.
func (s *Set) Add(k uint64) { s.m.Put(k, struct{}{}) }

// Remove deletes k and reports whether it was present.
func (s *Set) Remove(k uint64) bool { return s.m.Delete(k) }
