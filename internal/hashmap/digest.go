package hashmap

import "math"

// Digest is a streaming 64-bit hash for building content-addressed keys out
// of heterogeneous fields. It reuses the package's Fibonacci multiplier for
// per-word diffusion and a splitmix64 finalizer for avalanche, so keys built
// from structured configs (many shared low bits, few distinct fields) spread
// across the whole 64-bit space.
//
// The digest is sequence-sensitive: the same fields written in a different
// order produce a different sum. Writers length-prefix variable-size inputs,
// so no two distinct field sequences collide by concatenation.
//
// STABILITY: cache keys persisted by internal/serve are derived from this
// digest. The mixing constants and write encodings below are frozen — any
// change must bump the serve key version so stale persisted indexes are
// discarded instead of silently mismatching.
type Digest struct {
	h uint64
	n uint64 // words absorbed, folded into Sum64 against extension
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// WriteUint64 absorbs one 64-bit word.
func (d *Digest) WriteUint64(v uint64) {
	d.h = mix64(d.h*fibMul + v)
	d.n++
}

// WriteInt absorbs an int (as its 64-bit two's-complement image).
func (d *Digest) WriteInt(v int) { d.WriteUint64(uint64(int64(v))) }

// WriteFloat64 absorbs a float64 by bit pattern. Note +0 and -0 differ.
func (d *Digest) WriteFloat64(v float64) { d.WriteUint64(math.Float64bits(v)) }

// WriteString absorbs a length-prefixed string, 8 little-endian bytes per
// word with zero padding in the final word.
func (d *Digest) WriteString(s string) {
	d.WriteUint64(uint64(len(s)))
	var w uint64
	var k uint
	for i := 0; i < len(s); i++ {
		w |= uint64(s[i]) << (8 * k)
		if k++; k == 8 {
			d.WriteUint64(w)
			w, k = 0, 0
		}
	}
	if k > 0 {
		d.WriteUint64(w)
	}
}

// Sum64 returns the digest of everything written so far. The digest remains
// usable (Sum64 does not reset it).
func (d *Digest) Sum64() uint64 { return mix64(d.h ^ d.n*fibMul) }
