package hashmap

// poolBlockMin/Max bound the chunk sizes the Pool allocates: blocks double
// from 64 entries up to 64 Ki entries, so small directories stay small and
// big ones amortize allocation.
const (
	poolBlockMin = 64
	poolBlockMax = 1 << 16
)

// Pool is a chunked slab allocator with a free list for fixed-type records
// (directory entries, page descriptors). Get returns a zeroed *T; Put recycles
// it. Pointers handed out remain valid for the pool's lifetime — blocks are
// never moved or reallocated — so callers may hold *T across later Get/Put
// calls, exactly like individually heap-allocated records but without the
// per-record garbage-collector cost. The zero value is ready to use.
type Pool[T any] struct {
	blocks [][]T
	free   []*T
	next   int // block size for the next allocation
}

// Get returns a zeroed record, reusing a freed one when available.
func (p *Pool[T]) Get() *T {
	var zero T
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free = p.free[:n-1]
		*x = zero
		return x
	}
	if len(p.blocks) == 0 || len(p.blocks[len(p.blocks)-1]) == cap(p.blocks[len(p.blocks)-1]) {
		if p.next < poolBlockMin {
			p.next = poolBlockMin
		} else if p.next < poolBlockMax {
			p.next *= 2
		}
		p.blocks = append(p.blocks, make([]T, 0, p.next))
	}
	b := &p.blocks[len(p.blocks)-1]
	*b = append(*b, zero)
	return &(*b)[len(*b)-1]
}

// Put returns x to the pool for reuse. x must have come from Get and must not
// be used after Put.
func (p *Pool[T]) Put(x *T) { p.free = append(p.free, x) }

// Live returns the number of records handed out and not yet returned.
func (p *Pool[T]) Live() int {
	total := 0
	for _, b := range p.blocks {
		total += len(b)
	}
	return total - len(p.free)
}
