package hashmap

import (
	"math/rand"
	"testing"
)

func TestMapBasic(t *testing.T) {
	var m Map[int]
	if _, ok := m.Get(0); ok {
		t.Fatal("empty map reports a hit")
	}
	m.Put(0, 10) // key 0 must be a legal key
	m.Put(128, 20)
	m.Put(1<<40, 30)
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	for _, c := range []struct {
		k uint64
		v int
	}{{0, 10}, {128, 20}, {1 << 40, 30}} {
		if v, ok := m.Get(c.k); !ok || v != c.v {
			t.Fatalf("Get(%d) = %d,%v want %d,true", c.k, v, ok, c.v)
		}
	}
	m.Put(128, 25)
	if v, _ := m.Get(128); v != 25 {
		t.Fatalf("overwrite lost: got %d", v)
	}
	if m.Len() != 3 {
		t.Fatalf("Len after overwrite = %d, want 3", m.Len())
	}
	if !m.Delete(128) || m.Delete(128) {
		t.Fatal("Delete twice misbehaved")
	}
	if _, ok := m.Get(128); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := m.Get(0); !ok || v != 10 {
		t.Fatal("unrelated key lost after delete")
	}
}

// TestMapAgainstBuiltin drives the table with a mixed random workload and
// cross-checks every operation against Go's map.
func TestMapAgainstBuiltin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m Map[uint64]
	ref := map[uint64]uint64{}
	// Line-aligned keys in a small range force long probe runs and many
	// delete-reinsert cycles.
	key := func() uint64 { return uint64(rng.Intn(512)) * 128 }
	for i := 0; i < 200000; i++ {
		k := key()
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			m.Put(k, v)
			ref[k] = v
		case 1:
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		case 2:
			v, ok := m.Get(k)
			rv, rok := ref[k]
			if ok != rok || v != rv {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, ok, rv, rok)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", i, m.Len(), len(ref))
		}
	}
	// Full sweep at the end.
	for k, rv := range ref {
		if v, ok := m.Get(k); !ok || v != rv {
			t.Fatalf("final Get(%d) = %d,%v want %d,true", k, v, ok, rv)
		}
	}
	seen := 0
	m.Range(func(k uint64, v uint64) bool {
		if rv, ok := ref[k]; !ok || v != rv {
			t.Fatalf("Range yielded %d=%d not in reference", k, v)
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", seen, len(ref))
	}
}

func TestMapReset(t *testing.T) {
	var m Map[int]
	for i := uint64(0); i < 100; i++ {
		m.Put(i*4096, int(i))
	}
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	if _, ok := m.Get(0); ok {
		t.Fatal("entry survived Reset")
	}
	m.Put(7, 7)
	if v, ok := m.Get(7); !ok || v != 7 {
		t.Fatal("map unusable after Reset")
	}
}

func TestSet(t *testing.T) {
	var s Set
	if s.Has(1) {
		t.Fatal("empty set has member")
	}
	s.Add(1)
	s.Add(4096)
	if !s.Has(1) || !s.Has(4096) || s.Has(2) {
		t.Fatal("membership wrong")
	}
	if !s.Remove(1) || s.Remove(1) {
		t.Fatal("Remove twice misbehaved")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestPoolStability(t *testing.T) {
	var p Pool[[2]uint64]
	ptrs := make([]*[2]uint64, 1000)
	for i := range ptrs {
		ptrs[i] = p.Get()
		ptrs[i][0] = uint64(i)
	}
	// Growth must not move earlier records.
	for i := range ptrs {
		if ptrs[i][0] != uint64(i) {
			t.Fatalf("record %d moved or corrupted: %d", i, ptrs[i][0])
		}
	}
	if p.Live() != 1000 {
		t.Fatalf("Live = %d, want 1000", p.Live())
	}
	p.Put(ptrs[3])
	r := p.Get()
	if r != ptrs[3] {
		t.Fatal("free list did not recycle the returned record")
	}
	if r[0] != 0 {
		t.Fatal("recycled record not zeroed")
	}
}

func BenchmarkMapGet(b *testing.B) {
	b.ReportAllocs()
	var m Map[uint64]
	for i := uint64(0); i < 1<<14; i++ {
		m.Put(i*128, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(uint64(i%(1<<14)) * 128)
	}
}

func BenchmarkMapPutDelete(b *testing.B) {
	b.ReportAllocs()
	var m Map[uint64]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%(1<<12)) * 128
		m.Put(k, uint64(i))
		if i%2 == 1 {
			m.Delete(k)
		}
	}
}

func BenchmarkBuiltinMapGet(b *testing.B) {
	b.ReportAllocs()
	m := map[uint64]uint64{}
	for i := uint64(0); i < 1<<14; i++ {
		m[i*128] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[uint64(i%(1<<14))*128]
	}
}
