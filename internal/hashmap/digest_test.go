package hashmap

import "testing"

func TestDigestDeterministic(t *testing.T) {
	sum := func() uint64 {
		var d Digest
		d.WriteString("agg")
		d.WriteString("fft")
		d.WriteFloat64(1.0)
		d.WriteInt(32)
		d.WriteUint64(7)
		return d.Sum64()
	}
	if sum() != sum() {
		t.Fatal("same writes, different sums")
	}
}

func TestDigestOrderAndFieldsMatter(t *testing.T) {
	h := func(fn func(*Digest)) uint64 {
		var d Digest
		fn(&d)
		return d.Sum64()
	}
	a := h(func(d *Digest) { d.WriteUint64(1); d.WriteUint64(2) })
	b := h(func(d *Digest) { d.WriteUint64(2); d.WriteUint64(1) })
	if a == b {
		t.Fatal("order-insensitive digest")
	}
	// Concatenation must not collide: ("ab","c") vs ("a","bc").
	c := h(func(d *Digest) { d.WriteString("ab"); d.WriteString("c") })
	e := h(func(d *Digest) { d.WriteString("a"); d.WriteString("bc") })
	if c == e {
		t.Fatal("length prefix failed: concatenated strings collide")
	}
	// A trailing zero word is distinct from absence.
	f := h(func(d *Digest) { d.WriteUint64(1) })
	g := h(func(d *Digest) { d.WriteUint64(1); d.WriteUint64(0) })
	if f == g {
		t.Fatal("extension with zero word collides")
	}
	if h(func(d *Digest) {}) == f {
		t.Fatal("empty digest equals one-word digest")
	}
}

func TestDigestDistribution(t *testing.T) {
	// Sequential integers (the worst case for the simulator's aligned
	// addresses) must not collide and must spread across high bits.
	seen := make(map[uint64]bool)
	var hi [16]int
	const n = 1 << 14
	for i := 0; i < n; i++ {
		var d Digest
		d.WriteUint64(uint64(i))
		s := d.Sum64()
		if seen[s] {
			t.Fatalf("collision at %d", i)
		}
		seen[s] = true
		hi[s>>60]++
	}
	for b, c := range hi {
		if c < n/16/2 || c > n/16*2 {
			t.Fatalf("high-nibble bucket %d has %d of %d sums (poor diffusion)", b, c, n)
		}
	}
}
