package proto

import (
	"testing"

	"pimdsm/internal/cache"
)

func newCS(t *testing.T) *CacheSet {
	t.Helper()
	return MustNewCacheSet(DefaultCacheGeom(1024, 4096), 128)
}

func TestCacheSetMissThenHit(t *testing.T) {
	cs := newCS(t)
	if hit, _, up := cs.Lookup(0x1000, false); hit || up {
		t.Fatal("hit in empty cache pair")
	}
	cs.Fill(0x1000, false)
	if hit, class, _ := cs.Lookup(0x1000, false); !hit || class != LatL1 {
		t.Fatalf("after fill: hit=%v class=%v, want L1", hit, class)
	}
}

func TestCacheSetMemLineGranularityFill(t *testing.T) {
	cs := newCS(t)
	cs.Fill(0x1000, false)
	// The other 64B subline of the 128B memory line is in L2 but not L1.
	if hit, class, _ := cs.Lookup(0x1040, false); !hit || class != LatL2 {
		t.Fatalf("sibling subline: hit=%v class=%v, want L2", hit, class)
	}
	// Now it should have been promoted into L1.
	if hit, class, _ := cs.Lookup(0x1040, false); !hit || class != LatL1 {
		t.Fatalf("promoted subline: hit=%v class=%v, want L1", hit, class)
	}
	// The next memory line is absent.
	if hit, _, _ := cs.Lookup(0x1080, false); hit {
		t.Fatal("unfetched memory line present")
	}
}

func TestCacheSetStoreUpgrade(t *testing.T) {
	cs := newCS(t)
	cs.Fill(0x2000, false) // shared copy
	hit, _, upgrade := cs.Lookup(0x2000, true)
	if hit || !upgrade {
		t.Fatalf("store to shared: hit=%v upgrade=%v, want miss+upgrade", hit, upgrade)
	}
	cs.Fill(0x2000, true) // ownership granted
	if hit, _, _ := cs.Lookup(0x2000, true); !hit {
		t.Fatal("store after exclusive fill missed")
	}
}

func TestCacheSetInvalidateMemLine(t *testing.T) {
	cs := newCS(t)
	cs.Fill(0x3000, true)
	if !cs.Holds(0x3000) {
		t.Fatal("Holds false after fill")
	}
	if dirty := cs.InvalidateMemLine(0x3040); !dirty {
		t.Fatal("invalidating a dirty line reported clean")
	}
	if cs.Holds(0x3000) {
		t.Fatal("line survives invalidation")
	}
	if hit, _, _ := cs.Lookup(0x3000, false); hit {
		t.Fatal("hit after invalidation")
	}
}

func TestCacheSetDowngrade(t *testing.T) {
	cs := newCS(t)
	cs.Fill(0x4000, true)
	if dirty := cs.DowngradeMemLine(0x4000); !dirty {
		t.Fatal("downgrade of dirty line reported clean")
	}
	// Load still hits, store now needs an upgrade.
	if hit, _, _ := cs.Lookup(0x4000, false); !hit {
		t.Fatal("load missed after downgrade")
	}
	if hit, _, up := cs.Lookup(0x4000, true); hit || !up {
		t.Fatalf("store after downgrade: hit=%v upgrade=%v", hit, up)
	}
	if dirty := cs.DowngradeMemLine(0x4000); dirty {
		t.Fatal("second downgrade reported dirty")
	}
}

func TestCacheSetFillVictims(t *testing.T) {
	// Tiny L2: 4 lines of 64B, 4-way => a single set. Two fills (2 sublines
	// each) fill it; the third fill must evict two lines.
	cs := MustNewCacheSet(CacheGeom{L1Bytes: 128, L2Bytes: 256, LineBytes: 64, L2Assoc: 4}, 128)
	if v := cs.Fill(0x0000, true); len(v) != 0 {
		t.Fatalf("first fill evicted %v", v)
	}
	if v := cs.Fill(0x0080, false); len(v) != 0 {
		t.Fatalf("second fill evicted %v", v)
	}
	victims := cs.Fill(0x0100, false)
	if len(victims) != 2 {
		t.Fatalf("third fill evicted %d lines, want 2", len(victims))
	}
	dirty := 0
	for _, v := range victims {
		if v.State == cache.Dirty {
			dirty++
		}
	}
	if dirty != 2 {
		t.Fatalf("want the 2 dirty LRU sublines evicted, got %d dirty", dirty)
	}
}

func TestCacheSetFlush(t *testing.T) {
	cs := newCS(t)
	cs.Fill(0x1000, true)
	cs.Fill(0x2000, false)
	n := 0
	cs.Flush(func(_ uint64, _ cache.State) { n++ })
	if n != 4 { // two fills × two sublines
		t.Fatalf("flushed %d L2 lines, want 4", n)
	}
	if cs.Holds(0x1000) || cs.Holds(0x2000) {
		t.Fatal("lines survive flush")
	}
}
