package proto

import (
	"testing"
	"testing/quick"
)

func TestPtrVecAddRemove(t *testing.T) {
	var v PtrVec
	if !v.Empty() {
		t.Fatal("zero PtrVec not empty")
	}
	v.Add(3)
	v.Add(7)
	v.Add(3) // duplicate
	if v.Len() != 2 || !v.Contains(3) || !v.Contains(7) || v.Contains(5) {
		t.Fatalf("after adds: len=%d", v.Len())
	}
	v.Remove(3)
	if v.Contains(3) || v.Len() != 1 {
		t.Fatal("remove failed")
	}
	v.Remove(99) // absent: no-op
	if v.Len() != 1 {
		t.Fatal("removing absent node changed vector")
	}
}

func TestPtrVecBroadcastOverflow(t *testing.T) {
	var v PtrVec
	for i := 0; i < MaxSharerPointers; i++ {
		v.Add(i)
	}
	if v.Broadcast() {
		t.Fatal("broadcast before overflow")
	}
	v.Add(MaxSharerPointers) // 4th sharer overflows
	if !v.Broadcast() {
		t.Fatal("no broadcast after overflow")
	}
	if !v.Contains(1234) {
		t.Fatal("broadcast vector must conservatively contain every node")
	}
	// Removal in broadcast mode is a no-op.
	v.Remove(0)
	if !v.Contains(0) {
		t.Fatal("remove took effect in broadcast mode")
	}
}

func TestPtrVecTargets(t *testing.T) {
	all := []int{0, 1, 2, 3, 4}
	var v PtrVec
	v.Add(1)
	v.Add(4)
	got := v.Targets(nil, all, 4) // self excluded
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("targets = %v, want [1]", got)
	}
	for i := 0; i < MaxSharerPointers+1; i++ {
		v.Add(i)
	}
	got = v.Targets(nil, all, 2)
	if len(got) != 4 {
		t.Fatalf("broadcast targets = %v, want all but self", got)
	}
	for _, n := range got {
		if n == 2 {
			t.Fatal("broadcast targets include self")
		}
	}
}

// Property: Contains(x) after Add(x) always holds; Len never exceeds
// MaxSharerPointers; once broadcast, always broadcast.
func TestPtrVecProperty(t *testing.T) {
	f := func(ops []int16) bool {
		var v PtrVec
		wasBcast := false
		for _, op := range ops {
			node := int(op&0x3f) >> 1
			if op&1 == 0 {
				v.Add(node)
				if !v.Contains(node) {
					return false
				}
			} else {
				v.Remove(node)
				if !v.Broadcast() && v.Contains(node) {
					return false
				}
			}
			if v.Len() > MaxSharerPointers {
				return false
			}
			if wasBcast && !v.Broadcast() {
				return false
			}
			wasBcast = v.Broadcast()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerCostsScale(t *testing.T) {
	h := AGGCosts().Scale(HardwareScale)
	if h.ReadLat != 28 || h.ReadOcc != 56 {
		t.Fatalf("scaled read = %d/%d, want 28/56", h.ReadLat, h.ReadOcc)
	}
	if h.InvalPerNode != 7 || h.WBOcc != 98 {
		t.Fatalf("scaled inval/wb = %d/%d, want 7/98", h.InvalPerNode, h.WBOcc)
	}
}

func TestDefaultTiming(t *testing.T) {
	tm := DefaultTiming(128)
	if tm.MemBankOcc != 4 {
		t.Fatalf("bank occupancy = %d, want 4 (128B at 32B/cycle)", tm.MemBankOcc)
	}
	if tm.L1Lat != 3 || tm.L2Lat != 6 || tm.MemOnChip != 37 || tm.MemOffChip != 57 {
		t.Fatalf("Table 1 values wrong: %+v", tm)
	}
}
