package proto

import (
	"pimdsm/internal/cache"
)

// CacheSet is the private on-chip SRAM cache pair of one processor: a
// direct-mapped L1 and a 4-way L2, both with 64-byte lines (Table 1). The
// coherence unit of the machine is the 128-byte memory line, so invalidation
// and downgrade operate on memory lines (both 64-byte sublines at once), and
// a fill brings the whole memory line into the L2 (spatial locality of the
// larger transfer grain) and the requested subline into the L1.
type CacheSet struct {
	L1, L2       *cache.SetAssoc
	memLineBytes uint64
	victimBuf    []cache.Victim // scratch for Fill; reused across calls
}

// CacheGeom describes L1/L2 capacities for one application (Table 3).
type CacheGeom struct {
	L1Bytes, L2Bytes uint64
	LineBytes        uint64 // SRAM line size (64 B in the paper)
	L2Assoc          int
}

// DefaultCacheGeom returns the common cache geometry with per-application
// L1/L2 capacities.
func DefaultCacheGeom(l1Bytes, l2Bytes uint64) CacheGeom {
	return CacheGeom{L1Bytes: l1Bytes, L2Bytes: l2Bytes, LineBytes: 64, L2Assoc: 4}
}

// NewCacheSet builds a cache pair. memLineBytes is the machine's memory line
// size (the coherence unit) and must be a multiple of the SRAM line size.
func NewCacheSet(g CacheGeom, memLineBytes uint64) (*CacheSet, error) {
	l1, err := cache.New(g.L1Bytes, g.LineBytes, 1)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(g.L2Bytes, g.LineBytes, g.L2Assoc)
	if err != nil {
		return nil, err
	}
	return &CacheSet{L1: l1, L2: l2, memLineBytes: memLineBytes}, nil
}

// MustNewCacheSet is NewCacheSet, panicking on error.
func MustNewCacheSet(g CacheGeom, memLineBytes uint64) *CacheSet {
	cs, err := NewCacheSet(g, memLineBytes)
	if err != nil {
		panic(err)
	}
	return cs
}

// AlignMem returns addr rounded down to its memory-line boundary.
func (cs *CacheSet) AlignMem(addr uint64) uint64 { return addr &^ (cs.memLineBytes - 1) }

// Lookup services a load or store from the SRAM caches.
// hit reports whether the access completed here; class is LatL1 or LatL2.
// upgrade reports that a store found the line present but not writable
// (the engine must run an ownership transaction but needs no data transfer).
func (cs *CacheSet) Lookup(addr uint64, write bool) (hit bool, class LatClass, upgrade bool) {
	if st, ok := cs.L1.Access(addr); ok {
		if !write || st == cache.Dirty {
			return true, LatL1, false
		}
		return false, LatL1, true
	}
	if st, ok := cs.L2.Access(addr); ok {
		if !write || st == cache.Dirty {
			// Refill L1 from L2.
			cs.L1.Insert(addr, st, nil)
			return true, LatL2, false
		}
		return false, LatL2, true
	}
	return false, 0, false
}

// Fill installs the memory line containing addr after it was obtained from
// the memory system. writable marks the copy Dirty (obtained exclusive).
// Both sublines enter the L2; the referenced subline enters the L1. It
// returns any valid L2 victims so the engine can act on displaced dirty
// remote lines (the CC-NUMA baseline writes those back to their homes).
// The returned slice is valid only until the next Fill on this CacheSet.
func (cs *CacheSet) Fill(addr uint64, writable bool) []cache.Victim {
	st := cache.Shared
	if writable {
		st = cache.Dirty
	}
	victims := cs.victimBuf[:0]
	base := cs.AlignMem(addr)
	for sub := base; sub < base+cs.memLineBytes; sub += cs.L2.LineBytes() {
		if v := cs.L2.Insert(sub, st, nil); v.Valid() {
			victims = append(victims, v)
		}
	}
	cs.L1.Insert(addr, st, nil)
	cs.victimBuf = victims
	return victims
}

// InvalidateMemLine removes every subline of the memory line containing addr
// from both caches, reporting whether any removed copy was dirty.
func (cs *CacheSet) InvalidateMemLine(addr uint64) (wasDirty bool) {
	base := cs.AlignMem(addr)
	for sub := base; sub < base+cs.memLineBytes; sub += cs.L2.LineBytes() {
		if cs.L1.Invalidate(sub) == cache.Dirty {
			wasDirty = true
		}
		if cs.L2.Invalidate(sub) == cache.Dirty {
			wasDirty = true
		}
	}
	return wasDirty
}

// DowngradeMemLine demotes every cached subline of the memory line to Shared
// (a remote read of a line this processor owned), reporting whether any
// subline was dirty.
func (cs *CacheSet) DowngradeMemLine(addr uint64) (wasDirty bool) {
	base := cs.AlignMem(addr)
	for sub := base; sub < base+cs.memLineBytes; sub += cs.L2.LineBytes() {
		if st, ok := cs.L1.Lookup(sub); ok && st == cache.Dirty {
			cs.L1.SetState(sub, cache.Shared)
			wasDirty = true
		}
		if st, ok := cs.L2.Lookup(sub); ok && st == cache.Dirty {
			cs.L2.SetState(sub, cache.Shared)
			wasDirty = true
		}
	}
	return wasDirty
}

// Holds reports whether any subline of the memory line is present.
func (cs *CacheSet) Holds(addr uint64) bool {
	base := cs.AlignMem(addr)
	for sub := base; sub < base+cs.memLineBytes; sub += cs.L2.LineBytes() {
		if _, ok := cs.L2.Lookup(sub); ok {
			return true
		}
		if _, ok := cs.L1.Lookup(sub); ok {
			return true
		}
	}
	return false
}

// Flush empties both caches, calling fn once per valid L2 line.
func (cs *CacheSet) Flush(fn func(addr uint64, s cache.State)) {
	cs.L1.Flush(nil)
	cs.L2.Flush(fn)
}
