// Package proto holds the protocol machinery shared by the three coherence
// engines (AGG, CC-NUMA, Flat COMA): latency classification for reads, the
// limited-pointer directory sharer vector, the Table 1 timing parameters, the
// Table 2 protocol-handler cost model, and the private L1/L2 cache pair of a
// processor.
package proto

import (
	"fmt"

	"pimdsm/internal/sim"
)

// LatClass classifies where a read was satisfied — the categories of
// Figure 7 in the paper.
type LatClass uint8

const (
	// LatL1: hit in the first-level cache.
	LatL1 LatClass = iota
	// LatL2: hit in the second-level cache.
	LatL2
	// LatMem: satisfied by the node's local memory (on- or off-chip DRAM).
	LatMem
	// Lat2Hop: satisfied by a remote home in a two-node-hop transaction.
	Lat2Hop
	// Lat3Hop: satisfied via a third node (dirty or master copy elsewhere).
	Lat3Hop
	// NumLatClasses is the number of classes.
	NumLatClasses
)

// String returns the Figure 7 label for the class.
func (c LatClass) String() string {
	switch c {
	case LatL1:
		return "FLC"
	case LatL2:
		return "SLC"
	case LatMem:
		return "Memory"
	case Lat2Hop:
		return "2Hop"
	case Lat3Hop:
		return "3Hop"
	}
	return fmt.Sprintf("LatClass(%d)", uint8(c))
}

// MaxSharerPointers is the size of the limited-vector directory scheme the
// paper assumes (§2.2.2: "a 3-pointer limited-vector scheme").
const MaxSharerPointers = 3

// PtrVec is a limited-pointer sharer vector: up to MaxSharerPointers node
// IDs, falling back to broadcast when it overflows. The zero value is empty.
type PtrVec struct {
	n     uint8
	bcast bool
	ptr   [MaxSharerPointers]int32
}

// Add records node as a sharer. Adding beyond capacity sets broadcast mode.
func (v *PtrVec) Add(node int) {
	if v.bcast || v.Contains(node) {
		return
	}
	if int(v.n) == len(v.ptr) {
		v.bcast = true
		return
	}
	v.ptr[v.n] = int32(node)
	v.n++
}

// Remove drops node from the vector. In broadcast mode removal is a no-op
// (the hardware no longer knows the precise set).
func (v *PtrVec) Remove(node int) {
	if v.bcast {
		return
	}
	for i := 0; i < int(v.n); i++ {
		if v.ptr[i] == int32(node) {
			v.ptr[i] = v.ptr[v.n-1]
			v.n--
			return
		}
	}
}

// Contains reports whether node is a recorded sharer. In broadcast mode every
// node is conservatively a sharer.
func (v *PtrVec) Contains(node int) bool {
	if v.bcast {
		return true
	}
	for i := 0; i < int(v.n); i++ {
		if v.ptr[i] == int32(node) {
			return true
		}
	}
	return false
}

// Broadcast reports whether the vector overflowed into broadcast mode.
func (v *PtrVec) Broadcast() bool { return v.bcast }

// Len returns the number of recorded pointers (0 in broadcast mode).
func (v *PtrVec) Len() int { return int(v.n) }

// Empty reports whether no sharer is recorded and broadcast is off.
func (v *PtrVec) Empty() bool { return v.n == 0 && !v.bcast }

// Clear empties the vector.
func (v *PtrVec) Clear() { *v = PtrVec{} }

// Targets appends the invalidation targets to dst and returns it: the
// recorded pointers, or — in broadcast mode — every node in all (excluding
// self), mirroring the broadcast invalidations a limited-vector directory
// must send after overflow.
func (v *PtrVec) Targets(dst []int, all []int, self int) []int {
	if v.bcast {
		for _, n := range all {
			if n != self {
				dst = append(dst, n)
			}
		}
		return dst
	}
	for i := 0; i < int(v.n); i++ {
		if int(v.ptr[i]) != self {
			dst = append(dst, int(v.ptr[i]))
		}
	}
	return dst
}

// HandlerCosts is the Table 2 protocol-handler cost model, in CPU cycles.
// Latency is the time from handler dispatch until the reply message leaves;
// occupancy is how long the protocol processor stays busy.
type HandlerCosts struct {
	ReadLat, ReadOcc     sim.Time
	ReadExLat, ReadExOcc sim.Time
	InvalPerNode         sim.Time // extra occupancy per invalidation sent
	AckLat, AckOcc       sim.Time
	WBLat, WBOcc         sim.Time
}

// AGGCosts returns Table 2's measured software-handler costs (R10K cycles).
func AGGCosts() HandlerCosts {
	return HandlerCosts{
		ReadLat: 40, ReadOcc: 80,
		ReadExLat: 45, ReadExOcc: 80,
		InvalPerNode: 10,
		AckLat:       40, AckOcc: 40,
		WBLat: 40, WBOcc: 140,
	}
}

// Scale returns the costs multiplied by f. The paper models the NUMA/COMA
// hardware protocol engines at 70% of AGG's software costs (§3).
func (h HandlerCosts) Scale(f float64) HandlerCosts {
	s := func(t sim.Time) sim.Time { return sim.Time(float64(t)*f + 0.5) }
	return HandlerCosts{
		ReadLat: s(h.ReadLat), ReadOcc: s(h.ReadOcc),
		ReadExLat: s(h.ReadExLat), ReadExOcc: s(h.ReadExOcc),
		InvalPerNode: s(h.InvalPerNode),
		AckLat:       s(h.AckLat), AckOcc: s(h.AckOcc),
		WBLat: s(h.WBLat), WBOcc: s(h.WBOcc),
	}
}

// HardwareScale is the paper's hardware-vs-software protocol cost ratio.
const HardwareScale = 0.7

// Timing is the Table 1 latency/bandwidth model, in CPU cycles at 1 GHz.
// All values are uncontended round trips from the processor; contention is
// added by the resource model.
type Timing struct {
	L1Lat      sim.Time // round trip on L1 hit
	L2Lat      sim.Time // round trip on L2 hit (includes L1 miss)
	MemOnChip  sim.Time // round trip to on-chip local DRAM
	MemOffChip sim.Time // round trip to off-chip local DRAM
	// MemBankOcc is how long a line transfer occupies the DRAM interface:
	// line size / 32 B-per-cycle bandwidth.
	MemBankOcc sim.Time
	// DiskLat is the penalty for touching paged-out data (D-node pageout is
	// the paper's safety valve; the exact value only needs to be "much
	// larger than remote memory").
	DiskLat sim.Time
}

// DefaultTiming returns Table 1's values for the given memory line size.
func DefaultTiming(lineBytes uint64) Timing {
	return Timing{
		L1Lat:      3,
		L2Lat:      6,
		MemOnChip:  37,
		MemOffChip: 57,
		MemBankOcc: sim.Time((lineBytes + 31) / 32),
		DiskLat:    20000,
	}
}
