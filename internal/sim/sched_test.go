package sim

import (
	"testing"
)

// stubThread advances its clock by stride each step, finishing after n steps.
// It records the global order in which steps happen into trace.
type stubThread struct {
	id     int
	clock  Time
	stride Time
	left   int
	trace  *[]stepRecord
	parkAt int // park on this remaining-step count (0 = never)
}

type stepRecord struct {
	id    int
	clock Time
}

func (s *stubThread) ID() int     { return s.id }
func (s *stubThread) Clock() Time { return s.clock }
func (s *stubThread) Resume(t Time) {
	if t > s.clock {
		s.clock = t
	}
}
func (s *stubThread) Step() Status {
	*s.trace = append(*s.trace, stepRecord{s.id, s.clock})
	s.clock += s.stride
	s.left--
	if s.left == 0 {
		return Done
	}
	if s.parkAt != 0 && s.left == s.parkAt {
		return Parked
	}
	return Runnable
}

func TestSchedulerGlobalOrder(t *testing.T) {
	var trace []stepRecord
	s := NewScheduler()
	s.Add(&stubThread{id: 0, stride: 7, left: 20, trace: &trace})
	s.Add(&stubThread{id: 1, stride: 3, left: 40, trace: &trace})
	s.Add(&stubThread{id: 2, stride: 11, left: 12, trace: &trace})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(trace) != 72 {
		t.Fatalf("ran %d steps, want 72", len(trace))
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].clock < trace[i-1].clock {
			t.Fatalf("global time went backwards at step %d: %v -> %v", i, trace[i-1], trace[i])
		}
	}
	if s.Done() != 3 {
		t.Fatalf("Done = %d, want 3", s.Done())
	}
}

func TestSchedulerTieBreakByID(t *testing.T) {
	var trace []stepRecord
	s := NewScheduler()
	s.Add(&stubThread{id: 2, stride: 10, left: 3, trace: &trace})
	s.Add(&stubThread{id: 0, stride: 10, left: 3, trace: &trace})
	s.Add(&stubThread{id: 1, stride: 10, left: 3, trace: &trace})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// At every time step all three have equal clocks; order must be 0,1,2.
	for i := 0; i < len(trace); i += 3 {
		if trace[i].id != 0 || trace[i+1].id != 1 || trace[i+2].id != 2 {
			t.Fatalf("tie-break order wrong at %d: %v", i, trace[i:i+3])
		}
	}
}

func TestSchedulerParkUnpark(t *testing.T) {
	var trace []stepRecord
	s := NewScheduler()
	a := &stubThread{id: 0, stride: 5, left: 4, parkAt: 2, trace: &trace}
	b := &stubThread{id: 1, stride: 5, left: 2, trace: &trace}
	s.Add(a)
	s.Add(b)
	// Run until a parks and b finishes.
	for s.Step() {
	}
	if a.left != 2 {
		t.Fatalf("a.left = %d, want 2 (parked)", a.left)
	}
	s.Unpark(0, 100)
	if a.Clock() != 100 {
		t.Fatalf("resumed clock = %d, want 100", a.Clock())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Done() != 2 {
		t.Fatalf("Done = %d, want 2", s.Done())
	}
}

func TestSchedulerDeadlockDetected(t *testing.T) {
	var trace []stepRecord
	s := NewScheduler()
	s.Add(&stubThread{id: 0, stride: 1, left: 5, parkAt: 3, trace: &trace})
	if err := s.Run(); err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
}

func TestSchedulerDuplicateIDPanics(t *testing.T) {
	var trace []stepRecord
	s := NewScheduler()
	s.Add(&stubThread{id: 7, stride: 1, left: 1, trace: &trace})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate ID did not panic")
		}
	}()
	s.Add(&stubThread{id: 7, stride: 1, left: 1, trace: &trace})
}

func TestSchedulerUnparkNonParkedPanics(t *testing.T) {
	var trace []stepRecord
	s := NewScheduler()
	s.Add(&stubThread{id: 0, stride: 1, left: 2, trace: &trace})
	defer func() {
		if recover() == nil {
			t.Fatal("Unpark of runnable thread did not panic")
		}
	}()
	s.Unpark(0, 10)
}
