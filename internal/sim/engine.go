// Package sim provides a small deterministic discrete-event simulation
// engine: a time-ordered event queue, contended resources modeled by
// busy-until serialization, and a scheduler for simulated threads that always
// advances the thread with the smallest local clock.
//
// All simulated time is measured in processor cycles (the paper's machines
// cycle at 1 GHz, so a cycle is also a nanosecond, but nothing here depends
// on that).
package sim

import (
	"fmt"
	"sort"
	"time"
)

// Time is a point in simulated time, in CPU cycles.
type Time uint64

// Never is a sentinel Time larger than any reachable simulation time.
const Never = Time(1<<63 - 1)

// event is one scheduled occurrence. Events are stored by value in the
// engine's inlined 4-ary heap: scheduling pushes a struct into a reused
// slice, with no container/heap interface boxing and no per-event heap
// allocation in steady state.
type event struct {
	at  Time
	seq uint64 // tie-breaker: insertion order, for determinism
	fn  func()
	rec *Recurring // non-nil for occurrences of a recurring event
}

// Recurring is a reusable record for an event that fires periodically. The
// record (not a fresh closure per occurrence) is what travels through the
// event queue, so a steady periodic event allocates nothing after setup.
// Stopped records return to the engine's free list and are recycled by the
// next Every call.
type Recurring struct {
	fn      func()
	period  Time
	name    string // introspection label (EveryNamed); "" for anonymous
	stopped bool
}

// Name returns the introspection label the record was scheduled with.
func (r *Recurring) Name() string { return r.name }

// Engine is a deterministic discrete-event simulator. The zero value is ready
// to use.
type Engine struct {
	now Time
	ev  []event // inlined 4-ary min-heap ordered by (at, seq)
	seq uint64
	// recFree recycles stopped Recurring records.
	recFree []*Recurring

	// Introspection counters (always on; each costs an increment or a
	// compare per operation).
	dispatched uint64 // events fired, including recurring occurrences
	recFired   uint64 // recurring occurrences among dispatched
	maxPending int    // high-water mark of the event queue

	// prof, when non-nil, wall-clocks every handler (see StartProfile).
	prof *profile
}

// EngineStats is a snapshot of the engine's introspection counters.
type EngineStats struct {
	Now            Time
	Pending        int    // events currently queued
	MaxPending     int    // queue-depth high-water mark
	Dispatched     uint64 // events fired so far
	RecurringFired uint64 // recurring occurrences among Dispatched
}

// Stats returns a snapshot of the engine's introspection counters.
func (e *Engine) Stats() EngineStats {
	e.settle()
	return EngineStats{
		Now:            e.now,
		Pending:        len(e.ev),
		MaxPending:     e.maxPending,
		Dispatched:     e.dispatched,
		RecurringFired: e.recFired,
	}
}

// profile accumulates host wall time per handler label while profiling is
// active. One-shot events share the "" label; recurring events are grouped
// by the name given to EveryNamed.
type profile struct {
	started time.Time
	events  uint64
	wall    map[string]time.Duration
	calls   map[string]uint64
}

func (p *profile) add(name string, d time.Duration) {
	p.events++
	p.wall[name] += d
	p.calls[name]++
}

// HandlerShare is one handler group's share of profiled wall time.
type HandlerShare struct {
	Name  string // "" is the anonymous one-shot group
	Wall  time.Duration
	Calls uint64
	Share float64 // fraction of total profiled handler wall time
}

// ProfileReport summarizes a profiling window: host-time throughput and the
// per-handler wall-time split. It is host-side observability only — nothing
// in it feeds back into simulation state, so profiling cannot perturb
// results (only slow them down).
type ProfileReport struct {
	Elapsed      time.Duration
	Events       uint64
	EventsPerSec float64
	Handlers     []HandlerShare // sorted by descending wall time
}

// StartProfile begins wall-clocking every dispatched handler. Calling it
// again restarts the window.
func (e *Engine) StartProfile() {
	e.prof = &profile{
		started: time.Now(),
		wall:    make(map[string]time.Duration),
		calls:   make(map[string]uint64),
	}
}

// StopProfile ends the profiling window and returns its report. Without a
// matching StartProfile it returns a zero report.
func (e *Engine) StopProfile() ProfileReport {
	p := e.prof
	e.prof = nil
	if p == nil {
		return ProfileReport{}
	}
	rep := ProfileReport{Elapsed: time.Since(p.started), Events: p.events}
	if rep.Elapsed > 0 {
		rep.EventsPerSec = float64(p.events) / rep.Elapsed.Seconds()
	}
	var total time.Duration
	for _, d := range p.wall {
		total += d
	}
	for name, d := range p.wall {
		share := 0.0
		if total > 0 {
			share = float64(d) / float64(total)
		}
		rep.Handlers = append(rep.Handlers, HandlerShare{Name: name, Wall: d, Calls: p.calls[name], Share: share})
	}
	sort.Slice(rep.Handlers, func(i, j int) bool {
		if rep.Handlers[i].Wall != rep.Handlers[j].Wall {
			return rep.Handlers[i].Wall > rep.Handlers[j].Wall
		}
		return rep.Handlers[i].Name < rep.Handlers[j].Name
	})
	return rep
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Every schedules fn to run at first and then every period cycles until the
// returned record is passed to Stop. period must be positive. Each firing
// reuses the same record, so a periodic event costs no allocation per
// occurrence.
func (e *Engine) Every(first, period Time, fn func()) *Recurring {
	return e.EveryNamed(first, period, "", fn)
}

// EveryNamed is Every with an introspection label: profiled wall time and
// fire counts are aggregated under name in ProfileReport.
func (e *Engine) EveryNamed(first, period Time, name string, fn func()) *Recurring {
	if first < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", first, e.now))
	}
	if period == 0 {
		panic("sim: recurring event with zero period")
	}
	var r *Recurring
	if n := len(e.recFree); n > 0 {
		r = e.recFree[n-1]
		e.recFree[n-1] = nil
		e.recFree = e.recFree[:n-1]
	} else {
		r = new(Recurring)
	}
	*r = Recurring{fn: fn, period: period, name: name}
	e.seq++
	e.push(event{at: first, seq: e.seq, rec: r})
	return r
}

// Stop cancels a recurring event. Its already-queued next occurrence is
// discarded (without firing) when it reaches the head of the queue, at which
// point the record is recycled. Stopping twice is a no-op.
func (e *Engine) Stop(r *Recurring) { r.stopped = true }

// settle discards stopped recurring occurrences sitting at the queue head,
// recycling their records.
func (e *Engine) settle() {
	for len(e.ev) > 0 && e.ev[0].rec != nil && e.ev[0].rec.stopped {
		ev := e.pop()
		ev.rec.fn = nil
		e.recFree = append(e.recFree, ev.rec)
	}
}

// Pending reports the number of scheduled occurrences. Occurrences of stopped
// recurring events are counted until they are lazily reaped at the queue head.
func (e *Engine) Pending() int {
	e.settle()
	return len(e.ev)
}

// NextAt returns the time of the earliest pending event.
func (e *Engine) NextAt() (Time, bool) {
	e.settle()
	if len(e.ev) == 0 {
		return 0, false
	}
	return e.ev[0].at, true
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	e.settle()
	if len(e.ev) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.dispatched++
	if r := ev.rec; r != nil {
		// Requeue before firing so fn observes a consistent Pending count;
		// if fn calls Stop, the queued occurrence is reaped before it fires.
		e.seq++
		e.push(event{at: ev.at + r.period, seq: e.seq, rec: r})
		e.recFired++
		if p := e.prof; p != nil {
			start := time.Now()
			r.fn()
			p.add(r.name, time.Since(start))
			return true
		}
		r.fn()
		return true
	}
	if p := e.prof; p != nil {
		start := time.Now()
		ev.fn()
		p.add("", time.Since(start))
		return true
	}
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for {
		at, ok := e.NextAt()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// --- inlined 4-ary min-heap ---
//
// A 4-ary layout halves the tree depth of a binary heap; with events stored
// by value the sift loops touch contiguous memory and compile to straight
// integer comparisons. Children of node i are 4i+1 .. 4i+4.

func (e *Engine) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev event) {
	e.ev = append(e.ev, ev)
	if len(e.ev) > e.maxPending {
		e.maxPending = len(e.ev)
	}
	i := len(e.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(&e.ev[i], &e.ev[parent]) {
			break
		}
		e.ev[i], e.ev[parent] = e.ev[parent], e.ev[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	top := e.ev[0]
	n := len(e.ev) - 1
	e.ev[0] = e.ev[n]
	e.ev[n] = event{} // release the closure/record reference
	e.ev = e.ev[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return top
}

func (e *Engine) siftDown(i int) {
	n := len(e.ev)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(&e.ev[c], &e.ev[min]) {
				min = c
			}
		}
		if !e.less(&e.ev[min], &e.ev[i]) {
			return
		}
		e.ev[i], e.ev[min] = e.ev[min], e.ev[i]
		i = min
	}
}
