// Package sim provides a small deterministic discrete-event simulation
// engine: a time-ordered event queue, contended resources modeled by
// busy-until serialization, and a scheduler for simulated threads that always
// advances the thread with the smallest local clock.
//
// All simulated time is measured in processor cycles (the paper's machines
// cycle at 1 GHz, so a cycle is also a nanosecond, but nothing here depends
// on that).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in CPU cycles.
type Time uint64

// Never is a sentinel Time larger than any reachable simulation time.
const Never = Time(1<<63 - 1)

// Event is a closure scheduled to run at a given simulated time.
type event struct {
	at  Time
	seq uint64 // tie-breaker: insertion order, for determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() (Time, bool) { // min event time
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Engine is a deterministic discrete-event simulator. The zero value is ready
// to use.
type Engine struct {
	now Time
	pq  eventHeap
	seq uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.pq) }

// NextAt returns the time of the earliest pending event.
func (e *Engine) NextAt() (Time, bool) { return e.pq.peek() }

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for {
		at, ok := e.pq.peek()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
