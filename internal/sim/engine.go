// Package sim provides a small deterministic discrete-event simulation
// engine: a time-ordered event queue, contended resources modeled by
// busy-until serialization, and a scheduler for simulated threads that always
// advances the thread with the smallest local clock.
//
// All simulated time is measured in processor cycles (the paper's machines
// cycle at 1 GHz, so a cycle is also a nanosecond, but nothing here depends
// on that).
package sim

import "fmt"

// Time is a point in simulated time, in CPU cycles.
type Time uint64

// Never is a sentinel Time larger than any reachable simulation time.
const Never = Time(1<<63 - 1)

// event is one scheduled occurrence. Events are stored by value in the
// engine's inlined 4-ary heap: scheduling pushes a struct into a reused
// slice, with no container/heap interface boxing and no per-event heap
// allocation in steady state.
type event struct {
	at  Time
	seq uint64 // tie-breaker: insertion order, for determinism
	fn  func()
	rec *Recurring // non-nil for occurrences of a recurring event
}

// Recurring is a reusable record for an event that fires periodically. The
// record (not a fresh closure per occurrence) is what travels through the
// event queue, so a steady periodic event allocates nothing after setup.
// Stopped records return to the engine's free list and are recycled by the
// next Every call.
type Recurring struct {
	fn      func()
	period  Time
	stopped bool
}

// Engine is a deterministic discrete-event simulator. The zero value is ready
// to use.
type Engine struct {
	now Time
	ev  []event // inlined 4-ary min-heap ordered by (at, seq)
	seq uint64
	// recFree recycles stopped Recurring records.
	recFree []*Recurring
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Every schedules fn to run at first and then every period cycles until the
// returned record is passed to Stop. period must be positive. Each firing
// reuses the same record, so a periodic event costs no allocation per
// occurrence.
func (e *Engine) Every(first, period Time, fn func()) *Recurring {
	if first < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", first, e.now))
	}
	if period == 0 {
		panic("sim: recurring event with zero period")
	}
	var r *Recurring
	if n := len(e.recFree); n > 0 {
		r = e.recFree[n-1]
		e.recFree[n-1] = nil
		e.recFree = e.recFree[:n-1]
	} else {
		r = new(Recurring)
	}
	*r = Recurring{fn: fn, period: period}
	e.seq++
	e.push(event{at: first, seq: e.seq, rec: r})
	return r
}

// Stop cancels a recurring event. Its already-queued next occurrence is
// discarded (without firing) when it reaches the head of the queue, at which
// point the record is recycled. Stopping twice is a no-op.
func (e *Engine) Stop(r *Recurring) { r.stopped = true }

// settle discards stopped recurring occurrences sitting at the queue head,
// recycling their records.
func (e *Engine) settle() {
	for len(e.ev) > 0 && e.ev[0].rec != nil && e.ev[0].rec.stopped {
		ev := e.pop()
		ev.rec.fn = nil
		e.recFree = append(e.recFree, ev.rec)
	}
}

// Pending reports the number of scheduled occurrences. Occurrences of stopped
// recurring events are counted until they are lazily reaped at the queue head.
func (e *Engine) Pending() int {
	e.settle()
	return len(e.ev)
}

// NextAt returns the time of the earliest pending event.
func (e *Engine) NextAt() (Time, bool) {
	e.settle()
	if len(e.ev) == 0 {
		return 0, false
	}
	return e.ev[0].at, true
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event was run.
func (e *Engine) Step() bool {
	e.settle()
	if len(e.ev) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	if r := ev.rec; r != nil {
		// Requeue before firing so fn observes a consistent Pending count;
		// if fn calls Stop, the queued occurrence is reaped before it fires.
		e.seq++
		e.push(event{at: ev.at + r.period, seq: e.seq, rec: r})
		r.fn()
		return true
	}
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for {
		at, ok := e.NextAt()
		if !ok || at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// --- inlined 4-ary min-heap ---
//
// A 4-ary layout halves the tree depth of a binary heap; with events stored
// by value the sift loops touch contiguous memory and compile to straight
// integer comparisons. Children of node i are 4i+1 .. 4i+4.

func (e *Engine) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev event) {
	e.ev = append(e.ev, ev)
	i := len(e.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(&e.ev[i], &e.ev[parent]) {
			break
		}
		e.ev[i], e.ev[parent] = e.ev[parent], e.ev[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	top := e.ev[0]
	n := len(e.ev) - 1
	e.ev[0] = e.ev[n]
	e.ev[n] = event{} // release the closure/record reference
	e.ev = e.ev[:n]
	if n > 1 {
		e.siftDown(0)
	}
	return top
}

func (e *Engine) siftDown(i int) {
	n := len(e.ev)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(&e.ev[c], &e.ev[min]) {
				min = c
			}
		}
		if !e.less(&e.ev[min], &e.ev[i]) {
			return
		}
		e.ev[i], e.ev[min] = e.ev[min], e.ev[i]
		i = min
	}
}
