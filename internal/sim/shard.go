// Conservatively synchronized parallel discrete-event simulation.
//
// Sharded partitions a population of simulated nodes across K shards, each
// with its own event heap running on its own goroutine. Shards advance in
// bounded time windows whose width is the engine's lookahead: the minimum
// simulated delay of any cross-node interaction (for a mesh, the per-hop
// router latency — see mesh.Config.MinLinkLatency). Within a window shards
// execute independently; at the window barrier, events posted across shard
// boundaries are exchanged through per-pair mailboxes (each written by
// exactly one producer shard and drained by exactly one consumer shard, so
// the barrier's happens-before edge is the only synchronization they need).
//
// Determinism. Every event carries a key ordered by (time, scheduling node,
// per-node sequence). A node's events execute in the same relative order no
// matter how nodes are placed on shards, because (a) same-shard events are
// heap-ordered by that key, (b) cross-shard events land in the destination
// heap before any window that could run them, and (c) the lookahead rule
// below makes the set of events a window executes placement-independent.
// Under the ownership contract — a handler touches only its own node's state
// and interacts with other nodes only via Post — results are therefore
// bit-identical across shard counts and across runs.
//
// The lookahead rule: an event posted to a *different node* must be
// scheduled at least `lookahead` cycles in the future, whether or not the
// destination currently shares the poster's shard. Enforcing the bound
// uniformly (not just at shard crossings) is what keeps behaviour identical
// when a placement change turns a local post into a mailbox post. A handler
// may schedule for its own node at any time ≥ now.
package sim

import (
	"fmt"
	"sync"
)

// Sharded is a partitioned discrete-event engine. Build one with NewSharded,
// obtain per-node handles with Node, schedule initial events, then Run or
// RunUntil. It is not safe to schedule from outside the engine while Run is
// in progress; handlers schedule through their node handle.
type Sharded struct {
	shards    []*shard
	place     []int32 // node -> shard
	handles   []NodeHandle
	lookahead Time
	now       Time // start of the current window (committed global time)

	windows   uint64
	crossSent uint64
}

// shard is one partition: an event heap plus mailboxes, driven by one
// goroutine per window.
type shard struct {
	id  int
	own *Sharded
	now Time // time of the event being executed (== window start between windows)

	ev      []shEvent // inlined 4-ary min-heap ordered by (at, key)
	recFree []*Recurring

	// outbox[dst] is this shard's half of the (this, dst) mailbox pair:
	// appended to only by this shard during a window, drained only by the
	// coordinator at the barrier. outbox[id] is unused (same-shard posts go
	// straight to the heap).
	outbox [][]shEvent

	// Per-node sequence counters for nodes owned by this shard, indexed by
	// global node ID (only this shard's entries are ever touched by it).
	dispatched uint64
	recFired   uint64
	maxPending int

	done chan any // per-window completion: nil or recovered panic value
}

// shEvent is one scheduled occurrence in a shard heap. key encodes
// (scheduling node, that node's sequence number): the deterministic
// tie-breaker after time.
type shEvent struct {
	at   Time
	key  uint64
	fn   func()
	rec  *Recurring
	node int32 // owning (destination) node; recurrences reschedule under it
}

// nodeSeqBits is how many low key bits hold the per-node sequence number;
// the node ID occupies the bits above. 2^44 events per node and 2^20 nodes
// are both far beyond any practical run.
const nodeSeqBits = 44

// NodeHandle schedules events for one node. During Run it must be used only
// from the handlers of the shard that owns the node (handlers receive the
// handle by capture); before Run it may be used freely from the setup
// goroutine.
type NodeHandle struct {
	sh   *shard
	node int32
	seq  uint64
}

// NewSharded builds an engine for `nodes` simulated nodes partitioned into
// `shards` contiguous blocks (node i goes to shard i*shards/nodes — for a
// row-major mesh this is a band of adjacent rows, so shard crossings are
// mesh links). lookahead is the minimum simulated delay of any cross-node
// interaction and must be positive: with zero lookahead a conservative
// window can never include more than the current instant and the barrier
// protocol cannot advance — that is rejected here rather than deadlocking
// the first Run.
func NewSharded(nodes, shards int, lookahead Time) (*Sharded, error) {
	if nodes > 0 && shards > nodes {
		shards = nodes // clamp before the closure captures the count
	}
	place := func(n int) int { return n * shards / nodes }
	return NewShardedPlaced(nodes, shards, lookahead, place)
}

// NewShardedPlaced is NewSharded with an explicit node→shard placement.
func NewShardedPlaced(nodes, shards int, lookahead Time, place func(node int) int) (*Sharded, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("sim: sharded engine needs at least one node, got %d", nodes)
	}
	if shards < 1 {
		return nil, fmt.Errorf("sim: sharded engine needs at least one shard, got %d", shards)
	}
	if shards > nodes {
		shards = nodes
	}
	if lookahead == 0 {
		return nil, fmt.Errorf("sim: zero lookahead: conservative windows cannot advance "+
			"(every cross-node event must be scheduled ≥ lookahead cycles ahead; "+
			"%d shards would deadlock at the first barrier)", shards)
	}
	s := &Sharded{
		place:     make([]int32, nodes),
		handles:   make([]NodeHandle, nodes),
		lookahead: lookahead,
	}
	s.shards = make([]*shard, shards)
	for i := range s.shards {
		s.shards[i] = &shard{
			id:     i,
			own:    s,
			outbox: make([][]shEvent, shards),
			done:   make(chan any, 1),
		}
	}
	for n := 0; n < nodes; n++ {
		p := place(n)
		if p < 0 || p >= shards {
			return nil, fmt.Errorf("sim: placement put node %d on shard %d of %d", n, p, shards)
		}
		s.place[n] = int32(p)
		s.handles[n] = NodeHandle{sh: s.shards[p], node: int32(n)}
	}
	return s, nil
}

// Nodes returns the node population size.
func (s *Sharded) Nodes() int { return len(s.handles) }

// Shards returns the number of partitions actually in use.
func (s *Sharded) Shards() int { return len(s.shards) }

// Lookahead returns the window width.
func (s *Sharded) Lookahead() Time { return s.lookahead }

// ShardOf returns the shard owning a node.
func (s *Sharded) ShardOf(node int) int { return int(s.place[node]) }

// Now returns the committed global time: the start of the current window.
// Handlers should use their NodeHandle's Now, which tracks event time.
func (s *Sharded) Now() Time { return s.now }

// Node returns the scheduling handle for a node.
func (s *Sharded) Node(n int) *NodeHandle { return &s.handles[n] }

// ShardedStats snapshots the engine's introspection counters. Dispatched and
// CrossShard are simulation-order-independent; MaxPending is the sum of
// per-shard heap high-water marks and therefore depends on placement.
type ShardedStats struct {
	Now            Time
	Windows        uint64
	Dispatched     uint64
	RecurringFired uint64
	CrossShard     uint64
	MaxPending     int
	Pending        int
}

// Stats returns a snapshot of the introspection counters. Call only between
// Run calls.
func (s *Sharded) Stats() ShardedStats {
	st := ShardedStats{Now: s.now, Windows: s.windows, CrossShard: s.crossSent}
	for _, sh := range s.shards {
		sh.settle()
		st.Dispatched += sh.dispatched
		st.RecurringFired += sh.recFired
		st.MaxPending += sh.maxPending
		st.Pending += len(sh.ev)
	}
	return st
}

// --- NodeHandle scheduling API ---

// Now returns the node's current simulated time: the time of the event whose
// handler is running, or the window start between events.
func (h *NodeHandle) Now() Time { return h.sh.now }

// ID returns the node this handle schedules for.
func (h *NodeHandle) ID() int { return int(h.node) }

// Shard returns the shard owning this node.
func (h *NodeHandle) Shard() int { return h.sh.id }

func (h *NodeHandle) nextKey() uint64 {
	h.seq++
	return uint64(h.node)<<nodeSeqBits | (h.seq & (1<<nodeSeqBits - 1))
}

// At schedules fn on this node at absolute time t. Scheduling in the past
// panics, as on Engine.
func (h *NodeHandle) At(t Time, fn func()) {
	if t < h.sh.now {
		panic(fmt.Sprintf("sim: node %d scheduling event at %d before now %d", h.node, t, h.sh.now))
	}
	h.sh.push(shEvent{at: t, key: h.nextKey(), fn: fn, node: h.node})
}

// After schedules fn on this node d cycles from now.
func (h *NodeHandle) After(d Time, fn func()) { h.At(h.sh.now+d, fn) }

// Post schedules fn on node dst. A post to a different node must land at
// least the engine's lookahead in the future — the conservative-window
// contract — whether or not dst currently shares this node's shard; the
// bound is enforced uniformly so that results cannot depend on placement.
// A post to the handle's own node is an At.
func (h *NodeHandle) Post(dst int, t Time, fn func()) {
	if int32(dst) == h.node {
		h.At(t, fn)
		return
	}
	s := h.sh.own
	if t < h.sh.now+s.lookahead {
		panic(fmt.Sprintf("sim: node %d posting to node %d at %d violates lookahead %d (now %d)",
			h.node, dst, t, s.lookahead, h.sh.now))
	}
	ev := shEvent{at: t, key: h.nextKey(), fn: fn, node: int32(dst)}
	dstShard := s.place[dst]
	if dstShard == int32(h.sh.id) {
		h.sh.push(ev)
		return
	}
	h.sh.outbox[dstShard] = append(h.sh.outbox[dstShard], ev)
}

// Every schedules fn on this node at first and then every period cycles
// until Stop. Semantics match Engine.Every; the record is owned by the
// node's shard, so Stop must be called from this node's handlers (use Post
// to ask another node to stop its own recurrences).
func (h *NodeHandle) Every(first, period Time, fn func()) *Recurring {
	return h.EveryNamed(first, period, "", fn)
}

// EveryNamed is Every with an introspection label.
func (h *NodeHandle) EveryNamed(first, period Time, name string, fn func()) *Recurring {
	if first < h.sh.now {
		panic(fmt.Sprintf("sim: node %d scheduling event at %d before now %d", h.node, first, h.sh.now))
	}
	if period == 0 {
		panic("sim: recurring event with zero period")
	}
	sh := h.sh
	var r *Recurring
	if n := len(sh.recFree); n > 0 {
		r = sh.recFree[n-1]
		sh.recFree[n-1] = nil
		sh.recFree = sh.recFree[:n-1]
	} else {
		r = new(Recurring)
	}
	*r = Recurring{fn: fn, period: period, name: name}
	sh.push(shEvent{at: first, key: h.nextKey(), rec: r, node: h.node})
	return r
}

// Stop cancels a recurring event owned by this node's shard.
func (h *NodeHandle) Stop(r *Recurring) { r.stopped = true }

// --- run loop ---

// Run executes events until every shard's heap drains and all mailboxes are
// empty.
func (s *Sharded) Run() { s.run(0, false) }

// RunUntil executes events with time ≤ t, then advances the clock to t.
// A window boundary landing exactly on t is handled like Engine.RunUntil:
// events at t run, events after t stay queued.
func (s *Sharded) RunUntil(t Time) { s.run(t, true) }

func (s *Sharded) run(until Time, haveUntil bool) {
	if len(s.shards) == 1 {
		s.runSerial(until, haveUntil)
		return
	}
	// One worker goroutine per non-coordinator shard, alive for this run
	// call. Each gets its own window channel (created here, closed by stop),
	// so worker lifetime cannot race with a later Run call's channels.
	var wg sync.WaitGroup
	work := make([]chan Time, len(s.shards))
	for i, sh := range s.shards {
		if i == 0 {
			continue
		}
		ch := make(chan Time)
		work[i] = ch
		wg.Add(1)
		go func(sh *shard, ch chan Time) {
			defer wg.Done()
			for horizon := range ch {
				sh.done <- sh.runWindow(horizon)
			}
		}(sh, ch)
	}
	stop := func() {
		for _, ch := range work[1:] {
			close(ch)
		}
		wg.Wait()
	}
	for {
		next, ok := s.nextEventTime()
		if !ok || (haveUntil && next > until) {
			break
		}
		s.now = next
		horizon := next + s.lookahead
		if horizon < next { // overflow guard near Never
			horizon = Never
		}
		if haveUntil && horizon > until && until != Never {
			horizon = until + 1
		}
		for _, ch := range work[1:] {
			ch <- horizon
		}
		pv := s.shards[0].runWindow(horizon)
		for _, sh := range s.shards[1:] {
			if v := <-sh.done; v != nil && pv == nil {
				pv = v
			}
		}
		if pv != nil {
			stop()
			panic(pv)
		}
		s.deliver()
		s.windows++
	}
	stop()
	s.finish(until, haveUntil)
}

// runSerial is the single-shard path: the same window loop without
// goroutines or barriers, used both for K=1 runs and as the oracle the
// cross-check tests compare sharded runs against.
func (s *Sharded) runSerial(until Time, haveUntil bool) {
	sh := s.shards[0]
	for {
		next, ok := s.nextEventTime()
		if !ok || (haveUntil && next > until) {
			break
		}
		s.now = next
		horizon := next + s.lookahead
		if horizon < next {
			horizon = Never
		}
		if haveUntil && horizon > until && until != Never {
			horizon = until + 1
		}
		if pv := sh.runWindow(horizon); pv != nil {
			panic(pv)
		}
		s.windows++
	}
	s.finish(until, haveUntil)
}

func (s *Sharded) finish(until Time, haveUntil bool) {
	if haveUntil && until > s.now {
		s.now = until
	}
	for _, sh := range s.shards {
		if s.now > sh.now {
			sh.now = s.now
		}
	}
}

// nextEventTime returns the earliest pending event time across all shards.
// Mailboxes are empty whenever it runs (between windows).
func (s *Sharded) nextEventTime() (Time, bool) {
	t, ok := Never, false
	for _, sh := range s.shards {
		sh.settle()
		if len(sh.ev) > 0 && (!ok || sh.ev[0].at < t) {
			t, ok = sh.ev[0].at, true
		}
	}
	return t, ok
}

// deliver drains every outbox into its destination heap. Runs on the
// coordinator between windows; the barrier orders it after all producers.
func (s *Sharded) deliver() {
	for _, src := range s.shards {
		for d, box := range src.outbox {
			if len(box) == 0 {
				continue
			}
			dst := s.shards[d]
			for _, ev := range box {
				dst.push(ev)
			}
			s.crossSent += uint64(len(box))
			src.outbox[d] = box[:0]
		}
	}
}

// runWindow executes this shard's events with at < horizon in (at, key)
// order, returning a recovered panic value (nil normally). Window start time
// is committed by the coordinator; the shard clock follows event times.
func (sh *shard) runWindow(horizon Time) (pv any) {
	defer func() {
		if r := recover(); r != nil {
			pv = r
		}
	}()
	for {
		sh.settle()
		if len(sh.ev) == 0 || sh.ev[0].at >= horizon {
			return nil
		}
		ev := sh.pop()
		sh.now = ev.at
		sh.dispatched++
		if r := ev.rec; r != nil {
			// Requeue before firing, as Engine.Step does, so fn observes a
			// consistent pending count and Stop reaps the queued occurrence.
			h := &sh.own.handles[ev.node]
			sh.push(shEvent{at: ev.at + r.period, key: h.nextKey(), rec: r, node: ev.node})
			sh.recFired++
			r.fn()
			continue
		}
		ev.fn()
	}
}

// settle discards stopped recurring occurrences at the heap head, recycling
// their records (mirrors Engine.settle).
func (sh *shard) settle() {
	for len(sh.ev) > 0 && sh.ev[0].rec != nil && sh.ev[0].rec.stopped {
		ev := sh.pop()
		ev.rec.fn = nil
		sh.recFree = append(sh.recFree, ev.rec)
	}
}

// --- per-shard inlined 4-ary min-heap over (at, key) ---

func shLess(a, b *shEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.key < b.key
}

func (sh *shard) push(ev shEvent) {
	sh.ev = append(sh.ev, ev)
	if len(sh.ev) > sh.maxPending {
		sh.maxPending = len(sh.ev)
	}
	i := len(sh.ev) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !shLess(&sh.ev[i], &sh.ev[parent]) {
			break
		}
		sh.ev[i], sh.ev[parent] = sh.ev[parent], sh.ev[i]
		i = parent
	}
}

func (sh *shard) pop() shEvent {
	top := sh.ev[0]
	n := len(sh.ev) - 1
	sh.ev[0] = sh.ev[n]
	sh.ev[n] = shEvent{}
	sh.ev = sh.ev[:n]
	if n > 1 {
		sh.siftDown(0)
	}
	return top
}

func (sh *shard) siftDown(i int) {
	n := len(sh.ev)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if shLess(&sh.ev[c], &sh.ev[min]) {
				min = c
			}
		}
		if !shLess(&sh.ev[min], &sh.ev[i]) {
			return
		}
		sh.ev[i], sh.ev[min] = sh.ev[min], sh.ev[i]
		i = min
	}
}
