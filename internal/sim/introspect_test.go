package sim

import "testing"

func TestEngineStatsCounters(t *testing.T) {
	var e Engine
	s := e.Stats()
	if s != (EngineStats{}) {
		t.Fatalf("zero engine stats = %+v", s)
	}
	for i := 0; i < 5; i++ {
		e.At(Time(i*10), func() {})
	}
	if s := e.Stats(); s.Pending != 5 || s.MaxPending != 5 || s.Dispatched != 0 {
		t.Fatalf("pre-run stats = %+v", s)
	}
	r := e.Every(0, 10, func() {})
	e.RunUntil(40)
	e.Stop(r)
	s = e.Stats()
	if s.Now != 40 {
		t.Fatalf("Now = %d", s.Now)
	}
	// 5 one-shots + recurring at 0,10,20,30,40.
	if s.Dispatched != 10 || s.RecurringFired != 5 {
		t.Fatalf("dispatched=%d recurring=%d, want 10/5", s.Dispatched, s.RecurringFired)
	}
	if s.MaxPending < 5 {
		t.Fatalf("MaxPending = %d, want >= 5", s.MaxPending)
	}
}

func TestEveryNamedLabel(t *testing.T) {
	var e Engine
	r := e.EveryNamed(0, 10, "sampler", func() {})
	if r.Name() != "sampler" {
		t.Fatalf("Name = %q", r.Name())
	}
	e.Stop(r)
	// A recycled record must not keep the old label.
	r2 := e.Every(e.Now(), 10, func() {})
	if r2.Name() != "" {
		t.Fatalf("recycled record kept label %q", r2.Name())
	}
	e.Stop(r2)
}

func TestProfileReport(t *testing.T) {
	var e Engine
	work := func() {
		x := 0
		for i := 0; i < 1000; i++ {
			x += i
		}
		_ = x
	}
	rec := e.EveryNamed(0, 10, "ticker", work)
	e.At(5, work)
	e.StartProfile()
	e.RunUntil(100)
	e.Stop(rec)
	rep := e.StopProfile()
	if rep.Events != 12 { // 11 recurring (0..100 step 10) + 1 one-shot
		t.Fatalf("Events = %d, want 12", rep.Events)
	}
	if rep.EventsPerSec <= 0 {
		t.Fatalf("EventsPerSec = %v", rep.EventsPerSec)
	}
	names := map[string]HandlerShare{}
	total := 0.0
	for _, h := range rep.Handlers {
		names[h.Name] = h
		total += h.Share
	}
	if names["ticker"].Calls != 11 || names[""].Calls != 1 {
		t.Fatalf("handler calls: %+v", rep.Handlers)
	}
	if total < 0.99 || total > 1.01 {
		t.Fatalf("shares sum to %v", total)
	}
	// StopProfile without StartProfile is a zero report, not a crash.
	if rep := e.StopProfile(); rep.Events != 0 {
		t.Fatalf("second StopProfile = %+v", rep)
	}
}

func TestProfilingDoesNotPerturbResults(t *testing.T) {
	run := func(profile bool) []Time {
		var e Engine
		var fired []Time
		rec := e.Every(5, 7, func() { fired = append(fired, e.Now()) })
		for i := 0; i < 20; i++ {
			e.At(Time(i*3), func() { fired = append(fired, e.Now()) })
		}
		if profile {
			e.StartProfile()
		}
		e.RunUntil(60)
		e.Stop(rec)
		return fired
	}
	plain, profiled := run(false), run(true)
	if len(plain) != len(profiled) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(profiled))
	}
	for i := range plain {
		if plain[i] != profiled[i] {
			t.Fatalf("event %d at %d vs %d", i, plain[i], profiled[i])
		}
	}
}
