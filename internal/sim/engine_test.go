package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var fired []Time
	e.At(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested scheduling: %v", fired)
	}
}

func TestEnginePastPanics(t *testing.T) {
	var e Engine
	e.At(10, func() { e.At(5, func() {}) })
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.RunUntil(15)
	if ran != 1 {
		t.Fatalf("RunUntil(15) ran %d events, want 1", ran)
	}
	if e.Now() != 15 {
		t.Fatalf("Now = %d, want 15", e.Now())
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("after Run, ran = %d, want 2", ran)
	}
}

// TestEngineHeapStress pushes events with pseudo-random times through the
// 4-ary heap and checks they fire in nondecreasing (time, insertion) order.
func TestEngineHeapStress(t *testing.T) {
	var e Engine
	const n = 2000
	var fired []Time
	seed := uint64(12345)
	for i := 0; i < n; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		at := Time(seed >> 50) // small range forces many ties
		e.At(at, func() { fired = append(fired, e.Now()) })
	}
	e.Run()
	if len(fired) != n {
		t.Fatalf("fired %d of %d events", len(fired), n)
	}
	for i := 1; i < n; i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("event %d fired at %d after %d", i, fired[i], fired[i-1])
		}
	}
}

func TestEngineEvery(t *testing.T) {
	var e Engine
	var fired []Time
	var r *Recurring
	r = e.Every(10, 5, func() {
		fired = append(fired, e.Now())
		if len(fired) == 3 {
			e.Stop(r)
		}
	})
	e.At(100, func() {}) // keeps the queue alive past the recurring event
	e.Run()
	if len(fired) != 3 || fired[0] != 10 || fired[1] != 15 || fired[2] != 20 {
		t.Fatalf("recurring firings: %v", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want 100", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", e.Pending())
	}
}

// TestEngineEveryRecycled checks that a stopped record returns to the free
// list and is reused by the next Every.
func TestEngineEveryRecycled(t *testing.T) {
	var e Engine
	r1 := e.Every(0, 10, func() {})
	e.Step()   // fires at 0, requeues at 10
	e.Stop(r1) // queued occurrence will be reaped
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Stop, want 0", e.Pending())
	}
	r2 := e.Every(20, 10, func() {})
	if r2 != r1 {
		t.Fatal("stopped record was not recycled")
	}
	fired := 0
	r2.fn = func() { fired++ }
	e.Step()
	if fired != 1 || e.Now() != 20 {
		t.Fatalf("recycled record misfired: fired=%d now=%d", fired, e.Now())
	}
	e.Stop(r2)
}

func TestEngineRunUntilSkipsStopped(t *testing.T) {
	var e Engine
	r := e.Every(10, 10, func() {})
	e.Stop(r)
	late := false
	e.At(50, func() { late = true })
	e.RunUntil(30)
	if late {
		t.Fatal("RunUntil(30) ran an event scheduled at 50")
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestResourceUncontended(t *testing.T) {
	var r Resource
	if start := r.Acquire(100, 10); start != 100 {
		t.Fatalf("uncontended start = %d, want 100", start)
	}
	if r.FreeAt() != 110 {
		t.Fatalf("FreeAt = %d, want 110", r.FreeAt())
	}
}

func TestResourceQueueing(t *testing.T) {
	var r Resource
	r.Acquire(0, 100)
	if start := r.Acquire(10, 5); start != 100 {
		t.Fatalf("queued start = %d, want 100", start)
	}
	busy, n, waited := r.Utilization()
	if busy != 105 || n != 2 || waited != 90 {
		t.Fatalf("utilization = (%d,%d,%d), want (105,2,90)", busy, n, waited)
	}
}

func TestResourceBackfill(t *testing.T) {
	var r Resource
	// A far-future reservation must not delay an earlier request that fits
	// in the gap before it (requests arrive out of time order because
	// simulated threads run ahead of one another).
	r.Acquire(1000, 50)
	if start := r.Acquire(10, 20); start != 10 {
		t.Fatalf("backfill start = %d, want 10", start)
	}
	// A request that does not fit in the gap queues after the reservation.
	if start := r.Acquire(990, 100); start != 1050 {
		t.Fatalf("non-fitting start = %d, want 1050", start)
	}
	if r.FreeAt() != 1150 {
		t.Fatalf("FreeAt = %d, want 1150", r.FreeAt())
	}
}

func TestResourceBlockMerges(t *testing.T) {
	var r Resource
	r.Acquire(100, 10)
	r.Acquire(200, 10)
	r.Block(105, 205) // overlaps both reservations: merges into [100,210)
	if start := r.Acquire(50, 10); start != 50 {
		t.Fatalf("gap before block: start = %d, want 50", start)
	}
	if start := r.Acquire(102, 1); start != 210 {
		t.Fatalf("inside block: start = %d, want 210", start)
	}
}

func TestResourceQueueDepth(t *testing.T) {
	var r Resource
	if d := r.QueueDepth(0); d != 0 {
		t.Fatalf("empty QueueDepth = %d, want 0", d)
	}
	r.Acquire(0, 100)  // [0,100)
	r.Acquire(200, 50) // [200,250)
	r.Acquire(400, 25) // [400,425)
	for _, tc := range []struct {
		at   Time
		want int
	}{
		{0, 3},   // all three intervals still end after t=0
		{99, 3},  // first interval ends at 100, still pending
		{100, 2}, // first drained exactly at its end
		{249, 2},
		{250, 1},
		{424, 1},
		{425, 0},
		{1000, 0},
	} {
		if d := r.QueueDepth(tc.at); d != tc.want {
			t.Errorf("QueueDepth(%d) = %d, want %d", tc.at, d, tc.want)
		}
	}
	// Abutting reservations merge into one busy episode.
	r.Acquire(250, 100) // extends [200,250) to [200,350)
	if d := r.QueueDepth(0); d != 3 {
		t.Errorf("QueueDepth(0) after merge = %d, want 3 (abutting windows coalesce)", d)
	}
}

// Property: for any sequence of (arrival time, hold), every service window
// starts at or after its arrival and no two service windows overlap.
func TestResourceNoOverlapProperty(t *testing.T) {
	type win struct{ s, e Time }
	f := func(arrivals []uint32, holds []uint16) bool {
		var r Resource
		var wins []win
		n := len(arrivals)
		if len(holds) < n {
			n = len(holds)
		}
		for i := 0; i < n; i++ {
			now := Time(arrivals[i] % 100000)
			hold := Time(holds[i]%500 + 1)
			start := r.Acquire(now, hold)
			if start < now {
				return false // started before arrival
			}
			wins = append(wins, win{start, start + hold})
		}
		for i := range wins {
			for j := i + 1; j < len(wins); j++ {
				if wins[i].s < wins[j].e && wins[j].s < wins[i].e {
					return false // overlap
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
