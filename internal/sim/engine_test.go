package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var fired []Time
	e.At(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested scheduling: %v", fired)
	}
}

func TestEnginePastPanics(t *testing.T) {
	var e Engine
	e.At(10, func() { e.At(5, func() {}) })
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.RunUntil(15)
	if ran != 1 {
		t.Fatalf("RunUntil(15) ran %d events, want 1", ran)
	}
	if e.Now() != 15 {
		t.Fatalf("Now = %d, want 15", e.Now())
	}
	e.Run()
	if ran != 2 {
		t.Fatalf("after Run, ran = %d, want 2", ran)
	}
}

func TestResourceUncontended(t *testing.T) {
	var r Resource
	if start := r.Acquire(100, 10); start != 100 {
		t.Fatalf("uncontended start = %d, want 100", start)
	}
	if r.FreeAt() != 110 {
		t.Fatalf("FreeAt = %d, want 110", r.FreeAt())
	}
}

func TestResourceQueueing(t *testing.T) {
	var r Resource
	r.Acquire(0, 100)
	if start := r.Acquire(10, 5); start != 100 {
		t.Fatalf("queued start = %d, want 100", start)
	}
	busy, n, waited := r.Utilization()
	if busy != 105 || n != 2 || waited != 90 {
		t.Fatalf("utilization = (%d,%d,%d), want (105,2,90)", busy, n, waited)
	}
}

func TestResourceBackfill(t *testing.T) {
	var r Resource
	// A far-future reservation must not delay an earlier request that fits
	// in the gap before it (requests arrive out of time order because
	// simulated threads run ahead of one another).
	r.Acquire(1000, 50)
	if start := r.Acquire(10, 20); start != 10 {
		t.Fatalf("backfill start = %d, want 10", start)
	}
	// A request that does not fit in the gap queues after the reservation.
	if start := r.Acquire(990, 100); start != 1050 {
		t.Fatalf("non-fitting start = %d, want 1050", start)
	}
	if r.FreeAt() != 1150 {
		t.Fatalf("FreeAt = %d, want 1150", r.FreeAt())
	}
}

func TestResourceBlockMerges(t *testing.T) {
	var r Resource
	r.Acquire(100, 10)
	r.Acquire(200, 10)
	r.Block(105, 205) // overlaps both reservations: merges into [100,210)
	if start := r.Acquire(50, 10); start != 50 {
		t.Fatalf("gap before block: start = %d, want 50", start)
	}
	if start := r.Acquire(102, 1); start != 210 {
		t.Fatalf("inside block: start = %d, want 210", start)
	}
}

// Property: for any sequence of (arrival time, hold), every service window
// starts at or after its arrival and no two service windows overlap.
func TestResourceNoOverlapProperty(t *testing.T) {
	type win struct{ s, e Time }
	f := func(arrivals []uint32, holds []uint16) bool {
		var r Resource
		var wins []win
		n := len(arrivals)
		if len(holds) < n {
			n = len(holds)
		}
		for i := 0; i < n; i++ {
			now := Time(arrivals[i] % 100000)
			hold := Time(holds[i]%500 + 1)
			start := r.Acquire(now, hold)
			if start < now {
				return false // started before arrival
			}
			wins = append(wins, win{start, start + hold})
		}
		for i := range wins {
			for j := i + 1; j < len(wins); j++ {
				if wins[i].s < wins[j].e && wins[j].s < wins[i].e {
					return false // overlap
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
