package sim

import "fmt"

// Status is the result of a Thread.Step call.
type Status uint8

const (
	// Runnable means the thread advanced and can be stepped again.
	Runnable Status = iota
	// Parked means the thread blocked (barrier, lock, explicit pause) and
	// must not be stepped until Unpark is called for it.
	Parked
	// Done means the thread finished its op stream.
	Done
)

// Thread is a simulated thread of execution with its own local clock.
// Implementations advance their clock in Step as they consume simulated work.
type Thread interface {
	// ID returns a unique, stable identifier (also the tie-breaker for
	// deterministic scheduling). IDs should be small non-negative integers:
	// the scheduler indexes a dense table with them.
	ID() int
	// Clock returns the thread's local time.
	Clock() Time
	// Step executes the thread's next unit of work.
	Step() Status
	// Resume moves the thread's clock forward to at least t. Called when a
	// parked thread is released (the releaser decides the wake-up time).
	Resume(t Time)
}

// Scheduler interleaves threads deterministically by always stepping the
// runnable thread with the smallest local clock (ties broken by ID). Because
// global time never moves backwards across steps, contended Resources are
// acquired in nondecreasing time order.
//
// The runnable set is an inlined min-heap over (clock, id) with both keys
// cached in the entry — refreshing the cached clock once per step avoids two
// interface calls per heap comparison — and the ID lookup table is a dense
// slice, since thread IDs are small integers.
type Scheduler struct {
	h      []*schedEntry
	byID   []*schedEntry // dense: thread ID -> entry, nil when unregistered
	parked int
	done   int
	total  int
}

type schedEntry struct {
	t      Thread
	clock  Time // cached t.Clock(), refreshed when the thread moves
	id     int  // cached t.ID()
	idx    int  // heap index; -1 when not in heap
	parked bool
	fini   bool
}

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Add registers a thread. Adding two threads with the same ID panics.
func (s *Scheduler) Add(t Thread) {
	id := t.ID()
	if id < 0 {
		panic(fmt.Sprintf("sim: negative thread id %d", id))
	}
	for id >= len(s.byID) {
		s.byID = append(s.byID, nil)
	}
	if s.byID[id] != nil {
		panic(fmt.Sprintf("sim: duplicate thread id %d", id))
	}
	e := &schedEntry{t: t, clock: t.Clock(), id: id, idx: -1}
	s.byID[id] = e
	s.push(e)
	s.total++
}

// Unpark releases a parked thread, resuming it at time ≥ t. Unparking a
// thread that is not parked panics (it would indicate a protocol bug).
func (s *Scheduler) Unpark(id int, t Time) {
	var e *schedEntry
	if id >= 0 && id < len(s.byID) {
		e = s.byID[id]
	}
	if e == nil || !e.parked {
		panic(fmt.Sprintf("sim: Unpark of non-parked thread %d", id))
	}
	e.parked = false
	s.parked--
	e.t.Resume(t)
	e.clock = e.t.Clock()
	s.push(e)
}

// Running reports how many threads are neither parked nor done.
func (s *Scheduler) Running() int { return len(s.h) }

// Done reports how many threads have finished.
func (s *Scheduler) Done() int { return s.done }

// Step runs one step of the earliest thread. It reports false when no thread
// is runnable (all parked or done).
func (s *Scheduler) Step() bool {
	if len(s.h) == 0 {
		return false
	}
	e := s.h[0]
	switch e.t.Step() {
	case Runnable:
		e.clock = e.t.Clock()
		s.siftDown(0)
	case Parked:
		s.remove(0)
		e.parked = true
		s.parked++
	case Done:
		s.remove(0)
		e.fini = true
		s.done++
	}
	return true
}

// Run steps threads until none are runnable. It returns an error if threads
// remain parked with nobody left to wake them (a deadlock in the simulated
// program), which would otherwise be silent.
func (s *Scheduler) Run() error {
	for s.Step() {
	}
	if s.parked > 0 {
		return fmt.Errorf("sim: deadlock: %d of %d threads parked with no runnable thread", s.parked, s.total)
	}
	return nil
}

// --- inlined binary min-heap over (clock, id) ---

func entryLess(a, b *schedEntry) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.id < b.id
}

func (s *Scheduler) push(e *schedEntry) {
	e.idx = len(s.h)
	s.h = append(s.h, e)
	s.siftUp(e.idx)
}

// remove takes the entry at heap index i out of the heap.
func (s *Scheduler) remove(i int) {
	n := len(s.h) - 1
	e := s.h[i]
	if i != n {
		s.h[i] = s.h[n]
		s.h[i].idx = i
	}
	s.h[n] = nil
	s.h = s.h[:n]
	if i < n {
		s.siftDown(i)
		s.siftUp(i)
	}
	e.idx = -1
}

func (s *Scheduler) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(s.h[i], s.h[parent]) {
			break
		}
		s.h[i], s.h[parent] = s.h[parent], s.h[i]
		s.h[i].idx, s.h[parent].idx = i, parent
		i = parent
	}
}

func (s *Scheduler) siftDown(i int) {
	n := len(s.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && entryLess(s.h[r], s.h[l]) {
			min = r
		}
		if !entryLess(s.h[min], s.h[i]) {
			return
		}
		s.h[i], s.h[min] = s.h[min], s.h[i]
		s.h[i].idx, s.h[min].idx = i, min
		i = min
	}
}
