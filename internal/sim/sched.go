package sim

import (
	"container/heap"
	"fmt"
)

// Status is the result of a Thread.Step call.
type Status uint8

const (
	// Runnable means the thread advanced and can be stepped again.
	Runnable Status = iota
	// Parked means the thread blocked (barrier, lock, explicit pause) and
	// must not be stepped until Unpark is called for it.
	Parked
	// Done means the thread finished its op stream.
	Done
)

// Thread is a simulated thread of execution with its own local clock.
// Implementations advance their clock in Step as they consume simulated work.
type Thread interface {
	// ID returns a unique, stable identifier (also the tie-breaker for
	// deterministic scheduling).
	ID() int
	// Clock returns the thread's local time.
	Clock() Time
	// Step executes the thread's next unit of work.
	Step() Status
	// Resume moves the thread's clock forward to at least t. Called when a
	// parked thread is released (the releaser decides the wake-up time).
	Resume(t Time)
}

// Scheduler interleaves threads deterministically by always stepping the
// runnable thread with the smallest local clock (ties broken by ID). Because
// global time never moves backwards across steps, contended Resources are
// acquired in nondecreasing time order.
type Scheduler struct {
	h      threadHeap
	byID   map[int]*schedEntry
	parked int
	done   int
	total  int
}

type schedEntry struct {
	t      Thread
	idx    int // heap index; -1 when not in heap
	parked bool
	fini   bool
}

type threadHeap []*schedEntry

func (h threadHeap) Len() int { return len(h) }
func (h threadHeap) Less(i, j int) bool {
	ci, cj := h[i].t.Clock(), h[j].t.Clock()
	if ci != cj {
		return ci < cj
	}
	return h[i].t.ID() < h[j].t.ID()
}
func (h threadHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *threadHeap) Push(x any) {
	e := x.(*schedEntry)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *threadHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	e.idx = -1
	*h = old[:n-1]
	return e
}

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler {
	return &Scheduler{byID: make(map[int]*schedEntry)}
}

// Add registers a thread. Adding two threads with the same ID panics.
func (s *Scheduler) Add(t Thread) {
	if _, dup := s.byID[t.ID()]; dup {
		panic(fmt.Sprintf("sim: duplicate thread id %d", t.ID()))
	}
	e := &schedEntry{t: t, idx: -1}
	s.byID[t.ID()] = e
	heap.Push(&s.h, e)
	s.total++
}

// Unpark releases a parked thread, resuming it at time ≥ t. Unparking a
// thread that is not parked panics (it would indicate a protocol bug).
func (s *Scheduler) Unpark(id int, t Time) {
	e, ok := s.byID[id]
	if !ok || !e.parked {
		panic(fmt.Sprintf("sim: Unpark of non-parked thread %d", id))
	}
	e.parked = false
	s.parked--
	e.t.Resume(t)
	heap.Push(&s.h, e)
}

// Running reports how many threads are neither parked nor done.
func (s *Scheduler) Running() int { return len(s.h) }

// Done reports how many threads have finished.
func (s *Scheduler) Done() int { return s.done }

// Step runs one step of the earliest thread. It reports false when no thread
// is runnable (all parked or done).
func (s *Scheduler) Step() bool {
	if len(s.h) == 0 {
		return false
	}
	e := s.h[0]
	switch e.t.Step() {
	case Runnable:
		heap.Fix(&s.h, e.idx)
	case Parked:
		heap.Remove(&s.h, e.idx)
		e.parked = true
		s.parked++
	case Done:
		heap.Remove(&s.h, e.idx)
		e.fini = true
		s.done++
	}
	return true
}

// Run steps threads until none are runnable. It returns an error if threads
// remain parked with nobody left to wake them (a deadlock in the simulated
// program), which would otherwise be silent.
func (s *Scheduler) Run() error {
	for s.Step() {
	}
	if s.parked > 0 {
		return fmt.Errorf("sim: deadlock: %d of %d threads parked with no runnable thread", s.parked, s.total)
	}
	return nil
}
