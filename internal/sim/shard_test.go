package sim

import (
	"strings"
	"testing"
)

// mix folds a value into a node's running fingerprint (splitmix64 finalizer:
// order-sensitive, so any reordering of a node's events changes the fold).
func mix(h, v uint64) uint64 {
	h += 0x9e3779b97f4a7c15 + v
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// chainWorkload builds a deterministic message-chain workload over nodes:
// every node starts a chain of hops that mutate per-node state, self-schedule
// local events, and post onward to a pseudo-random next node ≥ lookahead
// ahead. It returns the per-node fingerprints after the run.
func chainWorkload(t *testing.T, nodes, shards int, lookahead Time, place func(int) int) ([]uint64, ShardedStats) {
	t.Helper()
	var (
		s   *Sharded
		err error
	)
	if place == nil {
		s, err = NewSharded(nodes, shards, lookahead)
	} else {
		s, err = NewShardedPlaced(nodes, shards, lookahead, place)
	}
	if err != nil {
		t.Fatalf("NewSharded(%d, %d, %d): %v", nodes, shards, lookahead, err)
	}
	state := make([]uint64, nodes)

	// hop executes on node n: fold, occasionally self-schedule a local echo,
	// and forward the chain until its budget drains.
	var hop func(n int, budget int) func()
	hop = func(n int, budget int) func() {
		return func() {
			h := s.Node(n)
			state[n] = mix(state[n], uint64(h.Now())<<8|uint64(n))
			if budget == 0 {
				return
			}
			if state[n]&3 == 0 {
				h.After(Time(state[n]%7), func() {
					state[n] = mix(state[n], uint64(h.Now())^0xabcd)
				})
			}
			next := int(state[n]>>13) % nodes
			delay := lookahead + Time(state[n]%11)
			h.Post(next, h.Now()+delay, hop(next, budget-1))
		}
	}
	for n := 0; n < nodes; n++ {
		state[n] = uint64(n)*2654435761 + 1
		s.Node(n).At(Time(n%5), hop(n, 40))
	}
	// A few recurring ticks spread over the population, stopped mid-run from
	// their own node's handler.
	for n := 0; n < nodes; n += 5 {
		n := n
		h := s.Node(n)
		var rec *Recurring
		rec = h.EveryNamed(3, 17, "tick", func() {
			state[n] = mix(state[n], uint64(h.Now())|1<<40)
			if h.Now() > 400 {
				h.Stop(rec)
			}
		})
	}
	s.Run()
	return state, s.Stats()
}

// TestShardedBitIdentityAcrossK is the engine-level determinism oracle: the
// K=1 serial run fixes the reference fingerprints, and every K must
// reproduce them exactly, along with the dispatch counters and final clock.
func TestShardedBitIdentityAcrossK(t *testing.T) {
	const nodes = 32
	ref, refStats := chainWorkload(t, nodes, 1, 10, nil)
	for _, k := range []int{2, 4, 8} {
		got, gotStats := chainWorkload(t, nodes, k, 10, nil)
		for n := range ref {
			if got[n] != ref[n] {
				t.Fatalf("K=%d: node %d fingerprint %#x != serial %#x", k, n, got[n], ref[n])
			}
		}
		if gotStats.Dispatched != refStats.Dispatched || gotStats.RecurringFired != refStats.RecurringFired {
			t.Fatalf("K=%d: dispatched %d/%d != serial %d/%d", k,
				gotStats.Dispatched, gotStats.RecurringFired, refStats.Dispatched, refStats.RecurringFired)
		}
		if gotStats.Now != refStats.Now {
			t.Fatalf("K=%d: final time %d != serial %d", k, gotStats.Now, refStats.Now)
		}
		if k > 1 && gotStats.CrossShard == 0 {
			t.Fatalf("K=%d: no cross-shard traffic — workload is not exercising mailboxes", k)
		}
	}
}

// TestShardedPlacementIndependence: results must not depend on which shard a
// node lands on, only on the event keys — block vs round-robin placement.
func TestShardedPlacementIndependence(t *testing.T) {
	const nodes, k = 24, 4
	block, _ := chainWorkload(t, nodes, k, 10, nil)
	rr, _ := chainWorkload(t, nodes, k, 10, func(n int) int { return n % k })
	for n := range block {
		if block[n] != rr[n] {
			t.Fatalf("node %d: block placement %#x != round-robin %#x", n, block[n], rr[n])
		}
	}
}

// TestShardedZeroLookaheadRejected: zero lookahead must be a clear
// constructor error, not a deadlocked first window.
func TestShardedZeroLookaheadRejected(t *testing.T) {
	_, err := NewSharded(16, 4, 0)
	if err == nil {
		t.Fatal("NewSharded with zero lookahead succeeded; want error")
	}
	if !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("zero-lookahead error does not name the problem: %v", err)
	}
	if _, err := NewSharded(16, 1, 0); err == nil {
		t.Fatal("zero lookahead must be rejected even at one shard (placement independence)")
	}
	if _, err := NewSharded(0, 1, 5); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := NewSharded(16, 0, 5); err == nil {
		t.Fatal("zero shards accepted")
	}
}

// TestShardedLookaheadViolationPanics: a cross-node post closer than the
// lookahead is a protocol bug and must panic with a diagnostic — including
// when it happens on a worker shard's goroutine, where the panic must be
// forwarded to the caller.
func TestShardedLookaheadViolationPanics(t *testing.T) {
	for _, k := range []int{1, 4} {
		s, err := NewSharded(8, k, 10)
		if err != nil {
			t.Fatal(err)
		}
		// Node 7 lives on the last shard (a worker goroutine when k > 1).
		h := s.Node(7)
		h.At(50, func() {
			h.Post(0, h.Now()+9, func() {}) // 9 < lookahead 10
		})
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("K=%d: lookahead violation did not panic", k)
				}
				if !strings.Contains(r.(string), "lookahead") {
					t.Fatalf("K=%d: panic %q does not name lookahead", k, r)
				}
			}()
			s.Run()
		}()
	}
}

// TestShardedRecurringAcrossShards: recurring events owned by different
// shards fire on their own clocks, and a remote node can stop another
// node's recurrence only via a posted request to its owner.
func TestShardedRecurringAcrossShards(t *testing.T) {
	run := func(k int) (fired [2]int, stats ShardedStats) {
		s, err := NewSharded(16, k, 5)
		if err != nil {
			t.Fatal(err)
		}
		h0, h15 := s.Node(0), s.Node(15) // first and last shard under any k
		var rec0, rec15 *Recurring
		rec0 = h0.Every(0, 7, func() { fired[0]++ })
		rec15 = h15.Every(3, 11, func() { fired[1]++ })
		// Node 0 asks node 15 to stop its tick at t=60; node 15 stops its own
		// record when asked. Node 15's shard owns rec15, so the stop happens
		// on the owning shard.
		h0.At(55, func() {
			h0.Post(15, 60, func() { h15.Stop(rec15) })
		})
		h0.At(100, func() { h0.Stop(rec0) })
		s.RunUntil(200)
		return fired, s.Stats()
	}
	refFired, refStats := run(1)
	if refFired[0] == 0 || refFired[1] == 0 {
		t.Fatalf("serial recurrences did not fire: %v", refFired)
	}
	// rec0 fires at 0,7,...,98 (stopped at 100): 15 times. rec15 at
	// 3,14,...,58 (stopped at 60): 6 times.
	if refFired[0] != 15 || refFired[1] != 6 {
		t.Fatalf("serial fire counts %v, want [15 6]", refFired)
	}
	for _, k := range []int{2, 4, 8} {
		gotFired, gotStats := run(k)
		if gotFired != refFired {
			t.Fatalf("K=%d: fire counts %v != serial %v", k, gotFired, refFired)
		}
		if gotStats.RecurringFired != refStats.RecurringFired {
			t.Fatalf("K=%d: RecurringFired %d != serial %d", k, gotStats.RecurringFired, refStats.RecurringFired)
		}
	}
}

// TestShardedRunUntilWindowBoundary pins RunUntil semantics when the limit
// coincides exactly with a window boundary: events at the limit run, events
// after it stay queued, and the clock lands exactly on the limit.
func TestShardedRunUntilWindowBoundary(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		const L = 10
		s, err := NewSharded(8, k, L)
		if err != nil {
			t.Fatal(err)
		}
		// Per-node recordings: same-window events on different nodes run
		// concurrently at k ≥ 2, so they must not share a slice.
		var at [8][]Time
		sched := func(n int, t Time) {
			h := s.Node(n)
			h.At(t, func() { at[n] = append(at[n], h.Now()) })
		}
		// First window starts at 0 with horizon 10, so 10 is exactly the
		// boundary of the window that the t=0 event opens.
		sched(0, 0)
		sched(0, L) // exactly on the first window boundary == RunUntil limit
		sched(3, L) // same boundary, different node (different shard at k≥2)
		sched(0, L+1)
		s.RunUntil(L)
		if s.Now() != L {
			t.Fatalf("K=%d: Now()=%d after RunUntil(%d)", k, s.Now(), L)
		}
		if len(at[0]) != 2 || at[0][0] != 0 || at[0][1] != L || len(at[3]) != 1 || at[3][0] != L {
			t.Fatalf("K=%d: ran events node0=%v node3=%v, want [0 %d] and [%d]", k, at[0], at[3], L, L)
		}
		if p := s.Stats().Pending; p != 1 {
			t.Fatalf("K=%d: %d events pending after RunUntil, want 1 (the t=%d one)", k, p, L+1)
		}
		// Resuming runs the remaining event and advances to the new limit
		// even though it is past the last event (idle advance).
		s.RunUntil(2 * L)
		if s.Now() != 2*L || len(at[0]) != 3 || at[0][2] != L+1 {
			t.Fatalf("K=%d: after resume Now()=%d node0=%v", k, s.Now(), at[0])
		}
		// RunUntil in the past of the clock is a no-op.
		s.RunUntil(L)
		if s.Now() != 2*L {
			t.Fatalf("K=%d: RunUntil backwards moved the clock to %d", k, s.Now())
		}
	}
}

// TestShardedRunUntilIdleAdvance: RunUntil with an empty queue still commits
// the clock, on every shard (a node handle's Now must agree).
func TestShardedRunUntilIdleAdvance(t *testing.T) {
	s, err := NewSharded(4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(1000)
	if s.Now() != 1000 {
		t.Fatalf("Now()=%d, want 1000", s.Now())
	}
	for n := 0; n < 4; n++ {
		if got := s.Node(n).Now(); got != 1000 {
			t.Fatalf("node %d clock %d, want 1000", n, got)
		}
	}
}

// TestShardedShardsClamped: more shards than nodes clamps rather than
// leaving empty partitions.
func TestShardedShardsClamped(t *testing.T) {
	s, err := NewSharded(3, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 3 {
		t.Fatalf("Shards()=%d, want 3", s.Shards())
	}
	for n := 0; n < 3; n++ {
		if sh := s.ShardOf(n); sh < 0 || sh >= 3 {
			t.Fatalf("node %d on shard %d", n, sh)
		}
	}
}
