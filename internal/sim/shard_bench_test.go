package sim

import (
	"fmt"
	"runtime"
	"testing"
)

// shardBenchWorkload is a dense synthetic PDES load: every node runs a
// recurring handler that burns a little CPU on node-local state and forwards
// a message to its ring neighbour one lookahead ahead. Handler cost is the
// knob that makes the parallel win visible: with ~μs handlers the window
// barrier amortizes, which is exactly the regime a 256-node protocol-level
// mesh simulation lives in.
func shardBenchWorkload(b *testing.B, nodes, shards, spin int, horizon Time) ShardedStats {
	const lookahead = 10
	s, err := NewSharded(nodes, shards, lookahead)
	if err != nil {
		b.Fatal(err)
	}
	state := make([]uint64, nodes)
	var hop func(n int) func()
	hop = func(n int) func() {
		return func() {
			h := s.Node(n)
			v := state[n]
			for i := 0; i < spin; i++ {
				v = mix(v, uint64(i))
			}
			state[n] = v
			next := (n + 1) % nodes
			if at := h.Now() + lookahead; at < horizon {
				h.Post(next, at, hop(next))
			}
		}
	}
	for n := 0; n < nodes; n++ {
		state[n] = uint64(n) + 1
		s.Node(n).At(Time(n%int(lookahead)), hop(n))
	}
	s.Run()
	return s.Stats()
}

// BenchmarkSharded measures events/sec of the partitioned engine across
// shard counts. On a single-core host K>1 only measures barrier overhead;
// on an N-core host throughput should scale near-linearly until K reaches
// the core count (see `make speedup-smoke`).
func BenchmarkSharded(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		if k > 1 && k > 2*runtime.GOMAXPROCS(0) {
			continue
		}
		b.Run(fmt.Sprintf("nodes=256/K=%d", k), func(b *testing.B) {
			var dispatched uint64
			for i := 0; i < b.N; i++ {
				st := shardBenchWorkload(b, 256, k, 64, 20_000)
				dispatched = st.Dispatched
			}
			b.ReportMetric(float64(dispatched)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
