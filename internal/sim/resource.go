package sim

import "sort"

// Resource models a serially-reusable hardware resource (a network link, a
// memory bank, a D-node protocol processor). It keeps a calendar of busy
// intervals: a request arriving at time t is served in the earliest gap at
// or after t that fits its occupancy. Because simulated threads run ahead of
// one another, requests do not arrive in time order — a request with an
// earlier timestamp must be allowed to backfill a gap before reservations
// made further in the future, otherwise laggard threads would queue behind
// resources that are physically idle.
type Resource struct {
	iv []interval // busy intervals: sorted, disjoint, non-adjacent

	// Accounting.
	busy     Time // total cycles the resource was held
	acquires uint64
	waited   Time // total cycles requesters waited before service
}

type interval struct{ s, e Time }

// maxIntervals bounds calendar memory: when exceeded, the oldest half is
// coalesced into one conservative busy block (only requests arriving with
// very stale timestamps can be over-delayed by this).
const maxIntervals = 4096

// Acquire requests the resource at time now for hold cycles and returns the
// service start time (≥ now): the beginning of the earliest gap of length
// hold at or after now.
//
// Placement and reservation are fused into one pass: the gap search already
// establishes the insertion index, and the binary search is hand-rolled
// because this is the hottest loop in a full simulation (every cache miss
// crosses several Resources) — sort.Search's callback indirection is
// measurable here.
func (r *Resource) Acquire(now, hold Time) (start Time) {
	r.acquires++
	r.busy += hold
	n := len(r.iv)
	if n == 0 || now >= r.iv[n-1].e {
		// Fast path: arrival at or after the last reservation — service is
		// immediate and the reservation extends or follows the calendar tail.
		if hold > 0 {
			if n > 0 && r.iv[n-1].e == now {
				r.iv[n-1].e = now + hold
			} else {
				r.iv = append(r.iv, interval{now, now + hold})
			}
		}
		return now
	}
	// First interval ending after now.
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.iv[mid].e > now {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Walk forward to the earliest gap of length hold. On exit every interval
	// below i ends at or before start, and interval i (if any) begins at or
	// after start+hold, so i is also the insertion index.
	start = now
	i := lo
	for ; i < n; i++ {
		if r.iv[i].s >= start+hold {
			break
		}
		if r.iv[i].e > start {
			start = r.iv[i].e
		}
	}
	r.waited += start - now
	if hold == 0 {
		return start
	}
	e := start + hold
	prevAbuts := i > 0 && r.iv[i-1].e == start
	nextAbuts := i < n && r.iv[i].s == e
	switch {
	case prevAbuts && nextAbuts:
		r.iv[i-1].e = r.iv[i].e
		r.iv = append(r.iv[:i], r.iv[i+1:]...)
	case prevAbuts:
		r.iv[i-1].e = e
	case nextAbuts:
		r.iv[i].s = start
	default:
		r.iv = append(r.iv, interval{})
		copy(r.iv[i+1:], r.iv[i:])
		r.iv[i] = interval{start, e}
	}
	if len(r.iv) > maxIntervals {
		half := len(r.iv) / 2
		r.iv[half-1] = interval{r.iv[0].s, r.iv[half-1].e}
		r.iv = r.iv[half-1:]
	}
	return start
}

// Block marks the resource busy over [from, to), merging with and absorbing
// any existing reservations it overlaps. Used when an operation's duration
// (e.g. an OS pageout on a D-node) is only known after its component costs
// are computed.
func (r *Resource) Block(from, to Time) {
	if to <= from {
		return
	}
	r.busy += to - from
	lo := sort.Search(len(r.iv), func(i int) bool { return r.iv[i].e >= from })
	hi := lo
	for hi < len(r.iv) && r.iv[hi].s <= to {
		if r.iv[hi].s < from {
			from = r.iv[hi].s
		}
		if r.iv[hi].e > to {
			to = r.iv[hi].e
		}
		hi++
	}
	if lo == hi {
		r.iv = append(r.iv, interval{})
		copy(r.iv[lo+1:], r.iv[lo:])
		r.iv[lo] = interval{from, to}
		return
	}
	r.iv[lo] = interval{from, to}
	r.iv = append(r.iv[:lo+1], r.iv[hi:]...)
}

// QueueDepth returns the number of calendar busy intervals that have not
// fully drained at time at — a proxy for how much queued work remains.
// Abutting reservations merge into one interval, so back-to-back traffic
// counts as a single pending episode. It is a measurement hook for
// profiling and never mutates the calendar.
func (r *Resource) QueueDepth(at Time) int {
	lo, hi := 0, len(r.iv)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.iv[mid].e > at {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return len(r.iv) - lo
}

// FreeAt returns the end of the last reservation (0 if never used).
func (r *Resource) FreeAt() Time {
	if len(r.iv) == 0 {
		return 0
	}
	return r.iv[len(r.iv)-1].e
}

// Utilization returns total held cycles, number of acquisitions, and total
// queueing delay imposed on requesters.
func (r *Resource) Utilization() (busy Time, acquires uint64, waited Time) {
	return r.busy, r.acquires, r.waited
}

// Reset clears the resource to idle and zeroes accounting.
func (r *Resource) Reset() { *r = Resource{} }
