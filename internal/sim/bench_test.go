package sim

import "testing"

// BenchmarkEngineEventChurn exercises the engine's schedule/fire/reschedule
// hot path in isolation: a fixed population of self-rescheduling events churns
// through the 4-ary heap. Steady state must report 0 allocs/op — the event
// heap stores events by value in a reused slice, and the single closure is
// created once outside the loop.
func BenchmarkEngineEventChurn(b *testing.B) {
	b.ReportAllocs()
	var e Engine
	var fn func()
	fn = func() { e.After(16, fn) }
	for i := 0; i < 64; i++ {
		e.At(Time(i), fn)
	}
	// Warm the heap slice to steady-state capacity.
	for i := 0; i < 256; i++ {
		e.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineRecurring measures the periodic-event path: the Recurring
// record travels through the queue, so firing allocates nothing.
func BenchmarkEngineRecurring(b *testing.B) {
	b.ReportAllocs()
	var e Engine
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.Every(Time(i), 16, fn)
	}
	for i := 0; i < 256; i++ {
		e.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// benchThread is a minimal self-clocking thread for scheduler benchmarks.
type benchThread struct {
	id    int
	clock Time
	step  Time
}

func (t *benchThread) ID() int        { return t.id }
func (t *benchThread) Clock() Time    { return t.clock }
func (t *benchThread) Resume(at Time) { t.clock = at }
func (t *benchThread) Step() Status {
	t.clock += t.step
	return Runnable
}

// BenchmarkSchedulerStep measures the scheduler's pick-min/step/reheap cycle
// with 32 runnable threads advancing at coprime rates (so the heap order
// keeps changing, as in a real run).
func BenchmarkSchedulerStep(b *testing.B) {
	b.ReportAllocs()
	s := NewScheduler()
	for i := 0; i < 32; i++ {
		s.Add(&benchThread{id: i, step: Time(13 + i*7)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// BenchmarkResourceAcquire measures the busy-calendar resource under
// out-of-order arrivals.
func BenchmarkResourceAcquire(b *testing.B) {
	b.ReportAllocs()
	var r Resource
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(Time(i*3%(1<<14)), 2)
	}
}
