package cluster

import (
	"testing"

	"pimdsm/internal/hashmap"
)

func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		var d hashmap.Digest
		d.WriteString("key")
		d.WriteInt(i)
		keys[i] = d.Sum64()
	}
	return keys
}

// Ownership must be deterministic from the member set alone: two nodes with
// the same view must agree on every key without coordination.
func TestRingDeterministic(t *testing.T) {
	members := []string{"10.0.0.3:1", "10.0.0.1:1", "10.0.0.2:1"}
	a := buildRing(members, 64)
	b := buildRing([]string{"10.0.0.2:1", "10.0.0.3:1", "10.0.0.1:1"}, 64) // different order
	for _, k := range testKeys(1000) {
		if a.owner(k) != b.owner(k) {
			t.Fatalf("owner disagreement for key %x: %q vs %q", k, a.owner(k), b.owner(k))
		}
	}
}

// With vnodes, ownership shares should be roughly balanced: no member of a
// 3-node ring takes less than 15% or more than 55% of a well-mixed key set.
func TestRingBalance(t *testing.T) {
	members := []string{"n1:9000", "n2:9000", "n3:9000"}
	r := buildRing(members, 64)
	counts := map[string]int{}
	keys := testKeys(30000)
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.1f%% of keys, outside [15%%, 55%%]", m, 100*share)
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	r := buildRing(members, 32)
	for _, k := range testKeys(200) {
		owner := r.owner(k)
		succ := r.successors(k, 2)
		if len(succ) != 2 {
			t.Fatalf("want 2 successors, got %v", succ)
		}
		seen := map[string]bool{owner: true}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("successors %v not distinct from each other and owner %s", succ, owner)
			}
			seen[s] = true
		}
	}
	// Replication factor beyond the member count saturates at N-1.
	if got := r.successors(42, 10); len(got) != 3 {
		t.Fatalf("want 3 successors on a 4-member ring, got %v", got)
	}
}

func TestRingSingleAndEmpty(t *testing.T) {
	solo := buildRing([]string{"only:1"}, 16)
	for _, k := range testKeys(50) {
		if solo.owner(k) != "only:1" {
			t.Fatal("single-member ring must own everything")
		}
	}
	if got := solo.successors(7, 2); len(got) != 0 {
		t.Fatalf("single-member ring has no successors, got %v", got)
	}
	empty := buildRing(nil, 16)
	if empty.owner(7) != "" {
		t.Fatal("empty ring must own nothing")
	}
}
