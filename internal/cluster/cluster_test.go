package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// testNode wires a Node to a real loopback HTTP server whose address is also
// the node's advertise address, so Tick()-driven gossip works end to end
// without timers.
type testNode struct {
	n   *Node
	srv *httptest.Server
}

func startTestNode(t *testing.T, name string, seeds []string, tweak func(*Config)) *testNode {
	t.Helper()
	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	cfg := Config{
		Name:           name,
		Self:           srv.Listener.Addr().String(),
		Seeds:          seeds,
		HeartbeatEvery: 10 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux.HandleFunc("POST /api/v1/cluster/heartbeat", n.HandleHeartbeat)
	tn := &testNode{n: n, srv: srv}
	t.Cleanup(func() { srv.Close() })
	return tn
}

// Discovery is transitive: A seeds B, B seeds C — after a few synchronous
// gossip rounds all three know all three and agree on ownership.
func TestMembershipTransitiveDiscovery(t *testing.T) {
	a := startTestNode(t, "t", nil, nil)
	b := startTestNode(t, "t", []string{a.n.Self()}, nil)
	c := startTestNode(t, "t", []string{b.n.Self()}, nil)
	for i := 0; i < 4; i++ {
		a.n.Tick()
		b.n.Tick()
		c.n.Tick()
	}
	for _, tn := range []*testNode{a, b, c} {
		st := tn.n.Stats()
		if st.Alive != 3 {
			t.Fatalf("node %s sees %d alive, want 3 (members %+v)", tn.n.Self(), st.Alive, st.Members)
		}
		if st.RingMembers != 3 {
			t.Fatalf("node %s ring has %d members, want 3", tn.n.Self(), st.RingMembers)
		}
	}
	for _, k := range testKeys(200) {
		ao, _ := a.n.Owner(k)
		bo, _ := b.n.Owner(k)
		co, _ := c.n.Owner(k)
		if ao != bo || bo != co {
			t.Fatalf("ownership disagreement for %x: %q %q %q", k, ao, bo, co)
		}
	}
}

// Silence ages a member alive → suspect (still in the ring) → dead (out of
// the ring); a direct heartbeat from the member revives it.
func TestMembershipSuspectDeadRecover(t *testing.T) {
	a := startTestNode(t, "t", nil, func(c *Config) {
		c.SuspectAfter = 5 * time.Millisecond
		c.DeadAfter = 20 * time.Millisecond
	})
	b := startTestNode(t, "t", []string{a.n.Self()}, nil)
	b.n.Tick() // introduce B to A
	if st := a.n.Stats(); st.Alive != 2 {
		t.Fatalf("A sees %d alive, want 2", st.Alive)
	}

	// B goes silent: its listener closes so A's own heartbeats to it fail
	// instead of reviving it.
	b.srv.Close()
	time.Sleep(8 * time.Millisecond)
	a.n.Tick()
	if st := a.n.Stats(); st.Suspect != 1 {
		t.Fatalf("after silence A should suspect B: %+v", st.Members)
	}
	if st := a.n.Stats(); st.RingMembers != 2 {
		t.Fatal("suspect members must stay in the ring")
	}

	time.Sleep(25 * time.Millisecond)
	a.n.Tick()
	if st := a.n.Stats(); st.Dead != 1 || st.RingMembers != 1 {
		t.Fatalf("after DeadAfter B should be dead and out of the ring: %+v", a.n.Stats())
	}

	b.n.Tick() // direct contact revives
	if st := a.n.Stats(); st.Dead != 0 || st.RingMembers != 2 {
		t.Fatalf("direct heartbeat should revive B: %+v", a.n.Stats())
	}
}

// A node hearing a rumor of its own death refutes it by bumping its
// incarnation past the rumor's — the mechanism that lets a restarted node
// (incarnation reset to zero) override its lingering dead entry everywhere.
func TestSelfRefutation(t *testing.T) {
	a := startTestNode(t, "t", nil, nil)
	rumor := heartbeatMsg{
		Cluster: "t",
		From:    "gossiper:1",
		View:    []Member{{Addr: a.n.Self(), Incarnation: 3, State: StateDead}},
	}
	body, _ := json.Marshal(rumor)
	req := httptest.NewRequest("POST", "/api/v1/cluster/heartbeat", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	a.n.HandleHeartbeat(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("heartbeat rejected: %d %s", rec.Code, rec.Body)
	}
	st := a.n.Stats()
	if st.Incarnation != 4 || st.Refutations != 1 {
		t.Fatalf("want incarnation 4 after refuting dead@3, got %+v", st)
	}
	var reply heartbeatMsg
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	for _, m := range reply.View {
		if m.Addr == a.n.Self() && (m.State != StateAlive || m.Incarnation != 4) {
			t.Fatalf("reply view must carry the refuted self entry: %+v", m)
		}
	}
}

// Clusters are namespaces: a heartbeat naming a different cluster is 403 and
// merges nothing.
func TestClusterNameMismatch(t *testing.T) {
	a := startTestNode(t, "alpha", nil, nil)
	msg := heartbeatMsg{Cluster: "beta", From: "stranger:1",
		View: []Member{{Addr: "stranger:1", State: StateAlive}}}
	body, _ := json.Marshal(msg)
	req := httptest.NewRequest("POST", "/api/v1/cluster/heartbeat", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	a.n.HandleHeartbeat(rec, req)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("cross-cluster heartbeat got %d, want 403", rec.Code)
	}
	if st := a.n.Stats(); st.Alive != 1 {
		t.Fatalf("stranger must not be merged: %+v", st.Members)
	}
}

// Within one incarnation a rumor can only degrade; a higher incarnation wins
// outright in either direction.
func TestIncarnationMergeRules(t *testing.T) {
	a := startTestNode(t, "t", []string{"x:1"}, nil)
	send := func(view []Member) {
		body, _ := json.Marshal(heartbeatMsg{Cluster: "t", From: "y:1", View: view})
		req := httptest.NewRequest("POST", "/api/v1/cluster/heartbeat", bytes.NewReader(body))
		a.n.HandleHeartbeat(httptest.NewRecorder(), req)
	}
	stateOf := func(addr string) Member {
		for _, m := range a.n.Members() {
			if m.Addr == addr {
				return m
			}
		}
		t.Fatalf("no member %s", addr)
		return Member{}
	}

	send([]Member{{Addr: "x:1", Incarnation: 0, State: StateDead}})
	if m := stateOf("x:1"); m.State != StateDead {
		t.Fatalf("same-incarnation dead rumor must degrade: %+v", m)
	}
	// alive@0 does not resurrect dead@0...
	send([]Member{{Addr: "x:1", Incarnation: 0, State: StateAlive}})
	if m := stateOf("x:1"); m.State != StateDead {
		t.Fatalf("same-incarnation alive rumor must not resurrect: %+v", m)
	}
	// ...but alive@1 does.
	send([]Member{{Addr: "x:1", Incarnation: 1, State: StateAlive}})
	if m := stateOf("x:1"); m.State != StateAlive || m.Incarnation != 1 {
		t.Fatalf("higher incarnation must win: %+v", m)
	}
}
