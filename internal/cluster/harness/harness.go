// Package harness spins up an N-node in-process aggsimd cluster for tests:
// real HTTP listeners on loopback, real gossip membership, real forwarding,
// replication and work stealing — everything but separate processes. Nodes
// can be killed (HTTP torn down first, so peers see silence, then the server
// drained) and restarted on the same address with a fresh cache and a fresh
// incarnation, which is exactly the crash/recovery sequence the cluster
// smoke test must prove exactly-once across.
package harness

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"time"

	"pimdsm/internal/cluster"
	"pimdsm/internal/serve"
)

// Options configures every node in the harness cluster identically.
type Options struct {
	// N is the cluster size (default 3).
	N int
	// Replicas is the replication factor handed to each node (default 2).
	Replicas int
	// Heartbeat is the gossip period. Tests want it fast (default 25ms);
	// suspect/dead cutoffs scale from it inside internal/cluster.
	Heartbeat time.Duration
	// Workers and QueueLimit are per-node serve options (defaults 2 and 16).
	Workers    int
	QueueLimit int
	// Run overrides the per-node batch runner (nil = serial machine.Run).
	// The steal test injects a deliberately slow runner here so jobs pile
	// up in one node's queue while its peers sit idle.
	Run serve.RunBatchFunc
	// Log receives every node's structured log lines (nil = discard).
	Log *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.N <= 0 {
		o.N = 3
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 25 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 16
	}
	return o
}

// Node is one live cluster member: its serve.Server, its membership node and
// the address its HTTP API answers on.
type Node struct {
	Addr string
	Srv  *serve.Server
	Peer *cluster.Node

	stop func()
}

// Cluster is the harness: a fixed address slate (so restarts rejoin under
// the same identity) and the currently live nodes.
type Cluster struct {
	Name  string
	Addrs []string

	opt   Options
	nodes []*Node // nil entries are killed
}

// Start brings up an opt.N-node cluster named name. All listeners are bound
// before any node starts, so the full seed slate is known to every member
// from its first heartbeat.
func Start(name string, opt Options) (*Cluster, error) {
	opt = opt.withDefaults()
	c := &Cluster{Name: name, opt: opt, nodes: make([]*Node, opt.N)}

	lns := make([]net.Listener, opt.N)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		lns[i] = ln
		c.Addrs = append(c.Addrs, ln.Addr().String())
	}
	for i := range lns {
		n, err := c.startNode(i, lns[i])
		if err != nil {
			for _, ln := range lns[i:] {
				ln.Close()
			}
			c.Close()
			return nil, err
		}
		c.nodes[i] = n
	}
	return c, nil
}

func (c *Cluster) startNode(i int, ln net.Listener) (*Node, error) {
	srv, err := serve.New(serve.Options{
		Workers:    c.opt.Workers,
		QueueLimit: c.opt.QueueLimit,
		Run:        c.opt.Run,
		Log:        c.opt.Log,
	})
	if err != nil {
		return nil, err
	}
	peer, err := cluster.New(cluster.Config{
		Name:           c.Name,
		Self:           c.Addrs[i],
		Seeds:          c.Addrs,
		Replicas:       c.opt.Replicas,
		HeartbeatEvery: c.opt.Heartbeat,
		Log:            c.opt.Log,
	})
	if err != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		return nil, err
	}
	api := serve.NewAPI(srv, nil)
	closeHTTP := api.Serve(ln)
	// Serve before attaching: the first heartbeat may arrive (or be
	// answered) the moment the loop starts.
	srv.AttachCluster(peer)
	return &Node{Addr: c.Addrs[i], Srv: srv, Peer: peer, stop: closeHTTP}, nil
}

// Node returns member i, or nil while it is killed.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Live returns the currently running members.
func (c *Cluster) Live() []*Node {
	var out []*Node
	for _, n := range c.nodes {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

// Index maps an advertise address back to its slate position.
func (c *Cluster) Index(addr string) int {
	for i, a := range c.Addrs {
		if a == addr {
			return i
		}
	}
	return -1
}

// Kill takes member i down the way a crash looks to its peers: the HTTP
// listener closes first (heartbeats to it start failing immediately), then
// the server is drained and its goroutines reaped so the race detector sees
// a clean exit.
func (c *Cluster) Kill(i int) error {
	n := c.nodes[i]
	if n == nil {
		return fmt.Errorf("harness: node %d already killed", i)
	}
	n.stop()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	err := n.Srv.Shutdown(ctx)
	c.nodes[i] = nil
	return err
}

// Restart brings member i back on its original address with a fresh server
// (empty cache — recovery must come from replicas) and a fresh membership
// node at incarnation zero, which refutes its own death rumor on rejoin.
func (c *Cluster) Restart(i int) error {
	if c.nodes[i] != nil {
		return fmt.Errorf("harness: node %d still running", i)
	}
	ln, err := net.Listen("tcp", c.Addrs[i])
	if err != nil {
		return err
	}
	n, err := c.startNode(i, ln)
	if err != nil {
		ln.Close()
		return err
	}
	c.nodes[i] = n
	return nil
}

// Close tears down every live member.
func (c *Cluster) Close() {
	for i, n := range c.nodes {
		if n != nil {
			c.Kill(i)
		}
	}
}

// WaitAlive blocks until every live member counts want alive members (self
// included), or the timeout expires.
func (c *Cluster) WaitAlive(want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, n := range c.Live() {
			if n.Peer.Stats().Alive != want {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			var views []string
			for _, n := range c.Live() {
				st := n.Peer.Stats()
				views = append(views, fmt.Sprintf("%s: alive=%d suspect=%d dead=%d",
					n.Addr, st.Alive, st.Suspect, st.Dead))
			}
			return fmt.Errorf("harness: membership did not converge to %d alive: %v", want, views)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Wait polls cond until it returns true or the timeout expires.
func Wait(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// SimulatedRuns sums the engine-run counter across live members — the
// cluster-wide exactly-once ledger.
func (c *Cluster) SimulatedRuns() uint64 {
	var sum uint64
	for _, n := range c.Live() {
		sum += n.Srv.Stats().SimulatedRuns
	}
	return sum
}

// ClusterStats returns each live member's cluster-stats section keyed by
// address (nil entries never appear; killed members drop out of the sums).
func (c *Cluster) ClusterStats() map[string]*serve.ClusterStats {
	out := make(map[string]*serve.ClusterStats)
	for _, n := range c.Live() {
		if cs := n.Srv.Stats().Cluster; cs != nil {
			out[n.Addr] = cs
		}
	}
	return out
}
