package harness

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"pimdsm"
	"pimdsm/internal/machine"
	"pimdsm/internal/serve"
)

// smokeBatch is the paper's Figure 6 configuration set at test scale — the
// same batch the single-node smoke test simulates.
func smokeBatch(t *testing.T) []serve.ConfigSpec {
	t.Helper()
	batch := pimdsm.Figure6Specs("fft", 4, 0.02)
	if len(batch) < 3 {
		t.Fatalf("Figure6Specs returned %d configs", len(batch))
	}
	return batch
}

func batchKeys(t *testing.T, batch []serve.ConfigSpec, seed uint64) []uint64 {
	t.Helper()
	seen := make(map[uint64]bool)
	keys := make([]uint64, len(batch))
	for i, cs := range batch {
		keys[i] = cs.Key(seed)
		if seen[keys[i]] {
			t.Fatalf("batch keys not distinct: %016x repeats", keys[i])
		}
		seen[keys[i]] = true
	}
	return keys
}

// submitWait pushes specs through the front door at addr and returns the
// per-config result bytes.
func submitWait(t *testing.T, addr, name string, specs []serve.ConfigSpec) []string {
	t.Helper()
	cl := serve.NewClient(addr)
	st, err := cl.Submit(serve.JobSpec{Name: name, Configs: specs})
	if err != nil {
		t.Fatalf("%s: submit: %v", name, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err = cl.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("%s: wait: %v", name, err)
	}
	if st.State != serve.JobDone {
		t.Fatalf("%s: job %s finished %s (%s), want done", name, st.ID, st.State, st.Error)
	}
	_, raw, err := cl.Result(st.ID)
	if err != nil {
		t.Fatalf("%s: result: %v", name, err)
	}
	out := make([]string, len(raw))
	for i := range raw {
		out[i] = string(raw[i])
	}
	return out
}

// singleNode starts a plain cluster-less daemon — the byte-identity
// reference every cluster answer must match.
func singleNode(t *testing.T) string {
	t.Helper()
	srv, err := serve.New(serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	closeHTTP := serve.NewAPI(srv, nil).Serve(ln)
	t.Cleanup(func() {
		closeHTTP()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

func assertSameResults(t *testing.T, phase string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", phase, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: config %d result bytes differ from single-node reference:\n got %s\nwant %s",
				phase, i, got[i], want[i])
		}
	}
}

// TestClusterSmoke is the ISSUE's acceptance path: a 3-node cluster serves
// the Figure 6 batch byte-identically through every front door with
// cluster-wide exactly-once simulation, survives the hot-key owner being
// killed mid-life, and recovers the restarted owner from replicas without a
// single re-simulation.
func TestClusterSmoke(t *testing.T) {
	c, err := Start("smoke", Options{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitAlive(3, 15*time.Second); err != nil {
		t.Fatal(err)
	}

	batch := smokeBatch(t)
	keys := batchKeys(t, batch, 0)
	ref := submitWait(t, singleNode(t), "reference", batch)

	// Phase 1: the same batch through every front door. Every door answers
	// with the single-node bytes, and the cluster as a whole simulated each
	// distinct key exactly once no matter how many doors it entered.
	for i, addr := range c.Addrs {
		got := submitWait(t, addr, fmt.Sprintf("door-%d", i), batch)
		assertSameResults(t, fmt.Sprintf("door %d", i), ref, got)
	}
	if got := c.SimulatedRuns(); got != uint64(len(keys)) {
		t.Fatalf("exactly-once: %d engine runs across the cluster for %d distinct keys", got, len(keys))
	}

	// Phase 2: replication settles — with N=3 and R=2 every node ends up
	// holding every key, and the peer counters agree across the cluster
	// (every forward served was sent by someone, every replica received was
	// pushed by someone, nothing failed).
	if !Wait(15*time.Second, func() bool {
		for _, n := range c.Live() {
			for _, k := range keys {
				if !n.Srv.Cache().Contains(k) {
					return false
				}
			}
		}
		return true
	}) {
		t.Fatal("replication did not settle: some node is missing a key")
	}
	if !Wait(10*time.Second, func() bool {
		var fSent, fServed, rSent, rRecv, failed uint64
		for _, cs := range c.ClusterStats() {
			fSent += cs.ForwardsSent
			fServed += cs.ForwardsServed
			rSent += cs.ReplicasSent
			rRecv += cs.ReplicasReceived
			failed += cs.ForwardsFailed + cs.ReplicasFailed + cs.StealsFailed + cs.StealsRequeued
		}
		return failed == 0 && fSent == fServed && rSent == rRecv && rSent > 0
	}) {
		t.Fatalf("cluster counters never settled consistent: %+v", c.ClusterStats())
	}

	// Phase 3: kill the owner of the batch's first key. The survivors keep
	// answering from their replicas — same bytes, zero new simulations.
	ownerAddr, self := c.Node(0).Peer.Owner(keys[0])
	if self {
		ownerAddr = c.Addrs[0]
	}
	victim := c.Index(ownerAddr)
	if victim < 0 {
		t.Fatalf("owner %s of key %016x is not a cluster member", ownerAddr, keys[0])
	}
	survivor := c.Addrs[(victim+1)%len(c.Addrs)]
	var survivorRuns uint64
	for _, n := range c.Live() {
		if n.Addr != ownerAddr {
			survivorRuns += n.Srv.Stats().SimulatedRuns
		}
	}
	if err := c.Kill(victim); err != nil {
		t.Fatalf("kill node %d: %v", victim, err)
	}
	if err := c.WaitAlive(2, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	got := submitWait(t, survivor, "after-kill", batch)
	assertSameResults(t, "after kill", ref, got)
	if runs := c.SimulatedRuns(); runs != survivorRuns {
		t.Fatalf("kill re-simulated: survivors ran %d engine runs, had %d before", runs, survivorRuns)
	}

	// Phase 4: restart the victim on the same address — fresh cache, fresh
	// incarnation. It rejoins, refutes its death rumor, and serves the batch
	// through its own front door by recovering owned keys from the replicas
	// its successors kept: byte-identical and still zero new simulations.
	if err := c.Restart(victim); err != nil {
		t.Fatalf("restart node %d: %v", victim, err)
	}
	if err := c.WaitAlive(3, 15*time.Second); err != nil {
		t.Fatal(err)
	}
	preRestart := c.SimulatedRuns()
	got = submitWait(t, c.Addrs[victim], "after-restart", batch)
	assertSameResults(t, "after restart", ref, got)
	if runs := c.SimulatedRuns(); runs != preRestart {
		t.Fatalf("restart re-simulated: %d engine runs, had %d", runs, preRestart)
	}
	rcs := c.Node(victim).Srv.Stats().Cluster
	if rcs == nil || rcs.Recoveries == 0 {
		t.Fatalf("restarted owner answered its own keys without replica recovery: %+v", rcs)
	}

	// The restarted node's metrics endpoint exports the cluster families.
	resp, err := http.Get("http://" + c.Addrs[victim] + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"aggsimd_cluster_members_alive 3",
		"aggsimd_cluster_recoveries_total",
		"aggsimd_cluster_forwards_sent_total",
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("/metrics.prom missing %q", want)
		}
	}
}

// TestClusterWorkStealing parks a deliberately slow single-worker node
// behind a pile of queued jobs and checks its idle peers steal, execute and
// report them back — every distinct key still simulated exactly once.
func TestClusterWorkStealing(t *testing.T) {
	slow := func(cfgs []machine.Config, onResult func(int, *machine.Result)) ([]*machine.Result, error) {
		time.Sleep(150 * time.Millisecond)
		out := make([]*machine.Result, len(cfgs))
		for i := range cfgs {
			r, err := machine.Run(cfgs[i])
			if err != nil {
				return nil, err
			}
			out[i] = r
			if onResult != nil {
				onResult(i, r)
			}
		}
		return out, nil
	}
	c, err := Start("steal", Options{N: 3, Workers: 1, Run: slow})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitAlive(3, 15*time.Second); err != nil {
		t.Fatal(err)
	}

	// Two seeds double the distinct key set: every job is one config, every
	// key unique, all submitted to node 0 directly (no ownership redirect),
	// so they pile up in its queue while nodes 1 and 2 sit idle.
	batch := smokeBatch(t)
	victim := c.Node(0)
	var jobs []*serve.Job
	var total int
	for seed := uint64(1); seed <= 2; seed++ {
		for i, cs := range batch {
			st, err := victim.Srv.Submit(serve.JobSpec{
				Name:    fmt.Sprintf("steal-%d-%d", seed, i),
				Seed:    seed,
				Configs: []serve.ConfigSpec{cs},
			})
			if err != nil {
				t.Fatalf("submit seed %d config %d: %v", seed, i, err)
			}
			j, ok := victim.Srv.Job(st.ID)
			if !ok {
				t.Fatalf("job %s vanished after submit", st.ID)
			}
			jobs = append(jobs, j)
			total++
		}
	}

	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("job did not finish; cluster stats %+v", c.ClusterStats())
		}
	}
	for _, j := range jobs {
		if _, raw, ok := victim.Srv.Results(j); !ok || len(raw) != 1 || len(raw[0]) == 0 {
			t.Fatalf("a stolen or local job finished without a result (ok=%v)", ok)
		}
	}

	if got := c.SimulatedRuns(); got != uint64(total) {
		t.Fatalf("exactly-once under stealing: %d engine runs for %d distinct keys", got, total)
	}
	// Steal accounting balances at quiescence: every loan was taken, every
	// taken loan completed, nothing timed out back into the queue.
	if !Wait(10*time.Second, func() bool {
		var given, taken, completed, failed, requeued uint64
		for _, cs := range c.ClusterStats() {
			given += cs.StealsGiven
			taken += cs.StealsTaken
			completed += cs.StealsCompleted
			failed += cs.StealsFailed
			requeued += cs.StealsRequeued
		}
		return given >= 1 && given == taken && taken == completed && failed == 0 && requeued == 0
	}) {
		t.Fatalf("steal counters never balanced: %+v", c.ClusterStats())
	}
}
