package cluster

import (
	"sort"

	"pimdsm/internal/hashmap"
)

// ring is the consistent-hash partition of the 64-bit content-address space.
// Every member contributes vnodes points, each at Digest(addr, i); a key is
// owned by the member whose point is the first at or clockwise after the key
// (wrapping at 2^64). Because job keys are already hashmap.Digest outputs
// (well mixed — see keydist_test.go in serve) and vnode points go through the
// same mixer, ownership shares converge to ~1/N per member with variance
// shrinking as vnodes grows.
type ring struct {
	points  []ringPoint // sorted by hash, ties broken by addr
	members []string    // sorted, for introspection
}

type ringPoint struct {
	hash uint64
	addr string
}

// vnodePoint places vnode i of member addr on the ring.
func vnodePoint(addr string, i int) uint64 {
	var d hashmap.Digest
	d.WriteString(addr)
	d.WriteUint64(uint64(i))
	return d.Sum64()
}

// buildRing constructs the ring for a member set. Deterministic: every node
// with the same view builds the identical ring, which is what makes remote
// ownership decisions agree without coordination.
func buildRing(members []string, vnodes int) *ring {
	r := &ring{members: append([]string(nil), members...)}
	sort.Strings(r.members)
	r.points = make([]ringPoint, 0, len(r.members)*vnodes)
	for _, m := range r.members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: vnodePoint(m, i), addr: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// search returns the index of the first point at or after key (wrapping).
func (r *ring) search(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// owner returns the member owning key ("" on an empty ring).
func (r *ring) owner(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].addr
}

// successors returns up to n distinct members clockwise after key's owner,
// excluding the owner itself — the replica set for the key.
func (r *ring) successors(key uint64, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	start := r.search(key)
	seen := map[string]bool{r.points[start].addr: true}
	var out []string
	for j := 1; j <= len(r.points) && len(out) < n; j++ {
		p := r.points[(start+j)%len(r.points)]
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	return out
}
