// Package cluster is the aggsimd peer layer: N daemons form a named cluster
// from a static seed list, maintain membership with lightweight gossip-style
// heartbeats (alive → suspect → dead on silence, refuted by monotonic
// incarnation numbers), and partition the content-addressed key space with a
// consistent-hash ring of virtual nodes over the frozen 64-bit
// hashmap.Digest job keys. The package owns membership and ownership only;
// the serve package builds forwarding, work stealing and replication on top
// of it. Membership changes move where a result is computed and cached,
// never what its bytes are.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"pimdsm/internal/obs/svclog"
)

// State is a member's health as seen by one node.
type State string

// Membership states. A member is alive while heartbeats arrive, suspect
// after SuspectAfter of silence (still in the ring — transient stalls must
// not reshuffle ownership), and dead after DeadAfter (out of the ring until
// it refutes with a higher incarnation).
const (
	StateAlive   State = "alive"
	StateSuspect State = "suspect"
	StateDead    State = "dead"
)

// worse orders states by badness for same-incarnation merges: a rumor can
// only degrade a member within one incarnation; recovery requires either a
// direct heartbeat from the member or a higher incarnation.
func worse(a, b State) bool {
	rank := map[State]int{StateAlive: 0, StateSuspect: 1, StateDead: 2}
	return rank[a] > rank[b]
}

// Member is the gossiped view entry for one node: its advertise address (the
// member identity), the incarnation it claims, and the state the sender
// believes it is in.
type Member struct {
	Addr        string `json:"addr"`
	Incarnation uint64 `json:"incarnation"`
	State       State  `json:"state"`
}

// memberState adds the local evidence (when we last heard from or about the
// member directly) to the gossiped view.
type memberState struct {
	Member
	lastSeen time.Time
}

// Config configures a Node.
type Config struct {
	// Name is the cluster identity; heartbeats across differently named
	// clusters are rejected, so two clusters sharing a network segment (or a
	// stale peer list) cannot merge by accident.
	Name string
	// Self is this node's advertise address (host:port reachable by peers).
	// It is the node's member identity on the ring.
	Self string
	// Seeds are the static bootstrap peers (Self may be listed; it is
	// skipped). Membership beyond the seeds spreads by view gossip.
	Seeds []string
	// Replicas is how many successors receive a copy of each completed hot
	// result (default 2): owner + Replicas nodes can serve the key after the
	// owner dies.
	Replicas int
	// VNodes is each member's virtual-node count on the ring (default 64).
	VNodes int
	// HeartbeatEvery is the gossip period (default 500ms).
	HeartbeatEvery time.Duration
	// SuspectAfter marks a silent member suspect (default 4 heartbeats);
	// DeadAfter removes it from the ring (default 10 heartbeats).
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// HTTP sends the heartbeats (default: a client with a short timeout
	// derived from HeartbeatEvery, so one stuck peer cannot stall the loop).
	HTTP *http.Client
	// Log receives membership transitions (nil = discard).
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 4 * c.HeartbeatEvery
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * c.HeartbeatEvery
	}
	if c.HTTP == nil {
		to := 3 * c.HeartbeatEvery
		if to > 2*time.Second {
			to = 2 * time.Second
		}
		c.HTTP = &http.Client{Timeout: to}
	}
	if c.Log == nil {
		c.Log = svclog.Nop()
	}
	return c
}

// Stats is a membership snapshot for /api/v1/stats and /metrics.prom.
type Stats struct {
	Name        string `json:"name"`
	Self        string `json:"self"`
	Incarnation uint64 `json:"incarnation"`

	Alive   int `json:"alive"`
	Suspect int `json:"suspect"`
	Dead    int `json:"dead"`

	RingMembers int    `json:"ring_members"`
	RingVersion uint64 `json:"ring_version"`

	HeartbeatsSent     uint64 `json:"heartbeats_sent"`
	HeartbeatsReceived uint64 `json:"heartbeats_received"`
	HeartbeatFailures  uint64 `json:"heartbeat_failures"`
	Refutations        uint64 `json:"refutations"`

	Members []Member `json:"members"`
}

// Node is one cluster member: the local membership table, the ring derived
// from it, and the heartbeat loop.
type Node struct {
	cfg Config

	mu          sync.Mutex
	members     map[string]*memberState
	incarnation uint64
	r           *ring
	ringDirty   bool
	ringVersion uint64
	started     bool
	stopped     bool

	hbSent, hbRecv, hbFail, refutes uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a node from cfg. The node knows its seeds immediately (granted
// the benefit of the doubt as alive until DeadAfter passes without contact)
// but sends nothing until Start.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Name == "" {
		return nil, errors.New("cluster: empty cluster name")
	}
	if cfg.Self == "" {
		return nil, errors.New("cluster: empty advertise address")
	}
	n := &Node{
		cfg:     cfg,
		members: make(map[string]*memberState),
		stop:    make(chan struct{}),
	}
	now := time.Now()
	n.members[cfg.Self] = &memberState{
		Member:   Member{Addr: cfg.Self, State: StateAlive},
		lastSeen: now,
	}
	for _, s := range cfg.Seeds {
		if s == "" || s == cfg.Self {
			continue
		}
		n.members[s] = &memberState{
			Member:   Member{Addr: s, State: StateAlive},
			lastSeen: now,
		}
	}
	n.ringDirty = true
	return n, nil
}

// Name returns the cluster name.
func (n *Node) Name() string { return n.cfg.Name }

// Self returns this node's advertise address.
func (n *Node) Self() string { return n.cfg.Self }

// Replicas returns the configured replication factor.
func (n *Node) Replicas() int { return n.cfg.Replicas }

// Start launches the heartbeat loop. Idempotent.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started || n.stopped {
		n.mu.Unlock()
		return
	}
	n.started = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.Tick() // first round immediately, so a restart rejoins fast
		t := time.NewTicker(n.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-n.stop:
				return
			case <-t.C:
				n.Tick()
			}
		}
	}()
}

// Stop halts the heartbeat loop and waits for it. Idempotent.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
}

// ringLocked rebuilds the ring if the membership changed. The ring spans
// alive and suspect members: a suspect node keeps its keys until it is
// declared dead, so a transient stall does not reshuffle ownership (callers
// fall back to successors when a forward to a suspect owner fails).
func (n *Node) ringLocked() *ring {
	if n.ringDirty || n.r == nil {
		var members []string
		for addr, st := range n.members {
			if st.State != StateDead {
				members = append(members, addr)
			}
		}
		n.r = buildRing(members, n.cfg.VNodes)
		n.ringDirty = false
		n.ringVersion++
	}
	return n.r
}

// Owner returns the member owning key and whether it is this node. An empty
// ring (everyone else dead) owns everything locally.
func (n *Node) Owner(key uint64) (addr string, self bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	addr = n.ringLocked().owner(key)
	if addr == "" {
		addr = n.cfg.Self
	}
	return addr, addr == n.cfg.Self
}

// Successors returns up to r distinct members after key's owner — the
// replica set, and the fallback order when the owner is unreachable.
func (n *Node) Successors(key uint64, r int) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ringLocked().successors(key, r)
}

// AlivePeers returns every alive member except this node.
func (n *Node) AlivePeers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	for addr, st := range n.members {
		if addr != n.cfg.Self && st.State == StateAlive {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// Members snapshots the membership table sorted by address.
func (n *Node) Members() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Member, 0, len(n.members))
	for _, st := range n.members {
		out = append(out, st.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Stats snapshots the node's counters and membership.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := Stats{
		Name:               n.cfg.Name,
		Self:               n.cfg.Self,
		Incarnation:        n.incarnation,
		RingVersion:        n.ringVersion,
		HeartbeatsSent:     n.hbSent,
		HeartbeatsReceived: n.hbRecv,
		HeartbeatFailures:  n.hbFail,
		Refutations:        n.refutes,
	}
	st.RingMembers = len(n.ringLocked().members)
	for _, ms := range n.members {
		switch ms.State {
		case StateAlive:
			st.Alive++
		case StateSuspect:
			st.Suspect++
		case StateDead:
			st.Dead++
		}
		st.Members = append(st.Members, ms.Member)
	}
	sort.Slice(st.Members, func(i, j int) bool { return st.Members[i].Addr < st.Members[j].Addr })
	return st
}

// heartbeatMsg is the gossip wire format: the sender's identity and its full
// membership view (small clusters; no need for partial views).
type heartbeatMsg struct {
	Cluster string   `json:"cluster"`
	From    string   `json:"from"`
	View    []Member `json:"view"`
}

// viewLocked copies the membership table for gossip, with this node's own
// entry always alive at the current incarnation.
func (n *Node) viewLocked() []Member {
	out := make([]Member, 0, len(n.members))
	for _, ms := range n.members {
		m := ms.Member
		if m.Addr == n.cfg.Self {
			m.Incarnation = n.incarnation
			m.State = StateAlive
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Tick runs one gossip round: sweep timeouts, then exchange views with every
// known peer (dead ones included — that is how a restarted node is noticed).
// Exported so tests can drive membership deterministically without timers.
func (n *Node) Tick() {
	n.mu.Lock()
	n.sweepLocked(time.Now())
	msg := heartbeatMsg{Cluster: n.cfg.Name, From: n.cfg.Self, View: n.viewLocked()}
	var targets []string
	for addr := range n.members {
		if addr != n.cfg.Self {
			targets = append(targets, addr)
		}
	}
	n.mu.Unlock()
	// Random order: no node is systematically last to hear news.
	rand.Shuffle(len(targets), func(i, j int) { targets[i], targets[j] = targets[j], targets[i] })
	for _, t := range targets {
		n.sendHeartbeat(t, msg)
	}
}

// sweepLocked ages silent members: alive → suspect → dead.
func (n *Node) sweepLocked(now time.Time) {
	for addr, ms := range n.members {
		if addr == n.cfg.Self {
			ms.lastSeen = now
			continue
		}
		silent := now.Sub(ms.lastSeen)
		switch {
		case ms.State == StateAlive && silent > n.cfg.SuspectAfter:
			ms.State = StateSuspect
			n.cfg.Log.Warn("cluster_member_suspect", "member", addr, "silent", silent.String())
		case ms.State != StateDead && silent > n.cfg.DeadAfter:
			ms.State = StateDead
			n.ringDirty = true
			n.cfg.Log.Warn("cluster_member_dead", "member", addr, "silent", silent.String())
		}
	}
}

// sendHeartbeat exchanges views with one peer and merges the response.
func (n *Node) sendHeartbeat(peer string, msg heartbeatMsg) {
	body, err := json.Marshal(msg)
	if err != nil {
		return
	}
	resp, err := n.cfg.HTTP.Post("http://"+peer+"/api/v1/cluster/heartbeat",
		"application/json", bytes.NewReader(body))
	if err != nil {
		n.mu.Lock()
		n.hbFail++
		n.mu.Unlock()
		return
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		n.mu.Lock()
		n.hbFail++
		n.mu.Unlock()
		return
	}
	var reply heartbeatMsg
	if err := json.Unmarshal(data, &reply); err != nil || reply.Cluster != n.cfg.Name {
		n.mu.Lock()
		n.hbFail++
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	n.hbSent++
	n.mergeLocked(reply.From, reply.View)
	n.mu.Unlock()
}

// HandleHeartbeat is the HTTP endpoint peers POST their views to; it merges
// the sender's view and replies with ours. A cluster-name mismatch is a 403:
// differently named clusters never exchange state.
func (n *Node) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var msg heartbeatMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&msg); err != nil {
		http.Error(w, "bad heartbeat: "+err.Error(), http.StatusBadRequest)
		return
	}
	if msg.Cluster != n.cfg.Name {
		http.Error(w, fmt.Sprintf("cluster name mismatch: got %q, this is %q", msg.Cluster, n.cfg.Name),
			http.StatusForbidden)
		return
	}
	n.mu.Lock()
	n.hbRecv++
	n.mergeLocked(msg.From, msg.View)
	reply := heartbeatMsg{Cluster: n.cfg.Name, From: n.cfg.Self, View: n.viewLocked()}
	n.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}

// mergeLocked folds a received view into the membership table. Rules, in
// order of precedence:
//
//   - Our own entry: a rumor that we are suspect/dead at an incarnation ≥
//     ours is refuted by bumping our incarnation past it (self-refutation —
//     this is what lets a restarted node, whose incarnation reset to zero,
//     override its lingering "dead" entry everywhere).
//   - The sender itself: a direct heartbeat is proof of life that overrides
//     any rumor, whatever the incarnations say.
//   - Anyone else: higher incarnation wins outright; within an incarnation a
//     state can only get worse (alive < suspect < dead).
func (n *Node) mergeLocked(from string, view []Member) {
	now := time.Now()
	for _, m := range view {
		if m.Addr == "" {
			continue
		}
		if m.Addr == n.cfg.Self {
			if m.State != StateAlive && m.Incarnation >= n.incarnation {
				n.incarnation = m.Incarnation + 1
				n.refutes++
				n.cfg.Log.Info("cluster_self_refuted", "rumored", string(m.State),
					"incarnation", n.incarnation)
			}
			continue
		}
		ms, known := n.members[m.Addr]
		if !known {
			ms = &memberState{Member: m}
			if m.State == StateAlive {
				ms.lastSeen = now
			}
			n.members[m.Addr] = ms
			n.ringDirty = true
			n.cfg.Log.Info("cluster_member_discovered", "member", m.Addr, "state", string(m.State))
			continue
		}
		if m.Addr == from {
			if ms.Incarnation < m.Incarnation {
				ms.Incarnation = m.Incarnation
			}
			if ms.State != StateAlive {
				n.ringDirty = true
				n.cfg.Log.Info("cluster_member_recovered", "member", m.Addr)
			}
			ms.State = StateAlive
			ms.lastSeen = now
			continue
		}
		switch {
		case m.Incarnation > ms.Incarnation:
			if ms.State != m.State {
				n.ringDirty = true
			}
			ms.Incarnation = m.Incarnation
			ms.State = m.State
			if m.State == StateAlive {
				ms.lastSeen = now
			}
		case m.Incarnation == ms.Incarnation && worse(m.State, ms.State):
			ms.State = m.State
			n.ringDirty = true
		}
	}
	// A heartbeat from an unlisted sender introduces it.
	if from != "" && from != n.cfg.Self {
		if ms, known := n.members[from]; !known {
			n.members[from] = &memberState{
				Member:   Member{Addr: from, State: StateAlive},
				lastSeen: now,
			}
			n.ringDirty = true
		} else {
			if ms.State != StateAlive {
				n.ringDirty = true
			}
			ms.State = StateAlive
			ms.lastSeen = now
		}
	}
}
