package machine

import (
	"reflect"
	"testing"

	"pimdsm/internal/proto"
	"pimdsm/internal/workload"
)

func smallCfg(arch Arch, app string) Config {
	return Config{
		Arch:     arch,
		App:      workload.Spec{Name: app, Scale: 0.05},
		Threads:  4,
		Pressure: 0.75,
		DRatio:   1,
	}
}

func TestRunAllArchesSmoke(t *testing.T) {
	for _, arch := range []Arch{AGG, NUMA, COMA} {
		for _, app := range []string{"fft", "ocean"} {
			res, err := Run(smallCfg(arch, app))
			if err != nil {
				t.Fatalf("%s/%s: %v", arch, app, err)
			}
			if res.Breakdown.Exec == 0 {
				t.Fatalf("%s/%s: zero execution time", arch, app)
			}
			if res.Breakdown.Memory+res.Breakdown.Processor != res.Breakdown.Exec {
				t.Fatalf("%s/%s: breakdown doesn't add up: %+v", arch, app, res.Breakdown)
			}
			if res.Machine.Reads() == 0 {
				t.Fatalf("%s/%s: no reads recorded", arch, app)
			}
		}
	}
}

func TestRunAllAppsOnAGG(t *testing.T) {
	apps := append(workload.Names(), "dbase-opt")
	for _, app := range apps {
		res, err := Run(smallCfg(AGG, app))
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if res.Breakdown.Exec == 0 {
			t.Fatalf("%s: zero exec time", app)
		}
	}
}

func TestSizeValidation(t *testing.T) {
	if _, err := Size(Config{Arch: AGG, Threads: 0, Pressure: 0.5}, 1<<20); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := Size(Config{Arch: AGG, Threads: 4, Pressure: 0}, 1<<20); err == nil {
		t.Error("zero pressure accepted")
	}
	if _, err := Size(Config{Arch: "vax", Threads: 4, Pressure: 0.5}, 1<<20); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestSizingInvariants(t *testing.T) {
	fp := uint64(8 << 20)
	// AGG: total D memory constant across D-node counts.
	base, err := Size(Config{Arch: AGG, Threads: 32, Pressure: 0.75, DRatio: 1}, fp)
	if err != nil {
		t.Fatal(err)
	}
	quarter, err := Size(Config{Arch: AGG, Threads: 32, Pressure: 0.75, DRatio: 4}, fp)
	if err != nil {
		t.Fatal(err)
	}
	if base.DNodes != 32 || quarter.DNodes != 8 {
		t.Fatalf("D-node counts %d/%d", base.DNodes, quarter.DNodes)
	}
	baseTotal, quarterTotal := base.DMemLines*32, quarter.DMemLines*8
	diff := baseTotal - quarterTotal
	if diff < 0 {
		diff = -diff
	}
	if diff > 32 { // integer rounding of per-node capacity only
		t.Fatalf("total D memory changed: %d vs %d", baseTotal, quarterTotal)
	}
	// NUMA per-node memory is twice AGG's per-P-node memory (Figure 5).
	n, err := Size(Config{Arch: NUMA, Threads: 32, Pressure: 0.75}, fp)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(n.PMemBytes) / float64(base.PMemBytes)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("NUMA/AGG per-node memory ratio = %v, want ≈2", ratio)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(smallCfg(AGG, "fft"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallCfg(AGG, "fft"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Breakdown != b.Breakdown {
		t.Fatalf("nondeterministic: %+v vs %+v", a.Breakdown, b.Breakdown)
	}
	if a.Machine.Reads() != b.Machine.Reads() {
		t.Fatal("nondeterministic read counts")
	}
}

func TestMeasurementExcludesWarmup(t *testing.T) {
	res, err := Run(smallCfg(AGG, "ocean"))
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up is all stores; the measured region must contain loads and its
	// exec time must be positive but below the total simulated time.
	if res.Machine.Reads() == 0 {
		t.Fatal("no measured reads")
	}
	if res.PhaseEnd[workload.PhaseMeasured] != 0 {
		t.Fatalf("PhaseMeasured end = %d, want 0 (measurement origin)", res.PhaseEnd[workload.PhaseMeasured])
	}
}

func TestCensusPopulatedForAGG(t *testing.T) {
	res, err := Run(smallCfg(AGG, "radix"))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Census
	if c.SlotCap == 0 || c.DirtyInP+c.SharedInP+c.DNodeOnly == 0 {
		t.Fatalf("census empty: %+v", c)
	}
}

func TestDbaseOptUsesScans(t *testing.T) {
	res, err := Run(smallCfg(AGG, "dbase-opt"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.Scans == 0 {
		t.Fatal("no scans recorded on dbase-opt")
	}
}

func TestLatencyClassesPopulated(t *testing.T) {
	res, err := Run(smallCfg(AGG, "fft"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.ReadCount[proto.LatL1]+res.Machine.ReadCount[proto.LatL2] == 0 {
		t.Fatal("no SRAM cache hits")
	}
	if res.Machine.ReadCount[proto.Lat2Hop]+res.Machine.ReadCount[proto.Lat3Hop] == 0 {
		t.Fatal("no remote reads in FFT transpose")
	}
}

// TestShardsSerialEquivalence pins the Config.Shards contract: the coherence
// path has zero protocol lookahead, so the machine core runs serially at any
// shard count and results must be bit-identical across all of them — Shards
// is recorded provenance, never a result-changing knob.
func TestShardsSerialEquivalence(t *testing.T) {
	for _, arch := range []Arch{AGG, NUMA, COMA} {
		base := smallCfg(arch, "fft")
		ref, err := Run(base)
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		if ref.Shards != 1 {
			t.Fatalf("%s: zero Shards not normalized to 1: %d", arch, ref.Shards)
		}
		for _, k := range []int{2, 8} {
			cfg := base
			cfg.Shards = k
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", arch, k, err)
			}
			if res.Shards != k {
				t.Fatalf("%s: Shards=%d not recorded: %d", arch, k, res.Shards)
			}
			res.Shards = ref.Shards
			if !reflect.DeepEqual(res, ref) {
				t.Errorf("%s: shards=%d changed results:\n%+v\nvs\n%+v", arch, k, res, ref)
			}
		}
	}
	bad := smallCfg(AGG, "fft")
	bad.Shards = -1
	if _, err := Run(bad); err == nil {
		t.Error("negative shard count accepted")
	}
}
