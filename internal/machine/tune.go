package machine

import (
	"fmt"

	"pimdsm/internal/workload"
)

// TuneResult reports the §2.3 static-tuning procedure: "we can execute the
// application for the first time with a wasteful number of D-nodes and
// record the D-node processor utilization. The recorded utilization is used
// as a hint to tune the number of P- and D-nodes requested in subsequent
// runs."
type TuneResult struct {
	// Profile is the wasteful profiling run (1/1 ratio).
	Profile *Result
	// Utilization is the mean D-node protocol-processor utilization during
	// the profiling run (busy cycles / (D-nodes × execution time)).
	Utilization float64
	// SuggestedD is the D-node count the hint recommends for the next run.
	SuggestedD int
}

// TuneDRatio profiles an application on a wasteful 1/1 AGG machine and
// suggests a D-node count sized so the surviving D-nodes would run at
// roughly the target utilization (the paper's procedure; targetUtil ~0.5
// leaves headroom for burstiness; 0 means 0.5).
func TuneDRatio(app workload.Spec, pressure float64, threads int, targetUtil float64) (*TuneResult, error) {
	if targetUtil == 0 {
		targetUtil = 0.5
	}
	if targetUtil < 0 || targetUtil > 1 {
		return nil, fmt.Errorf("machine: target utilization %v outside (0,1]", targetUtil)
	}
	res, err := Run(Config{Arch: AGG, App: app, Threads: threads, Pressure: pressure, DRatio: 1})
	if err != nil {
		return nil, err
	}
	util := float64(res.DProcBusy) / (float64(res.DNodes) * float64(res.Breakdown.Exec))
	suggested := int(float64(res.DNodes)*util/targetUtil + 0.999)
	if suggested < 1 {
		suggested = 1
	}
	if suggested > threads {
		suggested = threads
	}
	return &TuneResult{Profile: res, Utilization: util, SuggestedD: suggested}, nil
}

// SplitPoint is one P&D division of a fixed machine (Figure 4's -45° line).
type SplitPoint struct {
	P, D   int
	Result *Result
}

// OptimalSplit evaluates every way of dividing total nodes between P and D
// (P from minP up, D at least 1) for one application at the Figure 9 sizing,
// returning the evaluated points and the index of the fastest — the paper's
// Figure 4 design-space exploration for one machine size.
func OptimalSplit(app workload.Spec, pressure float64, total, minP int, candidates []int) ([]SplitPoint, int, error) {
	perNode, dTotal, err := BaselineSizing(app, pressure)
	if err != nil {
		return nil, 0, err
	}
	if len(candidates) == 0 {
		for p := minP; p < total; p *= 2 {
			candidates = append(candidates, p)
		}
	}
	var pts []SplitPoint
	best := -1
	for _, p := range candidates {
		d := total - p
		if p < 1 || d < 1 {
			continue
		}
		res, err := Run(Config{
			Arch: AGG, App: app, Threads: p, Pressure: pressure, DNodes: d,
			PMemBytesOverride: perNode, DMemTotalOverride: dTotal,
		})
		if err != nil {
			return nil, 0, err
		}
		pts = append(pts, SplitPoint{P: p, D: d, Result: res})
		if best < 0 || res.Breakdown.Exec < pts[best].Result.Breakdown.Exec {
			best = len(pts) - 1
		}
	}
	if best < 0 {
		return nil, 0, fmt.Errorf("machine: no feasible split of %d nodes", total)
	}
	return pts, best, nil
}
