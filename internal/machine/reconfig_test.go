package machine

import (
	"testing"

	"pimdsm/internal/workload"
)

func TestBaselineSizing(t *testing.T) {
	perNode, dTotal, err := BaselineSizing(workload.Spec{Name: "fft", Scale: 0.1}, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if perNode == 0 || dTotal != 2*perNode {
		t.Fatalf("perNode=%d dTotal=%d", perNode, dTotal)
	}
	if perNode%(4*workload.LineBytes) != 0 {
		t.Fatalf("perNode %d not a whole number of 4-way line sets", perNode)
	}
	if _, _, err := BaselineSizing(workload.Spec{Name: "nope"}, 0.75); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunReconfigNodeCountPreserved(t *testing.T) {
	_, err := RunReconfig(workload.Spec{Name: "dbase", Scale: 0.05}, 0.75, 4, 4, 7, 2, DefaultReconfigCosts())
	if err == nil {
		t.Fatal("mismatched node counts accepted")
	}
}

func TestRunReconfigDbase(t *testing.T) {
	r, err := RunReconfig(workload.Spec{Name: "dbase", Scale: 0.1}, 0.75, 4, 4, 6, 2, DefaultReconfigCosts())
	if err != nil {
		t.Fatal(err)
	}
	// Phase accounting must add up for both static runs.
	if r.Phase1A+r.Phase2A != r.A.Breakdown.Exec {
		t.Fatalf("A phases %d+%d != exec %d", r.Phase1A, r.Phase2A, r.A.Breakdown.Exec)
	}
	if r.Phase1B+r.Phase2B != r.B.Breakdown.Exec {
		t.Fatalf("B phases %d+%d != exec %d", r.Phase1B, r.Phase2B, r.B.Breakdown.Exec)
	}
	// The dynamic run combines A's phase 1 with B's phase 2 plus overhead.
	if r.Dynamic != r.Phase1A+r.Reconf+r.Phase2B {
		t.Fatal("dynamic time not assembled from its parts")
	}
	if r.Reconf < DefaultReconfigCosts().Base {
		t.Fatalf("reconf overhead %d below the base cost", r.Reconf)
	}
	// Converting D-nodes to P-nodes moves lines and pages.
	if r.LinesMoved == 0 || r.PagesMoved == 0 {
		t.Fatalf("no migration accounted: lines=%d pages=%d", r.LinesMoved, r.PagesMoved)
	}
}

func TestReconfigOverheadModel(t *testing.T) {
	c := DefaultReconfigCosts()
	// §4.2's constants.
	if c.Base != 100000 || c.PerTenPages != 1000 || c.PerTLB != 1000 {
		t.Fatalf("overhead constants drifted: %+v", c)
	}
}
