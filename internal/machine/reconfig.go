package machine

import (
	"fmt"

	"pimdsm/internal/sim"
	"pimdsm/internal/workload"
)

// ReconfigCosts is the paper's dynamic-reconfiguration overhead model
// (§4.2): a fixed base for setup, synchronization and decision making, a
// per-line cost to collect and migrate each memory line held by the D-nodes
// being converted, a page-table update cost per ten pages moved, and a TLB
// update cost per P-node processor.
type ReconfigCosts struct {
	Base        sim.Time // 100,000 cycles
	PerLine     sim.Time // collecting and migrating one memory line
	PerTenPages sim.Time // 1,000 cycles per 10 pages remapped
	PerTLB      sim.Time // 1,000 cycles per P-node TLB update
}

// DefaultReconfigCosts returns §4.2's constants. Line migration is bulk and
// parallel (every decommissioned D-node streams to a survivor at once), so
// the effective wall-clock cost per line is the link serialization divided
// by the migration parallelism.
func DefaultReconfigCosts() ReconfigCosts {
	return ReconfigCosts{Base: 100000, PerLine: 8, PerTenPages: 1000, PerTLB: 1000}
}

// ReconfigResult reports the Figure 10(a) experiment: two static
// configurations and the dynamically reconfigured run (phase 1 on A,
// reconfigure, phase 2 on B).
type ReconfigResult struct {
	A, B *Result // full static runs

	Phase1A sim.Time // phase 1 duration on configuration A
	Phase2A sim.Time
	Phase1B sim.Time
	Phase2B sim.Time

	Reconf     sim.Time // modeled reconfiguration overhead
	LinesMoved uint64
	PagesMoved uint64

	// Dynamic is Phase1A + Reconf + Phase2B.
	Dynamic sim.Time
}

// StaticA and StaticB return the static runs' total times.
func (r *ReconfigResult) StaticA() sim.Time { return r.A.Breakdown.Exec }

// StaticB returns configuration B's total time.
func (r *ReconfigResult) StaticB() sim.Time { return r.B.Breakdown.Exec }

// RunReconfig runs the paper's dynamic-reconfiguration experiment on an AGG
// machine: the application's first phase executes on aP P-nodes and aD
// D-nodes, then (aD - bD) D-nodes are converted into P-nodes (pages unmapped
// and migrated to the surviving D-nodes, caches flushed, TLBs updated), and
// the second phase executes on bP P-nodes and bD D-nodes. The paper's
// example is Dbase: 16&16 for the hash phase, 28&4 for the join phase.
func RunReconfig(app workload.Spec, pressure float64, aP, aD, bP, bD int, costs ReconfigCosts) (*ReconfigResult, error) {
	if aP+aD != bP+bD {
		return nil, fmt.Errorf("machine: reconfiguration must preserve the node count (%d+%d vs %d+%d)", aP, aD, bP, bD)
	}
	// Figures 9 and 10 share the paper's sizing rule: the per-node memory
	// and the total D-node memory are frozen at the 2P&2D configuration
	// with the given pressure, and nodes are added (not resized).
	perNode, dTotal, err := BaselineSizing(app, pressure)
	if err != nil {
		return nil, err
	}
	base := Config{
		Arch: AGG, App: app, Pressure: pressure,
		PMemBytesOverride: perNode, DMemTotalOverride: dTotal,
	}

	cfgA := base
	cfgA.Threads, cfgA.DNodes = aP, aD
	resA, err := Run(cfgA)
	if err != nil {
		return nil, fmt.Errorf("machine: static %d&%d: %w", aP, aD, err)
	}
	cfgB := base
	cfgB.Threads, cfgB.DNodes = bP, bD
	resB, err := Run(cfgB)
	if err != nil {
		return nil, fmt.Errorf("machine: static %d&%d: %w", bP, bD, err)
	}

	r := &ReconfigResult{A: resA, B: resB}
	r.Phase1A = resA.PhaseEnd[workload.PhaseSecond]
	r.Phase2A = resA.Breakdown.Exec - r.Phase1A
	r.Phase1B = resB.PhaseEnd[workload.PhaseSecond]
	r.Phase2B = resB.Breakdown.Exec - r.Phase1B

	// Overhead: the decommissioned D-nodes' resident lines and mapped pages
	// migrate to the survivors. Estimate their population from the phase-
	// boundary census (lines with a home copy plus dirty place holders do
	// not move — only home-resident data does).
	if aD > bD {
		frac := float64(aD-bD) / float64(aD)
		resident := uint64(resA.CensusPhase2.DNodeOnly + resA.CensusPhase2.SharedInP)
		r.LinesMoved = uint64(float64(resident) * frac)
		r.PagesMoved = uint64(float64(resA.Machine.FirstTouches) * frac)
	}
	r.Reconf = costs.Base +
		costs.PerLine*sim.Time(r.LinesMoved) +
		costs.PerTenPages*sim.Time((r.PagesMoved+9)/10) +
		costs.PerTLB*sim.Time(bP)
	r.Dynamic = r.Phase1A + r.Reconf + r.Phase2B
	return r, nil
}

// BaselineSizing returns the Figure 9/10 memory sizing: the per-node memory
// of an AGG machine with 2 P- and 2 D-nodes at the given memory pressure,
// and the (frozen) total D-node memory of that baseline. As nodes are added
// each brings the same per-node memory, while the backing store stays fixed
// ("keep the problem size and total D-memory size fixed as more nodes are
// added", §4.2).
func BaselineSizing(spec workload.Spec, pressure float64) (perNode, dTotal uint64, err error) {
	a, err := workload.New(spec)
	if err != nil {
		return 0, 0, err
	}
	perNode = uint64(float64(a.Footprint()) / pressure / 4)
	perNode = perNode / workload.LineBytes / 4 * 4 * workload.LineBytes
	return perNode, 2 * perNode, nil
}
