package machine

import (
	"pimdsm/internal/cpu"
	"pimdsm/internal/hashmap"
	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
	"pimdsm/internal/workload"
)

// pageTable models the OS's physical page-frame allocation: virtual pages
// are assigned pseudo-randomly scattered physical frames in first-touch
// order. Physically-indexed structures (SRAM caches, attraction memories,
// on-chip trackers) therefore do not suffer the systematic set aliasing that
// regularly-strided virtual layouts (e.g. several grids exactly 2 MB apart)
// would otherwise produce.
type pageTable struct {
	frames hashmap.Map[uint64] // vpage -> physical frame
	next   uint64
}

const ptBits = 20 // physical space: 2^20 pages = 4 GB

func newPageTable() *pageTable {
	return &pageTable{}
}

// translate maps a virtual address to its physical address, allocating a
// frame on first touch. The frame sequence is a bijection of the allocation
// counter (odd multiplier modulo 2^ptBits), so distinct pages never collide.
func (pt *pageTable) translate(addr uint64) uint64 {
	vpage := addr / workload.PageBytes
	off := addr % workload.PageBytes
	f, ok := pt.frames.Get(vpage)
	if !ok {
		// Bijective scramble of the allocation counter: odd multiply mod
		// 2^ptBits, then bit reversal. The reversal matters: without it the
		// low frame bits (which select cache sets) would retain the
		// counter's low-bit structure, and 32 threads first-touching in an
		// interleaved order would land all of one thread's pages in the
		// same set block.
		f = bitrev(pt.next*2654435761&(1<<ptBits-1), ptBits)
		pt.next++
		pt.frames.Put(vpage, f)
	}
	return f*workload.PageBytes + off
}

// bitrev reverses the low n bits of v.
func bitrev(v uint64, n int) uint64 {
	var r uint64
	for i := 0; i < n; i++ {
		r = r<<1 | (v>>i)&1
	}
	return r
}

// translatedMem wraps an engine with virtual-to-physical translation.
type translatedMem struct {
	eng  engine
	scan cpu.Scanner
	pt   *pageTable
}

func (t *translatedMem) Access(now sim.Time, p int, addr uint64, write bool) (sim.Time, proto.LatClass) {
	return t.eng.Access(now, p, t.pt.translate(addr), write)
}

// Scan splits a virtually-contiguous scan at page boundaries, since the
// physical frames are scattered; each piece runs at its page's home D-node.
func (t *translatedMem) Scan(now sim.Time, p int, addr uint64, lines int, selBytes uint64) sim.Time {
	done := now
	remaining := lines
	cur := addr
	for remaining > 0 {
		page := cur &^ (workload.PageBytes - 1)
		inPage := int((page + workload.PageBytes - cur) / workload.LineBytes)
		if inPage > remaining {
			inPage = remaining
		}
		sel := selBytes * uint64(inPage) / uint64(lines)
		if d := t.scan.Scan(now, p, t.pt.translate(cur), inPage, sel); d > done {
			done = d
		}
		cur += uint64(inPage) * workload.LineBytes
		remaining -= inPage
	}
	return done
}
