package machine

import (
	"testing"

	"pimdsm/internal/workload"
)

func TestTuneDRatio(t *testing.T) {
	r, err := TuneDRatio(workload.Spec{Name: "swim", Scale: 0.1}, 0.75, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization = %v", r.Utilization)
	}
	if r.SuggestedD < 1 || r.SuggestedD > 8 {
		t.Fatalf("suggested D = %d", r.SuggestedD)
	}
	// The suggestion must actually run.
	res, err := Run(Config{
		Arch: AGG, App: workload.Spec{Name: "swim", Scale: 0.1},
		Threads: 8, Pressure: 0.75, DNodes: r.SuggestedD,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Exec == 0 {
		t.Fatal("suggested configuration did not run")
	}
}

func TestTuneDRatioValidation(t *testing.T) {
	if _, err := TuneDRatio(workload.Spec{Name: "swim", Scale: 0.05}, 0.75, 4, 1.5); err == nil {
		t.Fatal("utilization > 1 accepted")
	}
}

func TestOptimalSplit(t *testing.T) {
	pts, best, err := OptimalSplit(workload.Spec{Name: "ocean", Scale: 0.1}, 0.75, 8, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 {
		t.Fatalf("only %d split points", len(pts))
	}
	for _, pt := range pts {
		if pt.P+pt.D != 8 {
			t.Fatalf("split %d+%d does not preserve machine size", pt.P, pt.D)
		}
	}
	for i, pt := range pts {
		if pt.Result.Breakdown.Exec < pts[best].Result.Breakdown.Exec {
			t.Fatalf("point %d beats the reported best", i)
		}
	}
}
