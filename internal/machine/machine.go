// Package machine assembles whole simulated multiprocessors — an AGG, CC-NUMA
// or Flat COMA coherence engine, 32 (or fewer) processors, and an
// application — sizes their memories from the experiment's memory pressure,
// runs them to completion, and reports the measurements the paper's figures
// are built from.
package machine

import (
	"fmt"

	"pimdsm/internal/coma"
	"pimdsm/internal/core"
	"pimdsm/internal/cpu"
	"pimdsm/internal/mesh"
	"pimdsm/internal/numa"
	"pimdsm/internal/obs"
	"pimdsm/internal/sim"
	"pimdsm/internal/stats"
	"pimdsm/internal/workload"
)

// Arch selects the architecture under test.
type Arch string

// The three organizations of the paper's evaluation (§3).
const (
	AGG  Arch = "agg"
	NUMA Arch = "numa"
	COMA Arch = "coma"
)

// Config describes one simulation run.
type Config struct {
	Arch Arch
	App  workload.Spec
	// Threads is the number of application threads (the paper uses 32).
	Threads int
	// Pressure is footprint / total machine DRAM (the paper evaluates 25%
	// and 75%). Ignored by NUMA timing but still used to size its memory.
	Pressure float64
	// DRatio sets the AGG D-node count to Threads/DRatio (1 = 1/1AGG,
	// 2 = 1/2AGG, 4 = 1/4AGG). Total D-memory stays constant as D-nodes
	// get fewer and fatter (§4.1).
	DRatio int
	// DNodes overrides DRatio with an explicit D-node count (Figure 9/10).
	DNodes int

	// Shards selects the partitioned-engine shard count requested for this
	// run (0 means 1; negative is rejected). The coherence path of all three
	// machines is synchronous-state — a transaction mutates remote directory
	// and cache state at call time, serialized by the global (clock, id)
	// scheduler order, so its protocol lookahead is zero — and therefore
	// always executes serially regardless of Shards; results are
	// bit-identical for every value. The setting is validated, recorded in
	// Result.Shards alongside GOMAXPROCS for benchmark provenance, and the
	// partitioned engine itself parallelizes the event-driven mesh path
	// (mesh.Events; see DESIGN.md, "Conservative-window PDES").
	Shards int

	// PMemBytesOverride fixes the per-P-node memory instead of deriving it
	// from Pressure (Figure 9 keeps per-node memory constant as nodes are
	// added).
	PMemBytesOverride uint64
	// DMemTotalOverride fixes the total D-node memory in bytes.
	DMemTotalOverride uint64

	// Ablation knobs (0 = the paper's defaults). OnChipFraction sets the
	// on-chip share of AGG P-node memory (§3 tunes it per application and
	// argues the impact is modest); SharedMinFrac sets the SharedList
	// reuse threshold (§2.2.2); HandlerScale scales the AGG software
	// handler costs (1.0 = Table 2; 0.7 = the paper's hardware estimate).
	OnChipFraction float64
	SharedMinFrac  float64
	HandlerScale   float64
	// DMemSetAssoc switches the AGG D-memories to the §2.2.2 rejected
	// set-associative organization (0 = the paper's fully-associative one).
	DMemSetAssoc int

	// Trace, when non-nil, receives the run's protocol events (reads, writes,
	// invalidations, write-backs, recalls, pageouts, mesh messages, ...).
	// Tracing is record-only: it never feeds back into simulation state, so a
	// run's results are bit-identical with it on or off.
	Trace *obs.Trace
	// Metrics, when non-nil, has the run's end-of-run counters folded into it
	// (obs.CollectMachine plus mesh traffic and execution time).
	Metrics *obs.Registry
	// PhaseProgress, when non-nil, is called each time the last thread
	// crosses a phase marker — a coarse live-progress hook for long runs.
	PhaseProgress func(phase int, at sim.Time)

	// Spans, when non-nil, receives one transaction span per memory access
	// that leaves a processor node, with per-phase cycle attribution. Like
	// Trace, it is record-only: results are bit-identical with it on or off.
	Spans *obs.Spans
	// Audit walks the coherence state touched by each transaction at span
	// retirement and counts protocol-invariant violations (reported in
	// Result.AuditViolations). Read-only, so timing is unaffected.
	Audit bool

	// Profile, when non-nil and enabled, receives the run's cycle
	// attribution: per-node handler-class accounting, P-node busy/stall
	// buckets, and mesh-link utilization with queue-depth samples. Like
	// Trace and Spans it is record-only — results are bit-identical with
	// profiling on or off.
	Profile *obs.Profile
}

// Result is everything a run measures. All engine-level counters are
// measured from the PhaseMeasured marker (warm-up initialization excluded).
type Result struct {
	Arch    Arch
	App     string
	Threads int
	PNodes  int
	DNodes  int
	// Shards echoes the validated Config.Shards. The coherence path runs
	// serially at any value (see Config.Shards), so this is provenance, not
	// a parallelism knob for this Result.
	Shards int

	Breakdown stats.Breakdown
	PerThread []stats.Thread
	Machine   stats.Machine
	Mesh      mesh.Stats
	Census    core.Census // AGG only: end-of-run line-state census
	// CensusPhase2 is the census when the last thread crossed PhaseSecond
	// (used by the reconfiguration overhead model).
	CensusPhase2 core.Census

	// PhaseEnd[p] is the time the last thread crossed phase marker p,
	// relative to the measurement start.
	PhaseEnd map[int]sim.Time

	// DProcBusy/DProcWaited aggregate D-node protocol-processor busy time
	// and queueing delay (AGG only) — the utilization hint §2.3 uses to
	// tune the static P:D split.
	DProcBusy   sim.Time
	DProcWaited sim.Time

	// DMem aggregates the D-node memory-management counters (AGG only),
	// including SetConflicts for the set-associative ablation.
	DMem core.DMemStats

	// Sizing actually used.
	TotalDRAM   uint64
	PMemBytes   uint64
	DMemLines   int
	EffPressure float64

	// AuditViolations counts coherence-invariant violations found by the
	// per-transaction auditor (Config.Audit); AuditSamples holds the first
	// few diagnostics.
	AuditViolations uint64
	AuditSamples    []string
}

type engine interface {
	cpu.Memory
	Stats() *stats.Machine
	Mesh() *mesh.Mesh
	LineBytes() uint64
	SetTrace(*obs.Trace)
	SetSpans(*obs.Spans)
	SetProfile(*obs.Profile)
	FinishProfile()
	SetAudit(bool)
	AuditReport() (uint64, []string)
}

// roundLines rounds a byte capacity down to a whole number of assoc-way
// 128-byte-line sets, with a floor of one set.
func roundLines(bytes uint64, assoc int) uint64 {
	lines := bytes / workload.LineBytes
	q := uint64(assoc)
	if lines < q {
		lines = q
	}
	return lines / q * q * workload.LineBytes
}

// roundPow2 returns the largest power of two ≤ v (v ≥ 1).
func roundPow2(v uint64) uint64 {
	p := uint64(1)
	for p*2 <= v {
		p *= 2
	}
	return p
}

// Sizing derives the per-node memory capacities for a config.
type Sizing struct {
	TotalDRAM uint64
	PMemBytes uint64 // per P-node (AGG) / AM per node (COMA) / mem per node (NUMA)
	DMemLines int    // per D-node Data slots (AGG)
	PNodes    int
	DNodes    int
}

// Size computes the memory layout for cfg and app.
func Size(cfg Config, fp uint64) (Sizing, error) {
	if cfg.Threads <= 0 {
		return Sizing{}, fmt.Errorf("machine: need threads > 0")
	}
	if cfg.Pressure <= 0 || cfg.Pressure > 1 {
		return Sizing{}, fmt.Errorf("machine: pressure %v outside (0,1]", cfg.Pressure)
	}
	total := uint64(float64(fp) / cfg.Pressure)
	s := Sizing{TotalDRAM: total, PNodes: cfg.Threads}
	switch cfg.Arch {
	case NUMA, COMA:
		s.PMemBytes = roundLines(total/uint64(cfg.Threads), 4)
	case AGG:
		d := cfg.DNodes
		if d == 0 {
			r := cfg.DRatio
			if r == 0 {
				r = 1
			}
			d = cfg.Threads / r
		}
		if d <= 0 {
			return Sizing{}, fmt.Errorf("machine: AGG needs at least one D-node")
		}
		s.DNodes = d
		pPer := total / 2 / uint64(cfg.Threads)
		if cfg.PMemBytesOverride != 0 {
			pPer = cfg.PMemBytesOverride
		}
		s.PMemBytes = roundLines(pPer, 4)
		dTotal := total / 2
		if cfg.DMemTotalOverride != 0 {
			dTotal = cfg.DMemTotalOverride
		}
		s.DMemLines = int(dTotal / uint64(d) / workload.LineBytes)
		minLines := int(workload.PageBytes / workload.LineBytes * 2)
		if s.DMemLines < minLines {
			s.DMemLines = minLines
		}
	default:
		return Sizing{}, fmt.Errorf("machine: unknown architecture %q", cfg.Arch)
	}
	return s, nil
}

// Run executes one simulation and returns its measurements.
func Run(cfg Config) (*Result, error) {
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("machine: negative shard count %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	app, err := workload.New(cfg.App)
	if err != nil {
		return nil, err
	}
	fp := app.Footprint()
	sz, err := Size(cfg, fp)
	if err != nil {
		return nil, err
	}
	l1, l2 := app.Caches()

	var eng engine
	var scanner cpu.Scanner
	var aggM *core.Machine
	switch cfg.Arch {
	case AGG:
		c := core.DefaultConfig(cfg.Threads, sz.DNodes, sz.PMemBytes, sz.DMemLines, l1, l2)
		if cfg.OnChipFraction != 0 {
			c.OnChipFraction = cfg.OnChipFraction
		}
		if cfg.SharedMinFrac != 0 {
			c.SharedMinFrac = cfg.SharedMinFrac
		}
		if cfg.HandlerScale != 0 {
			c.Costs = c.Costs.Scale(cfg.HandlerScale)
		}
		c.DMemSetAssoc = cfg.DMemSetAssoc
		m, err := core.New(c)
		if err != nil {
			return nil, err
		}
		eng, scanner, aggM = m, m, m
	case NUMA:
		c := numa.DefaultConfig(cfg.Threads, sz.PMemBytes, l1, l2)
		c.OnChipBytes = roundPow2(sz.PMemBytes/2/workload.LineBytes/4) * 4 * workload.LineBytes
		m, err := numa.New(c)
		if err != nil {
			return nil, err
		}
		eng = m
	case COMA:
		c := coma.DefaultConfig(cfg.Threads, sz.PMemBytes, l1, l2)
		m, err := coma.New(c)
		if err != nil {
			return nil, err
		}
		eng = m
	}

	tr := cfg.Trace
	if tr == nil {
		tr = obs.Nop()
	}
	eng.SetTrace(tr)
	eng.SetSpans(cfg.Spans)
	eng.SetProfile(cfg.Profile)
	eng.SetAudit(cfg.Audit)
	if tr.On() {
		tr.Emit(obs.EvRunStart, 0, 0, -1, uint64(cfg.Threads), uint64(sz.DNodes))
	}

	streams := app.Streams(cfg.Threads)
	sched := sim.NewScheduler()
	sd := cpu.NewSyncDomain(sched)
	threads := make([]*cpu.Thread, cfg.Threads)

	res := &Result{
		Arch:        cfg.Arch,
		App:         app.Name(),
		Threads:     cfg.Threads,
		PNodes:      sz.PNodes,
		DNodes:      sz.DNodes,
		Shards:      cfg.Shards,
		PhaseEnd:    make(map[int]sim.Time),
		TotalDRAM:   sz.TotalDRAM,
		PMemBytes:   sz.PMemBytes,
		DMemLines:   sz.DMemLines,
		EffPressure: float64(fp) / float64(sz.TotalDRAM),
	}

	var measureStart sim.Time
	var snap stats.Machine
	var meshSnap mesh.Stats
	var dBusySnap, dWaitSnap sim.Time
	crossed := make(map[int]int)
	// Capture scalars, not cfg: the full Config is past the compiler's
	// by-value capture limit and would be heap-boxed by the closure.
	nThreads, phaseProgress := cfg.Threads, cfg.PhaseProgress
	hook := func(tid, phase int, at sim.Time) {
		crossed[phase]++
		if at > res.PhaseEnd[phase] {
			res.PhaseEnd[phase] = at
		}
		if crossed[phase] == nThreads {
			if tr.On() {
				tr.Emit(obs.EvPhase, at, 0, -1, uint64(phase), uint64(nThreads))
			}
			if phaseProgress != nil {
				phaseProgress(phase, at)
			}
		}
		if phase == workload.PhaseMeasured {
			// Exclude warm-up initialization from this thread's numbers;
			// the engine counters are snapshot once everyone has crossed.
			threads[tid].ResetMeasurement()
			if crossed[phase] == nThreads {
				measureStart = res.PhaseEnd[phase]
				snap = *eng.Stats()
				meshSnap = eng.Mesh().Stats()
				if aggM != nil {
					dBusySnap, dWaitSnap, _ = aggM.DProcUtil()
				}
			}
		}
		if phase == workload.PhaseSecond && crossed[phase] == nThreads && aggM != nil {
			res.CensusPhase2 = aggM.CensusTotal()
		}
	}

	tm := &translatedMem{eng: eng, scan: scanner, pt: newPageTable()}
	var tscan cpu.Scanner
	if scanner != nil {
		tscan = tm
	}
	for i := 0; i < cfg.Threads; i++ {
		threads[i] = cpu.NewThread(i, tm, tscan, streams[i], sd, cpu.DefaultParams())
		threads[i].SetPhaseHook(hook)
		sched.Add(threads[i])
	}
	if err := sched.Run(); err != nil {
		return nil, fmt.Errorf("machine: %s/%s: %w", cfg.Arch, app.Name(), err)
	}

	res.PerThread = make([]stats.Thread, cfg.Threads)
	for i, th := range threads {
		res.PerThread[i] = th.Stats()
	}
	res.Breakdown = stats.NewBreakdown(res.PerThread)
	res.Machine = eng.Stats().Diff(&snap)
	res.Mesh = eng.Mesh().Stats().Diff(meshSnap)
	for p, t := range res.PhaseEnd {
		if t > measureStart {
			res.PhaseEnd[p] = t - measureStart
		} else {
			res.PhaseEnd[p] = 0
		}
	}
	if cfg.Metrics != nil {
		CollectMetrics(cfg.Metrics, res)
	}
	if cfg.Profile != nil && cfg.Profile.On() {
		prof := cfg.Profile
		prof.SetMeta(string(cfg.Arch) + "/" + app.Name())
		prof.SetExec(res.Breakdown.Exec)
		for i := range res.PerThread {
			t := &res.PerThread[i]
			prof.AddPNode(i, t.Busy, t.MemStall, t.SyncSpin, t.Finish)
		}
		eng.FinishProfile()
	}
	if cfg.Audit {
		res.AuditViolations, res.AuditSamples = eng.AuditReport()
	}
	if aggM != nil {
		res.Census = aggM.CensusTotal()
		res.DMem = aggM.DMemStatsTotal()
		busy, waited, _ := aggM.DProcUtil()
		res.DProcBusy, res.DProcWaited = busy-dBusySnap, waited-dWaitSnap
		if err := aggM.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("machine: post-run invariant violation: %w", err)
		}
	}
	return res, nil
}

// CollectMetrics folds a run's measurements into a registry: the coherence
// counters (obs.CollectMachine), mesh traffic, and the Figure 6 breakdown.
// Counters accumulate across runs sharing the registry; gauges hold the last
// run's values. It only reads Result, so the service layer can fold metrics
// for cache-served results identically to freshly simulated ones.
func CollectMetrics(r *obs.Registry, res *Result) {
	obs.CollectMachine(r, &res.Machine)
	r.Counter("mesh.messages").Add(res.Mesh.Messages)
	r.Counter("mesh.bytes").Add(res.Mesh.Bytes)
	r.Counter("mesh.hops").Add(res.Mesh.HopsTotal)
	r.Counter("mesh.queued_cycles").Add(uint64(res.Mesh.Queued))
	r.Counter("runs").Inc()
	r.Gauge("run.exec_cycles").Set(float64(res.Breakdown.Exec))
	r.Gauge("run.mem_cycles").Set(float64(res.Breakdown.Memory))
	r.Gauge("run.proc_cycles").Set(float64(res.Breakdown.Processor))
}
