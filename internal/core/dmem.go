// Package core implements the paper's primary contribution: the AGG DSM
// organization. It contains the D-node software-managed memory of §2.2.2
// (the Directory, Data and Pointer arrays with their FreeList and SharedList)
// and the AGG coherence protocol engine that runs over tagged P-node
// memories, including the shared-master state, write-backs that are always
// accepted by the home, and pageout instead of COMA-style injection.
package core

import (
	"fmt"

	"pimdsm/internal/hashmap"
	"pimdsm/internal/proto"
)

// DirState is the stable directory state of a memory line at its home D-node.
type DirState uint8

const (
	// DirHome: the home holds the only (master) copy — "D-Node Only" in the
	// paper's Figure 8 — or the line is unfetched/on disk with no copy
	// anywhere.
	DirHome DirState = iota
	// DirShared: at least one P-node caches the line read-only. The master
	// copy is either at a P-node (given out on first read) or at the home.
	DirShared
	// DirDirty: exactly one P-node owns the only, writable copy. The home
	// keeps no place holder (its Data slot is reused).
	DirDirty
)

// String returns a short state name.
func (s DirState) String() string {
	switch s {
	case DirHome:
		return "Home"
	case DirShared:
		return "Shared"
	case DirDirty:
		return "Dirty"
	}
	return fmt.Sprintf("DirState(%d)", uint8(s))
}

// HomeMaster is the Master value meaning the home D-node holds the master copy.
const HomeMaster = -1

// nilPtr is the nil value for Data-slot and list indices.
const nilPtr = int32(-1)

// DirEntry is one entry of the Directory array: directory state plus the
// Local Pointer into the Data array (§2.2.2, Figure 3).
type DirEntry struct {
	Addr    uint64 // line-aligned address
	State   DirState
	Master  int32        // P-node with the master copy, or HomeMaster
	Sharers proto.PtrVec // P-nodes caching the line (limited 3-pointer vector)
	// LocalPtr indexes the Data array; nilPtr when the home keeps no copy.
	LocalPtr int32
	// Unfetched marks a line that has never been materialized: a first
	// write is satisfied with zero-fill and needs no Data slot.
	Unfetched bool
	// OnDisk marks a line whose backing data was paged out; touching it
	// costs a disk access.
	OnDisk bool
}

// HasCopy reports whether the home currently stores the line's data.
func (e *DirEntry) HasCopy() bool { return e.LocalPtr != nilPtr }

type listID uint8

const (
	listNone listID = iota
	listFree
	listShared
)

// ptrEntry is one entry of the Pointer array: a back pointer to the
// Directory (the line address) and Prev/Next links tying the associated Data
// entry to the FreeList or SharedList (§2.2.2).
type ptrEntry struct {
	line       uint64 // back pointer (DirPtr); meaningful only when used
	used       bool
	prev, next int32
	list       listID
}

// DMemStats counts D-node memory management events.
type DMemStats struct {
	SlotAllocs    uint64 // Data slots handed out
	SharedReuses  uint64 // SharedList head reused to satisfy an allocation
	PageoutsAsked uint64 // allocations that found no slot at all
	PagesMapped   uint64
	PagesUnmapped uint64
	SetConflicts  uint64 // set-associative mode: incoming line found its set full
}

// Census is the Figure 8 line-state classification for one D-node.
type Census struct {
	DirtyInP  int // only copy is dirty at a P-node (no home slot)
	SharedInP int // ≥1 P-node caches it (home may or may not hold a copy)
	DNodeOnly int // home holds the only copy (occupies a Data slot)
	Untouched int // mapped but never materialized (no slot, no copies)
	FreeSlots int // unused Data entries
	SlotCap   int // total Data entries
}

// DMem is the software-managed memory of one D-node: the Directory, Data and
// Pointer arrays of §2.2.2. Data-slot contents are not stored (the simulator
// is timing-accurate, not data-accurate); the structure faithfully tracks
// slot occupancy, the FreeList and the FIFO SharedList.
type DMem struct {
	dataCap   int
	dirCap    int
	lineBytes uint64
	pageBytes uint64

	ptrs                   []ptrEntry
	freeHead, freeTail     int32
	sharedHead, sharedTail int32
	freeLen, sharedLen     int

	// sharedMin is the SharedList low-water mark: when an allocation would
	// shrink SharedList below it, the caller should page out instead of
	// reusing more shared slots (the paper's threshold).
	sharedMin int

	// The Directory array is an open-addressed line->entry table (the
	// simulator's stand-in for the paper's fully-associative hardware
	// lookup); entries are recycled through a slab pool across page
	// map/unmap cycles, so steady-state paging allocates nothing.
	entries   hashmap.Map[*DirEntry]
	entryPool hashmap.Pool[DirEntry]

	pages   []uint64 // mapped pages in map order (FIFO pageout victims)
	pageIdx hashmap.Map[int]
	onDisk  hashmap.Set // pages whose data was written to disk

	// Set-associative mode (§2.2.2's rejected alternative, kept as an
	// ablation): when saAssoc > 0, a line may only occupy a slot of its
	// set, so an incoming line can find its set full even though the
	// FreeList is not empty — the situation that would force COMA-style
	// injections and that the paper's fully-associative software
	// organization avoids.
	saAssoc int
	saCount []int

	Stats DMemStats
}

// NewDMem builds a D-node memory with dataLines Data/Pointer entries and
// dirEntries Directory entries (the paper evaluates dirEntries = 1.5 ×
// dataLines). sharedMin is the SharedList reuse threshold.
func NewDMem(dataLines, dirEntries int, lineBytes, pageBytes uint64, sharedMin int) (*DMem, error) {
	if dataLines <= 0 || dirEntries < dataLines {
		return nil, fmt.Errorf("core: invalid D-memory geometry: %d data, %d directory entries", dataLines, dirEntries)
	}
	if pageBytes == 0 || lineBytes == 0 || pageBytes%lineBytes != 0 {
		return nil, fmt.Errorf("core: page size %d not a multiple of line size %d", pageBytes, lineBytes)
	}
	d := &DMem{
		dataCap:    dataLines,
		dirCap:     dirEntries,
		lineBytes:  lineBytes,
		pageBytes:  pageBytes,
		ptrs:       make([]ptrEntry, dataLines),
		freeHead:   nilPtr,
		freeTail:   nilPtr,
		sharedHead: nilPtr,
		sharedTail: nilPtr,
		sharedMin:  sharedMin,
	}
	for i := range d.ptrs {
		d.ptrs[i].prev, d.ptrs[i].next = nilPtr, nilPtr
		d.pushTail(listFree, int32(i))
	}
	return d, nil
}

// MustNewDMem is NewDMem, panicking on error.
func MustNewDMem(dataLines, dirEntries int, lineBytes, pageBytes uint64, sharedMin int) *DMem {
	d, err := NewDMem(dataLines, dirEntries, lineBytes, pageBytes, sharedMin)
	if err != nil {
		panic(err)
	}
	return d
}

// --- intrusive list plumbing ---

func (d *DMem) head(l listID) *int32 {
	if l == listFree {
		return &d.freeHead
	}
	return &d.sharedHead
}

func (d *DMem) tail(l listID) *int32 {
	if l == listFree {
		return &d.freeTail
	}
	return &d.sharedTail
}

func (d *DMem) length(l listID) *int {
	if l == listFree {
		return &d.freeLen
	}
	return &d.sharedLen
}

func (d *DMem) pushTail(l listID, i int32) {
	p := &d.ptrs[i]
	if p.list != listNone {
		panic("core: pointer entry already on a list")
	}
	p.list = l
	p.next = nilPtr
	p.prev = *d.tail(l)
	if p.prev != nilPtr {
		d.ptrs[p.prev].next = i
	} else {
		*d.head(l) = i
	}
	*d.tail(l) = i
	*d.length(l)++
}

func (d *DMem) unlink(i int32) {
	p := &d.ptrs[i]
	l := p.list
	if l == listNone {
		return
	}
	if p.prev != nilPtr {
		d.ptrs[p.prev].next = p.next
	} else {
		*d.head(l) = p.next
	}
	if p.next != nilPtr {
		d.ptrs[p.next].prev = p.prev
	} else {
		*d.tail(l) = p.prev
	}
	p.prev, p.next, p.list = nilPtr, nilPtr, listNone
	*d.length(l)--
}

func (d *DMem) popHead(l listID) (int32, bool) {
	h := *d.head(l)
	if h == nilPtr {
		return nilPtr, false
	}
	d.unlink(h)
	return h, true
}

// --- geometry / lookup ---

// LineBytes returns the memory line size.
func (d *DMem) LineBytes() uint64 { return d.lineBytes }

// PageBytes returns the page size.
func (d *DMem) PageBytes() uint64 { return d.pageBytes }

// DataCap returns the number of Data slots.
func (d *DMem) DataCap() int { return d.dataCap }

// FreeLen returns the FreeList length.
func (d *DMem) FreeLen() int { return d.freeLen }

// SharedLen returns the SharedList length.
func (d *DMem) SharedLen() int { return d.sharedLen }

// PageOf returns the page address containing addr.
func (d *DMem) PageOf(addr uint64) uint64 { return addr &^ (d.pageBytes - 1) }

// AlignLine returns addr rounded down to a line boundary.
func (d *DMem) AlignLine(addr uint64) uint64 { return addr &^ (d.lineBytes - 1) }

// Entry returns the directory entry for the line containing addr, or nil if
// its page is not mapped here.
func (d *DMem) Entry(addr uint64) *DirEntry {
	e, _ := d.entries.Get(d.AlignLine(addr))
	return e
}

// PageMapped reports whether page is currently mapped at this D-node.
func (d *DMem) PageMapped(page uint64) bool { _, ok := d.pageIdx.Get(page); return ok }

// PageOnDisk reports whether page was previously paged out to disk.
func (d *DMem) PageOnDisk(page uint64) bool { return d.onDisk.Has(page) }

// DirRoom reports whether the Directory array can accept another page's
// worth of entries.
func (d *DMem) DirRoom() bool {
	return d.entries.Len()+int(d.pageBytes/d.lineBytes) <= d.dirCap
}

// MappedPages returns the number of pages currently mapped.
func (d *DMem) MappedPages() int { return len(d.pages) }

// MappedLines returns the number of directory entries in use.
func (d *DMem) MappedLines() int { return d.entries.Len() }

// --- page mapping ---

// MapPage creates directory entries for every line of page. Each D-node
// keeps as many directory entries as memory lines exist in the pages it has
// mapped (§2.2.2); the caller must ensure DirRoom (paging out first if not).
// If the page's data is on disk the lines are marked OnDisk; otherwise they
// are Unfetched (zero-fill on demand, no Data slot consumed).
func (d *DMem) MapPage(page uint64) error {
	if page%d.pageBytes != 0 {
		return fmt.Errorf("core: unaligned page %#x", page)
	}
	if d.PageMapped(page) {
		return fmt.Errorf("core: page %#x already mapped", page)
	}
	if !d.DirRoom() {
		return fmt.Errorf("core: directory array full (%d/%d entries)", d.entries.Len(), d.dirCap)
	}
	fromDisk := d.onDisk.Has(page)
	for a := page; a < page+d.pageBytes; a += d.lineBytes {
		e := d.entryPool.Get()
		*e = DirEntry{
			Addr:      a,
			State:     DirHome,
			Master:    HomeMaster,
			LocalPtr:  nilPtr,
			Unfetched: !fromDisk,
			OnDisk:    fromDisk,
		}
		d.entries.Put(a, e)
	}
	d.pageIdx.Put(page, len(d.pages))
	d.pages = append(d.pages, page)
	d.onDisk.Remove(page)
	d.Stats.PagesMapped++
	return nil
}

// PageLines calls fn for each directory entry of a mapped page, in address
// order.
func (d *DMem) PageLines(page uint64, fn func(*DirEntry)) {
	for a := page; a < page+d.pageBytes; a += d.lineBytes {
		if e, ok := d.entries.Get(a); ok {
			fn(e)
		}
	}
}

// UnmapPage removes a page's directory entries, releasing any Data slots
// they held, and records the page as resident on disk. The caller must
// already have recalled/invalidated all P-node copies of the page's lines
// (the OS "recalls the lines that are currently not in the D-node memory",
// §2.2.2).
func (d *DMem) UnmapPage(page uint64) error {
	idx, ok := d.pageIdx.Get(page)
	if !ok {
		return fmt.Errorf("core: unmap of unmapped page %#x", page)
	}
	for a := page; a < page+d.pageBytes; a += d.lineBytes {
		e, ok := d.entries.Get(a)
		if !ok {
			continue
		}
		if e.State != DirHome {
			return fmt.Errorf("core: unmap of page %#x with un-recalled line %#x in state %v", page, a, e.State)
		}
		if e.LocalPtr != nilPtr {
			d.releaseSlot(e)
		}
		d.entries.Delete(a)
		d.entryPool.Put(e)
	}
	// Remove from the FIFO page list (swap-with-last keeps this O(1); the
	// FIFO ordering of the remaining pages is preserved well enough for
	// victim selection because pageout always takes from the front).
	last := len(d.pages) - 1
	d.pages[idx] = d.pages[last]
	d.pageIdx.Put(d.pages[idx], idx)
	d.pages = d.pages[:last]
	d.pageIdx.Delete(page)
	d.onDisk.Add(page)
	d.Stats.PagesUnmapped++
	return nil
}

// PageoutCandidates returns up to n pages to page out, oldest mapped first,
// excluding the page containing protect (the line being serviced).
func (d *DMem) PageoutCandidates(n int, protect uint64) []uint64 {
	prot := d.PageOf(protect)
	var out []uint64
	for _, p := range d.pages {
		if p == prot {
			continue
		}
		out = append(out, p)
		if len(out) == n {
			break
		}
	}
	return out
}

// --- Data slot management ---

// AllocResult describes how a Data slot was (or was not) obtained.
type AllocResult uint8

const (
	// AllocFree: a FreeList slot was used.
	AllocFree AllocResult = iota
	// AllocSharedReuse: the SharedList head was reused; that line's home
	// copy was dropped (its master lives on at a P-node).
	AllocSharedReuse
	// AllocFailed: no slot available — the caller must page out and retry.
	AllocFailed
)

// ConfigureSetAssoc switches the Data array into assoc-way set-associative
// mode — the §2.2.2 alternative the paper rejects. Must be called before
// any slot is allocated.
func (d *DMem) ConfigureSetAssoc(assoc int) {
	if assoc <= 0 || d.dataCap%assoc != 0 {
		panic(fmt.Sprintf("core: invalid D-memory associativity %d for %d slots", assoc, d.dataCap))
	}
	if d.freeLen != d.dataCap {
		panic("core: ConfigureSetAssoc on a non-empty D-memory")
	}
	d.saAssoc = assoc
	d.saCount = make([]int, d.dataCap/assoc)
}

// saSet returns the Data set index of a line in set-associative mode.
func (d *DMem) saSet(addr uint64) int {
	return int((addr / d.lineBytes) % uint64(len(d.saCount)))
}

// setFull reports whether e's line cannot be stored because its Data set is
// full (set-associative mode only).
func (d *DMem) setFull(e *DirEntry) bool {
	return d.saAssoc > 0 && d.saCount[d.saSet(e.Addr)] >= d.saAssoc
}

// EnsureSlot makes e hold a Data slot, following the paper's policy: take
// the FreeList head; if exhausted, reuse the SharedList head unless that
// would drop SharedList below the threshold. dropped is the directory entry
// whose home copy was discarded on reuse (nil otherwise). In the
// set-associative ablation an allocation additionally fails when the line's
// set is full — first trying to reuse a *same-set* SharedList resident.
func (d *DMem) EnsureSlot(e *DirEntry) (res AllocResult, dropped *DirEntry) {
	if e.LocalPtr != nilPtr {
		return AllocFree, nil
	}
	if d.saAssoc > 0 {
		// Set-associative mode: only this line's set can hold it.
		if !d.setFull(e) {
			if i, ok := d.popHead(listFree); ok {
				d.attach(e, i)
				d.Stats.SlotAllocs++
				return AllocFree, nil
			}
		}
		if victim := d.reuseSharedInSet(e); victim != nil {
			return AllocSharedReuse, victim
		}
		d.Stats.SetConflicts++
		d.Stats.PageoutsAsked++
		return AllocFailed, nil
	}
	if i, ok := d.popHead(listFree); ok {
		d.attach(e, i)
		d.Stats.SlotAllocs++
		return AllocFree, nil
	}
	if d.sharedLen > d.sharedMin {
		i, ok := d.popHead(listShared)
		if ok {
			victim, _ := d.entries.Get(d.ptrs[i].line)
			if victim == nil || victim.LocalPtr != i {
				panic("core: SharedList back pointer desynchronized")
			}
			d.dropCopy(victim)
			d.attach(e, i)
			d.Stats.SlotAllocs++
			d.Stats.SharedReuses++
			return AllocSharedReuse, victim
		}
	}
	d.Stats.PageoutsAsked++
	return AllocFailed, nil
}

// dropCopy releases victim's slot bookkeeping after its Pointer entry was
// unlinked for reuse.
func (d *DMem) dropCopy(victim *DirEntry) {
	if d.saAssoc > 0 {
		d.saCount[d.saSet(victim.Addr)]--
	}
	i := victim.LocalPtr
	victim.LocalPtr = nilPtr
	d.ptrs[i].used = false
}

// reuseSharedInSet searches the SharedList (FIFO order, bounded walk) for a
// droppable home copy in the same Data set as e, the only legal reuse in
// set-associative mode. It performs the swap and returns the dropped entry,
// or nil.
func (d *DMem) reuseSharedInSet(e *DirEntry) *DirEntry {
	want := d.saSet(e.Addr)
	i := d.sharedHead
	for steps := 0; i != nilPtr && steps < 64; steps++ {
		victim, _ := d.entries.Get(d.ptrs[i].line)
		next := d.ptrs[i].next
		if victim != nil && d.saSet(victim.Addr) == want {
			d.unlink(i)
			d.dropCopy(victim)
			d.attach(e, i)
			d.Stats.SlotAllocs++
			d.Stats.SharedReuses++
			return victim
		}
		i = next
	}
	return nil
}

// attach binds Data slot i to entry e (not on any list yet; LinkShared or
// leaving it unlinked reflects mastership).
func (d *DMem) attach(e *DirEntry, i int32) {
	p := &d.ptrs[i]
	if p.used || p.list != listNone {
		panic("core: attaching a busy pointer entry")
	}
	p.used = true
	p.line = e.Addr
	e.LocalPtr = i
	e.Unfetched = false
	e.OnDisk = false
	if d.saAssoc > 0 {
		d.saCount[d.saSet(e.Addr)]++
	}
}

// releaseSlot frees e's Data slot back to the FreeList (e.g. when the line
// became dirty at a P-node and the home's place holder is reused, §2.2.2).
func (d *DMem) releaseSlot(e *DirEntry) {
	i := e.LocalPtr
	if i == nilPtr {
		return
	}
	d.unlink(i)
	d.dropCopy(e)
	d.pushTail(listFree, i)
}

// ReleaseSlot frees e's Data slot (exported form of releaseSlot).
func (d *DMem) ReleaseSlot(e *DirEntry) { d.releaseSlot(e) }

// LinkShared ties e's slot to the SharedList tail: the home copy is a
// non-master shared copy (mastership was given to a P-node) and may be
// reclaimed FIFO if space runs short.
func (d *DMem) LinkShared(e *DirEntry) {
	if e.LocalPtr == nilPtr {
		panic("core: LinkShared without a Data slot")
	}
	if d.ptrs[e.LocalPtr].list == listShared {
		return
	}
	d.unlink(e.LocalPtr)
	d.pushTail(listShared, e.LocalPtr)
}

// UnlinkShared removes e's slot from the SharedList: the home (re)gained
// mastership, so its copy must not be dropped.
func (d *DMem) UnlinkShared(e *DirEntry) {
	if e.LocalPtr == nilPtr {
		return
	}
	if d.ptrs[e.LocalPtr].list == listShared {
		d.unlink(e.LocalPtr)
	}
}

// ForceSlot is EnsureSlot's crisis fallback: it reuses the SharedList head
// even below the threshold (the paper's "high-priority pause" region). It
// reports success and the entry whose home copy was dropped.
func (d *DMem) ForceSlot(e *DirEntry) (bool, *DirEntry) {
	if e.LocalPtr != nilPtr {
		return true, nil
	}
	if d.saAssoc > 0 {
		// Set-associative mode: only a same-set resident can be displaced.
		if !d.setFull(e) {
			if i, ok := d.popHead(listFree); ok {
				d.attach(e, i)
				d.Stats.SlotAllocs++
				return true, nil
			}
		}
		if victim := d.reuseSharedInSet(e); victim != nil {
			return true, victim
		}
		return false, nil
	}
	i, ok := d.popHead(listShared)
	if !ok {
		return false, nil
	}
	victim, _ := d.entries.Get(d.ptrs[i].line)
	if victim == nil || victim.LocalPtr != i {
		panic("core: SharedList back pointer desynchronized")
	}
	d.dropCopy(victim)
	d.attach(e, i)
	d.Stats.SlotAllocs++
	d.Stats.SharedReuses++
	return true, victim
}

// NeedPageout reports that free space is low enough that the OS should page
// out (FreeList empty and SharedList at or below the threshold).
func (d *DMem) NeedPageout() bool {
	return d.freeLen == 0 && d.sharedLen <= d.sharedMin
}

// --- accounting / verification ---

// CensusAdd accumulates this D-node's Figure 8 classification into c.
func (d *DMem) CensusAdd(c *Census) {
	d.entries.Range(func(_ uint64, e *DirEntry) bool {
		switch {
		case e.State == DirDirty:
			c.DirtyInP++
		case e.State == DirShared:
			c.SharedInP++
		case e.LocalPtr != nilPtr:
			c.DNodeOnly++
		default:
			c.Untouched++
		}
		return true
	})
	c.FreeSlots += d.freeLen
	c.SlotCap += d.dataCap
}

// AuditEntry checks one directory entry's slot-and-list discipline — the
// per-transaction slice of CheckInvariants the coherence auditor runs at
// span retirement. O(1): a dirty line must hold no Data slot; a held slot's
// Pointer entry must back-reference the line, must not sit on the FreeList,
// and must be on the SharedList exactly when mastership is held by a remote
// P-node (a droppable home copy).
func (d *DMem) AuditEntry(e *DirEntry) error {
	if e.State == DirDirty && e.HasCopy() {
		return fmt.Errorf("dirty line %#x holds Data slot %d", e.Addr, e.LocalPtr)
	}
	if !e.HasCopy() {
		return nil
	}
	p := &d.ptrs[e.LocalPtr]
	if !p.used {
		return fmt.Errorf("line %#x points at unused slot %d", e.Addr, e.LocalPtr)
	}
	if p.line != e.Addr {
		return fmt.Errorf("slot %d back-pointer %#x does not match line %#x", e.LocalPtr, p.line, e.Addr)
	}
	if p.list == listFree {
		return fmt.Errorf("line %#x holds slot %d that dangles on the FreeList", e.Addr, e.LocalPtr)
	}
	wantShared := e.State == DirShared && e.Master != HomeMaster
	if got := p.list == listShared; got != wantShared {
		return fmt.Errorf("line %#x (state %v, master %d): slot %d SharedList membership %v, want %v",
			e.Addr, e.State, e.Master, e.LocalPtr, got, wantShared)
	}
	return nil
}

// AuditFreeList is the O(1) FreeList sanity check run at span retirement:
// the head must agree with the length accounting, carry the FreeList tag,
// and reference an unused slot (a used slot reachable from the FreeList is
// the "dangling FreeList entry" corruption).
func (d *DMem) AuditFreeList() error {
	if (d.freeHead == nilPtr) != (d.freeLen == 0) {
		return fmt.Errorf("FreeList head %d disagrees with length %d", d.freeHead, d.freeLen)
	}
	if d.freeHead == nilPtr {
		return nil
	}
	p := &d.ptrs[d.freeHead]
	if p.list != listFree {
		return fmt.Errorf("FreeList head %d tagged %d, not FreeList", d.freeHead, p.list)
	}
	if p.used {
		return fmt.Errorf("dangling FreeList entry: head slot %d is in use by line %#x", d.freeHead, p.line)
	}
	if p.prev != nilPtr {
		return fmt.Errorf("FreeList head %d has predecessor %d", d.freeHead, p.prev)
	}
	return nil
}

// CheckInvariants verifies the Directory/Data/Pointer cross-links and list
// accounting. It is exercised by tests and property checks.
func (d *DMem) CheckInvariants() error {
	// Every slot is free xor used; lists are consistent.
	free, shared, noList := 0, 0, 0
	for i := range d.ptrs {
		p := &d.ptrs[i]
		switch p.list {
		case listFree:
			free++
			if p.used {
				return fmt.Errorf("slot %d on FreeList but used", i)
			}
		case listShared:
			shared++
			if !p.used {
				return fmt.Errorf("slot %d on SharedList but free", i)
			}
			e, _ := d.entries.Get(p.line)
			if e == nil || e.LocalPtr != int32(i) {
				return fmt.Errorf("slot %d SharedList back pointer broken", i)
			}
			if e.State != DirShared || e.Master == HomeMaster {
				return fmt.Errorf("slot %d on SharedList but entry %v/master=%d", i, e.State, e.Master)
			}
		case listNone:
			noList++
			if !p.used {
				return fmt.Errorf("slot %d off-list but free", i)
			}
		}
	}
	if free != d.freeLen || shared != d.sharedLen {
		return fmt.Errorf("list lengths: free %d/%d shared %d/%d", free, d.freeLen, shared, d.sharedLen)
	}
	if free+shared+noList != d.dataCap {
		return fmt.Errorf("slots don't add up: %d+%d+%d != %d", free, shared, noList, d.dataCap)
	}
	// Every entry with a slot is backed by it; dirty entries hold no slot.
	slots := 0
	var entErr error
	d.entries.Range(func(a uint64, e *DirEntry) bool {
		if a != e.Addr {
			entErr = fmt.Errorf("entry key %#x != addr %#x", a, e.Addr)
			return false
		}
		if e.LocalPtr != nilPtr {
			slots++
			p := &d.ptrs[e.LocalPtr]
			if !p.used || p.line != e.Addr {
				entErr = fmt.Errorf("entry %#x slot %d back pointer broken", a, e.LocalPtr)
				return false
			}
			if e.State == DirDirty {
				entErr = fmt.Errorf("entry %#x dirty-in-P but holds a Data slot", a)
				return false
			}
		}
		if e.State == DirShared && e.Master == HomeMaster && e.LocalPtr == nilPtr {
			entErr = fmt.Errorf("entry %#x: home is master of a shared line but holds no copy", a)
			return false
		}
		return true
	})
	if entErr != nil {
		return entErr
	}
	if slots != noList+shared {
		return fmt.Errorf("used slots %d != entries with slots %d", noList+shared, slots)
	}
	if d.entries.Len() > d.dirCap {
		return fmt.Errorf("directory overflow: %d > %d", d.entries.Len(), d.dirCap)
	}
	if d.saAssoc > 0 {
		counts := make([]int, len(d.saCount))
		d.entries.Range(func(_ uint64, e *DirEntry) bool {
			if e.LocalPtr != nilPtr {
				counts[d.saSet(e.Addr)]++
			}
			return true
		})
		for s := range counts {
			if counts[s] != d.saCount[s] {
				return fmt.Errorf("set %d count %d != recorded %d", s, counts[s], d.saCount[s])
			}
			if counts[s] > d.saAssoc {
				return fmt.Errorf("set %d over-full: %d > %d ways", s, counts[s], d.saAssoc)
			}
		}
	}
	return nil
}
