package core

import (
	"pimdsm/internal/cache"
	"pimdsm/internal/obs"
	"pimdsm/internal/sim"
)

// Scan implements computation in memory (§2.4): the home D-node's processor
// traverses lines memory lines starting at addr on behalf of P-node p,
// shipping back only the selBytes of records that satisfy the selection.
//
// Lines whose only copy is at a P-node are first written back — the paper
// notes computation in memory "is better done on data that is guaranteed not
// to leave memory; otherwise, we need to write back the data from the caches
// in advance". The write-back is a downgrade, not an invalidation: the
// former owner keeps a shared-master copy, and the home's copy stays on the
// SharedList (droppable), so scanning a table larger than the D-memory never
// forces pageouts — the scan streams through reusable slots.
//
// The scan spans page boundaries; each page is processed at its own home
// D-node, and Scan returns when the last selected record arrives at p.
func (m *Machine) Scan(now sim.Time, p int, addr uint64, lines int, selBytes uint64) sim.Time {
	if lines <= 0 {
		return now
	}
	ctrl := m.net.ControlBytes()
	done := now
	cur := m.alignLine(addr)
	remaining := lines
	for remaining > 0 {
		page := m.pageOf(cur)
		inPage := int((page + m.cfg.PageBytes - cur) / m.cfg.LineBytes)
		if inPage > remaining {
			inPage = remaining
		}
		d, _, t := m.homeFor(now, cur)
		dm := m.dmem[d]
		arrive := m.net.Send(t, m.pMesh[p], m.dMesh[d], ctrl)
		hs := m.dproc[d].Acquire(arrive, sim.Time(inPage)*m.cfg.ScanPerLine)
		m.profD(d, obs.ResProc, obs.HCScan, sim.Time(inPage)*m.cfg.ScanPerLine)
		tl := hs
		var lastRecall sim.Time
		for i := 0; i < inPage; i++ {
			e := dm.Entry(cur + uint64(i)*m.cfg.LineBytes)
			needRecall := !e.HasCopy() && !e.Unfetched &&
				(e.State == DirDirty || (e.State == DirShared && e.Master != HomeMaster))
			if needRecall {
				owner := int(e.Master)
				rq := m.net.Send(tl, m.dMesh[d], m.pMesh[owner], ctrl)
				os := m.pbank[owner].Acquire(rq, m.cfg.Timing.MemBankOcc)
				back := m.net.Send(os+m.ownerLat(owner, e.Addr), m.pMesh[owner], m.dMesh[d], m.net.DataBytes(m.cfg.LineBytes))
				if back > lastRecall {
					lastRecall = back
				}
				m.st.Recalls++
				if m.trace.On() {
					m.trace.Emit(obs.EvRecall, rq, 0, int32(owner), e.Addr, 0)
				}
				// Downgrade the owner; it keeps a shared-master copy and
				// stays the master, so the home's new copy is droppable.
				if e.State == DirDirty {
					m.pmem[owner].SetState(e.Addr, cache.SharedMaster)
					m.caches[owner].DowngradeMemLine(e.Addr)
					e.State = DirShared
					e.Sharers.Add(owner)
				}
				// Keep the data at the home only if a slot is available
				// without paging out; otherwise the scan consumed the line
				// in flight and the master remains the only holder.
				if res, _ := dm.EnsureSlot(e); res != AllocFailed {
					dm.LinkShared(e)
				}
			}
			if e.OnDisk {
				ds := m.disk[d].Acquire(tl, m.cfg.Timing.DiskLat)
				m.profD(d, obs.ResDisk, obs.HCScan, m.cfg.Timing.DiskLat)
				tl = ds + m.cfg.Timing.DiskLat
				m.st.DiskFaults++
				if m.trace.On() {
					m.trace.Emit(obs.EvDiskFault, ds, 0, m.dnode(d), e.Addr, 0)
				}
				// Keep the faulted data if room exists; otherwise it is
				// consumed in flight and the line stays on disk.
				if res, _ := dm.EnsureSlot(e); res != AllocFailed {
					if e.State == DirShared && e.Master != HomeMaster {
						dm.LinkShared(e)
					}
				}
			}
			m.dbank[d].Acquire(tl, m.cfg.Timing.MemBankOcc)
			m.profD(d, obs.ResMem, obs.HCScan, m.cfg.Timing.MemBankOcc)
			tl += m.cfg.ScanPerLine
			m.st.ScanLines++
		}
		if lastRecall > tl {
			tl = lastRecall
		}
		m.dproc[d].Block(hs, tl)
		if tl > hs {
			m.profD(d, obs.ResProc, obs.HCScan, tl-hs)
		}
		if m.trace.On() {
			m.trace.Emit(obs.EvScan, hs, tl-hs, m.dnode(d), page, uint64(inPage))
		}
		// Ship this page's share of the selected records.
		sel := selBytes * uint64(inPage) / uint64(lines)
		pd := m.net.Send(tl, m.dMesh[d], m.pMesh[p], m.net.DataBytes(sel))
		if pd > done {
			done = pd
		}
		cur += uint64(inPage) * m.cfg.LineBytes
		remaining -= inPage
	}
	m.st.Scans++
	return done
}
