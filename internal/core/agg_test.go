package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pimdsm/internal/cache"
	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

// testMachine builds a small AGG machine: 2 P-nodes, 2 D-nodes, 4 KB P-node
// memories (32 lines, 4-way), 64 Data slots per D-node, 512 B pages.
func testMachine(t *testing.T) *Machine {
	t.Helper()
	cfg := DefaultConfig(2, 2, 4096, 64, 1024, 4096)
	cfg.PageBytes = 512
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPlacementSpreadsDNodes(t *testing.T) {
	p, d := Placement(64, 32, 32)
	if len(p) != 32 || len(d) != 32 {
		t.Fatalf("placement sizes %d/%d", len(p), len(d))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, p...), d...) {
		if seen[i] || i < 0 || i >= 64 {
			t.Fatalf("bad mesh index %d", i)
		}
		seen[i] = true
	}
	// 1/1 ratio should alternate roughly every other slot.
	if d[1]-d[0] != 2 {
		t.Fatalf("1/1 D-node stride = %d, want 2", d[1]-d[0])
	}
	// Uneven ratios still produce unique, in-range indices.
	p, d = Placement(40, 32, 8)
	if len(p) != 32 || len(d) != 8 {
		t.Fatalf("1/4 placement sizes %d/%d", len(p), len(d))
	}
}

func TestFirstWriteIsTwoHopDirty(t *testing.T) {
	m := testMachine(t)
	done, class := m.Access(0, 0, 0x1000, true)
	if class != proto.Lat2Hop {
		t.Fatalf("first write class = %v, want 2Hop", class)
	}
	if done <= 0 {
		t.Fatal("no time elapsed")
	}
	st, hit, _ := m.PMemOf(0).Lookup(0x1000)
	if !hit || st != cache.Dirty {
		t.Fatalf("writer's memory state = %v/%v, want Dirty", st, hit)
	}
	d, _ := m.homes.Get(m.pageOf(0x1000))
	e := m.DMemOf(d).Entry(0x1000)
	if e.State != DirDirty || e.Master != 0 {
		t.Fatalf("directory = %v/master=%d, want Dirty/0", e.State, e.Master)
	}
	// Dirty-in-P lines must not consume a home Data slot (§2.2.2).
	if e.HasCopy() {
		t.Fatal("home kept a place holder for a dirty line")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstReadGrantsMastership(t *testing.T) {
	m := testMachine(t)
	_, class := m.Access(0, 0, 0x2000, false)
	if class != proto.Lat2Hop {
		t.Fatalf("first read class = %v, want 2Hop", class)
	}
	st, hit, _ := m.PMemOf(0).Lookup(0x2000)
	if !hit || st != cache.SharedMaster {
		t.Fatalf("reader's state = %v/%v, want SharedMaster", st, hit)
	}
	d, _ := m.homes.Get(m.pageOf(0x2000))
	dm := m.DMemOf(d)
	e := dm.Entry(0x2000)
	if e.State != DirShared || e.Master != 0 || !e.HasCopy() {
		t.Fatalf("directory = %+v", e)
	}
	// The home's copy is on the SharedList (droppable).
	if dm.SharedLen() != 1 {
		t.Fatalf("SharedLen = %d, want 1", dm.SharedLen())
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOfDirtyLineIsThreeHop(t *testing.T) {
	m := testMachine(t)
	wDone, _ := m.Access(0, 0, 0x3000, true)
	done, class := m.Access(wDone, 1, 0x3000, false)
	if class != proto.Lat3Hop {
		t.Fatalf("read of remote-dirty class = %v, want 3Hop", class)
	}
	if done <= wDone {
		t.Fatal("3-hop read took no time")
	}
	// Owner downgraded to shared-master; home still has no copy.
	st, _, _ := m.PMemOf(0).Lookup(0x3000)
	if st != cache.SharedMaster {
		t.Fatalf("previous owner state = %v, want SharedMaster", st)
	}
	st, _, _ = m.PMemOf(1).Lookup(0x3000)
	if st != cache.Shared {
		t.Fatalf("reader state = %v, want Shared", st)
	}
	d, _ := m.homes.Get(m.pageOf(0x3000))
	dm := m.DMemOf(d)
	e := dm.Entry(0x3000)
	if e.State != DirShared || e.Master != 0 {
		t.Fatalf("directory = %+v", e)
	}
	// The sharing write-back gave the home an up-to-date droppable copy.
	if !e.HasCopy() || dm.SharedLen() != 1 {
		t.Fatalf("home copy after sharing write-back: hasCopy=%v sharedLen=%d", e.HasCopy(), dm.SharedLen())
	}
	// A third read now comes from the home in 2 hops.
	m.caches[1].Flush(nil)
	m.PMemOf(1).Invalidate(0x3000)
	_, class = m.Access(done, 1, 0x3000, false)
	if class != proto.Lat2Hop {
		t.Fatalf("post-sharing-WB read class = %v, want 2Hop", class)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x4000, false)  // P0 shared-master
	t2, _ := m.Access(t1, 1, 0x4000, false) // P1 shared (2-hop from home copy)
	before := m.Stats().Invalidations
	done, _ := m.Access(t2, 1, 0x4000, true) // P1 upgrades
	if m.Stats().Invalidations != before+1 {
		t.Fatalf("invalidations = %d, want %d", m.Stats().Invalidations, before+1)
	}
	if m.Stats().Upgrades != 1 {
		t.Fatalf("upgrades = %d, want 1", m.Stats().Upgrades)
	}
	// P0's copy is gone; P1 owns.
	if st := m.PMemOf(0).Invalidate(0x4000); st != cache.Invalid {
		t.Fatalf("P0 still held %v", st)
	}
	st, _, _ := m.PMemOf(1).Lookup(0x4000)
	if st != cache.Dirty {
		t.Fatalf("P1 state = %v, want Dirty", st)
	}
	d, _ := m.homes.Get(m.pageOf(0x4000))
	e := m.DMemOf(d).Entry(0x4000)
	if e.State != DirDirty || e.Master != 1 || e.HasCopy() {
		t.Fatalf("directory = %+v", e)
	}
	_ = done
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSecondReadComesFromHomeCopy(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x5000, false)
	_, class := m.Access(t1, 1, 0x5000, false)
	if class != proto.Lat2Hop {
		t.Fatalf("second reader class = %v, want 2Hop (home kept a copy)", class)
	}
	st, _, _ := m.PMemOf(1).Lookup(0x5000)
	if st != cache.Shared {
		t.Fatalf("second reader state = %v, want Shared (non-master)", st)
	}
}

func TestLocalMemoryHitAfterFetch(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x6000, false)
	// Hit in L1 right away.
	t2, class := m.Access(t1, 0, 0x6000, false)
	if class != proto.LatL1 || t2 != t1+3 {
		t.Fatalf("L1 hit: class=%v lat=%d", class, t2-t1)
	}
	// A different word of the same memory line misses L1 but hits L2
	// (the whole 128B line was brought into L2).
	_, class = m.Access(t2, 0, 0x6000+64, false)
	if class != proto.LatL2 {
		t.Fatalf("sibling subline class = %v, want L2", class)
	}
}

func TestLocalMemoryServesEvictedCacheLines(t *testing.T) {
	m := testMachine(t)
	// Touch enough distinct lines to overflow L1+L2 but stay within the
	// 32-line local memory. L2 = 4KB = 64 SRAM lines = 32 memory lines; use
	// lines mapping to the same L2 set... simpler: re-access after flushing
	// the SRAM caches directly.
	t1, _ := m.Access(0, 0, 0x7000, false)
	m.caches[0].Flush(nil)
	_, class := m.Access(t1, 0, 0x7000, false)
	if class != proto.LatMem {
		t.Fatalf("post-SRAM-flush class = %v, want Memory", class)
	}
}

func TestDirtyEvictionWritesBackAndHomeAccepts(t *testing.T) {
	m := testMachine(t)
	// P-node memory: 32 lines, 4-way, 8 sets. Writing 5 lines that map to
	// the same set (stride = 8 lines * 128B = 1KB) forces one eviction.
	now := sim.Time(0)
	for i := uint64(0); i < 5; i++ {
		now, _ = m.Access(now, 0, i*1024, true)
	}
	if m.Stats().WriteBacks != 1 {
		t.Fatalf("write-backs = %d, want 1", m.Stats().WriteBacks)
	}
	// The LRU victim (line 0) is now home-only with a Data slot.
	d, _ := m.homes.Get(m.pageOf(0))
	e := m.DMemOf(d).Entry(0)
	if e.State != DirHome || !e.HasCopy() || e.Master != HomeMaster {
		t.Fatalf("written-back line directory = %+v", e)
	}
	// And its sublines are out of P0's SRAM caches.
	if m.caches[0].Holds(0) {
		t.Fatal("evicted line still in SRAM caches")
	}
	// Re-reading it is a 2-hop home fetch.
	_, class := m.Access(now, 0, 0, false)
	if class != proto.Lat2Hop {
		t.Fatalf("re-read class = %v, want 2Hop", class)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirRoomPageout(t *testing.T) {
	cfg := DefaultConfig(2, 1, 4096, 8, 1024, 4096)
	cfg.PageBytes = 512 // 4 lines/page; dir capacity = 12 entries = 3 pages
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	// Touch one line in each of 3 pages: directory full.
	for pg := uint64(0); pg < 3; pg++ {
		now, _ = m.Access(now, 0, pg*512, false)
	}
	if m.Stats().Pageouts != 0 {
		t.Fatalf("premature pageouts: %d", m.Stats().Pageouts)
	}
	// A 4th page forces the D-node to page out.
	now, _ = m.Access(now, 0, 3*512, false)
	if m.Stats().Pageouts == 0 {
		t.Fatal("no pageout despite directory pressure")
	}
	// The paged-out page's line must be gone from P0 (recalled/invalidated).
	dm := m.DMemOf(0)
	pagedOut := uint64(0xffffffff)
	for pg := uint64(0); pg < 3; pg++ {
		if !dm.PageMapped(pg * 512) {
			pagedOut = pg * 512
		}
	}
	if pagedOut == 0xffffffff {
		t.Fatal("no page was unmapped")
	}
	if st, hit, _ := m.PMemOf(0).Lookup(pagedOut); hit {
		t.Fatalf("P0 still holds paged-out line in state %v", st)
	}
	// Touching the paged-out page again faults it in from disk.
	before := m.Stats().DiskFaults
	now, _ = m.Access(now, 0, pagedOut, false)
	if m.Stats().DiskFaults != before+1 {
		t.Fatalf("disk faults = %d, want %d", m.Stats().DiskFaults, before+1)
	}
	_ = now
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCensusCountsStates(t *testing.T) {
	m := testMachine(t)
	t1, _ := m.Access(0, 0, 0x100, true)   // dirty in P0
	t2, _ := m.Access(t1, 1, 0x800, false) // shared (master at P1, home copy)
	_, _ = m.Access(t2, 0, 0x800, false)   // second sharer
	c := m.CensusTotal()
	if c.DirtyInP != 1 || c.SharedInP != 1 {
		t.Fatalf("census = %+v", c)
	}
}

// Property: under random accesses by both P-nodes, the machine invariants
// hold, completion times never precede issue times, and the directory's
// dirty count matches the ground truth in P-node memories.
func TestAGGRandomAccessProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		cfg := DefaultConfig(2, 2, 2048, 16, 512, 1024)
		cfg.PageBytes = 512
		m, err := New(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 1))
		clock := [2]sim.Time{}
		for i := 0; i < 40+int(steps); i++ {
			p := rng.IntN(2)
			addr := uint64(rng.IntN(48)) * 128 // 6 pages of footprint
			write := rng.IntN(3) == 0
			done, _ := m.Access(clock[p], p, addr, write)
			if done < clock[p] {
				t.Logf("time went backwards: %d -> %d", clock[p], done)
				return false
			}
			clock[p] = done
			// Advance the other clock too so the global order stays sane.
			if clock[1-p] < done {
				clock[1-p] = done
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		// Dirty ground truth == directory census.
		dirty := 0
		for p := 0; p < 2; p++ {
			m.PMemOf(p).ForEach(func(_ uint64, s cache.State, _ bool) {
				if s == cache.Dirty {
					dirty++
				}
			})
		}
		c := m.CensusTotal()
		if c.DirtyInP != dirty {
			t.Logf("census DirtyInP=%d, ground truth %d", c.DirtyInP, dirty)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
