package core

import (
	"testing"

	"pimdsm/internal/cache"
	"pimdsm/internal/sim"
)

func TestScanOfHomeResidentData(t *testing.T) {
	m := testMachine(t)
	// Materialize lines at the home: write then write back via recall-free
	// route — simplest is to read them (home keeps copies on first read).
	now := sim.Time(0)
	for l := uint64(0); l < 8; l++ {
		now, _ = m.Access(now, 1, 0x8000+l*128, false)
	}
	before := m.Stats().Recalls
	done := m.Scan(now, 0, 0x8000, 8, 512)
	if done <= now {
		t.Fatal("scan took no time")
	}
	if m.Stats().Scans != 1 || m.Stats().ScanLines != 8 {
		t.Fatalf("scan counters: %d scans, %d lines", m.Stats().Scans, m.Stats().ScanLines)
	}
	// Shared lines with home copies need no recalls.
	if m.Stats().Recalls != before {
		t.Fatalf("scan recalled home-resident lines (%d recalls)", m.Stats().Recalls-before)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanRecallsDirtyLinesByDowngrade(t *testing.T) {
	m := testMachine(t)
	now := sim.Time(0)
	for l := uint64(0); l < 4; l++ {
		now, _ = m.Access(now, 1, 0x9000+l*128, true) // dirty at P1
	}
	done := m.Scan(now, 0, 0x9000, 4, 256)
	if m.Stats().Recalls != 4 {
		t.Fatalf("recalls = %d, want 4", m.Stats().Recalls)
	}
	// The former owner keeps a droppable master copy (downgrade, not
	// invalidation): "data that is guaranteed not to leave memory".
	st, hit, _ := m.PMemOf(1).Lookup(0x9000)
	if !hit || st != cache.SharedMaster {
		t.Fatalf("owner state after scan = %v/%v, want SharedMaster", st, hit)
	}
	d, _ := m.homes.Get(m.pageOf(0x9000))
	e := m.DMemOf(d).Entry(0x9000)
	if e.State != DirShared || !e.HasCopy() {
		t.Fatalf("directory after scan = %+v", e)
	}
	_ = done
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScanSpansPages(t *testing.T) {
	cfg := DefaultConfig(2, 2, 4096, 64, 1024, 4096)
	cfg.PageBytes = 512 // 4 lines per page
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := m.Scan(0, 0, 0, 10, 600) // 2.5 pages
	if done == 0 {
		t.Fatal("scan took no time")
	}
	if m.Stats().ScanLines != 10 {
		t.Fatalf("scanned %d lines, want 10", m.Stats().ScanLines)
	}
	// Round-robin homing: the pages went to different D-nodes.
	h0, _ := m.homes.Get(0)
	h512, _ := m.homes.Get(512)
	if h0 == h512 {
		t.Fatal("consecutive pages homed at the same D-node")
	}
}

func TestScanZeroLines(t *testing.T) {
	m := testMachine(t)
	if done := m.Scan(100, 0, 0x1000, 0, 0); done != 100 {
		t.Fatalf("zero-line scan advanced time to %d", done)
	}
}
