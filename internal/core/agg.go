package core

import (
	"fmt"

	"pimdsm/internal/cache"
	"pimdsm/internal/hashmap"
	"pimdsm/internal/mesh"
	"pimdsm/internal/obs"
	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
	"pimdsm/internal/stats"
)

// Config describes one AGG machine (§2 of the paper): PNodes compute nodes
// with tagged local memories organized as caches, and DNodes directory nodes
// running the software coherence protocol over their Directory/Data/Pointer
// arrays.
type Config struct {
	PNodes int
	DNodes int

	LineBytes uint64 // memory line (coherence unit), 128 B in the paper
	PageBytes uint64

	// PMemBytes is each P-node's local DRAM capacity (on- plus off-chip);
	// it is organized as a PMemAssoc-way cache with OnChipFraction of the
	// capacity on chip.
	PMemBytes      uint64
	PMemAssoc      int
	OnChipFraction float64

	// DMemLines is the number of Data slots per D-node. The Directory array
	// has DirFactor times as many entries (the paper evaluates 1.5).
	DMemLines int
	DirFactor float64
	// SharedMinFrac sets the SharedList low-water threshold as a fraction
	// of DMemLines.
	SharedMinFrac float64
	// PageoutBatch is how many pages one pageout episode tries to free.
	PageoutBatch int
	// ScanPerLine is the D-node processor cost per line of a
	// computation-in-memory scan (§2.4).
	ScanPerLine sim.Time
	// DMemSetAssoc, when positive, organizes the D-node Data arrays
	// set-associatively instead of fully associatively — the §2.2.2
	// alternative the paper rejects because incoming lines can find their
	// set full. Kept as an ablation of that design choice.
	DMemSetAssoc int

	Caches proto.CacheGeom
	Timing proto.Timing
	Costs  proto.HandlerCosts
	Mesh   mesh.Config // Width/Height 0 means: derive from node count
}

// DefaultConfig returns a Table 1 configuration for the given node counts and
// per-node memory sizes.
func DefaultConfig(pNodes, dNodes int, pMemBytes uint64, dMemLines int, l1, l2 uint64) Config {
	cfg := Config{
		PNodes:         pNodes,
		DNodes:         dNodes,
		LineBytes:      128,
		PageBytes:      4096,
		PMemBytes:      pMemBytes,
		PMemAssoc:      4,
		OnChipFraction: 0.5,
		DMemLines:      dMemLines,
		// The paper's space-overhead analysis assumes 1.5 Directory entries
		// per Data slot (§2.2.2); we add ~13% slack so the round-robin page
		// placement's ±1-page variance does not sit exactly at the
		// directory-capacity cliff at 75% pressure.
		DirFactor:     1.7,
		SharedMinFrac: 0.05,
		PageoutBatch:  4,
		ScanPerLine:   8,
		Caches:        proto.DefaultCacheGeom(l1, l2),
		Timing:        proto.DefaultTiming(128),
		Costs:         proto.AGGCosts(),
	}
	cfg.Mesh = mesh.DefaultConfig(0, 0) // sized in New
	return cfg
}

// Machine is the AGG coherence engine: the paper's primary contribution.
// It owns the P-node cache hierarchies and tagged memories, the D-node
// software directories, and the mesh, and services memory accesses with
// transaction-atomic timing (see DESIGN.md §2).
type Machine struct {
	cfg Config
	net *mesh.Mesh

	// Mesh placement: D-nodes are spread evenly among P-nodes.
	pMesh, dMesh []int

	// Per P-node.
	caches []*proto.CacheSet
	pmem   []*cache.LocalMemory
	pbank  []sim.Resource

	// Per D-node.
	dmem  []*DMem
	dproc []sim.Resource // the protocol-handler processor
	dbank []sim.Resource
	disk  []sim.Resource // local paging device

	homes    hashmap.Map[int] // page -> D-node (first touch, round robin)
	nextHome int
	allP     []int

	st    stats.Machine
	trace *obs.Trace
	spans *obs.Spans
	prof  *obs.Profile

	audit       bool
	auditViol   uint64
	auditSample []string
}

// New builds an AGG machine.
func New(cfg Config) (*Machine, error) {
	if cfg.PNodes <= 0 || cfg.DNodes <= 0 {
		return nil, fmt.Errorf("core: need at least one P- and one D-node, got %d/%d", cfg.PNodes, cfg.DNodes)
	}
	total := cfg.PNodes + cfg.DNodes
	mc := cfg.Mesh
	if mc.Width == 0 || mc.Height == 0 {
		mc.Width, mc.Height = meshDims(total)
	}
	if mc.Width*mc.Height < total {
		return nil, fmt.Errorf("core: mesh %dx%d too small for %d nodes", mc.Width, mc.Height, total)
	}
	net, err := mesh.New(mc)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		net:   net,
		trace: obs.Nop(),
		spans: obs.NopSpans(),
		prof:  obs.NopProfile(),
	}
	m.pMesh, m.dMesh = Placement(total, cfg.PNodes, cfg.DNodes)
	m.caches = make([]*proto.CacheSet, cfg.PNodes)
	m.pmem = make([]*cache.LocalMemory, cfg.PNodes)
	m.pbank = make([]sim.Resource, cfg.PNodes)
	for i := range m.caches {
		cs, err := proto.NewCacheSet(cfg.Caches, cfg.LineBytes)
		if err != nil {
			return nil, err
		}
		m.caches[i] = cs
		lm, err := cache.NewLocal(cfg.PMemBytes, cfg.LineBytes, cfg.PMemAssoc, cfg.OnChipFraction)
		if err != nil {
			return nil, err
		}
		m.pmem[i] = lm
	}
	m.dmem = make([]*DMem, cfg.DNodes)
	m.dproc = make([]sim.Resource, cfg.DNodes)
	m.dbank = make([]sim.Resource, cfg.DNodes)
	m.disk = make([]sim.Resource, cfg.DNodes)
	sharedMin := int(float64(cfg.DMemLines) * cfg.SharedMinFrac)
	dirEntries := int(float64(cfg.DMemLines) * cfg.DirFactor)
	for i := range m.dmem {
		dm, err := NewDMem(cfg.DMemLines, dirEntries, cfg.LineBytes, cfg.PageBytes, sharedMin)
		if err != nil {
			return nil, err
		}
		if cfg.DMemSetAssoc > 0 {
			a := cfg.DMemSetAssoc
			for cfg.DMemLines%a != 0 {
				a-- // geometry guard for sizes that don't divide evenly
			}
			dm.ConfigureSetAssoc(a)
		}
		m.dmem[i] = dm
	}
	m.allP = make([]int, cfg.PNodes)
	for i := range m.allP {
		m.allP[i] = i
	}
	return m, nil
}

// meshDims picks a near-square mesh for n endpoints, preferring width 8
// (the paper's machines are 8-wide meshes: 8x8 for 1/1AGG, 8x6 for 1/2AGG,
// 8x5 for 1/4AGG, 8x4 for NUMA/COMA).
func meshDims(n int) (w, h int) {
	w = 8
	if n < 8 {
		w = n
	}
	h = (n + w - 1) / w
	return w, h
}

// Placement spreads d D-nodes evenly among p P-nodes over mesh indices
// 0..total-1 and returns the mesh index of each P-node and D-node.
func Placement(total, p, d int) (pMesh, dMesh []int) {
	isD := make([]bool, total)
	for k := 0; k < d; k++ {
		pos := (k*total + total/2) / d
		for isD[pos%total] {
			pos++
		}
		isD[pos%total] = true
	}
	for i := 0; i < total; i++ {
		if isD[i] {
			dMesh = append(dMesh, i)
		} else {
			pMesh = append(pMesh, i)
		}
	}
	return pMesh, dMesh
}

// LineBytes returns the coherence unit size.
func (m *Machine) LineBytes() uint64 { return m.cfg.LineBytes }

// Stats returns the machine's event counters.
func (m *Machine) Stats() *stats.Machine { return &m.st }

// Mesh returns the interconnect (for traffic statistics).
func (m *Machine) Mesh() *mesh.Mesh { return m.net }

// SetTrace routes protocol trace events to t (nil disables). P-node events
// carry node IDs 0..PNodes-1; D-node events carry PNodes+d.
func (m *Machine) SetTrace(t *obs.Trace) {
	if t == nil {
		t = obs.Nop()
	}
	m.trace = t
	m.net.SetTrace(t)
}

// SetSpans routes transaction-span phase marks to s (nil disables), on the
// machine and its mesh. Spans are record-only: timing never reads them.
func (m *Machine) SetSpans(s *obs.Spans) {
	if s == nil {
		s = obs.NopSpans()
	}
	m.spans = s
	m.net.SetSpans(s)
}

// SetProfile routes handler-class cycle attribution to p (nil disables), on
// the machine and its mesh. Profiling is record-only: timing never reads it.
func (m *Machine) SetProfile(p *obs.Profile) {
	if p == nil {
		p = obs.NopProfile()
	}
	p.EnsureNodes(m.cfg.PNodes + m.cfg.DNodes)
	m.prof = p
	m.net.SetProfile(p)
}

// FinishProfile folds the independent per-resource accounting — the
// cross-check side of the profiler's Σclass == busy invariant — into the
// attached profile. Cold path, called once after a run.
func (m *Machine) FinishProfile() {
	if !m.prof.On() {
		return
	}
	for d := range m.dproc {
		dn := int(m.dnode(d))
		b, a, w := m.dproc[d].Utilization()
		m.prof.SetResource(dn, obs.ResProc, b, a, w, m.dproc[d].FreeAt())
		b, a, w = m.dbank[d].Utilization()
		m.prof.SetResource(dn, obs.ResMem, b, a, w, m.dbank[d].FreeAt())
		b, a, w = m.disk[d].Utilization()
		m.prof.SetResource(dn, obs.ResDisk, b, a, w, m.disk[d].FreeAt())
	}
	m.net.FoldProfile(m.prof)
}

// profD attributes cycles held on D-node d's resource r to handler class c.
func (m *Machine) profD(d int, r obs.NodeRes, c obs.HandlerClass, cy sim.Time) {
	m.prof.Node(int(m.dnode(d)), r, c, cy)
}

// SetAudit enables the per-transaction coherence audit: after every access
// retires, the accessed line's directory entry is checked against the
// protocol invariants and the owning P-node's ground-truth memory state.
// The audit only reads (cache lookups are the non-mutating variants), so
// results stay bit-identical with auditing on.
func (m *Machine) SetAudit(on bool) { m.audit = on }

// AuditReport returns the violation count and up to maxAuditSamples
// diagnostics collected since the machine was built.
func (m *Machine) AuditReport() (uint64, []string) { return m.auditViol, m.auditSample }

// maxAuditSamples bounds the diagnostic strings kept by the auditors.
const maxAuditSamples = 8

func (m *Machine) auditFail(format string, args ...any) {
	m.auditViol++
	if len(m.auditSample) < maxAuditSamples {
		m.auditSample = append(m.auditSample, fmt.Sprintf(format, args...))
	}
}

// auditAccess validates the accessed line's directory entry after a
// transaction. A nil entry is legal: a victim write-back inside the
// transaction can page out the accessed line's own page (pageout only
// protects the victim's page).
func (m *Machine) auditAccess(addr uint64) {
	line := m.alignLine(addr)
	d, ok := m.homes.Get(m.pageOf(line))
	if !ok {
		m.auditFail("line %#x: no home assigned after access", line)
		return
	}
	dm := m.dmem[d]
	e := dm.Entry(line)
	if e == nil {
		if !dm.PageOnDisk(m.pageOf(line)) {
			m.auditFail("line %#x: unmapped at home D%d but not on disk", line, d)
		}
		return
	}
	switch e.State {
	case DirDirty:
		if e.Master == HomeMaster || int(e.Master) >= m.cfg.PNodes {
			m.auditFail("dirty line %#x has no valid owner (master %d)", line, e.Master)
			break
		}
		if !e.Sharers.Empty() {
			m.auditFail("dirty line %#x has sharers recorded", line)
		}
		if st, hit, _ := m.pmem[e.Master].Lookup(line); !hit || st != cache.Dirty {
			m.auditFail("dirty line %#x: owner P%d holds %v (hit=%v), want Dirty", line, e.Master, st, hit)
		}
	case DirShared:
		if e.Master == HomeMaster {
			if !e.HasCopy() {
				m.auditFail("shared line %#x mastered at home without a home copy", line)
			}
		} else {
			if st, hit, _ := m.pmem[e.Master].Lookup(line); !hit || st != cache.SharedMaster {
				m.auditFail("shared line %#x: master P%d holds %v (hit=%v), want SharedMaster", line, e.Master, st, hit)
			}
			if !e.Sharers.Contains(int(e.Master)) {
				m.auditFail("shared line %#x: master P%d missing from sharer vector", line, e.Master)
			}
		}
	case DirHome:
		if e.Master != HomeMaster {
			m.auditFail("home-state line %#x claims master %d", line, e.Master)
		}
		if e.Unfetched && e.HasCopy() {
			m.auditFail("unfetched line %#x holds a Data slot", line)
		}
	}
	if err := dm.AuditEntry(e); err != nil {
		m.auditFail("line %#x at D%d: %v", line, d, err)
	}
	if err := dm.AuditFreeList(); err != nil {
		m.auditFail("D%d: %v", d, err)
	}
}

// dnode is the trace node ID of D-node d (P-nodes occupy 0..PNodes-1).
func (m *Machine) dnode(d int) int32 { return int32(m.cfg.PNodes + d) }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

func (m *Machine) alignLine(addr uint64) uint64 { return addr &^ (m.cfg.LineBytes - 1) }
func (m *Machine) pageOf(addr uint64) uint64    { return addr &^ (m.cfg.PageBytes - 1) }

// homeFor returns the home D-node of addr's page, assigning it round-robin
// on first touch and mapping the page into the D-node's directory (paging
// out to make directory room if needed). It returns a possibly-advanced time
// if OS work was required.
func (m *Machine) homeFor(t sim.Time, addr uint64) (int, *DirEntry, sim.Time) {
	page := m.pageOf(addr)
	d, ok := m.homes.Get(page)
	if !ok {
		d = m.nextHome % m.cfg.DNodes
		m.nextHome++
		m.homes.Put(page, d)
		m.st.FirstTouches++
	}
	dm := m.dmem[d]
	if !dm.PageMapped(page) {
		if !dm.DirRoom() {
			t = m.pageout(t, d, addr, false)
		}
		if err := dm.MapPage(page); err != nil {
			panic(fmt.Sprintf("core: cannot map page %#x at D%d: %v", page, d, err))
		}
	}
	return d, dm.Entry(addr), t
}

// ownerLat is the latency for a P-node's memory controller to read a line it
// holds, depending on on-/off-chip placement.
func (m *Machine) ownerLat(p int, line uint64) sim.Time {
	_, hit, onChip := m.pmem[p].Lookup(line)
	if hit && onChip {
		return m.cfg.Timing.MemOnChip
	}
	return m.cfg.Timing.MemOffChip
}

// Access services a load or store issued by P-node p at local time now.
// It returns the completion time and the satisfaction class. State across
// the whole machine is updated atomically; timing flows through the
// contended resources (mesh links, D-node processors, DRAM interfaces).
func (m *Machine) Access(now sim.Time, p int, addr uint64, write bool) (sim.Time, proto.LatClass) {
	if m.spans.On() {
		m.spans.Begin(now, int32(p), m.alignLine(addr), write)
	}
	done, class := m.access(now, p, addr, write)
	if m.spans.On() {
		m.spans.End(done, class)
	}
	if m.audit {
		m.auditAccess(addr)
	}
	if write {
		m.st.Write(class, done-now)
	} else {
		m.st.Read(class, done-now)
	}
	if m.trace.On() {
		k := obs.EvRead
		if write {
			k = obs.EvWrite
		}
		m.trace.Emit(k, now, done-now, int32(p), m.alignLine(addr), uint64(class))
	}
	return done, class
}

func (m *Machine) access(now sim.Time, p int, addr uint64, write bool) (sim.Time, proto.LatClass) {
	// SRAM caches.
	if hit, class, _ := m.caches[p].Lookup(addr, write); hit {
		lat := m.cfg.Timing.L1Lat
		if class == proto.LatL2 {
			lat = m.cfg.Timing.L2Lat
		}
		return now + lat, class
	}

	// Tagged local memory: on a hit the processor never leaves the node,
	// irrespective of the line's home (§2.1.1).
	st, hit, onChip := m.pmem[p].Access(addr)
	bankStart := m.pbank[p].Acquire(now, m.cfg.Timing.MemBankOcc)
	memLat := m.cfg.Timing.MemOffChip
	if onChip {
		memLat = m.cfg.Timing.MemOnChip
	}
	if !hit {
		// Tag check that misses is resolved on chip.
		memLat = m.cfg.Timing.MemOnChip
	}
	memDone := bankStart + memLat
	if hit && (!write || st == cache.Dirty) {
		m.caches[p].Fill(addr, st == cache.Dirty)
		return memDone, proto.LatMem
	}

	// Remote transaction through the home D-node.
	d, e, reqT := m.homeFor(memDone, addr)
	if write {
		upgrade := hit // p already holds a readable copy; ownership only
		return m.remoteWrite(reqT, p, d, addr, e, upgrade)
	}
	return m.remoteRead(reqT, p, d, addr, e)
}

// remoteRead runs a read transaction at the home D-node d.
func (m *Machine) remoteRead(reqT sim.Time, p, d int, addr uint64, e *DirEntry) (sim.Time, proto.LatClass) {
	line := m.alignLine(addr)
	ctrl := m.net.ControlBytes()
	data := m.net.DataBytes(m.cfg.LineBytes)
	if m.spans.On() {
		m.spans.Mark(obs.PhaseIssue, reqT)
	}
	arrive := m.net.Send(reqT, m.pMesh[p], m.dMesh[d], ctrl)
	if m.spans.On() {
		m.spans.Mark(obs.PhaseNetRequest, arrive)
	}

	var done sim.Time
	var class proto.LatClass
	var fillState cache.State

	switch e.State {
	case DirDirty:
		// 3-hop: forward to the owner, which downgrades to shared-master
		// and supplies the line; the home keeps no copy (the place holder
		// stays reusable, §2.2.2).
		owner := int(e.Master)
		if owner == p {
			panic("core: read miss by the dirty owner")
		}
		hs := m.dproc[d].Acquire(arrive, m.cfg.Costs.ReadOcc)
		m.profD(d, obs.ResProc, obs.HCDirLookup, m.cfg.Costs.ReadOcc)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, hs+m.cfg.Costs.ReadLat)
		}
		fwd := m.net.Send(hs+m.cfg.Costs.ReadLat, m.dMesh[d], m.pMesh[owner], ctrl)
		lat := m.ownerLat(owner, line)
		ms := m.pbank[owner].Acquire(fwd, m.cfg.Timing.MemBankOcc)
		sendT := ms + lat
		if m.spans.On() {
			m.spans.Mark(obs.PhaseOwnerFetch, sendT)
		}
		done = m.net.Send(sendT, m.pMesh[owner], m.pMesh[p], data)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseNetReply, done)
		}
		// Sharing write-back: the home regains an up-to-date copy ("its
		// memory contains, in most of the cases, an up-to-date copy of all
		// the lines ... that are not owned by any P-node", §2.2). The copy
		// is optional: if no slot is free without paging out, the home
		// stays copyless and later reads pay 3 hops via the master.
		wbArr := m.net.Send(sendT, m.pMesh[owner], m.dMesh[d], data)
		ws := m.dproc[d].Acquire(wbArr, m.cfg.Costs.AckOcc)
		m.profD(d, obs.ResProc, obs.HCWriteBack, m.cfg.Costs.AckOcc)
		m.pmem[owner].SetState(line, cache.SharedMaster)
		m.caches[owner].DowngradeMemLine(line)
		e.State = DirShared
		e.Master = int32(owner)
		e.Sharers.Clear()
		e.Sharers.Add(owner)
		e.Sharers.Add(p)
		if res, _ := m.dmem[d].EnsureSlot(e); res != AllocFailed {
			m.dbank[d].Acquire(ws, m.cfg.Timing.MemBankOcc)
			m.profD(d, obs.ResMem, obs.HCListOps, m.cfg.Timing.MemBankOcc)
			m.dmem[d].LinkShared(e)
		}
		fillState, class = cache.Shared, proto.Lat3Hop

	case DirShared:
		if e.HasCopy() {
			// 2-hop reply from the home's Data array.
			hs := m.dproc[d].Acquire(arrive, m.cfg.Costs.ReadOcc)
			m.profD(d, obs.ResProc, obs.HCDirLookup, m.cfg.Costs.ReadOcc)
			m.dbank[d].Acquire(hs, m.cfg.Timing.MemBankOcc)
			m.profD(d, obs.ResMem, obs.HCDirLookup, m.cfg.Timing.MemBankOcc)
			if m.spans.On() {
				m.spans.Mark(obs.PhaseDirOcc, hs+m.cfg.Costs.ReadLat)
			}
			done = m.net.Send(hs+m.cfg.Costs.ReadLat, m.dMesh[d], m.pMesh[p], data)
			if m.spans.On() {
				m.spans.Mark(obs.PhaseNetReply, done)
			}
			if e.Master == HomeMaster {
				// Hand mastership out so the home copy becomes droppable
				// ("we give out mastership", §2.2.2).
				e.Master = int32(p)
				m.dmem[d].LinkShared(e)
				fillState = cache.SharedMaster
			} else {
				fillState = cache.Shared
			}
			e.Sharers.Add(p)
			class = proto.Lat2Hop
		} else {
			// The home dropped its copy: 3-hop via the shared-master
			// P-node (the cost the SharedList threshold tries to avoid).
			master := int(e.Master)
			if master == HomeMaster || master == p {
				panic("core: shared line without home copy has no remote master")
			}
			hs := m.dproc[d].Acquire(arrive, m.cfg.Costs.ReadOcc)
			m.profD(d, obs.ResProc, obs.HCDirLookup, m.cfg.Costs.ReadOcc)
			if m.spans.On() {
				m.spans.Mark(obs.PhaseDirOcc, hs+m.cfg.Costs.ReadLat)
			}
			fwd := m.net.Send(hs+m.cfg.Costs.ReadLat, m.dMesh[d], m.pMesh[master], ctrl)
			lat := m.ownerLat(master, line)
			ms := m.pbank[master].Acquire(fwd, m.cfg.Timing.MemBankOcc)
			if m.spans.On() {
				m.spans.Mark(obs.PhaseOwnerFetch, ms+lat)
			}
			done = m.net.Send(ms+lat, m.pMesh[master], m.pMesh[p], data)
			if m.spans.On() {
				m.spans.Mark(obs.PhaseNetReply, done)
			}
			e.Sharers.Add(p)
			// Re-acquire an optional home copy ("we try to keep shared
			// lines in the home most of the time", §2.2.2).
			wbArr := m.net.Send(ms+lat, m.pMesh[master], m.dMesh[d], data)
			ws := m.dproc[d].Acquire(wbArr, m.cfg.Costs.AckOcc)
			m.profD(d, obs.ResProc, obs.HCWriteBack, m.cfg.Costs.AckOcc)
			if res, _ := m.dmem[d].EnsureSlot(e); res != AllocFailed {
				m.dbank[d].Acquire(ws, m.cfg.Timing.MemBankOcc)
				m.profD(d, obs.ResMem, obs.HCListOps, m.cfg.Timing.MemBankOcc)
				m.dmem[d].LinkShared(e)
			}
			fillState, class = cache.Shared, proto.Lat3Hop
		}

	case DirHome:
		// 2-hop from the home; the first reader receives mastership and
		// the home copy (if any) joins the SharedList.
		hs := m.dproc[d].Acquire(arrive, m.cfg.Costs.ReadOcc)
		m.profD(d, obs.ResProc, obs.HCDirLookup, m.cfg.Costs.ReadOcc)
		t := hs
		if e.OnDisk {
			t = m.disk[d].Acquire(t, m.cfg.Timing.DiskLat) + m.cfg.Timing.DiskLat
			m.profD(d, obs.ResDisk, obs.HCPageout, m.cfg.Timing.DiskLat)
			m.st.DiskFaults++
			if m.trace.On() {
				m.trace.Emit(obs.EvDiskFault, hs, 0, m.dnode(d), line, 0)
			}
		}
		var stored bool
		t, stored = m.ensureSlot(t, d, e)
		m.dbank[d].Acquire(t, m.cfg.Timing.MemBankOcc)
		m.profD(d, obs.ResMem, obs.HCListOps, m.cfg.Timing.MemBankOcc)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, t+m.cfg.Costs.ReadLat)
		}
		done = m.net.Send(t+m.cfg.Costs.ReadLat, m.dMesh[d], m.pMesh[p], data)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseNetReply, done)
		}
		e.State = DirShared
		e.Master = int32(p)
		e.Sharers.Add(p)
		e.Unfetched = false
		e.OnDisk = false
		if stored {
			m.dmem[d].LinkShared(e)
		}
		fillState, class = cache.SharedMaster, proto.Lat2Hop

	default:
		panic("core: unknown directory state")
	}

	m.fill(done, p, addr, fillState, false)
	return done, class
}

// remoteWrite runs a read-exclusive or upgrade transaction at the home.
func (m *Machine) remoteWrite(reqT sim.Time, p, d int, addr uint64, e *DirEntry, upgrade bool) (sim.Time, proto.LatClass) {
	line := m.alignLine(addr)
	ctrl := m.net.ControlBytes()
	data := m.net.DataBytes(m.cfg.LineBytes)
	if m.spans.On() {
		m.spans.Mark(obs.PhaseIssue, reqT)
	}
	arrive := m.net.Send(reqT, m.pMesh[p], m.dMesh[d], ctrl)
	if m.spans.On() {
		m.spans.Mark(obs.PhaseNetRequest, arrive)
	}

	var done sim.Time
	var class proto.LatClass

	switch e.State {
	case DirDirty:
		// 3-hop ownership transfer from the current owner.
		owner := int(e.Master)
		if owner == p {
			panic("core: write miss by the dirty owner")
		}
		hs := m.dproc[d].Acquire(arrive, m.cfg.Costs.ReadExOcc)
		m.profD(d, obs.ResProc, obs.HCDirLookup, m.cfg.Costs.ReadExOcc)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, hs+m.cfg.Costs.ReadExLat)
		}
		fwd := m.net.Send(hs+m.cfg.Costs.ReadExLat, m.dMesh[d], m.pMesh[owner], ctrl)
		lat := m.ownerLat(owner, line)
		ms := m.pbank[owner].Acquire(fwd, m.cfg.Timing.MemBankOcc)
		sendT := ms + lat
		if m.spans.On() {
			m.spans.Mark(obs.PhaseOwnerFetch, sendT)
		}
		done = m.net.Send(sendT, m.pMesh[owner], m.pMesh[p], data)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseNetReply, done)
		}
		ackArr := m.net.Send(sendT, m.pMesh[owner], m.dMesh[d], ctrl)
		m.dproc[d].Acquire(ackArr, m.cfg.Costs.AckOcc)
		m.profD(d, obs.ResProc, obs.HCWriteBack, m.cfg.Costs.AckOcc)
		m.pmem[owner].Invalidate(line)
		m.caches[owner].InvalidateMemLine(line)
		m.st.Invalidations++
		if m.trace.On() {
			m.trace.Emit(obs.EvInval, fwd, 0, int32(owner), line, 0)
		}
		e.Master = int32(p)
		class = proto.Lat3Hop

	case DirShared:
		targets := e.Sharers.Targets(nil, m.allP, p)
		occ := m.cfg.Costs.ReadExOcc + m.cfg.Costs.InvalPerNode*sim.Time(len(targets))
		hs := m.dproc[d].Acquire(arrive, occ)
		m.profD(d, obs.ResProc, obs.HCDirLookup, m.cfg.Costs.ReadExOcc)
		m.profD(d, obs.ResProc, obs.HCInval, occ-m.cfg.Costs.ReadExOcc)
		replyT := hs + m.cfg.Costs.ReadExLat
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, replyT)
		}

		// Data (or grant) path first, since it may need the remote master's
		// memory before that copy is invalidated.
		switch {
		case upgrade:
			done = m.net.Send(replyT, m.dMesh[d], m.pMesh[p], ctrl)
			m.st.Upgrades++
			if m.trace.On() {
				m.trace.Emit(obs.EvUpgrade, replyT, 0, int32(p), line, 0)
			}
			class = proto.Lat2Hop
		case e.HasCopy():
			m.dbank[d].Acquire(hs, m.cfg.Timing.MemBankOcc)
			m.profD(d, obs.ResMem, obs.HCDirLookup, m.cfg.Timing.MemBankOcc)
			done = m.net.Send(replyT, m.dMesh[d], m.pMesh[p], data)
			class = proto.Lat2Hop
		default:
			master := int(e.Master)
			if master == HomeMaster || master == p {
				panic("core: shared line without home copy has no remote master")
			}
			fwd := m.net.Send(replyT, m.dMesh[d], m.pMesh[master], ctrl)
			lat := m.ownerLat(master, line)
			ms := m.pbank[master].Acquire(fwd, m.cfg.Timing.MemBankOcc)
			if m.spans.On() {
				m.spans.Mark(obs.PhaseOwnerFetch, ms+lat)
			}
			done = m.net.Send(ms+lat, m.pMesh[master], m.pMesh[p], data)
			class = proto.Lat3Hop
		}
		if m.spans.On() {
			// The reply (data or grant) ends here; invalidation-ack
			// collection below extends `done` and lands in retire.
			m.spans.Mark(obs.PhaseNetReply, done)
		}

		// Invalidations fan out from the home, staggered by the per-inval
		// handler occupancy; each target acks directly to the requester
		// (DASH-style ack collection).
		for i, q := range targets {
			iv := m.net.Send(replyT+sim.Time(i)*m.cfg.Costs.InvalPerNode, m.dMesh[d], m.pMesh[q], ctrl)
			m.pmem[q].Invalidate(line)
			m.caches[q].InvalidateMemLine(line)
			m.st.Invalidations++
			if m.trace.On() {
				m.trace.Emit(obs.EvInval, iv, 0, int32(q), line, 0)
			}
			ack := m.net.Send(iv, m.pMesh[q], m.pMesh[p], ctrl)
			if ack > done {
				done = ack
			}
		}

		// The home's place holder is reusable once the line is dirty in a
		// P-node (§2.2.2).
		if e.HasCopy() {
			m.dmem[d].UnlinkShared(e)
			m.dmem[d].ReleaseSlot(e)
		}
		e.State = DirDirty
		e.Master = int32(p)
		e.Sharers.Clear()

	case DirHome:
		hs := m.dproc[d].Acquire(arrive, m.cfg.Costs.ReadExOcc)
		m.profD(d, obs.ResProc, obs.HCDirLookup, m.cfg.Costs.ReadExOcc)
		t := hs
		if e.OnDisk {
			t = m.disk[d].Acquire(t, m.cfg.Timing.DiskLat) + m.cfg.Timing.DiskLat
			m.profD(d, obs.ResDisk, obs.HCPageout, m.cfg.Timing.DiskLat)
			m.st.DiskFaults++
			if m.trace.On() {
				m.trace.Emit(obs.EvDiskFault, hs, 0, m.dnode(d), line, 0)
			}
			// The data now travels to the writer; the home keeps no slot.
			e.OnDisk = false
		}
		if e.HasCopy() {
			m.dbank[d].Acquire(t, m.cfg.Timing.MemBankOcc)
			m.profD(d, obs.ResMem, obs.HCDirLookup, m.cfg.Timing.MemBankOcc)
			m.dmem[d].ReleaseSlot(e)
		}
		// Unfetched lines are satisfied by zero-fill: no slot was ever used.
		e.Unfetched = false
		if m.spans.On() {
			m.spans.Mark(obs.PhaseDirOcc, t+m.cfg.Costs.ReadExLat)
		}
		done = m.net.Send(t+m.cfg.Costs.ReadExLat, m.dMesh[d], m.pMesh[p], data)
		if m.spans.On() {
			m.spans.Mark(obs.PhaseNetReply, done)
		}
		e.State = DirDirty
		e.Master = int32(p)
		e.Sharers.Clear()
		class = proto.Lat2Hop

	default:
		panic("core: unknown directory state")
	}

	if upgrade {
		if !m.pmem[p].SetState(line, cache.Dirty) {
			panic("core: upgrade of a line absent from local memory")
		}
		m.caches[p].Fill(addr, true)
	} else {
		m.fill(done, p, addr, cache.Dirty, true)
	}
	return done, class
}

// pmemRank orders P-node memory replacement victims: plain shared copies go
// first (they can be silently dropped and cheaply refetched from the home),
// then owned lines (whose displacement costs a write-back and a home Data
// slot). Keeping owned lines parked in P-memories is what lets the machine
// run at high memory pressure — Figure 8's large Dirty-in-P population.
func pmemRank(s cache.State) int {
	if s == cache.Shared {
		return 0
	}
	return 1
}

// fill installs a fetched line into p's local memory and caches, handling
// the displaced victim: owned victims (dirty or shared-master) are written
// back to their home — which always accepts them — while plain shared copies
// are dropped silently.
func (m *Machine) fill(when sim.Time, p int, addr uint64, st cache.State, writable bool) {
	line := m.alignLine(addr)
	v := m.pmem[p].Insert(line, st, pmemRank)
	m.caches[p].Fill(addr, writable)
	if !v.Valid() {
		return
	}
	m.caches[p].InvalidateMemLine(v.Addr)
	if v.State.Owned() {
		m.writeBack(when, p, v.Addr, v.State)
	}
}

// writeBack sends a displaced owned line home (§2.2.2: incoming lines are
// always taken in by their home memory).
func (m *Machine) writeBack(t sim.Time, p int, line uint64, st cache.State) {
	page := m.pageOf(line)
	d, ok := m.homes.Get(page)
	if !ok {
		panic("core: write-back of a line with no home")
	}
	dm := m.dmem[d]
	e := dm.Entry(line)
	if e == nil {
		panic("core: write-back to an unmapped page (recall should have preceded unmap)")
	}
	arrive := m.net.Send(t, m.pMesh[p], m.dMesh[d], m.net.DataBytes(m.cfg.LineBytes))
	hs := m.dproc[d].Acquire(arrive, m.cfg.Costs.WBOcc)
	m.profD(d, obs.ResProc, obs.HCWriteBack, m.cfg.Costs.WBOcc)
	m.st.WriteBacks++
	if m.trace.On() {
		m.trace.Emit(obs.EvWriteBack, t, 0, int32(p), line, 0)
	}

	switch st {
	case cache.Dirty:
		if e.State != DirDirty || int(e.Master) != p {
			panic(fmt.Sprintf("core: dirty write-back of %#x by P%d but directory says %v/master=%d", line, p, e.State, e.Master))
		}
		var stored bool
		hs, stored = m.ensureSlot(hs, d, e)
		if !stored {
			m.spill(hs, d, e)
			return
		}
		m.dbank[d].Acquire(hs, m.cfg.Timing.MemBankOcc)
		m.profD(d, obs.ResMem, obs.HCWriteBack, m.cfg.Timing.MemBankOcc)
		e.State = DirHome
		e.Master = HomeMaster
		e.Sharers.Clear()
	case cache.SharedMaster:
		if e.State != DirShared || int(e.Master) != p {
			panic(fmt.Sprintf("core: master write-back of %#x by P%d but directory says %v/master=%d", line, p, e.State, e.Master))
		}
		if e.HasCopy() {
			dm.UnlinkShared(e)
		} else {
			var stored bool
			hs, stored = m.ensureSlot(hs, d, e)
			if !stored {
				m.spill(hs, d, e)
				return
			}
			m.dbank[d].Acquire(hs, m.cfg.Timing.MemBankOcc)
			m.profD(d, obs.ResMem, obs.HCWriteBack, m.cfg.Timing.MemBankOcc)
		}
		e.Master = HomeMaster
		e.Sharers.Remove(p)
		if e.Sharers.Empty() {
			e.State = DirHome
		}
	default:
		panic("core: write-back of a non-owned line")
	}
}

// ensureSlot obtains a Data slot for e. Incoming lines are always taken in
// (§2.2.2); when free space falls to the low-water threshold, the OS pages
// out in the *background* (the triggering transaction reuses a SharedList
// slot and does not wait). Only when both lists are exhausted — the paper's
// crisis case, where D-nodes would pause the P-nodes — does the transaction
// block on a synchronous pageout. ok is false only in the set-associative
// ablation, where the line's set can stay full no matter how much the home
// pages out (the situation whose COMA-style injections the paper's
// fully-associative organization exists to avoid).
func (m *Machine) ensureSlot(t sim.Time, d int, e *DirEntry) (sim.Time, bool) {
	dm := m.dmem[d]
	if res, _ := dm.EnsureSlot(e); res != AllocFailed {
		// The FreeList drain toward the pageout threshold is the curve the
		// paper's crisis analysis cares about; sample it per allocation.
		if m.trace.On() {
			m.trace.Emit(obs.EvOcc, t, 0, m.dnode(d), 0, uint64(dm.FreeLen()))
		}
		if dm.NeedPageout() {
			m.pageout(t, d, e.Addr, true) // background refill of the FreeList
		}
		return t, true
	}
	if forced, _ := dm.ForceSlot(e); forced {
		return t, true
	}
	// Crisis: nothing reusable. Stall on pageouts — the effect of the
	// paper's high-priority pause interrupt.
	m.st.CrisisPauses++
	if m.trace.On() {
		m.trace.Emit(obs.EvCrisis, t, 0, m.dnode(d), e.Addr, uint64(dm.FreeLen()))
	}
	for attempt := 0; attempt < 4; attempt++ {
		t = m.pageout(t, d, e.Addr, true)
		if res, _ := dm.EnsureSlot(e); res != AllocFailed {
			return t, true
		}
		if forced, _ := dm.ForceSlot(e); forced {
			return t, true
		}
	}
	if m.cfg.DMemSetAssoc > 0 {
		return t, false // the caller spills the line (Overflows)
	}
	panic(fmt.Sprintf("core: D%d out of memory for line %#x", d, e.Addr))
}

// spill records that the home could not store an incoming line (only
// possible in the set-associative ablation): the data goes straight to the
// paging device, read-only copies elsewhere stay valid, and the next use
// pays a disk fault.
func (m *Machine) spill(t sim.Time, d int, e *DirEntry) {
	m.disk[d].Acquire(t, m.cfg.Timing.DiskLat)
	m.profD(d, obs.ResDisk, obs.HCPageout, m.cfg.Timing.DiskLat)
	e.State = DirHome
	e.Master = HomeMaster
	e.Sharers.Clear()
	e.Unfetched = false
	e.OnDisk = true
	m.st.Overflows++
	if m.trace.On() {
		m.trace.Emit(obs.EvOverflow, t, 0, m.dnode(d), e.Addr, 0)
	}
}

// pageout frees D-node memory by unmapping pages (§2.2.2): the OS walks the
// victim page's directory entries, recalls lines not present in the D-node
// memory, invalidates P-node copies, writes the page to disk and unmaps it.
// When wantSlots is set it keeps going until the FreeList is non-empty;
// otherwise one batch is processed to make directory room. It returns the
// completion time, and blocks the D-node processor for the duration.
func (m *Machine) pageout(t sim.Time, d int, protect uint64, wantSlots bool) sim.Time {
	dm := m.dmem[d]
	start := t
	var recallWait sim.Time
	ctrl := m.net.ControlBytes()
	data := m.net.DataBytes(m.cfg.LineBytes)
	processed := 0
	for processed < m.cfg.PageoutBatch || (wantSlots && dm.FreeLen() == 0) {
		cands := dm.PageoutCandidates(1, protect)
		if len(cands) == 0 {
			break
		}
		page := cands[0]
		var lastArrive sim.Time
		dm.PageLines(page, func(e *DirEntry) {
			t += m.cfg.Costs.AckOcc // per-entry OS processing
			switch e.State {
			case DirDirty:
				// Recall the only copy from its owner.
				owner := int(e.Master)
				rq := m.net.Send(t, m.dMesh[d], m.pMesh[owner], ctrl)
				ms := m.pbank[owner].Acquire(rq, m.cfg.Timing.MemBankOcc)
				back := m.net.Send(ms+m.ownerLat(owner, e.Addr), m.pMesh[owner], m.dMesh[d], data)
				if back > lastArrive {
					lastArrive = back
				}
				m.pmem[owner].Invalidate(e.Addr)
				m.caches[owner].InvalidateMemLine(e.Addr)
				m.st.Recalls++
				if m.trace.On() {
					m.trace.Emit(obs.EvRecall, rq, 0, int32(owner), e.Addr, 0)
				}
			case DirShared:
				// Recall the master copy if the home dropped its own, and
				// invalidate every sharer.
				if !e.HasCopy() && e.Master != HomeMaster {
					master := int(e.Master)
					rq := m.net.Send(t, m.dMesh[d], m.pMesh[master], ctrl)
					ms := m.pbank[master].Acquire(rq, m.cfg.Timing.MemBankOcc)
					back := m.net.Send(ms+m.ownerLat(master, e.Addr), m.pMesh[master], m.dMesh[d], data)
					if back > lastArrive {
						lastArrive = back
					}
					m.st.Recalls++
					if m.trace.On() {
						m.trace.Emit(obs.EvRecall, rq, 0, int32(master), e.Addr, 0)
					}
				}
				for _, q := range e.Sharers.Targets(nil, m.allP, -1) {
					iv := m.net.Send(t, m.dMesh[d], m.pMesh[q], ctrl)
					if iv > lastArrive {
						lastArrive = iv
					}
					m.pmem[q].Invalidate(e.Addr)
					m.caches[q].InvalidateMemLine(e.Addr)
					m.st.Invalidations++
					if m.trace.On() {
						m.trace.Emit(obs.EvInval, iv, 0, int32(q), e.Addr, 0)
					}
				}
			}
			dm.UnlinkShared(e)
			e.State = DirHome
			e.Master = HomeMaster
			e.Sharers.Clear()
		})
		if lastArrive > t {
			recallWait += lastArrive - t
			t = lastArrive
		}
		// Write the page to disk and unmap it.
		ds := m.disk[d].Acquire(t, m.cfg.Timing.DiskLat)
		m.profD(d, obs.ResDisk, obs.HCPageout, m.cfg.Timing.DiskLat)
		t = ds + m.cfg.Timing.DiskLat
		if err := dm.UnmapPage(page); err != nil {
			panic(fmt.Sprintf("core: pageout unmap failed: %v", err))
		}
		m.st.Pageouts++
		processed++
		if m.trace.On() {
			m.trace.Emit(obs.EvPageout, t, 0, m.dnode(d), page, uint64(dm.FreeLen()))
		}
	}
	if t > start {
		m.dproc[d].Block(start, t)
		// The Block charges the whole episode to the protocol processor;
		// split it between waiting on recalled lines and the pageout walk
		// proper so the class buckets still sum to the resource's busy time.
		m.profD(d, obs.ResProc, obs.HCRecall, recallWait)
		m.profD(d, obs.ResProc, obs.HCPageout, (t-start)-recallWait)
	}
	if m.trace.On() {
		m.trace.Emit(obs.EvOcc, t, 0, m.dnode(d), 0, uint64(dm.FreeLen()))
	}
	return t
}

// CensusTotal aggregates the Figure 8 classification over all D-nodes.
func (m *Machine) CensusTotal() Census {
	var c Census
	for _, dm := range m.dmem {
		dm.CensusAdd(&c)
	}
	return c
}

// DMemOf exposes a D-node's memory for tests and reconfiguration accounting.
func (m *Machine) DMemOf(d int) *DMem { return m.dmem[d] }

// DMemStatsTotal sums the D-node memory-management counters.
func (m *Machine) DMemStatsTotal() DMemStats {
	var t DMemStats
	for _, dm := range m.dmem {
		t.SlotAllocs += dm.Stats.SlotAllocs
		t.SharedReuses += dm.Stats.SharedReuses
		t.PageoutsAsked += dm.Stats.PageoutsAsked
		t.PagesMapped += dm.Stats.PagesMapped
		t.PagesUnmapped += dm.Stats.PagesUnmapped
		t.SetConflicts += dm.Stats.SetConflicts
	}
	return t
}

// PMemOf exposes a P-node's tagged memory for tests.
func (m *Machine) PMemOf(p int) *cache.LocalMemory { return m.pmem[p] }

// CheckInvariants verifies every D-node's data structures plus the
// directory-vs-ground-truth agreement for owned lines.
func (m *Machine) CheckInvariants() error {
	for d, dm := range m.dmem {
		if err := dm.CheckInvariants(); err != nil {
			return fmt.Errorf("D%d: %w", d, err)
		}
	}
	// Every owned line in a P-node memory must be known to its directory.
	for p, pm := range m.pmem {
		var err error
		pm.ForEach(func(addr uint64, s cache.State, _ bool) {
			if err != nil || !s.Owned() {
				return
			}
			d, ok := m.homes.Get(m.pageOf(addr))
			if !ok {
				err = fmt.Errorf("P%d holds %#x (%v) with no home", p, addr, s)
				return
			}
			e := m.dmem[d].Entry(addr)
			if e == nil {
				err = fmt.Errorf("P%d holds %#x (%v) but home D%d has no entry", p, addr, s, d)
				return
			}
			switch s {
			case cache.Dirty:
				if e.State != DirDirty || int(e.Master) != p {
					err = fmt.Errorf("P%d holds %#x dirty but directory says %v/master=%d", p, addr, e.State, e.Master)
				}
			case cache.SharedMaster:
				if e.State != DirShared || int(e.Master) != p {
					err = fmt.Errorf("P%d holds %#x shared-master but directory says %v/master=%d", p, addr, e.State, e.Master)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// DProcUtil reports aggregate D-node protocol-processor busy time, queueing
// delay imposed on transactions, and handler invocations — the key saturation
// diagnostic for the reconfigurability experiments.
func (m *Machine) DProcUtil() (busy, waited sim.Time, acquires uint64) {
	for i := range m.dproc {
		b, a, w := m.dproc[i].Utilization()
		busy += b
		waited += w
		acquires += a
	}
	return busy, waited, acquires
}
