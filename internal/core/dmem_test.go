package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// newDMem returns a small D-memory: 8 Data slots, 12 directory entries
// (the paper's 1.5× ratio), 128 B lines, 512 B pages (4 lines/page),
// SharedList threshold 1.
func newDMem(t *testing.T) *DMem {
	t.Helper()
	d, err := NewDMem(8, 12, 128, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDMemValidation(t *testing.T) {
	if _, err := NewDMem(0, 0, 128, 512, 1); err == nil {
		t.Error("zero data lines accepted")
	}
	if _, err := NewDMem(8, 4, 128, 512, 1); err == nil {
		t.Error("directory smaller than data accepted")
	}
	if _, err := NewDMem(8, 12, 128, 500, 1); err == nil {
		t.Error("page size not multiple of line size accepted")
	}
}

func TestMapPageCreatesUnfetchedEntries(t *testing.T) {
	d := newDMem(t)
	if err := d.MapPage(0x1000); err != nil {
		t.Fatal(err)
	}
	if d.MappedLines() != 4 {
		t.Fatalf("mapped lines = %d, want 4", d.MappedLines())
	}
	e := d.Entry(0x1080)
	if e == nil || !e.Unfetched || e.HasCopy() || e.State != DirHome {
		t.Fatalf("entry = %+v", e)
	}
	// Unfetched lines consume no Data slots.
	if d.FreeLen() != 8 {
		t.Fatalf("FreeLen = %d, want 8", d.FreeLen())
	}
	if err := d.MapPage(0x1000); err == nil {
		t.Error("double map accepted")
	}
	if err := d.MapPage(0x1001); err == nil {
		t.Error("unaligned page accepted")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirRoomLimit(t *testing.T) {
	d := newDMem(t) // 12 dir entries = 3 pages of 4 lines
	for i := uint64(0); i < 3; i++ {
		if err := d.MapPage(i * 512); err != nil {
			t.Fatal(err)
		}
	}
	if d.DirRoom() {
		t.Fatal("DirRoom true at capacity")
	}
	if err := d.MapPage(3 * 512); err == nil {
		t.Fatal("mapping beyond directory capacity accepted")
	}
}

func TestEnsureSlotFreeList(t *testing.T) {
	d := newDMem(t)
	d.MapPage(0x0)
	e := d.Entry(0x0)
	res, dropped := d.EnsureSlot(e)
	if res != AllocFree || dropped != nil || !e.HasCopy() {
		t.Fatalf("EnsureSlot = %v/%v, entry %+v", res, dropped, e)
	}
	if e.Unfetched {
		t.Fatal("entry still unfetched after slot attach")
	}
	if d.FreeLen() != 7 {
		t.Fatalf("FreeLen = %d, want 7", d.FreeLen())
	}
	// Idempotent.
	if res, _ := d.EnsureSlot(e); res != AllocFree || d.FreeLen() != 7 {
		t.Fatal("second EnsureSlot changed state")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedListFIFOReuse(t *testing.T) {
	d := newDMem(t)
	d.MapPage(0)
	d.MapPage(512)
	// Fill all 8 slots with shared lines whose masters live at P-node 5.
	var lines []uint64
	for a := uint64(0); a < 1024; a += 128 {
		e := d.Entry(a)
		if res, _ := d.EnsureSlot(e); res != AllocFree {
			t.Fatalf("slot alloc for %#x: %v", a, res)
		}
		e.State = DirShared
		e.Master = 5
		e.Sharers.Add(5)
		d.LinkShared(e)
		lines = append(lines, a)
	}
	if d.SharedLen() != 8 || d.FreeLen() != 0 {
		t.Fatalf("shared=%d free=%d", d.SharedLen(), d.FreeLen())
	}
	d.MapPage(1024)
	e := d.Entry(1024)
	res, dropped := d.EnsureSlot(e)
	if res != AllocSharedReuse {
		t.Fatalf("reuse result = %v", res)
	}
	// FIFO: the first inserted shared line loses its home copy.
	if dropped == nil || dropped.Addr != lines[0] {
		t.Fatalf("dropped %+v, want line %#x", dropped, lines[0])
	}
	if dropped.HasCopy() {
		t.Fatal("dropped entry still has a copy")
	}
	// The dropped line's mastership still lives at the P-node.
	if dropped.State != DirShared || dropped.Master != 5 {
		t.Fatalf("dropped entry state %v master %d", dropped.State, dropped.Master)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedListThresholdStopsReuse(t *testing.T) {
	d := MustNewDMem(2, 4, 128, 512, 2) // threshold = whole SharedList
	d.MapPage(0)
	for _, a := range []uint64{0, 128} {
		e := d.Entry(a)
		d.EnsureSlot(e)
		e.State = DirShared
		e.Master = 1
		d.LinkShared(e)
	}
	e := d.Entry(256)
	res, _ := d.EnsureSlot(e)
	if res != AllocFailed {
		t.Fatalf("allocation below threshold = %v, want AllocFailed", res)
	}
	if !d.NeedPageout() {
		t.Fatal("NeedPageout false when allocation failed")
	}
	if d.Stats.PageoutsAsked != 1 {
		t.Fatalf("PageoutsAsked = %d", d.Stats.PageoutsAsked)
	}
}

func TestReleaseSlotReturnsToFreeList(t *testing.T) {
	d := newDMem(t)
	d.MapPage(0)
	e := d.Entry(0)
	d.EnsureSlot(e)
	e.State = DirDirty
	e.Master = 3
	d.ReleaseSlot(e)
	if e.HasCopy() || d.FreeLen() != 8 {
		t.Fatalf("release: hasCopy=%v free=%d", e.HasCopy(), d.FreeLen())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMastershipLinkUnlink(t *testing.T) {
	d := newDMem(t)
	d.MapPage(0)
	e := d.Entry(0)
	d.EnsureSlot(e)
	e.State = DirShared
	e.Master = 2
	d.LinkShared(e)
	if d.SharedLen() != 1 {
		t.Fatal("LinkShared did not grow SharedList")
	}
	d.LinkShared(e) // idempotent
	if d.SharedLen() != 1 {
		t.Fatal("double LinkShared duplicated entry")
	}
	// Home regains mastership: slot leaves SharedList but stays allocated.
	e.Master = HomeMaster
	d.UnlinkShared(e)
	if d.SharedLen() != 0 || !e.HasCopy() {
		t.Fatalf("UnlinkShared: shared=%d hasCopy=%v", d.SharedLen(), e.HasCopy())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapPageToDisk(t *testing.T) {
	d := newDMem(t)
	d.MapPage(0)
	e := d.Entry(128)
	d.EnsureSlot(e)
	if err := d.UnmapPage(0); err != nil {
		t.Fatal(err)
	}
	if d.MappedLines() != 0 || d.FreeLen() != 8 {
		t.Fatalf("after unmap: lines=%d free=%d", d.MappedLines(), d.FreeLen())
	}
	if !d.PageOnDisk(0) {
		t.Fatal("unmapped page not recorded on disk")
	}
	// Remapping brings it back with OnDisk lines.
	if err := d.MapPage(0); err != nil {
		t.Fatal(err)
	}
	if e := d.Entry(0); !e.OnDisk || e.Unfetched {
		t.Fatalf("refaulted entry = %+v", e)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapPageRejectsLiveLines(t *testing.T) {
	d := newDMem(t)
	d.MapPage(0)
	e := d.Entry(0)
	e.State = DirDirty
	e.Master = 1
	if err := d.UnmapPage(0); err == nil {
		t.Fatal("unmap with un-recalled dirty line accepted")
	}
}

func TestPageoutCandidatesFIFOAndProtect(t *testing.T) {
	d := newDMem(t)
	d.MapPage(0)
	d.MapPage(512)
	d.MapPage(1024)
	got := d.PageoutCandidates(2, 64) // protect page 0
	if len(got) != 2 || got[0] != 512 || got[1] != 1024 {
		t.Fatalf("candidates = %v", got)
	}
	got = d.PageoutCandidates(10, 2048)
	if len(got) != 3 || got[0] != 0 {
		t.Fatalf("unprotected candidates = %v", got)
	}
}

func TestCensus(t *testing.T) {
	d := newDMem(t)
	d.MapPage(0)
	// line 0: dirty in P.
	e := d.Entry(0)
	e.State = DirDirty
	e.Master = 1
	// line 1: shared with home copy.
	e = d.Entry(128)
	d.EnsureSlot(e)
	e.State = DirShared
	e.Master = 2
	d.LinkShared(e)
	// line 2: D-node only.
	e = d.Entry(256)
	d.EnsureSlot(e)
	// line 3 stays untouched.
	var c Census
	d.CensusAdd(&c)
	if c.DirtyInP != 1 || c.SharedInP != 1 || c.DNodeOnly != 1 || c.Untouched != 1 {
		t.Fatalf("census = %+v", c)
	}
	if c.FreeSlots != 6 || c.SlotCap != 8 {
		t.Fatalf("census slots = %+v", c)
	}
}

// Property: invariants hold under random sequences of map / slot / mastership
// / release / unmap operations.
func TestDMemInvariantProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		d := MustNewDMem(16, 24, 128, 512, 2)
		rng := rand.New(rand.NewPCG(seed, 99))
		pages := []uint64{0, 512, 1024, 1536, 2048, 2560}
		for i := 0; i < int(steps)*3; i++ {
			pg := pages[rng.IntN(len(pages))]
			switch rng.IntN(6) {
			case 0:
				if !d.PageMapped(pg) && d.DirRoom() {
					if err := d.MapPage(pg); err != nil {
						return false
					}
				}
			case 1, 2: // make a random mapped line shared-with-home-copy
				if !d.PageMapped(pg) {
					continue
				}
				e := d.Entry(pg + uint64(rng.IntN(4))*128)
				if e.State == DirDirty {
					continue
				}
				if res, _ := d.EnsureSlot(e); res == AllocFailed {
					continue
				}
				e.State = DirShared
				e.Master = int32(rng.IntN(4))
				e.Sharers.Add(int(e.Master))
				d.LinkShared(e)
			case 3: // make a line dirty in P (home drops its copy)
				if !d.PageMapped(pg) {
					continue
				}
				e := d.Entry(pg + uint64(rng.IntN(4))*128)
				d.UnlinkShared(e)
				d.ReleaseSlot(e)
				e.State = DirDirty
				e.Master = int32(rng.IntN(4))
				e.Sharers.Clear()
			case 4: // write a dirty line back home
				if !d.PageMapped(pg) {
					continue
				}
				e := d.Entry(pg + uint64(rng.IntN(4))*128)
				if e.State != DirDirty {
					continue
				}
				if res, _ := d.EnsureSlot(e); res == AllocFailed {
					continue
				}
				e.State = DirHome
				e.Master = HomeMaster
				e.Sharers.Clear()
			case 5: // page out (recall everything first)
				if !d.PageMapped(pg) {
					continue
				}
				d.PageLines(pg, func(e *DirEntry) {
					d.UnlinkShared(e)
					e.State = DirHome
					e.Master = HomeMaster
					e.Sharers.Clear()
				})
				if err := d.UnmapPage(pg); err != nil {
					return false
				}
			}
			if err := d.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSetAssociativeMode(t *testing.T) {
	d := MustNewDMem(8, 12, 128, 512, 0) // 8 slots
	d.ConfigureSetAssoc(2)               // 4 sets of 2 ways
	d.MapPage(0)
	d.MapPage(512)
	// Lines 0 and 4 pages apart share set (lineIndex mod 4): line 0 and
	// line 4 (addr 512) both map to set 0.
	e0 := d.Entry(0)
	e4 := d.Entry(512)
	if r, _ := d.EnsureSlot(e0); r == AllocFailed {
		t.Fatal("first same-set alloc failed")
	}
	if r, _ := d.EnsureSlot(e4); r == AllocFailed {
		t.Fatal("second same-set alloc failed")
	}
	// Third line of set 0 (line 8 would be page 2; use a mapped one):
	// addr 0 and 512 used set 0; entry at 512+... pick line index 8 ≡ 0 mod 4
	d.MapPage(1024)
	e8 := d.Entry(1024)
	r, _ := d.EnsureSlot(e8)
	if r != AllocFailed {
		t.Fatalf("set over-subscription allowed: %v", r)
	}
	if d.Stats.SetConflicts != 1 {
		t.Fatalf("SetConflicts = %d, want 1", d.Stats.SetConflicts)
	}
	// FreeList is NOT empty — the conflict is purely associativity.
	if d.FreeLen() == 0 {
		t.Fatal("test setup: FreeList unexpectedly empty")
	}
	// A same-set SharedList resident can be reused.
	e0.State = DirShared
	e0.Master = 3
	d.LinkShared(e0)
	r, dropped := d.EnsureSlot(e8)
	if r != AllocSharedReuse || dropped != e0 {
		t.Fatalf("same-set reuse: %v %v", r, dropped)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Releasing frees the set.
	e8.State = DirDirty
	e8.Master = 1
	d.ReleaseSlot(e8)
	if r, _ := d.EnsureSlot(d.Entry(0)); r == AllocFailed {
		t.Fatal("set not freed by release")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigureSetAssocValidation(t *testing.T) {
	d := MustNewDMem(8, 12, 128, 512, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("invalid associativity accepted")
		}
	}()
	d.ConfigureSetAssoc(3) // 8 % 3 != 0
}
