package core

import (
	"testing"

	"pimdsm/internal/sim"
)

// BenchmarkAccessLocalHit measures the engine's fast path: an access
// satisfied by the P-node's SRAM caches.
func BenchmarkAccessLocalHit(b *testing.B) {
	b.ReportAllocs()
	cfg := DefaultConfig(2, 2, 1<<20, 4096, 8192, 32768)
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	now, _ := m.Access(0, 0, 0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now, _ = m.Access(now, 0, 0x1000, false)
	}
}

// BenchmarkAccessRemote measures full 2-/3-hop software-handler
// transactions (the paper's Table 2 handlers as real Go code).
func BenchmarkAccessRemote(b *testing.B) {
	b.ReportAllocs()
	cfg := DefaultConfig(4, 4, 1<<22, 1<<16, 8192, 32768)
	m, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var now sim.Time
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%(1<<14)) * 128
		now, _ = m.Access(now, i%4, addr, i%3 == 0)
	}
}

// BenchmarkDMemAllocRelease measures the Directory/Data/Pointer array
// management (§2.2.2): slot allocation through the FreeList and SharedList.
func BenchmarkDMemAllocRelease(b *testing.B) {
	b.ReportAllocs()
	d := MustNewDMem(1024, 1536, 128, 4096, 16)
	for p := uint64(0); p < 32; p++ {
		if err := d.MapPage(p * 4096); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%1024) * 128
		e := d.Entry(addr)
		if e.LocalPtr == nilPtr {
			d.EnsureSlot(e)
			e.State = DirShared
			e.Master = 1
			d.LinkShared(e)
		} else {
			d.UnlinkShared(e)
			d.ReleaseSlot(e)
			e.State = DirHome
			e.Master = HomeMaster
		}
	}
}
