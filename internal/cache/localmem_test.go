package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestLocalNewValidation(t *testing.T) {
	if _, err := NewLocal(1024, 64, 4, -0.1); err == nil {
		t.Error("negative on-chip fraction accepted")
	}
	if _, err := NewLocal(1024, 64, 4, 1.5); err == nil {
		t.Error("on-chip fraction > 1 accepted")
	}
	// Non-power-of-two set counts are allowed (DRAM tag arrays index by
	// modulo): memory-pressure sizing relies on it.
	if m, err := NewLocal(64*3, 64, 1, 0.5); err != nil || m.Lines() != 3 {
		t.Errorf("3-set local memory rejected: %v", err)
	}
	if _, err := NewLocal(64*3, 64, 2, 0.5); err == nil {
		t.Error("capacity not a multiple of ways accepted")
	}
}

func TestLocalOnChipCapacity(t *testing.T) {
	m := MustNewLocal(16*128, 128, 4, 0.5) // 4 sets, 4 ways, 2 on-chip ways each
	if m.Lines() != 16 || m.OnChipLines() != 8 {
		t.Fatalf("Lines=%d OnChipLines=%d, want 16/8", m.Lines(), m.OnChipLines())
	}
	m = MustNewLocal(16*128, 128, 4, 0.1) // rounds to 0 but clamps to 1 way
	if m.OnChipLines() != 4 {
		t.Fatalf("clamped OnChipLines=%d, want 4", m.OnChipLines())
	}
	m = MustNewLocal(16*128, 128, 4, 1.0)
	if m.OnChipLines() != 16 {
		t.Fatalf("full on-chip OnChipLines=%d, want 16", m.OnChipLines())
	}
}

func TestLocalInsertGoesOnChip(t *testing.T) {
	m := MustNewLocal(4*128, 128, 4, 0.5) // 1 set, 2 on-chip ways
	m.Insert(0x000, Dirty, nil)
	if _, hit, on := m.Lookup(0x000); !hit || !on {
		t.Fatalf("freshly inserted line not on chip (hit=%v on=%v)", hit, on)
	}
}

func TestLocalPromotionOnAccess(t *testing.T) {
	m := MustNewLocal(4*128, 128, 4, 0.5) // 1 set, 2 on-chip ways
	// Fill the set; the first two inserted stay, later ones displace on-chip
	// residency of the LRU.
	for i := uint64(0); i < 4; i++ {
		m.Insert(i*128, Shared, nil)
	}
	// The set has 4 valid lines, exactly 2 on chip.
	on := 0
	m.ForEach(func(_ uint64, _ State, oc bool) {
		if oc {
			on++
		}
	})
	if on != 2 {
		t.Fatalf("on-chip lines = %d, want 2", on)
	}
	// Find an off-chip line; accessing it must serve off chip then promote.
	var offAddr uint64
	found := false
	m.ForEach(func(a uint64, _ State, oc bool) {
		if !oc && !found {
			offAddr, found = a, true
		}
	})
	if !found {
		t.Fatal("no off-chip line found")
	}
	if _, hit, servedOn := m.Access(offAddr); !hit || servedOn {
		t.Fatalf("off-chip access served on chip (hit=%v)", hit)
	}
	if _, _, nowOn := m.Lookup(offAddr); !nowOn {
		t.Fatal("line not promoted after off-chip access")
	}
	// On-chip count must be unchanged (exclusive swap).
	on = 0
	m.ForEach(func(_ uint64, _ State, oc bool) {
		if oc {
			on++
		}
	})
	if on != 2 {
		t.Fatalf("on-chip lines after promotion = %d, want 2", on)
	}
}

func TestLocalEvictionVictim(t *testing.T) {
	m := MustNewLocal(2*128, 128, 2, 1.0) // 1 set, 2 ways
	m.Insert(0x000, Dirty, nil)
	m.Insert(0x080, Shared, nil)
	m.Access(0x080)
	v := m.Insert(0x100, Shared, nil)
	if v.Addr != 0x000 || v.State != Dirty {
		t.Fatalf("victim = %+v, want 0x000/D", v)
	}
}

func TestLocalFlushWritesBackOwned(t *testing.T) {
	m := MustNewLocal(4*128, 128, 4, 0.5)
	m.Insert(0x000, Dirty, nil)
	m.Insert(0x080, Shared, nil)
	m.Insert(0x100, SharedMaster, nil)
	var owned []uint64
	m.Flush(func(a uint64, s State) {
		if s.Owned() {
			owned = append(owned, a)
		}
	})
	if len(owned) != 2 {
		t.Fatalf("owned flushed = %v, want dirty+shared-master", owned)
	}
	if m.Count() != 0 {
		t.Fatalf("Count after flush = %d", m.Count())
	}
}

// Property: the number of on-chip lines per set never exceeds the configured
// on-chip ways, and total valid lines never exceed capacity, under random
// insert/access/invalidate sequences.
func TestLocalOnChipInvariantProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		const assoc, sets, onWays = 4, 4, 2
		m := MustNewLocal(sets*assoc*128, 128, assoc, 0.5)
		rng := rand.New(rand.NewPCG(seed, 3))
		for i := 0; i < int(n)*4; i++ {
			addr := uint64(rng.IntN(64)) * 128
			switch rng.IntN(3) {
			case 0:
				m.Insert(addr, State(1+rng.IntN(3)), nil)
			case 1:
				m.Access(addr)
			case 2:
				m.Invalidate(addr)
			}
			// Count on-chip frames per set.
			perSet := map[uint64]int{}
			m.ForEach(func(a uint64, _ State, oc bool) {
				if oc {
					perSet[(a/128)%sets]++
				}
			})
			for _, c := range perSet {
				if c > onWays {
					return false
				}
			}
			if m.Count() > sets*assoc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
