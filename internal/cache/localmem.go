package cache

import (
	"fmt"
	"math"
	"math/bits"
)

// LocalMemory models the tagged local DRAM of a PIM node (§2.1.1): a
// set-associative cache of memory lines whose capacity is split between
// on-chip and off-chip DRAM. On- and off-chip portions hold exclusive data;
// a reference to a line residing off chip moves it on chip, displacing
// another line off chip at line granularity (§2, node design).
//
// Timing matters only through which portion a hit is served from: the caller
// charges the on-chip or off-chip round-trip latency based on the reported
// placement. Placement is tracked per frame, with a fixed number of on-chip
// frames per set (the paper tunes the on-chip fraction per application).
type LocalMemory struct {
	lineBytes uint64
	lineShift uint
	sets      uint64
	assoc     int
	onWays    int // frames per set resident in on-chip DRAM
	frames    []lframe
	stamp     uint64
}

type lframe struct {
	tag    uint64
	state  State
	lru    uint64
	onChip bool
}

// NewLocal builds a tagged local memory of totalBytes with the given line
// size and associativity; onFraction is the fraction of capacity on chip
// (rounded to whole ways per set, clamped to at least one way when positive).
func NewLocal(totalBytes, lineBytes uint64, assoc int, onFraction float64) (*LocalMemory, error) {
	if assoc <= 0 {
		return nil, fmt.Errorf("cache: associativity %d must be positive", assoc)
	}
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d must be a power of two", lineBytes)
	}
	if onFraction < 0 || onFraction > 1 {
		return nil, fmt.Errorf("cache: on-chip fraction %v out of [0,1]", onFraction)
	}
	lines := totalBytes / lineBytes
	if lines == 0 || lines%uint64(assoc) != 0 {
		return nil, fmt.Errorf("cache: capacity %dB is not a multiple of %d ways of %dB lines", totalBytes, assoc, lineBytes)
	}
	// Unlike the SRAM caches, the DRAM tag array may have any set count
	// (indexing is a modulo): memory-pressure experiments need capacities
	// that are not powers of two.
	sets := lines / uint64(assoc)
	onWays := int(math.Round(onFraction * float64(assoc)))
	if onFraction > 0 && onWays == 0 {
		onWays = 1
	}
	m := &LocalMemory{
		lineBytes: lineBytes,
		lineShift: uint(bits.TrailingZeros64(lineBytes)),
		sets:      sets,
		assoc:     assoc,
		onWays:    onWays,
		frames:    make([]lframe, lines),
	}
	// The first onWays frames of each set start as the on-chip frames.
	for s := uint64(0); s < sets; s++ {
		for w := 0; w < onWays; w++ {
			m.frames[s*uint64(assoc)+uint64(w)].onChip = true
		}
	}
	return m, nil
}

// MustNewLocal is NewLocal, panicking on error.
func MustNewLocal(totalBytes, lineBytes uint64, assoc int, onFraction float64) *LocalMemory {
	m, err := NewLocal(totalBytes, lineBytes, assoc, onFraction)
	if err != nil {
		panic(err)
	}
	return m
}

// LineBytes returns the line size in bytes.
func (m *LocalMemory) LineBytes() uint64 { return m.lineBytes }

// Lines returns the total number of line frames (on- plus off-chip).
func (m *LocalMemory) Lines() uint64 { return m.sets * uint64(m.assoc) }

// OnChipLines returns the number of on-chip frames.
func (m *LocalMemory) OnChipLines() uint64 { return m.sets * uint64(m.onWays) }

// Align returns addr rounded down to its line boundary.
func (m *LocalMemory) Align(addr uint64) uint64 { return addr &^ (m.lineBytes - 1) }

func (m *LocalMemory) set(addr uint64) []lframe {
	s := (addr >> m.lineShift) % m.sets
	return m.frames[s*uint64(m.assoc) : (s+1)*uint64(m.assoc)]
}

func (m *LocalMemory) find(addr uint64) *lframe {
	tag := m.Align(addr)
	set := m.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// promote moves frame f of set to on-chip DRAM, displacing the LRU on-chip
// frame of the same set off chip (an on/off swap at line grain).
func (m *LocalMemory) promote(set []lframe, f *lframe) {
	if f.onChip || m.onWays == 0 {
		return
	}
	var lruOn *lframe
	for i := range set {
		if set[i].onChip && (lruOn == nil || set[i].lru < lruOn.lru) {
			lruOn = &set[i]
		}
	}
	if lruOn == nil { // no on-chip frame in this set (onWays per-set exhausted elsewhere)
		return
	}
	lruOn.onChip = false
	f.onChip = true
}

// Access looks up addr. On a hit it marks the line most recently used,
// reports whether it was served on chip, and then (per the paper) migrates
// an off-chip line on chip.
func (m *LocalMemory) Access(addr uint64) (st State, hit bool, onChip bool) {
	f := m.find(addr)
	if f == nil {
		return Invalid, false, false
	}
	m.stamp++
	f.lru = m.stamp
	served := f.onChip
	if !served {
		m.promote(m.set(addr), f)
	}
	return f.state, true, served
}

// Lookup returns the state and placement of a line without side effects.
func (m *LocalMemory) Lookup(addr uint64) (st State, hit bool, onChip bool) {
	if f := m.find(addr); f != nil {
		return f.state, true, f.onChip
	}
	return Invalid, false, false
}

// SetState updates the state of a present line, reporting presence.
func (m *LocalMemory) SetState(addr uint64, s State) bool {
	f := m.find(addr)
	if f == nil {
		return false
	}
	f.state = s
	return true
}

// Invalidate removes the line containing addr, returning its prior state.
func (m *LocalMemory) Invalidate(addr uint64) State {
	f := m.find(addr)
	if f == nil {
		return Invalid
	}
	s := f.state
	f.state = Invalid
	return s
}

// Insert places a newly fetched line (always on chip: it was just
// referenced), evicting a victim from the set if needed. Victim preference:
// Invalid frames, then lowest rank (nil rank treats all states equally),
// ties broken by LRU. Re-inserting a present line refreshes state and LRU.
func (m *LocalMemory) Insert(addr uint64, s State, rank func(State) int) Victim {
	if s == Invalid {
		panic("cache: Insert with Invalid state")
	}
	set := m.set(addr)
	if f := m.find(addr); f != nil {
		m.stamp++
		f.lru = m.stamp
		f.state = s
		if !f.onChip {
			m.promote(set, f)
		}
		return Victim{}
	}
	best := -1
	for i := range set {
		if set[i].state == Invalid {
			best = i
			break
		}
		if best == -1 {
			best = i
			continue
		}
		if rank != nil {
			ri, rb := rank(set[i].state), rank(set[best].state)
			if ri != rb {
				if ri < rb {
					best = i
				}
				continue
			}
		}
		if set[i].lru < set[best].lru {
			best = i
		}
	}
	v := Victim{}
	if set[best].state != Invalid {
		v = Victim{Addr: set[best].tag, State: set[best].state}
	}
	m.stamp++
	wasOn := set[best].onChip
	set[best] = lframe{tag: m.Align(addr), state: s, lru: m.stamp, onChip: wasOn}
	if !wasOn {
		m.promote(set, &set[best])
	}
	return v
}

// ProbeVictim returns what Insert(addr, ..., rank) would displace, without
// modifying the memory: the zero Victim if the line is already present or a
// free frame exists, else the would-be victim. COMA injection uses this to
// decide whether placing a line here would displace another master.
func (m *LocalMemory) ProbeVictim(addr uint64, rank func(State) int) Victim {
	if m.find(addr) != nil {
		return Victim{}
	}
	set := m.set(addr)
	best := -1
	for i := range set {
		if set[i].state == Invalid {
			return Victim{}
		}
		if best == -1 {
			best = i
			continue
		}
		if rank != nil {
			ri, rb := rank(set[i].state), rank(set[best].state)
			if ri != rb {
				if ri < rb {
					best = i
				}
				continue
			}
		}
		if set[i].lru < set[best].lru {
			best = i
		}
	}
	return Victim{Addr: set[best].tag, State: set[best].state}
}

// ForEach calls fn for every valid line in deterministic frame order.
func (m *LocalMemory) ForEach(fn func(addr uint64, s State, onChip bool)) {
	for i := range m.frames {
		if m.frames[i].state != Invalid {
			fn(m.frames[i].tag, m.frames[i].state, m.frames[i].onChip)
		}
	}
}

// Count returns the number of valid lines.
func (m *LocalMemory) Count() int {
	n := 0
	for i := range m.frames {
		if m.frames[i].state != Invalid {
			n++
		}
	}
	return n
}

// Flush removes all lines, invoking fn (if non-nil) for each valid one. Used
// when a P-node is reconfigured into a D-node (§2.3: dirty and shared-master
// lines are written back to their homes).
func (m *LocalMemory) Flush(fn func(addr uint64, s State)) {
	for i := range m.frames {
		if m.frames[i].state != Invalid {
			if fn != nil {
				fn(m.frames[i].tag, m.frames[i].state)
			}
			m.frames[i].state = Invalid
		}
	}
}
