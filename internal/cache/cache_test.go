package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		total, line uint64
		assoc       int
	}{
		{0, 64, 1},       // zero capacity
		{1024, 65, 1},    // non-power-of-two line
		{1024, 0, 1},     // zero line
		{1024, 64, 0},    // zero assoc
		{1024, 64, -2},   // negative assoc
		{64 * 3, 64, 1},  // non-power-of-two sets
		{64 * 10, 64, 4}, // lines not multiple of assoc
	}
	for _, c := range cases {
		if _, err := New(c.total, c.line, c.assoc); err == nil {
			t.Errorf("New(%d,%d,%d): expected error", c.total, c.line, c.assoc)
		}
	}
	if _, err := New(64*1024, 64, 4); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

func TestInsertLookupAccess(t *testing.T) {
	c := MustNew(4*64, 64, 4) // one set, 4 ways
	if _, hit := c.Lookup(0x100); hit {
		t.Fatal("hit in empty cache")
	}
	if v := c.Insert(0x100, Shared, nil); v.Valid() {
		t.Fatalf("insert into empty set produced victim %+v", v)
	}
	if s, hit := c.Lookup(0x100); !hit || s != Shared {
		t.Fatalf("Lookup = (%v,%v), want (S,true)", s, hit)
	}
	// Same line, different byte offset.
	if s, hit := c.Access(0x13f); !hit || s != Shared {
		t.Fatalf("offset Access = (%v,%v), want (S,true)", s, hit)
	}
	// Adjacent line misses.
	if _, hit := c.Lookup(0x140); hit {
		t.Fatal("adjacent line hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(2*64, 64, 2) // one set, 2 ways
	c.Insert(0x000, Shared, nil)
	c.Insert(0x040, Shared, nil)
	c.Access(0x000) // 0x040 is now LRU
	v := c.Insert(0x080, Dirty, nil)
	if !v.Valid() || v.Addr != 0x040 || v.State != Shared {
		t.Fatalf("victim = %+v, want 0x040/S", v)
	}
	if _, hit := c.Lookup(0x000); !hit {
		t.Fatal("MRU line was evicted")
	}
}

func TestInsertPrefersInvalid(t *testing.T) {
	c := MustNew(2*64, 64, 2)
	c.Insert(0x000, Dirty, nil)
	c.Insert(0x040, Shared, nil)
	c.Invalidate(0x000)
	if v := c.Insert(0x080, Shared, nil); v.Valid() {
		t.Fatalf("insert with invalid frame available produced victim %+v", v)
	}
	if _, hit := c.Lookup(0x040); !hit {
		t.Fatal("valid line displaced despite free frame")
	}
}

func TestInsertRank(t *testing.T) {
	// COMA-style ranking: replace non-master shared before masters.
	rank := func(s State) int {
		switch s {
		case Shared:
			return 0
		case SharedMaster:
			return 1
		default:
			return 2
		}
	}
	c := MustNew(3*64, 64, 3)
	c.Insert(0x000, Dirty, nil)
	c.Insert(0x040, SharedMaster, nil)
	c.Insert(0x080, Shared, nil)
	c.Access(0x000)
	c.Access(0x040)
	c.Access(0x080) // Shared line is MRU, but rank should override
	v := c.Insert(0x0c0, Dirty, rank)
	if v.Addr != 0x080 || v.State != Shared {
		t.Fatalf("victim = %+v, want the Shared line despite MRU", v)
	}
}

func TestReinsertUpdatesInPlace(t *testing.T) {
	c := MustNew(2*64, 64, 2)
	c.Insert(0x000, Shared, nil)
	c.Insert(0x040, Shared, nil)
	if v := c.Insert(0x000, Dirty, nil); v.Valid() {
		t.Fatalf("reinsert produced victim %+v", v)
	}
	if s, _ := c.Lookup(0x000); s != Dirty {
		t.Fatalf("state after reinsert = %v, want D", s)
	}
	if c.Count() != 2 {
		t.Fatalf("Count = %d, want 2", c.Count())
	}
}

func TestSetStateAndInvalidate(t *testing.T) {
	c := MustNew(64, 64, 1)
	if c.SetState(0x0, Dirty) {
		t.Fatal("SetState on absent line returned true")
	}
	c.Insert(0x0, Shared, nil)
	if !c.SetState(0x0, SharedMaster) {
		t.Fatal("SetState on present line returned false")
	}
	if s := c.Invalidate(0x0); s != SharedMaster {
		t.Fatalf("Invalidate returned %v, want M*", s)
	}
	if s := c.Invalidate(0x0); s != Invalid {
		t.Fatalf("double Invalidate returned %v, want I", s)
	}
}

func TestFlushAndForEach(t *testing.T) {
	c := MustNew(4*64, 64, 2)
	c.Insert(0x000, Dirty, nil)
	c.Insert(0x040, Shared, nil)
	c.Insert(0x080, SharedMaster, nil)
	seen := map[uint64]State{}
	c.ForEach(func(a uint64, s State) { seen[a] = s })
	if len(seen) != 3 || seen[0x000] != Dirty || seen[0x080] != SharedMaster {
		t.Fatalf("ForEach saw %v", seen)
	}
	flushed := 0
	c.Flush(func(a uint64, s State) { flushed++ })
	if flushed != 3 || c.Count() != 0 {
		t.Fatalf("flushed %d lines, %d remain", flushed, c.Count())
	}
}

// Property: a cache never holds two frames with the same line address, and
// Count never exceeds capacity, under random operation sequences.
func TestNoDuplicateLinesProperty(t *testing.T) {
	f := func(seed uint64, opsRaw []byte) bool {
		c := MustNew(8*64, 64, 2) // 4 sets, 2 ways
		rng := rand.New(rand.NewPCG(seed, 17))
		for _, b := range opsRaw {
			addr := uint64(b%32) * 64 // 32 distinct lines over 8 frames
			switch rng.IntN(4) {
			case 0:
				c.Insert(addr, Shared, nil)
			case 1:
				c.Insert(addr, Dirty, nil)
			case 2:
				c.Access(addr)
			case 3:
				c.Invalidate(addr)
			}
			seen := map[uint64]int{}
			c.ForEach(func(a uint64, _ State) { seen[a]++ })
			for _, n := range seen {
				if n > 1 {
					return false
				}
			}
			if c.Count() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: inclusion of inserted line — immediately after Insert(addr),
// Lookup(addr) hits with the inserted state.
func TestInsertThenLookupProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := MustNew(16*128, 128, 4)
		for i, a := range addrs {
			st := Shared
			if i%2 == 0 {
				st = Dirty
			}
			c.Insert(uint64(a), st, nil)
			got, hit := c.Lookup(uint64(a))
			if !hit || got != st {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
