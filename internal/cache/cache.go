// Package cache implements the set-associative storage structures used
// throughout the machine: the on-chip L1/L2 SRAM caches, the tagged local
// DRAM memory of AGG P-nodes (organized as a cache per §2.1.1 of the paper),
// and the attraction memories of the Flat COMA baseline.
//
// Caches track only tags and coherence state — the simulator is timing- and
// coherence-accurate, not data-accurate, so no payload bytes are stored.
package cache

import (
	"fmt"
	"math/bits"
)

// State is the coherence state of a cached line. The paper's protocol uses
// invalid/shared/dirty plus the COMA-inspired shared-master state (§2.2.2).
type State uint8

const (
	// Invalid: the frame holds no valid line.
	Invalid State = iota
	// Shared: a read-only copy; another node (usually the home) holds the
	// master copy.
	Shared
	// SharedMaster: a read-only copy designated as the master. If displaced
	// it must be written back to the home (§2.2.2).
	SharedMaster
	// Dirty: the only valid copy, writable. The home keeps no place holder.
	Dirty
)

// String returns a short human-readable state name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case SharedMaster:
		return "M*"
	case Dirty:
		return "D"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether the state denotes a present line.
func (s State) Valid() bool { return s != Invalid }

// Owned reports whether displacing a line in this state requires writing it
// back to its home (it is the master or the only copy).
func (s State) Owned() bool { return s == Dirty || s == SharedMaster }

// Victim describes a line displaced by an insertion.
type Victim struct {
	Addr  uint64 // line-aligned byte address
	State State
}

// Valid reports whether a real line was displaced.
func (v Victim) Valid() bool { return v.State != Invalid }

type frame struct {
	tag   uint64 // line-aligned address
	state State
	lru   uint64 // global LRU stamp; larger = more recent
}

// SetAssoc is a set-associative tag/state array with true-LRU replacement.
type SetAssoc struct {
	lineBytes uint64
	lineShift uint
	sets      uint64
	setMask   uint64
	assoc     int
	frames    []frame // sets × assoc
	stamp     uint64
}

// New builds a cache of totalBytes capacity with the given line size and
// associativity. Line size and the resulting set count must be powers of two;
// assoc may be any positive value.
func New(totalBytes, lineBytes uint64, assoc int) (*SetAssoc, error) {
	if assoc <= 0 {
		return nil, fmt.Errorf("cache: associativity %d must be positive", assoc)
	}
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d must be a power of two", lineBytes)
	}
	lines := totalBytes / lineBytes
	if lines == 0 || lines%uint64(assoc) != 0 {
		return nil, fmt.Errorf("cache: capacity %dB is not a multiple of %d ways of %dB lines", totalBytes, assoc, lineBytes)
	}
	sets := lines / uint64(assoc)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return &SetAssoc{
		lineBytes: lineBytes,
		lineShift: uint(bits.TrailingZeros64(lineBytes)),
		sets:      sets,
		setMask:   sets - 1,
		assoc:     assoc,
		frames:    make([]frame, lines),
	}, nil
}

// MustNew is New, panicking on error. For configurations known at compile time.
func MustNew(totalBytes, lineBytes uint64, assoc int) *SetAssoc {
	c, err := New(totalBytes, lineBytes, assoc)
	if err != nil {
		panic(err)
	}
	return c
}

// LineBytes returns the line size in bytes.
func (c *SetAssoc) LineBytes() uint64 { return c.lineBytes }

// Lines returns the total number of line frames.
func (c *SetAssoc) Lines() uint64 { return c.sets * uint64(c.assoc) }

// Assoc returns the associativity.
func (c *SetAssoc) Assoc() int { return c.assoc }

// Align returns addr rounded down to its line boundary.
func (c *SetAssoc) Align(addr uint64) uint64 { return addr &^ (c.lineBytes - 1) }

func (c *SetAssoc) set(addr uint64) []frame {
	s := (addr >> c.lineShift) & c.setMask
	return c.frames[s*uint64(c.assoc) : (s+1)*uint64(c.assoc)]
}

func (c *SetAssoc) find(addr uint64) *frame {
	tag := c.Align(addr)
	set := c.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Lookup returns the state of the line containing addr without updating LRU.
func (c *SetAssoc) Lookup(addr uint64) (State, bool) {
	if f := c.find(addr); f != nil {
		return f.state, true
	}
	return Invalid, false
}

// Access returns the state of the line containing addr, marking it most
// recently used on a hit.
func (c *SetAssoc) Access(addr uint64) (State, bool) {
	if f := c.find(addr); f != nil {
		c.stamp++
		f.lru = c.stamp
		return f.state, true
	}
	return Invalid, false
}

// SetState updates the state of a present line. It reports whether the line
// was present. Setting Invalid removes the line.
func (c *SetAssoc) SetState(addr uint64, s State) bool {
	f := c.find(addr)
	if f == nil {
		return false
	}
	f.state = s
	return true
}

// Invalidate removes the line containing addr, returning its prior state.
func (c *SetAssoc) Invalidate(addr uint64) State {
	f := c.find(addr)
	if f == nil {
		return Invalid
	}
	s := f.state
	f.state = Invalid
	return s
}

// Insert places the line containing addr with the given state, evicting the
// least attractive frame in its set if full. Victim preference: Invalid
// frames first, then lowest rank as reported by rank (nil means all equal),
// ties broken by LRU. If the line is already present its state is updated
// in place and no victim results.
func (c *SetAssoc) Insert(addr uint64, s State, rank func(State) int) Victim {
	if s == Invalid {
		panic("cache: Insert with Invalid state")
	}
	if f := c.find(addr); f != nil {
		c.stamp++
		f.lru = c.stamp
		f.state = s
		return Victim{}
	}
	set := c.set(addr)
	best := -1
	for i := range set {
		if set[i].state == Invalid {
			best = i
			break
		}
		if best == -1 {
			best = i
			continue
		}
		if rank != nil {
			ri, rb := rank(set[i].state), rank(set[best].state)
			if ri != rb {
				if ri < rb {
					best = i
				}
				continue
			}
		}
		if set[i].lru < set[best].lru {
			best = i
		}
	}
	v := Victim{}
	if set[best].state != Invalid {
		v = Victim{Addr: set[best].tag, State: set[best].state}
	}
	c.stamp++
	set[best] = frame{tag: c.Align(addr), state: s, lru: c.stamp}
	return v
}

// ForEach calls fn for every valid line (address, state). Iteration order is
// frame order (deterministic).
func (c *SetAssoc) ForEach(fn func(addr uint64, s State)) {
	for i := range c.frames {
		if c.frames[i].state != Invalid {
			fn(c.frames[i].tag, c.frames[i].state)
		}
	}
}

// Count returns the number of valid lines.
func (c *SetAssoc) Count() int {
	n := 0
	for i := range c.frames {
		if c.frames[i].state != Invalid {
			n++
		}
	}
	return n
}

// Flush removes all lines, invoking fn (if non-nil) for each valid one.
func (c *SetAssoc) Flush(fn func(addr uint64, s State)) {
	for i := range c.frames {
		if c.frames[i].state != Invalid {
			if fn != nil {
				fn(c.frames[i].tag, c.frames[i].state)
			}
			c.frames[i].state = Invalid
		}
	}
}
