package cache

import "testing"

func BenchmarkSetAssocAccess(b *testing.B) {
	b.ReportAllocs()
	c := MustNew(1<<20, 64, 4)
	for i := 0; i < 1<<14; i++ {
		c.Insert(uint64(i)*64, Shared, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%(1<<14)) * 64)
	}
}

func BenchmarkSetAssocInsertEvict(b *testing.B) {
	b.ReportAllocs()
	c := MustNew(1<<16, 64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i)*64, Dirty, nil)
	}
}

func BenchmarkLocalMemoryAccess(b *testing.B) {
	b.ReportAllocs()
	m := MustNewLocal(1<<20, 128, 4, 0.5)
	for i := 0; i < 1<<13; i++ {
		m.Insert(uint64(i)*128, Dirty, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(uint64(i%(1<<13)) * 128)
	}
}

func BenchmarkLocalMemoryProbeVictim(b *testing.B) {
	b.ReportAllocs()
	m := MustNewLocal(1<<18, 128, 4, 0.5)
	for i := 0; i < 1<<11; i++ {
		m.Insert(uint64(i)*128, Dirty, nil)
	}
	rank := func(s State) int {
		if s == Shared {
			return 0
		}
		return 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ProbeVictim(uint64(i)*128, rank)
	}
}
