package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pimdsm/internal/sim"
)

func TestNopTraceDisabled(t *testing.T) {
	n := Nop()
	if n.On() {
		t.Fatal("Nop trace reports On")
	}
	n.Emit(EvRead, 10, 5, 0, 0x80, 0) // must be a no-op, not a panic
	if n.Total() != 0 || n.Len() != 0 || n.Cap() != 0 {
		t.Fatalf("Nop trace recorded something: total=%d len=%d cap=%d", n.Total(), n.Len(), n.Cap())
	}
	if Nop() != n {
		t.Fatal("Nop is not a shared singleton")
	}
}

func TestTraceCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1 << 16}, {-5, 1 << 16}, {1, 1}, {2, 2}, {3, 4}, {1000, 1024}, {1024, 1024},
	} {
		if got := NewTrace(tc.in).Cap(); got != tc.want {
			t.Errorf("NewTrace(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestTraceRingOverwrite(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 10; i++ {
		tr.Emit(EvInval, sim.Time(i), 0, int32(i), uint64(i)*128, 0)
	}
	if tr.Total() != 10 || tr.Len() != 4 || tr.Dropped() != 6 {
		t.Fatalf("total=%d len=%d dropped=%d, want 10/4/6", tr.Total(), tr.Len(), tr.Dropped())
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("Events len = %d, want 4", len(ev))
	}
	// The four newest survive, in time order.
	for i, e := range ev {
		if want := sim.Time(6 + i); e.At != want {
			t.Errorf("event %d at %d, want %d", i, e.At, want)
		}
	}
}

func TestTraceEventsSortedByTime(t *testing.T) {
	tr := NewTrace(8)
	// Threads run ahead of each other, so emission order is not time order.
	tr.Emit(EvRead, 50, 10, 0, 0x100, 0)
	tr.Emit(EvRead, 20, 10, 1, 0x200, 0)
	tr.Emit(EvWrite, 35, 5, 2, 0x300, 0)
	ev := tr.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatalf("events out of order: %v", ev)
		}
	}
	if ev[0].Node != 1 || ev[1].Node != 2 || ev[2].Node != 0 {
		t.Fatalf("unexpected order: %v", ev)
	}
}

func TestTraceCountKindAndReset(t *testing.T) {
	tr := NewTrace(16)
	tr.Emit(EvRead, 1, 1, 0, 0, 0)
	tr.Emit(EvRead, 2, 1, 0, 0, 0)
	tr.Emit(EvWriteBack, 3, 0, 0, 0, 0)
	if tr.CountKind(EvRead) != 2 || tr.CountKind(EvWriteBack) != 1 || tr.CountKind(EvPageout) != 0 {
		t.Fatal("CountKind wrong")
	}
	tr.Reset()
	if tr.Len() != 0 || tr.CountKind(EvRead) != 0 {
		t.Fatal("Reset did not clear")
	}
	if !tr.On() {
		t.Fatal("Reset disabled the trace")
	}
}

func TestChromeJSONWellFormed(t *testing.T) {
	tr := NewTrace(16)
	tr.Emit(EvRunStart, 0, 0, -1, 32, 8)
	tr.Emit(EvRead, 100, 37, 3, 0x1000, 2)
	tr.Emit(EvWrite, 150, 298, 4, 0x2000, 3)
	tr.Emit(EvInval, 200, 0, 5, 0x1000, 0)
	tr.Emit(EvMsg, 210, 40, 1, 6, uint64(3)<<32|144)
	tr.Emit(EvOcc, 300, 0, 33, 0, 512)
	tr.Emit(EvPageout, 400, 0, 33, 0x4000, 511)

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 7 {
		t.Fatalf("traceEvents len = %d, want 7", len(doc.TraceEvents))
	}
	phases := map[string]string{"read": "X", "write": "X", "msg": "X", "inval": "i", "pageout": "i"}
	for _, e := range doc.TraceEvents {
		name := e["name"].(string)
		if strings.HasPrefix(name, "free-slots") {
			if e["ph"] != "C" {
				t.Errorf("occ event ph = %v, want C", e["ph"])
			}
			continue
		}
		if want, ok := phases[name]; ok && e["ph"] != want {
			t.Errorf("%s event ph = %v, want %s", name, e["ph"], want)
		}
	}
	// Timestamps must come out in non-decreasing sim-time order.
	last := -1.0
	for _, e := range doc.TraceEvents {
		ts := e["ts"].(float64)
		if ts < last {
			t.Fatalf("timestamps out of order: %v after %v", ts, last)
		}
		last = ts
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := NewTrace(8)
	tr.Emit(EvRead, 100, 37, 3, 0x1000, 2)
	tr.Emit(EvInval, 200, 0, -1, 0x1000, 0) // negative node survives
	tr.Emit(EvScan, 300, 4096, 35, 0x8000, 32)

	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if want := 24 + 3*recordSize; buf.Len() != want {
		t.Fatalf("binary size = %d, want %d", buf.Len(), want)
	}
	events, total, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || len(events) != 3 {
		t.Fatalf("total=%d len=%d, want 3/3", total, len(events))
	}
	want := tr.Events()
	for i := range events {
		if events[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, _, err := ReadBinary(bytes.NewReader([]byte("not a trace file at all....."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	if err := NewTrace(4).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // corrupt the version
	if _, _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for k := EventKind(0); k < NumEventKinds; k++ {
		if k.String() == "" || k.String() == "invalid" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if EventKind(200).String() != "invalid" {
		t.Fatal("out-of-range kind not flagged")
	}
	if !EvRead.Span() || !EvMsg.Span() || EvInval.Span() {
		t.Fatal("span classification wrong")
	}
}
