package svclog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"pimdsm/internal/stats"
)

// Prometheus text exposition (version 0.0.4), hand-rolled: the service must
// not grow a client_golang dependency for what is a dozen lines of framing.
// A PromWriter emits families (# HELP / # TYPE once) and samples; the
// Histogram helper renders a stats.LatHist as a cumulative prometheus
// histogram whose bucket edges are the LatHist power-of-two upper bounds.

// Label is one name="value" pair.
type Label struct{ K, V string }

// PromWriter writes Prometheus text format. Errors are sticky: check Err
// (or the Flush return) once at the end.
type PromWriter struct {
	w   *bufio.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w)}
}

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family declares a metric family; typ is "counter", "gauge" or "histogram".
func (p *PromWriter) Family(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Sample emits one sample line for the given (already declared) family.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	p.printf("%s%s %s\n", name, renderLabels(labels), formatFloat(v))
}

// Histogram emits a family's cumulative _bucket/_sum/_count series from a
// LatHist. Bucket edges are the LatHist upper bounds (2^i - 1); the overflow
// bucket is folded into +Inf. sum is the exact value sum in the histogram's
// unit (tracked beside the LatHist, which only holds counts).
func (p *PromWriter) Histogram(name string, labels []Label, h *stats.LatHist, sum float64) {
	var cum uint64
	for i := 0; i < stats.NumLatBuckets-1; i++ {
		cum += h[i]
		le := Label{K: "le", V: strconv.FormatUint(uint64(1)<<uint(i)-1, 10)}
		p.Sample(name+"_bucket", append(append([]Label(nil), labels...), le), float64(cum))
	}
	cum += h[stats.NumLatBuckets-1]
	p.Sample(name+"_bucket", append(append([]Label(nil), labels...), Label{K: "le", V: "+Inf"}), float64(cum))
	p.Sample(name+"_sum", labels, sum)
	p.Sample(name+"_count", labels, float64(cum))
}

// Err returns the first write error.
func (p *PromWriter) Err() error { return p.err }

// Flush flushes the buffered output and returns the first error.
func (p *PromWriter) Flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.K)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.V))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// unescapeLabelValue inverts escapeLabel in a single pass. Sequential
// ReplaceAll calls cannot do this: the writer renders the literal two bytes
// `\n` as `\\n`, and a `\n`-then-`\\` replacement order turns that back into
// a backslash followed by a real newline instead. Unknown escapes pass
// through with the backslash intact, matching Prometheus text semantics.
func unescapeLabelValue(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 >= len(s) {
			sb.WriteByte(c)
			continue
		}
		i++
		switch s[i] {
		case 'n':
			sb.WriteByte('\n')
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		default:
			sb.WriteByte('\\')
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Type    string
	Samples []PromSample
}

// ParsePromText parses and validates Prometheus text exposition: every
// sample line must parse, belong to a family whose # TYPE was declared
// first, and histogram families must have cumulative, non-decreasing
// buckets ending in le="+Inf" with _count equal to the +Inf bucket. This is
// the soak harness's "parseable by a test, not by eye" check.
func ParsePromText(text string) (map[string]*PromFamily, error) {
	fams := map[string]*PromFamily{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, typ := parts[2], parts[3]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", ln+1, typ)
			}
			if _, dup := fams[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			fams[name] = &PromFamily{Name: name, Type: typ}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		fam := fams[s.Name]
		if fam == nil {
			// histogram/summary series land under the base family name
			base := s.Name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(s.Name, suf) {
					base = strings.TrimSuffix(s.Name, suf)
					break
				}
			}
			fam = fams[base]
			if fam == nil {
				return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", ln+1, s.Name)
			}
		}
		fam.Samples = append(fam.Samples, s)
	}
	for _, fam := range fams {
		if fam.Type == "histogram" {
			if err := validateHistogram(fam); err != nil {
				return nil, fmt.Errorf("histogram %s: %w", fam.Name, err)
			}
		}
	}
	return fams, nil
}

func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" || !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := labelSetEnd(rest)
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		for _, kv := range splitLabels(rest[1:end]) {
			eq := strings.Index(kv, "=")
			if eq < 0 {
				return s, fmt.Errorf("malformed label %q", kv)
			}
			k := kv[:eq]
			raw := kv[eq+1:]
			if len(raw) < 2 || raw[0] != '"' || raw[len(raw)-1] != '"' {
				return s, fmt.Errorf("label %s value not quoted in %q", k, line)
			}
			s.Labels[k] = unescapeLabelValue(raw[1 : len(raw)-1])
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("no value in %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil && fields[0] != "+Inf" && fields[0] != "-Inf" && fields[0] != "NaN" {
		return s, fmt.Errorf("bad value %q", fields[0])
	}
	s.Value = v
	return s, nil
}

// labelSetEnd returns the index of the `}` closing the label set that opens
// at s[0], honoring quoted values — a `}` inside a quoted label value (route
// patterns like "GET /api/v1/jobs/{id}") does not terminate the set. Returns
// -1 when the set never closes.
func labelSetEnd(s string) int {
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// splitLabels splits a="1",b="2" on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			cur.WriteByte(c)
			i++
			cur.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func validMetricName(name string) bool {
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return len(name) > 0
}

// validateHistogram checks cumulative bucket monotonicity and the
// _count == le="+Inf" identity per label set.
func validateHistogram(fam *PromFamily) error {
	type series struct {
		buckets []PromSample
		count   float64
		hasCnt  bool
	}
	bySet := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var sb strings.Builder
		for _, k := range keys {
			sb.WriteString(k + "=" + labels[k] + ";")
		}
		return sb.String()
	}
	for _, s := range fam.Samples {
		key := keyOf(s.Labels)
		sr := bySet[key]
		if sr == nil {
			sr = &series{}
			bySet[key] = sr
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			sr.buckets = append(sr.buckets, s)
		case strings.HasSuffix(s.Name, "_count"):
			sr.count = s.Value
			sr.hasCnt = true
		}
	}
	for key, sr := range bySet {
		if len(sr.buckets) == 0 {
			return fmt.Errorf("series %q has no buckets", key)
		}
		last := sr.buckets[len(sr.buckets)-1]
		if last.Labels["le"] != "+Inf" {
			return fmt.Errorf("series %q does not end at le=\"+Inf\"", key)
		}
		prev := -1.0
		for _, b := range sr.buckets {
			if b.Value < prev {
				return fmt.Errorf("series %q buckets not cumulative (le=%q: %v < %v)",
					key, b.Labels["le"], b.Value, prev)
			}
			prev = b.Value
		}
		if sr.hasCnt && sr.count != last.Value {
			return fmt.Errorf("series %q _count %v != +Inf bucket %v", key, sr.count, last.Value)
		}
	}
	return nil
}
