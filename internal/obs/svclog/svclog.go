// Package svclog is the service-edge observability layer: structured JSON
// logging on log/slog with a deterministic-field contract, HTTP middleware
// that stamps request IDs and feeds per-endpoint latency histograms, a job
// lifecycle event log with a global sequence (the SSE resume cursor), and a
// hand-rolled Prometheus text-format writer. It observes the service edge
// (internal/serve, cmd/aggsimd) the way internal/obs observes the simulator:
// record-only, so enabling it never changes a result.
//
// The log field contract (DESIGN.md §11): every line is one JSON object with
// a fixed key set per message kind. Request lines ("http_request") carry
// exactly time, level, msg, method, path, route, status, bytes, dur_us,
// request_id and remote — a golden test pins the set, so accidental schema
// drift fails CI. In deterministic mode (tests) the wall-clock "time" key is
// dropped and no field ever carries a raw pointer, so log output is stable
// enough to golden-test.
package svclog

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// New returns a structured JSON logger writing to w at the given level.
// With deterministic set, the wall-clock "time" attribute is dropped from
// every line — the mode tests use so a logged line's key set is exactly the
// documented contract with no environment-dependent fields.
func New(w io.Writer, level slog.Leveler, deterministic bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if deterministic {
		opts.ReplaceAttr = func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		}
	}
	return slog.New(slog.NewJSONHandler(w, opts))
}

// nopLevel is above every real level, so a Nop logger's handler reports
// Enabled() == false and the argument lists are never even evaluated.
const nopLevel = slog.Level(127)

// Nop returns a logger that discards everything without formatting it.
func Nop() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, &slog.HandlerOptions{Level: nopLevel}))
}

// ParseLevel maps the -log-level flag values to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("svclog: unknown log level %q (want debug, info, warn or error)", s)
}
