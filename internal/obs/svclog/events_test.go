package svclog

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func ev(job string, kind JobEventKind) JobEvent {
	return JobEvent{Job: job, Kind: kind, At: time.Unix(100, 0), Config: -1}
}

func TestEventLogSequenceAndPerJob(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 5; i++ {
		got := l.Append(ev("j-1", EvSimulated))
		if got.Seq != uint64(i+1) {
			t.Fatalf("append %d assigned seq %d", i, got.Seq)
		}
	}
	l.Append(ev("j-2", EvSubmitted))
	if l.Seq() != 6 {
		t.Fatalf("head seq = %d", l.Seq())
	}
	if got := l.Job("j-1"); len(got) != 5 {
		t.Fatalf("j-1 chain has %d events", len(got))
	}
	if got := l.Job("j-2"); len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("j-2 chain: %+v", got)
	}
	since, head := l.Since(4)
	if head != 6 || len(since) != 2 || since[0].Seq != 5 || since[1].Seq != 6 {
		t.Fatalf("Since(4) = %+v head %d", since, head)
	}
}

func TestEventLogRingRotation(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Append(ev("j", EvSimulated))
	}
	since, head := l.Since(0)
	if head != 10 {
		t.Fatalf("head = %d", head)
	}
	// Only the last 4 survive the ring; the caller sees the gap via Seq.
	if len(since) != 4 || since[0].Seq != 7 || since[3].Seq != 10 {
		t.Fatalf("rotated Since(0): %+v", since)
	}
	// Per-job chains are complete regardless of ring rotation.
	if got := l.Job("j"); len(got) != 10 {
		t.Fatalf("per-job chain lost events under rotation: %d", len(got))
	}
}

func TestEventLogSubscribe(t *testing.T) {
	l := NewEventLog(16)
	ch, cancel := l.Subscribe(4)
	l.Append(ev("j", EvSubmitted))
	l.Append(ev("j", EvQueued))
	if e := <-ch; e.Kind != EvSubmitted || e.Seq != 1 {
		t.Fatalf("first delivery: %+v", e)
	}
	if e := <-ch; e.Kind != EvQueued {
		t.Fatalf("second delivery: %+v", e)
	}
	// A full subscriber buffer drops (counted), never blocks the appender.
	for i := 0; i < 10; i++ {
		l.Append(ev("j", EvSimulated))
	}
	if st := l.Stats(); st.Dropped == 0 || st.Subscribers != 1 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	cancel()
	if _, open := <-ch; open {
		// drain until closed
		for range ch {
		}
	}
	if st := l.Stats(); st.Subscribers != 0 {
		t.Fatalf("cancel left a subscriber: %+v", st)
	}
	cancel() // idempotent
}

func TestWriteChromeJSON(t *testing.T) {
	base := time.Unix(1000, 0)
	events := []JobEvent{
		{Seq: 1, Job: "j-1", Kind: EvSubmitted, At: base, Config: -1},
		{Seq: 2, Job: "j-1", Kind: EvStarted, At: base.Add(time.Millisecond), Config: -1, QueueDepth: 1},
		{Seq: 3, Job: "j-1", Kind: EvSimulated, At: base.Add(2 * time.Millisecond), Config: 0, Cycles: 123},
		{Seq: 4, Job: "j-1", Kind: EvDone, At: base.Add(3 * time.Millisecond), Config: -1, SinceSubmitUS: 3000},
	}
	var buf bytes.Buffer
	if err := WriteChromeJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v\n%s", err, buf.String())
	}
	// 4 instants plus the job-life "X" span emitted at the terminal event.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("exported %d trace events, want 5", len(doc.TraceEvents))
	}
	var sawSpan bool
	for _, te := range doc.TraceEvents {
		if te["ph"] == "X" {
			sawSpan = true
			if te["dur"].(float64) != 3000 {
				t.Fatalf("job span dur = %v, want 3000us", te["dur"])
			}
		}
	}
	if !sawSpan {
		t.Fatal("no job-life X span in export")
	}
}
