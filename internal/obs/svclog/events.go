package svclog

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// JobEventKind names one step of a job's path through the service.
type JobEventKind string

// The job lifecycle state machine (DESIGN.md §11): submitted → queued →
// started → {cache_hit | joined | simulated [→ persisted]} per config →
// done | failed, or aborted straight from queued during a drain.
const (
	EvSubmitted JobEventKind = "submitted"
	EvQueued    JobEventKind = "queued"
	EvStarted   JobEventKind = "started"
	EvCacheHit  JobEventKind = "cache_hit"
	EvJoined    JobEventKind = "joined"
	EvSimulated JobEventKind = "simulated"
	EvPersisted JobEventKind = "persisted"
	EvDone      JobEventKind = "done"
	EvFailed    JobEventKind = "failed"
	EvAborted   JobEventKind = "aborted"
)

// JobEvent is one lifecycle event. Seq is the event log's global sequence
// number — strictly increasing, dense, and the SSE Last-Event-ID cursor.
// Config is the index of the configuration the event concerns, -1 for
// job-level events. SinceSubmitUS and QueueDepth are the wall-time and
// backlog attribution: where the job's latency actually went.
type JobEvent struct {
	Seq           uint64       `json:"seq"`
	Job           string       `json:"job"`
	Kind          JobEventKind `json:"kind"`
	At            time.Time    `json:"at"`
	SinceSubmitUS int64        `json:"since_submit_us"`
	QueueDepth    int          `json:"queue_depth"`
	Running       int          `json:"running"`
	Config        int          `json:"config"`
	Cycles        uint64       `json:"cycles,omitempty"`
	Tenant        string       `json:"tenant,omitempty"`
	Detail        string       `json:"detail,omitempty"`
}

// EventLogStats counts the log's traffic.
type EventLogStats struct {
	Appended    uint64 `json:"appended"`
	Dropped     uint64 `json:"dropped"`
	Subscribers int    `json:"subscribers"`
}

type subscriber struct {
	ch chan JobEvent
}

// EventLog is the service's lifecycle event hub: a bounded global ring (the
// SSE replay window), a per-job event chain (complete for every job the
// server still remembers), and live subscribers. Appends assign the global
// sequence; a subscriber that falls behind its buffer has events dropped —
// its consumer detects the sequence gap and resyncs from the ring, exactly
// what an SSE client reconnecting with Last-Event-ID does.
type EventLog struct {
	mu      sync.Mutex
	seq     uint64
	ring    []JobEvent // ring[(seq-1) % len] once seq > 0
	perJob  map[string][]JobEvent
	subs    map[*subscriber]struct{}
	dropped uint64
}

// NewEventLog returns an event log whose replay ring holds ringSize events
// (default 4096 when ringSize <= 0).
func NewEventLog(ringSize int) *EventLog {
	if ringSize <= 0 {
		ringSize = 4096
	}
	return &EventLog{
		ring:   make([]JobEvent, 0, ringSize),
		perJob: make(map[string][]JobEvent),
		subs:   make(map[*subscriber]struct{}),
	}
}

// Append assigns the next sequence number to ev, records it, and fans it out
// to subscribers (non-blocking: a full subscriber buffer drops the event for
// that subscriber only). Returns the event with Seq set.
func (l *EventLog) Append(ev JobEvent) JobEvent {
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
	} else {
		l.ring[(ev.Seq-1)%uint64(cap(l.ring))] = ev
	}
	l.perJob[ev.Job] = append(l.perJob[ev.Job], ev)
	for s := range l.subs {
		select {
		case s.ch <- ev:
		default:
			l.dropped++
		}
	}
	l.mu.Unlock()
	return ev
}

// Seq returns the last assigned sequence number (0 before any event).
func (l *EventLog) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Since returns, in sequence order, every event with Seq > after that the
// ring still holds, plus the current head sequence. A caller that finds
// events[0].Seq > after+1 knows the ring rotated past part of its gap.
func (l *EventLog) Since(after uint64) ([]JobEvent, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seq <= after {
		return nil, l.seq
	}
	oldest := uint64(1)
	if n := uint64(len(l.ring)); l.seq > n {
		oldest = l.seq - n + 1
	}
	from := after + 1
	if from < oldest {
		from = oldest
	}
	out := make([]JobEvent, 0, l.seq-from+1)
	for s := from; s <= l.seq; s++ {
		out = append(out, l.ring[(s-1)%uint64(cap(l.ring))])
	}
	return out, l.seq
}

// Job returns job id's complete event chain in sequence order.
func (l *EventLog) Job(id string) []JobEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]JobEvent(nil), l.perJob[id]...)
}

// Subscribe registers a live listener with the given channel buffer
// (default 256 when buf <= 0). Cancel unregisters and closes the channel.
func (l *EventLog) Subscribe(buf int) (<-chan JobEvent, func()) {
	if buf <= 0 {
		buf = 256
	}
	s := &subscriber{ch: make(chan JobEvent, buf)}
	l.mu.Lock()
	l.subs[s] = struct{}{}
	l.mu.Unlock()
	cancel := func() {
		l.mu.Lock()
		if _, ok := l.subs[s]; ok {
			delete(l.subs, s)
			close(s.ch)
		}
		l.mu.Unlock()
	}
	return s.ch, cancel
}

// Stats snapshots the log's counters.
func (l *EventLog) Stats() EventLogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return EventLogStats{Appended: l.seq, Dropped: l.dropped, Subscribers: len(l.subs)}
}

// WriteChromeJSON renders lifecycle events as Chrome trace_event JSON
// (chrome://tracing, Perfetto), the same viewer target as the simulator's
// protocol traces. Timestamps are microseconds since the first event; each
// job gets its own thread track; terminal events additionally emit a
// complete ("X") span covering the job's whole submit→finish life.
func WriteChromeJSON(w io.Writer, events []JobEvent) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	var t0 time.Time
	if len(events) > 0 {
		t0 = events[0].At
	}
	tids := map[string]int{}
	tid := func(job string) int {
		id, ok := tids[job]
		if !ok {
			id = len(tids) + 1
			tids[job] = id
		}
		return id
	}
	first := true
	emit := func(v map[string]any) error {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}
	for _, ev := range events {
		ts := float64(ev.At.Sub(t0).Microseconds())
		args := map[string]any{
			"seq": ev.Seq, "job": ev.Job,
			"queue_depth": ev.QueueDepth, "running": ev.Running,
			"since_submit_us": ev.SinceSubmitUS,
		}
		if ev.Config >= 0 {
			args["config"] = ev.Config
		}
		if ev.Cycles > 0 {
			args["cycles"] = ev.Cycles
		}
		if ev.Tenant != "" {
			args["tenant"] = ev.Tenant
		}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		if err := emit(map[string]any{
			"name": string(ev.Kind), "cat": "job", "ph": "i", "s": "t",
			"ts": ts, "pid": 0, "tid": tid(ev.Job), "args": args,
		}); err != nil {
			return err
		}
		switch ev.Kind {
		case EvDone, EvFailed, EvAborted:
			if err := emit(map[string]any{
				"name": ev.Job, "cat": "job", "ph": "X",
				"ts": ts - float64(ev.SinceSubmitUS), "dur": float64(ev.SinceSubmitUS),
				"pid": 0, "tid": tid(ev.Job),
				"args": map[string]any{"outcome": string(ev.Kind)},
			}); err != nil {
				return err
			}
		}
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}
