package svclog

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel(loud) should fail")
	}
}

func TestDeterministicModeDropsTime(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, slog.LevelInfo, true)
	log.Info("hello", "k", 1)
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, buf.String())
	}
	if _, has := m["time"]; has {
		t.Fatalf("deterministic line still carries a timestamp: %q", buf.String())
	}
	buf.Reset()
	New(&buf, slog.LevelInfo, false).Info("hello")
	if !strings.Contains(buf.String(), `"time"`) {
		t.Fatalf("non-deterministic line lost its timestamp: %q", buf.String())
	}
}

// TestRequestLogGoldenKeySet is the log-schema drift gate: one request
// logged through the middleware in deterministic mode must parse as JSON
// whose key set is exactly testdata/http_log_keys.golden.
func TestRequestLogGoldenKeySet(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, slog.LevelInfo, true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("x"))
	})
	h := Middleware(log, NewHTTPStats(), mux)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/jobs/j-000001", nil))

	line := strings.TrimSpace(buf.String())
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("request log line is not JSON: %v (%q)", err, line)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	want, err := os.ReadFile("testdata/http_log_keys.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("http_request log schema drifted.\ngot keys:\n%swant keys:\n%s"+
			"(update testdata/http_log_keys.golden only for a deliberate contract change)",
			got, want)
	}
	if m["route"] != "GET /api/v1/jobs/{id}" {
		t.Fatalf("route label = %v, want the mux pattern", m["route"])
	}
}

// TestRequestLogTenantKey: a handler that resolves a tenant (as the API's
// auth wrapper does via SetTenant) gets exactly one extra key — tenant —
// appended to the golden anonymous set; an anonymous request stays on the
// golden set itself (asserted by TestRequestLogGoldenKeySet above).
func TestRequestLogTenantKey(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, slog.LevelInfo, true)
	h := Middleware(log, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		SetTenant(r.Context(), "acme")
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/v1/jobs", nil))

	var m map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &m); err != nil {
		t.Fatalf("request log line is not JSON: %v (%q)", err, buf.String())
	}
	if m["tenant"] != "acme" {
		t.Fatalf("tenant key = %v, want acme (%q)", m["tenant"], buf.String())
	}

	keys := make([]string, 0, len(m))
	for k := range m {
		if k != "tenant" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	want, err := os.ReadFile("testdata/http_log_keys.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(keys, "\n") + "\n"; got != string(want) {
		t.Fatalf("tenant line drifted beyond the one extra key.\ngot (minus tenant):\n%swant:\n%s", got, want)
	}
}

// SetTenant outside the middleware must be a harmless no-op, and TenantName
// must come back empty.
func TestSetTenantWithoutMiddleware(t *testing.T) {
	r := httptest.NewRequest("GET", "/x", nil)
	SetTenant(r.Context(), "ghost")
	if got := TenantName(r.Context()); got != "" {
		t.Fatalf("TenantName without middleware = %q, want empty", got)
	}
}

func TestMiddlewareRequestID(t *testing.T) {
	var seen string
	h := Middleware(Nop(), nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
	}))

	// Generated when absent, echoed on the response.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if seen == "" || rec.Header().Get(RequestIDHeader) != seen {
		t.Fatalf("generated id %q not echoed (%q)", seen, rec.Header().Get(RequestIDHeader))
	}

	// Propagated when present.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "client-supplied-7")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "client-supplied-7" || rec.Header().Get(RequestIDHeader) != "client-supplied-7" {
		t.Fatalf("inbound id not propagated: ctx %q, header %q", seen, rec.Header().Get(RequestIDHeader))
	}
}

func TestHTTPStatsObserve(t *testing.T) {
	hs := NewHTTPStats()
	for i := 0; i < 10; i++ {
		hs.Observe("GET /a", 200, 100*time.Microsecond)
	}
	hs.Observe("GET /a", 500, 50*time.Millisecond)
	hs.Observe("POST /b", 202, time.Millisecond)

	snap := hs.Snapshot()
	if len(snap) != 2 || snap[0].Route != "GET /a" || snap[1].Route != "POST /b" {
		t.Fatalf("snapshot routes: %+v", snap)
	}
	a := snap[0]
	if a.Count != 11 || a.Status[200] != 10 || a.Status[500] != 1 {
		t.Fatalf("GET /a counters: %+v", a)
	}
	if a.SumUS != 10*100+50000 {
		t.Fatalf("GET /a sum_us = %d", a.SumUS)
	}
	if a.Hist.Total() != 11 {
		t.Fatalf("GET /a hist total = %d", a.Hist.Total())
	}
	// With half the samples slow, the p99 upper bound must land in the
	// slow bucket (LatHist.Percentile floors the rank, so a single outlier
	// in a small sample would not).
	for i := 0; i < 11; i++ {
		hs.Observe("GET /a", 200, 50*time.Millisecond)
	}
	a = hs.Snapshot()[0]
	if p99 := a.P99US(); p99 < 50000 {
		t.Fatalf("p99 upper bound %d below the 50ms mass", p99)
	}
}
