package svclog

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pimdsm/internal/sim"
	"pimdsm/internal/stats"
)

// RequestIDHeader is the request-correlation header: an inbound value is
// propagated, a missing one is stamped, and the response always echoes it.
const RequestIDHeader = "X-Request-ID"

type ctxKey int

const (
	requestIDKey ctxKey = 0
	tenantKey    ctxKey = 1
)

// RequestID returns the request ID the middleware stamped into ctx ("" when
// the request did not pass through the middleware).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// tenantHolder carries the authenticated tenant name from an inner auth
// layer back out to the middleware's log line: the middleware installs the
// holder before routing, authentication fills it in mid-request, and the
// request log reads it after the handler returns. The mutex keeps the
// handoff race-clean for handlers that write from helper goroutines.
type tenantHolder struct {
	mu   sync.Mutex
	name string
}

// SetTenant records the authenticated tenant for this request. It is a
// no-op when the request did not pass through Middleware.
func SetTenant(ctx context.Context, name string) {
	if h, ok := ctx.Value(tenantKey).(*tenantHolder); ok {
		h.mu.Lock()
		h.name = name
		h.mu.Unlock()
	}
}

// TenantName returns the tenant recorded by SetTenant ("" when the request
// is anonymous or did not pass through Middleware).
func TenantName(ctx context.Context) string {
	if h, ok := ctx.Value(tenantKey).(*tenantHolder); ok {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.name
	}
	return ""
}

// reqSeq and procToken make generated request IDs unique across concurrent
// requests and across daemon restarts without consulting the clock.
var (
	reqSeq    atomic.Uint64
	procToken = func() string {
		var b [4]byte
		rand.Read(b[:])
		return hex.EncodeToString(b[:])
	}()
)

func newRequestID() string {
	return fmt.Sprintf("r-%s-%06d", procToken, reqSeq.Add(1))
}

// EndpointStats accumulates one route's request counters: a power-of-two
// latency histogram in microseconds (reusing stats.LatHist, the simulator's
// bucket layout), the exact latency sum, and per-status-code counts.
type EndpointStats struct {
	Count  uint64
	SumUS  uint64
	Hist   stats.LatHist
	Status map[int]uint64
}

// HTTPStats holds per-endpoint request statistics, keyed by the mux route
// pattern ("GET /api/v1/jobs/{id}") so path parameters do not explode the
// key space.
type HTTPStats struct {
	mu        sync.Mutex
	endpoints map[string]*EndpointStats
}

// NewHTTPStats returns an empty per-endpoint statistics table.
func NewHTTPStats() *HTTPStats {
	return &HTTPStats{endpoints: make(map[string]*EndpointStats)}
}

// Observe records one completed request.
func (h *HTTPStats) Observe(route string, status int, d time.Duration) {
	us := uint64(d.Microseconds())
	h.mu.Lock()
	ep := h.endpoints[route]
	if ep == nil {
		ep = &EndpointStats{Status: make(map[int]uint64)}
		h.endpoints[route] = ep
	}
	ep.Count++
	ep.SumUS += us
	ep.Hist.Observe(sim.Time(us))
	ep.Status[status]++
	h.mu.Unlock()
}

// EndpointSnapshot is one route's copied counters.
type EndpointSnapshot struct {
	Route  string
	Count  uint64
	SumUS  uint64
	Hist   stats.LatHist
	Status map[int]uint64
}

// P99US returns an upper bound on the route's 99th-percentile latency in
// microseconds (the containing power-of-two bucket's upper edge).
func (e *EndpointSnapshot) P99US() uint64 {
	return uint64(e.Hist.Percentile(0.99))
}

// Snapshot copies every endpoint's counters, sorted by route for stable
// exposition output.
func (h *HTTPStats) Snapshot() []EndpointSnapshot {
	h.mu.Lock()
	out := make([]EndpointSnapshot, 0, len(h.endpoints))
	for route, ep := range h.endpoints {
		st := make(map[int]uint64, len(ep.Status))
		for k, v := range ep.Status {
			st[k] = v
		}
		out = append(out, EndpointSnapshot{
			Route: route, Count: ep.Count, SumUS: ep.SumUS, Hist: ep.Hist, Status: st,
		})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// respWriter captures the status code and byte count without disturbing
// streaming: Flush passes through so SSE and progress handlers keep working
// behind the middleware.
type respWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *respWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *respWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *respWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next with the service-edge request observer: it stamps or
// propagates X-Request-ID (echoed on the response and available via
// RequestID(ctx)), logs one "http_request" line per request, and feeds the
// per-endpoint histograms. log and hs may be nil (each facet individually
// disabled); the request ID is stamped regardless so error bodies stay
// correlatable.
func Middleware(log *slog.Logger, hs *HTTPStats, next http.Handler) http.Handler {
	if log == nil {
		log = Nop()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		ctx := context.WithValue(r.Context(), requestIDKey, id)
		holder := &tenantHolder{}
		ctx = context.WithValue(ctx, tenantKey, holder)
		r = r.WithContext(ctx)

		rw := &respWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rw, r)
		dur := time.Since(start)

		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := rw.status
		if status == 0 {
			status = http.StatusOK
		}
		if hs != nil {
			hs.Observe(route, status, dur)
		}
		level := slog.LevelInfo
		switch {
		case status >= 500:
			level = slog.LevelError
		case status >= 400:
			level = slog.LevelWarn
		}
		// The attribute set is a logged contract (see the golden key-set
		// test): exactly these keys on anonymous requests, plus "tenant"
		// when an inner auth layer called SetTenant.
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", status),
			slog.Int64("bytes", rw.bytes),
			slog.Int64("dur_us", dur.Microseconds()),
			slog.String("request_id", id),
			slog.String("remote", r.RemoteAddr),
		}
		if tenant := TenantName(r.Context()); tenant != "" {
			attrs = append(attrs, slog.String("tenant", tenant))
		}
		log.LogAttrs(r.Context(), level, "http_request", attrs...)
	})
}
