package svclog

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pimdsm/internal/stats"
)

func TestPromWriterRoundTrip(t *testing.T) {
	hs := NewHTTPStats()
	hs.Observe("GET /api/v1/jobs", 200, 150*time.Microsecond)
	hs.Observe("GET /api/v1/jobs", 200, 3*time.Millisecond)
	hs.Observe("POST /api/v1/jobs", 429, 90*time.Microsecond)
	// Route patterns carry literal braces ("/jobs/{id}") inside quoted label
	// values; the parser must not mistake that `}` for the label-set end.
	hs.Observe("GET /api/v1/jobs/{id}", 200, 120*time.Microsecond)

	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("pimdsm_jobs_submitted_total", "counter", "Jobs admitted")
	p.Sample("pimdsm_jobs_submitted_total", nil, 42)
	p.Family("pimdsm_queue_depth", "gauge", "Jobs waiting to run")
	p.Sample("pimdsm_queue_depth", nil, 3)
	p.Family("pimdsm_http_request_duration_us", "histogram", "Request latency (pow2 buckets, microseconds)")
	for _, ep := range hs.Snapshot() {
		labels := []Label{{K: "route", V: ep.Route}}
		p.Histogram("pimdsm_http_request_duration_us", labels, &ep.Hist, float64(ep.SumUS))
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	fams, err := ParsePromText(buf.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	if fams["pimdsm_jobs_submitted_total"].Samples[0].Value != 42 {
		t.Fatalf("counter value lost: %+v", fams["pimdsm_jobs_submitted_total"])
	}
	hist := fams["pimdsm_http_request_duration_us"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hist)
	}
	// Three routes x (NumLatBuckets buckets + sum + count).
	wantSamples := 3 * (stats.NumLatBuckets + 2)
	if len(hist.Samples) != wantSamples {
		t.Fatalf("histogram has %d samples, want %d", len(hist.Samples), wantSamples)
	}
}

func TestParsePromTextRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_type_decl 1", // sample without TYPE
		"# TYPE x counter\nx{le=\"unterminated 1", // broken label set
		"# TYPE x counter\nx notanumber",          // bad value
		"# TYPE x wat\nx 1",                       // unknown type
	}
	for _, text := range bad {
		if _, err := ParsePromText(text); err == nil {
			t.Fatalf("ParsePromText accepted %q", text)
		}
	}
}

func TestParsePromTextCatchesNonCumulativeHistogram(t *testing.T) {
	text := strings.Join([]string{
		`# TYPE h histogram`,
		`h_bucket{le="1"} 5`,
		`h_bucket{le="3"} 4`, // decreasing: invalid
		`h_bucket{le="+Inf"} 6`,
		`h_sum 10`,
		`h_count 6`,
	}, "\n")
	if _, err := ParsePromText(text); err == nil {
		t.Fatal("non-cumulative histogram accepted")
	}
	text = strings.Join([]string{
		`# TYPE h histogram`,
		`h_bucket{le="1"} 5`,
		`h_bucket{le="+Inf"} 6`,
		`h_sum 10`,
		`h_count 7`, // count != +Inf bucket
	}, "\n")
	if _, err := ParsePromText(text); err == nil {
		t.Fatal("count/+Inf mismatch accepted")
	}
}

func TestLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Family("m", "gauge", "help with \\ and\nnewline")
	p.Sample("m", []Label{{K: "k", V: `quote " back \ nl` + "\n"}}, 1)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePromText(buf.String())
	if err != nil {
		t.Fatalf("escaped output does not parse: %v\n%s", err, buf.String())
	}
	if len(fams["m"].Samples) != 1 {
		t.Fatalf("sample lost: %+v", fams["m"])
	}
}

func TestLabelValueRoundTrip(t *testing.T) {
	// Writer escaping and parser unescaping must be exact inverses, including
	// the order-sensitive cases: a literal backslash followed by 'n' (written
	// as `\\n`) must NOT come back as a newline, and values ending in a quote
	// must not lose it to over-eager quote trimming.
	values := []string{
		`plain`,
		`with "quotes"`,
		`ends with quote"`,
		`"starts with quote`,
		"real\nnewline",
		`literal \n two chars`,
		`backslash \ alone`,
		`trailing backslash \`,
		"\\\n", // backslash then newline
		`\\n`,  // two backslashes then n
		`mix " of \ every` + "\n" + `thing"\`,
	}
	for _, v := range values {
		var buf bytes.Buffer
		p := NewPromWriter(&buf)
		p.Family("m", "gauge", "round trip")
		p.Sample("m", []Label{{K: "k", V: v}}, 1)
		if err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		fams, err := ParsePromText(buf.String())
		if err != nil {
			t.Fatalf("value %q: exposition does not parse: %v\n%s", v, err, buf.String())
		}
		got := fams["m"].Samples[0].Labels["k"]
		if got != v {
			t.Errorf("label value round trip: wrote %q, parsed %q", v, got)
		}
	}
}
