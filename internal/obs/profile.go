package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
	"pimdsm/internal/stats"
)

// Profile is a sim-time accounting profiler: it attributes every cycle a
// protocol resource is held to a handler class, folds the per-thread
// issue/stall split into per-P-node buckets, and samples mesh-link queueing
// into a bounded time series. Like Trace and Spans it is record-only — a run
// is bit-identical with profiling on or off — and the disabled path is a
// single branch with zero allocations.
//
// Cycle-attribution model (see DESIGN.md, "Profiler cycle attribution"):
//
//   - P-nodes: every advance of a thread's clock is charged to exactly one of
//     busy / mem-stall / sync-spin by the cpu package, so per node
//     busy + mem-stall + sync-spin + idle == Exec exactly, where idle is the
//     tail the node spends finished while stragglers run.
//   - D-nodes (and NUMA/COMA home engines): every Acquire/Block on a covered
//     sim.Resource is paired with one Node() attribution, so per node and
//     resource the class buckets sum exactly to the resource's independently
//     accumulated busy time. CheckInvariants verifies both identities.
type Profile struct {
	on   bool
	meta string // "arch/app" label, used as the folded-stack root

	exec sim.Time // measured-window execution time (engine cycles)

	// Per-node handler-class attribution, indexed by global node id.
	nodes [][NumNodeRes][NumHandlerClasses]sim.Time
	// Independent per-resource accounting from sim.Resource, the cross-check
	// side of the invariant.
	busy    [][NumNodeRes]sim.Time
	waited  [][NumNodeRes]sim.Time
	freeAt  [][NumNodeRes]sim.Time
	covered [][NumNodeRes]bool

	// Per-P-node issue/stall buckets (folded post-run from stats.Thread).
	pn    [][NumPClasses]sim.Time
	isP   []bool
	nPSet int

	// Mesh link accounting.
	meshW, meshH int
	linkBusy     []sim.Time
	linkWaited   []sim.Time
	linkAcq      []uint64
	waitHist     stats.LatHist
	hopCount     uint64
	sampleMask   uint64
	samples      []LinkSample
	sHead        uint64
}

// HandlerClass attributes protocol-resource cycles to the duty that burned
// them — the D-node occupancy split of the paper's cost argument.
type HandlerClass uint8

// The handler classes. Scan covers computation-in-memory traversals (§2.4),
// which would otherwise make the class buckets undercount dproc busy time.
const (
	HCDirLookup HandlerClass = iota // directory lookup + reply handlers
	HCListOps                       // FreeList/SharedList slot fills (Data array)
	HCInval                         // invalidation fan-out occupancy
	HCWriteBack                     // write-back and ack/ownership handlers
	HCRecall                        // waiting on recalled lines during pageout
	HCPageout                       // pageout walks, disk faults, overflow swaps
	HCScan                          // computation-in-memory scans
	NumHandlerClasses
)

// String returns the class label used in reports and folded stacks.
func (c HandlerClass) String() string {
	switch c {
	case HCDirLookup:
		return "dir-lookup"
	case HCListOps:
		return "list-ops"
	case HCInval:
		return "inval"
	case HCWriteBack:
		return "writeback"
	case HCRecall:
		return "recall"
	case HCPageout:
		return "pageout"
	case HCScan:
		return "scan"
	}
	return fmt.Sprintf("HandlerClass(%d)", uint8(c))
}

// NodeRes identifies which of a node's serially-reusable resources burned
// the attributed cycles.
type NodeRes uint8

// The covered node resources.
const (
	ResProc NodeRes = iota // protocol processor (dproc / home engine)
	ResMem                 // data-array / memory bank
	ResDisk                // paging device
	NumNodeRes
)

// String returns the resource label.
func (r NodeRes) String() string {
	switch r {
	case ResProc:
		return "proc"
	case ResMem:
		return "mem"
	case ResDisk:
		return "disk"
	}
	return fmt.Sprintf("NodeRes(%d)", uint8(r))
}

// PClass is a P-node time bucket.
type PClass uint8

// The P-node buckets. They partition the measured window exactly.
const (
	PBusy PClass = iota
	PMemStall
	PSyncSpin
	PIdle
	NumPClasses
)

// String returns the bucket label.
func (c PClass) String() string {
	switch c {
	case PBusy:
		return "busy"
	case PMemStall:
		return "mem-stall"
	case PSyncSpin:
		return "sync-spin"
	case PIdle:
		return "idle"
	}
	return fmt.Sprintf("PClass(%d)", uint8(c))
}

// LinkSample is one sampled mesh-link acquisition: when, how long the message
// waited, and how many reservations were still pending on the link.
type LinkSample struct {
	At    sim.Time
	Wait  sim.Time
	Link  int32
	Depth int32
}

// profileSampleEvery is the link-acquisition sampling period (power of two).
const profileSampleEvery = 64

// profileSampleCap bounds the retained sample ring (power of two).
const profileSampleCap = 4096

var nopProfile = &Profile{}

// NopProfile returns the shared disabled profiler. Its On() is false and
// every recording method returns immediately, so engines can hold a non-nil
// *Profile unconditionally.
func NopProfile() *Profile { return nopProfile }

// NewProfile returns an enabled profiler. Node and mesh tables are sized by
// the engine via EnsureNodes/SetMeshDims when the profile is attached.
func NewProfile() *Profile {
	return &Profile{
		on:         true,
		sampleMask: profileSampleEvery - 1,
		samples:    make([]LinkSample, profileSampleCap),
	}
}

// On reports whether the profiler records. The single-branch guard engines
// use before every attribution call.
func (p *Profile) On() bool { return p.on }

// EnsureNodes sizes the per-node tables for n global node ids. Cold path,
// called once when the profile is attached to an engine.
func (p *Profile) EnsureNodes(n int) {
	if !p.on || len(p.nodes) >= n {
		return
	}
	p.nodes = make([][NumNodeRes][NumHandlerClasses]sim.Time, n)
	p.busy = make([][NumNodeRes]sim.Time, n)
	p.waited = make([][NumNodeRes]sim.Time, n)
	p.freeAt = make([][NumNodeRes]sim.Time, n)
	p.covered = make([][NumNodeRes]bool, n)
	p.pn = make([][NumPClasses]sim.Time, n)
	p.isP = make([]bool, n)
}

// SetMeshDims records the mesh geometry and sizes the per-link tables. Cold
// path, called by Mesh.SetProfile.
func (p *Profile) SetMeshDims(w, h int) {
	if !p.on {
		return
	}
	p.meshW, p.meshH = w, h
	n := w * h * 4
	if len(p.linkBusy) < n {
		p.linkBusy = make([]sim.Time, n)
		p.linkWaited = make([]sim.Time, n)
		p.linkAcq = make([]uint64, n)
	}
}

// SetMeta records the run label used as the folded-stack root.
func (p *Profile) SetMeta(label string) {
	if p.on {
		p.meta = label
	}
}

// SetExec records the measured-window execution time.
func (p *Profile) SetExec(t sim.Time) {
	if p.on {
		p.exec = t
	}
}

// Node attributes cycles held on node's resource r to handler class c.
// Hot path: one branch (the caller's On() guard), two indexes, one add.
func (p *Profile) Node(node int, r NodeRes, c HandlerClass, cycles sim.Time) {
	if !p.on || node >= len(p.nodes) {
		return
	}
	p.nodes[node][r][c] += cycles
}

// MeshHop records one link acquisition's queueing delay and reports whether
// this hop is sampled (the mesh then calls MeshSample with the queue depth).
// Hot path when enabled; allocation-free.
func (p *Profile) MeshHop(link int, wait sim.Time) bool {
	if !p.on {
		return false
	}
	p.waitHist.Observe(wait)
	p.hopCount++
	return p.hopCount&p.sampleMask == 0
}

// MeshSample records one sampled link acquisition into the bounded ring.
func (p *Profile) MeshSample(link int, at, wait sim.Time, depth int) {
	if !p.on || len(p.samples) == 0 {
		return
	}
	p.samples[p.sHead&uint64(len(p.samples)-1)] = LinkSample{
		At: at, Wait: wait, Link: int32(link), Depth: int32(depth),
	}
	p.sHead++
}

// SetResource folds a covered resource's independent accounting (from
// sim.Resource.Utilization) into the profile. Cold path, end of run.
func (p *Profile) SetResource(node int, r NodeRes, busy sim.Time, acquires uint64, waited, freeAt sim.Time) {
	if !p.on || node >= len(p.nodes) {
		return
	}
	_ = acquires
	p.busy[node][r] = busy
	p.waited[node][r] = waited
	p.freeAt[node][r] = freeAt
	p.covered[node][r] = true
}

// AddPNode folds one thread's measured-window accounting into its node's
// buckets. idle is the straggler tail: exec − finish.
func (p *Profile) AddPNode(node int, busy, memStall, syncSpin, finish sim.Time) {
	if !p.on || node >= len(p.pn) {
		return
	}
	var idle sim.Time
	if finish <= p.exec {
		idle = p.exec - finish
	}
	p.pn[node] = [NumPClasses]sim.Time{busy, memStall, syncSpin, idle}
	if !p.isP[node] {
		p.isP[node] = true
		p.nPSet++
	}
}

// SetLink folds one directed link's accounting (from sim.Resource).
func (p *Profile) SetLink(link int, busy sim.Time, acquires uint64, waited sim.Time) {
	if !p.on || link >= len(p.linkBusy) {
		return
	}
	p.linkBusy[link] = busy
	p.linkWaited[link] = waited
	p.linkAcq[link] = acquires
}

// Exec returns the recorded measured-window execution time.
func (p *Profile) Exec() sim.Time { return p.exec }

// NodeCycles returns the cycles attributed to (node, resource, class).
func (p *Profile) NodeCycles(node int, r NodeRes, c HandlerClass) sim.Time {
	if node >= len(p.nodes) {
		return 0
	}
	return p.nodes[node][r][c]
}

// PCycles returns node's P bucket.
func (p *Profile) PCycles(node int, c PClass) sim.Time {
	if node >= len(p.pn) {
		return 0
	}
	return p.pn[node][c]
}

// Samples returns the retained link samples in record order (oldest first
// once the ring has wrapped).
func (p *Profile) Samples() []LinkSample {
	if p.sHead == 0 {
		return nil
	}
	n := uint64(len(p.samples))
	if p.sHead <= n {
		return p.samples[:p.sHead]
	}
	out := make([]LinkSample, n)
	for i := uint64(0); i < n; i++ {
		out[i] = p.samples[(p.sHead+i)&(n-1)]
	}
	return out
}

// HopCount returns the number of link acquisitions observed.
func (p *Profile) HopCount() uint64 { return p.hopCount }

// WaitHist returns a copy of the link-wait histogram.
func (p *Profile) WaitHist() stats.LatHist { return p.waitHist }

// WaitPercentile returns an upper bound on the q-quantile of link waits.
func (p *Profile) WaitPercentile(q float64) sim.Time { return p.waitHist.Percentile(q) }

// classSum returns the attributed cycles summed over classes for (node, r).
func (p *Profile) classSum(node int, r NodeRes) sim.Time {
	var s sim.Time
	for c := HandlerClass(0); c < NumHandlerClasses; c++ {
		s += p.nodes[node][r][c]
	}
	return s
}

// CheckInvariants verifies the cycle-attribution identities and returns a
// description of every violation (empty on a healthy run):
//
//   - per P-node: busy + mem-stall + sync-spin + idle == exec
//   - per covered (node, resource): Σ class buckets == resource busy time
func (p *Profile) CheckInvariants() []string {
	var out []string
	for n := range p.pn {
		if !p.isP[n] {
			continue
		}
		var sum sim.Time
		for c := PClass(0); c < NumPClasses; c++ {
			sum += p.pn[n][c]
		}
		if sum != p.exec {
			out = append(out, fmt.Sprintf("P-node %d: buckets sum to %d, exec is %d", n, sum, p.exec))
		}
	}
	for n := range p.nodes {
		for r := NodeRes(0); r < NumNodeRes; r++ {
			if !p.covered[n][r] {
				continue
			}
			if got, want := p.classSum(n, r), p.busy[n][r]; got != want {
				out = append(out, fmt.Sprintf("node %d %s: class buckets sum to %d, resource busy is %d", n, r, got, want))
			}
		}
	}
	return out
}

// horizon is the report denominator: the measured window, extended to cover
// reservations engines booked past the last thread's finish (background
// write-backs, pageouts).
func (p *Profile) horizon() sim.Time {
	h := p.exec
	for n := range p.freeAt {
		for r := NodeRes(0); r < NumNodeRes; r++ {
			if p.covered[n][r] && p.freeAt[n][r] > h {
				h = p.freeAt[n][r]
			}
		}
	}
	return h
}

// handlerNodes returns the global node ids with any covered resource.
func (p *Profile) handlerNodes() []int {
	var out []int
	for n := range p.covered {
		for r := NodeRes(0); r < NumNodeRes; r++ {
			if p.covered[n][r] {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

// pct renders a share as a percentage.
func pct(num, den sim.Time) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// WriteReport renders the full profile: P-node buckets, handler-class cycle
// accounting, mesh-link utilization with wait percentiles, and the ASCII
// link-utilization heatmap.
func (p *Profile) WriteReport(w io.Writer) {
	label := p.meta
	if label == "" {
		label = "run"
	}
	fmt.Fprintf(w, "profile: %s, exec %d cycles\n", label, p.exec)

	if p.nPSet > 0 {
		var sum [NumPClasses]sim.Time
		for n := range p.pn {
			if !p.isP[n] {
				continue
			}
			for c := PClass(0); c < NumPClasses; c++ {
				sum[c] += p.pn[n][c]
			}
		}
		total := p.exec * sim.Time(p.nPSet)
		fmt.Fprintf(w, "P-nodes (%d):", p.nPSet)
		for c := PClass(0); c < NumPClasses; c++ {
			fmt.Fprintf(w, " %s %.1f%%", c, pct(sum[c], total))
		}
		fmt.Fprintln(w)
	}

	if hn := p.handlerNodes(); len(hn) > 0 {
		fmt.Fprintf(w, "handler cycles (%d protocol nodes):\n", len(hn))
		fmt.Fprintf(w, "  %-11s %12s %12s %12s %12s %7s\n", "class", "proc", "mem", "disk", "total", "share")
		var grand sim.Time
		var byClass [NumHandlerClasses][NumNodeRes]sim.Time
		for _, n := range hn {
			for r := NodeRes(0); r < NumNodeRes; r++ {
				for c := HandlerClass(0); c < NumHandlerClasses; c++ {
					byClass[c][r] += p.nodes[n][r][c]
					grand += p.nodes[n][r][c]
				}
			}
		}
		for c := HandlerClass(0); c < NumHandlerClasses; c++ {
			var tot sim.Time
			for r := NodeRes(0); r < NumNodeRes; r++ {
				tot += byClass[c][r]
			}
			if tot == 0 {
				continue
			}
			fmt.Fprintf(w, "  %-11s %12d %12d %12d %12d %6.1f%%\n",
				c, byClass[c][ResProc], byClass[c][ResMem], byClass[c][ResDisk], tot, pct(tot, grand))
		}
		// Busy vs idle of the protocol processors against the run horizon.
		hz := p.horizon()
		var minU, maxU, sumU float64
		nProc := 0
		for _, n := range hn {
			if !p.covered[n][ResProc] {
				continue
			}
			u := pct(p.busy[n][ResProc], hz)
			if nProc == 0 || u < minU {
				minU = u
			}
			if u > maxU {
				maxU = u
			}
			sumU += u
			nProc++
		}
		if nProc > 0 {
			fmt.Fprintf(w, "  proc busy avg %.1f%% (min %.1f%% max %.1f%%) of %d-cycle horizon\n",
				sumU/float64(nProc), minU, maxU, hz)
		}
	}

	if p.meshW > 0 {
		var busy, waited sim.Time
		var acq uint64
		for i := range p.linkBusy {
			busy += p.linkBusy[i]
			waited += p.linkWaited[i]
			acq += p.linkAcq[i]
		}
		hz := p.horizon()
		den := sim.Time(len(p.linkBusy)) * hz
		fmt.Fprintf(w, "mesh %dx%d: %d link acquisitions, avg link util %.1f%%, queued %d cycles\n",
			p.meshW, p.meshH, acq, pct(busy, den), waited)
		fmt.Fprintf(w, "  wait p50 %d  p90 %d  p99 %d cycles (%d hops observed, %d sampled)\n",
			p.WaitPercentile(0.50), p.WaitPercentile(0.90), p.WaitPercentile(0.99),
			p.hopCount, min64u(p.sHead, uint64(len(p.samples))))
		p.writeHeatmap(w)
	}
}

func min64u(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// heatShades maps a utilization decile to a glyph.
const heatShades = " .:-=+*#%@"

// writeHeatmap renders per-node outgoing-link utilization as a W×H grid.
func (p *Profile) writeHeatmap(w io.Writer) {
	hz := p.horizon()
	if hz == 0 || p.meshW == 0 {
		return
	}
	fmt.Fprintf(w, "  outgoing-link utilization heatmap (shades %q = 0..100%%):\n", heatShades)
	for y := 0; y < p.meshH; y++ {
		fmt.Fprint(w, "    ")
		for x := 0; x < p.meshW; x++ {
			node := y*p.meshW + x
			var busy sim.Time
			for d := 0; d < 4; d++ {
				busy += p.linkBusy[node*4+d]
			}
			frac := float64(busy) / (4 * float64(hz))
			idx := int(frac * float64(len(heatShades)))
			if idx >= len(heatShades) {
				idx = len(heatShades) - 1
			}
			if idx == 0 && busy > 0 {
				idx = 1 // any traffic at all stays visible
			}
			fmt.Fprintf(w, "%c", heatShades[idx])
		}
		fmt.Fprintln(w)
	}
}

// StatusText renders the report to a string (dashboard section).
func (p *Profile) StatusText() string {
	var b strings.Builder
	p.WriteReport(&b)
	return b.String()
}

// WriteFolded writes the cycle attribution as collapsed stacks — one
// "frame;frame;leaf count" line per bucket — loadable by speedscope and
// inferno (flamegraph.pl-compatible folded format). Counts are sim cycles.
func (p *Profile) WriteFolded(w io.Writer) error {
	root := p.meta
	if root == "" {
		root = "pimdsm"
	}
	var lines []string
	var sum [NumPClasses]sim.Time
	for n := range p.pn {
		if !p.isP[n] {
			continue
		}
		for c := PClass(0); c < NumPClasses; c++ {
			sum[c] += p.pn[n][c]
		}
	}
	for c := PClass(0); c < NumPClasses; c++ {
		if sum[c] > 0 {
			lines = append(lines, fmt.Sprintf("%s;pnode;%s %d", root, c, sum[c]))
		}
	}
	for _, n := range p.handlerNodes() {
		for r := NodeRes(0); r < NumNodeRes; r++ {
			for c := HandlerClass(0); c < NumHandlerClasses; c++ {
				if v := p.nodes[n][r][c]; v > 0 {
					lines = append(lines, fmt.Sprintf("%s;node%d;%s;%s %d", root, n, r, c, v))
				}
			}
		}
	}
	var linkBusy, linkWait sim.Time
	for i := range p.linkBusy {
		linkBusy += p.linkBusy[i]
		linkWait += p.linkWaited[i]
	}
	if linkBusy > 0 {
		lines = append(lines, fmt.Sprintf("%s;mesh;transfer %d", root, linkBusy))
	}
	if linkWait > 0 {
		lines = append(lines, fmt.Sprintf("%s;mesh;queued %d", root, linkWait))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// CritPath is the critical-path extraction over a run's retired spans: which
// phase — and therefore which machine resource — bounds end-to-end
// transaction latency.
type CritPath struct {
	Total    sim.Time // cycles across all retired spans
	Phase    [NumPhases]sim.Time
	Top      Phase
	TopShare float64 // Top's fraction of Total
	Resource string  // the resource the top phase runs on
}

// phaseResource names the machine resource each span phase waits on.
func phaseResource(p Phase) string {
	switch p {
	case PhaseIssue:
		return "P-node issue + local memory"
	case PhaseNetRequest:
		return "mesh (request path)"
	case PhaseDirOcc:
		return "protocol processor (directory occupancy)"
	case PhaseOwnerFetch:
		return "owner/master node memory"
	case PhaseNetReply:
		return "mesh (reply path)"
	case PhaseRetire:
		return "invalidation/ack collection"
	}
	return p.String()
}

// CriticalPathOf aggregates a span recorder over both directions and all
// satisfaction classes and returns the dominant phase.
func CriticalPathOf(s *Spans) CritPath {
	var cp CritPath
	for _, wr := range [2]bool{false, true} {
		for c := proto.LatClass(0); c < proto.NumLatClasses; c++ {
			for ph := Phase(0); ph < NumPhases; ph++ {
				v := s.PhaseCycles(wr, c, ph)
				cp.Phase[ph] += v
				cp.Total += v
			}
		}
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		if cp.Phase[ph] > cp.Phase[cp.Top] {
			cp.Top = ph
		}
	}
	if cp.Total > 0 {
		cp.TopShare = float64(cp.Phase[cp.Top]) / float64(cp.Total)
	}
	cp.Resource = phaseResource(cp.Top)
	return cp
}

// String renders the extraction as one line.
func (cp CritPath) String() string {
	return fmt.Sprintf("critical path: %s (%s), %.0f%% of %d transaction cycles",
		cp.Top, cp.Resource, 100*cp.TopShare, cp.Total)
}
