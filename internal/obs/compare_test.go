package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pimdsm/internal/proto"
)

// TestSnapshotProfile: the serializable aggregate preserves the bucket sums
// of the live profiler and survives a JSON round trip byte-for-byte.
func TestSnapshotProfile(t *testing.T) {
	p := NewProfile()
	p.EnsureNodes(4)
	p.SetMeta("agg/fft")
	p.SetExec(1000)
	p.AddPNode(0, 700, 200, 50, 950) // idle = 50
	p.AddPNode(1, 600, 300, 100, 1000)
	p.Node(2, ResProc, HCDirLookup, 400)
	p.Node(2, ResMem, HCListOps, 150)
	p.Node(3, ResProc, HCInval, 50)
	// Mark the D-node resources covered, as machine.Run does, so the
	// snapshot's handlerNodes walk sees them.
	p.SetResource(2, ResProc, 400, 1, 0, 0)
	p.SetResource(2, ResMem, 150, 1, 0, 0)
	p.SetResource(3, ResProc, 50, 1, 0, 0)

	s := SnapshotProfile(p)
	if s.Label != "agg/fft" || s.ExecCycles != 1000 || s.PNodes != 2 {
		t.Fatalf("snapshot header: %+v", s)
	}
	if got := s.PCycles["busy"]; got != 1300 {
		t.Fatalf("busy cycles = %d, want 1300", got)
	}
	if got := s.PCycles["idle"]; got != 50 {
		t.Fatalf("idle cycles = %d, want 50", got)
	}
	if got := s.HandlerCycles["dir-lookup"]; got != 400 {
		t.Fatalf("dir-lookup cycles = %d, want 400", got)
	}
	if got := s.HandlerCycles["list-ops"]; got != 150 {
		t.Fatalf("list-ops cycles = %d, want 150", got)
	}

	// Deterministic JSON: two marshals of the same snapshot are identical,
	// and the round trip loses nothing.
	j1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(s)
	if !bytes.Equal(j1, j2) {
		t.Fatal("snapshot JSON is not deterministic")
	}
	var back ProfileSnapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatal(err)
	}
	if back.PCycles["mem-stall"] != 500 || back.HandlerCycles["inval"] != 50 {
		t.Fatalf("round trip lost buckets: %+v", back)
	}
}

// TestSnapshotProfileMerge: merging is additive, so a multi-config job folds
// into one artifact whose shares still mean something.
func TestSnapshotProfileMerge(t *testing.T) {
	a := &ProfileSnapshot{Label: "agg/fft", ExecCycles: 100, PNodes: 2,
		PCycles: map[string]uint64{"busy": 80}, HandlerCycles: map[string]uint64{"inval": 5}}
	b := &ProfileSnapshot{Label: "numa/fft", ExecCycles: 50, PNodes: 2,
		PCycles: map[string]uint64{"busy": 20, "idle": 10}, HandlerCycles: map[string]uint64{"inval": 7}}
	a.Merge(b)
	if a.ExecCycles != 150 || a.PNodes != 4 || a.PCycles["busy"] != 100 ||
		a.PCycles["idle"] != 10 || a.HandlerCycles["inval"] != 12 {
		t.Fatalf("merged snapshot: %+v", a)
	}
	if a.Label != "agg/fft+numa/fft" {
		t.Fatalf("merged label: %q", a.Label)
	}
}

// TestSnapshotSpans: the breakdown aggregates like the figure drivers'
// phaseRow — per-phase averages sum to the average latency.
func TestSnapshotSpans(t *testing.T) {
	s := NewSpans(0)
	s.Begin(100, 1, 0x1000, false)
	s.Mark(PhaseNetRequest, 150)
	s.Mark(PhaseDirOcc, 400)
	s.Mark(PhaseNetReply, 450)
	s.End(470, proto.Lat2Hop)
	s.Begin(500, 2, 0x2000, true)
	s.Mark(PhaseNetRequest, 530)
	s.Mark(PhaseDirOcc, 600)
	s.Mark(PhaseNetReply, 640)
	s.End(700, proto.Lat3Hop)

	b := SnapshotSpans(s)
	if b.Retired != 2 || b.Bad != 0 {
		t.Fatalf("breakdown header: %+v", b)
	}
	var sum float64
	for _, v := range b.Phases {
		sum += v
	}
	if diff := sum - b.AvgLat; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("phase averages sum to %v, avg latency is %v", sum, b.AvgLat)
	}
	if b.AvgLat != float64((470-100)+(700-500))/2 {
		t.Fatalf("avg latency = %v", b.AvgLat)
	}
}

// TestParseMetricsJSON consumes Registry.WriteJSON output directly.
func TestParseMetricsJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("reads").Add(42)
	reg.Gauge("pressure").Set(0.75)
	h := reg.Histogram("lat", Pow2Bounds(8))
	h.Observe(100)
	h.Observe(200)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetricsJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if m["reads"] != 42 || m["pressure"] != 0.75 {
		t.Fatalf("scalars: %v", m)
	}
	if m["lat.count"] != 2 || m["lat.sum"] != 300 {
		t.Fatalf("histogram flattening: %v", m)
	}
	if _, err := ParseMetricsJSON([]byte("not json")); err == nil {
		t.Fatal("corrupt metrics JSON parsed without error")
	}
}

// TestCompareNamesDominantPhase: diffing a run whose directory-occupancy
// phase blew up names dir-occ as the dominant regressed phase, in both the
// typed report and the text rendering.
func TestCompareNamesDominantPhase(t *testing.T) {
	a := RunDump{
		Label: "j-000001",
		Spans: &SpanBreakdown{Retired: 100, AvgLat: 300,
			Phases: map[string]float64{"issue": 50, "net-req": 50, "dir-occ": 100, "net-reply": 100}},
		Metrics: map[string]float64{"reads": 1000, "invals": 10},
	}
	b := RunDump{
		Label: "j-000002",
		Spans: &SpanBreakdown{Retired: 100, AvgLat: 520,
			Phases: map[string]float64{"issue": 50, "net-req": 60, "dir-occ": 310, "net-reply": 100}},
		Metrics: map[string]float64{"reads": 1000, "invals": 400},
	}
	rep := Compare(a, b, CompareOptions{})
	if rep.DominantPhase != "dir-occ" {
		t.Fatalf("dominant phase = %q, want dir-occ (report: %+v)", rep.DominantPhase, rep)
	}
	if !strings.Contains(rep.DominantResource, "directory occupancy") {
		t.Fatalf("dominant resource = %q", rep.DominantResource)
	}
	if rep.Phases[0].Name != "dir-occ" || !rep.Phases[0].Significant {
		t.Fatalf("phase rows not ordered by |delta|: %+v", rep.Phases)
	}
	if rep.AvgLat == nil || rep.AvgLat.Delta != 220 {
		t.Fatalf("avg-lat row: %+v", rep.AvgLat)
	}

	// Metrics: the invals explosion is significant, the flat reads row is not.
	var sawInvals, sawReadsSignificant bool
	for _, r := range rep.Metrics {
		if r.Name == "invals" && r.Significant {
			sawInvals = true
		}
		if r.Name == "reads" && r.Significant {
			sawReadsSignificant = true
		}
	}
	if !sawInvals || sawReadsSignificant {
		t.Fatalf("metric significance wrong: %+v", rep.Metrics)
	}

	var text bytes.Buffer
	rep.WriteText(&text)
	for _, want := range []string{"dominant regressed phase: dir-occ", "dir-occ", "perf diff: j-000001 -> j-000002"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, text.String())
		}
	}

	// The typed report marshals to JSON and comes back with the verdict.
	j, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back CompareReport
	if err := json.Unmarshal(j, &back); err != nil {
		t.Fatal(err)
	}
	if back.DominantPhase != "dir-occ" || back.Verdict == "" {
		t.Fatalf("JSON round trip: %+v", back)
	}
}

// TestCompareInsignificantDelta: a sub-threshold wiggle yields no dominant
// regressed phase.
func TestCompareInsignificantDelta(t *testing.T) {
	a := RunDump{Spans: &SpanBreakdown{Retired: 10, AvgLat: 100,
		Phases: map[string]float64{"issue": 50, "dir-occ": 50}}}
	b := RunDump{Spans: &SpanBreakdown{Retired: 10, AvgLat: 101,
		Phases: map[string]float64{"issue": 50.5, "dir-occ": 50.5}}}
	rep := Compare(a, b, CompareOptions{})
	if rep.DominantPhase != "" {
		t.Fatalf("1%% wiggle flagged as dominant phase %q", rep.DominantPhase)
	}
	if !strings.Contains(rep.Verdict, "no significant phase delta") {
		t.Fatalf("verdict: %q", rep.Verdict)
	}
}

// TestCompareProfileShares: profile diffs compare shares, not raw cycles, so
// runs of different lengths are comparable; a sync-spin share explosion is
// flagged.
func TestCompareProfileShares(t *testing.T) {
	a := RunDump{Profile: &ProfileSnapshot{ExecCycles: 1000, PNodes: 4,
		PCycles:       map[string]uint64{"busy": 800, "mem-stall": 150, "sync-spin": 50},
		HandlerCycles: map[string]uint64{"dir-lookup": 90, "inval": 10}}}
	b := RunDump{Profile: &ProfileSnapshot{ExecCycles: 2000, PNodes: 4,
		PCycles:       map[string]uint64{"busy": 1000, "mem-stall": 300, "sync-spin": 700},
		HandlerCycles: map[string]uint64{"dir-lookup": 100, "inval": 100}}}
	rep := Compare(a, b, CompareOptions{})
	var spin *DeltaRow
	for i := range rep.PShares {
		if rep.PShares[i].Name == "sync-spin" {
			spin = &rep.PShares[i]
		}
	}
	if spin == nil || !spin.Significant || spin.Delta <= 0 {
		t.Fatalf("P-share rows: %+v", rep.PShares)
	}
	var inval *DeltaRow
	for i := range rep.HandlerShares {
		if rep.HandlerShares[i].Name == "inval" {
			inval = &rep.HandlerShares[i]
		}
	}
	if inval == nil || !inval.Significant || inval.Delta <= 0 {
		t.Fatalf("handler share rows: %+v", rep.HandlerShares)
	}
}

// TestParseBenchDoc: both committed snapshot schemas parse; malformed ones
// are typed errors, not silent skips.
func TestParseBenchDoc(t *testing.T) {
	old := []byte(`{"date":"2026-08-05","go":"go1.24.0","cpus":1,"scale":0.1,"threads":8,` +
		`"runs":[{"arch":"agg","app":"fft","wall_ms":14.88,"exec_cycles":208811,"cycles_per_sec":14036406}]}`)
	doc, err := ParseBenchDoc(old)
	if err != nil {
		t.Fatalf("old-schema snapshot rejected: %v", err)
	}
	if doc.Runs[0].Shards != 0 || doc.GoMaxProcs != 0 {
		t.Fatalf("optional fields should default to zero: %+v", doc)
	}
	for _, bad := range []string{
		`{`, // truncated
		`{"date":"","runs":[{"arch":"agg","app":"fft","wall_ms":1}]}`,        // no date
		`{"date":"2026-01-01","runs":[]}`,                                    // no runs
		`{"date":"2026-01-01","runs":[{"arch":"","app":"fft","wall_ms":1}]}`, // no arch
		`{"date":"2026-01-01","runs":[{"arch":"agg","app":"fft"}]}`,          // no wall time
	} {
		if _, err := ParseBenchDoc([]byte(bad)); err == nil {
			t.Errorf("malformed snapshot parsed without error: %s", bad)
		}
	}
}

// TestParseCommittedBenchSnapshots: the repo's committed BENCH_*.json files
// must stay parseable and produce a Timeline report — the body of the
// `make bench-diff` acceptance criterion.
func TestParseCommittedBenchSnapshots(t *testing.T) {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if len(paths) < 2 {
		t.Skipf("need >= 2 committed BENCH snapshots at the repo root, found %d", len(paths))
	}
	var docs []*BenchDoc
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := ParseBenchDoc(data)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		docs = append(docs, doc)
	}
	rep := Timeline(docs, 0)
	if len(rep.Series) == 0 {
		t.Fatal("timeline over committed snapshots has no series")
	}
	var text bytes.Buffer
	rep.WriteText(&text)
	if !strings.Contains(text.String(), "bench timeline") {
		t.Fatalf("timeline text:\n%s", text.String())
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("timeline report does not marshal: %v", err)
	}
}

// TestTimelineRegressionFlagging: a throughput drop beyond the threshold is
// flagged on the right series; a scale change is noted; improvements are not
// flagged.
func TestTimelineRegressionFlagging(t *testing.T) {
	docs := []*BenchDoc{
		{Date: "2026-08-01", Scale: 0.1, Runs: []BenchRun{
			{Arch: "agg", App: "fft", WallMs: 10, CyclesPerSec: 1e6},
			{Arch: "numa", App: "fft", WallMs: 10, CyclesPerSec: 1e6},
		}},
		{Date: "2026-08-08", Scale: 1.0, Runs: []BenchRun{
			{Arch: "agg", App: "fft", WallMs: 100, CyclesPerSec: 4e5},  // -60%
			{Arch: "numa", App: "fft", WallMs: 100, CyclesPerSec: 2e6}, // +100%
		}},
	}
	rep := Timeline(docs, 0.10)
	byArch := map[string]TimelineSeries{}
	for _, s := range rep.Series {
		byArch[s.Arch] = s
	}
	if !byArch["agg"].Regressed {
		t.Fatalf("agg/fft -60%% not flagged: %+v", byArch["agg"])
	}
	if byArch["numa"].Regressed {
		t.Fatalf("numa/fft improvement flagged as regression: %+v", byArch["numa"])
	}
	if !strings.Contains(byArch["agg"].Note, "scale changed") {
		t.Fatalf("scale-change note missing: %+v", byArch["agg"])
	}
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "agg/fft") {
		t.Fatalf("regressions: %v", rep.Regressions)
	}
	// Out-of-order input sorts by date before diffing the two newest.
	rep2 := Timeline([]*BenchDoc{docs[1], docs[0]}, 0.10)
	if len(rep2.Regressions) != 1 {
		t.Fatalf("date sorting broken: %v", rep2.Regressions)
	}
}
