package obs

import (
	"fmt"
	"io"
	"sort"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

// Phase names one leg of a memory transaction's critical path. The engines
// mark phase crossings on the open span as the transaction advances; each
// mark attributes the cycles since the previous crossing to the named phase,
// so the per-phase buckets of a retired span sum exactly to its end-to-end
// latency by construction (checked again at retirement; see Spans.End).
type Phase uint8

const (
	// PhaseIssue: work at the requesting P-node before the transaction
	// leaves it — cache lookups, the local-memory access, and (for local
	// hits) the entire access. OS page-mapping work on the access path is
	// charged here too.
	PhaseIssue Phase = iota
	// PhaseNetRequest: the request's trip through the mesh from the
	// requester to the home node, including link queueing.
	PhaseNetRequest
	// PhaseDirOcc: occupancy of the home's directory handler — queueing
	// behind earlier transactions, the software-handler latency, and any
	// disk fault serviced at the home.
	PhaseDirOcc
	// PhaseOwnerFetch: the detour of a three-hop transaction — forwarding
	// to the owner or master and its memory access, up to the moment the
	// data reply leaves that node.
	PhaseOwnerFetch
	// PhaseNetReply: the data or grant reply's trip back to the requester.
	PhaseNetReply
	// PhaseRetire: completion work after the data reply arrives — in
	// practice the wait for invalidation acknowledgements on writes.
	PhaseRetire
	// NumPhases is the number of phases.
	NumPhases
)

// String returns a short stable label for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseIssue:
		return "issue"
	case PhaseNetRequest:
		return "net-req"
	case PhaseDirOcc:
		return "dir-occ"
	case PhaseOwnerFetch:
		return "owner"
	case PhaseNetReply:
		return "net-reply"
	case PhaseRetire:
		return "retire"
	}
	return fmt.Sprintf("Phase(%d)", uint8(p))
}

// Span is one retired memory transaction with its per-phase cycle
// attribution. Phases sums exactly to End-Start for every span the recorder
// keeps; spans for which that could not be established (a non-monotone mark)
// are dropped and counted by Spans.Bad instead.
type Span struct {
	ID     uint64                // dense transaction ID, 0-based per run
	Start  sim.Time              // issue time at the requesting P-node
	End    sim.Time              // retirement time (access done)
	Addr   uint64                // line-aligned address
	Phases [NumPhases]sim.Time   // cycles attributed to each phase
	Queued sim.Time              // mesh link queueing observed while open
	Node   int32                 // requesting P-node
	Class  proto.LatClass        // where the access was satisfied
	Write  bool
}

// Latency returns the span's end-to-end cycles.
func (s *Span) Latency() sim.Time { return s.End - s.Start }

// PhaseSum returns the sum of the per-phase buckets (== Latency for every
// kept span).
func (s *Span) PhaseSum() sim.Time {
	var sum sim.Time
	for _, v := range s.Phases {
		sum += v
	}
	return sum
}

// Spans records transaction spans. Like Trace, a single nop instance backs
// every disabled recorder so the emit-path guard is one predictable branch
// and the recording paths never allocate; recording never feeds back into
// timing, so results are bit-identical with spans on or off.
//
// The engines are transaction-atomic (each access runs to completion before
// the next begins), so at most one span is open per recorder at any time and
// the recorder needs no transaction lookup: Begin opens the span, Mark
// advances a cursor attributing elapsed cycles to phases, End retires it
// into per-(write,class,phase) aggregate tables and a bounded keep-ring.
type Spans struct {
	on     bool
	open   bool
	marked bool // a Mark happened: End's remainder is retire, not issue
	cur    Span
	cursor sim.Time
	next   uint64

	agg     [2][proto.NumLatClasses][NumPhases]sim.Time
	queued  [2][proto.NumLatClasses]sim.Time
	count   [2][proto.NumLatClasses]uint64
	retired uint64

	bad        uint64
	badSamples []string

	keep     []Span
	keepMask uint64
	kept     uint64

	mirror      *Dashboard
	mirrorKey   string
	mirrorEvery uint64
}

// nopSpans is the shared disabled recorder.
var nopSpans = &Spans{}

// NopSpans returns the shared disabled recorder: On reports false and every
// method is a cheap no-op.
func NopSpans() *Spans { return nopSpans }

// maxBadSamples bounds the diagnostic strings kept for bad spans.
const maxBadSamples = 8

// NewSpans returns an enabled recorder keeping the most recent `keep`
// retired spans (rounded up to a power of two; 0 selects 4096) alongside the
// full aggregate tables.
func NewSpans(keep int) *Spans {
	if keep <= 0 {
		keep = 1 << 12
	}
	n := 1
	for n < keep {
		n <<= 1
	}
	return &Spans{
		on:       true,
		keep:     make([]Span, n),
		keepMask: uint64(n - 1),
	}
}

// On reports whether the recorder is enabled. Every annotation site guards
// with it so a disabled recorder costs one branch.
func (s *Spans) On() bool { return s.on }

// Begin opens a span for an access issued at `at` by P-node `node`. If a
// span is somehow still open (an engine bug), it is discarded and counted
// as bad.
func (s *Spans) Begin(at sim.Time, node int32, addr uint64, write bool) {
	if !s.on {
		return
	}
	if s.open {
		s.bad++
	}
	s.cur = Span{ID: s.next, Start: at, Addr: addr, Node: node, Write: write}
	s.next++
	s.cursor = at
	s.open = true
	s.marked = false
}

// Mark attributes the cycles since the previous crossing (or since Begin)
// to phase p and advances the cursor to t. A mark at or before the cursor
// attributes nothing — overlapped work that another phase already covers —
// but still records that the transaction left the P-node, so End's
// remainder lands in retire.
func (s *Spans) Mark(p Phase, t sim.Time) {
	if !s.on || !s.open {
		return
	}
	s.marked = true
	if t <= s.cursor {
		return
	}
	s.cur.Phases[p] += t - s.cursor
	s.cursor = t
}

// AddQueued accumulates mesh link queueing observed while the span is open.
// It is a diagnostic overlay (queueing cycles are already inside whichever
// phase the message belongs to), not an extra phase.
func (s *Spans) AddQueued(d sim.Time) {
	if !s.on || !s.open {
		return
	}
	s.cur.Queued += d
}

// End retires the open span at time t with satisfaction class class. The
// un-attributed remainder t-cursor goes to retire when any Mark happened
// (a transaction that left the P-node) and to issue otherwise (a pure local
// hit). A retirement before the cursor — only possible via a non-monotone
// mark sequence — discards the span as bad with a bounded sample kept for
// diagnosis.
func (s *Spans) End(t sim.Time, class proto.LatClass) {
	if !s.on || !s.open {
		return
	}
	s.open = false
	if t < s.cursor || t < s.cur.Start || class >= proto.NumLatClasses {
		s.bad++
		if len(s.badSamples) < maxBadSamples {
			s.badSamples = append(s.badSamples, fmt.Sprintf(
				"span %d node %d addr %#x: end %d before cursor %d (start %d, class %v)",
				s.cur.ID, s.cur.Node, s.cur.Addr, t, s.cursor, s.cur.Start, class))
		}
		return
	}
	rem := t - s.cursor
	if s.marked {
		s.cur.Phases[PhaseRetire] += rem
	} else {
		s.cur.Phases[PhaseIssue] += rem
	}
	s.cur.End = t
	s.cur.Class = class

	// The construction guarantees the buckets sum to the latency; verify
	// anyway so any future mark-site mistake is caught at the source.
	if s.cur.PhaseSum() != t-s.cur.Start {
		s.bad++
		if len(s.badSamples) < maxBadSamples {
			s.badSamples = append(s.badSamples, fmt.Sprintf(
				"span %d node %d addr %#x: phases sum %d != latency %d",
				s.cur.ID, s.cur.Node, s.cur.Addr, s.cur.PhaseSum(), t-s.cur.Start))
		}
		return
	}

	w := 0
	if s.cur.Write {
		w = 1
	}
	for p, v := range s.cur.Phases {
		s.agg[w][class][p] += v
	}
	s.queued[w][class] += s.cur.Queued
	s.count[w][class]++
	s.retired++
	s.keep[s.kept&s.keepMask] = s.cur
	s.kept++

	if s.mirror != nil && s.retired%s.mirrorEvery == 0 {
		s.publish()
	}
}

// Retired returns the number of spans folded into the aggregates.
func (s *Spans) Retired() uint64 { return s.retired }

// Bad returns the number of spans discarded for attribution failures; any
// nonzero value indicates an engine annotation bug.
func (s *Spans) Bad() uint64 { return s.bad }

// BadSamples returns up to maxBadSamples diagnostics for discarded spans.
func (s *Spans) BadSamples() []string { return s.badSamples }

// Count returns how many spans of the given direction and class retired.
func (s *Spans) Count(write bool, class proto.LatClass) uint64 {
	w := 0
	if write {
		w = 1
	}
	return s.count[w][class]
}

// PhaseCycles returns the total cycles attributed to a phase over all
// retired spans of the given direction and class.
func (s *Spans) PhaseCycles(write bool, class proto.LatClass, p Phase) sim.Time {
	w := 0
	if write {
		w = 1
	}
	return s.agg[w][class][p]
}

// QueuedCycles returns the total mesh queueing observed by retired spans of
// the given direction and class.
func (s *Spans) QueuedCycles(write bool, class proto.LatClass) sim.Time {
	w := 0
	if write {
		w = 1
	}
	return s.queued[w][class]
}

// Kept returns the retained spans, oldest first (at most the keep-ring
// capacity, the most recent retirements).
func (s *Spans) Kept() []Span {
	if s.kept == 0 {
		return nil
	}
	n := s.kept
	if n > uint64(len(s.keep)) {
		n = uint64(len(s.keep))
	}
	out := make([]Span, 0, n)
	for i := s.kept - n; i < s.kept; i++ {
		out = append(out, s.keep[i&s.keepMask])
	}
	return out
}

// Reset clears every table and counter, keeping capacity and enablement.
func (s *Spans) Reset() {
	on, keep, mask := s.on, s.keep, s.keepMask
	mirror, key, every := s.mirror, s.mirrorKey, s.mirrorEvery
	*s = Spans{on: on, keep: keep, keepMask: mask,
		mirror: mirror, mirrorKey: key, mirrorEvery: every}
	for i := range keep {
		keep[i] = Span{}
	}
}

// SetMirror publishes a breakdown snapshot to dashboard d under key every
// `every` retirements (0 selects 4096), so a live run is observable at
// /spans while it executes. Publishing happens on the simulation goroutine;
// the dashboard only hands pre-rendered text to HTTP readers.
func (s *Spans) SetMirror(d *Dashboard, key string, every uint64) {
	if !s.on {
		return
	}
	if every == 0 {
		every = 1 << 12
	}
	s.mirror, s.mirrorKey, s.mirrorEvery = d, key, every
}

func (s *Spans) publish() {
	var b []byte
	b = append(b, s.StatusText()...)
	s.mirror.Publish(s.mirrorKey, string(b))
}

// StatusText renders the aggregate breakdown plus the most recent retired
// spans as a fixed-width text block (the /spans dashboard page).
func (s *Spans) StatusText() string {
	var w writerBuf
	s.WriteBreakdown(&w)
	fmt.Fprintf(&w, "\nrecent spans (of %d retired, %d bad):\n", s.retired, s.bad)
	fmt.Fprintf(&w, "%10s %6s %5s %-6s %-7s %12s %10s\n",
		"id", "node", "rw", "class", "latency", "addr", "queued")
	kept := s.Kept()
	const show = 16
	if len(kept) > show {
		kept = kept[len(kept)-show:]
	}
	for i := range kept {
		sp := &kept[i]
		rw := "r"
		if sp.Write {
			rw = "w"
		}
		fmt.Fprintf(&w, "%10d %6d %5s %-6s %7d %#12x %10d\n",
			sp.ID, sp.Node, rw, sp.Class, sp.Latency(), sp.Addr, sp.Queued)
	}
	return string(w)
}

// writerBuf is a minimal io.Writer over a byte slice (avoids importing
// bytes just for rendering).
type writerBuf []byte

func (w *writerBuf) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

// WriteBreakdown writes the per-(direction, class) phase attribution table:
// span counts, average end-to-end latency, and average cycles per phase.
// Rows appear in a fixed order, so the output is deterministic.
func (s *Spans) WriteBreakdown(w io.Writer) {
	fmt.Fprintf(w, "%-2s %-6s %10s %9s", "rw", "class", "count", "avg-lat")
	for p := Phase(0); p < NumPhases; p++ {
		fmt.Fprintf(w, " %9s", p)
	}
	fmt.Fprintf(w, " %9s\n", "queued")
	for wi, rw := range [2]string{"r", "w"} {
		for c := proto.LatClass(0); c < proto.NumLatClasses; c++ {
			n := s.count[wi][c]
			if n == 0 {
				continue
			}
			var total sim.Time
			for _, v := range s.agg[wi][c] {
				total += v
			}
			fmt.Fprintf(w, "%-2s %-6s %10d %9.1f", rw, c, n, float64(total)/float64(n))
			for p := Phase(0); p < NumPhases; p++ {
				fmt.Fprintf(w, " %9.1f", float64(s.agg[wi][c][p])/float64(n))
			}
			fmt.Fprintf(w, " %9.1f\n", float64(s.queued[wi][c])/float64(n))
		}
	}
}

// SortSpans orders spans by retirement time, then ID (stable across
// identical runs).
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].End != spans[j].End {
			return spans[i].End < spans[j].End
		}
		return spans[i].ID < spans[j].ID
	})
}
