package obs

import (
	"testing"

	"pimdsm/internal/sim"
)

// emitSite mirrors the guard discipline of every real emit site: one branch
// on a disabled trace, one branch plus a ring write on an enabled one.
func emitSite(tr *Trace, i int) {
	if tr.On() {
		tr.Emit(EvRead, sim.Time(i), 37, int32(i&31), uint64(i)*128, 2)
	}
}

// BenchmarkTraceDisabled pins the disabled-path cost: the guard must compile
// to a load + compare + branch and 0 allocs/op.
func BenchmarkTraceDisabled(b *testing.B) {
	tr := Nop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		emitSite(tr, i)
	}
}

// BenchmarkTraceEnabled measures the recording path: a struct copy into the
// ring, still 0 allocs/op.
func BenchmarkTraceEnabled(b *testing.B) {
	tr := NewTrace(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		emitSite(tr, i)
	}
}

// TestEmitZeroAllocs enforces the benchmark's alloc numbers in the ordinary
// test run, so a regression fails `go test` and not just a bench inspection.
func TestEmitZeroAllocs(t *testing.T) {
	disabled := Nop()
	if n := testing.AllocsPerRun(1000, func() { emitSite(disabled, 7) }); n != 0 {
		t.Fatalf("disabled emit allocates %v/op, want 0", n)
	}
	enabled := NewTrace(1 << 10)
	if n := testing.AllocsPerRun(1000, func() { emitSite(enabled, 7) }); n != 0 {
		t.Fatalf("enabled emit allocates %v/op, want 0", n)
	}
}
