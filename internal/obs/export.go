package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pimdsm/internal/sim"
)

// Chrome trace_event export. The format is the JSON Object Format of the
// Trace Event spec, loadable in chrome://tracing and Perfetto. Simulated
// cycles are nanoseconds (1 GHz machines), and trace_event timestamps are
// microseconds, so ts = cycles/1000 with displayTimeUnit "ns".

// WriteChromeJSON writes the trace's held events as Chrome trace_event JSON.
// Span kinds become complete ("X") events, counter kinds become counter
// ("C") tracks, everything else becomes thread-scoped instants ("i").
// Events are written in sim-time order.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	return WriteChromeJSONEvents(w, t.Events())
}

// WriteChromeJSONEvents writes already-extracted events (e.g. from
// ReadBinary) as Chrome trace_event JSON. Events should be in sim-time order.
func WriteChromeJSONEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	for i, e := range events {
		if i > 0 {
			bw.WriteByte(',')
		}
		writeChromeEvent(bw, e)
	}
	fmt.Fprintf(bw, "]}\n")
	return bw.Flush()
}

func writeChromeEvent(w *bufio.Writer, e Event) {
	m := kindMeta[e.Kind]
	ts := float64(e.At) / 1000.0
	switch {
	case m.counter:
		// One counter track per node: "free-slots D3".
		fmt.Fprintf(w, `{"name":"%s D%d","cat":"%s","ph":"C","ts":%.3f,"pid":0,"args":{"free":%d}}`,
			m.name, e.Node, m.cat, ts, e.Arg)
	case m.span:
		fmt.Fprintf(w, `{"name":"%s","cat":"%s","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{`,
			m.name, m.cat, ts, float64(e.Dur)/1000.0, e.Node)
		writeArgs(w, e)
		fmt.Fprint(w, `}}`)
	default:
		fmt.Fprintf(w, `{"name":"%s","cat":"%s","ph":"i","s":"t","ts":%.3f,"pid":0,"tid":%d,"args":{`,
			m.name, m.cat, ts, e.Node)
		writeArgs(w, e)
		fmt.Fprint(w, `}}`)
	}
}

// writeArgs renders the kind-specific payload.
func writeArgs(w *bufio.Writer, e Event) {
	switch e.Kind {
	case EvRead, EvWrite:
		fmt.Fprintf(w, `"addr":"%#x","class":%d`, e.Addr, e.Arg)
	case EvMsg:
		fmt.Fprintf(w, `"dst":%d,"hops":%d,"bytes":%d`, e.Addr, e.Arg>>32, e.Arg&0xffffffff)
	case EvPageout:
		fmt.Fprintf(w, `"page":"%#x","free":%d`, e.Addr, e.Arg)
	case EvPhase:
		fmt.Fprintf(w, `"phase":%d`, e.Arg)
	case EvInject:
		fmt.Fprintf(w, `"addr":"%#x","hops":%d`, e.Addr, e.Arg)
	case EvScan:
		fmt.Fprintf(w, `"addr":"%#x","lines":%d`, e.Addr, e.Arg)
	case EvRunStart:
		fmt.Fprintf(w, `"threads":%d`, e.Arg)
	default:
		fmt.Fprintf(w, `"addr":"%#x"`, e.Addr)
	}
}

// Compact binary format: a fixed 24-byte header followed by fixed 40-byte
// little-endian records. The header carries the total emitted count so a
// reader can tell how many events the ring dropped.
//
//	header: magic "PDT1" | version uint16 | reserved uint16 |
//	        held uint64 | total uint64
//	record: At uint64 | Dur uint64 | Addr uint64 | Arg uint64 |
//	        Node int32 | Kind uint8 | pad [3]byte

const (
	binMagic   = "PDT1"
	binVersion = 1
	recordSize = 40
)

// WriteBinary writes the trace's held events in the compact binary format,
// in sim-time order.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	copy(hdr[:4], binMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], binVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(t.Len()))
	binary.LittleEndian.PutUint64(hdr[16:24], t.Total())
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for _, e := range t.Events() {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(e.At))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(e.Dur))
		binary.LittleEndian.PutUint64(rec[16:24], e.Addr)
		binary.LittleEndian.PutUint64(rec[24:32], e.Arg)
		binary.LittleEndian.PutUint32(rec[32:36], uint32(e.Node))
		rec[36] = byte(e.Kind)
		rec[37], rec[38], rec[39] = 0, 0, 0
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a compact binary trace, returning the held events and
// the total emitted count (total > len(events) means the ring dropped the
// difference).
func ReadBinary(r io.Reader) (events []Event, total uint64, err error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("obs: trace header: %w", err)
	}
	if string(hdr[:4]) != binMagic {
		return nil, 0, fmt.Errorf("obs: not a trace file (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != binVersion {
		return nil, 0, fmt.Errorf("obs: unsupported trace version %d", v)
	}
	held := binary.LittleEndian.Uint64(hdr[8:16])
	total = binary.LittleEndian.Uint64(hdr[16:24])
	if held > (1 << 32) {
		return nil, 0, fmt.Errorf("obs: implausible event count %d", held)
	}
	events = make([]Event, 0, held)
	var rec [recordSize]byte
	for i := uint64(0); i < held; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, 0, fmt.Errorf("obs: trace record %d: %w", i, err)
		}
		k := EventKind(rec[36])
		if k >= NumEventKinds {
			return nil, 0, fmt.Errorf("obs: trace record %d: unknown kind %d", i, k)
		}
		events = append(events, Event{
			At:   sim.Time(binary.LittleEndian.Uint64(rec[0:8])),
			Dur:  sim.Time(binary.LittleEndian.Uint64(rec[8:16])),
			Addr: binary.LittleEndian.Uint64(rec[16:24]),
			Arg:  binary.LittleEndian.Uint64(rec[24:32]),
			Node: int32(binary.LittleEndian.Uint32(rec[32:36])),
			Kind: k,
		})
	}
	return events, total, nil
}
