package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

// Chrome trace_event export. The format is the JSON Object Format of the
// Trace Event spec, loadable in chrome://tracing and Perfetto. Simulated
// cycles are nanoseconds (1 GHz machines), and trace_event timestamps are
// microseconds, so ts = cycles/1000 with displayTimeUnit "ns".

// WriteChromeJSON writes the trace's held events as Chrome trace_event JSON.
// Span kinds become complete ("X") events, counter kinds become counter
// ("C") tracks, everything else becomes thread-scoped instants ("i").
// Events are written in sim-time order.
func (t *Trace) WriteChromeJSON(w io.Writer) error {
	return WriteChromeJSONEvents(w, t.Events())
}

// WriteChromeJSONEvents writes already-extracted events (e.g. from
// ReadBinary) as Chrome trace_event JSON. Events should be in sim-time order.
func WriteChromeJSONEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[")
	for i, e := range events {
		if i > 0 {
			bw.WriteByte(',')
		}
		writeChromeEvent(bw, e)
	}
	fmt.Fprintf(bw, "]}\n")
	return bw.Flush()
}

func writeChromeEvent(w *bufio.Writer, e Event) {
	m := kindMeta[e.Kind]
	ts := float64(e.At) / 1000.0
	switch {
	case m.counter:
		// One counter track per node: "free-slots D3".
		fmt.Fprintf(w, `{"name":%s,"cat":%s,"ph":"C","ts":%.3f,"pid":0,"args":{"free":%d}}`,
			jsonString(fmt.Sprintf("%s D%d", m.name, e.Node)), jsonString(m.cat), ts, e.Arg)
	case m.span:
		fmt.Fprintf(w, `{"name":%s,"cat":%s,"ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{`,
			jsonString(m.name), jsonString(m.cat), ts, float64(e.Dur)/1000.0, e.Node)
		writeArgs(w, e)
		fmt.Fprint(w, `}}`)
	default:
		fmt.Fprintf(w, `{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%.3f,"pid":0,"tid":%d,"args":{`,
			jsonString(m.name), jsonString(m.cat), ts, e.Node)
		writeArgs(w, e)
		fmt.Fprint(w, `}}`)
	}
}

// jsonString quotes s as a JSON string. Event names are static today, but
// the exporter must not emit invalid JSON should one ever carry quotes,
// backslashes, or control characters (strconv.Quote is close but uses
// \x escapes JSON does not allow, hence the hand escape).
func jsonString(s string) string {
	buf := make([]byte, 0, len(s)+2)
	buf = append(buf, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			buf = append(buf, '\\', c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			buf = append(buf, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			buf = append(buf, c)
		}
	}
	return string(append(buf, '"'))
}

// writeArgs renders the kind-specific payload.
func writeArgs(w *bufio.Writer, e Event) {
	switch e.Kind {
	case EvRead, EvWrite:
		fmt.Fprintf(w, `"addr":"%#x","class":%d`, e.Addr, e.Arg)
	case EvMsg:
		fmt.Fprintf(w, `"dst":%d,"hops":%d,"bytes":%d`, e.Addr, e.Arg>>32, e.Arg&0xffffffff)
	case EvPageout:
		fmt.Fprintf(w, `"page":"%#x","free":%d`, e.Addr, e.Arg)
	case EvPhase:
		fmt.Fprintf(w, `"phase":%d`, e.Arg)
	case EvInject:
		fmt.Fprintf(w, `"addr":"%#x","hops":%d`, e.Addr, e.Arg)
	case EvScan:
		fmt.Fprintf(w, `"addr":"%#x","lines":%d`, e.Addr, e.Arg)
	case EvRunStart:
		fmt.Fprintf(w, `"threads":%d`, e.Arg)
	default:
		fmt.Fprintf(w, `"addr":"%#x"`, e.Addr)
	}
}

// Compact binary format: a fixed 24-byte header followed by fixed 40-byte
// little-endian records. The header carries the total emitted count so a
// reader can tell how many events the ring dropped.
//
//	header: magic "PDT1" | version uint16 | reserved uint16 |
//	        held uint64 | total uint64
//	record: At uint64 | Dur uint64 | Addr uint64 | Arg uint64 |
//	        Node int32 | Kind uint8 | pad [3]byte

const (
	binMagic   = "PDT1"
	binVersion = 1
	recordSize = 40
)

// WriteBinary writes the trace's held events in the compact binary format,
// in sim-time order.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [24]byte
	copy(hdr[:4], binMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], binVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(t.Len()))
	binary.LittleEndian.PutUint64(hdr[16:24], t.Total())
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for _, e := range t.Events() {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(e.At))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(e.Dur))
		binary.LittleEndian.PutUint64(rec[16:24], e.Addr)
		binary.LittleEndian.PutUint64(rec[24:32], e.Arg)
		binary.LittleEndian.PutUint32(rec[32:36], uint32(e.Node))
		rec[36] = byte(e.Kind)
		rec[37], rec[38], rec[39] = 0, 0, 0
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Compact binary span format, the PDT1 analogue for Spans: a 32-byte header,
// the full aggregate tables, then the kept spans oldest first.
//
//	header: magic "PDS1" | version uint16 | phases uint8 | classes uint8 |
//	        retired uint64 | bad uint64 | kept uint64
//	table : per (direction, class): count uint64 | queued uint64 |
//	        phase cycles [phases]uint64
//	record: ID uint64 | Start uint64 | End uint64 | Addr uint64 |
//	        Queued uint64 | Phases [phases]uint64 |
//	        Node uint32 | flags uint8 (bit0 write) | Class uint8 | pad uint16
const (
	spanMagic   = "PDS1"
	spanVersion = 1
)

// WriteBinary writes the recorder's aggregate tables and kept spans in the
// compact PDS1 format.
func (s *Spans) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	kept := s.Kept()
	var hdr [32]byte
	copy(hdr[:4], spanMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], spanVersion)
	hdr[6] = uint8(NumPhases)
	hdr[7] = uint8(proto.NumLatClasses)
	binary.LittleEndian.PutUint64(hdr[8:16], s.retired)
	binary.LittleEndian.PutUint64(hdr[16:24], s.bad)
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(kept)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var u [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(u[:], v)
		bw.Write(u[:])
	}
	for wi := 0; wi < 2; wi++ {
		for c := 0; c < int(proto.NumLatClasses); c++ {
			put(s.count[wi][c])
			put(uint64(s.queued[wi][c]))
			for p := 0; p < int(NumPhases); p++ {
				put(uint64(s.agg[wi][c][p]))
			}
		}
	}
	for i := range kept {
		sp := &kept[i]
		put(sp.ID)
		put(uint64(sp.Start))
		put(uint64(sp.End))
		put(sp.Addr)
		put(uint64(sp.Queued))
		for p := 0; p < int(NumPhases); p++ {
			put(uint64(sp.Phases[p]))
		}
		var tail [8]byte
		binary.LittleEndian.PutUint32(tail[0:4], uint32(sp.Node))
		if sp.Write {
			tail[4] = 1
		}
		tail[5] = uint8(sp.Class)
		if _, err := bw.Write(tail[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpansBinary parses a PDS1 file into a disabled recorder whose
// aggregate tables, counters, and keep-ring mirror the writer's, so the
// breakdown renderers work on loaded files exactly as on live recorders.
func ReadSpansBinary(r io.Reader) (*Spans, error) {
	br := bufio.NewReader(r)
	var hdr [32]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("obs: span header: %w", err)
	}
	if string(hdr[:4]) != spanMagic {
		return nil, fmt.Errorf("obs: not a span file (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != spanVersion {
		return nil, fmt.Errorf("obs: unsupported span version %d", v)
	}
	if hdr[6] != uint8(NumPhases) || hdr[7] != uint8(proto.NumLatClasses) {
		return nil, fmt.Errorf("obs: span file has %d phases / %d classes, this build expects %d / %d",
			hdr[6], hdr[7], NumPhases, proto.NumLatClasses)
	}
	s := &Spans{
		retired: binary.LittleEndian.Uint64(hdr[8:16]),
		bad:     binary.LittleEndian.Uint64(hdr[16:24]),
	}
	kept := binary.LittleEndian.Uint64(hdr[24:32])
	if kept > (1 << 32) {
		return nil, fmt.Errorf("obs: implausible kept-span count %d", kept)
	}
	var u [8]byte
	get := func() (uint64, error) {
		if _, err := io.ReadFull(br, u[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u[:]), nil
	}
	var err error
	read := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = get()
		return v
	}
	for w := 0; w < 2; w++ {
		for c := 0; c < int(proto.NumLatClasses); c++ {
			s.count[w][c] = read()
			s.queued[w][c] = sim.Time(read())
			for p := 0; p < int(NumPhases); p++ {
				s.agg[w][c][p] = sim.Time(read())
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("obs: span aggregate table: %w", err)
	}
	capN := 1
	for uint64(capN) < kept {
		capN <<= 1
	}
	s.keep = make([]Span, capN)
	s.keepMask = uint64(capN - 1)
	for i := uint64(0); i < kept; i++ {
		sp := Span{
			ID:     read(),
			Start:  sim.Time(read()),
			End:    sim.Time(read()),
			Addr:   read(),
			Queued: sim.Time(read()),
		}
		for p := 0; p < int(NumPhases); p++ {
			sp.Phases[p] = sim.Time(read())
		}
		var tail [8]byte
		if err == nil {
			_, err = io.ReadFull(br, tail[:])
		}
		if err != nil {
			return nil, fmt.Errorf("obs: span record %d: %w", i, err)
		}
		sp.Node = int32(binary.LittleEndian.Uint32(tail[0:4]))
		sp.Write = tail[4]&1 != 0
		if tail[5] >= uint8(proto.NumLatClasses) {
			return nil, fmt.Errorf("obs: span record %d: unknown class %d", i, tail[5])
		}
		sp.Class = proto.LatClass(tail[5])
		s.keep[i] = sp
		s.kept++
	}
	return s, nil
}

// ReadBinary parses a compact binary trace, returning the held events and
// the total emitted count (total > len(events) means the ring dropped the
// difference).
func ReadBinary(r io.Reader) (events []Event, total uint64, err error) {
	br := bufio.NewReader(r)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("obs: trace header: %w", err)
	}
	if string(hdr[:4]) != binMagic {
		return nil, 0, fmt.Errorf("obs: not a trace file (magic %q)", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != binVersion {
		return nil, 0, fmt.Errorf("obs: unsupported trace version %d", v)
	}
	held := binary.LittleEndian.Uint64(hdr[8:16])
	total = binary.LittleEndian.Uint64(hdr[16:24])
	if held > (1 << 32) {
		return nil, 0, fmt.Errorf("obs: implausible event count %d", held)
	}
	events = make([]Event, 0, held)
	var rec [recordSize]byte
	for i := uint64(0); i < held; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, 0, fmt.Errorf("obs: trace record %d: %w", i, err)
		}
		k := EventKind(rec[36])
		if k >= NumEventKinds {
			return nil, 0, fmt.Errorf("obs: trace record %d: unknown kind %d", i, k)
		}
		events = append(events, Event{
			At:   sim.Time(binary.LittleEndian.Uint64(rec[0:8])),
			Dur:  sim.Time(binary.LittleEndian.Uint64(rec[8:16])),
			Addr: binary.LittleEndian.Uint64(rec[16:24]),
			Arg:  binary.LittleEndian.Uint64(rec[24:32]),
			Node: int32(binary.LittleEndian.Uint32(rec[32:36])),
			Kind: k,
		})
	}
	return events, total, nil
}
