package obs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// listDir returns the directory's entries, to prove no temp files leak.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileAtomicSuccess(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "{\"ok\":1}\n")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != "{\"ok\":1}\n" {
		t.Fatalf("content %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("temp file litter: %v", names)
	}
}

// TestWriteFileAtomicFailureKeepsOldArtifact injects a write error and
// asserts the previous artifact survives untouched and no temp file is left
// behind — the whole point of the temp-file + rename protocol.
func TestWriteFileAtomicFailureKeepsOldArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	if err := os.WriteFile(path, []byte("previous good artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half a new artifa") // partial write, then failure
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected write error", err)
	}
	if got := readFile(t, path); got != "previous good artifact" {
		t.Fatalf("failed write clobbered the previous artifact: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 || names[0] != "trace.json" {
		t.Fatalf("failed write left litter: %v", names)
	}
}

// TestWriteFileAtomicLargeWrite pushes well past the bufio buffer so the
// flush path (not just the buffered fast path) is covered.
func TestWriteFileAtomicLargeWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.json")
	var want strings.Builder
	err := WriteFileAtomic(path, func(w io.Writer) error {
		for i := 0; i < 50000; i++ {
			line := fmt.Sprintf("row %d\n", i)
			want.WriteString(line)
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); got != want.String() {
		t.Fatalf("large write mangled: %d bytes vs %d", len(got), want.Len())
	}
}

func TestWriteFileAtomicBadDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f.json"),
		func(w io.Writer) error { return nil })
	if err == nil {
		t.Fatal("writing into a missing directory should fail, not create it")
	}
}
