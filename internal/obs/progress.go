package obs

import (
	"fmt"
	"io"
	"time"
)

// StatusLine returns a Sweep-style progress callback that renders a live,
// carriage-return-overwritten status line to w and finishes it with a
// newline once done reaches total. The sweep serializes progress callbacks,
// so no locking is needed here.
func StatusLine(w io.Writer, label string) func(done, total, i int) {
	start := time.Now()
	return func(done, total, i int) {
		elapsed := time.Since(start).Round(100 * time.Millisecond)
		pct := 0
		if total > 0 {
			pct = 100 * done / total
		}
		fmt.Fprintf(w, "\r%s %d/%d (%d%%) %v ", label, done, total, pct, elapsed)
		if done >= total {
			fmt.Fprintln(w)
		}
	}
}
