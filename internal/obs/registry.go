package obs

import (
	"bufio"
	"fmt"
	"io"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
	"pimdsm/internal/stats"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v uint64 }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a metric that can move in both directions.
type Gauge struct{ v float64 }

// Set assigns the gauge's value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket distribution. Bucket i counts observations
// with value <= bounds[i]; one implicit overflow bucket absorbs the rest.
type Histogram struct {
	bounds []sim.Time
	counts []uint64
	sum    sim.Time
	n      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v sim.Time) {
	h.n++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() sim.Time { return h.sum }

// Buckets returns the upper bounds and the per-bucket counts (one more
// count than bounds: the overflow bucket). The slices are live; do not
// mutate them.
func (h *Histogram) Buckets() ([]sim.Time, []uint64) { return h.bounds, h.counts }

// Pow2Bounds returns n power-of-two histogram bounds: 1, 2, 4, ... 2^(n-1).
func Pow2Bounds(n int) []sim.Time {
	b := make([]sim.Time, n)
	for i := range b {
		b[i] = 1 << uint(i)
	}
	return b
}

// Registry holds named metrics in registration order, so every rendering of
// it is deterministic. It is not safe for concurrent use: give each
// concurrent run its own registry, or serialize the runs.
type Registry struct {
	order []string
	byN   map[string]any
	ser   Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byN: make(map[string]any)}
}

// Counter returns the named counter, creating it on first use. Reusing a
// name for a different metric kind panics — it would silently fork state.
func (r *Registry) Counter(name string) *Counter {
	if m, ok := r.byN[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is %T, not a counter", name, m))
		}
		return c
	}
	c := &Counter{}
	r.register(name, c)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if m, ok := r.byN[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is %T, not a gauge", name, m))
		}
		return g
	}
	g := &Gauge{}
	r.register(name, g)
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []sim.Time) *Histogram {
	if m, ok := r.byN[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q is %T, not a histogram", name, m))
		}
		return h
	}
	h := &Histogram{bounds: append([]sim.Time(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
	r.register(name, h)
	return h
}

func (r *Registry) register(name string, m any) {
	r.order = append(r.order, name)
	r.byN[name] = m
}

// Names returns the metric names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.order...) }

// Series is a sampled time-series of scalar metric values: one row per
// Sample call, one column per counter/gauge (histograms contribute their
// observation count).
type Series struct {
	Cols  []string
	Times []sim.Time
	Rows  [][]float64
}

// Sample appends the current scalar value of every registered metric to the
// registry's time-series, stamped at sim time t. Metrics should be
// registered before the first sample so every row has the same columns.
func (r *Registry) Sample(t sim.Time) {
	if len(r.ser.Cols) < len(r.order) {
		r.ser.Cols = r.Names()
	}
	row := make([]float64, 0, len(r.order))
	for _, name := range r.order {
		row = append(row, r.scalar(name))
	}
	r.ser.Times = append(r.ser.Times, t)
	r.ser.Rows = append(r.ser.Rows, row)
}

func (r *Registry) scalar(name string) float64 {
	switch m := r.byN[name].(type) {
	case *Counter:
		return float64(m.v)
	case *Gauge:
		return m.v
	case *Histogram:
		return float64(m.n)
	}
	return 0
}

// Series returns the sampled time-series (live; do not mutate).
func (r *Registry) Series() *Series { return &r.ser }

// SampleEvery schedules periodic Sample calls on the engine, starting at
// first and repeating every period cycles, until the returned record is
// stopped. The samples land in the registry's Series with the engine's
// current time.
func (r *Registry) SampleEvery(e *sim.Engine, first, period sim.Time) *sim.Recurring {
	return e.EveryNamed(first, period, "obs.sample", func() { r.Sample(e.Now()) })
}

// WatchEngine registers engine-introspection gauges (pending events,
// dispatched events) and samples them — plus every other metric in the
// registry — every period cycles.
func WatchEngine(e *sim.Engine, r *Registry, first, period sim.Time) *sim.Recurring {
	pending := r.Gauge("engine.pending")
	maxPending := r.Gauge("engine.max_pending")
	dispatched := r.Gauge("engine.dispatched")
	return e.EveryNamed(first, period, "obs.watch", func() {
		s := e.Stats()
		pending.Set(float64(s.Pending))
		maxPending.Set(float64(s.MaxPending))
		dispatched.Set(float64(s.Dispatched))
		r.Sample(e.Now())
	})
}

// CollectMachine folds a run's measured stats.Machine into the registry:
// per-class read/write counts and latency sums, the protocol event
// counters, and the read/write latency histograms. Adding is cumulative, so
// collecting several runs aggregates them.
func CollectMachine(r *Registry, m *stats.Machine) {
	for c := proto.LatClass(0); c < proto.NumLatClasses; c++ {
		r.Counter("read.count."+c.String()).Add(m.ReadCount[c])
		r.Counter("read.lat."+c.String()).Add(uint64(m.ReadLatSum[c]))
		r.Counter("write.count."+c.String()).Add(m.WriteCount[c])
		r.Counter("write.lat."+c.String()).Add(uint64(m.WriteLatSum[c]))
	}
	for _, kv := range []struct {
		name string
		v    uint64
	}{
		{"invalidations", m.Invalidations},
		{"writebacks", m.WriteBacks},
		{"recalls", m.Recalls},
		{"pageouts", m.Pageouts},
		{"disk_faults", m.DiskFaults},
		{"injections", m.Injections},
		{"injection_hops", m.InjectionHops},
		{"overflows", m.Overflows},
		{"upgrades", m.Upgrades},
		{"first_touches", m.FirstTouches},
		{"scans", m.Scans},
		{"scan_lines", m.ScanLines},
		{"crisis_pauses", m.CrisisPauses},
	} {
		r.Counter(kv.name).Add(kv.v)
	}
	collectHist(r.Histogram("read.lat.hist", Pow2Bounds(stats.NumLatBuckets-1)), &m.ReadHist)
	collectHist(r.Histogram("write.lat.hist", Pow2Bounds(stats.NumLatBuckets-1)), &m.WriteHist)
}

// collectHist adds a stats.LatHist (power-of-two buckets) into a registry
// histogram created with matching Pow2Bounds.
func collectHist(h *Histogram, lh *stats.LatHist) {
	for i := 0; i < stats.NumLatBuckets && i < len(h.counts); i++ {
		h.counts[i] += lh[i]
	}
	h.n += lh.Total()
}

// WriteJSON renders every metric (and the sampled series, if any) as a
// deterministic JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"metrics\":{")
	for i, name := range r.order {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "%q:", name)
		switch m := r.byN[name].(type) {
		case *Counter:
			fmt.Fprintf(bw, "%d", m.v)
		case *Gauge:
			fmt.Fprintf(bw, "%g", m.v)
		case *Histogram:
			fmt.Fprintf(bw, `{"count":%d,"sum":%d,"buckets":[`, m.n, m.sum)
			for j, c := range m.counts {
				if j > 0 {
					bw.WriteByte(',')
				}
				fmt.Fprintf(bw, "%d", c)
			}
			fmt.Fprint(bw, "]}")
		}
	}
	fmt.Fprint(bw, "}")
	if len(r.ser.Times) > 0 {
		fmt.Fprint(bw, ",\"series\":{\"cols\":[")
		for i, c := range r.ser.Cols {
			if i > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "%q", c)
		}
		fmt.Fprint(bw, "],\"samples\":[")
		for i, t := range r.ser.Times {
			if i > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "{\"t\":%d,\"v\":[", t)
			for j, v := range r.ser.Rows[i] {
				if j > 0 {
					bw.WriteByte(',')
				}
				fmt.Fprintf(bw, "%g", v)
			}
			fmt.Fprint(bw, "]}")
		}
		fmt.Fprint(bw, "]}")
	}
	fmt.Fprint(bw, "}\n")
	return bw.Flush()
}
