package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestJSONString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"read", `"read"`},
		{`a"b`, `"a\"b"`},
		{`a\b`, `"a\\b"`},
		{"a\nb\x01", `"a\u000ab\u0001"`},
		{"", `""`},
	}
	for _, c := range cases {
		got := jsonString(c.in)
		if got != c.want {
			t.Errorf("jsonString(%q) = %s, want %s", c.in, got, c.want)
		}
		// The output must parse back to the input as real JSON.
		var back string
		if err := json.Unmarshal([]byte(got), &back); err != nil || back != c.in {
			t.Errorf("jsonString(%q) does not round-trip: %s (%v)", c.in, got, err)
		}
	}
}

// goldenEvents exercises every rendering shape: span ("X"), counter ("C"),
// and instant ("i") events, with each args variant.
func goldenEvents() []Event {
	return []Event{
		{Kind: EvRunStart, At: 0, Node: -1, Addr: 32, Arg: 8},
		{Kind: EvRead, At: 1000, Dur: 298, Node: 3, Addr: 0x1000, Arg: 3},
		{Kind: EvWrite, At: 2500, Dur: 383, Node: 5, Addr: 0x2080, Arg: 4},
		{Kind: EvMsg, At: 2600, Dur: 74, Node: 5, Addr: 9, Arg: 2<<32 | 144},
		{Kind: EvInval, At: 2700, Node: 7, Addr: 0x2080},
		{Kind: EvPageout, At: 3000, Node: 33, Addr: 0x4000, Arg: 12},
		{Kind: EvOcc, At: 3500, Node: 33, Arg: 512},
		{Kind: EvPhase, At: 4000, Node: -1, Arg: 2},
		{Kind: EvInject, At: 4200, Node: 2, Addr: 0x5000, Arg: 3},
		{Kind: EvScan, At: 4400, Dur: 96, Node: 1, Addr: 0x6000, Arg: 16},
	}
}

// TestChromeJSONGolden pins the exporter's JSON envelope byte-for-byte: the
// displayTimeUnit header, the per-shape event rendering, and the args
// payloads. Regenerate with `go test ./internal/obs -run ChromeJSONGolden
// -update` after an intentional format change.
func TestChromeJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeJSONEvents(&buf, goldenEvents()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("exporter produced invalid JSON:\n%s", buf.String())
	}
	var env struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		TraceEvents     []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", env.DisplayTimeUnit)
	}
	if len(env.TraceEvents) != len(goldenEvents()) {
		t.Fatalf("%d trace events, want %d", len(env.TraceEvents), len(goldenEvents()))
	}

	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome JSON changed; run with -update if intentional.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
