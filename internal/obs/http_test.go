package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestDashboardSections(t *testing.T) {
	d := NewDashboard()
	h := d.Handler()

	if code, body := get(t, h, "/spans"); code != 200 || !strings.Contains(body, "not been published") {
		t.Fatalf("/spans before publish: %d %q", code, body)
	}

	d.Publish("spans", "span table\n")
	d.Publish("progress", "3/7 runs\n")
	d.Publish("spans", "span table v2\n") // replace, not append

	if got := d.Section("spans"); got != "span table v2\n" {
		t.Fatalf("Section(spans) = %q", got)
	}
	if keys := d.Keys(); len(keys) != 2 || keys[0] != "spans" || keys[1] != "progress" {
		t.Fatalf("Keys() = %v, want first-publish order [spans progress]", keys)
	}

	if code, body := get(t, h, "/spans"); code != 200 || body != "span table v2\n" {
		t.Fatalf("/spans = %d %q", code, body)
	}
	if code, body := get(t, h, "/"); code != 200 ||
		!strings.Contains(body, "== spans ==") || !strings.Contains(body, "3/7 runs") {
		t.Fatalf("index page missing sections: %d %q", code, body)
	}
	if code, _ := get(t, h, "/no-such-page"); code != 404 {
		t.Fatalf("unknown path served %d, want 404", code)
	}
	if code, body := get(t, h, "/debug/vars"); code != 200 || !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars = %d %q", code, body)
	}
	if code, body := get(t, h, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestDashboardProgressFunc(t *testing.T) {
	d := NewDashboard()
	fn := d.ProgressFunc("progress")
	fn(2, 9, 4)
	if got := d.Section("progress"); !strings.Contains(got, "2/9") || !strings.Contains(got, "config 4") {
		t.Fatalf("progress section = %q", got)
	}
}

// TestSpansMirror: an enabled recorder publishes its breakdown to the
// dashboard every N retirements, from the simulation side only.
func TestSpansMirror(t *testing.T) {
	d := NewDashboard()
	s := NewSpans(16)
	s.SetMirror(d, "spans", 2)
	for i := 0; i < 4; i++ {
		s.Begin(sim.Time(i*200), 1, uint64(i)*128, false)
		s.End(sim.Time(i*200+50), proto.LatMem)
	}
	body := d.Section("spans")
	if !strings.Contains(body, "recent spans") || !strings.Contains(body, "Memory") {
		t.Fatalf("mirrored section = %q", body)
	}
}

func TestDashboardListenAndServe(t *testing.T) {
	d := NewDashboard()
	d.Publish("spans", "live\n")
	addr, err := d.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "live\n" {
		t.Fatalf("served %q", body)
	}
}
