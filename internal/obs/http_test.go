package obs

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pimdsm/internal/proto"
	"pimdsm/internal/sim"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestDashboardSections(t *testing.T) {
	d := NewDashboard()
	h := d.Handler()

	if code, body := get(t, h, "/spans"); code != 200 || !strings.Contains(body, "not been published") {
		t.Fatalf("/spans before publish: %d %q", code, body)
	}

	d.Publish("spans", "span table\n")
	d.Publish("progress", "3/7 runs\n")
	d.Publish("spans", "span table v2\n") // replace, not append

	if got := d.Section("spans"); got != "span table v2\n" {
		t.Fatalf("Section(spans) = %q", got)
	}
	if keys := d.Keys(); len(keys) != 2 || keys[0] != "spans" || keys[1] != "progress" {
		t.Fatalf("Keys() = %v, want first-publish order [spans progress]", keys)
	}

	if code, body := get(t, h, "/spans"); code != 200 || body != "span table v2\n" {
		t.Fatalf("/spans = %d %q", code, body)
	}
	if code, body := get(t, h, "/"); code != 200 ||
		!strings.Contains(body, "== spans ==") || !strings.Contains(body, "3/7 runs") {
		t.Fatalf("index page missing sections: %d %q", code, body)
	}
	if code, _ := get(t, h, "/no-such-page"); code != 404 {
		t.Fatalf("unknown path served %d, want 404", code)
	}
	if code, body := get(t, h, "/debug/vars"); code != 200 || !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars = %d %q", code, body)
	}
	if code, body := get(t, h, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestDashboardProgressFunc(t *testing.T) {
	d := NewDashboard()
	fn := d.ProgressFunc("progress")
	fn(2, 9, 4)
	if got := d.Section("progress"); !strings.Contains(got, "2/9") || !strings.Contains(got, "config 4") {
		t.Fatalf("progress section = %q", got)
	}
}

// TestSpansMirror: an enabled recorder publishes its breakdown to the
// dashboard every N retirements, from the simulation side only.
func TestSpansMirror(t *testing.T) {
	d := NewDashboard()
	s := NewSpans(16)
	s.SetMirror(d, "spans", 2)
	for i := 0; i < 4; i++ {
		s.Begin(sim.Time(i*200), 1, uint64(i)*128, false)
		s.End(sim.Time(i*200+50), proto.LatMem)
	}
	body := d.Section("spans")
	if !strings.Contains(body, "recent spans") || !strings.Contains(body, "Memory") {
		t.Fatalf("mirrored section = %q", body)
	}
}

// TestNewHTTPServerHardening pins the slow-client protections: every
// timeout and the header-size bound must be set, and oversized request
// headers must be rejected rather than buffered without bound.
func TestNewHTTPServerHardening(t *testing.T) {
	hs := NewHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "served")
	}))
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 || hs.WriteTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Fatalf("a timeout is unset: header=%v read=%v write=%v idle=%v",
			hs.ReadHeaderTimeout, hs.ReadTimeout, hs.WriteTimeout, hs.IdleTimeout)
	}
	if hs.WriteTimeout < 35*time.Second {
		t.Fatalf("WriteTimeout %v would cut off a default 30s pprof CPU profile", hs.WriteTimeout)
	}
	if hs.MaxHeaderBytes <= 0 {
		t.Fatal("MaxHeaderBytes unset: header size is unbounded")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()
	addr := ln.Addr().String()

	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "served" {
		t.Fatalf("hardened server broke normal requests: %q", body)
	}

	// A request whose headers exceed MaxHeaderBytes must be refused.
	req, err := http.NewRequest("GET", "http://"+addr+"/", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Padding", strings.Repeat("a", 2*hs.MaxHeaderBytes))
	resp2, err := http.DefaultClient.Do(req)
	if err == nil {
		defer resp2.Body.Close()
		if resp2.StatusCode != http.StatusRequestHeaderFieldsTooLarge {
			t.Fatalf("oversized headers served %d, want 431 or a refused connection", resp2.StatusCode)
		}
	}
}

func TestDashboardListenAndServe(t *testing.T) {
	d := NewDashboard()
	d.Publish("spans", "live\n")
	addr, err := d.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "live\n" {
		t.Fatalf("served %q", body)
	}
}
