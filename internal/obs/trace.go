// Package obs is the simulator's observability layer: a zero-allocation
// structured trace of protocol events, a metrics registry of counters,
// gauges and fixed-bucket histograms with time-series sampling, and
// introspection helpers for the event engine and the sweep worker pool.
//
// Tracing is designed so the disabled path costs a single predictable
// branch: every emit site is guarded by Trace.On(), machines default to the
// shared disabled trace from Nop(), and Emit never allocates (the ring
// buffer is sized once, up front). Enabling tracing never changes
// simulation results — events are recorded, never consulted.
package obs

import (
	"sort"

	"pimdsm/internal/sim"
)

// EventKind identifies a protocol event type — the taxonomy of DESIGN.md's
// "Observability architecture" section.
type EventKind uint8

// The event taxonomy. Span events carry a duration; counter events carry a
// sampled value in Arg; the rest are instants.
const (
	// EvNone is the zero kind (an unwritten ring slot).
	EvNone EventKind = iota
	// EvRunStart marks the beginning of a machine run (Arg = thread count).
	// It separates runs when several share one trace.
	EvRunStart
	// EvRead is a completed read transaction: span; Arg = proto.LatClass.
	EvRead
	// EvWrite is a completed write transaction: span; Arg = proto.LatClass.
	EvWrite
	// EvInval is an invalidation delivered to Node's copy of Addr.
	EvInval
	// EvWriteBack is a displaced owned line written back to its home by Node.
	EvWriteBack
	// EvRecall is a line recalled from its owner Node during pageout or scan.
	EvRecall
	// EvUpgrade is an ownership-only write (no data transfer) by Node.
	EvUpgrade
	// EvDiskFault is an access that touched disk-resident data at home Node.
	EvDiskFault
	// EvPageout is one page written out by D-node Node (Addr = page,
	// Arg = FreeList length after the pageout).
	EvPageout
	// EvCrisis is a transaction stalled on a synchronous pageout at Node.
	EvCrisis
	// EvInject is a COMA master-line injection accepted by Node
	// (Arg = cascade hops).
	EvInject
	// EvOverflow is an injection (or set-assoc spill) that fell back to disk.
	EvOverflow
	// EvScan is a computation-in-memory scan at D-node Node: span;
	// Arg = lines traversed.
	EvScan
	// EvMsg is a mesh message: span; Node = source mesh index, Addr =
	// destination mesh index, Arg = hops<<32 | bytes.
	EvMsg
	// EvOcc is a D-node occupancy sample: counter; Arg = free Data slots.
	EvOcc
	// EvPhase marks thread Node crossing phase marker Arg.
	EvPhase
	// NumEventKinds is the number of kinds.
	NumEventKinds
)

// kindMeta drives export: the display name, a Chrome trace category, and
// whether the event is a span (ph "X") or a counter (ph "C").
var kindMeta = [NumEventKinds]struct {
	name    string
	cat     string
	span    bool
	counter bool
}{
	EvNone:      {name: "none", cat: "meta"},
	EvRunStart:  {name: "run-start", cat: "meta"},
	EvRead:      {name: "read", cat: "mem", span: true},
	EvWrite:     {name: "write", cat: "mem", span: true},
	EvInval:     {name: "inval", cat: "proto"},
	EvWriteBack: {name: "writeback", cat: "proto"},
	EvRecall:    {name: "recall", cat: "proto"},
	EvUpgrade:   {name: "upgrade", cat: "proto"},
	EvDiskFault: {name: "disk-fault", cat: "paging"},
	EvPageout:   {name: "pageout", cat: "paging"},
	EvCrisis:    {name: "crisis", cat: "paging"},
	EvInject:    {name: "inject", cat: "coma"},
	EvOverflow:  {name: "overflow", cat: "coma"},
	EvScan:      {name: "scan", cat: "cim", span: true},
	EvMsg:       {name: "msg", cat: "mesh", span: true},
	EvOcc:       {name: "free-slots", cat: "paging", counter: true},
	EvPhase:     {name: "phase", cat: "app"},
}

// String returns the kind's display name.
func (k EventKind) String() string {
	if k < NumEventKinds {
		return kindMeta[k].name
	}
	return "invalid"
}

// Span reports whether the kind carries a duration.
func (k EventKind) Span() bool { return k < NumEventKinds && kindMeta[k].span }

// Event is one traced occurrence. Events are plain values with no pointers,
// so the ring buffer is a single flat allocation and emitting is a copy.
type Event struct {
	At   sim.Time // sim-time start, in cycles
	Dur  sim.Time // duration for span kinds, 0 otherwise
	Addr uint64   // line or page address, 0 when not applicable
	Arg  uint64   // kind-specific payload (see the kind docs)
	Node int32    // node ID (machine-specific numbering; -1 = whole machine)
	Kind EventKind
}

// Trace is a fixed-capacity ring buffer of events. When full it overwrites
// the oldest events, keeping the most recent Cap(). The zero value (and the
// shared Nop() instance) is permanently disabled: On() is false and Emit is
// a no-op. A Trace is not safe for concurrent emitters — give each
// concurrent run its own.
type Trace struct {
	on   bool
	mask uint64
	buf  []Event
	n    uint64 // total events emitted, including overwritten ones
}

// nop is the shared disabled trace machines default to, so every emit site
// can be guarded by a nil-free single-branch On() check.
var nop = &Trace{}

// Nop returns the shared disabled trace. Emitting on it is a no-op (and
// never happens under the On() guard discipline).
func Nop() *Trace { return nop }

// NewTrace returns an enabled trace holding the most recent capacity events
// (rounded up to a power of two; capacity <= 0 selects 1<<16).
func NewTrace(capacity int) *Trace {
	c := uint64(1 << 16)
	if capacity > 0 {
		c = 1
		for c < uint64(capacity) {
			c <<= 1
		}
	}
	return &Trace{on: true, mask: c - 1, buf: make([]Event, c)}
}

// On reports whether the trace records events. It is the one branch every
// emit site pays when tracing is disabled.
func (t *Trace) On() bool { return t.on }

// Emit records one event. It never allocates; when the ring is full the
// oldest event is overwritten.
func (t *Trace) Emit(k EventKind, at, dur sim.Time, node int32, addr, arg uint64) {
	if !t.on {
		return
	}
	t.buf[t.n&t.mask] = Event{At: at, Dur: dur, Addr: addr, Arg: arg, Node: node, Kind: k}
	t.n++
}

// Cap returns the ring capacity (0 for the disabled trace).
func (t *Trace) Cap() int { return len(t.buf) }

// Total returns the number of events emitted, including any overwritten.
func (t *Trace) Total() uint64 { return t.n }

// Dropped returns how many events were overwritten by newer ones.
func (t *Trace) Dropped() uint64 {
	if t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Len returns the number of events currently held.
func (t *Trace) Len() int {
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Reset discards all recorded events, keeping the buffer.
func (t *Trace) Reset() { t.n = 0 }

// Events returns the held events ordered by sim time (ties keep emission
// order, which is deterministic because the simulator is). The slice is a
// fresh copy; mutating it does not affect the trace.
func (t *Trace) Events() []Event {
	out := make([]Event, 0, t.Len())
	start := uint64(0)
	if t.n > uint64(len(t.buf)) {
		start = t.n - uint64(len(t.buf))
	}
	for i := start; i < t.n; i++ {
		out = append(out, t.buf[i&t.mask])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// CountKind returns how many held events have the given kind.
func (t *Trace) CountKind(k EventKind) int {
	n := 0
	start := uint64(0)
	if t.n > uint64(len(t.buf)) {
		start = t.n - uint64(len(t.buf))
	}
	for i := start; i < t.n; i++ {
		if t.buf[i&t.mask].Kind == k {
			n++
		}
	}
	return n
}
