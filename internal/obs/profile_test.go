package obs

import (
	"strings"
	"testing"

	"pimdsm/internal/sim"
)

// TestProfileZeroAllocs pins both record paths at zero allocations: the
// disabled (nop) profiler and an enabled profiler after its tables are
// sized. This is the alloc-regression gate `make bench-smoke` runs.
func TestProfileZeroAllocs(t *testing.T) {
	nop := NopProfile()
	if got := testing.AllocsPerRun(1000, func() {
		nop.Node(3, ResProc, HCDirLookup, 40)
		if nop.MeshHop(5, 10) {
			nop.MeshSample(5, 100, 10, 2)
		}
	}); got != 0 {
		t.Fatalf("nop profile record path allocates %v/op, want 0", got)
	}

	p := NewProfile()
	p.EnsureNodes(16)
	p.SetMeshDims(4, 4)
	if got := testing.AllocsPerRun(1000, func() {
		p.Node(3, ResProc, HCDirLookup, 40)
		if p.MeshHop(5, 10) {
			p.MeshSample(5, 100, 10, 2)
		}
	}); got != 0 {
		t.Fatalf("enabled profile record path allocates %v/op, want 0", got)
	}
}

// TestProfileInvariants: a profile whose attributions pair every resource
// cycle passes CheckInvariants; breaking either identity is reported.
func TestProfileInvariants(t *testing.T) {
	p := NewProfile()
	p.EnsureNodes(3)
	p.SetExec(1000)
	// P-node 0: buckets sum to exec.
	p.AddPNode(0, 400, 300, 200, 900) // idle = 1000-900 = 100
	// D-node 2: proc covered with 150 busy cycles, attributed exactly.
	p.Node(2, ResProc, HCDirLookup, 100)
	p.Node(2, ResProc, HCInval, 50)
	p.SetResource(2, ResProc, 150, 7, 30, 1000)
	if bad := p.CheckInvariants(); len(bad) != 0 {
		t.Fatalf("consistent profile reported violations: %v", bad)
	}

	p.Node(2, ResProc, HCWriteBack, 1) // now classes sum to 151 != busy 150
	bad := p.CheckInvariants()
	if len(bad) == 0 {
		t.Fatal("unbalanced D-node attribution not reported")
	}
	if !strings.Contains(strings.Join(bad, "\n"), "node 2") {
		t.Fatalf("violation does not name the node: %v", bad)
	}

	q := NewProfile()
	q.EnsureNodes(1)
	q.SetExec(1000)
	q.AddPNode(0, 400, 300, 200, 950) // 400+300+200+50 = 950 != 1000
	if bad := q.CheckInvariants(); len(bad) == 0 {
		t.Fatal("unbalanced P-node accounting not reported")
	}
}

// TestProfileFolded: the folded-stack export is sorted, uses the run label
// as the root frame, and carries every attributed bucket.
func TestProfileFolded(t *testing.T) {
	p := NewProfile()
	p.EnsureNodes(2)
	p.SetMeta("agg/test")
	p.SetExec(500)
	p.AddPNode(0, 200, 100, 100, 400)
	p.Node(1, ResProc, HCDirLookup, 80)
	p.Node(1, ResDisk, HCPageout, 60)
	p.SetResource(1, ResProc, 80, 2, 0, 500)
	p.SetResource(1, ResDisk, 60, 1, 0, 500)
	var b strings.Builder
	if err := p.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"agg/test;pnode;busy 200",
		"agg/test;pnode;idle 100",
		"agg/test;node1;proc;dir-lookup 80",
		"agg/test;node1;disk;pageout 60",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("folded output not sorted: %q after %q", lines[i], lines[i-1])
		}
	}
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("folded line %q is not 'stack count'", line)
		}
	}
}

// TestProfileMeshSampling: every-64th-hop sampling is deterministic and the
// ring keeps the most recent samples oldest-first.
func TestProfileMeshSampling(t *testing.T) {
	p := NewProfile()
	p.SetMeshDims(2, 2)
	var sampled int
	for i := 0; i < 64*10; i++ {
		if p.MeshHop(i%16, sim.Time(i)) {
			sampled++
			p.MeshSample(i%16, sim.Time(i), sim.Time(i), i%5)
		}
	}
	if p.HopCount() != 640 {
		t.Fatalf("HopCount = %d, want 640", p.HopCount())
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 640 hops, want 10 (every 64th)", sampled)
	}
	s := p.Samples()
	if len(s) != 10 {
		t.Fatalf("Samples() kept %d, want 10", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i].At < s[i-1].At {
			t.Fatalf("samples not oldest-first: %d after %d", s[i].At, s[i-1].At)
		}
	}
	wh := p.WaitHist()
	if wh.Total() != 640 {
		t.Fatalf("wait histogram holds %d entries, want every hop (640)", wh.Total())
	}
	if p.WaitPercentile(0.5) > p.WaitPercentile(0.99) {
		t.Fatal("wait percentiles not monotone")
	}
}

// TestProfileReport: the rendered report carries the headline sections.
func TestProfileReport(t *testing.T) {
	p := NewProfile()
	p.EnsureNodes(2)
	p.SetMeshDims(2, 1)
	p.SetMeta("agg/fft")
	p.SetExec(1000)
	p.AddPNode(0, 500, 300, 100, 900)
	p.Node(1, ResProc, HCDirLookup, 200)
	p.SetResource(1, ResProc, 200, 5, 0, 1000)
	p.SetLink(0, 150, 3, 20)
	var b strings.Builder
	p.WriteReport(&b)
	out := b.String()
	for _, want := range []string{"agg/fft", "P-nodes", "dir-lookup", "heatmap", "mesh"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestCriticalPathOf: the dominant phase and its resource mapping survive
// aggregation over classes and directions.
func TestCriticalPathOf(t *testing.T) {
	s := NewSpans(0)
	s.Begin(0, 1, 0x100, false)
	s.Mark(PhaseNetRequest, 10)
	s.Mark(PhaseDirOcc, 900)
	s.Mark(PhaseNetReply, 950)
	s.End(960, 3)
	cp := CriticalPathOf(s)
	if cp.Top != PhaseDirOcc {
		t.Fatalf("top phase = %v, want dir-occ", cp.Top)
	}
	if cp.TopShare < 0.8 {
		t.Fatalf("top share = %v, want > 0.8", cp.TopShare)
	}
	if got := cp.String(); !strings.Contains(got, "directory occupancy") {
		t.Fatalf("String() = %q, want the resource named", got)
	}
	// Empty recorder: a zero critical path, not a panic.
	empty := NewSpans(0)
	if cp := CriticalPathOf(empty); cp.Total != 0 {
		t.Fatalf("empty recorder critical path total = %d", cp.Total)
	}
}
