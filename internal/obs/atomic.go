package obs

import (
	"bufio"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a result artifact (trace JSON, metrics dump, span
// file, cache index, ...) by streaming into a temp file in the same
// directory and renaming it over path only after the write, flush and sync
// all succeed. A crashed or failed run therefore never leaves a truncated
// artifact where a previous good one stood — readers see the old bytes or
// the new bytes, nothing in between.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	if err = write(bw); err != nil {
		f.Close()
		return err
	}
	if err = bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err = f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
